// Cross-cutting property tests: accounting identities and determinism
// guarantees that hold across modules, checked on parameterized sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "sched/fifo.hpp"
#include "sched/mibs.hpp"
#include "sched/mios.hpp"
#include "sched/mix.hpp"
#include "sim/dynamic_scenario.hpp"
#include "sim/static_scenario.hpp"
#include "util/rng.hpp"
#include "virt/host_sim.hpp"
#include "workload/benchmarks.hpp"
#include "workload/mixes.hpp"
#include "workload/synthetic.hpp"

namespace tracon {
namespace {

const sim::PerfTable& table() {
  static sim::PerfTable t = [] {
    model::Profiler prof(
        virt::HostSimulator(virt::HostConfig::paper_testbed()), 42);
    return sim::PerfTable::build(prof, workload::paper_benchmarks());
  }();
  return t;
}

// ---- host-simulator accounting ---------------------------------------

class SoloAccounting : public ::testing::TestWithParam<int> {};

TEST_P(SoloAccounting, ReportedRatesMatchAppDemand) {
  // For every benchmark, the solo run's reported read/write rates must
  // be the app's demanded rates (full speed, noise-free), and Dom0 CPU
  // must equal the configured per-request cost times the rates.
  virt::HostConfig cfg = virt::HostConfig::paper_testbed();
  cfg.noise_sigma = 0.0;
  virt::HostSimulator sim(cfg);
  const auto& app =
      workload::paper_benchmarks()[static_cast<std::size_t>(GetParam())];
  virt::VmRunStats s = sim.solo(app);
  ASSERT_TRUE(s.completed);
  // Bursty apps may dip when an ON phase saturates; stay within 12%.
  EXPECT_NEAR(s.reads_per_s, app.read_iops, 0.12 * app.read_iops + 0.5);
  EXPECT_NEAR(s.writes_per_s, app.write_iops, 0.12 * app.write_iops + 0.5);
  double total = s.reads_per_s + s.writes_per_s;
  double read_share = total > 0 ? s.reads_per_s / total : 0.0;
  double expected_dom0 =
      total * cfg.dom0_cost_per_iops(read_share, app.request_kb,
                                     app.sequentiality);
  EXPECT_NEAR(s.avg_dom0_cpu, expected_dom0, 0.15 * expected_dom0 + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SoloAccounting,
                         ::testing::Range(0, 8));

// ---- perf-table sanity ------------------------------------------------

TEST(PerfTableInvariants, SelfPairingNeverFasterThanSolo) {
  const sim::PerfTable& t = table();
  for (std::size_t a = 0; a < t.num_apps(); ++a) {
    // Same app twice on one machine: must not beat solo by more than
    // measurement noise.
    EXPECT_GT(t.runtime(a, std::optional<std::size_t>(a)),
              0.85 * t.solo_runtime(a))
        << t.app_name(a);
  }
}

TEST(PerfTableInvariants, IopsNeverExceedSoloByMuch) {
  const sim::PerfTable& t = table();
  for (std::size_t a = 0; a < t.num_apps(); ++a)
    for (std::size_t b = 0; b < t.num_apps(); ++b)
      EXPECT_LT(t.iops(a, std::optional<std::size_t>(b)),
                1.2 * t.solo_iops(a))
          << t.app_name(a) << " vs " << t.app_name(b);
}

TEST(PerfTableInvariants, HeavyPairsWorseThanLightPairs) {
  const sim::PerfTable& t = table();
  // Rank-8 (video) interferes with rank-6 (blastn) worse than rank-1
  // (email) does — the Table 3 ordering must be visible in the matrix.
  EXPECT_GT(t.runtime(5, std::optional<std::size_t>(7)),
            t.runtime(5, std::optional<std::size_t>(0)));
}

// ---- scheduler determinism & feasibility ------------------------------

class SchedulerFeasibility : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerFeasibility, PlacementsAlwaysApplicable) {
  // For random queues and partially filled clusters, every scheduler's
  // returned placements must apply cleanly in order.
  unsigned seed = static_cast<unsigned>(GetParam());
  Rng rng(seed);
  sched::ClusterCounts counts(8, 6);
  // Random pre-occupancy.
  for (int i = 0; i < 5; ++i) {
    std::size_t app = rng.index(8);
    if (counts.has_slot(std::nullopt)) counts.place(app, std::nullopt);
  }
  std::vector<sched::QueuedTask> queue;
  for (int i = 0; i < 10; ++i) queue.push_back({rng.index(8), 0.0});

  sched::TablePredictor oracle = table().oracle_predictor();
  sched::FifoScheduler fifo(seed);
  sched::MiosScheduler mios(oracle, sched::Objective::kRuntime);
  sched::MibsScheduler mibs(oracle, sched::Objective::kIops, 8, 0.0);
  sched::MixScheduler mix(oracle, sched::Objective::kRuntime, 8, 0.0);
  for (sched::Scheduler* s :
       std::initializer_list<sched::Scheduler*>{&fifo, &mios, &mibs, &mix}) {
    auto placements = s->schedule(queue, counts, {1e9});
    sched::ClusterCounts check = counts;
    std::vector<char> used(queue.size(), 0);
    for (const auto& p : placements) {
      ASSERT_LT(p.queue_pos, queue.size()) << s->name();
      EXPECT_FALSE(used[p.queue_pos]) << s->name() << " double placement";
      used[p.queue_pos] = 1;
      ASSERT_NO_THROW(check.place(queue[p.queue_pos].app, p.neighbour))
          << s->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFeasibility, ::testing::Range(1, 16));

TEST(SchedulerDeterminism, SameInputsSamePlacements) {
  sched::TablePredictor oracle = table().oracle_predictor();
  std::vector<sched::QueuedTask> queue;
  Rng rng(5);
  for (int i = 0; i < 8; ++i) queue.push_back({rng.index(8), 0.0});
  sched::ClusterCounts counts(8, 4);
  for (auto make : {0, 1}) {
    (void)make;
  }
  sched::MibsScheduler a(oracle, sched::Objective::kRuntime, 8, 0.0);
  sched::MibsScheduler b(oracle, sched::Objective::kRuntime, 8, 0.0);
  auto pa = a.schedule(queue, counts, {1e9});
  auto pb = b.schedule(queue, counts, {1e9});
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].queue_pos, pb[i].queue_pos);
    EXPECT_EQ(pa[i].neighbour, pb[i].neighbour);
  }
}

// ---- static-vs-dynamic consistency -------------------------------------

TEST(ScenarioConsistency, SingleMachineStaticMatchesDynamicPair) {
  // Two tasks on one machine: the static closed form and the dynamic
  // event loop must realize the same total runtime.
  const sim::PerfTable& t = table();
  std::vector<std::size_t> tasks = {7, 0};  // video + email
  sched::FifoScheduler fifo(3);
  sim::StaticOutcome st = sim::run_static(t, fifo, tasks, 1);

  std::vector<sim::Arrival> arrivals = {{0.0, 7}, {0.0, 0}};
  sim::DynamicConfig cfg;
  cfg.machines = 1;
  cfg.duration_s = 4000.0;
  sched::FifoScheduler fifo2(3);
  sim::DynamicOutcome dyn = sim::run_dynamic(t, fifo2, cfg, arrivals);
  ASSERT_EQ(dyn.completed, 2u);
  EXPECT_NEAR(dyn.total_runtime, st.total_runtime, 1.0);
}

// ---- mixes cover the full rank range -----------------------------------

TEST(MixCoverage, EveryBenchmarkReachableInEveryMix) {
  Rng rng(77);
  for (auto mix : {workload::MixKind::kLight, workload::MixKind::kMedium,
                   workload::MixKind::kHeavy}) {
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 20000; ++i)
      ++seen[workload::sample_benchmark_index(mix, rng)];
    for (int c : seen) EXPECT_GT(c, 0) << workload::mix_name(mix);
  }
}

}  // namespace
}  // namespace tracon
