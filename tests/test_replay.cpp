// The record/replay loop: JSONL arrival traces round-trip
// byte-for-byte, TraceArrivalSource reproduces the recorded stream
// under any scheduler, and RecordingArrivalSource tees a live stream
// exactly once.
#include "replay/arrival_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "sched/fifo.hpp"
#include "sim/dynamic_scenario.hpp"
#include "workload/benchmarks.hpp"

namespace tracon::replay {
namespace {

ArrivalTraceHeader small_header() {
  ArrivalTraceHeader h;
  h.seed = 11;
  h.host = "paper";
  h.model = "nlm";
  h.mix = "medium";
  h.lambda_per_min = 30.0;
  h.duration_s = 600.0;
  h.machines = 4;
  h.queue_capacity = 8;
  h.num_apps = 8;
  return h;
}

ArrivalTrace small_trace() {
  ArrivalTrace t;
  t.header = small_header();
  t.arrivals = {{0.25, 2, 114.5}, {3.5, 0, 80.0}, {3.5, 7, 42.125}};
  return t;
}

TEST(ArrivalTrace, RoundTripsByteIdentically) {
  std::ostringstream first;
  write_arrival_trace(first, small_trace());

  std::istringstream in(first.str());
  ArrivalTrace loaded = load_arrival_trace(in);
  std::ostringstream second;
  write_arrival_trace(second, loaded);

  EXPECT_EQ(first.str(), second.str());
}

TEST(ArrivalTrace, RoundTripPreservesEveryField) {
  std::ostringstream os;
  write_arrival_trace(os, small_trace());
  std::istringstream in(os.str());
  ArrivalTrace t = load_arrival_trace(in);

  EXPECT_EQ(t.header.seed, 11u);
  EXPECT_EQ(t.header.host, "paper");
  EXPECT_EQ(t.header.model, "nlm");
  EXPECT_EQ(t.header.mix, "medium");
  EXPECT_DOUBLE_EQ(t.header.lambda_per_min, 30.0);
  EXPECT_DOUBLE_EQ(t.header.duration_s, 600.0);
  EXPECT_EQ(t.header.machines, 4u);
  EXPECT_EQ(t.header.queue_capacity, 8u);
  EXPECT_EQ(t.header.num_apps, 8u);
  ASSERT_EQ(t.arrivals.size(), 3u);
  EXPECT_DOUBLE_EQ(t.arrivals[0].time_s, 0.25);
  EXPECT_EQ(t.arrivals[0].app, 2u);
  EXPECT_DOUBLE_EQ(t.arrivals[0].demand_s, 114.5);
  EXPECT_DOUBLE_EQ(t.arrivals[2].demand_s, 42.125);
}

TEST(ArrivalTrace, TraceWriterCounts) {
  std::ostringstream os;
  TraceWriter w(os, small_header());
  EXPECT_EQ(w.written(), 0u);
  w.write({1.0, 0, 10.0});
  w.write({2.0, 1, 20.0});
  EXPECT_EQ(w.written(), 2u);
}

TEST(ArrivalTrace, LoadRejectsMissingHeader) {
  std::istringstream in(R"({"time_s": 1.0, "app": 0, "demand_s": 5.0})");
  EXPECT_THROW(load_arrival_trace(in), std::invalid_argument);
}

TEST(ArrivalTrace, LoadRejectsWrongSchema) {
  std::istringstream in(R"({"schema": "tracon.task_events", "version": 1})");
  EXPECT_THROW(load_arrival_trace(in), std::invalid_argument);
}

TEST(ArrivalTrace, LoadRejectsFutureVersion) {
  ArrivalTrace t = small_trace();
  t.header.version = 99;
  std::ostringstream os;
  write_arrival_trace(os, t);
  std::istringstream in(os.str());
  EXPECT_THROW(load_arrival_trace(in), std::invalid_argument);
}

TEST(ArrivalTrace, LoadRejectsUnsortedTimes) {
  ArrivalTrace t = small_trace();
  t.arrivals = {{5.0, 0, 1.0}, {1.0, 1, 1.0}};
  std::ostringstream os;
  write_arrival_trace(os, t);
  std::istringstream in(os.str());
  EXPECT_THROW(load_arrival_trace(in), std::invalid_argument);
}

TEST(ArrivalTrace, LoadRejectsAppOutOfRange) {
  ArrivalTrace t = small_trace();
  t.arrivals = {{1.0, t.header.num_apps, 1.0}};
  std::ostringstream os;
  write_arrival_trace(os, t);
  std::istringstream in(os.str());
  EXPECT_THROW(load_arrival_trace(in), std::invalid_argument);
}

TEST(ArrivalTrace, LoadRejectsGarbageRecordLine) {
  std::ostringstream os;
  write_arrival_trace(os, small_trace());
  std::istringstream in(os.str() + "not json\n");
  EXPECT_THROW(load_arrival_trace(in), std::invalid_argument);
}

TEST(TraceArrivalSource, ReplaysRecordedStreamExactly) {
  ArrivalTrace t = small_trace();
  TraceArrivalSource source(t);
  std::vector<sim::Arrival> out = source.arrivals(8);
  ASSERT_EQ(out.size(), t.arrivals.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i].time_s, t.arrivals[i].time_s);
    EXPECT_EQ(out[i].app, t.arrivals[i].app);
  }
  EXPECT_EQ(source.name(), "trace");
}

TEST(TraceArrivalSource, RejectsShrunkenAppUniverse) {
  TraceArrivalSource source(small_trace());
  EXPECT_THROW(source.arrivals(4), std::invalid_argument);
}

TEST(TraceArrivalSource, ValidatesDemands) {
  TraceArrivalSource source(small_trace());
  std::vector<double> demands(8, 0.0);
  demands[2] = 114.5;
  demands[0] = 80.0;
  demands[7] = 42.125;
  EXPECT_TRUE(source.validate_demands(demands));
  demands[0] = 81.0;
  EXPECT_FALSE(source.validate_demands(demands));
}

TEST(RecordingArrivalSource, TeesInnerStreamIntoWriter) {
  sim::PoissonArrivalSource poisson(30.0, 600.0, workload::MixKind::kMedium,
                                    1.5, 11);
  std::vector<sim::Arrival> direct = poisson.arrivals(8);

  std::ostringstream os;
  TraceWriter writer(os, small_header());
  sim::PoissonArrivalSource poisson2(30.0, 600.0, workload::MixKind::kMedium,
                                     1.5, 11);
  std::vector<double> demands(8);
  for (std::size_t a = 0; a < demands.size(); ++a)
    demands[a] = 10.0 * static_cast<double>(a + 1);
  RecordingArrivalSource recording(poisson2, writer, demands);
  std::vector<sim::Arrival> teed = recording.arrivals(8);

  ASSERT_EQ(teed.size(), direct.size());
  EXPECT_EQ(writer.written(), direct.size());
  EXPECT_EQ(recording.name(), "poisson");

  std::istringstream in(os.str());
  ArrivalTrace loaded = load_arrival_trace(in);
  ASSERT_EQ(loaded.arrivals.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.arrivals[i].time_s, direct[i].time_s);
    EXPECT_EQ(loaded.arrivals[i].app, direct[i].app);
    EXPECT_DOUBLE_EQ(loaded.arrivals[i].demand_s, demands[direct[i].app]);
  }
}

TEST(RecordingArrivalSource, IsSingleShot) {
  sim::PoissonArrivalSource poisson(30.0, 300.0, workload::MixKind::kMedium,
                                    1.5, 11);
  std::ostringstream os;
  TraceWriter writer(os, small_header());
  RecordingArrivalSource recording(poisson, writer,
                                   std::vector<double>(8, 1.0));
  recording.arrivals(8);
  EXPECT_THROW(recording.arrivals(8), std::invalid_argument);
}

class ReplayedDynamic : public ::testing::Test {
 protected:
  static const sim::PerfTable& table() {
    static sim::PerfTable t = [] {
      model::Profiler prof(
          virt::HostSimulator(virt::HostConfig::paper_testbed()), 42);
      return sim::PerfTable::build(prof, workload::paper_benchmarks());
    }();
    return t;
  }
};

TEST_F(ReplayedDynamic, ReplayMatchesLiveRunUnderSameScheduler) {
  sim::DynamicConfig cfg;
  cfg.machines = 4;
  cfg.lambda_per_min = 20.0;
  cfg.duration_s = 1200.0;
  cfg.seed = 17;

  // Live run, recording the stream.
  ArrivalTraceHeader header = small_header();
  header.seed = cfg.seed;
  header.machines = cfg.machines;
  header.lambda_per_min = cfg.lambda_per_min;
  header.duration_s = cfg.duration_s;
  std::ostringstream trace_os;
  TraceWriter writer(trace_os, header);
  sim::PoissonArrivalSource poisson(cfg.lambda_per_min, cfg.duration_s,
                                    cfg.mix, cfg.mix_stddev, cfg.seed);
  std::vector<double> demands;
  for (std::size_t a = 0; a < table().num_apps(); ++a)
    demands.push_back(table().solo_runtime(a));
  RecordingArrivalSource recording(poisson, writer, demands);
  std::vector<sim::Arrival> live_arrivals =
      recording.arrivals(table().num_apps());
  sched::FifoScheduler live_fifo(9);
  sim::DynamicOutcome live =
      sim::run_dynamic(table(), live_fifo, cfg, live_arrivals);

  // Replay through cfg.arrival_source.
  std::istringstream trace_in(trace_os.str());
  TraceArrivalSource source(load_arrival_trace(trace_in));
  EXPECT_TRUE(source.validate_demands(demands));
  cfg.arrival_source = &source;
  sched::FifoScheduler replay_fifo(9);
  sim::DynamicOutcome replayed = sim::run_dynamic(table(), replay_fifo, cfg);

  EXPECT_EQ(replayed.arrived, live.arrived);
  EXPECT_EQ(replayed.dropped, live.dropped);
  EXPECT_EQ(replayed.completed, live.completed);
  EXPECT_DOUBLE_EQ(replayed.total_runtime, live.total_runtime);
  EXPECT_DOUBLE_EQ(replayed.mean_wait_s, live.mean_wait_s);
}

TEST_F(ReplayedDynamic, PoissonSourceMatchesGenerateArrivals) {
  sim::DynamicConfig cfg;
  cfg.lambda_per_min = 60.0;
  cfg.duration_s = 1800.0;
  cfg.seed = 23;
  std::vector<sim::Arrival> via_cfg = sim::generate_arrivals(cfg, 8);
  sim::PoissonArrivalSource source(cfg.lambda_per_min, cfg.duration_s,
                                   cfg.mix, cfg.mix_stddev, cfg.seed);
  std::vector<sim::Arrival> via_source = source.arrivals(8);
  ASSERT_EQ(via_cfg.size(), via_source.size());
  for (std::size_t i = 0; i < via_cfg.size(); ++i) {
    EXPECT_DOUBLE_EQ(via_cfg[i].time_s, via_source[i].time_s);
    EXPECT_EQ(via_cfg[i].app, via_source[i].app);
  }
}

}  // namespace
}  // namespace tracon::replay
