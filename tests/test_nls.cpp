#include "stats/nls.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/ols.hpp"
#include "util/rng.hpp"

namespace tracon::stats {
namespace {

TEST(GaussNewton, LinearProblemMatchesOls) {
  Rng rng(6);
  Matrix x(50, 3);
  Vector y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = rng.uniform(-1, 1);
    x(i, 2) = rng.uniform(-1, 1);
    y[i] = 1.0 + 2.0 * x(i, 1) - 3.0 * x(i, 2) + rng.normal(0, 0.05);
  }
  OlsFit ols = ols_fit(x, y);
  LinearResidual residual(x, y);
  NlsResult res = gauss_newton(residual, Vector(3, 0.0));
  EXPECT_TRUE(res.converged);
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_NEAR(res.params[j], ols.coefficients[j], 1e-5);
  EXPECT_NEAR(res.sse, ols.sse, 1e-6);
}

TEST(GaussNewton, ExponentialDecayFit) {
  // y = a * exp(b * t), truly nonlinear in (a, b).
  const double a_true = 5.0, b_true = -0.7;
  std::vector<double> ts, ys;
  for (int i = 0; i < 40; ++i) {
    double t = 0.1 * i;
    ts.push_back(t);
    ys.push_back(a_true * std::exp(b_true * t));
  }
  CallableResidual residual(
      ts.size(), 2, [&](std::span<const double> p, std::span<double> out) {
        for (std::size_t i = 0; i < ts.size(); ++i)
          out[i] = ys[i] - p[0] * std::exp(p[1] * ts[i]);
      });
  NlsResult res = gauss_newton(residual, {1.0, 0.0});
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.params[0], a_true, 1e-4);
  EXPECT_NEAR(res.params[1], b_true, 1e-4);
  EXPECT_LT(res.sse, 1e-8);
}

TEST(GaussNewton, NoisyNonlinearStillCloses) {
  Rng rng(8);
  std::vector<double> ts, ys;
  for (int i = 0; i < 100; ++i) {
    double t = 0.05 * i;
    ts.push_back(t);
    ys.push_back(2.0 * std::exp(-0.5 * t) + rng.normal(0, 0.01));
  }
  CallableResidual residual(
      ts.size(), 2, [&](std::span<const double> p, std::span<double> out) {
        for (std::size_t i = 0; i < ts.size(); ++i)
          out[i] = ys[i] - p[0] * std::exp(p[1] * ts[i]);
      });
  NlsResult res = gauss_newton(residual, {1.0, -0.1});
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.params[0], 2.0, 0.05);
  EXPECT_NEAR(res.params[1], -0.5, 0.05);
}

TEST(GaussNewton, SseNeverIncreases) {
  // Even from a poor start, the damped solver's final SSE must not be
  // worse than the initial one.
  std::vector<double> ts, ys;
  for (int i = 0; i < 20; ++i) {
    ts.push_back(0.2 * i);
    ys.push_back(3.0 * std::exp(-1.0 * 0.2 * i));
  }
  CallableResidual residual(
      ts.size(), 2, [&](std::span<const double> p, std::span<double> out) {
        for (std::size_t i = 0; i < ts.size(); ++i)
          out[i] = ys[i] - p[0] * std::exp(p[1] * ts[i]);
      });
  Vector start = {-10.0, 2.0};
  Vector r0(ts.size());
  residual.eval(start, r0);
  double initial_sse = dot(r0, r0);
  NlsResult res = gauss_newton(residual, start);
  EXPECT_LE(res.sse, initial_sse + 1e-9);
}

TEST(GaussNewton, ShapeErrors) {
  Matrix x(3, 2);
  x(0, 0) = x(1, 1) = x(2, 0) = 1.0;
  Vector y = {1, 2, 3};
  LinearResidual residual(x, y);
  EXPECT_THROW(gauss_newton(residual, Vector(5, 0.0)), std::invalid_argument);
}

TEST(CallableResidual, RejectsNull) {
  EXPECT_THROW(CallableResidual(3, 1, nullptr), std::invalid_argument);
}

TEST(LinearResidual, EvaluatesResiduals) {
  Matrix x = {{1.0, 2.0}, {1.0, 3.0}};
  Vector y = {5.0, 7.0};
  LinearResidual residual(x, y);
  Vector p = {1.0, 2.0};
  Vector out(2);
  residual.eval(p, out);
  EXPECT_NEAR(out[0], 0.0, 1e-12);  // 5 - (1 + 4)
  EXPECT_NEAR(out[1], 0.0, 1e-12);  // 7 - (1 + 6)
}

}  // namespace
}  // namespace tracon::stats
