// Tests for tracon_analyze (tools/analyze): the tokenizer, the include
// graph, and all four passes, driven on in-memory fixture trees the
// same way test_lint.cpp drives the lint rules. Every pass gets a
// seeded-violation fixture and a known-clean fixture; the suppression
// syntax, rule filtering, and the JSON report shape are covered here
// too, so the "analyzer is clean over this repo" ctest entry stays an
// end-to-end check rather than the only line of defense.
#include "analyze/analysis.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace tracon::analyze {
namespace {

AnalysisResult analyze(std::vector<SourceFile> files,
                       std::vector<std::string> rules = {}) {
  Project project(std::move(files));
  return run_passes(project, rules);
}

std::size_t count_rule(const AnalysisResult& r, const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(r.findings.begin(), r.findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// ---------------------------------------------------------------- tokenizer

TEST(Tokenizer, CommentsAndStringsAreNotCode) {
  TokenStream ts = tokenize(
      "int a; // trailing rand()\n"
      "/* block rand() */ int b;\n"
      "const char* s = \"rand()\";\n");
  for (const Token& t : ts.tokens) {
    EXPECT_NE(t.text, "rand") << "source text leaked out of comment/string";
  }
  ASSERT_EQ(ts.comments.size(), 2u);
  EXPECT_EQ(ts.comments[0].line, 1u);
  EXPECT_EQ(ts.comments[1].line, 2u);
}

TEST(Tokenizer, RawStringsSwallowTheirContent) {
  TokenStream ts = tokenize(
      "auto j = R\"json({\"time\": \"clock()\"})json\";\n"
      "int after = 1;\n");
  std::size_t strings = 0;
  for (const Token& t : ts.tokens) {
    if (t.kind == TokKind::kString) ++strings;
    EXPECT_NE(t.text, "clock");
  }
  EXPECT_EQ(strings, 1u);
  // The tokenizer must resync: `after` is real code on line 2.
  bool saw_after = false;
  for (const Token& t : ts.tokens) {
    saw_after = saw_after || (t.text == "after" && t.line == 2);
  }
  EXPECT_TRUE(saw_after);
}

TEST(Tokenizer, DirectiveTokensAreMarked) {
  TokenStream ts = tokenize(
      "#define HELPER(x) static int slot_##x = 0\n"
      "int real_code;\n");
  for (const Token& t : ts.tokens) {
    if (t.line == 1) {
      EXPECT_TRUE(t.directive) << t.text;
    }
    if (t.text == "real_code") {
      EXPECT_FALSE(t.directive);
    }
  }
}

// ------------------------------------------------------------------ layering

TEST(Layering, SeededUpwardIncludeIsCaught) {
  // util (layer 0) reaching into sim (layer 6) is exactly the kind of
  // inversion the DAG forbids.
  AnalysisResult r = analyze({
      {"src/util/helper.hpp", "#include \"sim/engine.hpp\"\n"},
      {"src/sim/engine.hpp", "#pragma once\n"},
  });
  ASSERT_EQ(count_rule(r, "layering"), 1u);
  EXPECT_EQ(r.findings[0].file, "src/util/helper.hpp");
  EXPECT_EQ(r.findings[0].line, 1u);
  EXPECT_NE(r.findings[0].message.find("upward include"), std::string::npos);
}

TEST(Layering, DownwardAndSameModuleAreClean) {
  AnalysisResult r = analyze({
      {"src/sim/engine.hpp", "#include \"util/helper.hpp\"\n"
                             "#include \"sim/other.hpp\"\n"},
      {"src/sim/other.hpp", "#pragma once\n"},
      {"src/util/helper.hpp", "#pragma once\n"},
  });
  EXPECT_EQ(count_rule(r, "layering"), 0u);
}

TEST(Layering, SameLayerCrossIncludeIsCaught) {
  // stats and virt both sit at layer 2; neither may include the other.
  AnalysisResult r = analyze({
      {"src/stats/fit.hpp", "#include \"virt/host.hpp\"\n"},
      {"src/virt/host.hpp", "#pragma once\n"},
  });
  ASSERT_EQ(count_rule(r, "layering"), 1u);
  EXPECT_NE(r.findings[0].message.find("same-layer"), std::string::npos);
}

TEST(Layering, IncludeCycleIsCaught) {
  AnalysisResult r = analyze({
      {"src/sim/a.hpp", "#include \"sim/b.hpp\"\n"},
      {"src/sim/b.hpp", "#include \"sim/a.hpp\"\n"},
  });
  ASSERT_EQ(count_rule(r, "layering"), 1u);
  EXPECT_NE(r.findings[0].message.find("include cycle"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("src/sim/a.hpp"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("src/sim/b.hpp"), std::string::npos);
}

TEST(Layering, TestsMayIncludeTools) {
  AnalysisResult r = analyze({
      {"tests/test_thing.cpp", "#include \"lint/lint_rules.hpp\"\n"},
      {"tools/lint/lint_rules.hpp", "#pragma once\n"},
  });
  EXPECT_EQ(count_rule(r, "layering"), 0u);
}

// ------------------------------------------------------------ mutable-global

TEST(MutableGlobal, SeededNamespaceScopeVariableIsCaught) {
  AnalysisResult r = analyze({
      {"src/sim/state.cpp",
       "namespace tracon {\n"
       "int g_counter = 0;\n"
       "}\n"},
  });
  ASSERT_EQ(count_rule(r, "mutable-global"), 1u);
  EXPECT_EQ(r.findings[0].line, 2u);
  EXPECT_NE(r.findings[0].message.find("g_counter"), std::string::npos);
}

TEST(MutableGlobal, ConstAndFunctionsAreClean) {
  AnalysisResult r = analyze({
      {"src/sim/state.cpp",
       "namespace tracon {\n"
       "const int kLimit = 8;\n"
       "constexpr double kPi = 3.14;\n"
       "int compute(int x) { int local = x; return local; }\n"
       "int declared(int x);\n"
       "struct Config { int field = 1; };\n"
       "}\n"},
  });
  EXPECT_EQ(count_rule(r, "mutable-global"), 0u);
}

TEST(MutableGlobal, DefaultArgumentBracesDoNotConfuseTheScan) {
  // Regression: `= {}` default arguments inside a multi-line function
  // declaration once pushed a phantom initializer scope and flagged the
  // trailing parameter.
  AnalysisResult r = analyze({
      {"src/sched/api.hpp",
       "namespace tracon {\n"
       "struct Policy {};\n"
       "int best_slot(int task,\n"
       "              const Policy& policy = {},\n"
       "              bool exclude_empty = false);\n"
       "}\n"},
  });
  EXPECT_EQ(count_rule(r, "mutable-global"), 0u);
}

TEST(MutableGlobal, SeededMutableStaticLocalIsCaught) {
  AnalysisResult r = analyze({
      {"src/model/cache.cpp",
       "namespace tracon {\n"
       "int counter() {\n"
       "  static int calls = 0;\n"
       "  return ++calls;\n"
       "}\n"
       "const int& limit() {\n"
       "  static const int kLimit = 42;\n"
       "  return kLimit;\n"
       "}\n"
       "}\n"},
  });
  ASSERT_EQ(count_rule(r, "mutable-global"), 1u);
  EXPECT_EQ(r.findings[0].line, 3u);
}

TEST(MutableGlobal, OnlySrcIsInScope) {
  AnalysisResult r = analyze({
      {"tools/widget/main.cpp", "namespace w {\nint g_flag = 0;\n}\n"},
      {"tests/test_widget.cpp", "namespace w {\nint g_flag = 0;\n}\n"},
  });
  EXPECT_EQ(count_rule(r, "mutable-global"), 0u);
}

// -------------------------------------------------------- determinism-taint

TEST(DeterminismTaint, SourceReachingEmitterIsCaught) {
  // model/sample.hpp uses rand(); obs/export.cpp (an emitter TU)
  // includes it — the include graph proves the taint can reach output.
  AnalysisResult r = analyze({
      {"src/model/sample.hpp", "inline int pick() { return rand(); }\n"},
      {"src/obs/export.cpp", "#include \"model/sample.hpp\"\n"},
  });
  ASSERT_EQ(count_rule(r, "determinism-taint"), 1u);
  EXPECT_EQ(r.findings[0].file, "src/model/sample.hpp");
  EXPECT_NE(r.findings[0].message.find("rand()"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("src/obs/export.cpp"),
            std::string::npos);
}

TEST(DeterminismTaint, SourceWithNoEmitterPathIsClean) {
  // Same source, but no translation unit joins it with obs/replay/
  // runstore code — nothing replay-checked can observe it.
  AnalysisResult r = analyze({
      {"src/model/sample.hpp", "inline int pick() { return rand(); }\n"},
      {"src/model/solo.cpp", "#include \"model/sample.hpp\"\n"},
  });
  EXPECT_EQ(count_rule(r, "determinism-taint"), 0u);
}

TEST(DeterminismTaint, UnorderedContainerInEmitterModuleIsCaught) {
  AnalysisResult r = analyze({
      {"src/obs/metrics2.cpp",
       "#include <unordered_map>\n"
       "std::unordered_map<int, int> m;\n"},
  });
  EXPECT_EQ(count_rule(r, "determinism-taint"), 1u);
}

TEST(DeterminismTaint, MemberNamedTimeIsClean) {
  // `w.time()` and a field named time must not fire: only call syntax
  // on the free identifier counts.
  AnalysisResult r = analyze({
      {"src/obs/window.cpp",
       "struct W { double time; double clock() { return 0; } };\n"
       "double f(W& w) { return w.time + w.clock(); }\n"
       "double g() { std::time_t t{}; return static_cast<double>(t); }\n"},
  });
  EXPECT_EQ(count_rule(r, "determinism-taint"), 0u);
}

TEST(DeterminismTaint, PointerKeyedMapInEmitterIsCaught) {
  AnalysisResult r = analyze({
      {"src/obs/registry.cpp",
       "#include <map>\n"
       "std::map<const char*, int> by_addr;\n"
       "std::map<int, const char*> by_id;\n"},
  });
  // Pointer key fires; pointer value does not.
  EXPECT_EQ(count_rule(r, "determinism-taint"), 1u);
}

// ------------------------------------------------------ parallel-discipline

TEST(ParallelDiscipline, SeededUnguardedMutationIsCaught) {
  AnalysisResult r = analyze({
      {"src/sim/runner.cpp",
       "void run() {\n"
       "  int total = 0;\n"
       "  parallel_for(4, 100, [&](std::size_t i) {\n"
       "    total += work(i);\n"
       "  });\n"
       "}\n"},
  });
  ASSERT_EQ(count_rule(r, "parallel-discipline"), 1u);
  EXPECT_EQ(r.findings[0].line, 4u);
  EXPECT_NE(r.findings[0].message.find("total"), std::string::npos);
}

TEST(ParallelDiscipline, ShardIndexedWritesAreClean) {
  AnalysisResult r = analyze({
      {"src/sim/runner.cpp",
       "void run(std::vector<Out>& out) {\n"
       "  parallel_for(4, out.size(), [&](std::size_t i) {\n"
       "    out[i].value = work(i);\n"
       "    out[i].log.push_back(i);\n"
       "  });\n"
       "}\n"},
  });
  EXPECT_EQ(count_rule(r, "parallel-discipline"), 0u);
}

TEST(ParallelDiscipline, LocalsAndParamsAreClean) {
  AnalysisResult r = analyze({
      {"src/sim/runner.cpp",
       "void run() {\n"
       "  parallel_for(4, 100, [&](std::size_t i) {\n"
       "    int acc = 0;\n"
       "    acc += static_cast<int>(i);\n"
       "    i += 0;\n"
       "  });\n"
       "}\n"},
  });
  EXPECT_EQ(count_rule(r, "parallel-discipline"), 0u);
}

TEST(ParallelDiscipline, MutatingMethodOnSharedCaptureIsCaught) {
  AnalysisResult r = analyze({
      {"src/sim/runner.cpp",
       "void run(std::vector<int>& log) {\n"
       "  parallel_for(4, 100, [&log](std::size_t i) {\n"
       "    log.push_back(static_cast<int>(i));\n"
       "  });\n"
       "}\n"},
  });
  ASSERT_EQ(count_rule(r, "parallel-discipline"), 1u);
  EXPECT_NE(r.findings[0].message.find("push_back"), std::string::npos);
}

TEST(ParallelDiscipline, IncrementOfSharedCaptureIsCaught) {
  AnalysisResult r = analyze({
      {"src/sim/runner.cpp",
       "void run() {\n"
       "  std::size_t done = 0;\n"
       "  parallel_for(4, 100, [&](std::size_t i) { ++done; });\n"
       "}\n"},
  });
  EXPECT_EQ(count_rule(r, "parallel-discipline"), 1u);
}

// --------------------------------------------------------------- suppression

TEST(Suppression, AllowWithReasonSuppresses) {
  AnalysisResult r = analyze({
      {"src/sim/state.cpp",
       "namespace tracon {\n"
       "// TRACON_ANALYZE_ALLOW(mutable-global): test-only knob.\n"
       "int g_knob = 0;\n"
       "}\n"},
  });
  EXPECT_EQ(count_rule(r, "mutable-global"), 0u);
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(Suppression, AllowWithoutReasonDoesNotSuppress) {
  AnalysisResult r = analyze({
      {"src/sim/state.cpp",
       "namespace tracon {\n"
       "// TRACON_ANALYZE_ALLOW(mutable-global):\n"
       "int g_knob = 0;\n"
       "}\n"},
  });
  EXPECT_EQ(count_rule(r, "mutable-global"), 1u);
  EXPECT_EQ(r.suppressed, 0u);
}

TEST(Suppression, WrongRuleDoesNotSuppress) {
  AnalysisResult r = analyze({
      {"src/sim/state.cpp",
       "namespace tracon {\n"
       "// TRACON_ANALYZE_ALLOW(layering): not the right rule.\n"
       "int g_knob = 0;\n"
       "}\n"},
  });
  EXPECT_EQ(count_rule(r, "mutable-global"), 1u);
}

TEST(Suppression, MultiLineCommentBlockCoversTheNextLine) {
  AnalysisResult r = analyze({
      {"src/sim/state.cpp",
       "namespace tracon {\n"
       "// TRACON_ANALYZE_ALLOW(mutable-global): the justification\n"
       "// continues across several comment lines before the\n"
       "// declaration itself.\n"
       "int g_knob = 0;\n"
       "}\n"},
  });
  EXPECT_EQ(count_rule(r, "mutable-global"), 0u);
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(Suppression, CommentBlockMustBeContiguous) {
  AnalysisResult r = analyze({
      {"src/sim/state.cpp",
       "namespace tracon {\n"
       "// TRACON_ANALYZE_ALLOW(mutable-global): too far away.\n"
       "int unrelated();\n"
       "int g_knob = 0;\n"
       "}\n"},
  });
  EXPECT_EQ(count_rule(r, "mutable-global"), 1u);
}

// ------------------------------------------------------- pipeline & reports

TEST(Pipeline, RuleFilterRunsOnlyThatPass) {
  std::vector<SourceFile> fixture = {
      {"src/util/helper.hpp", "#include \"sim/engine.hpp\"\n"},
      {"src/sim/engine.hpp", "#pragma once\nnamespace t {\nint g = 0;\n}\n"},
  };
  AnalysisResult only_layering = analyze(fixture, {"layering"});
  EXPECT_EQ(count_rule(only_layering, "layering"), 1u);
  EXPECT_EQ(count_rule(only_layering, "mutable-global"), 0u);
  AnalysisResult all = analyze(fixture);
  EXPECT_EQ(count_rule(all, "layering"), 1u);
  EXPECT_EQ(count_rule(all, "mutable-global"), 1u);
}

TEST(Pipeline, FindingsAreSortedAndDeterministic) {
  std::vector<SourceFile> fixture = {
      {"src/util/z.hpp", "#include \"sim/engine.hpp\"\n"},
      {"src/util/a.hpp", "#include \"sim/engine.hpp\"\n"},
      {"src/sim/engine.hpp", "#pragma once\n"},
  };
  AnalysisResult r1 = analyze(fixture);
  AnalysisResult r2 = analyze(fixture);
  ASSERT_EQ(r1.findings.size(), 2u);
  EXPECT_EQ(r1.findings[0].file, "src/util/a.hpp");
  EXPECT_EQ(r1.findings[1].file, "src/util/z.hpp");
  EXPECT_EQ(render_json(r1), render_json(r2));
  EXPECT_EQ(render_text(r1), render_text(r2));
}

TEST(Report, JsonShape) {
  AnalysisResult r = analyze({
      {"src/util/helper.hpp", "#include \"sim/engine.hpp\"\n"},
      {"src/sim/engine.hpp", "#pragma once\n"},
  });
  std::string json = render_json(r);
  EXPECT_NE(json.find("\"schema\": \"tracon.analyze_report/1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"tool\": {\"name\": \"tracon_analyze\""),
            std::string::npos);
  for (const RuleInfo& rule : rule_catalog()) {
    EXPECT_NE(json.find("\"name\": \"" + rule.name + "\""),
              std::string::npos);
  }
  EXPECT_NE(json.find("\"findings\": ["), std::string::npos);
  EXPECT_NE(json.find("\"summary\": {\"files\": 2, \"findings\": 1, "
                      "\"suppressed\": 0}"),
            std::string::npos);
}

TEST(Report, TextRendersCompilerStyle) {
  AnalysisResult r = analyze({
      {"src/util/helper.hpp", "#include \"sim/engine.hpp\"\n"},
      {"src/sim/engine.hpp", "#pragma once\n"},
  });
  std::string text = render_text(r);
  EXPECT_NE(text.find("src/util/helper.hpp:1: [layering]"),
            std::string::npos);
  EXPECT_NE(text.find("tracon_analyze: 1 finding(s), 0 suppressed, 2 "
                      "files"),
            std::string::npos);
}

TEST(Report, RuleCatalogHasAllFourPasses) {
  const std::vector<RuleInfo>& rules = rule_catalog();
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_EQ(rules[0].name, "layering");
  EXPECT_EQ(rules[1].name, "mutable-global");
  EXPECT_EQ(rules[2].name, "determinism-taint");
  EXPECT_EQ(rules[3].name, "parallel-discipline");
}

}  // namespace
}  // namespace tracon::analyze
