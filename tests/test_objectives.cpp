// Objective-dependent scheduler behaviour: the RT and IOPS objectives
// must actually steer decisions differently, and model configuration
// variants (WMM standardization, LM feature masks) must change outputs.
#include <gtest/gtest.h>

#include "model/linear.hpp"
#include "model/wmm.hpp"
#include "sched/mibs.hpp"
#include "sched/mios.hpp"
#include "util/rng.hpp"

namespace tracon {
namespace {

/// Three classes where the RT-best and IOPS-best neighbours differ:
/// next to class 1 a task of class 2 runs FAST but with LOW IOPS;
/// next to class 0 it runs slower but keeps its throughput.
sched::TablePredictor objective_split_predictor() {
  stats::Matrix rt = {{60.0, 60.0, 60.0, 50.0},
                      {110.0, 120.0, 115.0, 100.0},
                      {140.0, 105.0, 130.0, 100.0}};
  stats::Matrix io = {{90.0, 90.0, 90.0, 100.0},
                      {150.0, 150.0, 150.0, 200.0},
                      {180.0, 40.0, 90.0, 200.0}};
  return sched::TablePredictor(rt, io);
}

TEST(Objectives, MiosPicksDifferentSlotsPerObjective) {
  sched::TablePredictor pred = objective_split_predictor();
  sched::PlacementPolicy open;
  open.beneficial_joins_only = false;
  sched::ClusterCounts counts(3, 2);
  counts.place(0, std::nullopt);
  counts.place(1, std::nullopt);  // slots next to class 0 and class 1

  auto rt_slot = sched::mios_best_slot(2, counts, pred,
                                       sched::Objective::kRuntime, open);
  auto io_slot = sched::mios_best_slot(2, counts, pred,
                                       sched::Objective::kIops, open);
  ASSERT_TRUE(rt_slot.has_value() && io_slot.has_value());
  EXPECT_EQ(**rt_slot, 1u);  // fastest runtime (105)
  EXPECT_EQ(**io_slot, 0u);  // highest IOPS (180)
}

TEST(Objectives, MibsNamesReflectObjective) {
  sched::TablePredictor pred = objective_split_predictor();
  sched::MibsScheduler rt(pred, sched::Objective::kRuntime, 8);
  sched::MibsScheduler io(pred, sched::Objective::kIops, 8);
  EXPECT_NE(rt.name(), io.name());
  EXPECT_EQ(sched::objective_name(sched::Objective::kRuntime), "RT");
  EXPECT_EQ(sched::objective_name(sched::Objective::kIops), "IO");
}

TEST(Objectives, BatchOutcomeTracksBothTotals) {
  sched::TablePredictor pred = objective_split_predictor();
  std::vector<sched::QueuedTask> queue = {{2, 0.0}, {1, 0.0}};
  std::vector<std::size_t> order = {0, 1};
  sched::ClusterCounts counts(3, 2);
  sched::PlacementPolicy open;
  open.beneficial_joins_only = false;
  auto outcome = sched::mibs_batch(queue, order, counts, pred,
                                   sched::Objective::kRuntime, open);
  ASSERT_EQ(outcome.placements.size(), 2u);
  EXPECT_GT(outcome.predicted_runtime, 0.0);
  EXPECT_GT(outcome.predicted_iops, 0.0);
}

// ---- model configuration variants -------------------------------------

model::TrainingSet quadratic_data(int n) {
  Rng rng(91);
  model::TrainingSet ts;
  monitor::AppProfile fg{0.4, 0.05, 150.0, 30.0};
  for (int i = 0; i < n; ++i) {
    monitor::AppProfile bg;
    bg.domu_cpu = rng.uniform(0, 1);
    bg.dom0_cpu = rng.uniform(0, 0.2);
    bg.reads_per_s = rng.uniform(0, 400);
    bg.writes_per_s = rng.uniform(0, 250);
    double y = 40.0 + 25.0 * bg.domu_cpu + 0.05 * bg.reads_per_s +
               0.0005 * bg.reads_per_s * bg.writes_per_s +
               rng.normal(0.0, 1.0);
    ts.add(fg, bg, std::max(1.0, y), 100.0);
  }
  return ts;
}

TEST(ModelVariants, WmmStandardizationChangesNeighbourhoods) {
  model::TrainingSet ts = quadratic_data(150);
  model::WmmConfig raw;            // default: raw covariance
  model::WmmConfig standardized;
  standardized.standardize = true;
  model::WmmModel a(ts, model::Response::kRuntime, raw);
  model::WmmModel b(ts, model::Response::kRuntime, standardized);
  // Somewhere in feature space the two metrics must disagree.
  bool differ = false;
  for (int i = 0; i < 20 && !differ; ++i) {
    const auto& f = ts.observations()[static_cast<std::size_t>(i * 7)].features;
    std::vector<double> probe = f;
    probe[4] += 0.3;   // nudge bg cpu (small scale)
    probe[6] += 40.0;  // nudge bg reads (large scale)
    differ = std::abs(a.predict(probe) - b.predict(probe)) > 1e-9;
  }
  EXPECT_TRUE(differ);
}

TEST(ModelVariants, LinearModelFeatureMask) {
  model::TrainingSet ts = quadratic_data(150);
  model::LinearConfig cfg;
  cfg.active_features = {4, 6, 7};  // bg cpu, reads, writes only
  model::LinearModel masked(ts, model::Response::kRuntime, cfg);
  std::vector<double> x = ts.observations()[3].features;
  double before = masked.predict(x);
  x[1] += 100.0;  // fg dom0 is outside the mask
  x[5] += 100.0;  // bg dom0 is outside the mask
  EXPECT_EQ(masked.predict(x), before);
}

TEST(ModelVariants, WmmComponentCountClamped) {
  model::TrainingSet ts = quadratic_data(60);
  model::WmmConfig cfg;
  cfg.components = 100;  // more than features: must clamp, not throw
  model::WmmModel m(ts, model::Response::kRuntime, cfg);
  EXPECT_LE(m.pca().num_components(), 8u);
}

}  // namespace
}  // namespace tracon
