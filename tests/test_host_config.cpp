#include "virt/host_config.hpp"

#include <gtest/gtest.h>

#include "virt/host_sim.hpp"
#include "workload/benchmarks.hpp"

namespace tracon::virt {
namespace {

TEST(DiskConfig, TransferTimeScalesWithSize) {
  DiskConfig d;
  d.sequential_mbps = 100.0;
  EXPECT_NEAR(d.transfer_ms(1024.0), 10.0, 1e-9);  // 1 MiB at 100 MB/s
  EXPECT_NEAR(d.transfer_ms(64.0), 0.625, 1e-9);
}

TEST(HostConfig, Dom0CostStructure) {
  HostConfig cfg = HostConfig::paper_testbed();
  // Writes cost more than reads.
  EXPECT_GT(cfg.dom0_cost_per_iops(0.0, 64, 0.5),
            cfg.dom0_cost_per_iops(1.0, 64, 0.5));
  // Larger requests cost more.
  EXPECT_GT(cfg.dom0_cost_per_iops(0.5, 256, 0.5),
            cfg.dom0_cost_per_iops(0.5, 16, 0.5));
  // Sequential streams merge in the ring and cost less.
  EXPECT_GT(cfg.dom0_cost_per_iops(0.5, 64, 0.0),
            cfg.dom0_cost_per_iops(0.5, 64, 1.0));
}

TEST(HostConfig, PresetsDiffer) {
  HostConfig paper = HostConfig::paper_testbed();
  HostConfig ssd = HostConfig::ssd_testbed();
  HostConfig raid = HostConfig::raid_testbed();
  HostConfig iscsi = HostConfig::iscsi_testbed();
  EXPECT_LT(ssd.disk.positioning_ms, 0.2);
  EXPECT_GT(raid.disk.sequential_mbps, 2 * paper.disk.sequential_mbps);
  EXPECT_GT(iscsi.disk.per_request_latency_ms, 0.0);
  EXPECT_GT(iscsi.dom0_cpu_ms_per_read, paper.dom0_cpu_ms_per_read);
}

TEST(HostConfig, SsdNearlyEliminatesSequentialCollapse) {
  // The Table 1 killer pair (SeqRead vs SeqRead) on each device.
  auto pair_slowdown = [](HostConfig cfg) {
    cfg.noise_sigma = 0.0;
    HostSimulator sim(cfg);
    AppBehavior seq = workload::seqread_app();
    double solo = sim.solo(seq).runtime_s;
    return sim.measure_pair(seq, seq).runtime_s / solo;
  };
  double disk = pair_slowdown(HostConfig::paper_testbed());
  double raid = pair_slowdown(HostConfig::raid_testbed());
  double ssd = pair_slowdown(HostConfig::ssd_testbed());
  EXPECT_GT(disk, 6.0);        // order-of-magnitude on the spindle
  EXPECT_LT(raid, disk);       // striping softens it
  EXPECT_LT(ssd, 2.8);         // flash: mostly bandwidth sharing
}

TEST(HostConfig, IscsiSlowerThanLocal) {
  HostConfig local = HostConfig::paper_testbed();
  HostConfig remote = HostConfig::iscsi_testbed();
  local.noise_sigma = remote.noise_sigma = 0.0;
  AppBehavior seq = workload::seqread_app();
  double t_local = HostSimulator(local).solo(seq).runtime_s;
  double t_remote = HostSimulator(remote).solo(seq).runtime_s;
  EXPECT_GT(t_remote, t_local);
}

}  // namespace
}  // namespace tracon::virt
