#include "core/tracon.hpp"

#include <gtest/gtest.h>

#include "workload/benchmarks.hpp"

namespace tracon::core {
namespace {

/// A small system (3 apps, 27 synthetic workloads) for fast tests.
Tracon small_system() {
  TraconConfig cfg;
  cfg.synthetic.levels = 3;
  Tracon sys(cfg);
  sys.register_applications({*workload::benchmark_by_name("email"),
                             *workload::benchmark_by_name("compile"),
                             *workload::benchmark_by_name("video")});
  return sys;
}

TEST(Tracon, LifecycleGuards) {
  Tracon sys;
  EXPECT_FALSE(sys.trained());
  EXPECT_THROW(sys.perf_table(), std::invalid_argument);
  EXPECT_THROW(sys.predictor(), std::invalid_argument);
  EXPECT_THROW(sys.train(model::ModelKind::kLinear), std::invalid_argument);
  EXPECT_THROW(sys.register_applications({}), std::invalid_argument);
}

TEST(Tracon, RegisterBuildsPerfTableAndTrainingSets) {
  Tracon sys = small_system();
  EXPECT_EQ(sys.num_apps(), 3u);
  EXPECT_EQ(sys.perf_table().num_apps(), 3u);
  EXPECT_EQ(sys.training_set(0).size(), 28u);  // 27 synthetic + idle
  EXPECT_THROW(sys.training_set(3), std::invalid_argument);
  EXPECT_FALSE(sys.trained());
}

TEST(Tracon, TrainBuildsPredictor) {
  Tracon sys = small_system();
  sys.train(model::ModelKind::kLinear);
  EXPECT_TRUE(sys.trained());
  EXPECT_EQ(sys.model_kind(), model::ModelKind::kLinear);
  const auto& p = sys.predictor();
  EXPECT_EQ(p.num_apps(), 3u);
  // Predictions are positive and interference-sensitive.
  double solo = p.predict_runtime(2, std::nullopt);
  double paired = p.predict_runtime(2, std::optional<std::size_t>(2));
  EXPECT_GT(solo, 0.0);
  EXPECT_GT(paired, solo);
  EXPECT_NO_THROW(sys.models(0));
}

TEST(Tracon, RetrainSwitchesModelKind) {
  Tracon sys = small_system();
  sys.train(model::ModelKind::kLinear);
  double lm = sys.predictor().predict_runtime(2, std::optional<std::size_t>(1));
  sys.train(model::ModelKind::kWmm);
  double wmm =
      sys.predictor().predict_runtime(2, std::optional<std::size_t>(1));
  EXPECT_EQ(sys.model_kind(), model::ModelKind::kWmm);
  EXPECT_NE(lm, wmm);
}

TEST(Tracon, MakeSchedulerVariants) {
  Tracon sys = small_system();
  sys.train(model::ModelKind::kLinear);
  EXPECT_EQ(sys.make_scheduler(SchedulerKind::kFifo,
                               sched::Objective::kRuntime)
                ->name(),
            "FIFO");
  EXPECT_EQ(sys.make_scheduler(SchedulerKind::kMios,
                               sched::Objective::kRuntime)
                ->name(),
            "MIOS-RT");
  EXPECT_EQ(sys.make_scheduler(SchedulerKind::kMibs, sched::Objective::kIops,
                               4)
                ->name(),
            "MIBS4-IO");
  EXPECT_EQ(sys.make_scheduler(SchedulerKind::kMix,
                               sched::Objective::kRuntime, 2)
                ->name(),
            "MIX2-RT");
}

TEST(Tracon, FifoWorksWithoutTraining) {
  Tracon sys = small_system();
  EXPECT_NO_THROW(
      sys.make_scheduler(SchedulerKind::kFifo, sched::Objective::kRuntime));
  EXPECT_THROW(
      sys.make_scheduler(SchedulerKind::kMios, sched::Objective::kRuntime),
      std::invalid_argument);
}

TEST(Tracon, SchedulerKindNames) {
  EXPECT_EQ(scheduler_kind_name(SchedulerKind::kFifo), "FIFO");
  EXPECT_EQ(scheduler_kind_name(SchedulerKind::kMibs), "MIBS");
}

}  // namespace
}  // namespace tracon::core
