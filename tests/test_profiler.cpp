#include "model/profiler.hpp"

#include <gtest/gtest.h>

#include "workload/benchmarks.hpp"
#include "workload/synthetic.hpp"

namespace tracon::model {
namespace {

Profiler make_profiler() {
  return Profiler(virt::HostSimulator(virt::HostConfig::paper_testbed()), 42);
}

TEST(Profiler, SoloProfileMatchesAppCharacter) {
  Profiler prof = make_profiler();
  virt::AppBehavior video = *workload::benchmark_by_name("video");
  monitor::AppProfile p = prof.solo_profile(video);
  EXPECT_NEAR(p.reads_per_s, video.read_iops, 0.15 * video.read_iops);
  EXPECT_NEAR(p.writes_per_s, video.write_iops, 0.2 * video.write_iops);
  EXPECT_NEAR(p.domu_cpu, video.cpu_util, 0.15);
  EXPECT_GT(p.dom0_cpu, 0.0);
}

TEST(Profiler, SoloStatsAreCached) {
  Profiler prof = make_profiler();
  virt::AppBehavior app = *workload::benchmark_by_name("email");
  const virt::VmRunStats& a = prof.solo_stats(app);
  const virt::VmRunStats& b = prof.solo_stats(app);
  EXPECT_EQ(&a, &b);  // same cached object
}

TEST(Profiler, IdleBackgroundHandled) {
  Profiler prof = make_profiler();
  virt::AppBehavior idle;
  idle.name = "idle";
  idle.cpu_util = 0.0;
  monitor::AppProfile p = prof.solo_profile(idle);
  EXPECT_EQ(p.reads_per_s, 0.0);
  virt::AppBehavior email = *workload::benchmark_by_name("email");
  virt::PairMeasurement pm = prof.measure(email, idle);
  EXPECT_NEAR(pm.runtime_s, prof.solo_stats(email).runtime_s, 1e-9);
}

TEST(Profiler, TrainingSetHasOneRowPerBackgroundPlusIdle) {
  Profiler prof = make_profiler();
  workload::SyntheticConfig cfg;
  cfg.levels = 2;  // 8 synthetic workloads for speed
  auto backgrounds = workload::synthetic_workloads(cfg);
  virt::AppBehavior app = *workload::benchmark_by_name("web");
  TrainingSet ts = prof.profile_against(app, backgrounds);
  EXPECT_EQ(ts.size(), backgrounds.size() + 1);
  // The idle row's responses equal the solo measurements.
  const Observation& idle_row = ts.observations()[0];
  EXPECT_NEAR(idle_row.runtime, prof.solo_stats(app).runtime_s, 1e-9);
  // Foreground features constant across rows; background varies.
  const auto& obs = ts.observations();
  for (const auto& o : obs) {
    EXPECT_EQ(o.features[0], obs[0].features[0]);
    EXPECT_EQ(o.features[2], obs[0].features[2]);
  }
}

TEST(Profiler, MeasurementsAreDeterministic) {
  Profiler a = make_profiler();
  Profiler b = make_profiler();
  virt::AppBehavior fg = *workload::benchmark_by_name("dedup");
  virt::AppBehavior bg = *workload::benchmark_by_name("video");
  EXPECT_EQ(a.measure(fg, bg).runtime_s, b.measure(fg, bg).runtime_s);
}

TEST(Profiler, DifferentSeedsDifferentNoise) {
  Profiler a(virt::HostSimulator(virt::HostConfig::paper_testbed()), 1);
  Profiler b(virt::HostSimulator(virt::HostConfig::paper_testbed()), 2);
  virt::AppBehavior fg = *workload::benchmark_by_name("dedup");
  virt::AppBehavior bg = *workload::benchmark_by_name("video");
  EXPECT_NE(a.measure(fg, bg).runtime_s, b.measure(fg, bg).runtime_s);
}

}  // namespace
}  // namespace tracon::model
