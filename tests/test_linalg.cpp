#include "stats/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace tracon::stats {
namespace {

TEST(Cholesky, SolvesKnownSystem) {
  Matrix a = {{4.0, 2.0}, {2.0, 3.0}};
  Vector b = {10.0, 8.0};
  Vector x = cholesky_solve(a, b);
  EXPECT_NEAR(4.0 * x[0] + 2.0 * x[1], 10.0, 1e-12);
  EXPECT_NEAR(2.0 * x[0] + 3.0 * x[1], 8.0, 1e-12);
}

TEST(Cholesky, FactorReconstructs) {
  Matrix a = {{6.0, 2.0, 1.0}, {2.0, 5.0, 2.0}, {1.0, 2.0, 4.0}};
  Matrix l = cholesky_factor(a);
  Matrix reconstructed = l.multiply(l.transposed());
  EXPECT_LT(reconstructed.max_abs_diff(a), 1e-12);
}

TEST(Cholesky, RejectsNonSpd) {
  Matrix a = {{1.0, 2.0}, {2.0, 1.0}};  // indefinite
  EXPECT_THROW(cholesky_factor(a), std::invalid_argument);
  Matrix rect(2, 3);
  Vector b = {1.0, 2.0};
  EXPECT_THROW(cholesky_solve(rect, b), std::invalid_argument);
}

TEST(QrLeastSquares, ExactSquareSystem) {
  Matrix a = {{2.0, 1.0}, {1.0, 3.0}};
  Vector b = {5.0, 10.0};
  Vector x = qr_least_squares(a, b);
  EXPECT_NEAR(2.0 * x[0] + x[1], 5.0, 1e-10);
  EXPECT_NEAR(x[0] + 3.0 * x[1], 10.0, 1e-10);
}

TEST(QrLeastSquares, OverdeterminedMatchesNormalEquations) {
  Rng rng(5);
  Matrix a(40, 4);
  Vector b(40);
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = rng.uniform(-1, 1);
    b[i] = rng.uniform(-1, 1);
  }
  Vector x_qr = qr_least_squares(a, b);
  // Normal equations: (A^T A) x = A^T b.
  Matrix ata = a.gram();
  Vector atb(4, 0.0);
  for (std::size_t i = 0; i < 40; ++i)
    for (std::size_t j = 0; j < 4; ++j) atb[j] += a(i, j) * b[i];
  Vector x_ne = cholesky_solve(ata, atb);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(x_qr[j], x_ne[j], 1e-8);
}

TEST(QrLeastSquares, RankDeficientThrows) {
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i);
    a(i, 1) = 2.0 * static_cast<double>(i);  // collinear
  }
  Vector b = {1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW(qr_least_squares(a, b), std::invalid_argument);
}

TEST(QrLeastSquares, UnderdeterminedThrows) {
  Matrix a(2, 3);
  Vector b = {1.0, 2.0};
  EXPECT_THROW(qr_least_squares(a, b), std::invalid_argument);
}

TEST(JacobiEigen, DiagonalMatrix) {
  Matrix a = {{3.0, 0.0}, {0.0, 1.0}};
  EigenResult e = jacobi_eigen(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-10);
  EXPECT_NEAR(e.values[1], 1.0, 1e-10);
}

TEST(JacobiEigen, KnownSymmetric) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  Matrix a = {{2.0, 1.0}, {1.0, 2.0}};
  EigenResult e = jacobi_eigen(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-10);
  EXPECT_NEAR(e.values[1], 1.0, 1e-10);
}

TEST(JacobiEigen, EigenpairsSatisfyDefinition) {
  Rng rng(9);
  const std::size_t n = 6;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      double v = rng.uniform(-1, 1);
      a(i, j) = v;
      a(j, i) = v;
    }
  EigenResult e = jacobi_eigen(a);
  for (std::size_t k = 0; k < n; ++k) {
    Vector v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = e.vectors(i, k);
    Vector av = a.multiply(v);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(av[i], e.values[k] * v[i], 1e-8);
  }
  // Eigenvalues sorted descending.
  for (std::size_t k = 1; k < n; ++k)
    EXPECT_GE(e.values[k - 1], e.values[k] - 1e-12);
  // Eigenvectors orthonormal.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t l = 0; l < n; ++l) {
      double d = 0.0;
      for (std::size_t i = 0; i < n; ++i) d += e.vectors(i, k) * e.vectors(i, l);
      EXPECT_NEAR(d, k == l ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(JacobiEigen, NonSquareThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(jacobi_eigen(a), std::invalid_argument);
}

}  // namespace
}  // namespace tracon::stats
