// Lifecycle spans (DESIGN.md §6i): the tracon.spans stream round-trips
// byte-exactly, every task's spans tile [enqueue, complete] with the
// four latency components summing to the end-to-end latency, recording
// is deterministic per seed and byte-identical across worker threads,
// and the whole stream is invisible (no metric or decision byte
// changes) when disabled.
#include "obs/span_log.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <sstream>
#include <string>

#include "obs/breakdown.hpp"
#include "obs/telemetry.hpp"
#include "sched/mibs.hpp"
#include "sim/dynamic_scenario.hpp"
#include "sim/shard_scenario.hpp"
#include "workload/benchmarks.hpp"

namespace tracon {
namespace {

using obs::SpanDoc;
using obs::SpanEvent;
using obs::SpanLog;

const sim::PerfTable& table() {
  static sim::PerfTable t = [] {
    model::Profiler prof(
        virt::HostSimulator(virt::HostConfig::paper_testbed()), 42);
    return sim::PerfTable::build(prof, workload::paper_benchmarks());
  }();
  return t;
}

const sched::TablePredictor& oracle() {
  static sched::TablePredictor p = table().oracle_predictor();
  return p;
}

SpanEvent make_span(SpanEvent::Kind kind, std::uint64_t task, double t0,
                    double t1, std::size_t app,
                    std::size_t machine = SpanEvent::kNoMachine) {
  SpanEvent e;
  e.kind = kind;
  e.task = task;
  e.t0_s = t0;
  e.t1_s = t1;
  e.app = app;
  e.machine = machine;
  return e;
}

TEST(SpanLog, GoldenBytes) {
  SpanLog log;
  log.set_enabled(true);
  log.set_fingerprint("seed", "7");
  log.record(make_span(SpanEvent::Kind::kQueued, 3, 0.0, 12.5, 1));
  SpanEvent run = make_span(SpanEvent::Kind::kRunning, 3, 12.5, 400.0, 1, 17);
  run.neighbour = 2;
  run.factor = 0.8;
  log.record(run);
  log.record(
      make_span(SpanEvent::Kind::kMigrationFreeze, 3, 400.0, 400.5, 1, 17));
  SpanEvent copy =
      make_span(SpanEvent::Kind::kMigrationCopy, 3, 400.5, 410.5, 1, 4);
  copy.factor = 1.0;
  copy.copy_factor = 0.75;
  log.record(copy);
  SpanEvent done = make_span(SpanEvent::Kind::kCompleted, 3, 410.5, 410.5, 1, 4);
  done.solo_runtime_s = 320.0;
  log.record(done);

  const std::string expected =
      "{\"schema\": \"tracon.spans\", \"version\": 2, "
      "\"fingerprint\": {\"seed\": \"7\"}}\n"
      "{\"kind\": \"queued\", \"task\": 3, \"t0\": 0, \"t1\": 12.5, "
      "\"app\": 1}\n"
      "{\"kind\": \"running\", \"task\": 3, \"t0\": 12.5, \"t1\": 400, "
      "\"app\": 1, \"machine\": 17, \"neighbour\": 2, \"factor\": 0.8}\n"
      "{\"kind\": \"migration_freeze\", \"task\": 3, \"t0\": 400, "
      "\"t1\": 400.5, \"app\": 1, \"machine\": 17}\n"
      "{\"kind\": \"migration_copy\", \"task\": 3, \"t0\": 400.5, "
      "\"t1\": 410.5, \"app\": 1, \"machine\": 4, \"neighbour\": \"empty\", "
      "\"factor\": 1, \"copy_factor\": 0.75}\n"
      "{\"kind\": \"completed\", \"task\": 3, \"t\": 410.5, \"app\": 1, "
      "\"machine\": 4, \"solo_runtime_s\": 320}\n";
  EXPECT_EQ(log.str(), expected);
}

TEST(SpanLog, RoundTripsByteExactly) {
  SpanLog log;
  log.set_enabled(true);
  log.set_fingerprint("seed", "7");
  log.set_fingerprint("scheduler", "MIBS_8");
  log.record(make_span(SpanEvent::Kind::kQueued, 1, 0.0, 4.25, 0));
  SpanEvent run = make_span(SpanEvent::Kind::kRunning, 1, 4.25, 104.25, 0, 9);
  run.factor = 0.9;
  log.record(run);
  SpanEvent done =
      make_span(SpanEvent::Kind::kCompleted, 1, 104.25, 104.25, 0, 9);
  done.solo_runtime_s = 90.0;
  log.record(done);

  const std::string bytes = log.str();
  SpanDoc doc = obs::parse_span_log(bytes);
  EXPECT_EQ(doc.version, 2);
  EXPECT_EQ(doc.fingerprint.at("seed"), "7");
  ASSERT_EQ(doc.events.size(), 3u);
  EXPECT_EQ(doc.events[0].kind, SpanEvent::Kind::kQueued);
  EXPECT_EQ(doc.events[1].machine, 9u);
  EXPECT_FALSE(doc.events[1].neighbour.has_value());
  EXPECT_EQ(doc.events[2].kind, SpanEvent::Kind::kCompleted);
  EXPECT_EQ(doc.events[2].t0_s, doc.events[2].t1_s);
  // The re-emitter is byte-compatible with the recorder.
  EXPECT_EQ(obs::span_log_str(doc), bytes);
}

TEST(SpanLog, ParserRejectsMalformedDocuments) {
  // No header line.
  EXPECT_THROW(obs::parse_span_log(std::string("")), std::invalid_argument);
  const std::string header =
      "{\"schema\": \"tracon.spans\", \"version\": 2, \"fingerprint\": {}}\n";
  // Unknown record kind.
  EXPECT_THROW(obs::parse_span_log(
                   header + "{\"kind\": \"paused\", \"task\": 1, \"t0\": 0, "
                            "\"t1\": 1, \"app\": 0, \"machine\": 0}\n"),
               std::invalid_argument);
  // A span that runs backwards.
  EXPECT_THROW(obs::parse_span_log(
                   header + "{\"kind\": \"queued\", \"task\": 1, \"t0\": 5, "
                            "\"t1\": 4, \"app\": 0}\n"),
               std::invalid_argument);
  // Malformed neighbour spelling.
  EXPECT_THROW(
      obs::parse_span_log(
          header + "{\"kind\": \"running\", \"task\": 1, \"t0\": 0, "
                   "\"t1\": 1, \"app\": 0, \"machine\": 0, \"neighbour\": "
                   "\"nobody\", \"factor\": 1}\n"),
      std::invalid_argument);
  // Foreign schema.
  EXPECT_THROW(obs::parse_span_log(std::string(
                   "{\"schema\": \"tracon.decision_log\", \"version\": 2, "
                   "\"fingerprint\": {}}\n")),
               std::invalid_argument);
}

TEST(SpanLog, GateAndZeroLengthSuppression) {
  SpanLog log;
  ASSERT_FALSE(log.enabled());
  log.record(make_span(SpanEvent::Kind::kQueued, 1, 0.0, 5.0, 0));
  EXPECT_EQ(log.size(), 0u);
  log.set_enabled(true);
  // Zero-length segments carry no time and are dropped...
  log.record(make_span(SpanEvent::Kind::kRunning, 1, 5.0, 5.0, 0, 2));
  EXPECT_EQ(log.size(), 0u);
  // ...except the completed marker, which is zero-length by definition.
  log.record(make_span(SpanEvent::Kind::kCompleted, 1, 5.0, 5.0, 0, 2));
  EXPECT_EQ(log.size(), 1u);
  // The merge path bypasses the gate by design.
  log.set_enabled(false);
  log.append(make_span(SpanEvent::Kind::kQueued, 2, 0.0, 1.0, 0));
  EXPECT_EQ(log.size(), 2u);
}

// ---- breakdown arithmetic ----------------------------------------------

TEST(Breakdown, HandComputedMigrationCase) {
  SpanDoc doc;
  doc.version = 2;
  doc.events.push_back(make_span(SpanEvent::Kind::kQueued, 5, 0.0, 10.0, 1));
  SpanEvent run1 = make_span(SpanEvent::Kind::kRunning, 5, 10.0, 110.0, 1, 3);
  run1.neighbour = 0;
  run1.factor = 0.8;
  doc.events.push_back(run1);
  doc.events.push_back(
      make_span(SpanEvent::Kind::kMigrationFreeze, 5, 110.0, 112.0, 1, 3));
  SpanEvent copy =
      make_span(SpanEvent::Kind::kMigrationCopy, 5, 112.0, 122.0, 1, 8);
  copy.factor = 0.9;
  copy.copy_factor = 0.75;
  doc.events.push_back(copy);
  SpanEvent run2 = make_span(SpanEvent::Kind::kRunning, 5, 122.0, 150.0, 1, 8);
  run2.factor = 1.0;
  doc.events.push_back(run2);
  SpanEvent done = make_span(SpanEvent::Kind::kCompleted, 5, 150.0, 150.0, 1, 8);
  done.solo_runtime_s = 114.75;
  doc.events.push_back(done);

  obs::BreakdownReport r = obs::breakdown(doc);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.incomplete, 0u);
  const obs::TaskBreakdown& row = r.rows[0];
  EXPECT_EQ(row.task, 5u);
  EXPECT_TRUE(row.completed);
  // queued [0,10]: wait 10.
  EXPECT_DOUBLE_EQ(row.wait_s, 10.0);
  // running 100 s at 0.8 -> solo 80, interference 20;
  // copy 10 s at 0.9*0.75 -> solo 6.75, interference 1, migration 2.25;
  // freeze 2 s -> migration 2; running 28 s at 1.0 -> solo 28.
  EXPECT_NEAR(row.solo_s, 114.75, 1e-12);
  EXPECT_NEAR(row.interference_s, 21.0, 1e-12);
  EXPECT_NEAR(row.migration_s, 4.25, 1e-12);
  EXPECT_DOUBLE_EQ(row.solo_runtime_s, 114.75);
  // The components tile [enqueue, complete] exactly.
  EXPECT_NEAR(row.wait_s + row.solo_s + row.interference_s + row.migration_s,
              row.end_to_end_s(), 1e-9);
  EXPECT_EQ(row.machine, 3u);  // first placement machine
  EXPECT_DOUBLE_EQ(row.start_s, 10.0);
  EXPECT_EQ(r.by_app.at(1).tasks, 1u);
  EXPECT_NEAR(r.total.end_to_end_s(), 150.0, 1e-9);
}

TEST(Breakdown, RejectsNonTilingChains) {
  SpanDoc doc;
  doc.version = 2;
  doc.events.push_back(make_span(SpanEvent::Kind::kQueued, 1, 0.0, 10.0, 0));
  doc.events.push_back(
      make_span(SpanEvent::Kind::kRunning, 1, 11.0, 20.0, 0, 2));  // gap
  EXPECT_THROW(obs::breakdown(doc), std::invalid_argument);

  SpanDoc after_complete;
  after_complete.version = 2;
  after_complete.events.push_back(
      make_span(SpanEvent::Kind::kRunning, 1, 0.0, 10.0, 0, 2));
  after_complete.events.push_back(
      make_span(SpanEvent::Kind::kCompleted, 1, 10.0, 10.0, 0, 2));
  after_complete.events.push_back(
      make_span(SpanEvent::Kind::kRunning, 1, 10.0, 20.0, 0, 2));
  EXPECT_THROW(obs::breakdown(after_complete), std::invalid_argument);
}

TEST(Breakdown, WindowAggregationBucketsByCompletionTime) {
  SpanDoc doc;
  doc.version = 2;
  for (std::uint64_t task : {1u, 2u}) {
    const double shift = task == 1 ? 0.0 : 500.0;
    SpanEvent run =
        make_span(SpanEvent::Kind::kRunning, task, shift, shift + 100.0, 0, 0);
    doc.events.push_back(run);
    SpanEvent done = make_span(SpanEvent::Kind::kCompleted, task,
                               shift + 100.0, shift + 100.0, 0, 0);
    done.solo_runtime_s = 100.0;
    doc.events.push_back(done);
  }
  obs::BreakdownReport r = obs::breakdown(doc, 300.0);
  ASSERT_EQ(r.by_window.size(), 2u);
  EXPECT_EQ(r.by_window.at(0).tasks, 1u);  // completes at 100
  EXPECT_EQ(r.by_window.at(2).tasks, 1u);  // completes at 600
}

TEST(CriticalPath, WalksSameMachinePredecessors) {
  SpanDoc doc;
  doc.version = 2;
  // Task 1 holds machine 0 until t=100; task 2 arrives at 50, waits for
  // it, and sets the makespan at t=180.
  doc.events.push_back(make_span(SpanEvent::Kind::kRunning, 1, 0.0, 100.0, 0, 0));
  SpanEvent done1 = make_span(SpanEvent::Kind::kCompleted, 1, 100.0, 100.0, 0, 0);
  done1.solo_runtime_s = 100.0;
  doc.events.push_back(done1);
  doc.events.push_back(make_span(SpanEvent::Kind::kQueued, 2, 50.0, 100.0, 1));
  doc.events.push_back(
      make_span(SpanEvent::Kind::kRunning, 2, 100.0, 180.0, 1, 0));
  SpanEvent done2 = make_span(SpanEvent::Kind::kCompleted, 2, 180.0, 180.0, 1, 0);
  done2.solo_runtime_s = 80.0;
  doc.events.push_back(done2);

  std::vector<obs::CriticalPathEntry> chain = obs::critical_path(doc);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].task, 1u);
  EXPECT_EQ(chain[1].task, 2u);
  EXPECT_DOUBLE_EQ(chain[1].wait_s, 50.0);
  EXPECT_DOUBLE_EQ(chain.back().complete_s, 180.0);
}

// ---- live recording through the simulator ------------------------------

struct SingleRun {
  std::string spans;
  std::string decisions;
  std::string metrics;
};

SingleRun run_single(std::uint64_t seed, bool spans) {
  sim::DynamicConfig cfg;
  cfg.machines = 12;
  cfg.lambda_per_min = 30.0;
  cfg.duration_s = 3600.0;
  cfg.seed = seed;
  obs::Telemetry tel;
  tel.decisions.set_enabled(true);
  tel.spans.set_enabled(spans);
  cfg.telemetry = &tel;
  sched::MibsScheduler sched(oracle(), sched::Objective::kRuntime, 8, 60.0);
  sched.set_telemetry(&tel);
  sim::run_dynamic(table(), sched, cfg);
  SingleRun out;
  out.spans = tel.spans.str();
  out.decisions = tel.decisions.str();
  std::ostringstream metrics;
  tel.metrics.write_json(metrics);
  out.metrics = metrics.str();
  return out;
}

TEST(SpanRecording, TilesAndSumsOnALiveRun) {
  SingleRun a = run_single(7, true);
  SpanDoc doc = obs::parse_span_log(a.spans);
  ASSERT_FALSE(doc.events.empty());
  obs::BreakdownReport r = obs::breakdown(doc);  // throws on any gap/overlap
  EXPECT_GT(r.rows.size(), 0u);
  for (const obs::TaskBreakdown& row : r.rows) {
    EXPECT_NEAR(row.wait_s + row.solo_s + row.interference_s + row.migration_s,
                row.end_to_end_s(), 1e-9)
        << "task " << row.task;
    EXPECT_GE(row.wait_s, 0.0);
    EXPECT_GT(row.solo_s, 0.0);
    // interference_s may be slightly negative: a pairing whose speed
    // exceeds 1 outpaces solo, and the penalty becomes a credit.
    EXPECT_GT(row.solo_runtime_s, 0.0);
    EXPECT_LT(row.machine, 12u);
  }
  // The critical path ends at the latest completion and stays
  // chronologically ordered.
  std::vector<obs::CriticalPathEntry> chain = obs::critical_path(doc);
  ASSERT_FALSE(chain.empty());
  double latest = 0.0;
  for (const obs::TaskBreakdown& row : r.rows)
    latest = std::max(latest, row.complete_s);
  EXPECT_DOUBLE_EQ(chain.back().complete_s, latest);
  for (std::size_t i = 1; i < chain.size(); ++i)
    EXPECT_LE(chain[i - 1].complete_s, chain[i].start_s);
}

TEST(SpanRecording, SeedDeterministic) {
  SingleRun a = run_single(7, true);
  EXPECT_EQ(run_single(7, true).spans, a.spans);
  EXPECT_NE(run_single(8, true).spans, a.spans);
}

TEST(SpanRecording, DisabledLogLeavesOtherOutputsUntouched) {
  SingleRun on = run_single(7, true);
  SingleRun off = run_single(7, false);
  EXPECT_TRUE(off.spans.find("\"kind\"") == std::string::npos);
  // Enabling spans adds no counters/gauges/histograms and no decision
  // records: both exports are byte-identical either way.
  EXPECT_EQ(on.metrics, off.metrics);
  EXPECT_EQ(on.decisions, off.decisions);
}

// ---- sharded execution -------------------------------------------------

struct ShardedRun {
  std::string spans;
  std::string metrics;
};

ShardedRun run_sharded(std::uint64_t seed, std::size_t threads, bool spans) {
  sim::ShardedConfig cfg;
  cfg.machines = 26;  // uneven split: 4 shards of 7,7,6,6
  cfg.lambda_per_min = 40.0;
  cfg.duration_s = 3600.0;
  cfg.seed = seed;
  cfg.shards = 4;
  cfg.threads = threads;
  obs::Telemetry tel;
  tel.spans.set_enabled(spans);
  cfg.telemetry = &tel;
  run_dynamic_sharded(
      table(),
      [](std::size_t) -> std::unique_ptr<sched::Scheduler> {
        return std::make_unique<sched::MibsScheduler>(
            oracle(), sched::Objective::kRuntime, 8, 60.0);
      },
      cfg);
  ShardedRun out;
  out.spans = tel.spans.str();
  std::ostringstream metrics;
  tel.metrics.write_json(metrics);
  out.metrics = metrics.str();
  return out;
}

TEST(SpanSharding, FourThreadsByteIdenticalToOne) {
  for (std::uint64_t seed : {7u, 23u}) {
    ShardedRun a = run_sharded(seed, 1, true);
    ShardedRun b = run_sharded(seed, 4, true);
    EXPECT_EQ(a.spans, b.spans) << "seed " << seed;
    EXPECT_FALSE(a.spans.empty());
    SpanDoc doc = obs::parse_span_log(a.spans);
    EXPECT_FALSE(doc.events.empty());
    // Merged spans carry globally re-indexed machine ids and still
    // tile per task (breakdown throws otherwise).
    for (const SpanEvent& e : doc.events) {
      if (e.machine != SpanEvent::kNoMachine) EXPECT_LT(e.machine, 26u);
    }
    obs::BreakdownReport r = obs::breakdown(doc);
    EXPECT_GT(r.rows.size(), 0u);
    for (const obs::TaskBreakdown& row : r.rows) {
      EXPECT_NEAR(
          row.wait_s + row.solo_s + row.interference_s + row.migration_s,
          row.end_to_end_s(), 1e-9);
    }
  }
}

TEST(SpanSharding, DisabledLogLeavesShardedMetricsUntouched) {
  ShardedRun on = run_sharded(7, 4, true);
  ShardedRun off = run_sharded(7, 4, false);
  EXPECT_EQ(on.metrics, off.metrics);
}

}  // namespace
}  // namespace tracon
