#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "util/summary.hpp"

namespace tracon {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double x = r.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = r.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  OnlineStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, NormalZeroStddevIsMean) {
  Rng r(11);
  EXPECT_EQ(r.normal(3.5, 0.0), 3.5);
}

TEST(Rng, ExponentialMean) {
  Rng r(13);
  OnlineStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.exponential(0.5));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
}

TEST(Rng, LognormalNoiseMedianNearOne) {
  Rng r(17);
  std::vector<double> xs;
  for (int i = 0; i < 10001; ++i) xs.push_back(r.lognormal_noise(0.2));
  EXPECT_NEAR(percentile(xs, 0.5), 1.0, 0.03);
  for (double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Rng, LognormalZeroSigmaIsOne) {
  Rng r(17);
  EXPECT_EQ(r.lognormal_noise(0.0), 1.0);
}

TEST(Rng, IndexCoversRange) {
  Rng r(19);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) ++seen[r.index(5)];
  for (int c : seen) EXPECT_GT(c, 100);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(23);
  Rng child = parent.fork();
  OnlineStats diff;
  for (int i = 0; i < 100; ++i)
    diff.add(parent.uniform() - child.uniform());
  // Fully correlated streams would give ~0 variance.
  EXPECT_GT(diff.stddev(), 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(29);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  r.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to match
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, PreconditionViolationsThrow) {
  Rng r(1);
  EXPECT_THROW(r.uniform(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(r.uniform_int(3, 2), std::invalid_argument);
  EXPECT_THROW(r.normal(0.0, -1.0), std::invalid_argument);
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(r.lognormal_noise(-0.1), std::invalid_argument);
  EXPECT_THROW(r.index(0), std::invalid_argument);
}

}  // namespace
}  // namespace tracon
