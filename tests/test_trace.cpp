#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sched/fifo.hpp"
#include "sim/dynamic_scenario.hpp"
#include "workload/benchmarks.hpp"

namespace tracon::sim {
namespace {

TEST(TraceRecorder, RecordsAndCounts) {
  TraceRecorder t;
  t.record(1.0, TaskEventKind::kArrived, 3);
  t.record(1.5, TaskEventKind::kPlaced, 3, 7);
  t.record(9.0, TaskEventKind::kCompleted, 3, 7);
  t.record(2.0, TaskEventKind::kDropped, 5);
  EXPECT_EQ(t.events().size(), 4u);
  EXPECT_EQ(t.count(TaskEventKind::kArrived), 1u);
  EXPECT_EQ(t.count(TaskEventKind::kPlaced), 1u);
  EXPECT_EQ(t.count(TaskEventKind::kDropped), 1u);
  t.clear();
  EXPECT_TRUE(t.events().empty());
}

TEST(TraceRecorder, CsvFormat) {
  TraceRecorder t;
  t.record(1.5, TaskEventKind::kPlaced, 3, 7);
  t.record(2.0, TaskEventKind::kDropped, 5);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(),
            "time_s,event,app,machine\n"
            "1.5,placed,3,7\n"
            "2,dropped,5,\n");
}

TEST(TraceRecorder, KindNames) {
  EXPECT_EQ(task_event_kind_name(TaskEventKind::kArrived), "arrived");
  EXPECT_EQ(task_event_kind_name(TaskEventKind::kCompleted), "completed");
}

TEST(TraceRecorder, KindNamesRoundTripThroughParse) {
  for (auto kind : {TaskEventKind::kArrived, TaskEventKind::kDropped,
                    TaskEventKind::kPlaced, TaskEventKind::kCompleted}) {
    auto parsed = parse_task_event_kind(task_event_kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_task_event_kind("exploded").has_value());
  EXPECT_FALSE(parse_task_event_kind("").has_value());
}

TEST(TraceRecorder, JsonlFormat) {
  TraceRecorder t;
  t.record(1.5, TaskEventKind::kPlaced, 3, 7);
  t.record(2.0, TaskEventKind::kDropped, 5);
  std::ostringstream os;
  t.write_jsonl(os);
  EXPECT_EQ(os.str(),
            "{\"schema\": \"tracon.task_events\", \"version\": 2, "
            "\"events\": 2}\n"
            "{\"time_s\": 1.5, \"event\": \"placed\", \"app\": 3, "
            "\"machine\": 7}\n"
            "{\"time_s\": 2, \"event\": \"dropped\", \"app\": 5}\n");
}

class TracedDynamic : public ::testing::Test {
 protected:
  static const PerfTable& table() {
    static PerfTable t = [] {
      model::Profiler prof(
          virt::HostSimulator(virt::HostConfig::paper_testbed()), 42);
      // The mix sampler draws over the full 8-benchmark rank scale, so
      // the table must cover all of them.
      return PerfTable::build(prof, workload::paper_benchmarks());
    }();
    return t;
  }
};

TEST_F(TracedDynamic, TraceMatchesOutcomeCounts) {
  TraceRecorder trace;
  DynamicConfig cfg;
  cfg.machines = 4;
  cfg.lambda_per_min = 30.0;
  cfg.duration_s = 1800.0;
  cfg.trace = &trace;
  sched::FifoScheduler fifo(9);
  DynamicOutcome o = run_dynamic(table(), fifo, cfg);

  EXPECT_EQ(trace.count(TaskEventKind::kArrived), o.arrived);
  EXPECT_EQ(trace.count(TaskEventKind::kDropped), o.dropped);
  EXPECT_EQ(trace.count(TaskEventKind::kCompleted), o.completed);
  // Every completion was preceded by a placement.
  EXPECT_GE(trace.count(TaskEventKind::kPlaced),
            trace.count(TaskEventKind::kCompleted));
  // Events are time-ordered (the simulator emits them in event order).
  for (std::size_t i = 1; i < trace.events().size(); ++i)
    EXPECT_LE(trace.events()[i - 1].time_s, trace.events()[i].time_s);
  // Placements and completions carry machine ids within range.
  for (const auto& e : trace.events()) {
    if (e.kind == TaskEventKind::kPlaced ||
        e.kind == TaskEventKind::kCompleted) {
      EXPECT_LT(e.machine, cfg.machines);
    }
  }
}

TEST_F(TracedDynamic, ExplicitArrivalListHonored) {
  std::vector<Arrival> arrivals = {{10.0, 0}, {20.0, 1}, {30.0, 0}};
  DynamicConfig cfg;
  cfg.machines = 4;
  cfg.duration_s = 600.0;
  sched::FifoScheduler fifo(9);
  DynamicOutcome o = run_dynamic(table(), fifo, cfg, arrivals);
  EXPECT_EQ(o.arrived, 3u);
  EXPECT_EQ(o.completed, 3u);
  EXPECT_EQ(o.dropped, 0u);
}

TEST_F(TracedDynamic, UnsortedArrivalsRejected) {
  std::vector<Arrival> arrivals = {{20.0, 0}, {10.0, 1}};
  DynamicConfig cfg;
  cfg.machines = 2;
  sched::FifoScheduler fifo(9);
  EXPECT_THROW(run_dynamic(table(), fifo, cfg, arrivals),
               std::invalid_argument);
}

TEST_F(TracedDynamic, GeneratedArrivalsSortedAndMixed) {
  DynamicConfig cfg;
  cfg.lambda_per_min = 120.0;
  cfg.duration_s = 3600.0;
  cfg.mix = workload::MixKind::kUniform;
  auto arrivals = generate_arrivals(cfg, 8);
  ASSERT_GT(arrivals.size(), 50u);
  for (std::size_t i = 1; i < arrivals.size(); ++i)
    EXPECT_LE(arrivals[i - 1].time_s, arrivals[i].time_s);
  // Mean inter-arrival ~ 0.5 s at 120/min.
  double span = arrivals.back().time_s - arrivals.front().time_s;
  EXPECT_NEAR(span / static_cast<double>(arrivals.size() - 1), 0.5, 0.1);
}

}  // namespace
}  // namespace tracon::sim
