// Windowed telemetry: WindowedAccuracy ring semantics, SnapshotSeries
// record/parse round trips, byte-identical same-seed series from the
// dynamic scenario, and the drift A/B — the confidence-weighted MIX
// beating the frozen equal-weight blend once the workload mix shifts.
#include "obs/snapshot.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "obs/accuracy.hpp"
#include "obs/telemetry.hpp"
#include "sched/fifo.hpp"
#include "sched/mix.hpp"
#include "sim/arrival_source.hpp"
#include "sim/dynamic_scenario.hpp"
#include "workload/benchmarks.hpp"
#include "workload/mixes.hpp"

namespace tracon {
namespace {

using obs::AccuracyTracker;
using obs::MetricsSeries;
using obs::SnapshotSeries;
using obs::WindowedAccuracy;

TEST(WindowedAccuracyTest, EmptyWindowIsAllZeros) {
  WindowedAccuracy win(4);
  EXPECT_EQ(win.capacity(), 4u);
  EXPECT_EQ(win.size(), 0u);
  EXPECT_EQ(win.total(), 0u);
  EXPECT_DOUBLE_EQ(win.mean_abs_error(), 0.0);
  EXPECT_DOUBLE_EQ(win.quantile(0.5), 0.0);
  EXPECT_THROW(WindowedAccuracy(0), std::invalid_argument);
}

TEST(WindowedAccuracyTest, RingEvictsOldestPastCapacity) {
  WindowedAccuracy win(4);
  // Errors 0.1, 0.2, ..., 0.6; the ring keeps the last four.
  for (int i = 1; i <= 6; ++i) win.record(100.0 + 10.0 * i, 100.0);
  EXPECT_EQ(win.size(), 4u);
  EXPECT_EQ(win.total(), 6u);
  EXPECT_NEAR(win.mean_abs_error(), (0.3 + 0.4 + 0.5 + 0.6) / 4.0, 1e-12);
  EXPECT_NEAR(win.quantile(0.0), 0.3, 1e-12);
  EXPECT_NEAR(win.quantile(0.5), 0.5, 1e-12);
  EXPECT_NEAR(win.quantile(1.0), 0.6, 1e-12);
}

TEST(WindowedAccuracyTest, AgreesWithCumulativeTrackerWhenNothingEvicted) {
  obs::MetricsRegistry reg;
  AccuracyTracker tracker(reg, "NLM", "runtime");
  WindowedAccuracy win(16);
  const double pairs[][2] = {
      {110.0, 100.0}, {80.0, 100.0}, {150.0, 120.0}, {60.0, 90.0}, {5.0, 4.0}};
  for (const auto& p : pairs) {
    tracker.record(p[0], p[1]);
    win.record(p[0], p[1]);
  }
  // Window capacity exceeds the sample count, so the rolling mean must
  // equal the cumulative histogram's mean |relative error|.
  const obs::Histogram& abs_hist =
      reg.histograms().at("model.nlm.runtime.rel_error_abs");
  EXPECT_EQ(win.size(), abs_hist.count());
  EXPECT_NEAR(win.mean_abs_error(),
              abs_hist.sum() / static_cast<double>(abs_hist.count()), 1e-12);
}

TEST(SnapshotSeriesTest, EmitsCounterDeltasGaugesAndAccuracy) {
  obs::MetricsRegistry reg;
  WindowedAccuracy win(8);
  SnapshotSeries series(reg, 10.0);
  series.track_accuracy("model.test.runtime", &win);
  reg.counter("sim.tasks.arrived").inc(5);
  reg.gauge("sim.queue.length").set(2.0);
  win.record(110.0, 100.0);
  series.sample(10.0);
  reg.counter("sim.tasks.arrived").inc(3);
  reg.gauge("sim.queue.length").set(7.0);
  series.sample(20.0);

  MetricsSeries parsed = obs::parse_metrics_series(series.str());
  EXPECT_EQ(parsed.version, 2);
  EXPECT_DOUBLE_EQ(parsed.interval_s, 10.0);
  ASSERT_EQ(parsed.windows.size(), 2u);
  EXPECT_EQ(parsed.windows[0].index, 0u);
  EXPECT_DOUBLE_EQ(parsed.windows[0].t_start, 0.0);
  EXPECT_DOUBLE_EQ(parsed.windows[0].t_end, 10.0);
  EXPECT_DOUBLE_EQ(parsed.windows[1].t_start, 10.0);
  // Counters report per-window deltas, not running totals.
  EXPECT_DOUBLE_EQ(parsed.windows[0].counters.at("sim.tasks.arrived"), 5.0);
  EXPECT_DOUBLE_EQ(parsed.windows[1].counters.at("sim.tasks.arrived"), 3.0);
  // Gauges report the value as of t_end.
  EXPECT_DOUBLE_EQ(parsed.windows[1].gauges.at("sim.queue.length"), 7.0);
  const auto& acc = parsed.windows[0].accuracy.at("model.test.runtime");
  EXPECT_DOUBLE_EQ(acc.count, 1.0);
  EXPECT_DOUBLE_EQ(acc.total, 1.0);
  EXPECT_NEAR(acc.mean_abs, 0.1, 1e-12);
}

TEST(SnapshotSeriesTest, RejectsNonAdvancingSampleTime) {
  obs::MetricsRegistry reg;
  SnapshotSeries series(reg, 10.0);
  series.sample(10.0);
  EXPECT_THROW(series.sample(10.0), std::invalid_argument);
  EXPECT_THROW(series.sample(5.0), std::invalid_argument);
  EXPECT_THROW(SnapshotSeries(reg, 0.0), std::invalid_argument);
}

TEST(SnapshotSeriesTest, ParserRejectsForeignOrMalformedDocuments) {
  EXPECT_THROW(obs::parse_metrics_series(""), std::invalid_argument);
  EXPECT_THROW(obs::parse_metrics_series(
                   "{\"schema\": \"tracon.trace\", \"version\": 1, "
                   "\"interval_s\": 5}\n"),
               std::invalid_argument);
  EXPECT_THROW(obs::parse_metrics_series(
                   "{\"schema\": \"tracon.metrics_series\", \"version\": "
                   "999, \"interval_s\": 5}\n"),
               std::invalid_argument);
}

const sim::PerfTable& table() {
  static sim::PerfTable t = [] {
    model::Profiler prof(
        virt::HostSimulator(virt::HostConfig::paper_testbed()), 42);
    return sim::PerfTable::build(prof, workload::paper_benchmarks());
  }();
  return t;
}

std::string run_series_once(double interval_s) {
  obs::Telemetry tel;
  tel.tracer.set_enabled(false);
  SnapshotSeries series(tel.metrics, interval_s);
  sched::FifoScheduler fifo(1);
  sim::DynamicConfig cfg;
  cfg.machines = 8;
  cfg.lambda_per_min = 4.0;
  cfg.duration_s = 3600.0;
  cfg.seed = 3;
  cfg.telemetry = &tel;
  cfg.snapshots = &series;
  sim::run_dynamic(table(), fifo, cfg);
  return series.str();
}

TEST(SnapshotIntegration, SameSeedRunsEmitByteIdenticalSeries) {
  EXPECT_EQ(run_series_once(600.0), run_series_once(600.0));
}

TEST(SnapshotIntegration, WindowsTileTheHorizonWithFinalPartialWindow) {
  MetricsSeries parsed = obs::parse_metrics_series(run_series_once(1000.0));
  // 3600 s at 1000 s per window: 1000, 2000, 3000, then a partial one.
  ASSERT_EQ(parsed.windows.size(), 4u);
  double prev_end = 0.0;
  for (const obs::SeriesWindow& w : parsed.windows) {
    EXPECT_DOUBLE_EQ(w.t_start, prev_end);
    prev_end = w.t_end;
    for (const auto& [name, delta] : w.counters) {
      EXPECT_GE(delta, 0.0) << name;
    }
  }
  EXPECT_DOUBLE_EQ(parsed.windows.back().t_end, 3600.0);
  EXPECT_DOUBLE_EQ(parsed.windows.back().t_start, 3000.0);
}

/// A deliberately misleading family: inverts and inflates the oracle's
/// runtime ordering, so placements it likes are placements the cluster
/// regrets. Stands in for a model trained on a stale workload mix.
class MisleadingPredictor final : public sched::Predictor {
 public:
  explicit MisleadingPredictor(const sched::TablePredictor& oracle)
      : oracle_(oracle) {}
  std::size_t num_apps() const override { return oracle_.num_apps(); }
  double predict_runtime(
      std::size_t task,
      const std::optional<std::size_t>& neighbour) const override {
    const double solo = oracle_.predict_runtime(task, std::nullopt);
    return 4.0 * solo * solo / oracle_.predict_runtime(task, neighbour);
  }
  double predict_iops(
      std::size_t task,
      const std::optional<std::size_t>& neighbour) const override {
    const double solo = oracle_.predict_iops(task, std::nullopt);
    return solo * solo /
           std::max(oracle_.predict_iops(task, neighbour), 1e-9);
  }

 private:
  const sched::TablePredictor& oracle_;
};

struct DriftResult {
  double mean_completion_s = 0.0;
  double stale_runtime_weight = 0.0;  ///< final blend weight of "stale"
  std::size_t stale_samples = 0;      ///< completions fed to its window
};

DriftResult run_drift(bool adapt) {
  static sched::TablePredictor oracle = table().oracle_predictor();
  static MisleadingPredictor misleading(oracle);
  sched::ConfidenceConfig ccfg;
  ccfg.window = 32;
  ccfg.min_samples = 8;
  ccfg.adapt = adapt;
  sched::ConfidenceWeightedPredictor pred(
      {{"oracle", &oracle}, {"stale", &misleading}}, ccfg);

  sim::DynamicConfig cfg;
  cfg.machines = 8;
  cfg.lambda_per_min = 8.0;
  cfg.duration_s = 7200.0;
  cfg.seed = 5;
  cfg.outcome_observer = &pred;
  // The drift: a light mix for the first hour, heavy after.
  sim::MixShiftArrivalSource source(cfg.lambda_per_min, cfg.duration_s,
                                    3600.0, workload::MixKind::kLight,
                                    workload::MixKind::kHeavy, 1.5, cfg.seed);
  cfg.arrival_source = &source;

  sched::MixScheduler mix(pred, sched::Objective::kRuntime, 8, 60.0, {});
  sim::DynamicOutcome o = sim::run_dynamic(table(), mix, cfg);
  EXPECT_GT(o.completed, 0u);
  DriftResult result;
  result.mean_completion_s =
      o.total_runtime / static_cast<double>(o.completed);
  result.stale_runtime_weight = pred.runtime_weight(1);
  result.stale_samples = pred.runtime_window(1).total();
  return result;
}

TEST(ConfidenceDrift, AdaptiveBlendBeatsFrozenBlendAfterMixShift) {
  const DriftResult adaptive = run_drift(true);
  const DriftResult frozen = run_drift(false);
  // The adaptive ensemble learns the misleading family's windowed error
  // and drops it from the blend; the frozen ensemble keeps averaging it
  // into every placement decision.
  EXPECT_DOUBLE_EQ(adaptive.stale_runtime_weight, 0.0);
  EXPECT_GT(adaptive.stale_samples, 8u);
  EXPECT_DOUBLE_EQ(frozen.stale_runtime_weight, 0.5);
  EXPECT_LT(adaptive.mean_completion_s, frozen.mean_completion_s);
}

}  // namespace
}  // namespace tracon
