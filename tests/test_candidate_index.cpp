#include "sched/candidate_index.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sched/fifo.hpp"
#include "sched/mibs.hpp"
#include "sched/mios.hpp"
#include "sched/mix.hpp"
#include "sched/prediction_cache.hpp"
#include "sim/dynamic_scenario.hpp"
#include "workload/benchmarks.hpp"

namespace tracon::sched {
namespace {

/// Three app classes with a crafted interference table: app 0 barely
/// interferes, apps 1 and 2 destroy each other but tolerate app 0.
TablePredictor crafted_predictor() {
  stats::Matrix rt = {{55.0, 60.0, 60.0, 50.0},
                      {110.0, 400.0, 420.0, 100.0},
                      {115.0, 430.0, 410.0, 100.0}};
  stats::Matrix io = {{95.0, 90.0, 90.0, 100.0},
                      {180.0, 40.0, 35.0, 200.0},
                      {170.0, 35.0, 45.0, 200.0}};
  return TablePredictor(rt, io);
}

/// Same shape as crafted_predictor with shifted values, so a two-family
/// ensemble over the pair has genuinely different per-family answers.
TablePredictor crafted_predictor_alt() {
  stats::Matrix rt = {{60.0, 58.0, 65.0, 52.0},
                      {120.0, 380.0, 440.0, 105.0},
                      {105.0, 450.0, 395.0, 95.0}};
  stats::Matrix io = {{90.0, 95.0, 85.0, 105.0},
                      {170.0, 45.0, 30.0, 190.0},
                      {180.0, 30.0, 50.0, 210.0}};
  return TablePredictor(rt, io);
}

const sim::PerfTable& paper_table() {
  static sim::PerfTable t = [] {
    model::Profiler prof(
        virt::HostSimulator(virt::HostConfig::paper_testbed()), 42);
    return sim::PerfTable::build(prof, workload::paper_benchmarks());
  }();
  return t;
}

TEST(ClassClustering, CoversEveryClass) {
  TablePredictor pred = crafted_predictor();
  ClassClustering c = ClassClustering::build(pred);
  ASSERT_EQ(c.num_apps(), 3u);
  EXPECT_GE(c.num_clusters(), 1u);
  EXPECT_LE(c.num_clusters(), 3u);
  for (std::size_t cl : c.cluster_of()) EXPECT_LT(cl, c.num_clusters());
}

TEST(ClassClustering, DeterministicAcrossBuilds) {
  TablePredictor pred = paper_table().oracle_predictor();
  ClassClustering a = ClassClustering::build(pred);
  ClassClustering b = ClassClustering::build(pred);
  EXPECT_EQ(a.cluster_of(), b.cluster_of());
  EXPECT_EQ(a.num_clusters(), b.num_clusters());
}

/// Exhaustive equivalence: drive one clustered ClusterCounts through a
/// deterministic churn of placements and departures, and at every step
/// compare the indexed lookup against the flat scan for every task,
/// objective, admission policy, and exclude_empty combination.
TEST(CandidateIndex, BestSlotMatchesFlatScanUnderChurn) {
  TablePredictor pred = paper_table().oracle_predictor();
  const std::size_t n = pred.num_apps();
  CandidateIndex index(pred);
  ClusterCounts counts(n, 6);
  index.attach(&counts);

  PlacementPolicy strict;                    // beneficial joins only
  PlacementPolicy open;
  open.beneficial_joins_only = false;
  const PlacementPolicy policies[] = {strict, open};

  std::uint64_t state = 12345;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::size_t>(state >> 33);
  };
  // Explicit fleet mirror (each machine holds <=2 apps), so departures
  // always report the CURRENT co-resident — a neighbour recorded at
  // placement time goes stale once a later task joins the machine.
  std::vector<std::vector<std::size_t>> fleet(6);
  auto machine_with = [&fleet](std::optional<std::size_t> cls) {
    for (std::size_t m = 0; m < fleet.size(); ++m) {
      if (!cls.has_value() && fleet[m].empty()) return m;
      if (cls.has_value() && fleet[m].size() == 1 && fleet[m][0] == *cls)
        return m;
    }
    throw std::logic_error("no machine in the requested class");
  };
  for (int step = 0; step < 400; ++step) {
    // Mutate: mostly place (greedily, onto the flat scan's choice so
    // the states visited are scheduler-realistic), sometimes depart.
    std::size_t occupied = 0;
    for (const auto& m : fleet) occupied += m.size();
    if (occupied > 0 && next() % 3 == 0) {
      std::size_t victim = next() % occupied;
      for (auto& m : fleet) {
        if (victim >= m.size()) {
          victim -= m.size();
          continue;
        }
        std::size_t app = m[victim];
        m.erase(m.begin() + static_cast<long>(victim));
        counts.depart(app, m.empty() ? std::nullopt
                                     : std::optional<std::size_t>{m[0]});
        break;
      }
    } else {
      std::size_t app = next() % n;
      auto slot = mios_best_slot(app, counts, pred, Objective::kRuntime,
                                 open);
      if (slot.has_value()) {
        counts.place(app, *slot);
        fleet[machine_with(*slot)].push_back(app);
      }
    }
    for (std::size_t task = 0; task < n; ++task) {
      for (Objective obj : {Objective::kRuntime, Objective::kIops}) {
        for (const PlacementPolicy& pol : policies) {
          for (bool excl : {false, true}) {
            auto exact = mios_best_slot(task, counts, pred, obj, pol, excl);
            auto fast = mios_best_slot(task, counts, pred, obj, pol, excl,
                                       &index);
            ASSERT_EQ(exact, fast)
                << "step " << step << " task " << task << " obj "
                << static_cast<int>(obj) << " strict "
                << pol.beneficial_joins_only << " excl " << excl;
          }
        }
      }
    }
  }
  EXPECT_EQ(index.rebuilds(), 0u);  // table predictor: epoch never moves
}

struct SchedulerCase {
  const char* name;
  std::unique_ptr<Scheduler> (*make)(const Predictor& pred);
};

std::unique_ptr<Scheduler> make_fifo(const Predictor&) {
  return std::make_unique<FifoScheduler>(17);
}
std::unique_ptr<Scheduler> make_mios(const Predictor& pred) {
  PlacementPolicy policy;
  policy.beneficial_joins_only = false;  // the core factory's MIOS
  return std::make_unique<MiosScheduler>(pred, Objective::kRuntime, policy);
}
std::unique_ptr<Scheduler> make_mibs(const Predictor& pred) {
  return std::make_unique<MibsScheduler>(pred, Objective::kRuntime);
}
std::unique_ptr<Scheduler> make_mix(const Predictor& pred) {
  return std::make_unique<MixScheduler>(pred, Objective::kIops);
}

/// Property test for the determinism contract: every scheduler, over
/// several seeds, produces byte-identical metrics, decision logs, and
/// span logs when placements go through the candidate index plus a
/// prediction cache instead of the flat scan over the raw predictor.
TEST(CandidateIndex, DynamicRunsAreByteIdenticalAcrossSchedulersAndSeeds) {
  const sim::PerfTable& table = paper_table();
  TablePredictor pred = table.oracle_predictor();
  CandidateIndex index(pred);
  const SchedulerCase cases[] = {{"fifo", &make_fifo},
                                 {"mios", &make_mios},
                                 {"mibs", &make_mibs},
                                 {"mix", &make_mix}};
  for (const SchedulerCase& sc : cases) {
    for (std::uint64_t seed : {3u, 5u, 9u}) {
      sim::DynamicConfig cfg;
      cfg.machines = 12;
      cfg.lambda_per_min = 40.0;
      cfg.duration_s = 1800.0;
      cfg.seed = seed;

      auto run = [&](bool indexed) {
        obs::Telemetry tel;
        tel.decisions.set_enabled(true);
        tel.spans.set_enabled(true);
        sim::DynamicConfig c = cfg;
        c.telemetry = &tel;
        PredictionCache cache(pred);
        const Predictor& view = indexed ? static_cast<const Predictor&>(cache)
                                        : static_cast<const Predictor&>(pred);
        c.candidate_index = indexed ? &index : nullptr;
        std::unique_ptr<Scheduler> sched = sc.make(view);
        sched->set_telemetry(&tel);
        sim::DynamicOutcome o = sim::run_dynamic(table, *sched, c);
        std::ostringstream all;
        tel.metrics.write_json(all);
        tel.decisions.write(all);
        tel.spans.write(all);
        return std::pair<sim::DynamicOutcome, std::string>(o, all.str());
      };
      auto [exact, exact_bytes] = run(false);
      auto [fast, fast_bytes] = run(true);
      EXPECT_EQ(exact.completed, fast.completed) << sc.name << " " << seed;
      EXPECT_EQ(exact.total_runtime, fast.total_runtime)
          << sc.name << " " << seed;
      EXPECT_EQ(exact.total_iops, fast.total_iops) << sc.name << " " << seed;
      EXPECT_EQ(exact.mean_wait_s, fast.mean_wait_s)
          << sc.name << " " << seed;
      EXPECT_EQ(exact_bytes, fast_bytes) << sc.name << " seed " << seed;
    }
  }
}

TEST(PredictionCache, HitsAreBitIdenticalToTheBase) {
  TablePredictor base = crafted_predictor();
  PredictionCache cache(base);
  const std::size_t n = base.num_apps();
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t task = 0; task < n; ++task) {
      for (std::size_t nb = 0; nb <= n; ++nb) {
        std::optional<std::size_t> neighbour;
        if (nb < n) neighbour = nb;
        EXPECT_EQ(cache.predict_runtime(task, neighbour),
                  base.predict_runtime(task, neighbour));
        EXPECT_EQ(cache.predict_iops(task, neighbour),
                  base.predict_iops(task, neighbour));
      }
    }
  }
  // Second pass answered entirely from the cache: 2 channels x n(n+1)
  // unique pairs missed once each, everything else hit.
  EXPECT_EQ(cache.misses(), 2 * n * (n + 1));
  EXPECT_EQ(cache.hits(), cache.misses());
  EXPECT_EQ(cache.invalidations(), 0u);
}

TEST(PredictionCache, BatchMatchesScalarAndFillsTheCache) {
  TablePredictor base = crafted_predictor();
  PredictionCache cache(base);
  std::vector<PredictQuery> queries;
  for (std::size_t task = 0; task < base.num_apps(); ++task) {
    queries.push_back({task, std::nullopt});
    queries.push_back({task, 1});
    queries.push_back({task, 1});  // duplicate: second is a hit
  }
  std::vector<double> got(queries.size());
  cache.predict_runtime_batch(queries, got);
  for (std::size_t q = 0; q < queries.size(); ++q)
    EXPECT_EQ(got[q],
              base.predict_runtime(queries[q].task, queries[q].neighbour));
  EXPECT_GT(cache.hits(), 0u);
}

ConfidenceWeightedPredictor ensemble(const TablePredictor& a,
                                     const TablePredictor& b) {
  return ConfidenceWeightedPredictor(
      {{"oracle", &a}, {"crafted", &b}});
}

TEST(PredictionCache, EpochBumpInvalidatesAndTracksTheNewBlend) {
  TablePredictor a = crafted_predictor();
  TablePredictor b = crafted_predictor_alt();
  ConfidenceWeightedPredictor base = ensemble(a, b);
  PredictionCache cache(base);

  double before = cache.predict_runtime(1, 2);
  EXPECT_EQ(before, base.predict_runtime(1, 2));
  // A completion feeds the error windows, advancing the model epoch;
  // the next lookup must flush and re-consult the (re-weighted) blend.
  base.on_completion(1, 2, 500.0, 30.0);
  EXPECT_GT(base.model_epoch(), 0u);
  double after = cache.predict_runtime(1, 2);
  EXPECT_EQ(after, base.predict_runtime(1, 2));
  EXPECT_EQ(cache.invalidations(), 1u);
}

TEST(CandidateIndex, RebuildsWhenTheModelEpochAdvances) {
  TablePredictor a = crafted_predictor();
  TablePredictor b = crafted_predictor_alt();
  ConfidenceWeightedPredictor base = ensemble(a, b);
  CandidateIndex index(base);
  ClusterCounts counts(base.num_apps(), 4);
  index.attach(&counts);
  counts.place(0, std::nullopt);
  counts.place(1, std::nullopt);

  PlacementPolicy open;
  open.beneficial_joins_only = false;
  auto check_all = [&]() {
    for (std::size_t task = 0; task < base.num_apps(); ++task)
      for (Objective obj : {Objective::kRuntime, Objective::kIops})
        ASSERT_EQ(mios_best_slot(task, counts, base, obj, open),
                  mios_best_slot(task, counts, base, obj, open,
                                 /*exclude_empty=*/false, &index));
  };
  check_all();
  EXPECT_EQ(index.rebuilds(), 0u);
  // Skew the windows hard enough to move the blend, then re-verify:
  // the index must rebuild once (per epoch bump observed) and keep
  // matching the flat scan over the new predictions.
  for (int i = 0; i < 8; ++i) base.on_completion(2, 0, 60.0, 150.0);
  check_all();
  EXPECT_GE(index.rebuilds(), 1u);
}

}  // namespace
}  // namespace tracon::sched
