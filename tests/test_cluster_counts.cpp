#include "sched/cluster_counts.hpp"

#include <gtest/gtest.h>

namespace tracon::sched {
namespace {

TEST(ClusterCounts, InitialState) {
  ClusterCounts c(4, 10);
  EXPECT_EQ(c.empty_machines(), 10u);
  EXPECT_EQ(c.free_slots(), 20u);
  EXPECT_TRUE(c.any_free());
  for (std::size_t a = 0; a < 4; ++a) EXPECT_EQ(c.half_busy(a), 0u);
}

TEST(ClusterCounts, PlaceOnEmptyMakesHalfBusy) {
  ClusterCounts c(4, 2);
  c.place(1, std::nullopt);
  EXPECT_EQ(c.empty_machines(), 1u);
  EXPECT_EQ(c.half_busy(1), 1u);
  EXPECT_EQ(c.free_slots(), 3u);
}

TEST(ClusterCounts, PlaceNextToNeighbourConsumesMachine) {
  ClusterCounts c(4, 1);
  c.place(0, std::nullopt);
  c.place(2, std::optional<std::size_t>(0));
  EXPECT_EQ(c.half_busy(0), 0u);
  EXPECT_EQ(c.free_slots(), 0u);
  EXPECT_FALSE(c.any_free());
}

TEST(ClusterCounts, DepartRestoresState) {
  ClusterCounts c(3, 1);
  c.place(0, std::nullopt);
  c.place(1, std::optional<std::size_t>(0));
  // Task of class 1 departs; machine keeps running class 0.
  c.depart(1, std::optional<std::size_t>(0));
  EXPECT_EQ(c.half_busy(0), 1u);
  // Class 0 departs from its half-busy machine; machine empty again.
  c.depart(0, std::nullopt);
  EXPECT_EQ(c.empty_machines(), 1u);
  EXPECT_EQ(c.free_slots(), 2u);
}

TEST(ClusterCounts, HasSlotQueries) {
  ClusterCounts c(2, 1);
  EXPECT_TRUE(c.has_slot(std::nullopt));
  EXPECT_FALSE(c.has_slot(std::optional<std::size_t>(0)));
  c.place(0, std::nullopt);
  EXPECT_FALSE(c.has_slot(std::nullopt));
  EXPECT_TRUE(c.has_slot(std::optional<std::size_t>(0)));
}

TEST(ClusterCounts, InvalidOperationsThrow) {
  ClusterCounts c(2, 1);
  EXPECT_THROW(c.place(5, std::nullopt), std::invalid_argument);
  EXPECT_THROW(c.place(0, std::optional<std::size_t>(1)),
               std::invalid_argument);  // no half-busy machine of class 1
  EXPECT_THROW(c.depart(0, std::nullopt), std::invalid_argument);
  EXPECT_THROW(ClusterCounts(0, 3), std::invalid_argument);
}

TEST(ClusterCounts, AppendCandidatesCanonicalOrder) {
  ClusterCounts c(4, 3);
  c.place(2, std::nullopt);
  c.place(0, std::nullopt);

  // Empty machines first (nullopt), then half-busy classes ascending —
  // the scan order the batched schedulers' first-wins argmin relies on.
  std::vector<std::optional<std::size_t>> got;
  c.append_candidates(true, &got);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], std::nullopt);
  EXPECT_EQ(got[1], std::optional<std::size_t>(0));
  EXPECT_EQ(got[2], std::optional<std::size_t>(2));

  // include_empty=false drops the nullopt entry; appending does not
  // clear what the caller already has.
  c.append_candidates(false, &got);
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[3], std::optional<std::size_t>(0));
  EXPECT_EQ(got[4], std::optional<std::size_t>(2));

  // Consume the last empty machine: nullopt disappears even when asked.
  c.place(1, std::nullopt);
  got.clear();
  c.append_candidates(true, &got);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], std::optional<std::size_t>(0));
  EXPECT_EQ(got[1], std::optional<std::size_t>(1));
  EXPECT_EQ(got[2], std::optional<std::size_t>(2));
}

// Property: any sequence of place/depart keeps slot accounting exact.
class CountsRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CountsRoundTrip, PlaceAllThenDepartAll) {
  unsigned seed = static_cast<unsigned>(GetParam());
  const std::size_t apps = 3, machines = 5;
  ClusterCounts c(apps, machines);

  // Fill every slot with pseudo-random classes, recording layout.
  struct Pair {
    std::size_t a, b;
  };
  std::vector<Pair> placed;
  for (std::size_t m = 0; m < machines; ++m) {
    seed = seed * 1103515245u + 12345u;
    std::size_t a = seed % apps;
    c.place(a, std::nullopt);
    seed = seed * 1103515245u + 12345u;
    std::size_t b = seed % apps;
    c.place(b, std::optional<std::size_t>(a));
    placed.push_back({a, b});
  }
  EXPECT_EQ(c.free_slots(), 0u);

  // Unwind in reverse.
  for (auto it = placed.rbegin(); it != placed.rend(); ++it) {
    c.depart(it->b, std::optional<std::size_t>(it->a));
    c.depart(it->a, std::nullopt);
  }
  EXPECT_EQ(c.empty_machines(), machines);
  EXPECT_EQ(c.free_slots(), 2 * machines);
  for (std::size_t a = 0; a < apps; ++a) EXPECT_EQ(c.half_busy(a), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountsRoundTrip, ::testing::Range(1, 12));

}  // namespace
}  // namespace tracon::sched
