// Paranoid tier force-DISABLED for this translation unit: the deep
// checks must compile away to nothing (no throw, no evaluation of the
// condition) while the always-on tier keeps working. Compiled into the
// same test binary as test_error.cpp, which force-enables the tier —
// the two TUs together pin both sides of the contract in one build.
#ifdef TRACON_PARANOID
#undef TRACON_PARANOID
#endif

#include "util/error.hpp"

#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

namespace {

TEST(DcheckRelaxed, TierIsCompiledOut) {
  EXPECT_FALSE(tracon::kParanoidChecksEnabled);
}

TEST(DcheckRelaxed, NeverThrows) {
  EXPECT_NO_THROW(TRACON_DCHECK(false, "would fire under paranoid"));
  EXPECT_NO_THROW(TRACON_DCHECK(true, "fine either way"));
}

TEST(DcheckRelaxed, ConditionNotEvaluated) {
  int calls = 0;
  auto probe = [&calls]() {
    ++calls;
    return false;
  };
  TRACON_DCHECK(probe(), "must not run");
  EXPECT_EQ(calls, 0);
}

TEST(CheckFiniteRelaxed, NeverThrows) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_NO_THROW(TRACON_CHECK_FINITE(nan, "ignored"));
  EXPECT_NO_THROW(TRACON_CHECK_FINITE(inf, "ignored"));
}

TEST(CheckFiniteRelaxed, ValueNotEvaluated) {
  int calls = 0;
  auto probe = [&calls]() {
    ++calls;
    return std::numeric_limits<double>::quiet_NaN();
  };
  TRACON_CHECK_FINITE(probe(), "must not run");
  EXPECT_EQ(calls, 0);
}

TEST(RequireRelaxed, StillActiveWithoutParanoid) {
  EXPECT_THROW(TRACON_REQUIRE(false, "always on"), std::invalid_argument);
  EXPECT_THROW(TRACON_ASSERT(false, "always on"), std::logic_error);
}

}  // namespace
