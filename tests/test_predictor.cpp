#include "sched/predictor.hpp"

#include <gtest/gtest.h>

namespace tracon::sched {
namespace {

TablePredictor small_table() {
  // 2 apps; last column = idle neighbour.
  stats::Matrix rt = {{100.0, 150.0, 80.0}, {200.0, 300.0, 180.0}};
  stats::Matrix io = {{50.0, 30.0, 60.0}, {20.0, 10.0, 25.0}};
  return TablePredictor(rt, io);
}

TEST(TablePredictor, LookupByNeighbour) {
  TablePredictor p = small_table();
  EXPECT_EQ(p.num_apps(), 2u);
  EXPECT_EQ(p.predict_runtime(0, std::optional<std::size_t>(1)), 150.0);
  EXPECT_EQ(p.predict_runtime(0, std::nullopt), 80.0);
  EXPECT_EQ(p.predict_iops(1, std::optional<std::size_t>(0)), 20.0);
  EXPECT_EQ(p.predict_iops(1, std::nullopt), 25.0);
}

TEST(TablePredictor, RangeChecks) {
  TablePredictor p = small_table();
  EXPECT_THROW(p.predict_runtime(2, std::nullopt), std::invalid_argument);
  EXPECT_THROW(p.predict_runtime(0, std::optional<std::size_t>(5)),
               std::invalid_argument);
}

TEST(TablePredictor, ShapeValidation) {
  stats::Matrix bad_rt(2, 2);  // needs 3 columns
  stats::Matrix io(2, 3);
  EXPECT_THROW(TablePredictor(bad_rt, io), std::invalid_argument);
  stats::Matrix rt(2, 3);
  stats::Matrix bad_io(1, 3);
  EXPECT_THROW(TablePredictor(rt, bad_io), std::invalid_argument);
}

TEST(TablePredictor, FromModelsEvaluatesAllPairs) {
  // Dummy models: runtime = sum of features, iops = 1000 - sum.
  class SumModel final : public model::InterferenceModel {
   public:
    explicit SumModel(model::Response r, double scale)
        : InterferenceModel(r), scale_(scale) {}
    double predict(std::span<const double> f) const override {
      double s = 0.0;
      for (double v : f) s += v;
      return scale_ * s;
    }
    std::string describe() const override { return "sum"; }

   private:
    double scale_;
  };

  std::vector<model::ModelPair> models;
  for (int i = 0; i < 2; ++i) {
    model::ModelPair mp;
    mp.runtime = std::make_unique<SumModel>(model::Response::kRuntime, 1.0);
    mp.iops = std::make_unique<SumModel>(model::Response::kIops, 2.0);
    models.push_back(std::move(mp));
  }
  std::vector<monitor::AppProfile> profiles = {{0.1, 0.0, 10.0, 0.0},
                                               {0.2, 0.0, 20.0, 0.0}};
  TablePredictor p = TablePredictor::from_models(models, profiles);
  // App 0 next to app 1: sum = 0.1+10 + 0.2+20 = 30.3.
  EXPECT_NEAR(p.predict_runtime(0, std::optional<std::size_t>(1)), 30.3,
              1e-12);
  // App 0 idle neighbour: 10.1.
  EXPECT_NEAR(p.predict_runtime(0, std::nullopt), 10.1, 1e-12);
  EXPECT_NEAR(p.predict_iops(0, std::nullopt), 20.2, 1e-12);
}

TEST(TablePredictor, FromModelsValidation) {
  std::vector<model::ModelPair> none;
  std::vector<monitor::AppProfile> profiles;
  EXPECT_THROW(TablePredictor::from_models(none, profiles),
               std::invalid_argument);
}

}  // namespace
}  // namespace tracon::sched
