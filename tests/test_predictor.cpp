#include "sched/predictor.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace tracon::sched {
namespace {

TablePredictor small_table() {
  // 2 apps; last column = idle neighbour.
  stats::Matrix rt = {{100.0, 150.0, 80.0}, {200.0, 300.0, 180.0}};
  stats::Matrix io = {{50.0, 30.0, 60.0}, {20.0, 10.0, 25.0}};
  return TablePredictor(rt, io);
}

TEST(TablePredictor, LookupByNeighbour) {
  TablePredictor p = small_table();
  EXPECT_EQ(p.num_apps(), 2u);
  EXPECT_EQ(p.predict_runtime(0, std::optional<std::size_t>(1)), 150.0);
  EXPECT_EQ(p.predict_runtime(0, std::nullopt), 80.0);
  EXPECT_EQ(p.predict_iops(1, std::optional<std::size_t>(0)), 20.0);
  EXPECT_EQ(p.predict_iops(1, std::nullopt), 25.0);
}

TEST(TablePredictor, RangeChecks) {
  TablePredictor p = small_table();
  EXPECT_THROW(p.predict_runtime(2, std::nullopt), std::invalid_argument);
  EXPECT_THROW(p.predict_runtime(0, std::optional<std::size_t>(5)),
               std::invalid_argument);
}

TEST(TablePredictor, ShapeValidation) {
  stats::Matrix bad_rt(2, 2);  // needs 3 columns
  stats::Matrix io(2, 3);
  EXPECT_THROW(TablePredictor(bad_rt, io), std::invalid_argument);
  stats::Matrix rt(2, 3);
  stats::Matrix bad_io(1, 3);
  EXPECT_THROW(TablePredictor(rt, bad_io), std::invalid_argument);
}

TEST(TablePredictor, FromModelsEvaluatesAllPairs) {
  // Dummy models: runtime = sum of features, iops = 1000 - sum.
  class SumModel final : public model::InterferenceModel {
   public:
    explicit SumModel(model::Response r, double scale)
        : InterferenceModel(r), scale_(scale) {}
    double predict(std::span<const double> f) const override {
      double s = 0.0;
      for (double v : f) s += v;
      return scale_ * s;
    }
    std::string describe() const override { return "sum"; }

   private:
    double scale_;
  };

  std::vector<model::ModelPair> models;
  for (int i = 0; i < 2; ++i) {
    model::ModelPair mp;
    mp.runtime = std::make_unique<SumModel>(model::Response::kRuntime, 1.0);
    mp.iops = std::make_unique<SumModel>(model::Response::kIops, 2.0);
    models.push_back(std::move(mp));
  }
  std::vector<monitor::AppProfile> profiles = {{0.1, 0.0, 10.0, 0.0},
                                               {0.2, 0.0, 20.0, 0.0}};
  TablePredictor p = TablePredictor::from_models(models, profiles);
  // App 0 next to app 1: sum = 0.1+10 + 0.2+20 = 30.3.
  EXPECT_NEAR(p.predict_runtime(0, std::optional<std::size_t>(1)), 30.3,
              1e-12);
  // App 0 idle neighbour: 10.1.
  EXPECT_NEAR(p.predict_runtime(0, std::nullopt), 10.1, 1e-12);
  EXPECT_NEAR(p.predict_iops(0, std::nullopt), 20.2, 1e-12);
}

TEST(TablePredictor, FromModelsValidation) {
  std::vector<model::ModelPair> none;
  std::vector<monitor::AppProfile> profiles;
  EXPECT_THROW(TablePredictor::from_models(none, profiles),
               std::invalid_argument);
}

// Every table value multiplied by `k` — a family that is wrong by a
// constant factor (1 - k) on every prediction.
TablePredictor scaled_table(double k) {
  stats::Matrix rt = {{100.0 * k, 150.0 * k, 80.0 * k},
                      {200.0 * k, 300.0 * k, 180.0 * k}};
  stats::Matrix io = {{50.0 * k, 30.0 * k, 60.0 * k},
                      {20.0 * k, 10.0 * k, 25.0 * k}};
  return TablePredictor(rt, io);
}

ConfidenceConfig test_cfg() {
  ConfidenceConfig cfg;
  cfg.window = 16;
  cfg.min_samples = 4;
  return cfg;
}

TEST(ConfidencePredictor, ValidatesConstruction) {
  TablePredictor good = small_table();
  EXPECT_THROW(ConfidenceWeightedPredictor({}), std::invalid_argument);
  EXPECT_THROW(ConfidenceWeightedPredictor({{"", &good}}),
               std::invalid_argument);
  EXPECT_THROW(ConfidenceWeightedPredictor({{"a", nullptr}}),
               std::invalid_argument);
  ConfidenceConfig zero_window;
  zero_window.window = 0;
  EXPECT_THROW(ConfidenceWeightedPredictor({{"a", &good}}, zero_window),
               std::invalid_argument);
}

TEST(ConfidencePredictor, EqualWeightsBeforeWarmup) {
  TablePredictor a = small_table();
  TablePredictor b = scaled_table(4.0);
  ConfidenceWeightedPredictor p({{"good", &a}, {"bad", &b}}, test_cfg());
  // No completions yet: both families sit at the default error, so the
  // blend is the plain average.
  EXPECT_DOUBLE_EQ(p.runtime_weight(0), 0.5);
  EXPECT_DOUBLE_EQ(p.runtime_weight(1), 0.5);
  EXPECT_NEAR(p.predict_runtime(0, std::optional<std::size_t>(1)),
              (150.0 + 600.0) / 2.0, 1e-9);
}

TEST(ConfidencePredictor, DisqualifiesFamilyPastErrorThreshold) {
  TablePredictor a = small_table();
  TablePredictor b = scaled_table(4.0);  // 300% off once warmed up
  ConfidenceWeightedPredictor p({{"good", &a}, {"bad", &b}}, test_cfg());
  // Realized outcomes exactly match family "good".
  for (int i = 0; i < 4; ++i) {
    p.on_completion(0, std::optional<std::size_t>(1), 150.0, 30.0);
  }
  EXPECT_DOUBLE_EQ(p.runtime_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(p.runtime_weight(1), 0.0);
  EXPECT_DOUBLE_EQ(p.iops_weight(1), 0.0);
  EXPECT_NEAR(p.predict_runtime(0, std::optional<std::size_t>(1)), 150.0,
              1e-9);
  EXPECT_NEAR(p.predict_iops(0, std::optional<std::size_t>(1)), 30.0, 1e-9);
  EXPECT_EQ(p.runtime_window(0).size(), 4u);
  EXPECT_EQ(p.runtime_window(1).size(), 4u);
}

TEST(ConfidencePredictor, AllFamiliesBadFallsBackToBest) {
  TablePredictor a = small_table();
  TablePredictor b = scaled_table(4.0);
  ConfidenceWeightedPredictor p({{"good", &a}, {"bad", &b}}, test_cfg());
  // Outcomes far from both tables: "bad" (600) is still the closer
  // forecast to 10000 than "good" (150), so it alone survives.
  for (int i = 0; i < 4; ++i) {
    p.on_completion(0, std::optional<std::size_t>(1), 10000.0, 10000.0);
  }
  EXPECT_DOUBLE_EQ(p.runtime_weight(0), 0.0);
  EXPECT_DOUBLE_EQ(p.runtime_weight(1), 1.0);
  EXPECT_NEAR(p.predict_runtime(0, std::optional<std::size_t>(1)), 600.0,
              1e-9);
}

TEST(ConfidencePredictor, AdaptOffFreezesEqualWeights) {
  TablePredictor a = small_table();
  TablePredictor b = scaled_table(4.0);
  ConfidenceConfig cfg = test_cfg();
  cfg.adapt = false;
  ConfidenceWeightedPredictor p({{"good", &a}, {"bad", &b}}, cfg);
  for (int i = 0; i < 8; ++i) {
    p.on_completion(0, std::optional<std::size_t>(1), 150.0, 30.0);
  }
  // The static blend ignores the feedback it keeps receiving.
  EXPECT_DOUBLE_EQ(p.runtime_weight(0), 0.5);
  EXPECT_DOUBLE_EQ(p.runtime_weight(1), 0.5);
  EXPECT_EQ(p.runtime_window(1).size(), 8u);  // windows still fed
}

std::vector<PredictQuery> all_queries(const Predictor& p) {
  std::vector<PredictQuery> qs;
  for (std::size_t t = 0; t < p.num_apps(); ++t) {
    qs.push_back({t, std::nullopt});
    for (std::size_t n = 0; n < p.num_apps(); ++n) qs.push_back({t, n});
  }
  return qs;
}

/// The batch API's contract is BIT-identical results to the scalar
/// calls in query order (the schedulers' argmin tie-breaking — and thus
/// the determinism contract — depends on it), so these use EXPECT_EQ on
/// doubles, not EXPECT_NEAR.
void expect_batch_matches_scalar(const Predictor& p) {
  std::vector<PredictQuery> qs = all_queries(p);
  std::vector<double> rt(qs.size()), io(qs.size());
  p.predict_runtime_batch(qs, rt);
  p.predict_iops_batch(qs, io);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(rt[i], p.predict_runtime(qs[i].task, qs[i].neighbour));
    EXPECT_EQ(io[i], p.predict_iops(qs[i].task, qs[i].neighbour));
  }
}

TEST(PredictorBatch, TableBatchBitIdenticalToScalar) {
  TablePredictor p = small_table();
  expect_batch_matches_scalar(p);
}

TEST(PredictorBatch, DefaultBatchFallsBackToScalarLoop) {
  // A predictor that does NOT override the batch hooks exercises the
  // base-class loop.
  class Scaled final : public Predictor {
   public:
    std::size_t num_apps() const override { return 2; }
    double predict_runtime(
        std::size_t task,
        const std::optional<std::size_t>& n) const override {
      return 10.0 * static_cast<double>(task + 1) +
             (n.has_value() ? static_cast<double>(*n) : 0.5);
    }
    double predict_iops(std::size_t task,
                        const std::optional<std::size_t>& n) const override {
      return 100.0 / static_cast<double>(task + 1) -
             (n.has_value() ? static_cast<double>(*n) : 0.25);
    }
  };
  Scaled p;
  expect_batch_matches_scalar(p);
}

TEST(PredictorBatch, BatchValidatesSpanSizes) {
  TablePredictor p = small_table();
  std::vector<PredictQuery> qs = {{0, std::nullopt}};
  std::vector<double> wrong(2);
  EXPECT_THROW(p.predict_runtime_batch(qs, wrong), std::invalid_argument);
  EXPECT_THROW(p.predict_iops_batch(qs, wrong), std::invalid_argument);
}

TEST(PredictorBatch, BatchRangeChecksEveryQuery) {
  TablePredictor p = small_table();
  std::vector<PredictQuery> qs = {{0, std::nullopt}, {5, std::nullopt}};
  std::vector<double> out(2);
  EXPECT_THROW(p.predict_runtime_batch(qs, out), std::invalid_argument);
}

TEST(PredictorBatch, EmptyBatchIsANoOp) {
  TablePredictor p = small_table();
  p.predict_runtime_batch({}, {});
  p.predict_iops_batch({}, {});
}

TEST(PredictorBatch, ConfidenceBatchBitIdenticalAcrossWeightStates) {
  TablePredictor a = small_table();
  TablePredictor b = scaled_table(4.0);
  ConfidenceWeightedPredictor p({{"good", &a}, {"bad", &b}}, test_cfg());
  // Warmup phase: equal default weights.
  expect_batch_matches_scalar(p);
  // Adapted phase: family "bad" disqualified, weights {1, 0}.
  for (int i = 0; i < 4; ++i) {
    p.on_completion(0, std::optional<std::size_t>(1), 150.0, 30.0);
  }
  expect_batch_matches_scalar(p);
}

TEST(ConfidencePredictor, BeginRoundStampsWeightGauges) {
  TablePredictor a = small_table();
  TablePredictor b = scaled_table(4.0);
  ConfidenceWeightedPredictor p({{"good", &a}, {"bad", &b}}, test_cfg());
  obs::MetricsRegistry reg;
  p.set_metrics(&reg);
  for (int i = 0; i < 4; ++i) {
    p.on_completion(0, std::optional<std::size_t>(1), 150.0, 30.0);
  }
  p.begin_round(60.0);
  EXPECT_DOUBLE_EQ(reg.gauge("sched.confidence.good.runtime_weight").value(),
                   1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("sched.confidence.bad.runtime_weight").value(),
                   0.0);
  EXPECT_DOUBLE_EQ(reg.gauge("sched.confidence.good.iops_weight").value(),
                   1.0);
}

}  // namespace
}  // namespace tracon::sched
