#include "virt/host_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "workload/benchmarks.hpp"

namespace tracon::virt {
namespace {

HostConfig quiet_config() {
  HostConfig cfg = HostConfig::paper_testbed();
  cfg.noise_sigma = 0.0;
  return cfg;
}

AppBehavior simple_app(double runtime = 50.0) {
  AppBehavior a;
  a.name = "simple";
  a.solo_runtime_s = runtime;
  a.cpu_util = 0.3;
  a.read_iops = 100;
  a.write_iops = 20;
  a.request_kb = 64;
  a.sequentiality = 0.8;
  return a;
}

TEST(HostSim, SoloRunsAtNominalRuntime) {
  HostSimulator sim(quiet_config());
  VmRunStats s = sim.solo(simple_app(50.0));
  EXPECT_TRUE(s.completed);
  EXPECT_NEAR(s.runtime_s, 50.0, 0.5);
  EXPECT_NEAR(s.reads_per_s, 100.0, 2.0);
  EXPECT_NEAR(s.writes_per_s, 20.0, 1.0);
  EXPECT_NEAR(s.avg_domu_cpu, 0.3, 0.01);
  EXPECT_GT(s.avg_dom0_cpu, 0.0);
}

TEST(HostSim, NoiseIsDeterministicPerSeed) {
  HostConfig cfg = HostConfig::paper_testbed();  // noisy
  HostSimulator sim(cfg);
  VmRunStats a = sim.solo(simple_app(), 5);
  VmRunStats b = sim.solo(simple_app(), 5);
  VmRunStats c = sim.solo(simple_app(), 6);
  EXPECT_EQ(a.runtime_s, b.runtime_s);
  EXPECT_NE(a.runtime_s, c.runtime_s);
}

TEST(HostSim, InterferenceExtendsRuntime) {
  HostSimulator sim(quiet_config());
  AppBehavior app = simple_app();
  double solo = sim.solo(app).runtime_s;
  AppBehavior heavy;
  heavy.name = "heavy";
  heavy.solo_runtime_s = 30.0;
  heavy.cpu_util = 0.4;
  heavy.read_iops = 300;
  heavy.write_iops = 100;
  heavy.sequentiality = 0.9;
  PairMeasurement pm = sim.measure_pair(app, heavy);
  EXPECT_GT(pm.runtime_s, solo);
  EXPECT_LT(pm.iops, 121.0);
}

TEST(HostSim, RecurringBackgroundKeepsRunning) {
  // Foreground outlives many background iterations; the run must still
  // terminate with the foreground completed.
  HostSimulator sim(quiet_config());
  AppBehavior fg = simple_app(80.0);
  AppBehavior bg = simple_app(5.0);
  bg.name = "short-bg";
  RunResult r = sim.run({VmWorkload{fg, false}, VmWorkload{bg, true}});
  EXPECT_TRUE(r.vms[0].completed);
  EXPECT_FALSE(r.vms[1].completed);  // recurring: never "done"
  EXPECT_GT(r.vms[1].reads_per_s, 0.0);
}

TEST(HostSim, MonitorSamplesArriveAtCadence) {
  HostConfig cfg = quiet_config();
  cfg.monitor_period_s = 1.0;
  HostSimulator sim(cfg);
  RunOptions opts;
  opts.collect_samples = true;
  RunResult r = sim.run({VmWorkload{simple_app(10.0), false}}, opts);
  // ~10 samples for a 10 s run on a 1 s period.
  ASSERT_GE(r.samples.size(), 9u);
  ASSERT_LE(r.samples.size(), 11u);
  for (std::size_t i = 1; i < r.samples.size(); ++i)
    EXPECT_NEAR(r.samples[i].time_s - r.samples[i - 1].time_s, 1.0, 0.01);
  EXPECT_NEAR(r.samples[3].reads_per_s, 100.0, 5.0);
}

TEST(HostSim, MaxTimeCapsRun) {
  HostSimulator sim(quiet_config());
  RunOptions opts;
  opts.max_time_s = 5.0;
  RunResult r = sim.run({VmWorkload{simple_app(100.0), false}}, opts);
  EXPECT_FALSE(r.vms[0].completed);
  EXPECT_LE(r.end_time_s, 5.1);
}

TEST(HostSim, BurstyAppCompletesNearNominal) {
  HostSimulator sim(quiet_config());
  AppBehavior bursty = simple_app(40.0);
  bursty.burstiness = 0.5;
  bursty.burst_period_s = 4.0;
  VmRunStats s = sim.solo(bursty);
  EXPECT_TRUE(s.completed);
  // Bursts average out; mild stretching allowed if peaks saturate.
  EXPECT_NEAR(s.runtime_s, 40.0, 4.0);
}

TEST(HostSim, EmptySlotAllowed) {
  HostSimulator sim(quiet_config());
  RunResult r = sim.run({VmWorkload{simple_app(5.0), false}, std::nullopt});
  EXPECT_TRUE(r.vms[0].completed);
  EXPECT_FALSE(r.vms[1].present);
}

TEST(HostSim, InvalidInputsThrow) {
  HostSimulator sim(quiet_config());
  EXPECT_THROW(sim.run({}), std::invalid_argument);
  AppBehavior zero;
  zero.cpu_util = 0.0;
  EXPECT_THROW(sim.run({VmWorkload{zero, false}}), std::invalid_argument);
  RunOptions opts;
  opts.max_time_s = -1.0;
  EXPECT_THROW(sim.run({VmWorkload{simple_app(), false}}, opts),
               std::invalid_argument);
}

// The Table 1 calibration invariants that the rest of the evaluation
// rests on (qualitative shape, generous tolerances).
TEST(HostSimCalibration, Table1Shape) {
  HostSimulator sim(quiet_config());
  using workload::calc_app;
  using workload::cpu_high_app;
  using workload::cpu_io_high_app;
  using workload::cpu_io_medium_app;
  using workload::io_high_app;
  using workload::seqread_app;

  double calc_solo = sim.solo(calc_app()).runtime_s;
  double seq_solo = sim.solo(seqread_app()).runtime_s;

  double calc_cpu = sim.measure_pair(calc_app(), cpu_high_app()).runtime_s;
  EXPECT_NEAR(calc_cpu / calc_solo, 2.0, 0.25);  // paper: 1.96

  double seq_cpu = sim.measure_pair(seqread_app(), cpu_high_app()).runtime_s;
  EXPECT_NEAR(seq_cpu / seq_solo, 1.0, 0.15);  // paper: 1.03

  double seq_io = sim.measure_pair(seqread_app(), io_high_app()).runtime_s;
  EXPECT_GT(seq_io / seq_solo, 6.0);  // paper: 10.23

  double seq_med =
      sim.measure_pair(seqread_app(), cpu_io_medium_app()).runtime_s;
  EXPECT_LT(seq_med / seq_solo, 4.0);  // paper: 1.78

  double seq_hi =
      sim.measure_pair(seqread_app(), cpu_io_high_app()).runtime_s;
  EXPECT_GT(seq_hi, seq_io);  // CPU&IO-high is the worst case (16.11)
}

}  // namespace
}  // namespace tracon::virt
