#include "stats/pca.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace tracon::stats {
namespace {

/// Data with dominant variance along (1,1)/sqrt(2) in 2D.
Matrix correlated_data(std::size_t n, double minor_scale) {
  Rng rng(10);
  Matrix x(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    double major = rng.normal(0.0, 3.0);
    double minor = rng.normal(0.0, minor_scale);
    x(i, 0) = 5.0 + (major + minor) / std::sqrt(2.0);
    x(i, 1) = -2.0 + (major - minor) / std::sqrt(2.0);
  }
  return x;
}

TEST(Pca, FirstComponentCapturesDominantDirection) {
  Matrix x = correlated_data(500, 0.1);
  Pca p = Pca::fit(x, 2);
  EXPECT_GT(p.explained_variance_ratio()[0], 0.95);
  EXPECT_GE(p.explained_variance_ratio()[0], p.explained_variance_ratio()[1]);
}

TEST(Pca, ProjectionOfMeanIsZero) {
  Matrix x = correlated_data(200, 0.5);
  Pca p = Pca::fit(x, 2);
  // Column means.
  Vector mean(2, 0.0);
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 0; j < 2; ++j) mean[j] += x(i, j) / 200.0;
  Vector proj = p.project(mean);
  EXPECT_NEAR(proj[0], 0.0, 1e-9);
  EXPECT_NEAR(proj[1], 0.0, 1e-9);
}

TEST(Pca, ProjectRowsMatchesProject) {
  Matrix x = correlated_data(50, 0.5);
  Pca p = Pca::fit(x, 2);
  Matrix all = p.project_rows(x);
  Vector one = p.project(x.row(7));
  EXPECT_NEAR(all(7, 0), one[0], 1e-12);
  EXPECT_NEAR(all(7, 1), one[1], 1e-12);
}

TEST(Pca, StandardizedIgnoresScale) {
  // Feature 1 is feature 0 times 1000; with standardization both carry
  // equal weight and PC1 explains everything.
  Rng rng(11);
  Matrix x(100, 2);
  for (std::size_t i = 0; i < 100; ++i) {
    double v = rng.normal(0, 1);
    x(i, 0) = v;
    x(i, 1) = 1000.0 * v;
  }
  Pca p = Pca::fit(x, 2, true);
  EXPECT_GT(p.explained_variance_ratio()[0], 0.999);
}

TEST(Pca, RawCovarianceDominatedByLargeScaleFeature) {
  // Without standardization a large-scale independent feature owns PC1.
  Rng rng(12);
  Matrix x(300, 2);
  for (std::size_t i = 0; i < 300; ++i) {
    x(i, 0) = rng.normal(0, 1);      // small scale
    x(i, 1) = rng.normal(0, 1000);   // huge scale, independent
  }
  Pca p = Pca::fit(x, 1, false);
  // Sensitivity of the projection to a unit step in each feature: the
  // raw-covariance PC1 must be aligned with the large-scale feature.
  Vector zero = {0.0, 0.0};
  Vector e0 = {1.0, 0.0};
  Vector e1 = {0.0, 1.0};
  double s0 = std::abs(p.project(e0)[0] - p.project(zero)[0]);
  double s1 = std::abs(p.project(e1)[0] - p.project(zero)[0]);
  EXPECT_GT(s1, 50.0 * s0);
}

TEST(Pca, ConstantFeatureHandled) {
  Matrix x(30, 2);
  Rng rng(13);
  for (std::size_t i = 0; i < 30; ++i) {
    x(i, 0) = rng.normal(0, 1);
    x(i, 1) = 7.0;  // constant
  }
  Pca p = Pca::fit(x, 2);
  Vector constant_in = {0.0, 7.0};
  Vector proj = p.project(constant_in);
  EXPECT_TRUE(std::isfinite(proj[0]));
  EXPECT_TRUE(std::isfinite(proj[1]));
}

TEST(Pca, Preconditions) {
  Matrix one_row(1, 3);
  EXPECT_THROW(Pca::fit(one_row, 1), std::invalid_argument);
  Matrix x(10, 2);
  EXPECT_THROW(Pca::fit(x, 0), std::invalid_argument);
  EXPECT_THROW(Pca::fit(x, 3), std::invalid_argument);
  Pca p = Pca::fit(correlated_data(20, 0.5), 1);
  Vector wrong = {1.0, 2.0, 3.0};
  EXPECT_THROW(p.project(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace tracon::stats
