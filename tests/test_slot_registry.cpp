#include "sim/slot_registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tracon::sim {
namespace {

TEST(SlotRegistry, PopReturnsMostRecentLiveEntry) {
  SlotRegistry reg(4, 2);
  reg.set_key(0, 1);
  reg.set_key(1, 1);
  reg.set_key(2, 1);
  EXPECT_EQ(reg.pop(1), 2u);
  EXPECT_EQ(reg.pop(1), 1u);
  EXPECT_EQ(reg.pop(1), 0u);
  EXPECT_THROW(reg.pop(1), std::logic_error);
}

TEST(SlotRegistry, PopSkipsReKeyedMachines) {
  SlotRegistry reg(4, 2);
  reg.set_key(0, 1);
  reg.set_key(1, 1);
  reg.set_key(1, 2);  // machine 1 moves on; its key-1 entry is stale
  EXPECT_EQ(reg.pop(1), 0u);
  EXPECT_THROW(reg.pop(1), std::logic_error);
  EXPECT_EQ(reg.pop(2), 1u);
}

TEST(SlotRegistry, KeyOfTracksCurrentState) {
  SlotRegistry reg(2, 3);
  EXPECT_EQ(reg.key_of(0), SlotRegistry::kNone);
  reg.set_key(0, 2);
  EXPECT_EQ(reg.key_of(0), 2);
  reg.set_key(0, SlotRegistry::kNone);
  EXPECT_EQ(reg.key_of(0), SlotRegistry::kNone);
  std::size_t m = 1;
  reg.set_key(m, 0);
  EXPECT_EQ(reg.pop(0), m);
  EXPECT_EQ(reg.key_of(m), SlotRegistry::kNone);  // pop consumes the key
}

TEST(SlotRegistry, TryPopExcludingSkipsAndRefilesTheExcluded) {
  SlotRegistry reg(3, 1);
  reg.set_key(0, 1);
  reg.set_key(2, 1);
  // Machine 2 is on top but excluded; machine 0 is returned and 2 stays
  // registered for later pops.
  auto got = reg.try_pop_excluding(1, 2);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 0u);
  EXPECT_EQ(reg.key_of(2), 1);
  EXPECT_EQ(reg.pop(1), 2u);
}

TEST(SlotRegistry, TryPopExcludingReturnsNulloptWhenOnlyExcludedHolds) {
  SlotRegistry reg(2, 1);
  reg.set_key(0, 1);
  EXPECT_FALSE(reg.try_pop_excluding(1, 0).has_value());
  // The excluded machine must still be poppable afterwards.
  EXPECT_EQ(reg.pop(1), 0u);
}

TEST(SlotRegistry, RepeatedSetKeyToSameKeyDoesNotGrowTheStack) {
  SlotRegistry reg(1, 1);
  reg.set_key(0, 1);
  for (int i = 0; i < 100; ++i) reg.set_key(0, 1);
  EXPECT_EQ(reg.stack_size(1), 1u);
}

TEST(SlotRegistry, CompactionBoundsStackUnderChurn) {
  // One machine ping-pongs between two occupancy classes — the
  // migration-churn pattern that used to grow the stacks without
  // bound. With stale entries capped at half the stack, each stack
  // stays within a small constant of its live population (1).
  SlotRegistry reg(4, 2);
  for (int i = 0; i < 10'000; ++i) {
    reg.set_key(0, 1 + (i & 1));
  }
  EXPECT_LE(reg.stack_size(1), 4u);
  EXPECT_LE(reg.stack_size(2), 4u);
  // The invariant itself: tracked stale mass never exceeds half.
  for (int key = 1; key <= 2; ++key)
    EXPECT_LE(reg.stale_entries(key) * 2, reg.stack_size(key));
}

TEST(SlotRegistry, CompactionPreservesPopOrder) {
  SlotRegistry reg(8, 2);
  for (std::size_t m = 0; m < 4; ++m) reg.set_key(m, 1);
  // Machines 4..7 enter and leave key 1 many times, forcing the key-1
  // stack through several compactions; the live entries 0..3 must keep
  // their relative order throughout, so the pops stay pure LIFO over
  // the survivors.
  for (int round = 0; round < 50; ++round) {
    for (std::size_t m = 4; m < 8; ++m) {
      reg.set_key(m, 1);
      reg.set_key(m, 2);
    }
  }
  EXPECT_LE(reg.stack_size(1), 8u);  // compaction actually fired
  for (std::size_t expect : {3u, 2u, 1u, 0u}) EXPECT_EQ(reg.pop(1), expect);
  EXPECT_THROW(reg.pop(1), std::logic_error);
}

TEST(SlotRegistry, PopDecrementsStaleCounter) {
  SlotRegistry reg(8, 1);
  // Build a stack whose stale mass sits exactly at the threshold (not
  // above), so compaction has not fired yet and pop does the cleanup.
  for (std::size_t m = 0; m < 4; ++m) reg.set_key(m, 1);
  reg.set_key(0, 0);
  reg.set_key(1, 0);
  ASSERT_EQ(reg.stack_size(1), 4u);
  ASSERT_EQ(reg.stale_entries(1), 2u);
  EXPECT_EQ(reg.pop(1), 3u);
  EXPECT_EQ(reg.pop(1), 2u);
  // The next pop walks over both stale entries and drains the counter.
  EXPECT_THROW(reg.pop(1), std::logic_error);
  EXPECT_EQ(reg.stale_entries(1), 0u);
  EXPECT_EQ(reg.stack_size(1), 0u);
}

}  // namespace
}  // namespace tracon::sim
