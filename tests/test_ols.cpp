#include "stats/ols.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace tracon::stats {
namespace {

Matrix design_with_intercept(const std::vector<Vector>& xs) {
  Matrix m(xs.size(), xs[0].size() + 1);
  for (std::size_t r = 0; r < xs.size(); ++r) {
    m(r, 0) = 1.0;
    for (std::size_t c = 0; c < xs[r].size(); ++c) m(r, c + 1) = xs[r][c];
  }
  return m;
}

TEST(Ols, RecoversExactLinearRelation) {
  Rng rng(2);
  std::vector<Vector> xs;
  Vector y;
  for (int i = 0; i < 30; ++i) {
    Vector x = {rng.uniform(-2, 2), rng.uniform(-2, 2)};
    y.push_back(3.0 + 2.0 * x[0] - 1.5 * x[1]);
    xs.push_back(x);
  }
  OlsFit fit = ols_fit(design_with_intercept(xs), y);
  EXPECT_NEAR(fit.coefficients[0], 3.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], 2.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[2], -1.5, 1e-9);
  EXPECT_NEAR(fit.sse, 0.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Ols, PredictsFromDesignRow) {
  Matrix x = {{1.0, 0.0}, {1.0, 1.0}, {1.0, 2.0}};
  Vector y = {1.0, 3.0, 5.0};  // y = 1 + 2x
  OlsFit fit = ols_fit(x, y);
  Vector row = {1.0, 4.0};
  EXPECT_NEAR(fit.predict(row), 9.0, 1e-9);
}

TEST(Ols, ResidualsAndSse) {
  Matrix x = {{1.0}, {1.0}, {1.0}, {1.0}};
  Vector y = {1.0, 2.0, 3.0, 4.0};  // mean-only model -> mean 2.5
  OlsFit fit = ols_fit(x, y);
  EXPECT_NEAR(fit.coefficients[0], 2.5, 1e-12);
  EXPECT_NEAR(fit.sse, 5.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 0.0, 1e-12);
}

TEST(Ols, NoisyFitHasReasonableCoefficients) {
  Rng rng(3);
  std::vector<Vector> xs;
  Vector y;
  for (int i = 0; i < 400; ++i) {
    Vector x = {rng.uniform(-1, 1)};
    y.push_back(1.0 + 4.0 * x[0] + rng.normal(0.0, 0.1));
    xs.push_back(x);
  }
  OlsFit fit = ols_fit(design_with_intercept(xs), y);
  EXPECT_NEAR(fit.coefficients[0], 1.0, 0.05);
  EXPECT_NEAR(fit.coefficients[1], 4.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(Ols, ShapeErrors) {
  Matrix x(3, 1);
  Vector y = {1.0, 2.0};
  EXPECT_THROW(ols_fit(x, y), std::invalid_argument);
  Matrix wide(2, 3);
  Vector y2 = {1.0, 2.0};
  EXPECT_THROW(ols_fit(wide, y2), std::invalid_argument);
}

TEST(Aic, PenalizesParameters) {
  // Same SSE, more parameters -> higher (worse) AIC.
  EXPECT_LT(gaussian_aic(10.0, 50, 2), gaussian_aic(10.0, 50, 5));
  // Lower SSE wins at equal parameter count.
  EXPECT_LT(gaussian_aic(5.0, 50, 3), gaussian_aic(10.0, 50, 3));
}

TEST(Aic, PerfectFitIsFiniteAndBest) {
  double perfect = gaussian_aic(0.0, 30, 3);
  EXPECT_TRUE(std::isfinite(perfect));
  EXPECT_LT(perfect, gaussian_aic(1.0, 30, 3));
}

}  // namespace
}  // namespace tracon::stats
