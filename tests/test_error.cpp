// Tests for the always-on check tier (TRACON_REQUIRE / TRACON_ASSERT)
// and the paranoid tier with TRACON_PARANOID force-enabled for this
// translation unit. tests/test_error_relaxed.cpp covers the same
// macros with the paranoid tier force-disabled; together they pin the
// on/off contract independently of how the build was configured.
#ifndef TRACON_PARANOID
#define TRACON_PARANOID 1
#endif

#include "util/error.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

namespace {

std::string message_of(const std::exception& e) { return e.what(); }

TEST(Require, NoThrowOnSuccess) {
  EXPECT_NO_THROW(TRACON_REQUIRE(1 + 1 == 2, "arithmetic works"));
}

TEST(Require, ThrowsInvalidArgument) {
  EXPECT_THROW(TRACON_REQUIRE(false, "nope"), std::invalid_argument);
}

TEST(Require, MessageNamesExpressionAndLocation) {
  try {
    TRACON_REQUIRE(2 < 1, "two is not less than one");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string msg = message_of(e);
    EXPECT_NE(msg.find("TRACON precondition:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("two is not less than one"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2 < 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("test_error.cpp"), std::string::npos) << msg;
  }
}

TEST(Require, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  auto probe = [&calls]() {
    ++calls;
    return true;
  };
  TRACON_REQUIRE(probe(), "probe");
  EXPECT_EQ(calls, 1);
}

TEST(Assert, ThrowsLogicError) {
  EXPECT_THROW(TRACON_ASSERT(false, "broken invariant"), std::logic_error);
  EXPECT_NO_THROW(TRACON_ASSERT(true, "fine"));
}

TEST(Assert, MessagePrefix) {
  try {
    TRACON_ASSERT(0 > 1, "zero above one");
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    std::string msg = message_of(e);
    EXPECT_NE(msg.find("TRACON invariant:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("zero above one"), std::string::npos) << msg;
  }
}

TEST(DcheckParanoid, TierIsCompiledIn) {
  EXPECT_TRUE(tracon::kParanoidChecksEnabled);
}

TEST(DcheckParanoid, ThrowsLikeAssert) {
  EXPECT_THROW(TRACON_DCHECK(false, "deep invariant"), std::logic_error);
  EXPECT_NO_THROW(TRACON_DCHECK(true, "fine"));
}

TEST(DcheckParanoid, MessageContents) {
  try {
    TRACON_DCHECK(1 == 3, "one is not three");
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    std::string msg = message_of(e);
    EXPECT_NE(msg.find("TRACON invariant:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("one is not three"), std::string::npos) << msg;
    EXPECT_NE(msg.find("1 == 3"), std::string::npos) << msg;
  }
}

TEST(CheckFiniteParanoid, NoThrowOnFiniteValues) {
  EXPECT_NO_THROW(TRACON_CHECK_FINITE(0.0, "zero"));
  EXPECT_NO_THROW(TRACON_CHECK_FINITE(-1.5e300, "large but finite"));
}

TEST(CheckFiniteParanoid, ThrowsOnNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(TRACON_CHECK_FINITE(nan, "poisoned"), std::logic_error);
}

TEST(CheckFiniteParanoid, ThrowsOnInfinity) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(TRACON_CHECK_FINITE(inf, "diverged"), std::logic_error);
  EXPECT_THROW(TRACON_CHECK_FINITE(-inf, "diverged down"), std::logic_error);
}

TEST(CheckFiniteParanoid, MessageNamesValueAndExpression) {
  const double bad = std::numeric_limits<double>::quiet_NaN();
  try {
    TRACON_CHECK_FINITE(bad * 2.0, "scaled poison");
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    std::string msg = message_of(e);
    EXPECT_NE(msg.find("TRACON non-finite:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("scaled poison"), std::string::npos) << msg;
    EXPECT_NE(msg.find("bad * 2.0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("nan"), std::string::npos) << msg;
  }
}

TEST(CheckFiniteParanoid, ValueEvaluatedExactlyOnce) {
  int calls = 0;
  auto probe = [&calls]() {
    ++calls;
    return 1.0;
  };
  TRACON_CHECK_FINITE(probe(), "probe");
  EXPECT_EQ(calls, 1);
}

}  // namespace
