#include <gtest/gtest.h>

#include "sched/fifo.hpp"
#include "sched/mibs.hpp"
#include "sched/mios.hpp"
#include "sched/mix.hpp"

namespace tracon::sched {
namespace {

/// Three app classes with a crafted interference table:
///   app 0 ("light") barely interferes with anything;
///   apps 1 and 2 ("heavy") destroy each other but tolerate the light.
TablePredictor crafted_predictor() {
  // Columns: neighbour 0, 1, 2, idle.
  stats::Matrix rt = {{55.0, 60.0, 60.0, 50.0},
                      {110.0, 400.0, 420.0, 100.0},
                      {115.0, 430.0, 410.0, 100.0}};
  stats::Matrix io = {{95.0, 90.0, 90.0, 100.0},
                      {180.0, 40.0, 35.0, 200.0},
                      {170.0, 35.0, 45.0, 200.0}};
  return TablePredictor(rt, io);
}

std::vector<QueuedTask> queue_of(std::initializer_list<std::size_t> apps) {
  std::vector<QueuedTask> q;
  for (std::size_t a : apps) q.push_back({a, 0.0});
  return q;
}

PlacementPolicy no_hold() {
  PlacementPolicy p;
  p.beneficial_joins_only = false;
  return p;
}

TEST(Fifo, PlacesEverythingWhileSlotsExist) {
  FifoScheduler fifo(3);
  ClusterCounts c(3, 2);  // 4 slots
  auto q = queue_of({0, 1, 2, 0, 1});
  auto placements = fifo.schedule(q, c, {0.0});
  EXPECT_EQ(placements.size(), 4u);  // fifth task has no slot
  // Placements must be applicable in order.
  ClusterCounts check = c;
  for (const auto& p : placements) check.place(q[p.queue_pos].app, p.neighbour);
  EXPECT_FALSE(check.any_free());
}

TEST(Fifo, DeterministicPerSeed) {
  auto q = queue_of({0, 1, 2});
  ClusterCounts c(3, 3);
  FifoScheduler a(7), b(7), d(8);
  auto pa = a.schedule(q, c, {0.0});
  auto pb = b.schedule(q, c, {0.0});
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_EQ(pa[i].neighbour, pb[i].neighbour);
  (void)d;
}

TEST(MiosBestSlot, PicksPredictedBestClass) {
  TablePredictor pred = crafted_predictor();
  ClusterCounts c(3, 0);
  // Manually craft: one machine half-busy with heavy(1), one with light(0).
  ClusterCounts c2(3, 2);
  c2.place(1, std::nullopt);
  c2.place(0, std::nullopt);
  // Heavy task 2: idle slot gone (both machines half-busy); best is
  // next to light (115) rather than heavy (430).
  auto slot = mios_best_slot(2, c2, pred, Objective::kRuntime, no_hold());
  ASSERT_TRUE(slot.has_value());
  ASSERT_TRUE(slot->has_value());
  EXPECT_EQ(**slot, 0u);
  (void)c;
}

TEST(MiosBestSlot, PrefersEmptyMachine) {
  TablePredictor pred = crafted_predictor();
  ClusterCounts c(3, 1);
  c.place(0, std::nullopt);  // also offer a light neighbour... no empty now
  ClusterCounts c2(3, 2);
  c2.place(0, std::nullopt);
  // One empty machine remains: solo (100) beats next-to-light (110).
  auto slot = mios_best_slot(1, c2, pred, Objective::kRuntime, no_hold());
  ASSERT_TRUE(slot.has_value());
  EXPECT_FALSE(slot->has_value());  // idle neighbour
}

TEST(MiosBestSlot, FullClusterReturnsNothing) {
  TablePredictor pred = crafted_predictor();
  ClusterCounts c(3, 1);
  c.place(0, std::nullopt);
  c.place(1, std::optional<std::size_t>(0));
  EXPECT_FALSE(
      mios_best_slot(2, c, pred, Objective::kRuntime, no_hold()).has_value());
}

TEST(JoinBeneficial, HeavyPairRejectedLightPairAccepted) {
  TablePredictor pred = crafted_predictor();
  // Heavy next to heavy: both collapse 4x — joint progress negative.
  EXPECT_FALSE(join_beneficial(1, 2, pred, Objective::kRuntime, 0.0));
  // Light next to heavy: light runs ~0.9x, heavy barely slows.
  EXPECT_TRUE(join_beneficial(0, 1, pred, Objective::kRuntime, 0.0));
  // IOPS objective: heavy+heavy destroys aggregate IOPS.
  EXPECT_FALSE(join_beneficial(1, 2, pred, Objective::kIops, 0.0));
  EXPECT_TRUE(join_beneficial(0, 1, pred, Objective::kIops, 0.0));
}

TEST(MiosBestSlot, HoldBackRefusesBadJoins) {
  TablePredictor pred = crafted_predictor();
  ClusterCounts c(3, 1);
  c.place(1, std::nullopt);  // only slot: next to heavy 1
  PlacementPolicy hold;      // beneficial joins only
  hold.join_margin = 0.0;
  auto refused = mios_best_slot(2, c, pred, Objective::kRuntime, hold);
  EXPECT_FALSE(refused.has_value());  // heavy+heavy refused, task waits
  auto accepted = mios_best_slot(0, c, pred, Objective::kRuntime, hold);
  ASSERT_TRUE(accepted.has_value());
  EXPECT_EQ(**accepted, 1u);
}

TEST(Mios, SchedulesInArrivalOrder) {
  TablePredictor pred = crafted_predictor();
  MiosScheduler mios(pred, Objective::kRuntime, no_hold());
  ClusterCounts c(3, 1);  // two slots only
  auto q = queue_of({1, 2, 0});
  auto placements = mios.schedule(q, c, {0.0});
  ASSERT_EQ(placements.size(), 2u);
  EXPECT_EQ(placements[0].queue_pos, 0u);
  EXPECT_EQ(placements[1].queue_pos, 1u);
}

TEST(Mibs, WaitsForBatchUnlessTriggered) {
  TablePredictor pred = crafted_predictor();
  MibsScheduler mibs(pred, Objective::kRuntime, 4, 60.0, no_hold());
  ClusterCounts c(3, 1);  // fewer empty machines than queued tasks
  auto q = queue_of({1, 2});
  // Queue below limit, head not timed out, 1 empty < 2 queued: wait.
  EXPECT_TRUE(mibs.schedule(q, c, {10.0}).empty());
  // Timeout reached: batch fires.
  EXPECT_FALSE(mibs.schedule(q, c, {61.0}).empty());
  // Queue at limit fires immediately.
  auto q4 = queue_of({1, 2, 0, 0});
  EXPECT_FALSE(mibs.schedule(q4, c, {0.0}).empty());
  // Next wakeup reflects the batch timeout.
  auto wake = mibs.next_wakeup(q, {10.0});
  ASSERT_TRUE(wake.has_value());
  EXPECT_DOUBLE_EQ(*wake, 60.0);
}

TEST(Mibs, DispatchesImmediatelyWhenEmptyMachinesCoverQueue) {
  TablePredictor pred = crafted_predictor();
  MibsScheduler mibs(pred, Objective::kRuntime, 8, 60.0, no_hold());
  ClusterCounts c(3, 5);
  auto q = queue_of({1, 2});
  EXPECT_EQ(mibs.schedule(q, c, {0.0}).size(), 2u);
}

TEST(Mibs, PairsComplementaryTasks) {
  TablePredictor pred = crafted_predictor();
  // One machine: the batch must co-locate two of {heavy1, heavy2, light}.
  ClusterCounts c(3, 1);
  auto q = queue_of({1, 2, 0});
  std::vector<std::size_t> order = {0, 1, 2};
  BatchOutcome out = mibs_batch(q, order, c, pred, Objective::kRuntime,
                                no_hold());
  ASSERT_EQ(out.placements.size(), 2u);
  // Candidate 1 is the head (heavy 1); candidate 2 must be the light
  // task (queue pos 2), NOT the other heavy.
  EXPECT_EQ(out.placements[0].queue_pos, 0u);
  EXPECT_EQ(out.placements[1].queue_pos, 2u);
}

TEST(Mibs, WindowLimitsBatch) {
  TablePredictor pred = crafted_predictor();
  MibsScheduler mibs(pred, Objective::kRuntime, 2, 0.0, no_hold());
  ClusterCounts c(3, 4);
  auto q = queue_of({0, 1, 2, 0, 1, 2});
  auto placements = mibs.schedule(q, c, {0.0});
  EXPECT_LE(placements.size(), 2u);  // only the 2-task window
}

TEST(Mix, PicksBetterHeadThanPlainMibs) {
  TablePredictor pred = crafted_predictor();
  // One free slot next to heavy(1); queue = {heavy2, light0}. MIBS
  // places the head (heavy2 -> disaster); MIX rotates and places light.
  ClusterCounts c(3, 1);
  c.place(1, std::nullopt);
  auto q = queue_of({2, 0});
  MibsScheduler mibs(pred, Objective::kRuntime, 2, 0.0, no_hold());
  auto pb = mibs.schedule(q, c, {1e9});
  ASSERT_EQ(pb.size(), 1u);
  EXPECT_EQ(pb[0].queue_pos, 0u);  // head forced
  MixScheduler mix(pred, Objective::kRuntime, 2, 0.0, no_hold());
  auto px = mix.schedule(q, c, {1e9});
  ASSERT_EQ(px.size(), 1u);
  EXPECT_EQ(px[0].queue_pos, 1u);  // light chosen for the slot
}

TEST(Schedulers, NamesIncludeConfiguration) {
  TablePredictor pred = crafted_predictor();
  EXPECT_EQ(FifoScheduler(1).name(), "FIFO");
  EXPECT_EQ(MiosScheduler(pred, Objective::kRuntime).name(), "MIOS-RT");
  EXPECT_EQ(MibsScheduler(pred, Objective::kIops, 8).name(), "MIBS8-IO");
  EXPECT_EQ(MixScheduler(pred, Objective::kRuntime, 4).name(), "MIX4-RT");
}

TEST(Schedulers, OnlineFlags) {
  TablePredictor pred = crafted_predictor();
  EXPECT_TRUE(FifoScheduler(1).online());
  EXPECT_TRUE(MiosScheduler(pred, Objective::kRuntime).online());
  EXPECT_FALSE(MibsScheduler(pred, Objective::kRuntime).online());
  EXPECT_FALSE(MixScheduler(pred, Objective::kRuntime).online());
}

TEST(Schedulers, ConfigValidation) {
  TablePredictor pred = crafted_predictor();
  EXPECT_THROW(MibsScheduler(pred, Objective::kRuntime, 0),
               std::invalid_argument);
  EXPECT_THROW(MixScheduler(pred, Objective::kRuntime, 8, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace tracon::sched
