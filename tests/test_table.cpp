#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace tracon {
namespace {

TEST(TableWriter, AlignsColumns) {
  TableWriter t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "2.5"});
  std::ostringstream os;
  t.print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TableWriter, CsvOutput) {
  TableWriter t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableWriter, NumericRowFormatting) {
  TableWriter t({"label", "x", "y"});
  t.add_row_numeric("r", {1.23456, 2.0}, 2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "label,x,y\nr,1.23,2.00\n");
}

TEST(TableWriter, RowWidthMismatchThrows) {
  TableWriter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row_numeric("l", {1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(TableWriter, EmptyHeaderThrows) {
  EXPECT_THROW(TableWriter({}), std::invalid_argument);
}

TEST(TableWriter, RowCount) {
  TableWriter t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"x"});
  t.add_row({"y"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace tracon
