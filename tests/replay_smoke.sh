#!/usr/bin/env bash
# End-to-end smoke test of the replay & run-store subsystem.
#
# Usage: replay_smoke.sh TRACON_BINARY GOLDEN_TRACE
#
# Exercises the full loop against the committed golden arrival trace:
#   1. recording is deterministic: two `record` runs with the same seed
#      write byte-identical trace files;
#   2. the golden trace still parses and replays (format drift guard);
#   3. replay is byte-identical: replaying the golden trace twice under
#      FIFO stores the same content-hashed run id both times;
#   4. `report` diffs a FIFO replay against a MIX replay, in text and
#      as parseable --json.
set -euo pipefail

TRACON=$1
GOLDEN=$2

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

run_id() {  # last stored-run id printed by a record/replay invocation
  awk '/^stored run /{id=$3} END{print id}' "$1"
}

echo "== record determinism =="
"$TRACON" record --machines 4 --lambda 6 --hours 0.1 --seed 7 \
    --scheduler mibs --out a.jsonl --store store_a > rec_a.log
"$TRACON" record --machines 4 --lambda 6 --hours 0.1 --seed 7 \
    --scheduler mibs --out b.jsonl --store store_b > rec_b.log
cmp a.jsonl b.jsonl || { echo "FAIL: same-seed traces differ"; exit 1; }
[ "$(run_id rec_a.log)" = "$(run_id rec_b.log)" ] \
    || { echo "FAIL: same-seed record runs stored different ids"; exit 1; }

echo "== golden trace replays =="
"$TRACON" replay --trace "$GOLDEN" --scheduler fifo --store runs > fifo1.log
"$TRACON" replay --trace "$GOLDEN" --scheduler fifo --store runs > fifo2.log
FIFO_ID=$(run_id fifo1.log)
[ -n "$FIFO_ID" ] || { echo "FAIL: no run id from replay"; exit 1; }
[ "$FIFO_ID" = "$(run_id fifo2.log)" ] \
    || { echo "FAIL: replay is not byte-identical (run ids diverge)"; exit 1; }

"$TRACON" replay --trace "$GOLDEN" --scheduler mix --store runs > mix.log
MIX_ID=$(run_id mix.log)
[ "$FIFO_ID" != "$MIX_ID" ] \
    || { echo "FAIL: FIFO and MIX replays stored the same run"; exit 1; }

echo "== report =="
"$TRACON" report "$FIFO_ID" "$MIX_ID" --store runs > report.txt
grep -q "scheduler: FIFO -> MIX" report.txt \
    || { echo "FAIL: report does not show the scheduler diff"; cat report.txt;
         exit 1; }
grep -q "sim.tasks.completed" report.txt \
    || { echo "FAIL: report lacks counters"; exit 1; }

"$TRACON" report "$FIFO_ID" "$MIX_ID" --store runs --json > report.json
if command -v python3 > /dev/null; then
  python3 - <<'EOF' || { echo "FAIL: --json output is not valid JSON"; exit 1; }
import json
doc = json.load(open("report.json"))
assert doc["sections"], "empty sections array"
assert doc["a"]["fingerprint"]["scheduler"] == "FIFO", "bad A fingerprint"
EOF
fi

echo "== store listing =="
"$TRACON" runs --store runs | grep -q "$FIFO_ID" \
    || { echo "FAIL: runs listing is missing the FIFO replay"; exit 1; }

echo "replay_smoke: all checks passed"
