#include "util/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace tracon {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s = Summary::of({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summary, SingleValue) {
  std::vector<double> xs = {4.0};
  Summary s = Summary::of(xs);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 4.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.min, 4.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_EQ(s.median, 4.0);
}

TEST(Summary, KnownValues) {
  std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  Summary s = Summary::of(xs);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
  EXPECT_NEAR(s.median, 4.5, 1e-12);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
}

TEST(Percentile, UnsortedInputHandled) {
  std::vector<double> xs = {30.0, 10.0, 40.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
}

TEST(Percentile, Preconditions) {
  std::vector<double> xs = {1.0};
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 1.1), std::invalid_argument);
}

TEST(OnlineStats, MatchesBatch) {
  Rng r(3);
  std::vector<double> xs;
  OnlineStats acc;
  for (int i = 0; i < 500; ++i) {
    double x = r.normal(5.0, 3.0);
    xs.push_back(x);
    acc.add(x);
  }
  Summary s = Summary::of(xs);
  EXPECT_NEAR(acc.mean(), s.mean, 1e-9);
  EXPECT_NEAR(acc.stddev(), s.stddev, 1e-9);
  EXPECT_EQ(acc.count(), 500u);
}

TEST(OnlineStats, Reset) {
  OnlineStats acc;
  acc.add(1.0);
  acc.add(2.0);
  acc.reset();
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(OnlineStats, FewerThanTwoSamplesZeroVariance) {
  OnlineStats acc;
  EXPECT_EQ(acc.variance(), 0.0);
  acc.add(7.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.mean(), 7.0);
}

// Property sweep: Welford is numerically stable for large offsets.
class OnlineStatsOffset : public ::testing::TestWithParam<double> {};

TEST_P(OnlineStatsOffset, StableUnderOffset) {
  double offset = GetParam();
  OnlineStats acc;
  for (int i = 0; i < 100; ++i) acc.add(offset + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(acc.mean(), offset, std::abs(offset) * 1e-12 + 1e-9);
  EXPECT_NEAR(acc.variance(), 100.0 / 99.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Offsets, OnlineStatsOffset,
                         ::testing::Values(0.0, 1e3, 1e6, 1e9, -1e9));

}  // namespace
}  // namespace tracon
