#include "sim/perf_table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/benchmarks.hpp"

namespace tracon::sim {
namespace {

PerfTable small_table() {
  model::Profiler prof(
      virt::HostSimulator(virt::HostConfig::paper_testbed()), 42);
  std::vector<virt::AppBehavior> apps = {
      *workload::benchmark_by_name("email"),
      *workload::benchmark_by_name("video"),
      *workload::benchmark_by_name("blastn")};
  return PerfTable::build(prof, apps);
}

TEST(PerfTable, NamesAndShapes) {
  PerfTable t = small_table();
  EXPECT_EQ(t.num_apps(), 3u);
  EXPECT_EQ(t.app_name(0), "email");
  EXPECT_EQ(t.app_name(1), "video");
  EXPECT_THROW(t.app_name(3), std::invalid_argument);
}

TEST(PerfTable, SoloEqualsIdleNeighbour) {
  PerfTable t = small_table();
  for (std::size_t a = 0; a < t.num_apps(); ++a) {
    EXPECT_EQ(t.runtime(a, std::nullopt), t.solo_runtime(a));
    EXPECT_EQ(t.iops(a, std::nullopt), t.solo_iops(a));
    EXPECT_NEAR(t.speed(a, std::nullopt), 1.0, 1e-12);
  }
}

TEST(PerfTable, InterferenceSlowsHeavyPairs) {
  PerfTable t = small_table();
  // video (1) against blastn (2): strong mutual I/O interference.
  EXPECT_GT(t.runtime(1, std::optional<std::size_t>(2)),
            1.5 * t.solo_runtime(1));
  EXPECT_LT(t.speed(1, std::optional<std::size_t>(2)), 0.7);
  // email (0) barely suffers from video.
  EXPECT_LT(t.runtime(0, std::optional<std::size_t>(1)),
            1.4 * t.solo_runtime(0));
}

TEST(PerfTable, SpeedsPositive) {
  PerfTable t = small_table();
  for (std::size_t a = 0; a < t.num_apps(); ++a)
    for (std::size_t b = 0; b < t.num_apps(); ++b)
      EXPECT_GT(t.speed(a, std::optional<std::size_t>(b)), 0.0);
}

TEST(PerfTable, ProfilesPopulated) {
  PerfTable t = small_table();
  EXPECT_GT(t.profile(1).reads_per_s, 100.0);  // video reads a lot
  EXPECT_GT(t.profile(0).writes_per_s, 1.0);
}

TEST(PerfTable, OraclePredictorMirrorsTable) {
  PerfTable t = small_table();
  sched::TablePredictor oracle = t.oracle_predictor();
  EXPECT_EQ(oracle.num_apps(), 3u);
  EXPECT_EQ(oracle.predict_runtime(1, std::optional<std::size_t>(2)),
            t.runtime(1, std::optional<std::size_t>(2)));
  EXPECT_EQ(oracle.predict_iops(2, std::nullopt), t.solo_iops(2));
}

TEST(PerfTable, CsvRoundTrip) {
  PerfTable t = small_table();
  std::stringstream ss;
  t.save_csv(ss);
  PerfTable loaded = PerfTable::load_csv(ss);
  ASSERT_EQ(loaded.num_apps(), t.num_apps());
  for (std::size_t a = 0; a < t.num_apps(); ++a) {
    EXPECT_EQ(loaded.app_name(a), t.app_name(a));
    EXPECT_DOUBLE_EQ(loaded.solo_runtime(a), t.solo_runtime(a));
    EXPECT_DOUBLE_EQ(loaded.profile(a).reads_per_s,
                     t.profile(a).reads_per_s);
    for (std::size_t b = 0; b < t.num_apps(); ++b) {
      auto nb = std::optional<std::size_t>(b);
      EXPECT_DOUBLE_EQ(loaded.runtime(a, nb), t.runtime(a, nb));
      EXPECT_DOUBLE_EQ(loaded.iops(a, nb), t.iops(a, nb));
    }
  }
}

TEST(PerfTable, LoadRejectsMalformedCsv) {
  std::stringstream not_ours("hello,world\n");
  EXPECT_THROW(PerfTable::load_csv(not_ours), std::invalid_argument);
  std::stringstream empty;
  EXPECT_THROW(PerfTable::load_csv(empty), std::invalid_argument);
  // Missing cells: header claims 2 apps but only app rows follow.
  std::stringstream truncated(
      "tracon-perftable,v1,2\napp,a,0,0,1,1\napp,b,0,0,1,1\n");
  EXPECT_THROW(PerfTable::load_csv(truncated), std::invalid_argument);
}

TEST(PerfTable, EmptyAppListThrows) {
  model::Profiler prof(
      virt::HostSimulator(virt::HostConfig::paper_testbed()), 42);
  EXPECT_THROW(PerfTable::build(prof, {}), std::invalid_argument);
}

}  // namespace
}  // namespace tracon::sim
