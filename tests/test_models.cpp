#include <gtest/gtest.h>

#include "model/evaluate.hpp"
#include "model/factory.hpp"
#include "model/linear.hpp"
#include "model/nonlinear.hpp"
#include "model/standardize.hpp"
#include "model/wmm.hpp"
#include "util/rng.hpp"

namespace tracon::model {
namespace {

/// Synthetic training set whose response is a known function of the
/// eight controlled variables (vm1 fixed as in per-app profiling).
TrainingSet make_data(int n, bool quadratic, double noise,
                      std::uint64_t seed = 40) {
  Rng rng(seed);
  TrainingSet ts;
  monitor::AppProfile fg{0.4, 0.05, 150.0, 30.0};  // constant (target app)
  for (int i = 0; i < n; ++i) {
    monitor::AppProfile bg;
    bg.domu_cpu = rng.uniform(0, 1);
    bg.dom0_cpu = rng.uniform(0, 0.2);
    bg.reads_per_s = rng.uniform(0, 400);
    bg.writes_per_s = rng.uniform(0, 250);
    double base = 50.0 + 20.0 * bg.domu_cpu + 0.05 * bg.reads_per_s +
                  0.08 * bg.writes_per_s + 100.0 * bg.dom0_cpu;
    if (quadratic) {
      base += 0.0004 * bg.reads_per_s * bg.writes_per_s +
              30.0 * bg.domu_cpu * bg.domu_cpu;
    }
    double y = base * rng.lognormal_noise(noise);
    double iops = std::max(1.0, 500.0 - base) * rng.lognormal_noise(noise);
    ts.add(fg, bg, y, iops);
  }
  return ts;
}

TEST(TrainingSet, ShapeAndAccessors) {
  TrainingSet ts = make_data(10, false, 0.0);
  EXPECT_EQ(ts.size(), 10u);
  EXPECT_EQ(ts.feature_matrix().rows(), 10u);
  EXPECT_EQ(ts.feature_matrix().cols(), 8u);
  EXPECT_EQ(ts.response_vector(Response::kRuntime).size(), 10u);
  EXPECT_NE(ts.response_vector(Response::kRuntime)[0],
            ts.response_vector(Response::kIops)[0]);
}

TEST(TrainingSet, SubsetAndTruncate) {
  TrainingSet ts = make_data(10, false, 0.0);
  std::vector<std::size_t> idx = {0, 5, 9};
  TrainingSet sub = ts.subset(idx);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.observations()[1].runtime, ts.observations()[5].runtime);
  ts.truncate_to_newest(4);
  EXPECT_EQ(ts.size(), 4u);
  std::vector<std::size_t> bad = {99};
  EXPECT_THROW(ts.subset(bad), std::invalid_argument);
}

TEST(TrainingSet, RejectsBadObservations) {
  TrainingSet ts;
  Observation obs;
  obs.features = {1.0, 2.0};  // wrong width
  EXPECT_THROW(ts.add(obs), std::invalid_argument);
  obs.features.assign(8, 0.0);
  obs.runtime = -1.0;
  EXPECT_THROW(ts.add(std::move(obs)), std::invalid_argument);
}

TEST(Standardizer, ZeroMeanUnitVariance) {
  TrainingSet ts = make_data(200, false, 0.0);
  stats::Matrix x = ts.feature_matrix();
  Standardizer s = Standardizer::fit(x);
  stats::Matrix z = s.apply_rows(x);
  for (std::size_t c = 4; c < 8; ++c) {  // varying (vm2) columns
    double mean = 0, var = 0;
    for (std::size_t r = 0; r < z.rows(); ++r) mean += z(r, c);
    mean /= static_cast<double>(z.rows());
    for (std::size_t r = 0; r < z.rows(); ++r) {
      double d = z(r, c) - mean;
      var += d * d;
    }
    var /= static_cast<double>(z.rows() - 1);
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-9);
  }
  // Constant (vm1) columns standardize to zero, not NaN.
  EXPECT_NEAR(z(0, 0), 0.0, 1e-12);
}

TEST(LinearModel, FitsLinearResponse) {
  TrainingSet ts = make_data(150, false, 0.0);
  LinearModel lm(ts, Response::kRuntime);
  ErrorStats e = evaluate_on(lm, make_data(50, false, 0.0, 99));
  EXPECT_LT(e.mean, 0.01);
  EXPECT_LE(lm.num_terms(), 6u);  // intercept + <=4 varying features
}

TEST(NonlinearModel, BeatsLinearOnQuadraticResponse) {
  TrainingSet train = make_data(200, true, 0.02);
  TrainingSet test = make_data(80, true, 0.0, 101);
  LinearModel lm(train, Response::kRuntime);
  NonlinearModel nlm(train, Response::kRuntime);
  double lm_err = evaluate_on(lm, test).mean;
  double nlm_err = evaluate_on(nlm, test).mean;
  EXPECT_LT(nlm_err, lm_err);
  EXPECT_LT(nlm_err, 0.03);
}

TEST(NonlinearModel, GaussNewtonRefinementConverges) {
  TrainingSet ts = make_data(150, true, 0.05);
  NonlinearModel nlm(ts, Response::kRuntime);
  EXPECT_TRUE(nlm.refined());
}

TEST(WmmModel, InterpolatesTrainingNeighbourhood) {
  TrainingSet ts = make_data(300, true, 0.0);
  WmmModel wmm(ts, Response::kRuntime);
  // At a training point the 3-NN prediction is dominated by it.
  const Observation& obs = ts.observations()[17];
  EXPECT_NEAR(wmm.predict(obs.features), obs.runtime,
              0.02 * obs.runtime + 1e-9);
}

TEST(WmmModel, DescribeMentionsComponents) {
  TrainingSet ts = make_data(50, false, 0.0);
  WmmModel wmm(ts, Response::kRuntime);
  EXPECT_NE(wmm.describe().find("WMM"), std::string::npos);
  EXPECT_NE(wmm.describe().find("k=3"), std::string::npos);
}

TEST(FeatureMask, NoDom0ModelIgnoresDom0) {
  TrainingSet ts = make_data(150, true, 0.02);
  auto masked = train_model(ModelKind::kNonlinearNoDom0, ts,
                            Response::kRuntime);
  // Perturbing only the Dom0 features must not change the prediction.
  std::vector<double> x = ts.observations()[3].features;
  double before = masked->predict(x);
  x[1] += 10.0;
  x[5] += 10.0;
  EXPECT_EQ(masked->predict(x), before);
  // The full NLM does react to the Dom0 features.
  auto full = train_model(ModelKind::kNonlinear, ts, Response::kRuntime);
  std::vector<double> x2 = ts.observations()[3].features;
  double b2 = full->predict(x2);
  x2[5] += 10.0;
  EXPECT_NE(full->predict(x2), b2);
}

TEST(Factory, NamesAndResponses) {
  EXPECT_EQ(model_kind_name(ModelKind::kWmm), "WMM");
  EXPECT_EQ(model_kind_name(ModelKind::kLinear), "LM");
  EXPECT_EQ(model_kind_name(ModelKind::kNonlinear), "NLM");
  TrainingSet ts = make_data(100, false, 0.01);
  ModelPair pair = train_model_pair(ModelKind::kLinear, ts);
  EXPECT_EQ(pair.runtime->response(), Response::kRuntime);
  EXPECT_EQ(pair.iops->response(), Response::kIops);
}

TEST(Models, PredictionsClampedNonNegative) {
  TrainingSet ts = make_data(100, false, 0.01);
  for (ModelKind kind : {ModelKind::kWmm, ModelKind::kLinear,
                         ModelKind::kNonlinear}) {
    auto m = train_model(kind, ts, Response::kIops);
    std::vector<double> extreme(8, 1e5);
    EXPECT_GE(m->predict(extreme), 0.0) << model_kind_name(kind);
  }
}

TEST(Evaluate, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(90.0, 100.0), 0.1);
  EXPECT_TRUE(std::isfinite(relative_error(1.0, 0.0)));
}

TEST(Evaluate, CrossValidationIsDeterministic) {
  TrainingSet ts = make_data(120, true, 0.05);
  ErrorStats a = cross_validate(ModelKind::kLinear, ts, Response::kRuntime,
                                5, 7);
  ErrorStats b = cross_validate(ModelKind::kLinear, ts, Response::kRuntime,
                                5, 7);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.count, ts.size());
}

TEST(Evaluate, CrossValidationPreconditions) {
  TrainingSet ts = make_data(10, false, 0.0);
  EXPECT_THROW(cross_validate(ModelKind::kLinear, ts, Response::kRuntime, 1),
               std::invalid_argument);
  EXPECT_THROW(
      cross_validate(ModelKind::kLinear, ts, Response::kRuntime, 20),
      std::invalid_argument);
}

TEST(Models, TooSmallTrainingSetThrows) {
  TrainingSet tiny = make_data(5, false, 0.0);
  EXPECT_THROW(NonlinearModel(tiny, Response::kRuntime),
               std::invalid_argument);
  TrainingSet three = make_data(3, false, 0.0);
  EXPECT_THROW(WmmModel(three, Response::kRuntime), std::invalid_argument);
}

}  // namespace
}  // namespace tracon::model
