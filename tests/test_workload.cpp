#include "workload/benchmarks.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/summary.hpp"
#include "virt/host_sim.hpp"
#include "workload/mixes.hpp"
#include "workload/synthetic.hpp"

namespace tracon::workload {
namespace {

TEST(Benchmarks, EightAppsInIopsRankOrder) {
  const auto& apps = paper_benchmarks();
  ASSERT_EQ(apps.size(), 8u);
  EXPECT_EQ(apps[0].name, "email");
  EXPECT_EQ(apps[7].name, "video");
  // Table 3 ranking: total IOPS strictly increasing with rank.
  for (std::size_t i = 1; i < apps.size(); ++i)
    EXPECT_GT(apps[i].total_iops(), apps[i - 1].total_iops())
        << apps[i].name << " vs " << apps[i - 1].name;
}

TEST(Benchmarks, LookupByName) {
  auto video = benchmark_by_name("video");
  ASSERT_TRUE(video.has_value());
  EXPECT_EQ(video->name, "video");
  EXPECT_FALSE(benchmark_by_name("nope").has_value());
}

TEST(Benchmarks, AllSoloFeasible) {
  // Every benchmark must complete near its nominal runtime when alone —
  // the behavioural parameters may not oversubscribe the host.
  virt::HostConfig cfg = virt::HostConfig::paper_testbed();
  cfg.noise_sigma = 0.0;
  virt::HostSimulator sim(cfg);
  for (const auto& app : paper_benchmarks()) {
    virt::VmRunStats s = sim.solo(app);
    EXPECT_TRUE(s.completed) << app.name;
    EXPECT_NEAR(s.runtime_s, app.solo_runtime_s, 0.1 * app.solo_runtime_s)
        << app.name;
  }
}

TEST(Benchmarks, MicroAppsMatchTable1Roles) {
  EXPECT_FALSE(calc_app().does_io());
  EXPECT_GT(calc_app().cpu_util, 0.9);
  EXPECT_GT(seqread_app().read_iops, 500);
  EXPECT_GT(seqread_app().sequentiality, 0.9);
  EXPECT_GT(cpu_io_high_app().total_iops(),
            cpu_io_medium_app().total_iops());
  EXPECT_GT(cpu_io_high_app().cpu_util, cpu_io_medium_app().cpu_util);
}

TEST(Synthetic, Produces125Workloads) {
  auto all = synthetic_workloads();
  EXPECT_EQ(all.size(), 125u);
  // Exactly one idle combination.
  int idle = 0;
  for (const auto& a : all)
    if (a.is_idle()) ++idle;
  EXPECT_EQ(idle, 1);
}

TEST(Synthetic, IntensityLevelsScaleLinearly) {
  SyntheticConfig cfg;
  auto a = synthetic_workload(2, 0, 0, cfg);
  EXPECT_NEAR(a.cpu_util, cfg.max_cpu * 0.5, 1e-12);
  EXPECT_EQ(a.read_iops, 0.0);
  auto b = synthetic_workload(0, 4, 2, cfg);
  EXPECT_NEAR(b.read_iops, cfg.max_read_iops, 1e-12);
  EXPECT_NEAR(b.write_iops, cfg.max_write_iops * 0.5, 1e-12);
}

TEST(Synthetic, NamesEncodeLevels) {
  EXPECT_EQ(synthetic_workload(1, 2, 3).name, "synth-c1r2w3");
}

TEST(Synthetic, PatternNotConstant) {
  // Request size / sequentiality vary across workloads (hash-assigned).
  auto all = synthetic_workloads();
  bool kb_varies = false, sigma_varies = false;
  for (const auto& a : all) {
    kb_varies |= a.request_kb != all[0].request_kb;
    sigma_varies |= a.sequentiality != all[0].sequentiality;
  }
  EXPECT_TRUE(kb_varies);
  EXPECT_TRUE(sigma_varies);
}

TEST(Synthetic, LevelRangeChecked) {
  EXPECT_THROW(synthetic_workload(5, 0, 0), std::invalid_argument);
  EXPECT_THROW(synthetic_workload(0, -1, 0), std::invalid_argument);
}

TEST(Mixes, NamesAndMeans) {
  EXPECT_EQ(mix_name(MixKind::kLight), "light");
  EXPECT_EQ(mix_name(MixKind::kHeavy), "heavy");
  EXPECT_DOUBLE_EQ(mix_mean(MixKind::kLight), 2.5);
  EXPECT_DOUBLE_EQ(mix_mean(MixKind::kMedium), 4.0);
  EXPECT_DOUBLE_EQ(mix_mean(MixKind::kHeavy), 5.5);
}

TEST(Mixes, SampledRankMeansAreOrdered) {
  Rng rng(21);
  auto mean_rank = [&](MixKind kind) {
    OnlineStats s;
    for (int i = 0; i < 5000; ++i)
      s.add(static_cast<double>(sample_benchmark_index(kind, rng)) + 1.0);
    return s.mean();
  };
  double light = mean_rank(MixKind::kLight);
  double medium = mean_rank(MixKind::kMedium);
  double heavy = mean_rank(MixKind::kHeavy);
  EXPECT_LT(light, medium);
  EXPECT_LT(medium, heavy);
  EXPECT_NEAR(light, 2.6, 0.3);   // clamping shifts the mean slightly
  EXPECT_NEAR(heavy, 5.4, 0.3);
}

TEST(Mixes, IndicesInRange) {
  Rng rng(22);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(sample_benchmark_index(MixKind::kHeavy, rng), 8u);
    EXPECT_LT(sample_benchmark_index(MixKind::kUniform, rng), 8u);
  }
}

TEST(Mixes, SampleTasksMaterializesApps) {
  Rng rng(23);
  auto tasks = sample_tasks(MixKind::kMedium, 10, rng);
  EXPECT_EQ(tasks.size(), 10u);
  for (const auto& t : tasks) EXPECT_FALSE(t.name.empty());
}

TEST(Mixes, InvalidStddevThrows) {
  Rng rng(24);
  EXPECT_THROW(sample_benchmark_index(MixKind::kLight, rng, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace tracon::workload
