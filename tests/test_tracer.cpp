// Unit tests for the obs event tracer: recording semantics, disabled
// no-op behaviour, Chrome trace_event JSON validity (parsed back with
// the obs JSON reader), JSONL export, and determinism of both exports.
#include "obs/event_tracer.hpp"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hpp"

namespace {

using tracon::obs::EventTracer;
using tracon::obs::JsonValue;
using tracon::obs::parse_json;
using tracon::obs::TraceEvent;
using tracon::obs::TraceEventKind;
using tracon::obs::trace_event_kind_name;

TraceEvent make_event(double time_s, TraceEventKind kind, std::size_t app,
                      std::size_t machine, double value = 0.0,
                      double value2 = 0.0) {
  TraceEvent ev;
  ev.time_s = time_s;
  ev.kind = kind;
  ev.app = app;
  ev.machine = machine;
  ev.value = value;
  ev.value2 = value2;
  return ev;
}

EventTracer sample_tracer() {
  EventTracer t;
  t.set_enabled(true);
  t.record(make_event(0.5, TraceEventKind::kTaskArrival, 2,
                      TraceEvent::kNone));
  t.record(make_event(1.0, TraceEventKind::kVmStart, 2, 3));
  t.record(make_event(1.0, TraceEventKind::kTaskPlaced, 2, 3, 90.0, 0.5));
  t.record(
      make_event(2.0, TraceEventKind::kSchedDecision, TraceEvent::kNone,
                 TraceEvent::kNone, 42.5, 1.0));
  t.record(make_event(101.0, TraceEventKind::kTaskCompleted, 2, 3, 100.0,
                      250.0));
  return t;
}

TEST(Tracer, DisabledByDefaultAndRecordIsZeroAllocNoOp) {
  EventTracer t;
  EXPECT_FALSE(t.enabled());
  for (int i = 0; i < 1000; ++i)
    t.record(make_event(i, TraceEventKind::kTaskArrival, 0, 0));
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.capacity(), 0u);  // no allocation ever happened
}

TEST(Tracer, MaxEventsCapsStorageAndCountsDrops) {
  EventTracer t;
  t.set_enabled(true);
  t.set_max_events(3);
  for (int i = 0; i < 10; ++i)
    t.record(make_event(i, TraceEventKind::kTaskArrival, 0, 0));
  EXPECT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.dropped(), 7u);
  EXPECT_DOUBLE_EQ(t.events().back().time_s, 2.0);
  t.clear();
  EXPECT_EQ(t.dropped(), 0u);
  t.record(make_event(0.0, TraceEventKind::kTaskArrival, 0, 0));
  EXPECT_EQ(t.events().size(), 1u);
}

TEST(Tracer, RecordsInOrderWhileEnabled) {
  EventTracer t = sample_tracer();
  ASSERT_EQ(t.events().size(), 5u);
  for (std::size_t i = 1; i < t.events().size(); ++i)
    EXPECT_LE(t.events()[i - 1].time_s, t.events()[i].time_s);
  t.set_enabled(false);
  t.record(make_event(200.0, TraceEventKind::kTaskArrival, 0, 0));
  EXPECT_EQ(t.events().size(), 5u);
  t.clear();
  EXPECT_TRUE(t.events().empty());
}

TEST(Tracer, KindNamesAreDottedPaths) {
  EXPECT_EQ(trace_event_kind_name(TraceEventKind::kTaskArrival),
            "sim.task.arrival");
  EXPECT_EQ(trace_event_kind_name(TraceEventKind::kSchedDecision),
            "sched.decision");
  EXPECT_EQ(trace_event_kind_name(TraceEventKind::kModelRetrain),
            "model.retrain");
}

TEST(Tracer, ChromeJsonIsValidAndPerfettoShaped) {
  EventTracer t = sample_tracer();
  std::ostringstream os;
  t.write_chrome_json(os);
  JsonValue doc = parse_json(os.str());

  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // 2 process_name metadata records + 5 recorded events.
  ASSERT_EQ(events->as_array().size(), 7u);

  std::size_t slices = 0, instants = 0, metadata = 0;
  for (const auto& ev : events->as_array()) {
    ASSERT_NE(ev->find("ph"), nullptr);
    ASSERT_NE(ev->find("pid"), nullptr);
    ASSERT_NE(ev->find("tid"), nullptr);
    ASSERT_NE(ev->find("name"), nullptr);
    const std::string& ph = ev->find("ph")->as_string();
    if (ph == "M") {
      ++metadata;
      continue;
    }
    ASSERT_NE(ev->find("ts"), nullptr);
    if (ph == "X") {
      ++slices;
      // The completed task covers [completion - runtime, completion].
      EXPECT_DOUBLE_EQ(ev->find("ts")->as_number(), 1.0 * 1e6);
      EXPECT_DOUBLE_EQ(ev->find("dur")->as_number(), 100.0 * 1e6);
      EXPECT_DOUBLE_EQ(ev->find("tid")->as_number(), 3.0);
    } else {
      EXPECT_EQ(ph, "i");
      ++instants;
    }
  }
  EXPECT_EQ(metadata, 2u);
  EXPECT_EQ(slices, 1u);
  EXPECT_EQ(instants, 4u);
}

TEST(Tracer, JsonlHasOneValidObjectPerLine) {
  EventTracer t = sample_tracer();
  std::ostringstream os;
  t.write_jsonl(os);
  std::istringstream in(os.str());
  std::string line;
  std::vector<std::string> kinds;
  while (std::getline(in, line)) {
    JsonValue obj = parse_json(line);
    ASSERT_NE(obj.find("time_s"), nullptr);
    ASSERT_NE(obj.find("kind"), nullptr);
    kinds.push_back(obj.find("kind")->as_string());
  }
  ASSERT_EQ(kinds.size(), 5u);
  EXPECT_EQ(kinds.front(), "sim.task.arrival");
  EXPECT_EQ(kinds.back(), "sim.task.completed");
}

TEST(Tracer, ExportsAreDeterministic) {
  auto build = [] {
    EventTracer t = sample_tracer();
    std::ostringstream chrome, jsonl;
    t.write_chrome_json(chrome);
    t.write_jsonl(jsonl);
    return chrome.str() + "\x01" + jsonl.str();
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
