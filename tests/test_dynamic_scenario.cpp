#include "sim/dynamic_scenario.hpp"

#include <gtest/gtest.h>

#include "sched/fifo.hpp"
#include "sched/mibs.hpp"
#include "sched/mios.hpp"
#include "workload/benchmarks.hpp"

namespace tracon::sim {
namespace {

const PerfTable& table() {
  static PerfTable t = [] {
    model::Profiler prof(
        virt::HostSimulator(virt::HostConfig::paper_testbed()), 42);
    return PerfTable::build(prof, workload::paper_benchmarks());
  }();
  return t;
}

DynamicConfig small_config() {
  DynamicConfig cfg;
  cfg.machines = 8;
  cfg.lambda_per_min = 4.0;  // well below the 16-VM capacity
  cfg.duration_s = 3600.0;
  cfg.seed = 3;
  return cfg;
}

TEST(DynamicScenario, LowLoadCompletesAlmostEverything) {
  sched::FifoScheduler fifo(1);
  DynamicConfig cfg = small_config();
  DynamicOutcome o = run_dynamic(table(), fifo, cfg);
  EXPECT_GT(o.arrived, 200u);  // ~4/min over an hour
  EXPECT_EQ(o.dropped, 0u);
  // Everything that arrived early enough completes; a few in-flight
  // tasks at the horizon are allowed.
  EXPECT_GE(o.completed + 20, o.arrived);
  EXPECT_LT(o.mean_wait_s, 1.0);
}

TEST(DynamicScenario, ConservationInvariant) {
  sched::FifoScheduler fifo(1);
  DynamicConfig cfg = small_config();
  cfg.lambda_per_min = 120.0;  // saturate the 8 machines
  DynamicOutcome o = run_dynamic(table(), fifo, cfg);
  EXPECT_LE(o.completed + o.dropped, o.arrived);
  EXPECT_GT(o.dropped, 0u);  // bounded queue must shed load
  EXPECT_GT(o.completed, 0u);
}

TEST(DynamicScenario, DeterministicPerSeed) {
  DynamicConfig cfg = small_config();
  sched::FifoScheduler a(1), b(1);
  DynamicOutcome oa = run_dynamic(table(), a, cfg);
  DynamicOutcome ob = run_dynamic(table(), b, cfg);
  EXPECT_EQ(oa.completed, ob.completed);
  EXPECT_EQ(oa.total_runtime, ob.total_runtime);
  cfg.seed = 4;
  sched::FifoScheduler c(1);
  DynamicOutcome oc = run_dynamic(table(), c, cfg);
  EXPECT_NE(oa.completed, oc.completed);
}

TEST(DynamicScenario, ThroughputPerHour) {
  DynamicOutcome o;
  o.completed = 500;
  o.duration_s = 7200.0;
  EXPECT_DOUBLE_EQ(o.throughput_per_hour(), 250.0);
  DynamicOutcome zero;
  EXPECT_EQ(zero.throughput_per_hour(), 0.0);
}

TEST(DynamicScenario, QueueCapacityControlsDrops) {
  DynamicConfig cfg = small_config();
  cfg.lambda_per_min = 200.0;
  cfg.queue_capacity = 2;
  sched::FifoScheduler a(1);
  DynamicOutcome small_q = run_dynamic(table(), a, cfg);
  cfg.queue_capacity = 64;
  sched::FifoScheduler b(1);
  DynamicOutcome big_q = run_dynamic(table(), b, cfg);
  EXPECT_GT(small_q.dropped, big_q.dropped);
}

TEST(DynamicScenario, RuntimesAtLeastSolo) {
  sched::FifoScheduler fifo(1);
  DynamicConfig cfg = small_config();
  DynamicOutcome o = run_dynamic(table(), fifo, cfg);
  // Mean realized runtime can never beat the fastest solo runtime.
  double min_solo = 1e300;
  for (std::size_t a = 0; a < table().num_apps(); ++a)
    min_solo = std::min(min_solo, table().solo_runtime(a));
  EXPECT_GT(o.total_runtime / static_cast<double>(o.completed),
            0.9 * min_solo);
}

TEST(DynamicScenario, BatchSchedulerDrainsQueueEventually) {
  DynamicConfig cfg = small_config();
  cfg.lambda_per_min = 5.0;  // far below capacity
  sched::TablePredictor oracle = table().oracle_predictor();
  sched::MibsScheduler mibs(oracle, sched::Objective::kRuntime, 8, 30.0);
  DynamicOutcome o = run_dynamic(table(), mibs, cfg);
  EXPECT_EQ(o.dropped, 0u);
  EXPECT_GE(o.completed + 20, o.arrived);
}

TEST(DynamicScenario, InterferenceAwareBeatsFifoUnderLoad) {
  DynamicConfig cfg = small_config();
  cfg.machines = 16;
  cfg.lambda_per_min = 60.0;
  cfg.duration_s = 7200.0;
  cfg.mix = workload::MixKind::kHeavy;  // widest interference spread
  sched::FifoScheduler fifo(1);
  DynamicOutcome base = run_dynamic(table(), fifo, cfg);
  sched::TablePredictor oracle = table().oracle_predictor();
  sched::MibsScheduler mibs(oracle, sched::Objective::kRuntime, 8);
  DynamicOutcome smart = run_dynamic(table(), mibs, cfg);
  EXPECT_GT(smart.completed, base.completed);
}

TEST(DynamicScenario, ConfigValidation) {
  sched::FifoScheduler fifo(1);
  DynamicConfig cfg = small_config();
  cfg.machines = 0;
  EXPECT_THROW(run_dynamic(table(), fifo, cfg), std::invalid_argument);
  cfg = small_config();
  cfg.lambda_per_min = 0.0;
  EXPECT_THROW(run_dynamic(table(), fifo, cfg), std::invalid_argument);
  cfg = small_config();
  cfg.queue_capacity = 0;
  EXPECT_THROW(run_dynamic(table(), fifo, cfg), std::invalid_argument);
  cfg = small_config();
  cfg.schedule_period_s = 0.0;
  EXPECT_THROW(run_dynamic(table(), fifo, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace tracon::sim
