#include "sim/hierarchy.hpp"

#include <gtest/gtest.h>

#include "sched/fifo.hpp"
#include "sched/mibs.hpp"
#include "workload/benchmarks.hpp"

namespace tracon::sim {
namespace {

const PerfTable& table() {
  static PerfTable t = [] {
    model::Profiler prof(
        virt::HostSimulator(virt::HostConfig::paper_testbed()), 42);
    return PerfTable::build(prof, workload::paper_benchmarks());
  }();
  return t;
}

HierarchyConfig small_config() {
  HierarchyConfig cfg;
  cfg.managers = 4;
  cfg.machines_per_manager = 4;
  cfg.lambda_per_min = 20.0;
  cfg.duration_s = 3600.0;
  cfg.seed = 11;
  return cfg;
}

std::function<std::unique_ptr<sched::Scheduler>(std::size_t)> fifo_factory() {
  return [](std::size_t m) {
    return std::make_unique<sched::FifoScheduler>(100 + m);
  };
}

TEST(Hierarchy, AggregatesManagerOutcomes) {
  HierarchyOutcome o =
      run_hierarchical(table(), fifo_factory(), small_config());
  ASSERT_EQ(o.per_manager.size(), 4u);
  std::size_t arrived = 0, completed = 0, dropped = 0;
  for (const auto& m : o.per_manager) {
    arrived += m.arrived;
    completed += m.completed;
    dropped += m.dropped;
  }
  EXPECT_EQ(o.total.arrived, arrived);
  EXPECT_EQ(o.total.completed, completed);
  EXPECT_EQ(o.total.dropped, dropped);
  EXPECT_GT(o.total.completed, 0u);
}

TEST(Hierarchy, RootStreamSplitExactly) {
  HierarchyConfig cfg = small_config();
  HierarchyOutcome o = run_hierarchical(table(), fifo_factory(), cfg);
  DynamicConfig root;
  root.lambda_per_min = cfg.lambda_per_min;
  root.duration_s = cfg.duration_s;
  root.mix = cfg.mix;
  root.seed = cfg.seed;
  auto all = generate_arrivals(root, table().num_apps());
  EXPECT_EQ(o.total.arrived, all.size());
}

TEST(Hierarchy, RoundRobinIsBalanced) {
  HierarchyConfig cfg = small_config();
  cfg.routing = Routing::kRoundRobin;
  HierarchyOutcome o = run_hierarchical(table(), fifo_factory(), cfg);
  // Arrivals differ by at most 1 across managers under round-robin.
  std::size_t lo = o.per_manager[0].arrived, hi = lo;
  for (const auto& m : o.per_manager) {
    lo = std::min(lo, m.arrived);
    hi = std::max(hi, m.arrived);
  }
  EXPECT_LE(hi - lo, 1u);
  EXPECT_LT(o.completion_imbalance(), 0.2);
}

TEST(Hierarchy, RandomRoutingRoughlyBalanced) {
  HierarchyConfig cfg = small_config();
  cfg.routing = Routing::kRandom;
  HierarchyOutcome o = run_hierarchical(table(), fifo_factory(), cfg);
  EXPECT_LT(o.completion_imbalance(), 0.3);
  EXPECT_GT(o.total.completed, 0u);
}

TEST(Hierarchy, Deterministic) {
  HierarchyConfig cfg = small_config();
  auto a = run_hierarchical(table(), fifo_factory(), cfg);
  auto b = run_hierarchical(table(), fifo_factory(), cfg);
  EXPECT_EQ(a.total.completed, b.total.completed);
  EXPECT_EQ(a.total.total_runtime, b.total.total_runtime);
}

TEST(Hierarchy, ThreadCountDoesNotChangeResults) {
  // The leaf runs go through util/parallel's worker pool; any thread
  // count must reproduce the serial outcome exactly.
  HierarchyConfig serial = small_config();
  serial.threads = 1;
  HierarchyOutcome a = run_hierarchical(table(), fifo_factory(), serial);
  for (std::size_t threads : {2u, 4u, 8u}) {
    HierarchyConfig cfg = small_config();
    cfg.threads = threads;
    HierarchyOutcome b = run_hierarchical(table(), fifo_factory(), cfg);
    ASSERT_EQ(a.per_manager.size(), b.per_manager.size());
    for (std::size_t m = 0; m < a.per_manager.size(); ++m) {
      EXPECT_EQ(a.per_manager[m].arrived, b.per_manager[m].arrived);
      EXPECT_EQ(a.per_manager[m].completed, b.per_manager[m].completed);
      EXPECT_EQ(a.per_manager[m].dropped, b.per_manager[m].dropped);
      EXPECT_EQ(a.per_manager[m].total_runtime,
                b.per_manager[m].total_runtime);
      EXPECT_EQ(a.per_manager[m].mean_wait_s, b.per_manager[m].mean_wait_s);
    }
    EXPECT_EQ(a.total.completed, b.total.completed);
    EXPECT_EQ(a.total.total_runtime, b.total.total_runtime);
    EXPECT_EQ(a.total.mean_wait_s, b.total.mean_wait_s);
  }
}

TEST(Hierarchy, PerManagerSchedulersAreIndependent) {
  // Manager 0 gets MIBS, the rest FIFO; the factory index must be used.
  HierarchyConfig cfg = small_config();
  cfg.lambda_per_min = 60.0;  // load the managers
  cfg.mix = workload::MixKind::kHeavy;
  int mibs_made = 0;
  sched::TablePredictor oracle = table().oracle_predictor();
  auto factory = [&](std::size_t m) -> std::unique_ptr<sched::Scheduler> {
    if (m == 0) {
      ++mibs_made;
      return std::make_unique<sched::MibsScheduler>(
          oracle, sched::Objective::kRuntime, 8);
    }
    return std::make_unique<sched::FifoScheduler>(m);
  };
  HierarchyOutcome o = run_hierarchical(table(), factory, cfg);
  EXPECT_EQ(mibs_made, 1);
  ASSERT_EQ(o.per_manager.size(), 4u);
}

TEST(Hierarchy, ConfigValidation) {
  HierarchyConfig cfg = small_config();
  cfg.managers = 0;
  EXPECT_THROW(run_hierarchical(table(), fifo_factory(), cfg),
               std::invalid_argument);
  cfg = small_config();
  cfg.machines_per_manager = 0;
  EXPECT_THROW(run_hierarchical(table(), fifo_factory(), cfg),
               std::invalid_argument);
  cfg = small_config();
  EXPECT_THROW(run_hierarchical(table(), nullptr, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace tracon::sim
