#include "stats/knn.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tracon::stats {
namespace {

Matrix points() {
  return Matrix{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {10.0, 10.0}};
}

TEST(Knn, ExactMatchReturnsTrainingResponse) {
  KnnRegressor knn(points(), {1.0, 2.0, 3.0, 4.0}, 3);
  std::vector<double> q = {10.0, 10.0};
  EXPECT_EQ(knn.predict(q), 4.0);
}

TEST(Knn, InverseDistanceWeighting) {
  // Query at (0.5, 0) has neighbours (0,0) d=0.5, (1,0) d=0.5,
  // (0,1) d=sqrt(1.25). Weights 2, 2, 0.894.
  KnnRegressor knn(points(), {1.0, 2.0, 3.0, 100.0}, 3);
  std::vector<double> q = {0.5, 0.0};
  double w3 = 1.0 / std::sqrt(1.25);
  double expected = (2.0 * 1.0 + 2.0 * 2.0 + w3 * 3.0) / (4.0 + w3);
  EXPECT_NEAR(knn.predict(q), expected, 1e-12);
}

TEST(Knn, FarPointExcludedFromK3) {
  // With k=3, the far (10,10) point never contributes near the origin.
  KnnRegressor knn(points(), {1.0, 1.0, 1.0, 1000.0}, 3);
  std::vector<double> q = {0.2, 0.2};
  EXPECT_LT(knn.predict(q), 2.0);
}

TEST(Knn, KClampedToTrainingSize) {
  Matrix p = {{0.0}, {1.0}};
  KnnRegressor knn(p, {2.0, 4.0}, 10);
  EXPECT_EQ(knn.k(), 2u);
  std::vector<double> q = {0.5};
  EXPECT_NEAR(knn.predict(q), 3.0, 1e-12);  // equal weights
}

TEST(Knn, KOneIsNearestNeighbour) {
  KnnRegressor knn(points(), {1.0, 2.0, 3.0, 4.0}, 1);
  std::vector<double> q = {0.9, 0.1};
  EXPECT_EQ(knn.predict(q), 2.0);
}

TEST(Knn, Preconditions) {
  Matrix p = {{0.0}, {1.0}};
  EXPECT_THROW(KnnRegressor(p, {1.0}, 3), std::invalid_argument);
  EXPECT_THROW(KnnRegressor(Matrix{}, {}, 3), std::invalid_argument);
  KnnRegressor knn(p, {1.0, 2.0}, 1);
  std::vector<double> wrong = {1.0, 2.0};
  EXPECT_THROW(knn.predict(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace tracon::stats
