// The run database: content-addressed ids, idempotent appends,
// crash-tail recovery, prefix lookup, and the report diff engine.
#include "runstore/runstore.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "runstore/report.hpp"

namespace tracon::runstore {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("runstore_" + name);
  fs::remove_all(dir);
  return dir;
}

/// A minimal but shape-complete metrics document (what write_json
/// emits), parameterized so two runs differ.
std::string metrics_doc(double completed, const std::string& scheduler) {
  std::ostringstream os;
  os << "{\n  \"fingerprint\": {\"scheduler\": \"" << scheduler
     << "\", \"seed\": \"7\"},\n"
     << "  \"counters\": {\"sim.tasks.completed\": " << completed << "},\n"
     << "  \"gauges\": {\"sim.util.slot_busy_fraction\": 0.5},\n"
     << "  \"histograms\": {\"sim.task.wait_s\": {\"count\": 4, \"sum\": 10, "
        "\"min\": 1, \"max\": 4},\n"
     << "  \"model.nlm.runtime.rel_error_abs\": {\"count\": 2, \"sum\": 0.3, "
        "\"min\": 0.1, \"max\": 0.2}}\n}\n";
  return os.str();
}

TEST(RunStore, ContentIdIsStableFnv1a) {
  // Reference digests of the 64-bit FNV-1a function.
  EXPECT_EQ(RunStore::content_id(""), "cbf29ce484222325");
  EXPECT_EQ(RunStore::content_id("abc"), "e71fa2190541574b");
  EXPECT_NE(RunStore::content_id("abc"), RunStore::content_id("abd"));
}

TEST(RunStore, AddThenLoadRoundTrips) {
  RunStore store(fresh_dir("roundtrip"));
  std::string id = store.add_run_json(metrics_doc(10, "FIFO"), "FIFO", "live",
                                      {{"seed", "7"}, {"mix", "medium"}});
  EXPECT_EQ(id, RunStore::content_id(metrics_doc(10, "FIFO")));

  RunStore::LoadResult loaded = store.load();
  EXPECT_EQ(loaded.skipped_lines, 0u);
  ASSERT_EQ(loaded.runs.size(), 1u);
  EXPECT_EQ(loaded.runs[0].id, id);
  EXPECT_EQ(loaded.runs[0].scheduler, "FIFO");
  EXPECT_EQ(loaded.runs[0].source, "live");
  EXPECT_EQ(loaded.runs[0].fingerprint.at("seed"), "7");
  EXPECT_EQ(loaded.runs[0].fingerprint.at("mix"), "medium");
  EXPECT_EQ(store.read_metrics(loaded.runs[0]), metrics_doc(10, "FIFO"));
}

TEST(RunStore, StoringIdenticalContentIsIdempotent) {
  RunStore store(fresh_dir("idempotent"));
  std::string a = store.add_run_json(metrics_doc(10, "FIFO"), "FIFO", "live",
                                     {});
  std::string b = store.add_run_json(metrics_doc(10, "FIFO"), "FIFO", "trace",
                                     {});
  EXPECT_EQ(a, b);
  EXPECT_EQ(store.load().runs.size(), 1u);
}

TEST(RunStore, AddRunSerializesRegistry) {
  RunStore store(fresh_dir("registry"));
  obs::MetricsRegistry metrics;
  metrics.counter("sim.tasks.completed").inc(3);
  metrics.set_fingerprint("seed", "7");
  std::string id = store.add_run(metrics, "MIBS8-RT", "live");
  auto rec = store.find(id);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->fingerprint.at("seed"), "7");
  std::ostringstream expect;
  metrics.write_json(expect);
  EXPECT_EQ(store.read_metrics(*rec), expect.str());
}

TEST(RunStore, FindResolvesUniquePrefix) {
  RunStore store(fresh_dir("find"));
  std::string a = store.add_run_json(metrics_doc(10, "FIFO"), "FIFO", "live",
                                     {});
  std::string b = store.add_run_json(metrics_doc(11, "MIX"), "MIX", "trace",
                                     {});
  ASSERT_NE(a, b);

  EXPECT_EQ(store.find(a)->id, a);
  EXPECT_EQ(store.find(a.substr(0, 6))->id, a);
  EXPECT_FALSE(store.find("zzzzzz").has_value());
  EXPECT_THROW(store.find(""), std::invalid_argument);
}

TEST(RunStore, FindRejectsAmbiguousPrefix) {
  RunStore store(fresh_dir("ambiguous"));
  // 17 distinct hex ids must share a leading nibble somewhere
  // (pigeonhole over 16 first characters).
  std::map<char, std::string> by_first;
  std::string ambiguous;
  for (int i = 0; i < 17 && ambiguous.empty(); ++i) {
    std::string id =
        store.add_run_json(metrics_doc(100 + i, "FIFO"), "FIFO", "live", {});
    if (!by_first.emplace(id[0], id).second) ambiguous = std::string(1, id[0]);
  }
  ASSERT_FALSE(ambiguous.empty());
  EXPECT_THROW(store.find(ambiguous), std::invalid_argument);
}

TEST(RunStore, LoadSkipsCrashTruncatedTailLine) {
  fs::path dir = fresh_dir("crash");
  RunStore store(dir);
  store.add_run_json(metrics_doc(10, "FIFO"), "FIFO", "live", {});
  store.add_run_json(metrics_doc(11, "MIX"), "MIX", "trace", {});

  // Simulate a crash mid-append: a record cut off halfway through.
  {
    std::ofstream index(dir / "index.jsonl", std::ios::app);
    index << "{\"id\": \"deadbeef\", \"scheduler\": \"MI";
  }

  RunStore::LoadResult loaded = store.load();
  EXPECT_EQ(loaded.runs.size(), 2u);
  EXPECT_EQ(loaded.skipped_lines, 1u);
  ASSERT_EQ(loaded.warnings.size(), 1u);
  EXPECT_NE(loaded.warnings[0].find("skipped"), std::string::npos);

  // The store keeps working after the corruption.
  std::string c = store.add_run_json(metrics_doc(12, "MIOS"), "MIOS", "live",
                                     {});
  EXPECT_EQ(store.find(c)->scheduler, "MIOS");
}

TEST(RunStore, LoadOfEmptyDirectoryIsEmpty) {
  RunStore store(fresh_dir("empty"));
  RunStore::LoadResult loaded = store.load();
  EXPECT_TRUE(loaded.runs.empty());
  EXPECT_EQ(loaded.skipped_lines, 0u);
}

TEST(Report, SummarizeReadsEverySection) {
  obs::JsonValue doc = obs::parse_json(metrics_doc(10, "FIFO"));
  MetricsSummary s = summarize_metrics(doc);
  EXPECT_EQ(s.fingerprint.at("scheduler"), "FIFO");
  EXPECT_DOUBLE_EQ(s.counters.at("sim.tasks.completed"), 10.0);
  EXPECT_DOUBLE_EQ(s.gauges.at("sim.util.slot_busy_fraction"), 0.5);
  EXPECT_DOUBLE_EQ(s.histograms.at("sim.task.wait_s").mean(), 2.5);
}

TEST(Report, SummarizeRejectsShapelessDocument) {
  obs::JsonValue doc = obs::parse_json("{\"counters\": {}}");
  EXPECT_THROW(summarize_metrics(doc), std::invalid_argument);
}

TEST(Report, DiffProducesExpectedSectionsAndDeltas) {
  MetricsSummary a = summarize_metrics(obs::parse_json(metrics_doc(10,
                                                                   "FIFO")));
  MetricsSummary b = summarize_metrics(obs::parse_json(metrics_doc(14,
                                                                   "MIX")));
  RunReport report = diff_runs(a, b, "run-a", "run-b");

  ASSERT_EQ(report.sections.size(), 4u);
  EXPECT_EQ(report.sections[0].title, "counters");
  ASSERT_EQ(report.sections[0].rows.size(), 1u);
  EXPECT_DOUBLE_EQ(report.sections[0].rows[0].delta(), 4.0);

  // Histogram sections: wait under "task latency", rel_error under
  // "model accuracy".
  bool saw_wait = false;
  for (const ReportRow& row : report.sections[2].rows) {
    if (row.name == "sim.task.wait_s mean") saw_wait = true;
  }
  EXPECT_TRUE(saw_wait);
  ASSERT_EQ(report.sections[3].rows.size(), 1u);
  EXPECT_EQ(report.sections[3].rows[0].name,
            "model.nlm.runtime.rel_error_abs");
  EXPECT_DOUBLE_EQ(report.sections[3].rows[0].a, 0.15);
}

TEST(Report, TextOutputNamesDifferingFingerprintKeys) {
  MetricsSummary a = summarize_metrics(obs::parse_json(metrics_doc(10,
                                                                   "FIFO")));
  MetricsSummary b = summarize_metrics(obs::parse_json(metrics_doc(14,
                                                                   "MIX")));
  std::ostringstream os;
  write_report_text(os, diff_runs(a, b, "run-a", "run-b"));
  EXPECT_NE(os.str().find("scheduler: FIFO -> MIX"), std::string::npos);
  EXPECT_NE(os.str().find("counters:"), std::string::npos);
  // seed matches on both sides, so it must not be listed as a diff.
  EXPECT_EQ(os.str().find("seed:"), std::string::npos);
}

TEST(Report, JsonOutputParsesAndMirrorsSections) {
  MetricsSummary a = summarize_metrics(obs::parse_json(metrics_doc(10,
                                                                   "FIFO")));
  MetricsSummary b = summarize_metrics(obs::parse_json(metrics_doc(14,
                                                                   "MIX")));
  std::ostringstream os;
  write_report_json(os, diff_runs(a, b, "run-a", "run-b"));

  obs::JsonValue doc = obs::parse_json(os.str());
  const obs::JsonValue* sections = doc.find("sections");
  ASSERT_NE(sections, nullptr);
  ASSERT_TRUE(sections->is_array());
  EXPECT_EQ(sections->as_array().size(), 4u);
  const obs::JsonValue* a_label = doc.find("a")->find("label");
  ASSERT_NE(a_label, nullptr);
  EXPECT_EQ(a_label->as_string(), "run-a");
}

std::string series_doc(double completed_w0, double completed_w1) {
  std::ostringstream os;
  os << "{\"schema\": \"tracon.metrics_series\", \"version\": 1, "
        "\"interval_s\": 600}\n"
     << "{\"window\": 0, \"t_start\": 0, \"t_end\": 600, \"counters\": "
        "{\"sim.tasks.completed\": "
     << completed_w0
     << "}, \"gauges\": {\"sim.queue.length\": 2}, \"accuracy\": {}}\n"
     << "{\"window\": 1, \"t_start\": 600, \"t_end\": 1200, \"counters\": "
        "{\"sim.tasks.completed\": "
     << completed_w1
     << "}, \"gauges\": {\"sim.queue.length\": 5}, \"accuracy\": {}}\n";
  return os.str();
}

TEST(RunStoreSeries, StoredSeriesRoundTrips) {
  RunStore store(fresh_dir("series"));
  std::string id = store.add_run_json(metrics_doc(10, "FIFO"), "FIFO", "live",
                                      {}, series_doc(10, 20));
  RunStore::LoadResult loaded = store.load();
  ASSERT_EQ(loaded.runs.size(), 1u);
  ASSERT_TRUE(loaded.runs[0].has_series());
  EXPECT_EQ(store.read_series(loaded.runs[0]), series_doc(10, 20));
  EXPECT_EQ(store.find(id)->series_rel, loaded.runs[0].series_rel);
}

TEST(RunStoreSeries, RunsWithoutSeriesHaveNone) {
  RunStore store(fresh_dir("noseries"));
  store.add_run_json(metrics_doc(10, "FIFO"), "FIFO", "live", {});
  RunStore::LoadResult loaded = store.load();
  ASSERT_EQ(loaded.runs.size(), 1u);
  EXPECT_FALSE(loaded.runs[0].has_series());
  EXPECT_THROW(store.read_series(loaded.runs[0]), std::invalid_argument);
}

TEST(SeriesDiff, PerWindowDivergenceOverAlignedWindows) {
  obs::MetricsSeries a = obs::parse_metrics_series(series_doc(10, 20));
  obs::MetricsSeries b = obs::parse_metrics_series(series_doc(10, 26));
  RunReport report;
  diff_series(a, b, &report);
  EXPECT_EQ(report.series_windows, 2u);
  ASSERT_EQ(report.series.size(), 2u);  // one counter + one gauge

  // Rows come out sorted by metric name.
  const SeriesRow& queue = report.series[0];
  EXPECT_EQ(queue.name, "sim.queue.length");
  EXPECT_DOUBLE_EQ(queue.max_div, 0.0);

  const SeriesRow& completed = report.series[1];
  EXPECT_EQ(completed.name, "sim.tasks.completed");
  // |10-10| = 0 in window 0, |26-20| = 6 in window 1.
  EXPECT_DOUBLE_EQ(completed.mean_div, 3.0);
  EXPECT_DOUBLE_EQ(completed.max_div, 6.0);
  EXPECT_DOUBLE_EQ(completed.max_div_t, 1200.0);
}

TEST(SeriesDiff, TruncatesToShorterRunAndRendersInBothFormats) {
  obs::MetricsSeries a = obs::parse_metrics_series(series_doc(10, 20));
  obs::MetricsSeries b = a;
  b.windows.resize(1);
  b.windows[0].counters["sim.tasks.completed"] = 17.0;
  RunReport report = diff_runs(
      summarize_metrics(obs::parse_json(metrics_doc(10, "FIFO"))),
      summarize_metrics(obs::parse_json(metrics_doc(14, "MIX"))), "run-a",
      "run-b");
  diff_series(a, b, &report);
  EXPECT_EQ(report.series_windows, 1u);

  std::ostringstream text;
  write_report_text(text, report);
  EXPECT_NE(text.str().find("series (per-window divergence over 1 aligned"),
            std::string::npos);
  EXPECT_NE(text.str().find("sim.tasks.completed"), std::string::npos);

  std::ostringstream json;
  write_report_json(json, report);
  obs::JsonValue doc = obs::parse_json(json.str());
  const obs::JsonValue* series = doc.find("series");
  ASSERT_NE(series, nullptr);
  EXPECT_DOUBLE_EQ(series->find("windows")->as_number(), 1.0);
  EXPECT_EQ(series->find("rows")->as_array().size(), 2u);
}

}  // namespace
}  // namespace tracon::runstore
