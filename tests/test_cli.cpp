#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace tracon {
namespace {

TEST(ArgParser, FlagForms) {
  // A flag followed by a non-flag token consumes it as a value, so
  // positionals must precede value-less flags.
  ArgParser args({"pos1", "pos2", "--alpha", "3", "--beta=xyz", "--gamma"});
  EXPECT_TRUE(args.has("alpha"));
  EXPECT_EQ(args.get("alpha"), "3");
  EXPECT_EQ(args.get("beta"), "xyz");
  EXPECT_TRUE(args.has("gamma"));
  EXPECT_EQ(args.get("gamma"), "");
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(ArgParser, FlagFollowedByFlagIsBoolean) {
  ArgParser args({"--a", "--b", "7"});
  EXPECT_EQ(args.get("a"), "");
  EXPECT_EQ(args.get("b"), "7");
}

TEST(ArgParser, Fallbacks) {
  ArgParser args({"--x", "1.5"});
  EXPECT_EQ(args.get("missing", "def"), "def");
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(args.get_int("missing", 9), 9);
}

TEST(ArgParser, NumericValidation) {
  ArgParser args({"--n", "abc", "--m", "3x"});
  EXPECT_THROW(args.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double("m", 0.0), std::invalid_argument);
}

TEST(ArgParser, ArgcArgvConstructor) {
  const char* argv[] = {"prog", "cmd", "--k", "5"};
  ArgParser args(4, argv);
  EXPECT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "cmd");
  EXPECT_EQ(args.get_int("k", 0), 5);
}

TEST(ArgParser, UnknownFlags) {
  ArgParser args({"--good", "1", "--oops", "2"});
  auto unknown = args.unknown_flags({"good"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "oops");
  EXPECT_TRUE(args.unknown_flags({"good", "oops"}).empty());
}

TEST(ArgParser, BareDashesRejected) {
  EXPECT_THROW(ArgParser({"--"}), std::invalid_argument);
}

}  // namespace
}  // namespace tracon
