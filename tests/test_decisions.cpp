// Decision provenance (DESIGN.md §6g): the tracon.decision_log stream
// round-trips byte-exactly, recording is deterministic per seed and
// byte-identical across worker threads, the attribution engine joins
// decisions to outcomes correctly, and the whole stream is invisible
// (no metric, trace, or series byte changes) when disabled.
#include "obs/decision_log.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>

#include "obs/attribution.hpp"
#include "obs/telemetry.hpp"
#include "sched/mibs.hpp"
#include "sched/mios.hpp"
#include "sim/dynamic_scenario.hpp"
#include "sim/shard_scenario.hpp"
#include "workload/benchmarks.hpp"

namespace tracon {
namespace {

using obs::DecisionCandidate;
using obs::DecisionDoc;
using obs::DecisionEvent;
using obs::DecisionLog;

const sim::PerfTable& table() {
  static sim::PerfTable t = [] {
    model::Profiler prof(
        virt::HostSimulator(virt::HostConfig::paper_testbed()), 42);
    return sim::PerfTable::build(prof, workload::paper_benchmarks());
  }();
  return t;
}

const sched::TablePredictor& oracle() {
  static sched::TablePredictor p = table().oracle_predictor();
  return p;
}

DecisionEvent make_decision(std::uint64_t task, double t, std::size_t app,
                            double predicted_runtime) {
  DecisionEvent d;
  d.task = task;
  d.time_s = t;
  d.app = app;
  d.scheduler = "MIBS_8";
  d.objective = "runtime";
  d.families = {"nlm"};
  d.weights = {1.0};
  DecisionCandidate empty_slot;
  empty_slot.score = predicted_runtime;
  empty_slot.by_family = {predicted_runtime};
  DecisionCandidate busy;
  busy.neighbour = 2;
  busy.score = predicted_runtime * 1.25;
  busy.by_family = {predicted_runtime * 1.25};
  d.candidates = {empty_slot, busy};
  d.chosen = 0;
  d.margin = predicted_runtime * 0.25;
  d.predicted_runtime_s = predicted_runtime;
  d.predicted_iops = 40.0;
  return d;
}

DecisionEvent make_outcome(std::uint64_t task, double t, std::size_t app,
                           std::optional<std::size_t> neighbour,
                           double runtime, double solo) {
  DecisionEvent o;
  o.kind = DecisionEvent::Kind::kOutcome;
  o.task = task;
  o.time_s = t;
  o.app = app;
  o.neighbour = neighbour;
  o.runtime_s = runtime;
  o.iops = 39.5;
  o.solo_runtime_s = solo;
  return o;
}

TEST(DecisionLog, GoldenBytes) {
  DecisionLog log;
  log.set_enabled(true);
  log.set_fingerprint("seed", "7");
  DecisionEvent d = make_decision(3, 384.25, 1, 812.5);
  log.record_decision(d);
  log.bind_machine(3, 17);
  DecisionEvent o = make_outcome(3, 1200.5, 1, std::nullopt, 820.0, 800.0);
  o.machine = 17;
  log.record_outcome(o);

  const std::string expected =
      "{\"schema\": \"tracon.decision_log\", \"version\": 2, "
      "\"fingerprint\": {\"seed\": \"7\"}}\n"
      "{\"kind\": \"decision\", \"task\": 3, \"t\": 384.25, \"app\": 1, "
      "\"scheduler\": \"MIBS_8\", \"objective\": \"runtime\", "
      "\"families\": [\"nlm\"], \"weights\": [1], "
      "\"candidates\": [{\"neighbour\": \"empty\", \"score\": 812.5, "
      "\"by_family\": [812.5]}, {\"neighbour\": 2, \"score\": 1015.625, "
      "\"by_family\": [1015.625]}], \"chosen\": 0, \"margin\": 203.125, "
      "\"predicted_runtime_s\": 812.5, \"predicted_iops\": 40, "
      "\"machine\": 17}\n"
      "{\"kind\": \"outcome\", \"task\": 3, \"t\": 1200.5, \"app\": 1, "
      "\"neighbour\": \"empty\", \"runtime_s\": 820, \"iops\": 39.5, "
      "\"solo_runtime_s\": 800, \"machine\": 17}\n";
  EXPECT_EQ(log.str(), expected);
}

TEST(DecisionLog, RoundTripsByteExactly) {
  DecisionLog log;
  log.set_enabled(true);
  log.set_fingerprint("seed", "7");
  log.set_fingerprint("scheduler", "MIBS_8");
  log.record_decision(make_decision(1, 10.0, 0, 100.0));
  log.record_decision(make_decision(2, 12.5, 3, 250.0));
  log.bind_machine(2, 5);
  log.record_outcome(make_outcome(1, 110.0, 0, 2, 130.0, 100.0));

  const std::string bytes = log.str();
  DecisionDoc doc = obs::parse_decision_log(bytes);
  EXPECT_EQ(doc.version, 2);
  EXPECT_EQ(doc.fingerprint.at("seed"), "7");
  ASSERT_EQ(doc.events.size(), 3u);
  EXPECT_EQ(doc.events[0].kind, DecisionEvent::Kind::kDecision);
  EXPECT_EQ(doc.events[1].machine, 5u);
  EXPECT_EQ(doc.events[2].kind, DecisionEvent::Kind::kOutcome);
  ASSERT_EQ(doc.events[0].candidates.size(), 2u);
  EXPECT_FALSE(doc.events[0].candidates[0].neighbour.has_value());
  EXPECT_EQ(doc.events[0].candidates[1].neighbour, 2u);
  // The re-emitter is byte-compatible with the recorder.
  EXPECT_EQ(obs::decision_log_str(doc), bytes);
}

TEST(DecisionLog, ParserRejectsMalformedDocuments) {
  // No header line.
  EXPECT_THROW(obs::parse_decision_log(std::string("")),
               std::invalid_argument);
  const std::string header =
      "{\"schema\": \"tracon.decision_log\", \"version\": 1, "
      "\"fingerprint\": {}}\n";
  // Unknown record kind.
  EXPECT_THROW(obs::parse_decision_log(
                   header + "{\"kind\": \"mystery\", \"task\": 1, \"t\": 0, "
                            "\"app\": 0}\n"),
               std::invalid_argument);
  // Chosen index out of candidate range.
  EXPECT_THROW(
      obs::parse_decision_log(
          header +
          "{\"kind\": \"decision\", \"task\": 1, \"t\": 0, \"app\": 0, "
          "\"scheduler\": \"s\", \"objective\": \"runtime\", \"families\": "
          "[\"m\"], \"weights\": [1], \"candidates\": [{\"neighbour\": "
          "\"empty\", \"score\": 1, \"by_family\": [1]}], \"chosen\": 3, "
          "\"margin\": 0, \"predicted_runtime_s\": 1, \"predicted_iops\": "
          "1}\n"),
      std::invalid_argument);
  // Foreign schema.
  EXPECT_THROW(obs::parse_decision_log(std::string(
                   "{\"schema\": \"tracon.metrics_series\", \"version\": 1, "
                   "\"fingerprint\": {}}\n")),
               std::invalid_argument);
}

TEST(DecisionLog, DisabledGateDropsRecordsButNotAppends) {
  DecisionLog log;
  ASSERT_FALSE(log.enabled());
  log.record_decision(make_decision(1, 0.0, 0, 10.0));
  log.record_outcome(make_outcome(1, 5.0, 0, std::nullopt, 12.0, 10.0));
  log.bind_machine(1, 3);
  EXPECT_EQ(log.size(), 0u);
  // The merge path bypasses the gate by design.
  log.append(make_outcome(1, 5.0, 0, std::nullopt, 12.0, 10.0));
  EXPECT_EQ(log.size(), 1u);
}

TEST(DecisionLog, BindMachineIgnoresUnknownTask) {
  DecisionLog log;
  log.set_enabled(true);
  log.record_decision(make_decision(1, 0.0, 0, 10.0));
  log.bind_machine(99, 3);  // FIFO-style placement with no decision
  EXPECT_EQ(log.events()[0].machine, DecisionEvent::kNoMachine);
}

// ---- live recording through the simulator ------------------------------

struct SingleRun {
  std::string decisions;
  std::string metrics;
};

SingleRun run_single(std::uint64_t seed, bool decisions) {
  sim::DynamicConfig cfg;
  cfg.machines = 12;
  cfg.lambda_per_min = 30.0;
  cfg.duration_s = 3600.0;
  cfg.seed = seed;
  obs::Telemetry tel;
  tel.decisions.set_enabled(decisions);
  cfg.telemetry = &tel;
  sched::MibsScheduler sched(oracle(), sched::Objective::kRuntime, 8, 60.0);
  sched.set_telemetry(&tel);
  sim::run_dynamic(table(), sched, cfg);
  SingleRun out;
  out.decisions = tel.decisions.str();
  std::ostringstream metrics;
  tel.metrics.write_json(metrics);
  out.metrics = metrics.str();
  return out;
}

TEST(DecisionRecording, StructurallySoundAndSeedDeterministic) {
  SingleRun a = run_single(7, true);
  DecisionDoc doc = obs::parse_decision_log(a.decisions);
  ASSERT_FALSE(doc.events.empty());
  double prev_t = 0.0;
  std::size_t decisions = 0, outcomes = 0, bound = 0;
  for (const DecisionEvent& e : doc.events) {
    EXPECT_GE(e.time_s, prev_t);
    prev_t = e.time_s;
    if (e.kind == DecisionEvent::Kind::kDecision) {
      ++decisions;
      EXPECT_FALSE(e.candidates.empty());
      EXPECT_LT(e.chosen, e.candidates.size());
      EXPECT_EQ(e.families.size(), 1u);
      EXPECT_EQ(e.weights.size(), 1u);
      if (e.machine != DecisionEvent::kNoMachine) ++bound;
      // The chosen candidate's score is the recorded prediction.
      EXPECT_EQ(e.candidates[e.chosen].score, e.predicted_runtime_s);
    } else {
      ++outcomes;
      EXPECT_GT(e.solo_runtime_s, 0.0);
    }
  }
  EXPECT_GT(decisions, 0u);
  EXPECT_GT(outcomes, 0u);
  // Every placed decision got its machine stamped by the simulator.
  EXPECT_EQ(bound, decisions);

  // Same seed, same bytes; different seed, different stream.
  EXPECT_EQ(run_single(7, true).decisions, a.decisions);
  EXPECT_NE(run_single(8, true).decisions, a.decisions);
}

TEST(DecisionRecording, DisabledLogLeavesMetricsUntouched) {
  SingleRun on = run_single(7, true);
  SingleRun off = run_single(7, false);
  EXPECT_TRUE(off.decisions.find("\"kind\"") == std::string::npos);
  // Recording decisions adds no counters/gauges/histograms: the metrics
  // export is byte-identical whether the log is on or off.
  EXPECT_EQ(on.metrics, off.metrics);
}

// ---- sharded execution -------------------------------------------------

struct ShardedRun {
  std::string decisions;
  std::string metrics;
};

ShardedRun run_sharded(std::uint64_t seed, std::size_t threads,
                       bool decisions) {
  sim::ShardedConfig cfg;
  cfg.machines = 26;  // uneven split: 4 shards of 7,7,6,6
  cfg.lambda_per_min = 40.0;
  cfg.duration_s = 3600.0;
  cfg.seed = seed;
  cfg.shards = 4;
  cfg.threads = threads;
  obs::Telemetry tel;
  tel.decisions.set_enabled(decisions);
  cfg.telemetry = &tel;
  run_dynamic_sharded(
      table(),
      [](std::size_t) -> std::unique_ptr<sched::Scheduler> {
        return std::make_unique<sched::MibsScheduler>(
            oracle(), sched::Objective::kRuntime, 8, 60.0);
      },
      cfg);
  ShardedRun out;
  out.decisions = tel.decisions.str();
  std::ostringstream metrics;
  tel.metrics.write_json(metrics);
  out.metrics = metrics.str();
  return out;
}

TEST(DecisionSharding, FourThreadsByteIdenticalToOne) {
  for (std::uint64_t seed : {7u, 23u}) {
    ShardedRun a = run_sharded(seed, 1, true);
    ShardedRun b = run_sharded(seed, 4, true);
    EXPECT_EQ(a.decisions, b.decisions) << "seed " << seed;
    EXPECT_FALSE(a.decisions.empty());
    DecisionDoc doc = obs::parse_decision_log(a.decisions);
    EXPECT_FALSE(doc.events.empty());
    // Merged events are stable-sorted on virtual time and carry
    // globally re-indexed machine ids within the 26-machine cluster.
    double prev_t = 0.0;
    for (const DecisionEvent& e : doc.events) {
      EXPECT_GE(e.time_s, prev_t);
      prev_t = e.time_s;
      if (e.machine != DecisionEvent::kNoMachine) {
        EXPECT_LT(e.machine, 26u);
      }
    }
  }
}

TEST(DecisionSharding, DisabledLogLeavesShardedMetricsUntouched) {
  ShardedRun on = run_sharded(7, 4, true);
  ShardedRun off = run_sharded(7, 4, false);
  EXPECT_EQ(on.metrics, off.metrics);
}

// ---- attribution -------------------------------------------------------

TEST(Attribution, JoinsErrorsAndRanksMispredicts) {
  DecisionDoc doc;
  doc.version = 1;
  // task 1: predicted 100, realized 150 next to app 2 — the worst
  // mispredict, rel error (100-150)/150 = -1/3, slowdown 1.5.
  doc.events.push_back(make_decision(1, 10.0, 0, 100.0));
  doc.events.push_back(make_outcome(1, 200.0, 0, 2, 150.0, 100.0));
  // task 2: predicted 100, realized 105 on an empty machine.
  doc.events.push_back(make_decision(2, 20.0, 0, 100.0));
  doc.events.push_back(make_outcome(2, 210.0, 0, std::nullopt, 105.0, 100.0));
  // task 3: decided but never completed.
  doc.events.push_back(make_decision(3, 30.0, 1, 80.0));
  // task 9: orphan outcome (no decision) is counted but not joined.
  doc.events.push_back(make_outcome(9, 250.0, 1, std::nullopt, 90.0, 90.0));

  obs::AttributionReport r = obs::attribute(doc);
  EXPECT_EQ(r.decisions, 3u);
  EXPECT_EQ(r.outcomes, 3u);
  EXPECT_EQ(r.joined, 2u);
  EXPECT_DOUBLE_EQ(r.mean_candidates, 2.0);
  ASSERT_EQ(r.rows.size(), 2u);
  ASSERT_EQ(r.mispredict_order.size(), 2u);
  // Worst |runtime rel error| first: task 1.
  EXPECT_EQ(r.rows[r.mispredict_order[0]].task, 1u);
  EXPECT_NEAR(r.rows[r.mispredict_order[0]].runtime_error, -1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.rows[r.mispredict_order[0]].realized_slowdown, 1.5);

  // Heatmap cells key on (app, realized co-runner).
  ASSERT_EQ(r.pairs.size(), 2u);
  const obs::PairCell& hot = r.pairs.at({0, std::optional<std::size_t>{2}});
  EXPECT_EQ(hot.count, 1u);
  EXPECT_DOUBLE_EQ(hot.mean_slowdown(), 1.5);
  const obs::PairCell& idle = r.pairs.at({0, std::optional<std::size_t>{}});
  EXPECT_DOUBLE_EQ(idle.mean_slowdown(), 1.05);
}

TEST(Attribution, EmptyDocumentYieldsEmptyReport) {
  DecisionDoc doc;
  doc.version = 1;
  obs::AttributionReport r = obs::attribute(doc);
  EXPECT_EQ(r.decisions, 0u);
  EXPECT_EQ(r.outcomes, 0u);
  EXPECT_EQ(r.joined, 0u);
  EXPECT_EQ(r.mean_candidates, 0.0);
  EXPECT_TRUE(r.rows.empty());
  EXPECT_TRUE(r.mispredict_order.empty());
  EXPECT_TRUE(r.pairs.empty());
}

TEST(Attribution, LiveRunJoinsEveryOutcome) {
  SingleRun run = run_single(7, true);
  obs::AttributionReport r =
      obs::attribute(obs::parse_decision_log(run.decisions));
  EXPECT_GT(r.decisions, 0u);
  EXPECT_GT(r.joined, 0u);
  // MIBS records a decision for every placement, so every outcome in
  // the log joins back to one.
  EXPECT_EQ(r.joined, r.outcomes);
  EXPECT_GT(r.mean_candidates, 1.0);
  for (std::size_t idx : r.mispredict_order) {
    EXPECT_LT(idx, r.rows.size());
    EXPECT_GT(r.rows[idx].runtime_s, 0.0);
  }
}

}  // namespace
}  // namespace tracon
