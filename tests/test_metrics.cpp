// Unit tests for the obs metrics registry: counter/gauge/histogram
// semantics, name validation, bucket edge behaviour, deterministic
// export, and a JSON parse-back round trip through the obs JSON reader.
#include "obs/metrics.hpp"

#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "obs/accuracy.hpp"
#include "obs/json.hpp"

namespace {

using tracon::obs::AccuracyTracker;
using tracon::obs::Histogram;
using tracon::obs::JsonValue;
using tracon::obs::MetricsRegistry;
using tracon::obs::metric_path_component;
using tracon::obs::parse_json;
using tracon::obs::valid_metric_name;

TEST(MetricName, ValidatesDottedSnakeCase) {
  EXPECT_TRUE(valid_metric_name("sched.mios.decisions"));
  EXPECT_TRUE(valid_metric_name("a"));
  EXPECT_TRUE(valid_metric_name("a1.b_2.c"));
  EXPECT_FALSE(valid_metric_name(""));
  EXPECT_FALSE(valid_metric_name("Sched.decisions"));
  EXPECT_FALSE(valid_metric_name("sched..decisions"));
  EXPECT_FALSE(valid_metric_name(".sched"));
  EXPECT_FALSE(valid_metric_name("sched."));
  EXPECT_FALSE(valid_metric_name("9sched"));
  EXPECT_FALSE(valid_metric_name("sched decisions"));
}

TEST(MetricName, PathComponentSanitizesForeignIdentifiers) {
  EXPECT_EQ(metric_path_component("NLM-noDom0"), "nlm_nodom0");
  EXPECT_EQ(metric_path_component("WMM"), "wmm");
  EXPECT_EQ(metric_path_component("already_fine"), "already_fine");
}

TEST(Counter, AccumulatesAndDefaultsToOne) {
  MetricsRegistry reg;
  reg.counter("test.hits").inc();
  reg.counter("test.hits").inc(41);
  EXPECT_EQ(reg.counter("test.hits").value(), 42u);
}

TEST(Gauge, LastValueWinsAndAddAccumulates) {
  MetricsRegistry reg;
  reg.gauge("test.level").set(3.0);
  reg.gauge("test.level").set(1.5);
  reg.gauge("test.level").add(0.5);
  EXPECT_DOUBLE_EQ(reg.gauge("test.level").value(), 2.0);
}

TEST(HistogramTest, BucketEdgesAreUpperInclusive) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(1.0);   // lands in le=1 (inclusive upper bound)
  h.observe(1.001); // lands in le=2
  h.observe(5.0);   // lands in le=5
  h.observe(7.0);   // overflow
  ASSERT_EQ(h.num_buckets(), 4u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 14.001);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 7.0);
}

TEST(HistogramTest, MinMaxZeroBeforeFirstObservation) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(HistogramTest, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(Registry, RejectsInvalidNames) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter("Bad Name"), std::invalid_argument);
  EXPECT_THROW(reg.gauge("bad..name"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("UPPER", {1.0}), std::invalid_argument);
}

TEST(Registry, HandlesAreStableAcrossLaterRegistrations) {
  MetricsRegistry reg;
  auto& a = reg.counter("a.first");
  a.inc();
  for (int i = 0; i < 100; ++i)
    reg.counter("z.filler_" + std::to_string(i));
  a.inc();
  EXPECT_EQ(reg.counter("a.first").value(), 2u);
}

TEST(Registry, JsonRoundTripPreservesValues) {
  MetricsRegistry reg;
  reg.counter("sched.decisions").inc(7);
  reg.gauge("sim.util.host_busy_fraction").set(0.625);
  auto& h = reg.histogram("model.nlm.runtime.rel_error_abs", {0.1, 0.5});
  h.observe(0.05);
  h.observe(0.3);
  h.observe(2.0);

  std::ostringstream os;
  reg.write_json(os);
  JsonValue doc = parse_json(os.str());

  const JsonValue* c = doc.find("counters");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->find("sched.decisions")->as_number(), 7.0);

  const JsonValue* g = doc.find("gauges");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->find("sim.util.host_busy_fraction")->as_number(), 0.625);

  const JsonValue* hs = doc.find("histograms");
  ASSERT_NE(hs, nullptr);
  const JsonValue* hist = hs->find("model.nlm.runtime.rel_error_abs");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->find("count")->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(hist->find("sum")->as_number(), 2.35);
  const auto& buckets = hist->find("buckets")->as_array();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets[0]->find("le")->as_number(), 0.1);
  EXPECT_DOUBLE_EQ(buckets[0]->find("count")->as_number(), 1.0);
  EXPECT_EQ(buckets[2]->find("le")->as_string(), "inf");
  EXPECT_DOUBLE_EQ(buckets[2]->find("count")->as_number(), 1.0);
}

TEST(Registry, FingerprintExportsFirstInJsonAndCsv) {
  MetricsRegistry reg;
  reg.counter("sched.decisions").inc();
  reg.set_fingerprint("seed", "42");
  reg.set_fingerprint("scheduler", "MIBS8-RT");

  std::ostringstream json;
  reg.write_json(json);
  JsonValue doc = parse_json(json.str());
  const JsonValue* fp = doc.find("fingerprint");
  ASSERT_NE(fp, nullptr);
  EXPECT_EQ(fp->find("seed")->as_string(), "42");
  EXPECT_EQ(fp->find("scheduler")->as_string(), "MIBS8-RT");
  // The fingerprint leads the document, so a human sees the run
  // identity before any metric.
  EXPECT_LT(json.str().find("\"fingerprint\""),
            json.str().find("\"counters\""));

  std::ostringstream csv;
  reg.write_csv(csv);
  EXPECT_NE(csv.str().find("fingerprint,seed,value,42"), std::string::npos);
}

TEST(Registry, FingerprintKeyMustBeMetricShaped) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.set_fingerprint("Not A Key", "x"), std::invalid_argument);
  reg.set_fingerprint("run.build", "abc123");  // dotted paths are fine
  EXPECT_EQ(reg.fingerprint().at("run.build"), "abc123");
}

TEST(Registry, EmptyFingerprintStillExportsObject) {
  MetricsRegistry reg;
  reg.counter("a.c").inc();
  std::ostringstream os;
  reg.write_json(os);
  JsonValue doc = parse_json(os.str());
  const JsonValue* fp = doc.find("fingerprint");
  ASSERT_NE(fp, nullptr);
  EXPECT_TRUE(fp->is_object());
}

TEST(Registry, ExportsAreDeterministic) {
  auto build = [] {
    MetricsRegistry reg;
    reg.gauge("z.last").set(1.0 / 3.0);
    reg.counter("a.first").inc(3);
    reg.histogram("m.mid", {1.0, 2.0}).observe(1.7);
    std::ostringstream json, csv;
    reg.write_json(json);
    reg.write_csv(csv);
    return json.str() + "\x01" + csv.str();
  };
  EXPECT_EQ(build(), build());
}

TEST(Registry, CsvHasHeaderAndAllKinds) {
  MetricsRegistry reg;
  reg.counter("a.c").inc();
  reg.gauge("a.g").set(2.0);
  reg.histogram("a.h", {1.0}).observe(0.5);
  std::ostringstream os;
  reg.write_csv(os);
  std::string csv = os.str();
  EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,a.c,"), std::string::npos);
  EXPECT_NE(csv.find("gauge,a.g,"), std::string::npos);
  EXPECT_NE(csv.find("histogram,a.h,"), std::string::npos);
}

TEST(Accuracy, RecordsSignedAndAbsoluteRelativeError) {
  MetricsRegistry reg;
  AccuracyTracker acc(reg, "NLM-noDom0", "runtime");
  acc.record(110.0, 100.0);  // +10% error
  acc.record(80.0, 100.0);   // -20% error

  const auto& hists = reg.histograms();
  auto sit = hists.find("model.nlm_nodom0.runtime.rel_error_signed");
  auto ait = hists.find("model.nlm_nodom0.runtime.rel_error_abs");
  ASSERT_NE(sit, hists.end());
  ASSERT_NE(ait, hists.end());
  EXPECT_EQ(sit->second.count(), 2u);
  EXPECT_NEAR(sit->second.sum(), -0.1, 1e-12);
  EXPECT_NEAR(ait->second.sum(), 0.3, 1e-12);
  EXPECT_EQ(
      reg.counters().at("model.nlm_nodom0.runtime.samples").value(), 2u);
}

TEST(Merge, CountersAndHistogramsSumGaugesLastWriterWins) {
  MetricsRegistry a, b;
  a.counter("c.hits").inc(10);
  b.counter("c.hits").inc(5);
  b.counter("c.only_b").inc(2);
  a.gauge("g.level").set(1.0);
  b.gauge("g.level").set(7.0);
  a.histogram("h.lat", {1.0, 2.0}).observe(0.5);
  b.histogram("h.lat", {1.0, 2.0}).observe(1.5);
  b.histogram("h.only_b", {4.0}).observe(9.0);
  a.set_fingerprint("seed", "1");
  b.set_fingerprint("seed", "2");
  b.set_fingerprint("shard", "b");

  a.merge(b);

  EXPECT_EQ(a.counter("c.hits").value(), 15u);
  EXPECT_EQ(a.counter("c.only_b").value(), 2u);
  EXPECT_DOUBLE_EQ(a.gauge("g.level").value(), 7.0);
  const Histogram& h = a.histogram("h.lat", {1.0, 2.0});
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.sum(), 2.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1.5);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(a.histogram("h.only_b", {4.0}).count(), 1u);
  EXPECT_EQ(a.fingerprint().at("seed"), "2");
  EXPECT_EQ(a.fingerprint().at("shard"), "b");
}

TEST(Merge, EmptySidesAreNoOps) {
  MetricsRegistry a, empty;
  a.counter("c.hits").inc(3);
  a.merge(empty);
  EXPECT_EQ(a.counter("c.hits").value(), 3u);
  MetricsRegistry b;
  b.merge(a);
  EXPECT_EQ(b.counter("c.hits").value(), 3u);
}

TEST(Merge, MismatchedHistogramBoundsThrow) {
  MetricsRegistry a, b;
  a.histogram("h.lat", {1.0}).observe(0.5);
  b.histogram("h.lat", {2.0}).observe(0.5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Json, ParserHandlesEscapesAndRejectsGarbage) {
  JsonValue v = parse_json(R"({"s": "a\"b\n", "arr": [1, -2.5e1, true,
                              null]})");
  EXPECT_EQ(v.find("s")->as_string(), "a\"b\n");
  const auto& arr = v.find("arr")->as_array();
  ASSERT_EQ(arr.size(), 4u);
  EXPECT_DOUBLE_EQ(arr[1]->as_number(), -25.0);
  EXPECT_TRUE(arr[2]->as_bool());
  EXPECT_TRUE(arr[3]->is_null());
  EXPECT_THROW(parse_json("{"), std::invalid_argument);
  EXPECT_THROW(parse_json("{} trailing"), std::invalid_argument);
  EXPECT_THROW(parse_json("nope"), std::invalid_argument);
}

}  // namespace
