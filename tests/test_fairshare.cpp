#include "virt/fairshare.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace tracon::virt {
namespace {

TEST(Waterfill, AllDemandsFitAreGranted) {
  auto alloc = waterfill({1.0, 2.0, 3.0}, 10.0);
  EXPECT_DOUBLE_EQ(alloc[0], 1.0);
  EXPECT_DOUBLE_EQ(alloc[1], 2.0);
  EXPECT_DOUBLE_EQ(alloc[2], 3.0);
}

TEST(Waterfill, EqualSplitWhenAllUnsatisfied) {
  auto alloc = waterfill({5.0, 5.0, 5.0}, 6.0);
  for (double a : alloc) EXPECT_DOUBLE_EQ(a, 2.0);
}

TEST(Waterfill, SmallDemandSatisfiedRestSplit) {
  auto alloc = waterfill({1.0, 10.0, 10.0}, 7.0);
  EXPECT_DOUBLE_EQ(alloc[0], 1.0);
  EXPECT_DOUBLE_EQ(alloc[1], 3.0);
  EXPECT_DOUBLE_EQ(alloc[2], 3.0);
}

TEST(Waterfill, EmptyAndZeroCases) {
  EXPECT_TRUE(waterfill({}, 5.0).empty());
  auto alloc = waterfill({1.0, 2.0}, 0.0);
  EXPECT_DOUBLE_EQ(alloc[0], 0.0);
  EXPECT_DOUBLE_EQ(alloc[1], 0.0);
}

TEST(Waterfill, NegativeInputsThrow) {
  EXPECT_THROW(waterfill({-1.0}, 5.0), std::invalid_argument);
  EXPECT_THROW(waterfill({1.0}, -5.0), std::invalid_argument);
}

// Properties over random demand sets.
class WaterfillProperty : public ::testing::TestWithParam<int> {};

TEST_P(WaterfillProperty, Invariants) {
  // Deterministic pseudo-random demands from the parameter.
  unsigned seed = static_cast<unsigned>(GetParam());
  std::vector<double> demands;
  for (int i = 0; i < 6; ++i) {
    seed = seed * 1664525u + 1013904223u;
    demands.push_back(static_cast<double>(seed % 1000) / 100.0);
  }
  double capacity = 20.0;
  auto alloc = waterfill(demands, capacity);

  double total = std::accumulate(alloc.begin(), alloc.end(), 0.0);
  EXPECT_LE(total, capacity + 1e-9);
  double demand_total = std::accumulate(demands.begin(), demands.end(), 0.0);
  // Work conserving: either everything granted or capacity exhausted.
  if (demand_total <= capacity) {
    EXPECT_NEAR(total, demand_total, 1e-9);
  } else {
    EXPECT_NEAR(total, capacity, 1e-9);
  }
  for (std::size_t i = 0; i < demands.size(); ++i) {
    EXPECT_LE(alloc[i], demands[i] + 1e-12);
    EXPECT_GE(alloc[i], 0.0);
  }
  // Max-min fairness: an unsatisfied consumer's share is >= any other
  // consumer's allocation (no one gets more while someone starves).
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (alloc[i] < demands[i] - 1e-9) {
      for (std::size_t j = 0; j < demands.size(); ++j)
        EXPECT_GE(alloc[i] + 1e-9, std::min(alloc[j], demands[i]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDemands, WaterfillProperty,
                         ::testing::Range(1, 25));

// ---- solve_speeds ----------------------------------------------------

VmDemand cpu_app(double cpu) {
  VmDemand d;
  d.cpu = cpu;
  return d;
}

VmDemand io_app(double cpu, double reads, double writes, double kb,
                double sigma) {
  VmDemand d;
  d.cpu = cpu;
  d.read_iops = reads;
  d.write_iops = writes;
  d.request_kb = kb;
  d.sequentiality = sigma;
  return d;
}

TEST(SolveSpeeds, EmptyHost) {
  HostAllocation a = solve_speeds(HostConfig::paper_testbed(), {});
  EXPECT_TRUE(a.vms.empty());
  EXPECT_EQ(a.dom0_cpu_total, 0.0);
}

TEST(SolveSpeeds, SoloFeasibleAppsRunFullSpeed) {
  HostConfig cfg = HostConfig::paper_testbed();
  auto a = solve_speeds(cfg, {io_app(0.15, 400, 0, 64, 0.95)});
  EXPECT_NEAR(a.vms[0].speed, 1.0, 1e-6);
  EXPECT_NEAR(a.vms[0].iops, 400.0, 1e-6);
}

TEST(SolveSpeeds, TwoCpuHogsShareTheCore) {
  HostConfig cfg = HostConfig::paper_testbed();
  auto a = solve_speeds(cfg, {cpu_app(0.95), cpu_app(0.95)});
  EXPECT_NEAR(a.vms[0].speed, 0.5 / 0.95, 1e-6);
  EXPECT_NEAR(a.vms[1].speed, a.vms[0].speed, 1e-9);
}

TEST(SolveSpeeds, SymmetricDemandsGetSymmetricSpeeds) {
  HostConfig cfg = HostConfig::paper_testbed();
  VmDemand d = io_app(0.3, 200, 100, 64, 0.8);
  auto a = solve_speeds(cfg, {d, d});
  EXPECT_NEAR(a.vms[0].speed, a.vms[1].speed, 1e-9);
}

TEST(SolveSpeeds, SequentialStreamsCollapseEachOther) {
  HostConfig cfg = HostConfig::paper_testbed();
  VmDemand seq = io_app(0.15, 800, 0, 64, 0.95);
  auto solo = solve_speeds(cfg, {seq});
  auto pair = solve_speeds(cfg, {seq, seq});
  // Table 1: SeqRead vs SeqRead is an order-of-magnitude slowdown.
  EXPECT_GT(solo.vms[0].speed / pair.vms[0].speed, 5.0);
}

TEST(SolveSpeeds, CpuHogBarelyHurtsIoApp) {
  HostConfig cfg = HostConfig::paper_testbed();
  VmDemand seq = io_app(0.15, 800, 0, 64, 0.95);
  auto pair = solve_speeds(cfg, {seq, cpu_app(0.95)});
  // Table 1: SeqRead vs CPU-high ~ 1.03x.
  EXPECT_GT(pair.vms[0].speed, 0.9);
}

TEST(SolveSpeeds, Dom0CpuAccounted) {
  HostConfig cfg = HostConfig::paper_testbed();
  VmDemand seq = io_app(0.15, 800, 0, 64, 0.95);
  auto a = solve_speeds(cfg, {seq});
  EXPECT_GT(a.dom0_cpu_total, 0.0);
  EXPECT_NEAR(a.vms[0].dom0_cpu, a.dom0_cpu_total, 1e-12);
  // Writes cost more Dom0 CPU than reads.
  auto writes = solve_speeds(cfg, {io_app(0.15, 0, 400, 64, 0.95)});
  auto reads = solve_speeds(cfg, {io_app(0.15, 400, 0, 64, 0.95)});
  EXPECT_GT(writes.dom0_cpu_total, reads.dom0_cpu_total);
}

TEST(SolveSpeeds, AddingCompetitorNeverHelps) {
  HostConfig cfg = HostConfig::paper_testbed();
  VmDemand base = io_app(0.4, 200, 100, 64, 0.8);
  double solo_speed = solve_speeds(cfg, {base}).vms[0].speed;
  for (const VmDemand& other :
       {cpu_app(0.95), io_app(0.15, 800, 0, 64, 0.95),
        io_app(0.5, 100, 300, 32, 0.4)}) {
    double paired = solve_speeds(cfg, {base, other}).vms[0].speed;
    EXPECT_LE(paired, solo_speed + 1e-6);
  }
}

TEST(SolveSpeeds, SpeedsAreClampedAndFinite) {
  HostConfig cfg = HostConfig::paper_testbed();
  auto a = solve_speeds(cfg, {io_app(0.9, 1000, 800, 256, 0.2),
                              io_app(0.9, 1000, 800, 256, 0.2)});
  for (const auto& vm : a.vms) {
    EXPECT_GE(vm.speed, 0.0);
    EXPECT_LE(vm.speed, 1.0);
    EXPECT_TRUE(std::isfinite(vm.iops));
  }
  EXPECT_LE(a.disk_utilization, 1.0);
}

TEST(SolveSpeeds, InvalidDemandThrows) {
  HostConfig cfg = HostConfig::paper_testbed();
  VmDemand bad;
  bad.cpu = -0.1;
  EXPECT_THROW(solve_speeds(cfg, {bad}), std::invalid_argument);
  VmDemand bad2;
  bad2.sequentiality = 1.5;
  EXPECT_THROW(solve_speeds(cfg, {bad2}), std::invalid_argument);
}

}  // namespace
}  // namespace tracon::virt
