// End-to-end integration tests: the full TRACON pipeline (profile ->
// model -> schedule -> simulate) must exhibit the paper's headline
// qualitative results on a reduced setup.
#include <gtest/gtest.h>

#include "core/tracon.hpp"
#include "model/evaluate.hpp"
#include "sched/fifo.hpp"
#include "sched/mibs.hpp"
#include "sim/dynamic_scenario.hpp"
#include "sim/static_scenario.hpp"
#include "util/rng.hpp"
#include "workload/benchmarks.hpp"
#include "workload/mixes.hpp"

namespace tracon {
namespace {

/// Shared full system (8 apps, 125 synthetic workloads); built once.
core::Tracon& full_system() {
  static core::Tracon sys = [] {
    core::Tracon s;
    s.register_applications(workload::paper_benchmarks());
    s.train(model::ModelKind::kNonlinear);
    return s;
  }();
  return sys;
}

TEST(Integration, NlmBeatsWmmAndLmOnRuntimeError) {
  core::Tracon& sys = full_system();
  double nlm = 0.0, lm = 0.0, wmm = 0.0;
  for (std::size_t a = 0; a < sys.num_apps(); ++a) {
    nlm += model::cross_validate(model::ModelKind::kNonlinear,
                                 sys.training_set(a),
                                 model::Response::kRuntime)
               .mean;
    lm += model::cross_validate(model::ModelKind::kLinear,
                                sys.training_set(a),
                                model::Response::kRuntime)
              .mean;
    wmm += model::cross_validate(model::ModelKind::kWmm,
                                 sys.training_set(a),
                                 model::Response::kRuntime)
               .mean;
  }
  // The paper's Fig 3(a) ordering: NLM < LM, NLM < WMM; NLM ~10%.
  EXPECT_LT(nlm, lm);
  EXPECT_LT(nlm, wmm);
  EXPECT_LT(nlm / 8.0, 0.15);
}

TEST(Integration, NlmPredictedMinNeverExceedsMeasuredAverage) {
  // Fig 5's claim, as an invariant.
  core::Tracon& sys = full_system();
  const sim::PerfTable& t = sys.perf_table();
  const sched::TablePredictor& pred = sys.predictor();
  for (std::size_t a = 0; a < t.num_apps(); ++a) {
    double pmin = 1e300, mavg = 0.0;
    for (std::size_t b = 0; b < t.num_apps(); ++b) {
      pmin = std::min(pmin,
                      pred.predict_runtime(a, std::optional<std::size_t>(b)));
      mavg += t.runtime(a, std::optional<std::size_t>(b));
    }
    mavg /= static_cast<double>(t.num_apps());
    EXPECT_LE(pmin, mavg) << t.app_name(a);
  }
}

TEST(Integration, MibsImprovesStaticBatchOverFifo) {
  core::Tracon& sys = full_system();
  Rng rng(123);
  auto tasks =
      workload::sample_task_indices(workload::MixKind::kUniform, 32, rng);
  double fifo_rt = 0.0, fifo_io = 0.0;
  for (int r = 0; r < 10; ++r) {
    sched::FifoScheduler fifo(700 + static_cast<unsigned>(r));
    auto o = sim::run_static(sys.perf_table(), fifo, tasks, 16);
    fifo_rt += o.total_runtime / 10.0;
    fifo_io += o.total_iops / 10.0;
  }
  sched::PlacementPolicy static_policy;
  static_policy.beneficial_joins_only = false;
  sched::MibsScheduler rt(sys.predictor(), sched::Objective::kRuntime, 32,
                          0.0, static_policy);
  sched::MibsScheduler io(sys.predictor(), sched::Objective::kIops, 32, 0.0,
                          static_policy);
  auto ort = sim::run_static(sys.perf_table(), rt, tasks, 16);
  auto oio = sim::run_static(sys.perf_table(), io, tasks, 16);
  EXPECT_LT(ort.total_runtime, fifo_rt);       // Speedup > 1
  EXPECT_GT(oio.total_iops, fifo_io);          // IOBoost > 1
  EXPECT_EQ(ort.unplaced, 0u);
  EXPECT_EQ(oio.unplaced, 0u);
}

TEST(Integration, InterferenceAwareDynamicThroughputUnderHeavyLoad) {
  core::Tracon& sys = full_system();
  sim::DynamicConfig cfg;
  cfg.machines = 32;
  cfg.lambda_per_min = 60.0;
  cfg.duration_s = 10'800.0;  // 3 h keeps the test fast
  cfg.mix = workload::MixKind::kHeavy;
  auto fifo = sys.make_scheduler(core::SchedulerKind::kFifo,
                                 sched::Objective::kRuntime);
  auto mibs = sys.make_scheduler(core::SchedulerKind::kMibs,
                                 sched::Objective::kRuntime, 8);
  auto base = sim::run_dynamic(sys.perf_table(), *fifo, cfg);
  auto smart = sim::run_dynamic(sys.perf_table(), *mibs, cfg);
  EXPECT_GT(static_cast<double>(smart.completed) /
                static_cast<double>(base.completed),
            1.1);
}

TEST(Integration, OracleSchedulingAtLeastAsGoodAsModelDriven) {
  core::Tracon& sys = full_system();
  sim::DynamicConfig cfg;
  cfg.machines = 16;
  cfg.lambda_per_min = 40.0;
  cfg.duration_s = 10'800.0;
  cfg.mix = workload::MixKind::kHeavy;
  sched::TablePredictor oracle_pred = sys.perf_table().oracle_predictor();
  sched::MibsScheduler oracle(oracle_pred, sched::Objective::kRuntime, 8);
  sched::MibsScheduler modeled(sys.predictor(), sched::Objective::kRuntime,
                               8);
  auto o = sim::run_dynamic(sys.perf_table(), oracle, cfg);
  auto m = sim::run_dynamic(sys.perf_table(), modeled, cfg);
  // With a threshold admission policy under queueing, noisy predictions
  // can accidentally admit marginal joins that happen to pay off, so
  // the oracle need not dominate — but it must stay in the same league.
  EXPECT_GT(static_cast<double>(o.completed),
            0.85 * static_cast<double>(m.completed));
}

}  // namespace
}  // namespace tracon
