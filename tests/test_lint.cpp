// Unit tests for the tracon_lint rule engine: every rule must catch a
// deliberately seeded violation and must stay quiet on conforming
// code, comments, strings, and suppressed lines.
#include "lint/lint_rules.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

using tracon::lint::Finding;
using tracon::lint::lint_content;
using tracon::lint::strip_comments_and_strings;

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

TEST(Strip, RemovesCommentsAndStringsKeepsLines) {
  std::string s = strip_comments_and_strings(
      "int a; // rand()\n\"time(\"; /* clock(\n) */ int b;\n");
  EXPECT_EQ(s.find("rand"), std::string::npos);
  EXPECT_EQ(s.find("time"), std::string::npos);
  EXPECT_EQ(s.find("clock"), std::string::npos);
  EXPECT_NE(s.find("int a;"), std::string::npos);
  EXPECT_NE(s.find("int b;"), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
}

TEST(Determinism, CatchesRandAndClocks) {
  auto findings = lint_content(
      "src/sim/bad.cpp",
      "#include \"sim/bad.hpp\"\n\nvoid f() {\n  int x = rand();\n"
      "  auto t = std::chrono::steady_clock::now();\n"
      "  std::random_device rd;\n}\n");
  std::vector<std::string> rules = rules_of(findings);
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "determinism"), 3);
}

TEST(Determinism, OnlyFiresInSimVirtSched) {
  const std::string body =
      "#include \"util/bad.hpp\"\n\nint f() { return rand(); }\n";
  EXPECT_TRUE(has_rule(lint_content("src/virt/bad.cpp", body), "determinism"));
  EXPECT_TRUE(has_rule(lint_content("src/sched/bad.cpp", body), "determinism"));
  EXPECT_FALSE(has_rule(lint_content("src/util/bad.cpp", body), "determinism"));
}

TEST(Determinism, CoversReplayAndRunstore) {
  const std::string body =
      "#include \"replay/bad.hpp\"\n\nint f() { return rand(); }\n";
  EXPECT_TRUE(
      has_rule(lint_content("src/replay/bad.cpp", body), "determinism"));
  EXPECT_TRUE(
      has_rule(lint_content("src/runstore/bad.cpp", body), "determinism"));
  EXPECT_TRUE(
      has_rule(lint_content("src/migrate/bad.cpp", body), "determinism"));
}

TEST(UnorderedOutput, FiresOnlyInSerializationDirs) {
  const std::string body =
      "#include <unordered_map>\n\n"
      "std::unordered_map<std::string, int> g_index;\n";
  EXPECT_TRUE(has_rule(lint_content("src/replay/bad.cpp", body),
                       "unordered-output"));
  EXPECT_TRUE(has_rule(lint_content("src/runstore/bad.hpp", body),
                       "unordered-output"));
  // Migration plans land in the decision log, which byte-compares
  // across --threads, so src/migrate is serialization scope too.
  EXPECT_TRUE(has_rule(lint_content("src/migrate/bad.cpp", body),
                       "unordered-output"));
  // Hash containers are fine where iteration order never reaches a
  // serialized byte stream.
  EXPECT_FALSE(has_rule(lint_content("src/sim/ok.cpp", body),
                        "unordered-output"));
  EXPECT_FALSE(has_rule(lint_content("src/util/ok.cpp", body),
                        "unordered-output"));
}

TEST(UnorderedOutput, OrderedContainersAndProseAreQuiet) {
  auto findings = lint_content(
      "src/runstore/ok.cpp",
      "#include \"runstore/ok.hpp\"\n\n#include <map>\n\n"
      "// unordered_map would break byte stability here\n"
      "std::map<std::string, int> g_index;\n");
  EXPECT_FALSE(has_rule(findings, "unordered-output"));
}

TEST(Determinism, IgnoresCommentsStringsAndSimilarNames) {
  auto findings = lint_content(
      "src/sim/ok.cpp",
      "#include \"sim/ok.hpp\"\n\n// calls time() hourly\n"
      "const char* kLabel = \"rand()\";\n"
      "double predict_runtime(double solo_runtime_s);\n");
  EXPECT_FALSE(has_rule(findings, "determinism"));
}

TEST(Determinism, RawStringLiteralsNeverFire) {
  // Regression: the old line-stripper resynced at the first inner
  // quote of a raw string, leaving its tail parsed as code. The
  // tokenizer-backed rule must swallow the whole R"(...)" literal —
  // embedded quotes, RNG names, and all.
  auto findings = lint_content(
      "src/sim/doc.cpp",
      "#include \"sim/doc.hpp\"\n\n"
      "const char* kDoc = R\"(say \"rand()\" and clock() out loud)\";\n"
      "const char* kJson = R\"json({\"seed\": \"time(0)\"})json\";\n");
  EXPECT_FALSE(has_rule(findings, "determinism"));
}

TEST(ListRules, CatalogCoversEveryRule) {
  std::vector<std::string> names;
  for (const tracon::lint::RuleDoc& doc : tracon::lint::rule_docs()) {
    names.push_back(doc.name);
    EXPECT_FALSE(doc.summary.empty()) << doc.name;
  }
  const std::vector<std::string> expected = {
      "determinism",   "unordered-output", "float-eq",
      "iostream",      "pragma-once",      "include-order",
      "require-guard", "metric-name",      "raw-thread"};
  EXPECT_EQ(names, expected);
}

TEST(FloatEq, CatchesLiteralComparisonsBothSides) {
  auto findings = lint_content(
      "src/virt/bad.cpp",
      "#include \"virt/bad.hpp\"\n\nbool f(double x) {\n"
      "  if (x == 0.0) return true;\n  return 1.5 != x;\n}\n");
  std::vector<std::string> rules = rules_of(findings);
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "float-eq"), 2);
}

TEST(FloatEq, AllowsIntegerComparisonsAndStatsCode) {
  EXPECT_FALSE(has_rule(
      lint_content("src/virt/ok.cpp",
                   "#include \"virt/ok.hpp\"\n\nbool f(int x) "
                   "{ return x == 0 || x != 10; }\n"),
      "float-eq"));
  EXPECT_FALSE(has_rule(
      lint_content("src/stats/kernel.cpp",
                   "#include \"stats/kernel.hpp\"\n\nbool f(double x) "
                   "{ return x == 0.0; }\n"),
      "float-eq"));
}

TEST(Iostream, CatchesIncludeAndStreamUse) {
  auto findings = lint_content(
      "src/model/bad.cpp",
      "#include \"model/bad.hpp\"\n\n#include <iostream>\n\n"
      "void f() { std::cout << 1; }\n");
  std::vector<std::string> rules = rules_of(findings);
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "iostream"), 2);
}

TEST(Iostream, LoggerItselfIsExempt) {
  EXPECT_FALSE(has_rule(
      lint_content("src/util/log.cpp",
                   "#include \"util/log.hpp\"\n\n#include <iostream>\n"),
      "iostream"));
}

TEST(PragmaOnce, MissingGuardIsFlagged) {
  EXPECT_TRUE(has_rule(
      lint_content("src/sim/bad.hpp", "#include <vector>\nint f();\n"),
      "pragma-once"));
  EXPECT_FALSE(has_rule(
      lint_content("src/sim/ok.hpp",
                   "// A comment first is fine.\n#pragma once\nint f();\n"),
      "pragma-once"));
}

TEST(IncludeOrder, OwnHeaderMustComeFirst) {
  auto findings = lint_content(
      "src/sim/thing.cpp",
      "#include <vector>\n\n#include \"sim/thing.hpp\"\n\nint f();\n");
  EXPECT_TRUE(has_rule(findings, "include-order"));
}

TEST(IncludeOrder, SystemBeforeProjectAndSorted) {
  EXPECT_TRUE(has_rule(
      lint_content("src/sim/a.cpp",
                   "#include \"sim/a.hpp\"\n\n#include \"util/log.hpp\"\n"
                   "#include <vector>\n"),
      "include-order"));
  EXPECT_TRUE(has_rule(
      lint_content("src/sim/b.cpp",
                   "#include \"sim/b.hpp\"\n\n#include <vector>\n"
                   "#include <algorithm>\n"),
      "include-order"));
  EXPECT_FALSE(has_rule(
      lint_content("src/sim/c.cpp",
                   "#include \"sim/c.hpp\"\n\n#include <algorithm>\n"
                   "#include <vector>\n\n#include \"util/error.hpp\"\n"
                   "#include \"util/log.hpp\"\n"),
      "include-order"));
}

TEST(RequireGuard, UnguardedConstructorIsFlagged) {
  auto findings = lint_content(
      "src/sched/widget.cpp",
      "#include \"sched/widget.hpp\"\n\nnamespace tracon {\n"
      "Widget::Widget(int n) : n_(n) {}\n}\n");
  EXPECT_TRUE(has_rule(findings, "require-guard"));
}

TEST(RequireGuard, GuardedDefaultedAndZeroArgPass) {
  const std::string ok =
      "#include \"sched/widget.hpp\"\n\nnamespace tracon {\n"
      "Widget::Widget(int n) : n_(n) {\n"
      "  TRACON_REQUIRE(n > 0, \"n must be positive\");\n}\n"
      "Gadget::Gadget() {}\n"
      "Sprocket::Sprocket(const Sprocket&) = default;\n}\n";
  EXPECT_FALSE(has_rule(lint_content("src/sched/widget.cpp", ok),
                        "require-guard"));
}

TEST(Determinism, ObsIsCoveredButScopeTimerIsExempt) {
  const std::string body =
      "#include \"obs/bad.hpp\"\n\n"
      "double f() { return std::chrono::steady_clock::now()"
      ".time_since_epoch().count(); }\n";
  EXPECT_TRUE(has_rule(lint_content("src/obs/bad.cpp", body), "determinism"));
  EXPECT_FALSE(has_rule(
      lint_content("src/obs/scope_timer.cpp",
                   "#include \"obs/scope_timer.hpp\"\n\n" + body.substr(body.find("double"))),
      "determinism"));
  EXPECT_FALSE(has_rule(lint_content("src/obs/scope_timer.hpp",
                                     "#pragma once\nint now() { return "
                                     "clock(); }\n"),
                        "determinism"));
}

TEST(MetricName, BadLiteralsAreFlaggedAtEveryRegistrationSite) {
  auto findings = lint_content(
      "src/obs/bad_metrics.cpp",
      "#include \"obs/bad_metrics.hpp\"\n\nvoid f(R& m) {\n"
      "  m.counter(\"Sched.Decisions\").inc();\n"
      "  m.gauge(\"sched queue\").set(1.0);\n"
      "  m.histogram(\"sched..placed\", {1.0}).observe(1.0);\n"
      "  TRACON_PROF_SCOPE(\"MixRotate\");\n"
      "  KvLine(\"9bad.event\");\n}\n");
  std::vector<std::string> rules = rules_of(findings);
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "metric-name"), 5);
}

TEST(MetricName, ValidPathsVariablesAndProseAreQuiet) {
  auto findings = lint_content(
      "src/obs/ok_metrics.cpp",
      "#include \"obs/ok_metrics.hpp\"\n\nvoid f(R& m, const std::string& n) "
      "{\n"
      "  m.counter(\"sched.mios.decisions\").inc();\n"
      "  m.counter(n).inc();\n"
      "  m.counter(prefix + \".samples\").inc();\n"
      "  // counter(\"Not Code\") in a comment\n"
      "  log(\"histogram (\\\"Loose Prose\\\")\");\n"
      "  TRACON_PROF_SCOPE(\"stats.nls.gauss_newton\");\n}\n");
  EXPECT_FALSE(has_rule(findings, "metric-name"));
}

TEST(Determinism, SnapshotCodeMustNotReadWallClocks) {
  // The snapshot sampler's whole contract is virtual-clock timestamps;
  // every C time-formatting entry point counts as a violation.
  auto findings = lint_content(
      "src/obs/snapshot_bad.cpp",
      "#include \"obs/snapshot_bad.hpp\"\n\nvoid f() {\n"
      "  std::time_t t; timespec_get(nullptr, 0);\n"
      "  char buf[64]; strftime(buf, 64, \"%F\", nullptr);\n"
      "  const char* s = ctime(&t);\n"
      "  double d = difftime(t, t);\n}\n");
  std::vector<std::string> rules = rules_of(findings);
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "determinism"), 4);
}

TEST(MetricName, TrackAccuracyLiteralsAreChecked) {
  auto findings = lint_content(
      "src/obs/snapshot_names.cpp",
      "#include \"obs/snapshot_names.hpp\"\n\nvoid f(S& s, const W* w) {\n"
      "  s.track_accuracy(\"Model.NLM.Runtime\", w);\n"
      "  s.track_accuracy(\"model.nlm.runtime\", w);\n"
      "  s.track_accuracy(family + \".runtime\", w);\n}\n");
  std::vector<std::string> rules = rules_of(findings);
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "metric-name"), 1);
}

TEST(MetricName, SuppressionTagWorks) {
  EXPECT_FALSE(has_rule(
      lint_content("src/obs/sup_metrics.cpp",
                   "#include \"obs/sup_metrics.hpp\"\n\nvoid f(R& m) {\n"
                   "  // legacy dashboard key: tracon-lint: "
                   "allow(metric-name)\n"
                   "  m.counter(\"Legacy-Key\").inc();\n}\n"),
      "metric-name"));
}

TEST(RawThread, CatchesPrimitivesAndHeadersOutsideSanctionedDirs) {
  EXPECT_TRUE(has_rule(
      lint_content("src/sched/bad.cpp",
                   "#include \"sched/bad.hpp\"\n\nstd::thread t;\n"),
      "raw-thread"));
  EXPECT_TRUE(has_rule(
      lint_content("src/sim/bad.cpp",
                   "#include \"sim/bad.hpp\"\n\nstd::mutex m;\n"),
      "raw-thread"));
  EXPECT_TRUE(has_rule(
      lint_content("src/obs/bad.cpp",
                   "#include \"obs/bad.hpp\"\n\n"
                   "auto f = std::async([] { return 1; });\n"),
      "raw-thread"));
  EXPECT_TRUE(has_rule(lint_content("src/virt/bad.cpp",
                                    "#include \"virt/bad.hpp\"\n\n"
                                    "#include <atomic>\n"),
                       "raw-thread"));
  EXPECT_TRUE(has_rule(
      lint_content("src/model/bad.cpp",
                   "#include \"model/bad.hpp\"\n\n"
                   "void f() { pthread_create(nullptr, nullptr, "
                   "nullptr, nullptr); }\n"),
      "raw-thread"));
}

TEST(RawThread, SanctionedHomesAreExempt) {
  const std::string body =
      "#include <mutex>\n#include <thread>\n\nstd::mutex m;\n";
  EXPECT_FALSE(has_rule(lint_content("src/util/parallel.cpp",
                                     "#include \"util/parallel.hpp\"\n\n" +
                                         body),
                        "raw-thread"));
  EXPECT_FALSE(has_rule(
      lint_content("src/sim/shard_scenario.cpp",
                   "#include \"sim/shard_scenario.hpp\"\n\n" + body),
      "raw-thread"));
  // The profiler's registration lock rides the scope_timer exemption.
  EXPECT_FALSE(has_rule(
      lint_content("src/obs/scope_timer.cpp",
                   "#include \"obs/scope_timer.hpp\"\n\nstd::mutex m;\n"),
      "raw-thread"));
  // Prose and strings never fire.
  EXPECT_FALSE(has_rule(
      lint_content("src/sched/ok.cpp",
                   "#include \"sched/ok.hpp\"\n\n"
                   "// std::thread is quarantined to util\n"
                   "const char* kDoc = \"std::mutex\";\n"),
      "raw-thread"));
}

TEST(RawThread, SuppressionTagApplies) {
  EXPECT_FALSE(has_rule(
      lint_content("src/sched/sup.cpp",
                   "#include \"sched/sup.hpp\"\n\n"
                   "// tracon-lint: allow(raw-thread)\nstd::atomic<int> n;\n"),
      "raw-thread"));
}

TEST(Suppression, LineAndFileTagsSilenceFindings) {
  EXPECT_FALSE(has_rule(
      lint_content("src/sim/sup.cpp",
                   "#include \"sim/sup.hpp\"\n\n"
                   "// seeded entropy is fine here: tracon-lint: "
                   "allow(determinism)\nint x = rand();\n"),
      "determinism"));
  EXPECT_FALSE(has_rule(
      lint_content("src/sim/supfile.cpp",
                   "#include \"sim/supfile.hpp\"\n\n"
                   "// tracon-lint: allow-file(determinism)\n"
                   "int x = rand();\nint y = rand();\n"),
      "determinism"));
}

TEST(Scope, NonSourceFilesAndNonSrcPathsAreIgnored) {
  EXPECT_TRUE(lint_content("tools/lint/x.cpp", "int x = rand();\n").empty());
  EXPECT_TRUE(lint_content("src/sim/notes.md", "rand()\n").empty());
}

TEST(Findings, FormatIsCompilerStyle) {
  Finding f{"src/sim/bad.cpp", 4, "determinism", "no clocks"};
  EXPECT_EQ(tracon::lint::format(f),
            "src/sim/bad.cpp:4: [determinism] no clocks");
}

}  // namespace
