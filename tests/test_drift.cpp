#include "monitor/drift.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace tracon::monitor {
namespace {

DriftConfig small_config() {
  DriftConfig cfg;
  cfg.reference_window = 30;
  cfg.recent_window = 10;
  return cfg;
}

TEST(Drift, NoDriftOnStationaryErrors) {
  DriftDetector det(small_config());
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    DriftKind k = det.observe(std::abs(rng.normal(0.10, 0.02)));
    EXPECT_EQ(k, DriftKind::kNone) << "at sample " << i;
  }
}

TEST(Drift, DetectsMeanShift) {
  DriftDetector det(small_config());
  Rng rng(32);
  for (int i = 0; i < 30; ++i) det.observe(std::abs(rng.normal(0.10, 0.02)));
  // Environment change: errors jump to ~0.8 (the paper's iSCSI switch).
  DriftKind last = DriftKind::kNone;
  for (int i = 0; i < 10; ++i)
    last = det.observe(std::abs(rng.normal(0.80, 0.05)));
  EXPECT_EQ(last, DriftKind::kMeanShift);
}

TEST(Drift, DetectsVarianceSurge) {
  DriftConfig cfg = small_config();
  cfg.mean_shift_sigmas = 1e9;  // disable the mean rule for this test
  cfg.min_abs_shift = 1e9;
  DriftDetector det(cfg);
  Rng rng(33);
  for (int i = 0; i < 30; ++i) det.observe(std::abs(rng.normal(0.3, 0.02)));
  DriftKind last = DriftKind::kNone;
  for (int i = 0; i < 10; ++i)
    last = det.observe(std::abs(rng.normal(0.3, 0.4)));
  // min_abs_shift also floors the variance rule; relax it back.
  DriftConfig cfg2 = small_config();
  cfg2.mean_shift_sigmas = 1e9;
  DriftDetector det2(cfg2);
  Rng rng2(34);
  for (int i = 0; i < 30; ++i)
    det2.observe(std::abs(rng2.normal(0.3, 0.01)));
  for (int i = 0; i < 10; ++i)
    last = det2.observe(0.3 + (i % 2 == 0 ? 0.5 : -0.29));
  EXPECT_EQ(last, DriftKind::kVarianceSurge);
}

TEST(Drift, SilentUntilWindowsFill) {
  DriftDetector det(small_config());
  for (int i = 0; i < 35; ++i) {
    DriftKind k = det.observe(i < 30 ? 0.1 : 5.0);
    if (i < 39) {
      // Recent window (10) not full until sample 39.
      EXPECT_EQ(k, DriftKind::kNone);
    }
  }
  EXPECT_EQ(det.reference_count(), 30u);
  EXPECT_EQ(det.recent_count(), 5u);
}

TEST(Drift, ResetForgetsEverything) {
  DriftDetector det(small_config());
  Rng rng(35);
  for (int i = 0; i < 50; ++i) det.observe(std::abs(rng.normal(0.1, 0.02)));
  det.reset();
  EXPECT_EQ(det.reference_count(), 0u);
  EXPECT_EQ(det.recent_count(), 0u);
  EXPECT_EQ(det.state(), DriftKind::kNone);
}

TEST(Drift, SmallShiftBelowFloorIgnored) {
  DriftConfig cfg = small_config();
  cfg.min_abs_shift = 0.5;
  DriftDetector det(cfg);
  for (int i = 0; i < 30; ++i) det.observe(0.10);
  DriftKind last = DriftKind::kNone;
  for (int i = 0; i < 10; ++i) last = det.observe(0.15);
  EXPECT_EQ(last, DriftKind::kNone);
}

TEST(Drift, InvalidInputsThrow) {
  DriftDetector det(small_config());
  EXPECT_THROW(det.observe(-0.1), std::invalid_argument);
  EXPECT_THROW(det.observe(std::nan("")), std::invalid_argument);
  DriftConfig bad;
  bad.reference_window = 1;
  EXPECT_THROW(DriftDetector{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace tracon::monitor
