// Tests for the NLM-log extension model (degree-2 fit on log response)
// and for the logging utility (both small enough to share a binary).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "model/evaluate.hpp"
#include "model/factory.hpp"
#include "model/nonlinear.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace tracon::model {
namespace {

/// Multiplicative response: y = base * exp(a*x1) * (1 + b*x2) — the
/// regime where a log link shines and a raw quadratic struggles.
TrainingSet multiplicative_data(int n, std::uint64_t seed) {
  Rng rng(seed);
  TrainingSet ts;
  monitor::AppProfile fg{0.4, 0.05, 150.0, 30.0};
  for (int i = 0; i < n; ++i) {
    monitor::AppProfile bg;
    bg.domu_cpu = rng.uniform(0, 1);
    bg.dom0_cpu = rng.uniform(0, 0.2);
    bg.reads_per_s = rng.uniform(0, 400);
    bg.writes_per_s = rng.uniform(0, 250);
    double y = 50.0 * std::exp(2.0 * bg.domu_cpu) *
               (1.0 + 0.004 * bg.reads_per_s) *
               rng.lognormal_noise(0.03);
    double iops = 400.0 * std::exp(-1.5 * bg.domu_cpu) *
                  rng.lognormal_noise(0.03);
    ts.add(fg, bg, y, iops);
  }
  return ts;
}

TEST(NlmLog, BeatsRawNlmOnMultiplicativeResponse) {
  TrainingSet train = multiplicative_data(200, 60);
  TrainingSet test = multiplicative_data(80, 61);
  auto raw = train_model(ModelKind::kNonlinear, train, Response::kRuntime);
  auto logm = train_model(ModelKind::kNonlinearLog, train,
                          Response::kRuntime);
  double raw_err = evaluate_on(*raw, test).mean;
  double log_err = evaluate_on(*logm, test).mean;
  EXPECT_LT(log_err, raw_err);
  EXPECT_LT(log_err, 0.06);
}

TEST(NlmLog, PredictionsPositiveAndBounded) {
  TrainingSet train = multiplicative_data(150, 62);
  auto m = train_model(ModelKind::kNonlinearLog, train, Response::kIops);
  std::vector<double> extreme(8, 1e6);
  double p = m->predict(extreme);
  EXPECT_GT(p, 0.0);
  EXPECT_TRUE(std::isfinite(p));
}

TEST(NlmLog, DescribeAndFactoryName) {
  TrainingSet train = multiplicative_data(120, 63);
  NonlinearConfig cfg;
  cfg.log_response = true;
  NonlinearModel m(train, Response::kRuntime, cfg);
  EXPECT_TRUE(m.log_response());
  EXPECT_NE(m.describe().find("NLM-log"), std::string::npos);
  EXPECT_EQ(model_kind_name(ModelKind::kNonlinearLog), "NLM-log");
}

TEST(NlmLog, ZeroResponsesHandled) {
  // log(0) is floored; training must not produce NaNs.
  TrainingSet ts = multiplicative_data(120, 64);
  Observation zero = ts.observations()[0];
  zero.runtime = 0.0;
  zero.iops = 0.0;
  ts.add(zero);
  auto m = train_model(ModelKind::kNonlinearLog, ts, Response::kRuntime);
  EXPECT_TRUE(std::isfinite(m->predict(ts.observations()[5].features)));
}

}  // namespace
}  // namespace tracon::model

namespace tracon {
namespace {

TEST(Log, LevelGatingAndPrefix) {
  LogLevel saved = Log::level();
  Log::set_level(LogLevel::kWarn);
  EXPECT_FALSE(Log::enabled(LogLevel::kDebug));
  EXPECT_FALSE(Log::enabled(LogLevel::kInfo));
  EXPECT_TRUE(Log::enabled(LogLevel::kWarn));
  EXPECT_TRUE(Log::enabled(LogLevel::kError));
  Log::set_level(LogLevel::kOff);
  EXPECT_FALSE(Log::enabled(LogLevel::kError));
  Log::set_level(saved);
}

TEST(Log, MacroCompilesAndRespectsLevel) {
  LogLevel saved = Log::level();
  Log::set_level(LogLevel::kOff);
  TRACON_WARN("this must not crash " << 42);
  Log::set_level(saved);
}

}  // namespace
}  // namespace tracon
