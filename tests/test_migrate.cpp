// Live rebalancing (src/migrate + the event loop's migration
// mechanics): the cost model's arithmetic, candidate selection from a
// synthetic degrading heatmap, the cost-vs-benefit guard, and the
// determinism contract — same-seed runs byte-identical, and
// rebalancing-on sharded runs byte-identical across thread counts.
#include "migrate/rebalancer.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <sstream>

#include "obs/decision_log.hpp"
#include "obs/telemetry.hpp"
#include "sched/fifo.hpp"
#include "sim/shard_scenario.hpp"
#include "util/rng.hpp"
#include "virt/migration.hpp"
#include "workload/benchmarks.hpp"

namespace tracon::migrate {
namespace {

const sim::PerfTable& table() {
  static sim::PerfTable t = [] {
    model::Profiler prof(
        virt::HostSimulator(virt::HostConfig::paper_testbed()), 42);
    return sim::PerfTable::build(prof, workload::paper_benchmarks());
  }();
  return t;
}

const sched::TablePredictor& oracle() {
  static sched::TablePredictor p = table().oracle_predictor();
  return p;
}

// ------------------------------------------------------------ cost model

TEST(MigrationCostModel, ArithmeticMatchesTheDecomposition) {
  virt::MigrationCostConfig cfg;
  cfg.downtime_s = 0.5;
  cfg.copy_bandwidth_mbps = 400.0;
  cfg.working_set_mb = 512.0;
  cfg.copy_interference = 0.25;
  virt::MigrationCostModel model(cfg);
  EXPECT_DOUBLE_EQ(model.copy_duration_s(), 512.0 / 400.0);
  EXPECT_DOUBLE_EQ(model.copy_speed_factor(), 0.75);
  EXPECT_DOUBLE_EQ(model.task_cost_s(), 0.5 + (512.0 / 400.0) * 0.25);
  // Per-working-set overloads scale with the copied bytes.
  EXPECT_DOUBLE_EQ(model.copy_duration_s(800.0), 2.0);
  EXPECT_DOUBLE_EQ(model.task_cost_s(800.0), 0.5 + 2.0 * 0.25);
}

TEST(MigrationCostModel, ValidatesItsConfig) {
  virt::MigrationCostConfig cfg;
  cfg.downtime_s = -0.1;
  EXPECT_THROW(virt::MigrationCostModel{cfg}, std::invalid_argument);
  cfg = {};
  cfg.copy_bandwidth_mbps = 0.0;
  EXPECT_THROW(virt::MigrationCostModel{cfg}, std::invalid_argument);
  cfg = {};
  cfg.working_set_mb = 0.0;
  EXPECT_THROW(virt::MigrationCostModel{cfg}, std::invalid_argument);
  cfg = {};
  cfg.copy_interference = 1.0;  // factor of 0 would stall the host
  EXPECT_THROW(virt::MigrationCostModel{cfg}, std::invalid_argument);
}

// ------------------------------------------------------- plan() selection

/// The most interference-sensitive (app, neighbour) pair under the
/// oracle: maximizes predicted co-located runtime over solo runtime.
std::pair<std::size_t, std::size_t> worst_pair() {
  std::size_t best_a = 0, best_b = 0;
  double best_ratio = 0.0;
  for (std::size_t a = 0; a < table().num_apps(); ++a) {
    for (std::size_t b = 0; b < table().num_apps(); ++b) {
      double ratio = oracle().predict_runtime(a, b) /
                     oracle().predict_runtime(a, std::nullopt);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_a = a;
        best_b = b;
      }
    }
  }
  EXPECT_GT(best_ratio, 1.05) << "perf table lost its interference";
  return {best_a, best_b};
}

RebalanceConfig cheap_moves() {
  RebalanceConfig cfg;
  cfg.min_benefit_s = 0.1;
  cfg.min_cell_samples = 2;
  cfg.cost.downtime_s = 0.01;
  cfg.cost.working_set_mb = 1.0;
  cfg.cost.copy_bandwidth_mbps = 1000.0;
  return cfg;
}

/// One task of `app` halfway done next to `neighbour` on machine 0.
std::vector<RunningTaskView> one_task(std::size_t app, std::size_t nb) {
  RunningTaskView v;
  v.task_id = 17;
  v.app = app;
  v.machine = 0;
  v.neighbour = nb;
  v.solo_runtime_s = table().solo_runtime(app);
  v.remaining_solo_s = v.solo_runtime_s / 2.0;
  return {v};
}

TEST(Rebalancer, MovesATaskOutOfADegradingCell) {
  auto [app, nb] = worst_pair();
  Rebalancer reb(oracle(), cheap_moves());
  double solo = table().solo_runtime(app);
  for (int i = 0; i < 4; ++i) reb.observe_completion(app, nb, 2.0 * solo, solo);
  EXPECT_GT(reb.cell_slowdown(app, nb), 1.5);
  EXPECT_EQ(reb.completions_observed(), 4u);

  sched::ClusterCounts counts(table().num_apps(), 3);
  counts.place(app, std::nullopt);   // half-busy source stand-in
  counts.place(nb, app);             // fills it: the (app, nb) machine
  auto plans = reb.plan(100.0, one_task(app, nb), counts, nullptr);
  ASSERT_EQ(plans.size(), 1u);
  const MigrationPlan& p = plans[0];
  EXPECT_EQ(p.task_id, 17u);
  EXPECT_EQ(p.from_machine, 0u);
  EXPECT_EQ(p.from_neighbour, std::optional<std::size_t>(nb));
  EXPECT_EQ(p.dest_neighbour, std::nullopt);  // empty machine wins
  EXPECT_GT(p.margin, 0.1);
  EXPECT_DOUBLE_EQ(p.cost_s, p.downtime_s +
                                 p.copy_s * cheap_moves().cost.copy_interference);
  EXPECT_LT(p.predicted_move_s, p.predicted_stay_s);
}

TEST(Rebalancer, StaysPutWithoutADegradationSignal) {
  auto [app, nb] = worst_pair();
  Rebalancer reb(oracle(), cheap_moves());  // no completions observed
  sched::ClusterCounts counts(table().num_apps(), 3);
  counts.place(app, std::nullopt);
  counts.place(nb, app);
  EXPECT_TRUE(reb.plan(100.0, one_task(app, nb), counts, nullptr).empty());
  EXPECT_DOUBLE_EQ(reb.cell_slowdown(app, nb), 1.0);
}

TEST(Rebalancer, NeverMovesWhenCostExceedsBenefit) {
  auto [app, nb] = worst_pair();
  RebalanceConfig cfg = cheap_moves();
  // A working set that takes longer to copy than any possible gain.
  cfg.cost.working_set_mb = 1e9;
  cfg.cost.copy_bandwidth_mbps = 1.0;
  Rebalancer reb(oracle(), cfg);
  double solo = table().solo_runtime(app);
  for (int i = 0; i < 4; ++i) reb.observe_completion(app, nb, 2.0 * solo, solo);
  sched::ClusterCounts counts(table().num_apps(), 3);
  counts.place(app, std::nullopt);
  counts.place(nb, app);
  EXPECT_TRUE(reb.plan(100.0, one_task(app, nb), counts, nullptr).empty());
}

TEST(Rebalancer, ValidatesItsConfig) {
  RebalanceConfig cfg;
  cfg.interval_s = 0.0;
  EXPECT_THROW(Rebalancer(oracle(), cfg), std::invalid_argument);
  cfg = {};
  cfg.max_moves_per_round = 0;
  EXPECT_THROW(Rebalancer(oracle(), cfg), std::invalid_argument);
  cfg = {};
  cfg.slowdown_threshold = 0.9;
  EXPECT_THROW(Rebalancer(oracle(), cfg), std::invalid_argument);
}

// ------------------------------------------------- end-to-end determinism

/// Aggressive rebalancing over a FIFO-placed (hence interference-blind)
/// sharded run, with the decision log recorded.
struct RebalanceRun {
  sim::ShardedOutcome outcome;
  std::string decisions;
  std::string metrics_json;
};

RebalanceRun run_rebalancing(std::uint64_t seed, std::size_t threads) {
  sim::ShardedConfig cfg;
  cfg.machines = 26;
  cfg.lambda_per_min = 25.0;
  cfg.duration_s = 3600.0;
  cfg.seed = seed;
  cfg.shards = 4;
  cfg.threads = threads;
  cfg.rebalance = true;
  cfg.rebalance_cfg.interval_s = 120.0;
  cfg.rebalance_cfg.slowdown_threshold = 1.05;
  cfg.rebalance_cfg.min_cell_samples = 2;
  cfg.rebalance_cfg.min_benefit_s = 0.1;
  cfg.rebalance_predictor = &oracle();

  obs::Telemetry tel;
  tel.decisions.set_enabled(true);
  cfg.telemetry = &tel;
  cfg.accuracy_probe = &oracle();
  cfg.accuracy_family = "oracle";

  RebalanceRun r;
  r.outcome = sim::run_dynamic_sharded(
      table(),
      [seed](std::size_t shard) {
        return std::unique_ptr<sched::Scheduler>(
            std::make_unique<sched::FifoScheduler>(
                derive_stream_seed(seed + 1, shard)));
      },
      cfg);
  r.decisions = tel.decisions.str();
  std::ostringstream metrics;
  tel.metrics.write_json(metrics);
  r.metrics_json = metrics.str();
  return r;
}

std::size_t count_migrations(const std::string& decisions) {
  obs::DecisionDoc doc = obs::parse_decision_log(decisions);
  std::size_t n = 0;
  for (const obs::DecisionEvent& e : doc.events)
    if (e.kind == obs::DecisionEvent::Kind::kMigration) ++n;
  return n;
}

TEST(RebalanceDeterminism, SameSeedSameBytes) {
  RebalanceRun a = run_rebalancing(7, 1);
  RebalanceRun b = run_rebalancing(7, 1);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_GT(count_migrations(a.decisions), 0u)
      << "aggressive rebalancing over FIFO placements should migrate";
}

TEST(RebalanceDeterminism, FourThreadsByteIdenticalToOne) {
  for (std::uint64_t seed : {7u, 23u}) {
    RebalanceRun a = run_rebalancing(seed, 1);
    RebalanceRun b = run_rebalancing(seed, 4);
    EXPECT_EQ(b.outcome.threads_used, 4u);
    EXPECT_EQ(a.decisions, b.decisions);
    EXPECT_EQ(a.metrics_json, b.metrics_json);
    EXPECT_EQ(a.outcome.total.completed, b.outcome.total.completed);
    EXPECT_EQ(a.outcome.total.total_runtime, b.outcome.total.total_runtime);
  }
}

TEST(RebalanceDeterminism, MigrationRecordsRoundTripAndJoin) {
  RebalanceRun r = run_rebalancing(7, 1);
  obs::DecisionDoc doc = obs::parse_decision_log(r.decisions);
  std::size_t checked = 0;
  for (const obs::DecisionEvent& e : doc.events) {
    if (e.kind != obs::DecisionEvent::Kind::kMigration) continue;
    ++checked;
    EXPECT_NE(e.machine, obs::DecisionEvent::kNoMachine);
    EXPECT_NE(e.from_machine, obs::DecisionEvent::kNoMachine);
    EXPECT_NE(e.machine, e.from_machine);
    EXPECT_GE(e.downtime_s, 0.0);
    EXPECT_GE(e.copy_s, 0.0);
    EXPECT_DOUBLE_EQ(e.cost_s, e.downtime_s + e.copy_s * 0.25);
    EXPECT_GT(e.margin, 0.0);
  }
  ASSERT_GT(checked, 0u);
  // The writer/parser pair is an identity on the migration kind.
  std::ostringstream round;
  obs::DecisionLog log2;
  log2.set_enabled(true);
  for (const auto& [k, v] : doc.fingerprint) log2.set_fingerprint(k, v);
  for (const obs::DecisionEvent& e : doc.events) {
    obs::DecisionEvent copy = e;
    if (e.kind == obs::DecisionEvent::Kind::kDecision)
      log2.record_decision(std::move(copy));
    else if (e.kind == obs::DecisionEvent::Kind::kMigration)
      log2.record_migration(std::move(copy));
    else
      log2.record_outcome(std::move(copy));
  }
  EXPECT_EQ(log2.str(), r.decisions);
}

}  // namespace
}  // namespace tracon::migrate
