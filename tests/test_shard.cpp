// Tests the sharded dynamic scenario's headline guarantee: results are
// a function of (seed, machines, shards) only — the worker-pool size
// must never leak into outcomes, metrics bytes, trace bytes, or the
// merged snapshot series (DESIGN.md §7).
#include "sim/shard_scenario.hpp"

#include <gtest/gtest.h>

#include <atomic>  // tracon-lint: allow(raw-thread)
#include <sstream>

#include "sched/fifo.hpp"
#include "sched/mibs.hpp"
#include "sched/mios.hpp"
#include "sched/mix.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "workload/benchmarks.hpp"

namespace tracon::sim {
namespace {

const PerfTable& table() {
  static PerfTable t = [] {
    model::Profiler prof(
        virt::HostSimulator(virt::HostConfig::paper_testbed()), 42);
    return PerfTable::build(prof, workload::paper_benchmarks());
  }();
  return t;
}

const sched::TablePredictor& oracle() {
  static sched::TablePredictor p = table().oracle_predictor();
  return p;
}

TEST(DeriveStreamSeed, DeterministicAndStreamSeparated) {
  EXPECT_EQ(derive_stream_seed(7, 0), derive_stream_seed(7, 0));
  // Distinct streams and distinct base seeds land on distinct values,
  // including the pathological all-zero input.
  EXPECT_NE(derive_stream_seed(7, 0), derive_stream_seed(7, 1));
  EXPECT_NE(derive_stream_seed(7, 0), derive_stream_seed(8, 0));
  EXPECT_NE(derive_stream_seed(0, 0), derive_stream_seed(0, 1));
  EXPECT_NE(derive_stream_seed(0, 0), 0u);
  // Stream ids must not collapse onto neighbouring seeds.
  EXPECT_NE(derive_stream_seed(7, 1), derive_stream_seed(8, 0));
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::vector<std::atomic<int>> hits(97);
    for (auto& h : hits) h.store(0);
    parallel_for(threads, hits.size(),
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, PropagatesFirstWorkerException) {
  EXPECT_THROW(parallel_for(4, 16,
                            [](std::size_t i) {
                              if (i % 2 == 1)
                                throw std::runtime_error("shard failed");
                            }),
               std::runtime_error);
  // Zero iterations: no worker runs, no exception.
  parallel_for(4, 0, [](std::size_t) { throw std::runtime_error("never"); });
}

TEST(HardwareThreads, NeverZero) { EXPECT_GE(hardware_threads(), 1u); }

TEST(AutoShardCount, OneShardPer128MachinesClamped) {
  EXPECT_EQ(auto_shard_count(1), 1u);
  EXPECT_EQ(auto_shard_count(127), 1u);
  EXPECT_EQ(auto_shard_count(256), 2u);
  EXPECT_EQ(auto_shard_count(10'000), 64u);  // 78 -> clamp
  EXPECT_EQ(auto_shard_count(1'000'000), 64u);
}

ShardedConfig small_cfg(std::uint64_t seed, std::size_t threads) {
  ShardedConfig cfg;
  cfg.machines = 26;  // uneven split: 4 shards of 7,7,6,6
  cfg.lambda_per_min = 40.0;
  cfg.duration_s = 3600.0;
  cfg.seed = seed;
  cfg.shards = 4;
  cfg.threads = threads;
  return cfg;
}

sched::PlacementPolicy no_hold() {
  sched::PlacementPolicy p;
  p.beneficial_joins_only = false;
  return p;
}

/// Builds the factory for one scheduler family; `kind` in
/// {fifo, mios, mibs, mix}.
SchedulerFactory factory_for(const std::string& kind, std::uint64_t seed) {
  if (kind == "fifo") {
    return [seed](std::size_t shard) -> std::unique_ptr<sched::Scheduler> {
      return std::make_unique<sched::FifoScheduler>(
          derive_stream_seed(seed + 1, shard));
    };
  }
  if (kind == "mios") {
    return [](std::size_t) -> std::unique_ptr<sched::Scheduler> {
      return std::make_unique<sched::MiosScheduler>(
          oracle(), sched::Objective::kRuntime, no_hold());
    };
  }
  if (kind == "mibs") {
    return [](std::size_t) -> std::unique_ptr<sched::Scheduler> {
      return std::make_unique<sched::MibsScheduler>(
          oracle(), sched::Objective::kRuntime, 8, 60.0, no_hold());
    };
  }
  return [](std::size_t) -> std::unique_ptr<sched::Scheduler> {
    return std::make_unique<sched::MixScheduler>(
        oracle(), sched::Objective::kRuntime, 8, 60.0, no_hold());
  };
}

/// Full instrumented run: metrics + typed trace + task trace + series.
struct RunBytes {
  ShardedOutcome outcome;
  std::string metrics_json;
  std::string trace_jsonl;
  std::string events_jsonl;
  std::string series;
};

RunBytes run_instrumented(const std::string& kind, std::uint64_t seed,
                          std::size_t threads) {
  ShardedConfig cfg = small_cfg(seed, threads);
  obs::Telemetry telemetry;
  telemetry.tracer.set_enabled(true);
  TraceRecorder trace;
  cfg.telemetry = &telemetry;
  cfg.trace = &trace;
  cfg.accuracy_probe = &oracle();
  cfg.accuracy_family = "oracle";
  cfg.snapshot_interval_s = 600.0;

  RunBytes r;
  r.outcome = run_dynamic_sharded(table(), factory_for(kind, seed), cfg);
  std::ostringstream metrics, tj, ej;
  telemetry.metrics.write_json(metrics);
  telemetry.tracer.write_jsonl(tj);
  trace.write_jsonl(ej);
  r.metrics_json = metrics.str();
  r.trace_jsonl = tj.str();
  r.events_jsonl = ej.str();
  r.series = r.outcome.series;
  return r;
}

class ThreadInvariance : public ::testing::TestWithParam<const char*> {};

TEST_P(ThreadInvariance, FourThreadsByteIdenticalToOne) {
  const std::string kind = GetParam();
  for (std::uint64_t seed : {7u, 23u}) {
    RunBytes a = run_instrumented(kind, seed, 1);
    RunBytes b = run_instrumented(kind, seed, 4);
    EXPECT_EQ(b.outcome.threads_used, 4u);
    EXPECT_EQ(a.outcome.shards, b.outcome.shards);
    EXPECT_EQ(a.outcome.total.arrived, b.outcome.total.arrived);
    EXPECT_EQ(a.outcome.total.completed, b.outcome.total.completed);
    EXPECT_EQ(a.outcome.total.dropped, b.outcome.total.dropped);
    EXPECT_EQ(a.outcome.total.total_runtime, b.outcome.total.total_runtime);
    EXPECT_EQ(a.outcome.total.mean_wait_s, b.outcome.total.mean_wait_s);
    ASSERT_EQ(a.outcome.per_shard.size(), b.outcome.per_shard.size());
    for (std::size_t i = 0; i < a.outcome.per_shard.size(); ++i) {
      EXPECT_EQ(a.outcome.per_shard[i].completed,
                b.outcome.per_shard[i].completed);
    }
    // The determinism contract is byte-level, not value-level.
    EXPECT_EQ(a.metrics_json, b.metrics_json) << kind << " seed " << seed;
    EXPECT_EQ(a.trace_jsonl, b.trace_jsonl) << kind << " seed " << seed;
    EXPECT_EQ(a.events_jsonl, b.events_jsonl) << kind << " seed " << seed;
    EXPECT_EQ(a.series, b.series) << kind << " seed " << seed;
    EXPECT_FALSE(a.series.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Schedulers, ThreadInvariance,
                         ::testing::Values("fifo", "mios", "mibs", "mix"));

TEST(ShardedScenario, OversubscribedThreadsStillByteIdentical) {
  // More workers than shards: extra threads must be harmless.
  RunBytes a = run_instrumented("mios", 11, 1);
  RunBytes b = run_instrumented("mios", 11, 16);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.events_jsonl, b.events_jsonl);
}

TEST(ShardedScenario, ShardStreamsAreIndependent) {
  ShardedConfig cfg = small_cfg(7, 1);
  ShardedOutcome o = run_dynamic_sharded(table(), factory_for("fifo", 7), cfg);
  ASSERT_EQ(o.per_shard.size(), 4u);
  // Shards 0 and 1 host the same machine count and arrival rate; only
  // their counter-derived streams differ, so identical arrival tallies
  // across all pairs would mean the streams collapsed.
  bool all_equal = true;
  for (std::size_t i = 1; i < o.per_shard.size(); ++i) {
    if (o.per_shard[i].arrived != o.per_shard[0].arrived) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
  // And the totals are the sum of the parts.
  std::size_t arrived = 0, completed = 0;
  for (const DynamicOutcome& s : o.per_shard) {
    arrived += s.arrived;
    completed += s.completed;
  }
  EXPECT_EQ(o.total.arrived, arrived);
  EXPECT_EQ(o.total.completed, completed);
}

TEST(ShardedScenario, ShardCountShapesTheSystem) {
  // Shards are part of the simulated system (per-shard queues and
  // managers), so different shard counts are different systems.
  ShardedConfig one = small_cfg(7, 1);
  one.shards = 1;
  ShardedConfig four = small_cfg(7, 1);
  ShardedOutcome a = run_dynamic_sharded(table(), factory_for("fifo", 7), one);
  ShardedOutcome b = run_dynamic_sharded(table(), factory_for("fifo", 7), four);
  EXPECT_EQ(a.shards, 1u);
  EXPECT_EQ(b.shards, 4u);
  EXPECT_NE(a.total.arrived, b.total.arrived);
}

TEST(ShardedScenario, ShardsNeverExceedMachines) {
  ShardedConfig cfg = small_cfg(7, 1);
  cfg.machines = 2;
  cfg.shards = 8;
  ShardedOutcome o = run_dynamic_sharded(table(), factory_for("fifo", 7), cfg);
  EXPECT_EQ(o.shards, 2u);
}

TEST(ShardedScenario, RejectsBadConfig) {
  ShardedConfig cfg = small_cfg(7, 1);
  cfg.machines = 0;
  EXPECT_THROW(run_dynamic_sharded(table(), factory_for("fifo", 7), cfg),
               std::invalid_argument);
  EXPECT_THROW(run_dynamic_sharded(table(), nullptr, small_cfg(7, 1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace tracon::sim
