#include "stats/polynomial.hpp"

#include <gtest/gtest.h>

namespace tracon::stats {
namespace {

TEST(PolyBasis, Degree1TermCount) {
  PolyBasis b = PolyBasis::degree1(4);
  EXPECT_EQ(b.num_terms(), 5u);  // intercept + 4 linear
}

TEST(PolyBasis, Degree2TermCount) {
  // 1 + d + d (squares) + d(d-1)/2 (interactions)
  PolyBasis b8 = PolyBasis::degree2(8);
  EXPECT_EQ(b8.num_terms(), 1u + 8u + 8u + 28u);
  PolyBasis b2 = PolyBasis::degree2(2);
  EXPECT_EQ(b2.num_terms(), 6u);
}

TEST(PolyBasis, ExpandValues) {
  PolyBasis b = PolyBasis::degree2(2);
  Vector x = {2.0, 3.0};
  Vector e = b.expand(x);
  // Order: 1, x1, x2, x1^2, x2^2, x1*x2.
  ASSERT_EQ(e.size(), 6u);
  EXPECT_EQ(e[0], 1.0);
  EXPECT_EQ(e[1], 2.0);
  EXPECT_EQ(e[2], 3.0);
  EXPECT_EQ(e[3], 4.0);
  EXPECT_EQ(e[4], 9.0);
  EXPECT_EQ(e[5], 6.0);
}

TEST(PolyBasis, ExpandRows) {
  PolyBasis b = PolyBasis::degree1(2);
  Matrix x = {{1.0, 2.0}, {3.0, 4.0}};
  Matrix e = b.expand_rows(x);
  EXPECT_EQ(e.rows(), 2u);
  EXPECT_EQ(e.cols(), 3u);
  EXPECT_EQ(e(1, 0), 1.0);
  EXPECT_EQ(e(1, 2), 4.0);
}

TEST(PolyBasis, TermNames) {
  PolyBasis b = PolyBasis::degree2(2);
  EXPECT_EQ(b.term_name(0), "1");
  EXPECT_EQ(b.term_name(1), "x1");
  EXPECT_EQ(b.term_name(3), "x1^2");
  EXPECT_EQ(b.term_name(5), "x1*x2");
  std::vector<std::string> names = {"cpu", "io"};
  EXPECT_EQ(b.term_name(5, names), "cpu*io");
}

TEST(PolyBasis, DimensionMismatchThrows) {
  PolyBasis b = PolyBasis::degree2(3);
  Vector wrong = {1.0, 2.0};
  EXPECT_THROW(b.expand(wrong), std::invalid_argument);
  EXPECT_THROW(b.term_name(999), std::invalid_argument);
}

TEST(PolyTerm, Classification) {
  PolyBasis b = PolyBasis::degree2(2);
  EXPECT_TRUE(b.terms()[0].is_intercept());
  EXPECT_TRUE(b.terms()[1].is_linear());
  EXPECT_TRUE(b.terms()[3].is_quadratic());
  EXPECT_TRUE(b.terms()[5].is_quadratic());
}

}  // namespace
}  // namespace tracon::stats
