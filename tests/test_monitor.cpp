#include "monitor/monitor.hpp"

#include <gtest/gtest.h>

#include "monitor/profile.hpp"

namespace tracon::monitor {
namespace {

virt::MonitorSample sample(std::size_t vm, double t, double reads,
                           double writes, double domu, double dom0) {
  virt::MonitorSample s;
  s.vm = vm;
  s.time_s = t;
  s.reads_per_s = reads;
  s.writes_per_s = writes;
  s.domu_cpu = domu;
  s.dom0_cpu = dom0;
  return s;
}

TEST(Profile, FromRunStats) {
  virt::VmRunStats stats;
  stats.avg_domu_cpu = 0.4;
  stats.avg_dom0_cpu = 0.05;
  stats.reads_per_s = 120;
  stats.writes_per_s = 30;
  AppProfile p = AppProfile::from_run_stats(stats);
  EXPECT_EQ(p.domu_cpu, 0.4);
  EXPECT_EQ(p.dom0_cpu, 0.05);
  EXPECT_EQ(p.reads_per_s, 120);
  EXPECT_EQ(p.writes_per_s, 30);
}

TEST(Profile, ConcatOrderAndNames) {
  AppProfile a{0.1, 0.2, 3.0, 4.0};
  AppProfile b{0.5, 0.6, 7.0, 8.0};
  auto v = concat_profiles(a, b);
  ASSERT_EQ(v.size(), 8u);
  EXPECT_EQ(v[0], 0.1);
  EXPECT_EQ(v[3], 4.0);
  EXPECT_EQ(v[4], 0.5);
  EXPECT_EQ(v[7], 8.0);
  EXPECT_EQ(pair_feature_names().size(), 8u);
  EXPECT_EQ(pair_feature_names()[1], "vm1.dom0_cpu");
  EXPECT_EQ(pair_feature_names()[6], "vm2.reads");
}

TEST(Profile, IdleIsAllZero) {
  AppProfile idle = AppProfile::idle();
  for (double v : idle.to_array()) EXPECT_EQ(v, 0.0);
}

TEST(ResourceMonitor, WindowedAverage) {
  ResourceMonitor mon(2, 3);
  mon.observe(sample(0, 1, 100, 10, 0.2, 0.01));
  mon.observe(sample(0, 2, 200, 20, 0.4, 0.02));
  AppProfile p = mon.profile(0);
  EXPECT_NEAR(p.reads_per_s, 150.0, 1e-12);
  EXPECT_NEAR(p.writes_per_s, 15.0, 1e-12);
  EXPECT_NEAR(p.domu_cpu, 0.3, 1e-12);
}

TEST(ResourceMonitor, WindowEvictsOldest) {
  ResourceMonitor mon(1, 2);
  mon.observe(sample(0, 1, 100, 0, 0, 0));
  mon.observe(sample(0, 2, 200, 0, 0, 0));
  mon.observe(sample(0, 3, 300, 0, 0, 0));
  EXPECT_EQ(mon.sample_count(0), 2u);
  EXPECT_NEAR(mon.profile(0).reads_per_s, 250.0, 1e-12);
}

TEST(ResourceMonitor, PerVmIsolation) {
  ResourceMonitor mon(2, 5);
  mon.observe(sample(0, 1, 100, 0, 0, 0));
  mon.observe(sample(1, 1, 500, 0, 0, 0));
  EXPECT_NEAR(mon.profile(0).reads_per_s, 100.0, 1e-12);
  EXPECT_NEAR(mon.profile(1).reads_per_s, 500.0, 1e-12);
}

TEST(ResourceMonitor, EmptyProfileIsIdle) {
  ResourceMonitor mon(1, 5);
  AppProfile p = mon.profile(0);
  EXPECT_EQ(p.reads_per_s, 0.0);
  EXPECT_EQ(p.domu_cpu, 0.0);
}

TEST(ResourceMonitor, ResetClearsOneVm) {
  ResourceMonitor mon(2, 5);
  mon.observe(sample(0, 1, 100, 0, 0, 0));
  mon.observe(sample(1, 1, 200, 0, 0, 0));
  mon.reset(0);
  EXPECT_EQ(mon.sample_count(0), 0u);
  EXPECT_EQ(mon.sample_count(1), 1u);
}

TEST(ResourceMonitor, ObserveAllIngests) {
  ResourceMonitor mon(2, 10);
  std::vector<virt::MonitorSample> samples = {
      sample(0, 1, 10, 0, 0, 0), sample(1, 1, 20, 0, 0, 0),
      sample(0, 2, 30, 0, 0, 0)};
  mon.observe_all(samples);
  EXPECT_EQ(mon.sample_count(0), 2u);
  EXPECT_EQ(mon.sample_count(1), 1u);
}

TEST(ResourceMonitor, Preconditions) {
  EXPECT_THROW(ResourceMonitor(0, 5), std::invalid_argument);
  EXPECT_THROW(ResourceMonitor(2, 0), std::invalid_argument);
  ResourceMonitor mon(1, 5);
  EXPECT_THROW(mon.observe(sample(3, 1, 0, 0, 0, 0)), std::invalid_argument);
  EXPECT_THROW(mon.profile(1), std::invalid_argument);
  EXPECT_THROW(mon.reset(1), std::invalid_argument);
}

}  // namespace
}  // namespace tracon::monitor
