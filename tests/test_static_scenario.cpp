#include "sim/static_scenario.hpp"

#include <gtest/gtest.h>

#include "sched/fifo.hpp"
#include "sched/mibs.hpp"
#include "workload/benchmarks.hpp"

namespace tracon::sim {
namespace {

PerfTable table() {
  static PerfTable t = [] {
    model::Profiler prof(
        virt::HostSimulator(virt::HostConfig::paper_testbed()), 42);
    std::vector<virt::AppBehavior> apps = {
        *workload::benchmark_by_name("email"),
        *workload::benchmark_by_name("video"),
        *workload::benchmark_by_name("blastn")};
    return PerfTable::build(prof, apps);
  }();
  return t;
}

sched::PlacementPolicy no_hold() {
  sched::PlacementPolicy p;
  p.beneficial_joins_only = false;
  return p;
}

TEST(StaticScenario, SingleTaskRunsSolo) {
  PerfTable t = table();
  sched::FifoScheduler fifo(1);
  std::vector<std::size_t> tasks = {1};
  StaticOutcome o = run_static(t, fifo, tasks, 4);
  EXPECT_EQ(o.unplaced, 0u);
  EXPECT_NEAR(o.total_runtime, t.solo_runtime(1), 1e-9);
  EXPECT_NEAR(o.total_iops, t.solo_iops(1), 1e-9);
}

TEST(StaticScenario, PairDynamicsMatchHandComputation) {
  PerfTable t = table();
  // Force both tasks onto one machine.
  sched::FifoScheduler fifo(1);
  std::vector<std::size_t> tasks = {0, 1};  // email, video
  StaticOutcome o = run_static(t, fifo, tasks, 1);
  EXPECT_EQ(o.unplaced, 0u);

  auto n0 = std::optional<std::size_t>(0);
  auto n1 = std::optional<std::size_t>(1);
  double t_email = t.runtime(0, n1);
  double t_video = t.runtime(1, n0);
  double first = std::min(t_email, t_video);
  double second_paired_rt = std::max(t_email, t_video);
  std::size_t second = t_email <= t_video ? 1 : 0;
  double frac = first / second_paired_rt;
  double expected_second = first + (1.0 - frac) * t.solo_runtime(second);
  EXPECT_NEAR(o.total_runtime, first + expected_second, 1e-6);
}

TEST(StaticScenario, AllTasksPlacedWhenSlotsSuffice) {
  PerfTable t = table();
  sched::FifoScheduler fifo(5);
  std::vector<std::size_t> tasks(8, 1);
  StaticOutcome o = run_static(t, fifo, tasks, 4);
  EXPECT_EQ(o.unplaced, 0u);
  EXPECT_EQ(o.tasks, 8u);
  // Four video+video machines; every task realized slower than solo.
  EXPECT_GT(o.total_runtime, 8.0 * t.solo_runtime(1));
}

TEST(StaticScenario, MibsBeatsBadPairingOnCraftedBatch) {
  PerfTable t = table();
  // 2 machines, batch = {video, blastn, email, email}: good pairing puts
  // each heavy task with an email.
  std::vector<std::size_t> tasks = {1, 2, 0, 0};
  sched::TablePredictor oracle = t.oracle_predictor();
  sched::MibsScheduler mibs(oracle, sched::Objective::kRuntime, 4, 0.0,
                            no_hold());
  StaticOutcome smart = run_static(t, mibs, tasks, 2);
  EXPECT_EQ(smart.unplaced, 0u);

  // Worst pairing by construction: heavy+heavy, email+email.
  double heavy_first = std::min(t.runtime(1, std::optional<std::size_t>(2)),
                                t.runtime(2, std::optional<std::size_t>(1)));
  EXPECT_LT(smart.total_runtime, 2.0 * heavy_first);
}

TEST(StaticScenario, TooManyTasksThrow) {
  PerfTable t = table();
  sched::FifoScheduler fifo(1);
  std::vector<std::size_t> tasks(5, 0);
  EXPECT_THROW(run_static(t, fifo, tasks, 2), std::invalid_argument);
  EXPECT_THROW(run_static(t, fifo, tasks, 0), std::invalid_argument);
  std::vector<std::size_t> bad = {9};
  EXPECT_THROW(run_static(t, fifo, bad, 2), std::invalid_argument);
}

TEST(StaticScenario, HoldBackSchedulerLeavesUnplaced) {
  PerfTable t = table();
  // With beneficial-joins-only, pairing two videos is refused; on one
  // machine the second video stays unplaced.
  sched::TablePredictor oracle = t.oracle_predictor();
  sched::MibsScheduler mibs(oracle, sched::Objective::kRuntime, 2, 0.0);
  std::vector<std::size_t> tasks = {1, 1};
  StaticOutcome o = run_static(t, mibs, tasks, 1);
  EXPECT_EQ(o.unplaced, 1u);
}

}  // namespace
}  // namespace tracon::sim
