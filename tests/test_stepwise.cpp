#include "stats/stepwise.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "stats/polynomial.hpp"
#include "util/rng.hpp"

namespace tracon::stats {
namespace {

/// Builds candidates = degree-2 expansion of 3 features, response
/// depending only on x1 and x2*x3.
struct SyntheticSelection {
  Matrix candidates;
  Vector y;
  PolyBasis basis = PolyBasis::degree2(3);
  std::size_t true_linear = 0, true_interaction = 0;

  explicit SyntheticSelection(double noise) {
    Rng rng(4);
    const std::size_t n = 120;
    Matrix x(n, 3);
    y.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < 3; ++j) x(i, j) = rng.uniform(-1, 1);
      y[i] = 2.0 + 3.0 * x(i, 0) + 4.0 * x(i, 1) * x(i, 2) +
             rng.normal(0.0, noise);
    }
    candidates = basis.expand_rows(x);
    for (std::size_t t = 0; t < basis.num_terms(); ++t) {
      const PolyTerm& term = basis.terms()[t];
      if (term.is_linear() && term.i == 0) true_linear = t;
      if (term.is_quadratic() && term.i == 1 && term.j == 2)
        true_interaction = t;
    }
  }
};

TEST(Stepwise, RecoversTrueSupport) {
  SyntheticSelection s(0.05);
  StepwiseResult res = stepwise_aic(s.candidates, s.y);
  auto has = [&](std::size_t c) {
    return std::find(res.selected.begin(), res.selected.end(), c) !=
           res.selected.end();
  };
  EXPECT_TRUE(has(0));                   // intercept forced
  EXPECT_TRUE(has(s.true_linear));       // x1
  EXPECT_TRUE(has(s.true_interaction));  // x2*x3
  // Parsimony: far fewer terms than candidates.
  EXPECT_LE(res.selected.size(), 6u);
  EXPECT_GT(res.fit.r_squared, 0.98);
}

TEST(Stepwise, PredictsOnCandidateRows) {
  SyntheticSelection s(0.01);
  StepwiseResult res = stepwise_aic(s.candidates, s.y);
  Vector x = {0.5, -0.5, 0.25};
  Vector row = s.basis.expand(x);
  double expected = 2.0 + 3.0 * 0.5 + 4.0 * (-0.5) * 0.25;
  EXPECT_NEAR(res.predict(row), expected, 0.1);
}

TEST(Stepwise, ForcedColumnsKept) {
  SyntheticSelection s(0.05);
  StepwiseOptions opts;
  opts.forced = {0, 5};
  StepwiseResult res = stepwise_aic(s.candidates, s.y, opts);
  EXPECT_TRUE(std::binary_search(res.selected.begin(), res.selected.end(),
                                 std::size_t{5}));
}

TEST(Stepwise, IgnoresRankDeficientCandidates) {
  // Duplicate a column; selection must not pick both copies.
  SyntheticSelection s(0.05);
  Matrix cand(s.candidates.rows(), s.candidates.cols() + 1);
  for (std::size_t r = 0; r < cand.rows(); ++r) {
    for (std::size_t c = 0; c < s.candidates.cols(); ++c)
      cand(r, c) = s.candidates(r, c);
    cand(r, s.candidates.cols()) = s.candidates(r, s.true_linear);
  }
  StepwiseResult res = stepwise_aic(cand, s.y);
  bool orig = std::binary_search(res.selected.begin(), res.selected.end(),
                                 s.true_linear);
  bool dup = std::binary_search(res.selected.begin(), res.selected.end(),
                                s.candidates.cols());
  EXPECT_TRUE(orig != dup || !dup);  // never both
  EXPECT_GT(res.fit.r_squared, 0.98);
}

TEST(Stepwise, BetterAicThanFullModelOrEqual) {
  SyntheticSelection s(0.3);
  StepwiseResult res = stepwise_aic(s.candidates, s.y);
  OlsFit full = ols_fit(s.candidates, s.y);
  EXPECT_LE(res.fit.aic, full.aic + 1e-9);
}

TEST(Stepwise, ShapeAndPreconditionErrors) {
  Matrix cand(5, 2);
  Vector y = {1, 2, 3};
  EXPECT_THROW(stepwise_aic(cand, y), std::invalid_argument);
  Vector y5 = {1, 2, 3, 4, 5};
  StepwiseOptions opts;
  opts.forced = {7};
  EXPECT_THROW(stepwise_aic(cand, y5, opts), std::invalid_argument);
  opts.forced = {};
  EXPECT_THROW(stepwise_aic(cand, y5, opts), std::invalid_argument);
}

TEST(StepwiseResult, PredictOnEmptyModelThrows) {
  StepwiseResult res;
  Vector row = {1.0};
  EXPECT_THROW(res.predict(row), std::invalid_argument);
}

}  // namespace
}  // namespace tracon::stats
