#include "stats/matrix.hpp"

#include <gtest/gtest.h>

namespace tracon::stats {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 5.0;
  EXPECT_EQ(m(1, 2), 5.0);
  EXPECT_EQ(m(0, 0), 0.0);
}

TEST(Matrix, InitializerList) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  Matrix id = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_EQ(id(i, j), i == j ? 1.0 : 0.0);
}

TEST(Matrix, FromRows) {
  Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m(2, 1), 6.0);
  EXPECT_THROW(Matrix::from_rows({{1.0}, {1.0, 2.0}}), std::invalid_argument);
}

TEST(Matrix, Transpose) {
  Matrix m = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
}

TEST(Matrix, Multiply) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  Matrix b = {{5.0, 6.0}, {7.0, 8.0}};
  Matrix c = a.multiply(b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
}

TEST(Matrix, MultiplyVector) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  Vector v = {1.0, 1.0};
  Vector out = a.multiply(v);
  EXPECT_EQ(out[0], 3.0);
  EXPECT_EQ(out[1], 7.0);
}

TEST(Matrix, GramIsTransposeTimesSelf) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  Matrix g = a.gram();
  Matrix expected = a.transposed().multiply(a);
  EXPECT_LT(g.max_abs_diff(expected), 1e-12);
}

TEST(Matrix, SelectColumns) {
  Matrix a = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  std::vector<std::size_t> idx = {2, 0};
  Matrix s = a.select_columns(idx);
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_EQ(s(0, 0), 3.0);
  EXPECT_EQ(s(1, 1), 4.0);
  std::vector<std::size_t> bad = {5};
  EXPECT_THROW(a.select_columns(bad), std::invalid_argument);
}

TEST(VectorOps, DotNormDistance) {
  Vector a = {3.0, 4.0};
  Vector b = {1.0, 0.0};
  EXPECT_EQ(dot(a, b), 3.0);
  EXPECT_EQ(norm2(a), 5.0);
  EXPECT_EQ(squared_distance(a, b), 4.0 + 16.0);
}

TEST(VectorOps, SubtractAxpy) {
  Vector a = {5.0, 7.0};
  Vector b = {2.0, 3.0};
  Vector d = subtract(a, b);
  EXPECT_EQ(d[0], 3.0);
  EXPECT_EQ(d[1], 4.0);
  Vector e = axpy(a, 2.0, b);
  EXPECT_EQ(e[0], 9.0);
  EXPECT_EQ(e[1], 13.0);
}

TEST(VectorOps, LengthMismatchThrows) {
  Vector a = {1.0};
  Vector b = {1.0, 2.0};
  EXPECT_THROW(dot(a, b), std::invalid_argument);
  EXPECT_THROW(subtract(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace tracon::stats
