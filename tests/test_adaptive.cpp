#include "model/adaptive.hpp"

#include <gtest/gtest.h>

#include "model/evaluate.hpp"
#include "util/rng.hpp"

namespace tracon::model {
namespace {

/// Observations from a parameterized "environment": response is a
/// linear-ish function whose scale differs per environment, standing in
/// for the local-vs-iSCSI storage switch.
Observation sample_env(Rng& rng, double scale) {
  Observation obs;
  obs.features.assign(8, 0.0);
  obs.features[4] = rng.uniform(0, 1);    // bg domu
  obs.features[6] = rng.uniform(0, 300);  // bg reads
  obs.features[7] = rng.uniform(0, 200);  // bg writes
  double base = 40.0 + 30.0 * obs.features[4] + 0.1 * obs.features[6] +
                0.15 * obs.features[7];
  obs.runtime = scale * base * rng.lognormal_noise(0.03);
  obs.iops = std::max(1.0, 400.0 - base) * rng.lognormal_noise(0.03);
  return obs;
}

TrainingSet initial_set(Rng& rng, int n, double scale) {
  TrainingSet ts;
  for (int i = 0; i < n; ++i) ts.add(sample_env(rng, scale));
  return ts;
}

AdaptiveConfig fast_config() {
  AdaptiveConfig cfg;
  cfg.kind = ModelKind::kLinear;  // cheap and sufficient here
  cfg.rebuild_interval = 40;
  cfg.window_size = 120;
  return cfg;
}

TEST(Adaptive, StationaryEnvironmentStaysAccurate) {
  Rng rng(50);
  AdaptiveModel m(initial_set(rng, 120, 1.0), Response::kRuntime,
                  fast_config());
  double total = 0.0;
  for (int i = 0; i < 100; ++i) total += m.observe(sample_env(rng, 1.0));
  EXPECT_LT(total / 100.0, 0.08);
}

TEST(Adaptive, RecoversFromEnvironmentShift) {
  Rng rng(51);
  AdaptiveModel m(initial_set(rng, 120, 1.0), Response::kRuntime,
                  fast_config());
  // Environment scale doubles (storage switch): early errors are large.
  double early = 0.0;
  for (int i = 0; i < 20; ++i) early += m.observe(sample_env(rng, 2.0));
  early /= 20.0;
  // Keep observing; rebuilds ingest the new regime.
  for (int i = 0; i < 200; ++i) m.observe(sample_env(rng, 2.0));
  double late = 0.0;
  for (int i = 0; i < 20; ++i) late += m.observe(sample_env(rng, 2.0));
  late /= 20.0;
  EXPECT_GT(early, 0.3);
  EXPECT_LT(late, 0.1);
  EXPECT_GE(m.rebuild_count(), 2u);
}

TEST(Adaptive, RebuildsEveryInterval) {
  Rng rng(52);
  AdaptiveModel m(initial_set(rng, 120, 1.0), Response::kRuntime,
                  fast_config());
  for (int i = 0; i < 85; ++i) m.observe(sample_env(rng, 1.0));
  // 85 observations at interval 40 -> 2 scheduled rebuilds.
  EXPECT_EQ(m.rebuild_count(), 2u);
  EXPECT_EQ(m.observations_since_rebuild(), 5u);
}

TEST(Adaptive, DriftTriggersEarlyRebuild) {
  Rng rng(53);
  AdaptiveConfig cfg = fast_config();
  cfg.rebuild_interval = 1000;  // scheduled rebuilds effectively off
  cfg.window_size = 1000;
  cfg.drift.reference_window = 30;
  cfg.drift.recent_window = 10;
  AdaptiveModel m(initial_set(rng, 120, 1.0), Response::kRuntime, cfg);
  for (int i = 0; i < 40; ++i) m.observe(sample_env(rng, 1.0));
  EXPECT_EQ(m.rebuild_count(), 0u);
  for (int i = 0; i < 400; ++i) m.observe(sample_env(rng, 3.0));
  EXPECT_GE(m.rebuild_count(), 1u);
}

TEST(Adaptive, ErrorHistoryGrows) {
  Rng rng(54);
  AdaptiveModel m(initial_set(rng, 120, 1.0), Response::kRuntime,
                  fast_config());
  for (int i = 0; i < 15; ++i) m.observe(sample_env(rng, 1.0));
  EXPECT_EQ(m.error_history().size(), 15u);
}

TEST(Adaptive, ConfigValidation) {
  Rng rng(55);
  TrainingSet ts = initial_set(rng, 120, 1.0);
  AdaptiveConfig bad = fast_config();
  bad.rebuild_interval = 0;
  EXPECT_THROW(AdaptiveModel(ts, Response::kRuntime, bad),
               std::invalid_argument);
  bad = fast_config();
  bad.window_size = 10;  // < rebuild interval
  EXPECT_THROW(AdaptiveModel(ts, Response::kRuntime, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace tracon::model
