// telemetry_check: validates the files the telemetry subsystem emits.
//
// Usage: telemetry_check --metrics METRICS.json [--trace TRACE.json]
//                        [--series SERIES.jsonl]
//                        [--decisions DECISIONS.jsonl]
//                        [--spans SPANS.jsonl]
//                        [--metrics-b OTHER.json]
//
// Checks (exit 0 when all pass, 1 otherwise):
//   metrics: parses as JSON; has a run fingerprint (seed / scheduler /
//     machines / mix at minimum), the scheduler decision counters, at
//     least one sim.util.* gauge, and at least one prediction-error
//     histogram whose buckets are structurally sound (le-ascending,
//     bucket counts summing to `count`).
//   trace: parses as JSON; traceEvents is a non-empty array whose
//     entries carry name/ph/ts/pid/tid, with at least one complete
//     "X" duration slice.
//   metrics-b: second metrics file compared structurally against
//     --metrics; the two documents must be identical except for the
//     fingerprint's "threads" entry. This is how CI enforces DESIGN.md
//     §7's determinism contract: a --threads 4 run must match the
//     --threads 1 run everywhere that isn't the thread-count stamp.
//   series: parses as tracon.metrics_series JSONL (schema + supported
//     version enforced by the parser); window indices are consecutive
//     from 0; window timestamps tile monotonically (t_start < t_end,
//     each t_start equal to the previous t_end, spans bounded by the
//     declared interval); every counter delta is non-negative; every
//     accuracy entry's window count never exceeds its lifetime total.
//   decisions: parses as tracon.decision_log JSONL (schema + chosen
//     index in range enforced by the parser); the header carries a
//     fingerprint block with the core identity keys but no thread
//     count (the log must stay byte-comparable across --threads);
//     record times are monotonically non-decreasing; every decision
//     has a non-empty candidate set with matching family/weight
//     arrays; every outcome's task id was first seen as a decision or
//     belongs to a FIFO-style run with no decisions at all.
//   spans: parses as tracon.spans JSONL (schema + per-record field
//     presence and unknown-kind rejection enforced by the parser); the
//     header carries the core fingerprint keys but no thread count
//     (the log must stay byte-comparable across --threads); each
//     task's spans form a monotone, non-overlapping, contiguous chain
//     tiling [enqueue, complete]; every span after the first joins to
//     a task the log already introduced; and for every completed task
//     wait + solo + interference + migration equals the end-to-end
//     latency to 1e-9 (DESIGN.md §6i's accounting contract).
//
// Used by CI after an instrumented example/CLI run; kept dependency-free
// via the in-tree obs JSON reader.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "obs/breakdown.hpp"
#include "obs/decision_log.hpp"
#include "obs/json.hpp"
#include "obs/snapshot.hpp"
#include "obs/span_log.hpp"
#include "util/cli.hpp"

namespace {

using tracon::obs::JsonValue;

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) {
    std::printf("ok: %s\n", what.c_str());
  } else {
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
    ++g_failures;
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool histogram_sound(const JsonValue& hist) {
  const JsonValue* count = hist.find("count");
  const JsonValue* buckets = hist.find("buckets");
  if (count == nullptr || buckets == nullptr || !buckets->is_array()) {
    return false;
  }
  double total = 0.0;
  double prev_le = 0.0;
  bool first = true;
  for (const auto& b : buckets->as_array()) {
    const JsonValue* le = b->find("le");
    const JsonValue* c = b->find("count");
    if (le == nullptr || c == nullptr) return false;
    if (le->is_number()) {
      if (!first && le->as_number() <= prev_le) return false;
      prev_le = le->as_number();
      first = false;
    } else if (!le->is_string() || le->as_string() != "inf") {
      return false;
    }
    total += c->as_number();
  }
  return total == count->as_number();  // exact: both are integer counts
}

void check_metrics(const JsonValue& doc) {
  const JsonValue* fp = doc.find("fingerprint");
  check(fp != nullptr && fp->is_object(),
        "metrics has a fingerprint object");
  if (fp != nullptr && fp->is_object()) {
    for (const char* key : {"seed", "scheduler", "machines", "mix"}) {
      const JsonValue* v = fp->find(key);
      check(v != nullptr && v->is_string() && !v->as_string().empty(),
            std::string("fingerprint carries a non-empty ") + key);
    }
  }

  const JsonValue* counters = doc.find("counters");
  check(counters != nullptr && counters->is_object(),
        "metrics has a counters object");
  check(counters != nullptr && counters->find("sched.decisions") != nullptr,
        "metrics counters include sched.decisions");

  const JsonValue* gauges = doc.find("gauges");
  bool has_util = false;
  if (gauges != nullptr && gauges->is_object()) {
    for (const auto& [name, value] : gauges->as_object()) {
      (void)value;
      if (name.rfind("sim.util.", 0) == 0) has_util = true;
    }
  }
  check(has_util, "metrics gauges include a sim.util.* utilization gauge");

  const JsonValue* hists = doc.find("histograms");
  bool has_err = false;
  bool all_sound = true;
  if (hists != nullptr && hists->is_object()) {
    for (const auto& [name, value] : hists->as_object()) {
      if (name.find(".rel_error") != std::string::npos) has_err = true;
      if (!histogram_sound(*value)) all_sound = false;
    }
  }
  check(has_err, "metrics include a prediction rel_error histogram");
  check(all_sound, "every histogram has ascending buckets summing to count");
}

/// Structural equality of two JSON documents, reporting the path of the
/// first mismatch. `ignore` names one exact path ("fingerprint.threads")
/// whose values may differ.
bool json_equal(const JsonValue& a, const JsonValue& b,
                const std::string& path, const std::string& ignore,
                std::string* mismatch) {
  if (path == ignore) return true;
  auto fail = [&]() {
    if (mismatch->empty()) *mismatch = path.empty() ? "<root>" : path;
    return false;
  };
  if (a.is_object() != b.is_object() || a.is_array() != b.is_array() ||
      a.is_number() != b.is_number() || a.is_string() != b.is_string() ||
      a.is_bool() != b.is_bool() || a.is_null() != b.is_null()) {
    return fail();
  }
  if (a.is_object()) {
    const auto& ao = a.as_object();
    const auto& bo = b.as_object();
    if (ao.size() != bo.size()) return fail();
    auto bi = bo.begin();
    for (auto ai = ao.begin(); ai != ao.end(); ++ai, ++bi) {
      if (ai->first != bi->first) return fail();
      if (!json_equal(*ai->second, *bi->second,
                      path.empty() ? ai->first : path + "." + ai->first,
                      ignore, mismatch)) {
        return false;
      }
    }
    return true;
  }
  if (a.is_array()) {
    const auto& aa = a.as_array();
    const auto& ba = b.as_array();
    if (aa.size() != ba.size()) return fail();
    for (std::size_t i = 0; i < aa.size(); ++i) {
      if (!json_equal(*aa[i], *ba[i], path + "[" + std::to_string(i) + "]",
                      ignore, mismatch)) {
        return false;
      }
    }
    return true;
  }
  if (a.is_number()) return a.as_number() == b.as_number() ? true : fail();
  if (a.is_string()) return a.as_string() == b.as_string() ? true : fail();
  if (a.is_bool()) return a.as_bool() == b.as_bool() ? true : fail();
  return true;  // both null
}

void check_metrics_pair(const JsonValue& a, const JsonValue& b) {
  std::string mismatch;
  bool equal = json_equal(a, b, "", "fingerprint.threads", &mismatch);
  check(equal, equal ? "metrics documents identical except fingerprint "
                       "threads"
                     : "metrics documents identical except fingerprint "
                       "threads (first mismatch at " +
                           mismatch + ")");
}

void check_trace(const JsonValue& doc) {
  const JsonValue* events = doc.find("traceEvents");
  check(events != nullptr && events->is_array() && !events->as_array().empty(),
        "trace has a non-empty traceEvents array");
  if (events == nullptr || !events->is_array()) return;

  bool fields_ok = true;
  bool has_slice = false;
  for (const auto& ev : events->as_array()) {
    const JsonValue* ph = ev->find("ph");
    if (ph == nullptr || !ph->is_string() || ev->find("name") == nullptr ||
        ev->find("pid") == nullptr || ev->find("tid") == nullptr) {
      fields_ok = false;
      continue;
    }
    // Metadata events carry no timestamp; everything else must.
    if (ph->as_string() != "M" && ev->find("ts") == nullptr) fields_ok = false;
    if (ph->as_string() == "X" && ev->find("dur") != nullptr) has_slice = true;
  }
  check(fields_ok, "every trace event has name/ph/pid/tid (+ts when timed)");
  check(has_slice, "trace contains at least one X duration slice");
}

void check_series(const tracon::obs::MetricsSeries& series) {
  check(series.interval_s > 0, "series declares a positive interval_s");
  check(!series.windows.empty(), "series contains at least one window");

  bool indices_ok = true;
  bool times_ok = true;
  bool spans_ok = true;
  bool deltas_ok = true;
  bool accuracy_ok = true;
  double prev_end = 0.0;
  for (std::size_t w = 0; w < series.windows.size(); ++w) {
    const tracon::obs::SeriesWindow& win = series.windows[w];
    if (win.index != w) indices_ok = false;
    if (!(win.t_start < win.t_end) || win.t_start != prev_end) {
      times_ok = false;
    }
    // Every window spans at most one interval; only rounding slack is
    // tolerated (the final window may be shorter at the horizon).
    if (win.t_end - win.t_start > series.interval_s * (1.0 + 1e-9)) {
      spans_ok = false;
    }
    prev_end = win.t_end;
    for (const auto& [name, delta] : win.counters) {
      (void)name;
      if (delta < 0) deltas_ok = false;
    }
    for (const auto& [name, acc] : win.accuracy) {
      (void)name;
      if (acc.count > acc.total) accuracy_ok = false;
    }
  }
  check(indices_ok, "series window indices are consecutive from 0");
  check(times_ok,
        "series windows tile monotonically (t_start == previous t_end)");
  check(spans_ok, "every series window spans at most interval_s");
  check(deltas_ok, "every series counter delta is non-negative");
  check(accuracy_ok, "every accuracy window count is <= its lifetime total");
}

void check_decisions(const tracon::obs::DecisionDoc& doc) {
  using tracon::obs::DecisionEvent;
  check(!doc.fingerprint.empty(), "decision log carries a fingerprint block");
  for (const char* key : {"seed", "scheduler", "machines", "mix"}) {
    auto it = doc.fingerprint.find(key);
    check(it != doc.fingerprint.end() && !it->second.empty(),
          std::string("decision fingerprint carries a non-empty ") + key);
  }
  // DESIGN.md §6g: the log is byte-identical across --threads, so its
  // fingerprint must not record the execution shape.
  check(doc.fingerprint.count("threads") == 0 &&
            doc.fingerprint.count("shards") == 0,
        "decision fingerprint excludes threads/shards");

  bool times_ok = true;
  bool candidates_ok = true;
  bool families_ok = true;
  bool joins_ok = true;
  bool hosts_ok = true;
  bool costs_ok = true;
  std::size_t decisions = 0;
  std::size_t migrations = 0;
  std::size_t outcomes = 0;
  double prev_t = 0.0;
  std::set<std::uint64_t> decided;
  for (const DecisionEvent& e : doc.events) {
    if (e.time_s < prev_t) times_ok = false;
    prev_t = e.time_s;
    if (e.kind == DecisionEvent::Kind::kDecision) {
      ++decisions;
      decided.insert(e.task);
      // chosen < candidates.size() is enforced by the parser; the
      // structural invariants left to check are non-emptiness and the
      // per-candidate family arrays lining up with the declared
      // families (and weights with them).
      if (e.candidates.empty()) candidates_ok = false;
      if (e.families.empty() || e.weights.size() != e.families.size())
        families_ok = false;
      for (const auto& c : e.candidates)
        if (c.by_family.size() != e.families.size()) families_ok = false;
    } else if (e.kind == DecisionEvent::Kind::kMigration) {
      ++migrations;
      // A migration must name both hosts, actually move (the event
      // loop never migrates a task onto its own machine), and carry a
      // physically sensible cost decomposition.
      if (e.machine == DecisionEvent::kNoMachine ||
          e.from_machine == DecisionEvent::kNoMachine ||
          e.machine == e.from_machine)
        hosts_ok = false;
      if (e.downtime_s < 0.0 || e.copy_s < 0.0 || e.cost_s < 0.0)
        costs_ok = false;
      if (!decided.empty() && decided.count(e.task) == 0) joins_ok = false;
    } else {
      ++outcomes;
      if (!decided.empty() && decided.count(e.task) == 0) joins_ok = false;
    }
  }
  check(decisions + migrations + outcomes > 0,
        "decision log contains at least one record");
  check(times_ok, "decision-log times are monotonically non-decreasing");
  check(candidates_ok, "every decision has a non-empty candidate set");
  check(families_ok,
        "family/weight/by_family arrays agree on every decision");
  check(joins_ok,
        "every migration/outcome joins to a decision (or the run "
        "recorded none)");
  check(hosts_ok,
        "every migration names distinct source/destination machines");
  check(costs_ok,
        "every migration carries non-negative downtime/copy/cost fields");
}

void check_spans(const tracon::obs::SpanDoc& doc) {
  using tracon::obs::SpanEvent;
  check(!doc.fingerprint.empty(), "span log carries a fingerprint block");
  for (const char* key : {"seed", "scheduler", "machines", "mix"}) {
    auto it = doc.fingerprint.find(key);
    check(it != doc.fingerprint.end() && !it->second.empty(),
          std::string("span fingerprint carries a non-empty ") + key);
  }
  // DESIGN.md §6i: the log is byte-identical across --threads, so its
  // fingerprint must not record the execution shape.
  check(doc.fingerprint.count("threads") == 0 &&
            doc.fingerprint.count("shards") == 0,
        "span fingerprint excludes threads/shards");
  check(!doc.events.empty(), "span log contains at least one span");

  // Per-task chain state: the end of the last span seen, and whether
  // the completed marker already closed the chain.
  struct Chain {
    double cursor = 0.0;
    bool completed = false;
  };
  std::map<std::uint64_t, Chain> chains;
  bool monotone_ok = true;
  bool contiguous_ok = true;
  bool closed_ok = true;
  bool factors_ok = true;
  for (const SpanEvent& e : doc.events) {
    if (e.t1_s < e.t0_s) monotone_ok = false;
    // Speed factors above 1 are legitimate (a pairing can slightly
    // outpace solo); zero or negative progress rates are not, and the
    // copy slowdown is a fraction by construction.
    if (e.factor <= 0.0 || e.copy_factor <= 0.0 ||
        e.copy_factor > 1.0 + 1e-9)
      factors_ok = false;
    auto [it, fresh] = chains.try_emplace(e.task);
    Chain& c = it->second;
    if (!fresh) {
      // Non-overlap and contiguity in one condition: each span must
      // start exactly where the previous one ended.
      if (e.t0_s != c.cursor) contiguous_ok = false;
      if (c.completed) closed_ok = false;
    }
    c.cursor = e.t1_s;
    if (e.kind == SpanEvent::Kind::kCompleted) c.completed = true;
  }
  check(monotone_ok, "every span is monotone (t1 >= t0)");
  check(contiguous_ok,
        "every task's spans tile contiguously (no gap, no overlap)");
  check(closed_ok, "no span follows a task's completed marker");
  check(factors_ok,
        "every speed factor is positive and every copy factor is in (0, 1]");

  // The accounting contract: obs::breakdown folds the per-kind
  // arithmetic; re-verify the sum against the chain extent per task.
  try {
    tracon::obs::BreakdownReport report = tracon::obs::breakdown(doc);
    bool sums_ok = true;
    for (const tracon::obs::TaskBreakdown& row : report.rows) {
      const double sum =
          row.wait_s + row.solo_s + row.interference_s + row.migration_s;
      if (std::abs(sum - row.end_to_end_s()) > 1e-9) sums_ok = false;
    }
    check(sums_ok,
          "wait + solo + interference + migration equals end-to-end "
          "latency within 1e-9 for every completed task");
    check(report.rows.size() + report.incomplete == chains.size(),
          "every span joins to a known task");
  } catch (const std::exception& e) {
    check(false, std::string("span breakdown folds cleanly (") + e.what() +
                     ")");
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    tracon::ArgParser args(argc, argv);
    if (!args.has("metrics") && !args.has("series") &&
        !args.has("decisions") && !args.has("spans")) {
      std::fprintf(stderr,
                   "usage: %s --metrics METRICS.json [--trace TRACE.json] "
                   "[--series SERIES.jsonl] [--decisions DECISIONS.jsonl] "
                   "[--spans SPANS.jsonl]\n",
                   argv[0]);
      return 2;
    }
    if (args.has("metrics")) {
      JsonValue metrics = tracon::obs::parse_json(slurp(args.get("metrics")));
      check_metrics(metrics);
      if (args.has("metrics-b")) {
        check_metrics_pair(
            metrics, tracon::obs::parse_json(slurp(args.get("metrics-b"))));
      }
    }
    if (args.has("trace")) {
      check_trace(tracon::obs::parse_json(slurp(args.get("trace"))));
    }
    if (args.has("series")) {
      check_series(tracon::obs::parse_metrics_series(slurp(args.get("series"))));
    }
    if (args.has("decisions")) {
      check_decisions(
          tracon::obs::parse_decision_log(slurp(args.get("decisions"))));
    }
    if (args.has("spans")) {
      check_spans(tracon::obs::parse_span_log(slurp(args.get("spans"))));
    }
    if (g_failures > 0) {
      std::fprintf(stderr, "telemetry_check: %d failure(s)\n", g_failures);
      return 1;
    }
    std::printf("telemetry_check: all checks passed\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "telemetry_check error: %s\n", e.what());
    return 1;
  }
}
