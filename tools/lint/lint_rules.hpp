// Project-specific lint rules for the TRACON source tree.
//
// These encode conventions no generic tool knows about:
//
//   determinism    src/sim, src/virt, src/sched, src/obs, src/replay,
//                  and src/runstore must not call the global RNG or any
//                  wall clock — every simulated run must replay
//                  bit-identically from its seed, and recorded traces /
//                  stored runs must hash identically across re-runs.
//                  Sole exemption: src/obs/scope_timer, the opt-in
//                  wall-clock profiler whose output never feeds the
//                  deterministic exports.
//   unordered-output  src/replay and src/runstore must not use
//                  std::unordered_* containers: iteration order there
//                  ends up in serialized bytes, and hash order is not
//                  part of the format contract.
//   float-eq       raw ==/!= against floating-point literals outside
//                  src/stats (numeric kernels own their exact-zero
//                  checks and test tolerances).
//   iostream       library code logs through util/log, never iostream.
//   pragma-once    every header opens with #pragma once.
//   include-order  a .cpp includes its own header first, then system
//                  headers, then project headers, each block sorted.
//   require-guard  out-of-line constructors taking arguments validate
//                  them with TRACON_REQUIRE (or carry an allow tag).
//   metric-name    metric/scope/log-event name literals passed to
//                  counter()/gauge()/histogram()/scope()/
//                  TRACON_PROF_SCOPE/KvLine are dotted snake_case
//                  paths ("sched.mios.decisions").
//   raw-thread     raw threading primitives (std::thread, std::async,
//                  mutexes, condition variables, atomics, pthreads and
//                  their headers) are quarantined to src/util/ (the
//                  worker pool, the log level), src/sim/shard_* (the
//                  sharded runner), and src/obs/scope_timer (the
//                  profiler's registration lock). Everything else in
//                  src/ stays single-threaded per shard so same-seed
//                  runs export identical bytes at any --threads.
//
// A finding on line N is suppressed when line N or N-1 of the original
// source contains `tracon-lint: allow(<rule>)`; a whole file opts out
// of one rule with `tracon-lint: allow-file(<rule>)` anywhere in it.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace tracon::lint {

struct Finding {
  std::string file;  // path relative to the scanned root, POSIX separators
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

struct RuleDoc {
  std::string name;
  std::string summary;
};

/// Every rule this linter knows, in the order they are documented
/// above. Drives `tracon_lint --list-rules`.
const std::vector<RuleDoc>& rule_docs();

/// Replaces comment bodies and string/char literal contents with
/// spaces, preserving line structure, so rules never fire on prose.
std::string strip_comments_and_strings(const std::string& src);

/// Lints `content` as if it lived at `rel_path` (POSIX separators,
/// e.g. "src/sim/trace.cpp") under the repository root. Exposed
/// separately from lint_tree so tests can seed violations in memory.
std::vector<Finding> lint_content(const std::string& rel_path,
                                  const std::string& content);

/// Walks `root`/src and lints every .hpp/.cpp file, in sorted path
/// order so output is stable across platforms.
std::vector<Finding> lint_tree(const std::filesystem::path& root);

/// "file:line: [rule] message" — matches compiler diagnostics so
/// editors can jump to the offending line.
std::string format(const Finding& f);

}  // namespace tracon::lint
