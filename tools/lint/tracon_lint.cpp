// tracon_lint: project-specific convention checker.
//
// Usage: tracon_lint [REPO_ROOT | --list-rules]
//
// Scans REPO_ROOT/src (default: the current directory) with the rules
// in lint_rules.hpp and prints one compiler-style diagnostic per
// violation. Exit status is 0 when clean, 1 when any finding remains,
// 2 on usage errors. Registered as a ctest test so `ctest` fails when
// a convention regresses.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint/lint_rules.hpp"

int main(int argc, char** argv) {
  std::filesystem::path root = ".";
  if (argc > 2) {
    std::fprintf(stderr, "usage: %s [REPO_ROOT]\n", argv[0]);
    return 2;
  }
  if (argc == 2) {
    const std::string arg = argv[1];
    if (arg == "--list-rules") {
      for (const tracon::lint::RuleDoc& doc : tracon::lint::rule_docs()) {
        std::printf("%s  %s\n", doc.name.c_str(), doc.summary.c_str());
      }
      return 0;
    }
    if (arg == "-h" || arg == "--help") {
      std::printf(
          "usage: %s [REPO_ROOT]\n"
          "Checks TRACON source conventions under REPO_ROOT/src:\n"
          "  determinism    no RNG/wall-clock calls in sim, virt, sched,\n"
          "                 obs, replay, runstore (except the scope-timer\n"
          "                 profiler)\n"
          "  unordered-output  no std::unordered_* in replay/runstore or\n"
          "                 the decision-log/attribution writers\n"
          "                 (serialized bytes must not depend on hash\n"
          "                 order)\n"
          "  float-eq       no ==/!= against float literals outside stats\n"
          "  iostream       library code logs through util/log\n"
          "  pragma-once    headers open with #pragma once\n"
          "  include-order  own header, then <system>, then \"project\"\n"
          "  require-guard  argument-taking constructors use TRACON_REQUIRE\n"
          "  metric-name    metric/scope/event literals are dotted\n"
          "                 snake_case paths\n"
          "  raw-thread     threading primitives quarantined to util,\n"
          "                 sim/shard_*, obs/scope_timer\n"
          "Suppress one line with `tracon-lint: allow(<rule>)`, a file\n"
          "with `tracon-lint: allow-file(<rule>)`.\n"
          "`%s --list-rules` prints the machine-readable catalog.\n",
          argv[0],
          argv[0]);
      return 0;
    }
    root = arg;
  }

  std::vector<tracon::lint::Finding> findings = tracon::lint::lint_tree(root);
  for (const tracon::lint::Finding& f : findings) {
    std::fprintf(stderr, "%s\n", tracon::lint::format(f).c_str());
  }
  if (findings.empty()) {
    std::printf("tracon_lint: clean\n");
    return 0;
  }
  std::fprintf(stderr, "tracon_lint: %zu finding(s)\n", findings.size());
  return 1;
}
