#include "lint/lint_rules.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

#include "analyze/tokenizer.hpp"

namespace tracon::lint {

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

/// True when the finding at 1-based `line` is suppressed by an allow
/// tag on the same or the preceding original-source line, or by a
/// file-level tag.
class Suppressions {
 public:
  Suppressions(const std::string& original, const std::string& rel_path)
      : lines_(split_lines(original)), rel_path_(rel_path) {}

  bool allows(const std::string& rule, std::size_t line) const {
    const std::string file_tag = "tracon-lint: allow-file(" + rule + ")";
    for (const std::string& l : lines_) {
      if (l.find(file_tag) != std::string::npos) return true;
    }
    const std::string tag = "tracon-lint: allow(" + rule + ")";
    for (std::size_t n : {line, line - 1}) {
      if (n >= 1 && n <= lines_.size() &&
          lines_[n - 1].find(tag) != std::string::npos) {
        return true;
      }
    }
    return false;
  }

  const std::string& rel_path() const { return rel_path_; }

 private:
  std::vector<std::string> lines_;
  std::string rel_path_;
};

void scan_lines(const std::string& stripped, const std::regex& re,
                const Suppressions& sup, const std::string& rule,
                const std::string& message, std::vector<Finding>* out) {
  std::vector<std::string> lines = split_lines(stripped);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!std::regex_search(lines[i], re)) continue;
    if (sup.allows(rule, i + 1)) continue;
    out->push_back({sup.rel_path(), i + 1, rule, message});
  }
}

// --- determinism -----------------------------------------------------------
//
// Token-based (tools/analyze's tokenizer) rather than regex-based: the
// tokenizer already knows comments, strings (raw strings included),
// and preprocessor context, so `rand` in prose or inside an R"(...)"
// literal can never fire, and a struct field named `time` stays quiet
// because only call syntax on the free identifier counts.

/// Entry points that only count with call syntax — the bare words are
/// everyday identifiers.
const std::set<std::string>& determinism_call_sources() {
  static const std::set<std::string> kCalls = {
      "rand", "srand", "drand48", "lrand48", "random", "time", "clock",
  };
  return kCalls;
}

/// Entry points where the bare identifier is already damning.
const std::set<std::string>& determinism_bare_sources() {
  static const std::set<std::string> kBare = {
      "random_device", "system_clock", "steady_clock",
      "high_resolution_clock", "gettimeofday", "clock_gettime",
      "localtime", "gmtime", "timespec_get", "ctime", "asctime",
      "mktime", "strftime", "difftime",
  };
  return kBare;
}

/// Lines (1-based, sorted, unique) holding an RNG/wall-clock use.
std::vector<std::size_t> determinism_hit_lines(
    const analyze::TokenStream& ts) {
  using analyze::TokKind;
  using analyze::Token;
  std::set<std::size_t> lines;
  const std::vector<Token>& toks = ts.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;
    const Token* prev = i > 0 ? &toks[i - 1] : nullptr;
    const Token* next = i + 1 < toks.size() ? &toks[i + 1] : nullptr;
    const bool member_access = prev && prev->kind == TokKind::kPunct &&
                               (prev->text == "." || prev->text == "->");
    if (member_access) continue;
    if (determinism_bare_sources().count(t.text)) {
      lines.insert(t.line);
      continue;
    }
    // `double clock();` declares a method; an identifier directly
    // before (other than `return`) makes this a declarator, not a call.
    const bool declarator =
        prev && prev->kind == TokKind::kIdentifier && prev->text != "return";
    if (determinism_call_sources().count(t.text) && !declarator && next &&
        next->kind == TokKind::kPunct && next->text == "(") {
      lines.insert(t.line);
    }
  }
  return {lines.begin(), lines.end()};
}

void check_determinism(const analyze::TokenStream& ts,
                       const Suppressions& sup, std::vector<Finding>* out) {
  for (std::size_t line : determinism_hit_lines(ts)) {
    if (sup.allows("determinism", line)) continue;
    out->push_back({sup.rel_path(), line, "determinism",
                    "global RNG / wall-clock call in simulation code; "
                    "thread a seeded tracon::Rng or simulated time through "
                    "instead"});
  }
}

// --- unordered-output ------------------------------------------------------

const std::regex& unordered_regex() {
  static const std::regex re(
      R"(\bunordered_(map|set|multimap|multiset)\b)");
  return re;
}

/// src/replay, src/runstore, and src/migrate produce bytes that are
/// contractually stable (replayed traces and stored runs hash to the
/// same id across runs and platforms; migration plans land in the
/// decision log, which byte-compares across --threads); iterating a
/// hash container anywhere in that code risks feeding hash order into
/// the output.
void check_unordered(const std::string& stripped, const Suppressions& sup,
                     std::vector<Finding>* out) {
  scan_lines(stripped, unordered_regex(), sup, "unordered-output",
             "unordered container in serialization code; use std::map/"
             "std::set (or sort before writing) so exported bytes are "
             "stable",
             out);
}

// --- float-eq --------------------------------------------------------------

/// A floating-point literal: decimal point or decimal exponent. Hex
/// literals (0x1E) are integers no matter what letters they contain;
/// plain integers (slot counts, iteration indices) are fine.
bool is_float_literal(const analyze::Token& t) {
  if (t.kind != analyze::TokKind::kNumber) return false;
  const std::string& s = t.text;
  if (s.size() > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    return false;
  }
  if (s.find('.') != std::string::npos) return true;
  return s.find('e') != std::string::npos ||
         s.find('E') != std::string::npos;
}

void check_float_eq(const analyze::TokenStream& ts, const Suppressions& sup,
                    std::vector<Finding>* out) {
  using analyze::TokKind;
  using analyze::Token;
  const std::vector<Token>& toks = ts.tokens;
  std::set<std::size_t> lines;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct || (t.text != "==" && t.text != "!=")) {
      continue;
    }
    if (i > 0 && is_float_literal(toks[i - 1])) lines.insert(t.line);
    std::size_t r = i + 1;
    if (r < toks.size() && toks[r].kind == TokKind::kPunct &&
        (toks[r].text == "-" || toks[r].text == "+")) {
      ++r;
    }
    if (r < toks.size() && is_float_literal(toks[r])) lines.insert(t.line);
  }
  for (std::size_t line : lines) {
    if (sup.allows("float-eq", line)) continue;
    out->push_back({sup.rel_path(), line, "float-eq",
                    "raw ==/!= against a floating-point literal; compare "
                    "against a tolerance or restructure the branch"});
  }
}

// --- iostream --------------------------------------------------------------

const std::regex& iostream_regex() {
  static const std::regex re(
      R"(#\s*include\s*<iostream>|std\s*::\s*(cout|cerr|cin)\b)");
  return re;
}

void check_iostream(const std::string& stripped, const Suppressions& sup,
                    std::vector<Finding>* out) {
  scan_lines(stripped, iostream_regex(), sup, "iostream",
             "library code must log through util/log, not iostream", out);
}

// --- pragma-once -----------------------------------------------------------

void check_pragma_once(const std::string& stripped, const Suppressions& sup,
                       std::vector<Finding>* out) {
  std::vector<std::string> lines = split_lines(stripped);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string l = lines[i];
    l.erase(0, l.find_first_not_of(" \t"));
    while (!l.empty() && (l.back() == ' ' || l.back() == '\t' ||
                          l.back() == '\r')) {
      l.pop_back();
    }
    if (l.empty()) continue;
    if (l == "#pragma once") return;
    if (!sup.allows("pragma-once", i + 1)) {
      out->push_back({sup.rel_path(), i + 1, "pragma-once",
                      "header must open with #pragma once"});
    }
    return;
  }
}

// --- include-order ---------------------------------------------------------

struct Include {
  std::size_t line = 0;  // 1-based
  bool system = false;   // <...> vs "..."
  std::string path;
};

std::vector<Include> parse_includes(const std::string& original,
                                    const std::string& stripped) {
  // The directive is confirmed against the stripped text (so a comment
  // mentioning #include never counts), but the path is read from the
  // original line: quoted paths are string literals the stripper blanks.
  static const std::regex re(R"(^\s*#\s*include\s*([<"])([^">]+)[">])");
  static const std::regex directive_re(R"(^\s*#\s*include\b)");
  std::vector<Include> incs;
  std::vector<std::string> orig_lines = split_lines(original);
  std::vector<std::string> strip_lines = split_lines(stripped);
  for (std::size_t i = 0; i < orig_lines.size(); ++i) {
    if (i >= strip_lines.size() ||
        !std::regex_search(strip_lines[i], directive_re)) {
      continue;
    }
    std::smatch m;
    if (std::regex_search(orig_lines[i], m, re)) {
      incs.push_back({i + 1, m[1].str() == "<", m[2].str()});
    }
  }
  return incs;
}

void check_include_order(const std::string& rel_path,
                         const std::string& original,
                         const std::string& stripped, const Suppressions& sup,
                         std::vector<Finding>* out) {
  std::vector<Include> incs = parse_includes(original, stripped);
  if (incs.empty()) return;

  auto report = [&](const Include& inc, const std::string& msg) {
    if (!sup.allows("include-order", inc.line)) {
      out->push_back({rel_path, inc.line, "include-order", msg});
    }
  };

  std::size_t first = 0;
  if (ends_with(rel_path, ".cpp") && starts_with(rel_path, "src/")) {
    // src/<module>/<stem>.cpp pairs with "<module>/<stem>.hpp".
    std::string own = rel_path.substr(4);
    own.replace(own.size() - 4, 4, ".hpp");
    for (const Include& inc : incs) {
      if (!inc.system && inc.path == own && &inc != &incs[0]) {
        report(incs[0], "own header \"" + own + "\" must be included first");
        break;
      }
    }
    if (!incs[0].system && incs[0].path == own) first = 1;
  }

  bool seen_project = false;
  std::string prev_system, prev_project;
  for (std::size_t i = first; i < incs.size(); ++i) {
    const Include& inc = incs[i];
    if (inc.system) {
      if (seen_project) {
        report(inc, "system include <" + inc.path +
                        "> after project includes; keep <...> first");
      } else if (!prev_system.empty() && inc.path < prev_system) {
        report(inc, "system includes not in alphabetical order (<" +
                        inc.path + "> after <" + prev_system + ">)");
      }
      prev_system = inc.path;
    } else {
      if (!prev_project.empty() && inc.path < prev_project) {
        report(inc, "project includes not in alphabetical order (\"" +
                        inc.path + "\" after \"" + prev_project + "\")");
      }
      seen_project = true;
      prev_project = inc.path;
    }
  }
}

// --- require-guard ---------------------------------------------------------

/// Finds out-of-line constructor definitions `X::X(args...)` with a
/// non-empty argument list and requires TRACON_REQUIRE in the body.
void check_require_guard(const std::string& stripped, const Suppressions& sup,
                         std::vector<Finding>* out) {
  static const std::regex ctor_re(R"(([A-Za-z_]\w*)\s*::\s*\1\s*\()");

  auto line_of = [&](std::size_t pos) {
    return static_cast<std::size_t>(
               std::count(stripped.begin(),
                          stripped.begin() + static_cast<std::ptrdiff_t>(pos),
                          '\n')) +
           1;
  };

  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(),
                                      ctor_re);
       it != std::sregex_iterator(); ++it) {
    std::size_t open = static_cast<std::size_t>(it->position()) +
                       static_cast<std::size_t>(it->length()) - 1;
    // Match the parameter list's closing paren.
    int depth = 0;
    std::size_t close = open;
    for (; close < stripped.size(); ++close) {
      if (stripped[close] == '(') ++depth;
      if (stripped[close] == ')' && --depth == 0) break;
    }
    if (close >= stripped.size()) continue;

    std::string params = stripped.substr(open + 1, close - open - 1);
    bool has_params = params.find_first_not_of(" \t\n\r") != std::string::npos;
    if (!has_params || params == "void") continue;

    // Locate the body: first '{' at paren depth zero. `= default`,
    // `= delete`, and plain declarations (next ';') have no body.
    std::size_t body = std::string::npos;
    depth = 0;
    for (std::size_t p = close + 1; p < stripped.size(); ++p) {
      char c = stripped[p];
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (depth == 0 && (c == ';' || c == '=')) break;
      if (depth == 0 && c == '{') {
        body = p;
        break;
      }
    }
    if (body == std::string::npos) continue;

    // Scan the balanced body for TRACON_REQUIRE.
    depth = 0;
    std::size_t end = body;
    for (; end < stripped.size(); ++end) {
      if (stripped[end] == '{') ++depth;
      if (stripped[end] == '}' && --depth == 0) break;
    }
    std::string body_text = stripped.substr(body, end - body + 1);
    if (body_text.find("TRACON_REQUIRE") != std::string::npos) continue;

    std::size_t line = line_of(static_cast<std::size_t>(it->position()));
    if (sup.allows("require-guard", line)) continue;
    out->push_back(
        {sup.rel_path(), line, "require-guard",
         "constructor " + (*it)[1].str() +
             " takes arguments but never validates them with TRACON_REQUIRE"});
  }
}

// --- raw-thread ------------------------------------------------------------

const std::regex& raw_thread_regex() {
  static const std::regex re(
      R"(std\s*::\s*(thread|jthread|async|mutex|recursive_mutex)"
      R"(|shared_mutex|timed_mutex|condition_variable(_any)?|atomic)\b)"
      R"(|\bpthread_\w+)"
      R"(|#\s*include\s*<(thread|mutex|shared_mutex|condition_variable)"
      R"(|atomic|future)>)");
  return re;
}

/// Raw threading primitives outside the sanctioned homes (src/util/ for
/// the worker pool and the log level, src/sim/shard_* for the sharded
/// runner, src/obs/scope_timer for the registration lock) break the
/// determinism contract: simulation code must stay single-threaded per
/// shard so same-seed runs export identical bytes at any --threads.
void check_raw_thread(const std::string& stripped, const Suppressions& sup,
                      std::vector<Finding>* out) {
  scan_lines(stripped, raw_thread_regex(), sup, "raw-thread",
             "raw threading primitive outside src/util/ and src/sim/shard_*; "
             "run work through tracon::parallel_for so results stay "
             "independent of the thread count",
             out);
}

// --- metric-name -----------------------------------------------------------

bool valid_metric_path(const std::string& name) {
  static const std::regex re(R"(^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$)");
  return std::regex_match(name, re);
}

/// Registration sites (MetricsRegistry::counter/gauge/histogram,
/// ProfRegistry::scope, TRACON_PROF_SCOPE, KvLine, and
/// SnapshotSeries::track_accuracy) take the name as a string literal
/// first argument. The stripper is length-preserving, so after matching
/// on the stripped line the literal's characters are read back from the
/// original text at the same offsets.
void check_metric_name(const std::string& original,
                       const std::string& stripped, const Suppressions& sup,
                       std::vector<Finding>* out) {
  static const std::regex re(
      R"(\b(counter|gauge|histogram|scope|TRACON_PROF_SCOPE|KvLine)"
      R"(|track_accuracy)\s*\(\s*")");
  std::vector<std::string> strip_lines = split_lines(stripped);
  std::vector<std::string> orig_lines = split_lines(original);
  for (std::size_t i = 0; i < strip_lines.size(); ++i) {
    const std::string& sl = strip_lines[i];
    for (auto it = std::sregex_iterator(sl.begin(), sl.end(), re);
         it != std::sregex_iterator(); ++it) {
      std::size_t quote = static_cast<std::size_t>(it->position()) +
                         static_cast<std::size_t>(it->length()) - 1;
      const std::string& ol = orig_lines[i];
      std::size_t end = ol.find('"', quote + 1);
      if (end == std::string::npos) continue;  // literal spans lines
      std::string name = ol.substr(quote + 1, end - quote - 1);
      if (valid_metric_path(name)) continue;
      if (sup.allows("metric-name", i + 1)) continue;
      out->push_back({sup.rel_path(), i + 1, "metric-name",
                      "metric/scope/event name \"" + name +
                          "\" is not a dotted snake_case path"});
    }
  }
}

}  // namespace

std::string strip_comments_and_strings(const std::string& src) {
  std::string out;
  out.reserve(src.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < src.size(); ++i) {
    char c = src[i];
    char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out += c;
        } else if (c == '\'') {
          state = State::kChar;
          out += c;
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += c;
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out += c;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += c;
        } else {
          out += ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Finding> lint_content(const std::string& rel_path,
                                  const std::string& content) {
  std::vector<Finding> out;
  if (!starts_with(rel_path, "src/")) return out;
  const bool is_header = ends_with(rel_path, ".hpp");
  const bool is_source = ends_with(rel_path, ".cpp");
  if (!is_header && !is_source) return out;

  const std::string stripped = strip_comments_and_strings(content);
  // determinism and float-eq run on the semantic token stream shared
  // with tracon_analyze; the line-regex rules still use the stripper.
  const analyze::TokenStream ts = analyze::tokenize(content);
  const Suppressions sup(content, rel_path);

  // src/obs is deterministic too, with one sanctioned exception: the
  // scope-timer profiler is the library's single wall-clock site (its
  // output never feeds the metrics/trace exports).
  const bool obs_clock_exempt = starts_with(rel_path, "src/obs/scope_timer");
  // Serialization code: bytes written must be stable across runs and
  // platforms (traces replay byte-for-byte; run ids are content hashes;
  // decision logs byte-compare across --threads in CI).
  const bool serialization_dir =
      starts_with(rel_path, "src/replay/") ||
      starts_with(rel_path, "src/runstore/") ||
      starts_with(rel_path, "src/migrate/") ||
      starts_with(rel_path, "src/obs/decision_log") ||
      starts_with(rel_path, "src/obs/attribution") ||
      starts_with(rel_path, "src/obs/span_log") ||
      starts_with(rel_path, "src/obs/breakdown");
  if ((starts_with(rel_path, "src/sim/") ||
       starts_with(rel_path, "src/virt/") ||
       starts_with(rel_path, "src/sched/") ||
       starts_with(rel_path, "src/obs/") || serialization_dir) &&
      !obs_clock_exempt) {
    check_determinism(ts, sup, &out);
  }
  if (serialization_dir) {
    check_unordered(stripped, sup, &out);
  }
  // Concurrency is quarantined: only the worker pool (src/util/), the
  // sharded runner (src/sim/shard_*), and the profiler's registration
  // lock may touch raw threading primitives.
  if (!starts_with(rel_path, "src/util/") &&
      !starts_with(rel_path, "src/sim/shard_") && !obs_clock_exempt) {
    check_raw_thread(stripped, sup, &out);
  }
  check_metric_name(content, stripped, sup, &out);
  if (!starts_with(rel_path, "src/stats/")) {
    check_float_eq(ts, sup, &out);
  }
  if (rel_path != "src/util/log.cpp" && rel_path != "src/util/log.hpp") {
    check_iostream(stripped, sup, &out);
  }
  if (is_header) {
    check_pragma_once(stripped, sup, &out);
  }
  check_include_order(rel_path, content, stripped, sup, &out);
  if (is_source) {
    check_require_guard(stripped, sup, &out);
  }
  return out;
}

std::vector<Finding> lint_tree(const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  std::vector<Finding> out;
  const fs::path src = root / "src";
  if (!fs::is_directory(src)) {
    out.push_back({src.string(), 0, "setup", "no src/ directory under root"});
    return out;
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string rel =
        fs::relative(file, root).generic_string();
    std::vector<Finding> found = lint_content(rel, buf.str());
    out.insert(out.end(), found.begin(), found.end());
  }
  return out;
}

std::string format(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

const std::vector<RuleDoc>& rule_docs() {
  static const std::vector<RuleDoc> kDocs = {
      {"determinism",
       "no RNG/wall-clock calls in sim, virt, sched, migrate, obs, "
       "replay, runstore (except the scope-timer profiler)"},
      {"unordered-output",
       "no std::unordered_* in replay/runstore/migrate or the "
       "decision-log/attribution/span-log/breakdown writers (serialized "
       "bytes must not depend on hash order)"},
      {"float-eq",
       "no ==/!= against floating-point literals outside src/stats"},
      {"iostream", "library code logs through util/log, not iostream"},
      {"pragma-once", "headers open with #pragma once"},
      {"include-order",
       "own header first, then <system>, then \"project\", each sorted"},
      {"require-guard",
       "argument-taking constructors validate with TRACON_REQUIRE"},
      {"metric-name",
       "metric/scope/event name literals are dotted snake_case paths"},
      {"raw-thread",
       "raw threading primitives quarantined to src/util/, "
       "src/sim/shard_*, and src/obs/scope_timer"},
  };
  return kDocs;
}

}  // namespace tracon::lint
