// Lightweight C++ tokenizer for the tracon_analyze passes (and the
// tokenizer-backed tracon_lint rules).
//
// This is not a compiler front end: it produces a flat token stream
// good enough for convention checks — identifiers, pp-numbers, string
// and character literals (including raw strings, which the old
// line-regex lint could not see through), and punctuation, each tagged
// with its 1-based source line. Comments never become tokens; they are
// collected separately, one entry per physical line, so suppression
// tags ("this line or the line above") can be matched without
// re-scanning the source.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tracon::analyze {

enum class TokKind {
  kIdentifier,  ///< [A-Za-z_][A-Za-z0-9_]* (keywords included)
  kNumber,      ///< pp-number: 123, 0x1f, 1.5e-3, 1'000'000, 2.0f
  kString,      ///< text holds the literal's content, quotes stripped
  kChar,        ///< text holds the literal's content, quotes stripped
  kHeaderName,  ///< <path> after `#include`; text holds the path
  kPunct,       ///< single- or multi-character operator / punctuator
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  std::size_t line = 0;   ///< 1-based line the token starts on
  bool directive = false; ///< part of a preprocessor directive (incl.
                          ///< spliced continuation lines of a #define)
};

/// One physical line's worth of comment text. A block comment spanning
/// three lines yields three entries, so line-anchored suppression tags
/// work the same for `//` and `/* ... */` styles.
struct CommentLine {
  std::size_t line = 0;  ///< 1-based
  std::string text;
};

struct TokenStream {
  std::vector<Token> tokens;
  std::vector<CommentLine> comments;
};

/// Tokenizes `src`. Never throws: unterminated literals and stray
/// bytes degrade to best-effort tokens rather than errors, because the
/// analyzer must keep walking a tree that is mid-edit.
TokenStream tokenize(const std::string& src);

}  // namespace tracon::analyze
