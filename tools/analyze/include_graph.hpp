// Include-graph builder over the repository's four source roots
// (src/, tools/, bench/, tests/).
//
// Nodes are repo-relative file paths; edges are quoted #include
// directives resolved the way the build resolves them: against the
// includer's own directory first (bench_common.hpp style), then the
// src/ include root, then the tools/ include root. System includes and
// unresolvable paths carry no edge — the passes only reason about
// project structure.
//
// The graph feeds two passes directly: `layering` walks every edge
// against the module DAG, and `determinism-taint` uses reachability to
// decide whether a nondeterminism source can share a translation unit
// with an emitter.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tracon::analyze {

/// Module name for a repo-relative POSIX path: "src/sim/x.cpp" ->
/// "sim", "tools/lint/x.cpp" -> "tools", "tests/x.cpp" -> "tests",
/// "bench/x.cpp" -> "bench". Empty for anything else.
std::string module_of(const std::string& path);

/// Rank of a module in the enforced layer DAG (higher may include
/// lower, never the reverse, and never a different module of the same
/// rank). -1 for unknown modules, which are not checked:
///
///   0 util | 1 obs | 2 stats, virt | 3 workload, monitor | 4 model
///   5 sched | 6 sim | 7 replay, runstore | 8 core
///   9 tools, bench, examples | 10 tests (tests exercise the tools)
int layer_rank(const std::string& module);

struct IncludeEdge {
  std::size_t to = 0;    ///< index into the path list handed to build()
  std::size_t line = 0;  ///< 1-based line of the #include directive
  std::string spelled;   ///< the path as written between the quotes
};

struct QuotedInclude {
  std::string path;      ///< as written
  std::size_t line = 0;  ///< 1-based
};

class IncludeGraph {
 public:
  /// `paths[i]` is the repo-relative path of node i; `quoted[i]` the
  /// quoted includes its source spells. Both must be parallel.
  static IncludeGraph build(
      const std::vector<std::string>& paths,
      const std::vector<std::vector<QuotedInclude>>& quoted);

  const std::vector<std::vector<IncludeEdge>>& edges() const {
    return edges_;
  }

  /// Transitive include closure from `root`, root included, as a
  /// sorted index list.
  std::vector<std::size_t> reachable(std::size_t root) const;

  /// Strongly connected components with more than one member (or a
  /// self-include): each is one include cycle, members sorted, the
  /// component list ordered by its smallest member. Deterministic.
  std::vector<std::vector<std::size_t>> cycles() const;

 private:
  std::vector<std::vector<IncludeEdge>> edges_;
};

}  // namespace tracon::analyze
