// The tracon_analyze pass pipeline. Each pass reads the shared
// Project snapshot and reports through the suppression-aware Reporter;
// rule semantics are documented in analysis.hpp and DESIGN.md
// ("Architecture layers & static analysis").
#pragma once

#include "analyze/analysis.hpp"

namespace tracon::analyze {

/// Module-DAG enforcement plus include-cycle rejection.
void pass_layering(const Project& project, Reporter& reporter);

/// Non-const namespace-scope variables and non-const static locals
/// in src/.
void pass_mutable_global(const Project& project, Reporter& reporter);

/// Nondeterminism sources that the include graph shows can share a
/// translation unit with an emitter.
void pass_determinism_taint(const Project& project, Reporter& reporter);

/// Unguarded mutation of by-reference captures inside parallel_for
/// bodies.
void pass_parallel_discipline(const Project& project, Reporter& reporter);

}  // namespace tracon::analyze
