// layering: every quoted include must point at the same module or a
// strictly lower layer of the DAG (see include_graph.hpp for ranks),
// and the file-level include graph must be acyclic. Catching an
// upward edge here is what keeps "replay re-runs the simulator" from
// quietly becoming "the simulator depends on the replay format".
#include "analyze/passes.hpp"

#include <algorithm>

namespace tracon::analyze {

void pass_layering(const Project& project, Reporter& reporter) {
  const std::vector<FileIndex>& files = project.files();
  const IncludeGraph& graph = project.graph();

  for (std::size_t i = 0; i < files.size(); ++i) {
    const int from_rank = layer_rank(files[i].module);
    if (from_rank < 0) continue;
    for (const IncludeEdge& e : graph.edges()[i]) {
      const FileIndex& to = files[e.to];
      if (to.module == files[i].module) continue;
      const int to_rank = layer_rank(to.module);
      if (to_rank < 0) continue;
      if (to_rank > from_rank) {
        reporter.report(
            i, e.line, "layering",
            "upward include: module '" + files[i].module + "' (layer " +
                std::to_string(from_rank) + ") must not include '" +
                e.spelled + "' from module '" + to.module + "' (layer " +
                std::to_string(to_rank) + ")");
      } else if (to_rank == from_rank) {
        reporter.report(
            i, e.line, "layering",
            "same-layer cross include: modules '" + files[i].module +
                "' and '" + to.module + "' both sit at layer " +
                std::to_string(from_rank) +
                "; route the dependency through a lower layer instead");
      }
    }
  }

  for (const std::vector<std::size_t>& cycle : graph.cycles()) {
    std::string members;
    for (std::size_t m : cycle) {
      if (!members.empty()) members += " -> ";
      members += files[m].path;
    }
    // Anchor the finding on the smallest member's first edge that
    // stays inside the cycle, so the diagnostic points at a real
    // #include line.
    std::size_t anchor = cycle.front();
    std::size_t line = 1;
    for (const IncludeEdge& e : graph.edges()[anchor]) {
      if (std::find(cycle.begin(), cycle.end(), e.to) != cycle.end()) {
        line = e.line;
        break;
      }
    }
    reporter.report(anchor, line, "layering",
                    "include cycle: " + members + " -> " +
                        files[cycle.front()].path);
  }
}

}  // namespace tracon::analyze
