// mutable-global: a non-const namespace-scope variable or non-const
// static local is shared state every shard and every thread can see —
// exactly the thing that makes `--threads N` diverge from
// `--threads 1` without any test noticing until the sweep hits the
// right interleaving. The pass walks the token stream with a scope
// stack (namespace / class / function / initializer braces) and flags:
//
//   * namespace-scope declarations with no const/constexpr/constinit
//     (function declarations, usings, typedefs, templates skipped);
//   * `static` inside a function body not followed by
//     const/constexpr before the declarator ends.
//
// Scope: src/ only. Preprocessor directive tokens are skipped — macro
// bodies have no scope context (the one sanctioned macro static,
// TRACON_PROF_SCOPE's per-call-site slot, lives in a #define).
#include "analyze/passes.hpp"

#include <set>

namespace tracon::analyze {

namespace {

enum class Scope { kNamespace, kClass, kFunction, kInit };

const std::set<std::string>& skip_keywords() {
  static const std::set<std::string> kSkip = {
      "using", "typedef", "template", "friend", "static_assert",
      "extern", "namespace", "class", "struct", "union", "enum",
      "concept", "requires",
  };
  return kSkip;
}

bool is_const_marker(const std::string& word) {
  return word == "const" || word == "constexpr" || word == "constinit";
}

/// Heuristic classification of one namespace-scope statement (tokens
/// between boundaries, preprocessor excluded). Returns the declared
/// variable name when the statement looks like a mutable variable
/// definition, empty otherwise.
std::string mutable_variable_name(const std::vector<Token>& stmt) {
  if (stmt.empty()) return {};
  std::size_t identifiers = 0;
  for (const Token& t : stmt) {
    if (t.kind == TokKind::kIdentifier) {
      if (skip_keywords().count(t.text) || is_const_marker(t.text)) {
        return {};
      }
      ++identifiers;
    }
  }
  // `x;` alone is an expression (or macro soup), not a declaration.
  if (identifiers < 2) return {};

  // Locate the declarator name: the identifier before the top-level
  // `=`, else before a trailing array `[...]`, else the last
  // identifier. A `(` right after the candidate name means a function
  // declaration — skip (int x(5); at namespace scope is not a pattern
  // this tree uses).
  std::size_t depth = 0;
  std::size_t eq = stmt.size();
  for (std::size_t i = 0; i < stmt.size(); ++i) {
    const Token& t = stmt[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(" || t.text == "[" || t.text == "<") ++depth;
    if (t.text == ")" || t.text == "]" || t.text == ">") {
      if (depth > 0) --depth;
    }
    if (depth == 0 && t.text == "=") {
      eq = i;
      break;
    }
  }
  std::size_t end = eq;  // exclusive bound of the declarator part
  // Strip a trailing array extent: name[...]= or name[...]<end>
  while (end > 0 && stmt[end - 1].kind == TokKind::kPunct &&
         stmt[end - 1].text == "]") {
    std::size_t d = 1;
    std::size_t j = end - 1;
    while (j > 0 && d > 0) {
      --j;
      if (stmt[j].kind == TokKind::kPunct) {
        if (stmt[j].text == "]") ++d;
        if (stmt[j].text == "[") --d;
      }
    }
    end = j;
  }
  if (end == 0) return {};
  const Token& name = stmt[end - 1];
  if (name.kind != TokKind::kIdentifier) return {};
  // Function declaration / call-style initializer: name immediately
  // followed by `(`.
  if (end < stmt.size() && stmt[end].kind == TokKind::kPunct &&
      stmt[end].text == "(") {
    return {};
  }
  // Need at least one type token before the name.
  bool typed = false;
  for (std::size_t i = 0; i + 1 < end; ++i) {
    if (stmt[i].kind == TokKind::kIdentifier) typed = true;
  }
  if (!typed) return {};
  return name.text;
}

}  // namespace

void pass_mutable_global(const Project& project, Reporter& reporter) {
  for (std::size_t fi = 0; fi < project.files().size(); ++fi) {
    const FileIndex& file = project.files()[fi];
    if (file.path.rfind("src/", 0) != 0) continue;

    // Directive tokens dropped up front: scope tracking below sees
    // only real code.
    std::vector<Token> toks;
    toks.reserve(file.ts.tokens.size());
    for (const Token& t : file.ts.tokens) {
      if (!t.directive) toks.push_back(t);
    }

    std::vector<Scope> scopes;
    auto current = [&]() {
      return scopes.empty() ? Scope::kNamespace : scopes.back();
    };

    // What the *next* `{` opens, decided by the tokens seen since the
    // last statement boundary at this level.
    bool pending_namespace = false;
    bool pending_class = false;
    bool pending_function = false;
    bool pending_init = false;

    std::vector<Token> stmt;  // namespace-scope statement buffer
    std::size_t paren_depth = 0;

    auto reset_pendings = [&] {
      pending_namespace = pending_class = pending_function =
          pending_init = false;
    };

    auto classify_statement = [&](bool ends_in_brace) {
      if (current() != Scope::kNamespace) {
        stmt.clear();
        return;
      }
      // `Type name{init};` reaches here at the `{` with the declarator
      // in the buffer; `Type name = init;` at the `;`.
      std::string name = mutable_variable_name(stmt);
      if (!name.empty() &&
          !(ends_in_brace && (pending_namespace || pending_class ||
                              pending_function))) {
        reporter.report(
            fi, stmt.back().line, "mutable-global",
            "mutable namespace-scope variable '" + name +
                "'; const-qualify it, scope it to a function argument, "
                "or justify it with TRACON_ANALYZE_ALLOW");
      }
      stmt.clear();
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];

      // Parenthesized regions (parameter lists, call arguments) get no
      // scope/statement treatment: a `= {}` default argument or a
      // lambda body in there must not derail the brace tracking.
      if (t.kind == TokKind::kPunct && t.text == "(") {
        ++paren_depth;
        if (current() == Scope::kNamespace) stmt.push_back(t);
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == ")") {
        if (paren_depth > 0) --paren_depth;
        if (paren_depth == 0 && current() == Scope::kNamespace &&
            !pending_class && !pending_init) {
          pending_function = true;
        }
        if (current() == Scope::kNamespace) stmt.push_back(t);
        continue;
      }
      if (paren_depth > 0) {
        if (current() == Scope::kNamespace) stmt.push_back(t);
        continue;
      }

      if (t.kind == TokKind::kPunct && t.text == "{") {
        if (current() == Scope::kNamespace) classify_statement(true);
        if (pending_namespace) {
          scopes.push_back(Scope::kNamespace);
        } else if (pending_class) {
          scopes.push_back(Scope::kClass);
        } else if (pending_function) {
          scopes.push_back(Scope::kFunction);
        } else if (current() == Scope::kFunction) {
          scopes.push_back(Scope::kFunction);
        } else {
          scopes.push_back(Scope::kInit);
        }
        reset_pendings();
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == "}") {
        if (!scopes.empty()) scopes.pop_back();
        stmt.clear();
        reset_pendings();
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == ";") {
        if (current() == Scope::kNamespace) classify_statement(false);
        stmt.clear();
        reset_pendings();
        continue;
      }

      if (t.kind == TokKind::kIdentifier) {
        if (t.text == "namespace") pending_namespace = true;
        if (t.text == "class" || t.text == "struct" || t.text == "union" ||
            t.text == "enum") {
          pending_class = true;
        }
        // Function-local static without a const marker before the
        // declarator ends.
        if (t.text == "static" && current() == Scope::kFunction) {
          bool is_const = false;
          std::size_t j = i + 1;
          std::size_t depth = 0;
          for (; j < toks.size(); ++j) {
            const Token& u = toks[j];
            if (u.kind == TokKind::kPunct) {
              if (u.text == "(" || u.text == "<" || u.text == "[") ++depth;
              if (u.text == ")" || u.text == ">" || u.text == "]") {
                if (depth > 0) --depth;
              }
              if (depth == 0 &&
                  (u.text == ";" || u.text == "{" || u.text == "=")) {
                break;
              }
            }
            if (u.kind == TokKind::kIdentifier &&
                is_const_marker(u.text)) {
              is_const = true;
              break;
            }
          }
          if (!is_const) {
            reporter.report(
                fi, t.line, "mutable-global",
                "mutable function-local static; make it const, hoist "
                "it into explicit state, or justify it with "
                "TRACON_ANALYZE_ALLOW");
          }
        }
      }
      if (t.kind == TokKind::kPunct && t.text == "=" &&
          current() == Scope::kNamespace) {
        pending_init = true;
        pending_function = false;
      }

      if (current() == Scope::kNamespace) stmt.push_back(t);
    }
  }
}

}  // namespace tracon::analyze
