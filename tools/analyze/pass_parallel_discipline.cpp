// parallel-discipline: the worker-pool contract (util/parallel.hpp)
// says every index of a parallel_for must touch only its own state —
// that is what makes the result independent of the thread count. PR 5
// enforced the perimeter dynamically (CI diffs --threads 1 vs 4) and
// lexically (tracon_lint's raw-thread quarantine); this pass checks
// the call sites themselves. Inside the lambda passed to
// parallel_for, any mutation whose base object was captured by
// reference must be shard-indexed (written through a subscript, e.g.
// states[i].outcome = ...) or declared locally inside the body.
// Everything else — a `total += x`, a `log.push_back(...)` on a shared
// vector — is a cross-shard race, reported at the mutation line.
//
// Scope: every parallel_for call site under src/ (which includes the
// sharded runner, src/sim/shard_*). Seeded violations live in
// tests/test_analyze.cpp.
#include "analyze/passes.hpp"

#include <set>

namespace tracon::analyze {

namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// Container/atomic member calls that mutate the receiver.
const std::set<std::string>& mutating_methods() {
  static const std::set<std::string> kMut = {
      "push_back", "emplace_back", "pop_back", "insert", "emplace",
      "erase", "clear", "resize", "assign", "store", "fetch_add",
      "fetch_sub", "exchange", "reset", "swap", "append", "merge",
      "push", "pop", "write", "observe", "inc", "add", "set", "record",
  };
  return kMut;
}

std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          const char* open_text, const char* close_text) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], open_text)) ++depth;
    if (is_punct(toks[i], close_text)) {
      if (--depth == 0) return i;
    }
  }
  return toks.size();
}

std::size_t match_backward(const std::vector<Token>& toks, std::size_t close,
                           const char* open_text, const char* close_text) {
  std::size_t depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (is_punct(toks[i], close_text)) ++depth;
    if (is_punct(toks[i], open_text)) {
      if (--depth == 0) return i;
    }
  }
  return 0;
}

struct Chain {
  std::string base;         ///< leftmost identifier of the postfix chain
  bool subscripted = false; ///< a [...] appears anywhere in the chain
  std::size_t line = 0;
};

/// Walks left from `end` (inclusive) across a postfix expression
/// (identifiers, ., ->, ::, balanced [] and ()) and returns its base.
Chain walk_chain_left(const std::vector<Token>& toks, std::size_t end) {
  Chain c;
  std::size_t i = end + 1;
  bool expect_name = true;  // next-left token should end a sub-expression
  while (i-- > 0) {
    const Token& t = toks[i];
    if (is_punct(t, "]")) {
      c.subscripted = true;
      std::size_t open = match_backward(toks, i, "[", "]");
      if (open == 0 && !is_punct(toks[0], "[")) return c;
      i = open;
      expect_name = true;
      continue;
    }
    if (is_punct(t, ")")) {
      std::size_t open = match_backward(toks, i, "(", ")");
      if (open == 0 && !is_punct(toks[0], "(")) return c;
      i = open;
      expect_name = true;
      continue;
    }
    if (t.kind == TokKind::kIdentifier && expect_name) {
      c.base = t.text;
      c.line = t.line;
      expect_name = false;
      continue;
    }
    if (t.kind == TokKind::kPunct &&
        (t.text == "." || t.text == "->" || t.text == "::")) {
      expect_name = true;
      continue;
    }
    // (*p).x, *out — a dereference still names the same object.
    if (is_punct(t, "*") && expect_name) continue;
    break;
  }
  return c;
}

/// Walks right from `start` across `ident (:: . -> ident | [..])*`.
Chain walk_chain_right(const std::vector<Token>& toks, std::size_t start,
                       std::size_t limit) {
  Chain c;
  std::size_t i = start;
  while (i < limit && is_punct(toks[i], "*")) ++i;  // ++*it
  if (i >= limit || toks[i].kind != TokKind::kIdentifier) return c;
  c.base = toks[i].text;
  c.line = toks[i].line;
  ++i;
  while (i < limit) {
    if (is_punct(toks[i], "[")) {
      c.subscripted = true;
      i = match_forward(toks, i, "[", "]") + 1;
      continue;
    }
    if (toks[i].kind == TokKind::kPunct &&
        (toks[i].text == "." || toks[i].text == "->" ||
         toks[i].text == "::")) {
      i += 2;
      continue;
    }
    break;
  }
  return c;
}

struct Lambda {
  bool default_ref = false;             ///< [&]
  std::set<std::string> ref_captures;   ///< [&name, ...]
  std::set<std::string> params;
  std::size_t body_begin = 0;           ///< index of `{`
  std::size_t body_end = 0;             ///< index of matching `}`
};

/// Parses the first lambda inside parallel_for's argument list
/// (tokens `open`..`close` = the call parens). Returns false when the
/// argument is not a visible lambda (a named functor — out of reach
/// for this pass).
bool parse_lambda(const std::vector<Token>& toks, std::size_t open,
                  std::size_t close, Lambda* out) {
  std::size_t cap = open + 1;
  while (cap < close && !is_punct(toks[cap], "[")) ++cap;
  if (cap >= close) return false;
  std::size_t cap_end = match_forward(toks, cap, "[", "]");
  if (cap_end >= close) return false;

  for (std::size_t i = cap + 1; i < cap_end; ++i) {
    if (is_punct(toks[i], "&")) {
      if (i + 1 < cap_end && toks[i + 1].kind == TokKind::kIdentifier) {
        out->ref_captures.insert(toks[i + 1].text);
        ++i;
      } else {
        out->default_ref = true;
      }
    }
  }

  std::size_t at = cap_end + 1;
  if (at < close && is_punct(toks[at], "(")) {
    std::size_t params_end = match_forward(toks, at, "(", ")");
    std::size_t last_ident = 0;
    bool have_ident = false;
    for (std::size_t i = at + 1; i < params_end && i < toks.size(); ++i) {
      if (toks[i].kind == TokKind::kIdentifier) {
        last_ident = i;
        have_ident = true;
      }
      if (is_punct(toks[i], ",") && have_ident) {
        out->params.insert(toks[last_ident].text);
        have_ident = false;
      }
    }
    if (have_ident) out->params.insert(toks[last_ident].text);
    at = params_end + 1;
  }
  while (at < close && !is_punct(toks[at], "{")) ++at;
  if (at >= close) return false;
  out->body_begin = at;
  out->body_end = match_forward(toks, at, "{", "}");
  return out->body_end < toks.size();
}

/// Names declared inside the body: an identifier preceded by a
/// type-ish token (identifier, >, *, &) and followed by =, {, ;, or a
/// range-for colon. Over-approximates on purpose — a false "local"
/// only mutes a finding, never invents one.
std::set<std::string> local_declarations(const std::vector<Token>& toks,
                                         std::size_t begin,
                                         std::size_t end) {
  std::set<std::string> locals;
  for (std::size_t i = begin + 1; i + 1 < end; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;
    const Token& prev = toks[i - 1];
    const Token& next = toks[i + 1];
    const bool typed_before =
        prev.kind == TokKind::kIdentifier ||
        (prev.kind == TokKind::kPunct &&
         (prev.text == ">" || prev.text == "*" || prev.text == "&"));
    const bool declarator_after =
        next.kind == TokKind::kPunct &&
        (next.text == "=" || next.text == "{" || next.text == ";" ||
         next.text == ":");
    if (typed_before && declarator_after) locals.insert(t.text);
  }
  return locals;
}

const char* const kAssignOps[] = {"=",  "+=", "-=", "*=", "/=",
                                  "%=", "&=", "|=", "^="};

bool is_assign_op(const Token& t) {
  if (t.kind != TokKind::kPunct) return false;
  for (const char* op : kAssignOps) {
    if (t.text == op) return true;
  }
  return false;
}

}  // namespace

void pass_parallel_discipline(const Project& project, Reporter& reporter) {
  for (std::size_t fi = 0; fi < project.files().size(); ++fi) {
    const FileIndex& file = project.files()[fi];
    if (file.path.rfind("src/", 0) != 0) continue;
    const std::vector<Token>& toks = file.ts.tokens;

    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdentifier ||
          toks[i].text != "parallel_for" || toks[i].directive) {
        continue;
      }
      if (!is_punct(toks[i + 1], "(")) continue;
      std::size_t close = match_forward(toks, i + 1, "(", ")");
      if (close >= toks.size()) continue;

      Lambda lam;
      if (!parse_lambda(toks, i + 1, close, &lam)) continue;
      std::set<std::string> locals =
          local_declarations(toks, lam.body_begin, lam.body_end);

      auto captured_by_ref = [&](const std::string& name) {
        if (lam.ref_captures.count(name)) return true;
        return lam.default_ref && !lam.params.count(name) &&
               !locals.count(name);
      };
      auto check = [&](const Chain& c, const std::string& how) {
        if (c.base.empty() || c.subscripted) return;
        if (lam.params.count(c.base) || locals.count(c.base)) return;
        if (!captured_by_ref(c.base)) return;
        reporter.report(
            fi, c.line, "parallel-discipline",
            "parallel_for body " + how + " '" + c.base +
                "', which is captured by reference but neither "
                "shard-indexed nor local to the body; give each index "
                "its own slot (e.g. " + c.base + "[i]) or justify with "
                "TRACON_ANALYZE_ALLOW");
      };

      for (std::size_t b = lam.body_begin + 1; b < lam.body_end; ++b) {
        const Token& t = toks[b];
        if (is_assign_op(t) && b > 0) {
          check(walk_chain_left(toks, b - 1), "assigns to");
          continue;
        }
        if (t.kind == TokKind::kPunct &&
            (t.text == "++" || t.text == "--")) {
          Chain right = walk_chain_right(toks, b + 1, lam.body_end);
          if (!right.base.empty()) {
            check(right, "increments");
          } else if (b > 0) {
            check(walk_chain_left(toks, b - 1), "increments");
          }
          continue;
        }
        if (t.kind == TokKind::kIdentifier &&
            mutating_methods().count(t.text) && b + 1 < lam.body_end &&
            is_punct(toks[b + 1], "(") && b >= 2 &&
            toks[b - 1].kind == TokKind::kPunct &&
            (toks[b - 1].text == "." || toks[b - 1].text == "->")) {
          check(walk_chain_left(toks, b - 2), "calls mutating method " +
                                                  t.text + "() on");
        }
      }
    }
  }
}

}  // namespace tracon::analyze
