// tracon_analyze — semantic static analysis for the TRACON tree.
//
// Usage: tracon_analyze [REPO_ROOT] [options]
//   REPO_ROOT            tree to scan (default: current directory);
//                        scans REPO_ROOT/{src,tools,bench,tests}
//   --rule NAME          run only this rule (repeatable)
//   --json FILE          also write the SARIF-lite JSON report to FILE
//                        ("-" for stdout instead of the text report)
//   --list-rules         print the rule catalog and exit
//   -h, --help           this text
//
// Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/IO error.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/analysis.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: tracon_analyze [REPO_ROOT] [--rule NAME]... [--json FILE]"
        " [--list-rules]\n"
        "Semantic static analysis: layering, mutable-global,\n"
        "determinism-taint, parallel-discipline. Suppress a finding with\n"
        "a comment on the same or preceding line:\n"
        "  // TRACON_ANALYZE_ALLOW(rule): reason\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path;
  std::vector<std::string> rules;
  bool root_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      print_usage(std::cout);
      return 0;
    }
    if (arg == "--list-rules") {
      for (const auto& rule : tracon::analyze::rule_catalog()) {
        std::cout << rule.name << "  " << rule.summary << "\n";
      }
      return 0;
    }
    if (arg == "--rule") {
      if (i + 1 >= argc) {
        std::cerr << "tracon_analyze: --rule needs a name\n";
        return 2;
      }
      rules.push_back(argv[++i]);
      continue;
    }
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "tracon_analyze: --json needs a file\n";
        return 2;
      }
      json_path = argv[++i];
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "tracon_analyze: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    }
    if (root_set) {
      std::cerr << "tracon_analyze: more than one root given\n";
      return 2;
    }
    root = arg;
    root_set = true;
  }

  for (const std::string& rule : rules) {
    bool known = false;
    for (const auto& info : tracon::analyze::rule_catalog()) {
      known = known || info.name == rule;
    }
    if (!known) {
      std::cerr << "tracon_analyze: unknown rule '" << rule
                << "' (see --list-rules)\n";
      return 2;
    }
  }

  std::vector<tracon::analyze::SourceFile> sources =
      tracon::analyze::load_tree(root);
  if (sources.empty()) {
    std::cerr << "tracon_analyze: no sources under '" << root
              << "' (expected src/, tools/, bench/, tests/)\n";
    return 2;
  }

  tracon::analyze::Project project(std::move(sources));
  tracon::analyze::AnalysisResult result =
      tracon::analyze::run_passes(project, rules);

  if (json_path == "-") {
    std::cout << tracon::analyze::render_json(result);
  } else {
    if (!json_path.empty()) {
      std::ofstream out(json_path, std::ios::binary);
      if (!out) {
        std::cerr << "tracon_analyze: cannot write '" << json_path << "'\n";
        return 2;
      }
      out << tracon::analyze::render_json(result);
    }
    std::cout << tracon::analyze::render_text(result);
  }
  return result.findings.empty() ? 0 : 1;
}
