#include "analyze/analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <tuple>

#include "analyze/passes.hpp"

namespace tracon::analyze {

namespace {

/// True when `text` contains a *valid* allow tag for `rule`:
/// TRACON_ANALYZE_ALLOW(rule): reason — reason non-empty, because a
/// suppression without a justification is indistinguishable from a
/// rubber stamp.
bool has_allow_tag(const std::string& text, const std::string& rule) {
  const std::string tag = "TRACON_ANALYZE_ALLOW(" + rule + ")";
  std::size_t at = text.find(tag);
  if (at == std::string::npos) return false;
  std::size_t rest = at + tag.size();
  while (rest < text.size() &&
         (text[rest] == ' ' || text[rest] == '\t')) {
    ++rest;
  }
  if (rest >= text.size() || text[rest] != ':') return false;
  ++rest;
  while (rest < text.size() &&
         (text[rest] == ' ' || text[rest] == '\t')) {
    ++rest;
  }
  return rest < text.size();  // at least one reason character
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kRules = {
      {"layering",
       "module includes must follow the layer DAG (no upward or "
       "same-layer cross edges, no include cycles)"},
      {"mutable-global",
       "no non-const namespace-scope variables or non-const static "
       "locals in src/"},
      {"determinism-taint",
       "no nondeterminism source (wall clock, global RNG, unordered "
       "iteration, pointer-keyed ordering, thread identity) may share "
       "a translation unit with an emitter (src/obs, src/replay, "
       "src/runstore)"},
      {"parallel-discipline",
       "parallel_for bodies may mutate by-reference captures only "
       "through shard indexing or local declarations"},
  };
  return kRules;
}

Project::Project(std::vector<SourceFile> files) {
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  files_.reserve(files.size());
  for (SourceFile& f : files) {
    FileIndex fi;
    fi.path = std::move(f.path);
    fi.module = module_of(fi.path);
    fi.ts = tokenize(f.content);
    const std::vector<Token>& toks = fi.ts.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].kind == TokKind::kPunct && toks[i].text == "#" &&
          toks[i + 1].kind == TokKind::kIdentifier &&
          toks[i + 1].text == "include" &&
          toks[i + 2].kind == TokKind::kString) {
        fi.includes.push_back({toks[i + 2].text, toks[i + 2].line});
      }
    }
    files_.push_back(std::move(fi));
  }

  std::vector<std::string> paths;
  std::vector<std::vector<QuotedInclude>> quoted;
  paths.reserve(files_.size());
  quoted.reserve(files_.size());
  for (const FileIndex& fi : files_) {
    paths.push_back(fi.path);
    quoted.push_back(fi.includes);
  }
  graph_ = IncludeGraph::build(paths, quoted);
}

std::size_t Project::index_of(const std::string& path) const {
  auto it = std::lower_bound(
      files_.begin(), files_.end(), path,
      [](const FileIndex& f, const std::string& p) { return f.path < p; });
  if (it != files_.end() && it->path == path) {
    return static_cast<std::size_t>(it - files_.begin());
  }
  return files_.size();
}

bool Project::suppressed(std::size_t file, const std::string& rule,
                         std::size_t line) const {
  if (file >= files_.size()) return false;
  // A tag suppresses findings on its own line, or — so a multi-line
  // justification can precede the code — anywhere in the contiguous
  // comment block ending on the line above the finding.
  std::vector<bool> commented;
  for (const CommentLine& c : files_[file].ts.comments) {
    if (c.line >= commented.size()) commented.resize(c.line + 1, false);
    commented[c.line] = true;
  }
  auto is_comment = [&](std::size_t l) {
    return l < commented.size() && commented[l];
  };
  for (const CommentLine& c : files_[file].ts.comments) {
    if (!has_allow_tag(c.text, rule)) continue;
    if (c.line == line) return true;
    if (c.line >= line) continue;
    bool contiguous = true;
    for (std::size_t l = c.line; contiguous && l + 1 < line; ) {
      ++l;
      contiguous = is_comment(l);
    }
    if (contiguous) return true;
  }
  return false;
}

void Reporter::report(std::size_t file, std::size_t line,
                      const std::string& rule, std::string message) {
  if (project_.suppressed(file, rule, line)) {
    ++suppressed_;
    return;
  }
  findings_.push_back(
      {project_.files()[file].path, line, rule, std::move(message)});
}

std::vector<Finding> Reporter::take_findings() {
  return std::move(findings_);
}

AnalysisResult run_passes(const Project& project,
                          const std::vector<std::string>& rules) {
  auto wants = [&](const char* rule) {
    return rules.empty() ||
           std::find(rules.begin(), rules.end(), rule) != rules.end();
  };
  Reporter reporter(project);
  if (wants("layering")) pass_layering(project, reporter);
  if (wants("mutable-global")) pass_mutable_global(project, reporter);
  if (wants("determinism-taint")) pass_determinism_taint(project, reporter);
  if (wants("parallel-discipline")) {
    pass_parallel_discipline(project, reporter);
  }

  AnalysisResult result;
  result.suppressed = reporter.suppressed_count();
  result.files_scanned = project.files().size();
  result.findings = reporter.take_findings();
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  result.findings.erase(
      std::unique(result.findings.begin(), result.findings.end(),
                  [](const Finding& a, const Finding& b) {
                    return std::tie(a.file, a.line, a.rule, a.message) ==
                           std::tie(b.file, b.line, b.rule, b.message);
                  }),
      result.findings.end());
  return result;
}

std::vector<SourceFile> load_tree(const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  for (const char* top : {"src", "tools", "bench", "tests"}) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp") continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      files.push_back(
          {fs::relative(entry.path(), root).generic_string(), buf.str()});
    }
  }
  return files;  // Project() sorts
}

std::string render_text(const AnalysisResult& result) {
  std::string out;
  for (const Finding& f : result.findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  out += "tracon_analyze: " + std::to_string(result.findings.size()) +
         " finding(s), " + std::to_string(result.suppressed) +
         " suppressed, " + std::to_string(result.files_scanned) +
         " files\n";
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string render_json(const AnalysisResult& result) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"tracon.analyze_report/1\",\n";
  out += "  \"tool\": {\"name\": \"tracon_analyze\", \"version\": 1},\n";
  out += "  \"rules\": [\n";
  const std::vector<RuleInfo>& rules = rule_catalog();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += "    {\"name\": \"" + json_escape(rules[i].name) +
           "\", \"summary\": \"" + json_escape(rules[i].summary) + "\"}";
    out += i + 1 < rules.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"findings\": [\n";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    out += "    {\"file\": \"" + json_escape(f.file) +
           "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"" +
           json_escape(f.rule) + "\", \"message\": \"" +
           json_escape(f.message) + "\"}";
    out += i + 1 < result.findings.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"summary\": {\"files\": " +
         std::to_string(result.files_scanned) +
         ", \"findings\": " + std::to_string(result.findings.size()) +
         ", \"suppressed\": " + std::to_string(result.suppressed) + "}\n";
  out += "}\n";
  return out;
}

}  // namespace tracon::analyze
