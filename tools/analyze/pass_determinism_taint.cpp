// determinism-taint: the repo's headline contract is that every run
// replays bit-identically from its seed, so the bytes the system emits
// (metrics/trace/series/decision-log exports in src/obs, traces in
// src/replay, stored runs in src/runstore, migration plans in
// src/migrate) must never be downstream of a nondeterminism source. tracon_lint catches the obvious line hits in
// a fixed directory list; this pass instead catalogs sources anywhere
// in src/ and uses the include graph to decide whether each one can
// share a translation unit with an emitter — if it can, the tainted
// value has a compile-time path into reproducible output and the
// finding names the witness TU and emitter.
//
// Source catalog:
//   * global RNG / entropy: rand, srand, drand48, lrand48, mrand48,
//     rand_r, random (call syntax), std::random_device;
//   * wall clocks: time/clock (call syntax), gettimeofday,
//     clock_gettime, localtime, gmtime, timespec_get, ctime, asctime,
//     mktime, strftime, difftime, system_clock, steady_clock,
//     high_resolution_clock;
//   * environment: getenv (call syntax);
//   * iteration-order hazards: std::unordered_{map,set,multimap,
//     multiset} and pointer-keyed std::map/std::set (hash seeds and
//     heap addresses vary run to run);
//   * thread identity: this_thread.
#include "analyze/passes.hpp"

#include <map>
#include <set>

namespace tracon::analyze {

namespace {

/// Sources that only count with call syntax: `time(`, `rand(` — the
/// bare words are too common as fragments of ordinary identifiers'
/// neighbours (struct fields named `time`, locals named `random`).
const std::set<std::string>& call_sources() {
  static const std::set<std::string> kCalls = {
      "rand", "srand",  "drand48", "lrand48", "mrand48",
      "rand_r", "random", "time",  "clock",   "getenv",
  };
  return kCalls;
}

/// Sources where the bare identifier is already damning.
const std::set<std::string>& bare_sources() {
  static const std::set<std::string> kBare = {
      "random_device", "system_clock", "steady_clock",
      "high_resolution_clock", "gettimeofday", "clock_gettime",
      "localtime", "gmtime", "timespec_get", "ctime", "asctime",
      "mktime", "strftime", "difftime", "this_thread",
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset",
  };
  return kBare;
}

struct SourceHit {
  std::size_t line = 0;
  std::string what;  ///< the offending spelling, for the message
};

/// True when the first template argument after `map<`/`set<` ends in
/// `*` — iteration order of a pointer-keyed ordered container is heap
/// layout, not data.
bool pointer_keyed(const std::vector<Token>& toks, std::size_t open) {
  std::size_t depth = 1;
  bool last_was_star = false;
  for (std::size_t i = open + 1; i < toks.size() && depth > 0; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "<") ++depth;
      if (t.text == ">") {
        --depth;
        if (depth == 0) return last_was_star;
        continue;
      }
      if (t.text == "," && depth == 1) return last_was_star;
      last_was_star = t.text == "*";
      continue;
    }
    last_was_star = false;
  }
  return false;
}

std::vector<SourceHit> scan_sources(const std::vector<Token>& toks) {
  std::vector<SourceHit> hits;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;
    const Token* prev = i > 0 ? &toks[i - 1] : nullptr;
    const Token* next = i + 1 < toks.size() ? &toks[i + 1] : nullptr;
    const bool member_access =
        prev && prev->kind == TokKind::kPunct &&
        (prev->text == "." || prev->text == "->");
    if (bare_sources().count(t.text) && !member_access) {
      hits.push_back({t.line, t.text});
      continue;
    }
    // An identifier directly before (other than `return`) makes this a
    // declarator — `double clock();` declares a method, not a call.
    const bool declarator =
        prev && prev->kind == TokKind::kIdentifier && prev->text != "return";
    if (call_sources().count(t.text) && !member_access && !declarator &&
        next && next->kind == TokKind::kPunct && next->text == "(") {
      hits.push_back({t.line, t.text + "()"});
      continue;
    }
    if ((t.text == "map" || t.text == "set") && next &&
        next->kind == TokKind::kPunct && next->text == "<" &&
        pointer_keyed(toks, i + 1)) {
      hits.push_back({t.line, "pointer-keyed std::" + t.text});
    }
  }
  return hits;
}

}  // namespace

void pass_determinism_taint(const Project& project, Reporter& reporter) {
  const std::vector<FileIndex>& files = project.files();
  const IncludeGraph& graph = project.graph();

  // Emitters: the modules whose output bytes are contractually stable.
  std::vector<bool> is_emitter(files.size(), false);
  for (std::size_t i = 0; i < files.size(); ++i) {
    const std::string& m = files[i].module;
    is_emitter[i] = files[i].path.rfind("src/", 0) == 0 &&
                    (m == "obs" || m == "replay" || m == "runstore" ||
                     m == "migrate");
  }

  // For every translation unit, the closure and whether it reaches an
  // emitter; then invert into "which emitter-reaching TUs contain file
  // F". TU roots are .cpp files anywhere in the project — a tainted
  // header is a problem wherever it gets compiled.
  struct Witness {
    std::size_t tu;
    std::size_t emitter;
  };
  std::map<std::size_t, Witness> witness_for;  // file -> smallest witness
  for (std::size_t tu = 0; tu < files.size(); ++tu) {
    const std::string& p = files[tu].path;
    if (p.size() < 4 || p.compare(p.size() - 4, 4, ".cpp") != 0) continue;
    std::vector<std::size_t> closure = graph.reachable(tu);
    std::size_t emitter = files.size();
    for (std::size_t member : closure) {
      if (is_emitter[member]) {
        emitter = member;  // closure is sorted: first hit is smallest
        break;
      }
    }
    if (emitter == files.size()) continue;
    for (std::size_t member : closure) {
      auto it = witness_for.find(member);
      // Files are sorted by path, so the smallest tu index is also the
      // lexicographically smallest witness path.
      if (it == witness_for.end()) {
        witness_for.emplace(member, Witness{tu, emitter});
      }
    }
  }

  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files[i].path.rfind("src/", 0) != 0) continue;
    auto wit = witness_for.find(i);
    if (wit == witness_for.end()) continue;  // never meets an emitter
    for (const SourceHit& hit : scan_sources(files[i].ts.tokens)) {
      reporter.report(
          i, hit.line, "determinism-taint",
          "nondeterminism source '" + hit.what + "' reaches emitter '" +
              files[wit->second.emitter].path +
              "' through translation unit '" +
              files[wit->second.tu].path +
              "'; thread a seeded tracon::Rng / virtual clock / "
              "ordered container through instead");
    }
  }
}

}  // namespace tracon::analyze
