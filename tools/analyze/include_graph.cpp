#include "analyze/include_graph.hpp"

#include <algorithm>
#include <map>

namespace tracon::analyze {

namespace {

/// "src/sim/x.cpp" -> "sim"; "tools/lint/x.cpp" -> "tools".
std::string dir_of(const std::string& path) {
  std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

/// Lexically normalizes "a/b/../c" and "a/./c" (enough for sibling
/// includes; the tree never spells anything fancier).
std::string normalize(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  auto flush = [&] {
    if (cur.empty() || cur == ".") {
      cur.clear();
      return;
    }
    if (cur == ".." && !parts.empty() && parts.back() != "..") {
      parts.pop_back();
    } else {
      parts.push_back(cur);
    }
    cur.clear();
  };
  for (char c : path) {
    if (c == '/') {
      flush();
    } else {
      cur += c;
    }
  }
  flush();
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += '/';
    out += p;
  }
  return out;
}

}  // namespace

std::string module_of(const std::string& path) {
  if (path.rfind("src/", 0) == 0) {
    std::size_t slash = path.find('/', 4);
    if (slash == std::string::npos) return std::string();
    return path.substr(4, slash - 4);
  }
  for (const char* root : {"tools", "tests", "bench", "examples"}) {
    std::string prefix = std::string(root) + "/";
    if (path.rfind(prefix, 0) == 0) return root;
  }
  return std::string();
}

int layer_rank(const std::string& module) {
  static const std::map<std::string, int> kRanks = {
      {"util", 0},     {"obs", 1},      {"stats", 2},    {"virt", 2},
      {"workload", 3}, {"monitor", 3},  {"model", 4},    {"sched", 5},
      {"migrate", 6},  {"sim", 7},      {"replay", 8},   {"runstore", 8},
      {"core", 9},     {"tools", 10},   {"bench", 10},   {"examples", 10},
      {"tests", 11},
  };
  auto it = kRanks.find(module);
  return it == kRanks.end() ? -1 : it->second;
}

IncludeGraph IncludeGraph::build(
    const std::vector<std::string>& paths,
    const std::vector<std::vector<QuotedInclude>>& quoted) {
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < paths.size(); ++i) index[paths[i]] = i;

  IncludeGraph g;
  g.edges_.resize(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const std::string dir = dir_of(paths[i]);
    for (const QuotedInclude& inc : quoted[i]) {
      // Quoted-include resolution order: includer's directory, then
      // the two -I roots the build configures (src/, tools/).
      std::size_t to = paths.size();
      for (const std::string& candidate :
           {dir.empty() ? inc.path : normalize(dir + "/" + inc.path),
            "src/" + inc.path, "tools/" + inc.path}) {
        auto it = index.find(candidate);
        if (it != index.end()) {
          to = it->second;
          break;
        }
      }
      if (to == paths.size()) continue;  // system or generated header
      g.edges_[i].push_back({to, inc.line, inc.path});
    }
  }
  return g;
}

std::vector<std::size_t> IncludeGraph::reachable(std::size_t root) const {
  std::vector<bool> seen(edges_.size(), false);
  std::vector<std::size_t> stack = {root};
  seen[root] = true;
  while (!stack.empty()) {
    std::size_t at = stack.back();
    stack.pop_back();
    for (const IncludeEdge& e : edges_[at]) {
      if (!seen[e.to]) {
        seen[e.to] = true;
        stack.push_back(e.to);
      }
    }
  }
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (seen[i]) out.push_back(i);
  }
  return out;
}

std::vector<std::vector<std::size_t>> IncludeGraph::cycles() const {
  // Iterative Tarjan SCC. Node order is the (sorted) file order, so
  // component discovery — and therefore output — is deterministic.
  const std::size_t n = edges_.size();
  const std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> index(n, kUnvisited), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> scc_stack;
  std::size_t next_index = 0;
  std::vector<std::vector<std::size_t>> components;

  struct Frame {
    std::size_t node;
    std::size_t edge;  // next out-edge to explore
  };

  for (std::size_t start = 0; start < n; ++start) {
    if (index[start] != kUnvisited) continue;
    std::vector<Frame> frames = {{start, 0}};
    index[start] = low[start] = next_index++;
    scc_stack.push_back(start);
    on_stack[start] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < edges_[f.node].size()) {
        std::size_t to = edges_[f.node][f.edge].to;
        ++f.edge;
        if (index[to] == kUnvisited) {
          index[to] = low[to] = next_index++;
          scc_stack.push_back(to);
          on_stack[to] = true;
          frames.push_back({to, 0});
        } else if (on_stack[to]) {
          low[f.node] = std::min(low[f.node], index[to]);
        }
        continue;
      }
      // Node finished.
      if (low[f.node] == index[f.node]) {
        std::vector<std::size_t> comp;
        for (;;) {
          std::size_t m = scc_stack.back();
          scc_stack.pop_back();
          on_stack[m] = false;
          comp.push_back(m);
          if (m == f.node) break;
        }
        bool self_loop = false;
        for (const IncludeEdge& e : edges_[f.node]) {
          if (e.to == f.node) self_loop = true;
        }
        if (comp.size() > 1 || self_loop) {
          std::sort(comp.begin(), comp.end());
          components.push_back(std::move(comp));
        }
      }
      std::size_t done = f.node;
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().node] = std::min(low[frames.back().node], low[done]);
      }
    }
  }
  std::sort(components.begin(), components.end());
  return components;
}

}  // namespace tracon::analyze
