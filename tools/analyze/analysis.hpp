// tracon_analyze: semantic static-analysis framework for the TRACON
// tree. Where tracon_lint matches line regexes, this layer parses —
// a real token stream (tools/analyze/tokenizer.hpp), the project
// include graph (tools/analyze/include_graph.hpp), and a per-file
// symbol scan — and feeds a pass pipeline that enforces the repo's two
// architectural contracts statically:
//
//   layering             the module DAG (util -> obs -> stats/virt ->
//                        workload/monitor -> model -> sched -> sim ->
//                        replay/runstore -> core -> tools) admits no
//                        upward or same-layer cross includes, and the
//                        include graph admits no cycles.
//   mutable-global       non-const namespace-scope variables and
//                        non-const static locals are forbidden in src/
//                        — shared mutable state is how `--threads N`
//                        stops being byte-identical to `--threads 1`.
//   determinism-taint    a nondeterminism source (wall clock, global
//                        RNG, unordered-container iteration order,
//                        pointer-keyed std::map/std::set ordering,
//                        thread identity) anywhere in src/ is an error
//                        when the include graph shows it can share a
//                        translation unit with an emitter (src/obs,
//                        src/replay, src/runstore — the code whose
//                        bytes are contractually reproducible).
//   parallel-discipline  inside every `parallel_for` call site, state
//                        captured by reference must be shard-indexed
//                        (written through `[i]`) or locally declared;
//                        anything else is a cross-shard race that the
//                        determinism CI sweep may or may not catch.
//
// A finding is suppressed by a comment of the form
//
//   // TRACON_ANALYZE_ALLOW(rule): reason
//
// on the same line, or anywhere in the contiguous comment block that
// ends on the line directly above the finding. The reason is
// mandatory: an allow tag without one does not suppress.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "analyze/include_graph.hpp"
#include "analyze/tokenizer.hpp"

namespace tracon::analyze {

struct SourceFile {
  std::string path;  ///< repo-relative, POSIX separators
  std::string content;
};

struct Finding {
  std::string file;
  std::size_t line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string name;
  std::string summary;
};

/// The four passes, in pipeline order.
const std::vector<RuleInfo>& rule_catalog();

/// Parsed, indexed view of a file: tokens, per-line comments, quoted
/// includes, and its module in the layer DAG.
struct FileIndex {
  std::string path;
  std::string module;
  TokenStream ts;
  std::vector<QuotedInclude> includes;
};

/// Immutable project snapshot shared by every pass. Construction
/// tokenizes all files and builds the include graph; files are kept in
/// sorted path order so everything downstream is deterministic.
class Project {
 public:
  explicit Project(std::vector<SourceFile> files);

  const std::vector<FileIndex>& files() const { return files_; }
  const IncludeGraph& graph() const { return graph_; }

  /// Index of `path`, or files().size() when absent.
  std::size_t index_of(const std::string& path) const;

  /// True when a valid TRACON_ANALYZE_ALLOW(rule): reason comment
  /// covers `line` in file `file` (same line, or in the contiguous
  /// comment block ending on the line above).
  bool suppressed(std::size_t file, const std::string& rule,
                  std::size_t line) const;

 private:
  std::vector<FileIndex> files_;
  IncludeGraph graph_;
};

/// Collects findings for the passes, applying suppressions centrally
/// so every rule honors the same allow syntax.
class Reporter {
 public:
  explicit Reporter(const Project& project) : project_(project) {}

  void report(std::size_t file, std::size_t line, const std::string& rule,
              std::string message);

  std::vector<Finding> take_findings();
  std::size_t suppressed_count() const { return suppressed_; }

 private:
  const Project& project_;
  std::vector<Finding> findings_;
  std::size_t suppressed_ = 0;
};

struct AnalysisResult {
  std::vector<Finding> findings;  ///< sorted by (file, line, rule, message)
  std::size_t suppressed = 0;
  std::size_t files_scanned = 0;
};

/// Runs every pass (or only `rules`, when non-empty — names as in
/// rule_catalog()) and returns deterministic, sorted results.
AnalysisResult run_passes(const Project& project,
                          const std::vector<std::string>& rules = {});

/// Loads every .hpp/.cpp under root/{src,tools,bench,tests}, sorted.
std::vector<SourceFile> load_tree(const std::filesystem::path& root);

/// Compiler-style diagnostics plus a one-line summary.
std::string render_text(const AnalysisResult& result);

/// SARIF-lite JSON: schema tag, rule catalog, sorted findings, and a
/// summary block. Byte-deterministic for a given tree.
std::string render_json(const AnalysisResult& result);

}  // namespace tracon::analyze
