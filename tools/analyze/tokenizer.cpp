#include "analyze/tokenizer.hpp"

#include <cctype>

namespace tracon::analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators the passes care about, longest first.
/// `<` and `>` deliberately stay single characters (never `<<`/`>>`)
/// so template argument lists can be scanned by bracket matching.
const char* const kMultiPunct[] = {
    "::", "->", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=",
    "%=", "&=", "|=", "^=", "++", "--", "&&", "||", "...",
};

}  // namespace

TokenStream tokenize(const std::string& src) {
  TokenStream out;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  // After `# include` the next <...> is a header-name, not a pile of
  // comparison operators. Reset at each newline.
  bool pending_include = false;
  // A `#` opening a logical line starts a directive; the directive
  // (and the flag) survives backslash-spliced continuations.
  bool in_directive = false;
  bool line_has_token = false;

  auto push = [&](TokKind kind, std::string text, std::size_t at_line) {
    out.tokens.push_back({kind, std::move(text), at_line, in_directive});
    line_has_token = true;
  };

  auto add_comment_text = [&](std::size_t at_line, const std::string& text) {
    out.comments.push_back({at_line, text});
  };

  while (i < n) {
    char c = src[i];
    char next = i + 1 < n ? src[i + 1] : '\0';

    if (c == '\n') {
      ++line;
      ++i;
      pending_include = false;
      in_directive = false;
      line_has_token = false;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Line splice: the directive (and any literal) continues.
    if (c == '\\' && next == '\n') {
      ++line;
      i += 2;
      continue;
    }

    if (c == '/' && next == '/') {
      std::size_t start = i + 2;
      while (i < n && src[i] != '\n') ++i;
      add_comment_text(line, src.substr(start, i - start));
      continue;  // newline handled above
    }
    if (c == '/' && next == '*') {
      i += 2;
      std::size_t seg_start = i;
      while (i < n && !(src[i] == '*' && i + 1 < n && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          add_comment_text(line, src.substr(seg_start, i - seg_start));
          ++line;
          seg_start = i + 1;
        }
        ++i;
      }
      add_comment_text(line, src.substr(seg_start, i - seg_start));
      if (i < n) i += 2;  // consume */
      continue;
    }

    // Raw string literal: [prefix]R"delim( ... )delim". The prefix, if
    // any, was already consumed as part of an identifier ending in R —
    // handled below in the identifier branch.
    if (c == 'R' && next == '"') {
      std::size_t start_line = line;
      std::size_t d = i + 2;
      std::string delim;
      while (d < n && src[d] != '(' && src[d] != '\n') delim += src[d++];
      if (d < n && src[d] == '(') {
        const std::string close = ")" + delim + "\"";
        std::size_t body = d + 1;
        std::size_t end = src.find(close, body);
        if (end == std::string::npos) end = n;
        std::string content = src.substr(body, end - body);
        for (char b : content)
          if (b == '\n') ++line;
        push(TokKind::kString, std::move(content), start_line);
        i = end == n ? n : end + close.size();
        continue;
      }
      // Not actually a raw string (e.g. `R"` at EOF); fall through and
      // emit `R` as an identifier below.
    }

    if (c == '"') {
      std::size_t start_line = line;
      std::string content;
      ++i;
      while (i < n && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < n) {
          content += src[i];
          content += src[i + 1];
          if (src[i + 1] == '\n') ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') {
          ++line;  // unterminated; keep line counts right
          break;
        }
        content += src[i++];
      }
      if (i < n && src[i] == '"') ++i;
      push(TokKind::kString, std::move(content), start_line);
      continue;
    }

    if (c == '\'') {
      std::size_t start_line = line;
      std::string content;
      ++i;
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\' && i + 1 < n) {
          content += src[i];
          content += src[i + 1];
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        content += src[i++];
      }
      if (i < n && src[i] == '\'') ++i;
      push(TokKind::kChar, std::move(content), start_line);
      continue;
    }

    if (pending_include && c == '<') {
      std::size_t end = i + 1;
      while (end < n && src[end] != '>' && src[end] != '\n') ++end;
      push(TokKind::kHeaderName, src.substr(i + 1, end - i - 1), line);
      i = end < n && src[end] == '>' ? end + 1 : end;
      pending_include = false;
      continue;
    }

    if (ident_start(c)) {
      std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      std::string word = src.substr(start, i - start);
      // Raw-string prefix (R, LR, uR, u8R, UR) glued to a quote:
      // rewind to the trailing R so the raw-string branch consumes the
      // literal; the encoding prefix itself is not worth a token.
      if (i < n && src[i] == '"' &&
          (word == "R" || word == "LR" || word == "uR" || word == "u8R" ||
           word == "UR")) {
        i = start + word.size() - 1;
        continue;
      }
      if (word == "include" && !out.tokens.empty() &&
          out.tokens.back().kind == TokKind::kPunct &&
          out.tokens.back().text == "#") {
        pending_include = true;
      }
      push(TokKind::kIdentifier, std::move(word), line);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(next)))) {
      std::size_t start = i;
      ++i;
      while (i < n) {
        char d = src[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++i;
          continue;
        }
        // Exponent sign: 1e-3, 0x1p+4
        if ((d == '+' || d == '-') && i > start) {
          char prev = src[i - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++i;
            continue;
          }
        }
        break;
      }
      push(TokKind::kNumber, src.substr(start, i - start), line);
      continue;
    }

    // Punctuation: longest multi-char match first.
    bool matched = false;
    for (const char* op : kMultiPunct) {
      std::size_t len = std::string::traits_type::length(op);
      if (src.compare(i, len, op) == 0) {
        push(TokKind::kPunct, op, line);
        i += len;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    if (c == '#' && !line_has_token) in_directive = true;
    push(TokKind::kPunct, std::string(1, c), line);
    ++i;
  }
  return out;
}

}  // namespace tracon::analyze
