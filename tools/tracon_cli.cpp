// tracon — command-line front end to the TRACON library.
//
// Subcommands:
//   tracon table1                reproduce the interference micro-table
//   tracon matrix                pairwise slowdown / IOPS-retention matrix
//   tracon predict               model vs measured for one app pair
//   tracon static                schedule a batch and report Speedup/IOBoost
//   tracon dynamic               Poisson-arrival cluster simulation
//   tracon record                dynamic run that also writes an arrival
//                                trace (--out) and stores the run (--store)
//   tracon replay                re-run a recorded trace (--trace) under
//                                any --scheduler; stores the run
//   tracon runs                  list the runs in a run store
//   tracon report A B            A/B diff of two stored runs by id prefix
//                                (counters, latency, model accuracy, and —
//                                when both runs stored a snapshot series —
//                                per-window divergence);
//                                --json for machine-readable output
//   tracon timeline              render a tracon.metrics_series file
//                                (--series FILE) or a stored run's series
//                                (<run-id-prefix> [--store DIR]) as an
//                                aligned per-window table; --json,
//                                --metric SUBSTR to filter columns
//   tracon explain TASK          why one placement happened: the
//                                candidate slots scanned, per-family
//                                predictions, confidence weights, and
//                                margin for task TASK, plus the joined
//                                outcome; reads --decisions FILE or a
//                                stored run (<run-id-prefix> [--store])
//   tracon attribution           decision quality for a whole run:
//                                per-co-location-pair realized-slowdown
//                                heatmap and worst-mispredicts table
//                                (--top N, default 10); --json for
//                                machine-readable output
//   tracon breakdown             latency accounting for a whole run:
//                                every completed task's end-to-end
//                                latency decomposed into wait + solo +
//                                interference + migration, aggregated
//                                per app class (and per window with
//                                --window S); reads --spans FILE or a
//                                stored run (<run-id-prefix> [--store]);
//                                --json for machine-readable output
//   tracon critical-path         the chain of tasks that set the
//                                makespan: walk back from the last
//                                completion through each same-machine
//                                predecessor; same sources as breakdown
//
// Common flags:
//   --host paper|ssd|raid|iscsi  host/storage model   (default paper)
//   --model wmm|lm|nlm|nlm-log   prediction model     (default nlm)
//   --seed N                     RNG seed             (default 42)
//   --csv                        machine-readable output where applicable
//   --prof                       print wall-clock kernel profile to stderr
//
// Telemetry flags (dynamic subcommand):
//   --metrics-out FILE           metrics registry as JSON
//   --metrics-csv FILE           metrics registry as CSV
//   --trace-out FILE             Chrome trace_event JSON (Perfetto-loadable)
//   --trace-jsonl FILE           one trace event per line
//   --events-jsonl FILE          per-task event log (tracon.task_events)
//
// Sharded execution flags (dynamic subcommand; DESIGN.md §7):
//   --threads N                  run shards on N workers (0 = all cores;
//                                presence routes through the sharded
//                                engine — results are byte-identical for
//                                every N at a fixed seed/shard count)
//   --shards K                   machine shards (default: auto, one per
//                                128 machines, clamped to [1, 64]);
//                                part of the simulated system's shape
//   --prof requires --threads 1; --confidence-weighting is unsupported
//   with the sharded engine.
//   --candidate-index            place via the clustered candidate
//                                shortlist index with per-scheduler
//                                prediction memoization (dynamic, with
//                                or without --threads). Placements are
//                                bit-identical to the flat scan, so
//                                every export keeps its exact bytes and
//                                no fingerprint entry is stamped.
//
// Snapshot / confidence flags (dynamic, record, replay):
//   --snapshot-interval S        sample a tracon.metrics_series window
//                                every S sim-seconds (record/replay also
//                                store the series alongside the run)
//   --series-out FILE            write the series JSONL (implies
//                                snapshots at the default 600 s interval)
//   --confidence-weighting       schedule with the confidence-weighted
//                                WMM/LM/NLM ensemble instead of the
//                                single --model table (requires
//                                --scheduler mix)
//   --accuracy-window N          rolling accuracy window size (default 64)
//
// Decision provenance flags (DESIGN.md §6g):
//   --decisions-out FILE         write the tracon.decision_log JSONL
//                                (dynamic, record, replay; works with
//                                --threads — the merged log is
//                                byte-identical across thread counts)
//   --decisions                  record the decision log and store it
//                                with the run (record/replay), readable
//                                later via `explain` / `attribution`
//
// Lifecycle span flags (DESIGN.md §6i):
//   --spans-out FILE             write the tracon.spans JSONL (dynamic,
//                                record, replay; works with --threads —
//                                the merged log is byte-identical
//                                across thread counts)
//   --spans                      record the span log and store it with
//                                the run (record/replay), readable
//                                later via `breakdown` / `critical-path`
//                                / `explain`
//
// Live rebalancing flags (dynamic, record, replay; DESIGN.md §6h):
//   --rebalance                  run a migrate::Rebalancer round every
//                                --rebalance-interval sim-seconds
//                                (default 60): tasks in degrading
//                                (app, co-runner) cells move when the
//                                predicted benefit beats the migration
//                                cost by --rebalance-min-benefit s
//   --rebalance-max-moves N      cap migrations per round (default 2)
//   --migration-downtime S       stop-and-copy pause, s (default 0.5)
//   --migration-bandwidth MBPS   copy bandwidth      (default 400)
//   --working-set MB             copied working set  (default 512)
//   --migration-interference F   host slowdown fraction while copying,
//                                in [0,1)            (default 0.25)
//   Works with --threads: rebalancing is per shard, and every export
//   stays byte-identical across thread counts. Migrations appear in
//   the decision log as `migration` records (`explain` shows them).
// All telemetry timestamps are virtual-clock; same-seed runs produce
// byte-identical files (including the snapshot series and decision
// log).
//
// Examples:
//   tracon matrix --host ssd
//   tracon predict --fg video --bg blastn
//   tracon static --machines 16 --mix medium --objective io
//   tracon dynamic --machines 64 --lambda 80 --hours 10
//          [continued] --scheduler mibs --queue 8 --mix heavy
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <span>
#include <sstream>
#include <string>

#include "core/tracon.hpp"
#include "migrate/rebalancer.hpp"
#include "obs/accuracy.hpp"
#include "obs/attribution.hpp"
#include "obs/breakdown.hpp"
#include "obs/decision_log.hpp"
#include "obs/json.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/scope_timer.hpp"
#include "obs/snapshot.hpp"
#include "obs/span_log.hpp"
#include "obs/telemetry.hpp"
#include "replay/arrival_trace.hpp"
#include "runstore/report.hpp"
#include "runstore/runstore.hpp"
#include "sched/candidate_index.hpp"
#include "sched/fifo.hpp"
#include "sched/mix.hpp"
#include "sched/prediction_cache.hpp"
#include "sim/dynamic_scenario.hpp"
#include "sim/hierarchy.hpp"
#include "sim/shard_scenario.hpp"
#include "sim/static_scenario.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "virt/host_sim.hpp"
#include "workload/benchmarks.hpp"
#include "workload/mixes.hpp"

// Injected by tools/CMakeLists.txt from `git describe` at configure
// time; stamps run fingerprints so stored runs record the build.
#ifndef TRACON_GIT_DESCRIBE
#define TRACON_GIT_DESCRIBE "unknown"
#endif

namespace {

using namespace tracon;

virt::HostConfig host_by_name(const std::string& h) {
  if (h == "paper") return virt::HostConfig::paper_testbed();
  if (h == "ssd") return virt::HostConfig::ssd_testbed();
  if (h == "raid") return virt::HostConfig::raid_testbed();
  if (h == "iscsi") return virt::HostConfig::iscsi_testbed();
  throw std::invalid_argument("unknown --host '" + h +
                              "' (paper|ssd|raid|iscsi)");
}

virt::HostConfig host_from(const ArgParser& args) {
  return host_by_name(args.get("host", "paper"));
}

model::ModelKind model_by_name(const std::string& m) {
  if (m == "wmm") return model::ModelKind::kWmm;
  if (m == "lm") return model::ModelKind::kLinear;
  if (m == "nlm") return model::ModelKind::kNonlinear;
  if (m == "nlm-log") return model::ModelKind::kNonlinearLog;
  if (m == "nlm-nodom0") return model::ModelKind::kNonlinearNoDom0;
  throw std::invalid_argument("unknown --model '" + m +
                              "' (wmm|lm|nlm|nlm-log|nlm-nodom0)");
}

model::ModelKind model_from(const ArgParser& args) {
  return model_by_name(args.get("model", "nlm"));
}

workload::MixKind mix_by_name(const std::string& m) {
  if (m == "light") return workload::MixKind::kLight;
  if (m == "medium") return workload::MixKind::kMedium;
  if (m == "heavy") return workload::MixKind::kHeavy;
  if (m == "uniform") return workload::MixKind::kUniform;
  throw std::invalid_argument("unknown --mix '" + m +
                              "' (light|medium|heavy|uniform)");
}

workload::MixKind mix_from(const ArgParser& args) {
  return mix_by_name(args.get("mix", "medium"));
}

/// Parses the live-rebalancing knobs (DESIGN.md §6h). Returns true when
/// --rebalance is on; `out` then carries the round interval, the
/// hysteresis margin, and the migration cost model's parameters.
bool rebalance_from(const ArgParser& args, migrate::RebalanceConfig* out) {
  if (!args.has("rebalance")) return false;
  out->interval_s = args.get_double("rebalance-interval", out->interval_s);
  out->min_benefit_s =
      args.get_double("rebalance-min-benefit", out->min_benefit_s);
  out->max_moves_per_round = static_cast<std::size_t>(args.get_int(
      "rebalance-max-moves", static_cast<long>(out->max_moves_per_round)));
  out->cost.downtime_s =
      args.get_double("migration-downtime", out->cost.downtime_s);
  out->cost.copy_bandwidth_mbps =
      args.get_double("migration-bandwidth", out->cost.copy_bandwidth_mbps);
  out->cost.working_set_mb =
      args.get_double("working-set", out->cost.working_set_mb);
  out->cost.copy_interference =
      args.get_double("migration-interference", out->cost.copy_interference);
  return true;
}

/// Fingerprint entries for a rebalancing run. Pure functions of the
/// flags — identical across thread counts, so they are safe to copy
/// onto the decision-log fingerprint.
void stamp_rebalance_fingerprint(obs::MetricsRegistry& metrics,
                                 const migrate::RebalanceConfig& rc) {
  metrics.set_fingerprint("rebalance", "on");
  metrics.set_fingerprint("rebalance_interval",
                          obs::json_number(rc.interval_s));
}

/// Stamps the run-identity block every metrics export carries: enough
/// to tell two stored runs apart and to reproduce either one.
void stamp_fingerprint(obs::MetricsRegistry& metrics,
                       const sim::DynamicConfig& cfg, const std::string& host,
                       const std::string& model, const std::string& scheduler,
                       const std::string& source) {
  metrics.set_fingerprint("seed", std::to_string(cfg.seed));
  metrics.set_fingerprint("scheduler", scheduler);
  metrics.set_fingerprint("machines", std::to_string(cfg.machines));
  metrics.set_fingerprint("mix", workload::mix_name(cfg.mix));
  metrics.set_fingerprint("host", host);
  metrics.set_fingerprint("model", model);
  metrics.set_fingerprint("source", source);
  metrics.set_fingerprint("build", TRACON_GIT_DESCRIBE);
}

/// Copies the finished metrics fingerprint onto the decision log,
/// minus the execution-shape keys (threads/shards): DESIGN.md §6g
/// keeps the log byte-identical across `--threads N`, so its header
/// must not record how many workers produced it.
void stamp_decision_fingerprint(obs::Telemetry& tel) {
  for (const auto& [key, value] : tel.metrics.fingerprint()) {
    if (key == "threads" || key == "shards") continue;
    tel.decisions.set_fingerprint(key, value);
  }
}

/// Same contract for the span log (DESIGN.md §6i): the header must
/// stay byte-identical across `--threads N`.
void stamp_span_fingerprint(obs::Telemetry& tel) {
  for (const auto& [key, value] : tel.metrics.fingerprint()) {
    if (key == "threads" || key == "shards") continue;
    tel.spans.set_fingerprint(key, value);
  }
}

/// App-class id -> benchmark name, for human-readable decision output.
std::string app_class_name(std::size_t app) {
  const auto& apps = workload::paper_benchmarks();
  if (app < apps.size()) return apps[app].name;
  return "app" + std::to_string(app);
}

std::string neighbour_name(const std::optional<std::size_t>& neighbour) {
  return neighbour.has_value() ? app_class_name(*neighbour)
                               : std::string("empty");
}

/// Span kind -> display / JSON label (matches the serialized kind).
std::string span_state_name(obs::SpanEvent::Kind kind) {
  switch (kind) {
    case obs::SpanEvent::Kind::kQueued: return "queued";
    case obs::SpanEvent::Kind::kRunning: return "running";
    case obs::SpanEvent::Kind::kMigrationFreeze: return "migration_freeze";
    case obs::SpanEvent::Kind::kMigrationCopy: return "migration_copy";
    case obs::SpanEvent::Kind::kCompleted: return "completed";
  }
  return "unknown";
}

core::Tracon make_system(const ArgParser& args, bool train) {
  core::TraconConfig cfg;
  cfg.host = host_from(args);
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  core::Tracon sys(cfg);
  sys.register_applications(workload::paper_benchmarks());
  if (train) sys.train(model_from(args));
  return sys;
}

void emit(const TableWriter& table, const ArgParser& args) {
  if (args.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

int cmd_table1(const ArgParser& args) {
  virt::HostConfig cfg = host_from(args);
  cfg.noise_sigma = 0.0;
  virt::HostSimulator sim(cfg);
  TableWriter out({"App1\\App2", "cpu-high", "io-high", "cpu-io-med",
                   "cpu-io-high"});
  for (const auto& fg : {workload::calc_app(), workload::seqread_app()}) {
    double solo = sim.solo(fg).runtime_s;
    std::vector<double> row;
    for (const auto& bg :
         {workload::cpu_high_app(), workload::io_high_app(),
          workload::cpu_io_medium_app(), workload::cpu_io_high_app()})
      row.push_back(sim.measure_pair(fg, bg).runtime_s / solo);
    out.add_row_numeric(fg.name, row, 2);
  }
  emit(out, args);
  return 0;
}

int cmd_matrix(const ArgParser& args) {
  core::Tracon sys = make_system(args, false);
  const sim::PerfTable& t = sys.perf_table();
  std::vector<std::string> header = {"slowdown"};
  for (std::size_t b = 0; b < t.num_apps(); ++b)
    header.push_back(t.app_name(b));
  header.push_back("solo_s");
  TableWriter out(header);
  for (std::size_t a = 0; a < t.num_apps(); ++a) {
    std::vector<double> row;
    for (std::size_t b = 0; b < t.num_apps(); ++b)
      row.push_back(t.runtime(a, b) / t.solo_runtime(a));
    row.push_back(t.solo_runtime(a));
    out.add_row_numeric(t.app_name(a), row, 2);
  }
  emit(out, args);
  return 0;
}

int cmd_predict(const ArgParser& args) {
  auto fg = workload::benchmark_by_name(args.get("fg", "video"));
  auto bg = workload::benchmark_by_name(args.get("bg", "blastn"));
  if (!fg || !bg) {
    std::fprintf(stderr, "unknown --fg/--bg benchmark name\n");
    return 2;
  }
  core::Tracon sys = make_system(args, true);
  const sim::PerfTable& t = sys.perf_table();
  std::size_t fi = 0, bi = 0;
  for (std::size_t a = 0; a < t.num_apps(); ++a) {
    if (t.app_name(a) == fg->name) fi = a;
    if (t.app_name(a) == bg->name) bi = a;
  }
  std::printf("%s next to %s (%s, model %s):\n", fg->name.c_str(),
              bg->name.c_str(), args.get("host", "paper").c_str(),
              model::model_kind_name(sys.model_kind()).c_str());
  std::printf("  runtime: predicted %8.1f s   measured %8.1f s   solo %8.1f s\n",
              sys.predictor().predict_runtime(fi, bi), t.runtime(fi, bi),
              t.solo_runtime(fi));
  std::printf("  IOPS:    predicted %8.1f     measured %8.1f     solo %8.1f\n",
              sys.predictor().predict_iops(fi, bi), t.iops(fi, bi),
              t.solo_iops(fi));
  return 0;
}

std::unique_ptr<sched::Scheduler> scheduler_from(
    const ArgParser& args, const core::Tracon& sys, bool static_batch,
    std::size_t default_queue = 8,
    const sched::Predictor* predictor_override = nullptr) {
  std::string s = args.get("scheduler", "mibs");
  auto objective = args.get("objective", "rt") == "io"
                       ? sched::Objective::kIops
                       : sched::Objective::kRuntime;
  auto queue = static_cast<std::size_t>(
      args.get_int("queue", static_cast<long>(default_queue)));
  sched::PlacementPolicy policy;
  if (static_batch) policy.beneficial_joins_only = false;
  core::SchedulerKind kind;
  if (s == "fifo") kind = core::SchedulerKind::kFifo;
  else if (s == "mios") kind = core::SchedulerKind::kMios;
  else if (s == "mibs") kind = core::SchedulerKind::kMibs;
  else if (s == "mix") kind = core::SchedulerKind::kMix;
  else throw std::invalid_argument("unknown --scheduler '" + s + "'");
  return sys.make_scheduler(kind, objective, queue,
                            static_batch ? 0.0 : 60.0, policy,
                            predictor_override);
}

int cmd_static(const ArgParser& args) {
  core::Tracon sys = make_system(args, true);
  auto machines = static_cast<std::size_t>(args.get_int("machines", 16));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 42)) + 7);
  auto tasks = workload::sample_task_indices(mix_from(args), 2 * machines,
                                             rng);
  double fifo_rt = 0, fifo_io = 0;
  constexpr int kRepeats = 20;
  for (int r = 0; r < kRepeats; ++r) {
    sched::FifoScheduler fifo(500 + static_cast<unsigned>(r));
    auto o = sim::run_static(sys.perf_table(), fifo, tasks, machines);
    fifo_rt += o.total_runtime / kRepeats;
    fifo_io += o.total_iops / kRepeats;
  }
  auto sched = scheduler_from(args, sys, true);
  auto o = sim::run_static(sys.perf_table(), *sched, tasks, machines);
  std::printf("%s on %zu machines, %zu %s tasks:\n", sched->name().c_str(),
              machines, tasks.size(), args.get("mix", "medium").c_str());
  std::printf("  total runtime %10.1f s  (FIFO avg %10.1f, Speedup %.3f)\n",
              o.total_runtime, fifo_rt, fifo_rt / o.total_runtime);
  std::printf("  total IOPS    %10.1f    (FIFO avg %10.1f, IOBoost %.3f)\n",
              o.total_iops, fifo_io, o.total_iops / fifo_io);
  if (o.unplaced > 0) std::printf("  unplaced tasks: %zu\n", o.unplaced);
  return 0;
}

/// Owns the optional per-run instrumentation the snapshot/confidence
/// flags hang off one dynamic run: the snapshot sampler, the rolling
/// accuracy windows, and (with --confidence-weighting) the ensemble's
/// family tables, the ensemble itself, and the MIX scheduler bound to
/// it. DynamicConfig holds raw pointers into this, so it must outlive
/// the run — callers keep it on the stack and pass it by reference.
struct RunInstruments {
  std::optional<obs::SnapshotSeries> series;
  std::optional<obs::WindowedAccuracy> win_runtime;
  std::optional<obs::WindowedAccuracy> win_iops;
  std::vector<sched::TablePredictor> family_tables;
  std::vector<std::string> family_names;
  std::unique_ptr<sched::ConfidenceWeightedPredictor> confidence;
  std::unique_ptr<sched::Scheduler> scheduler;  ///< set iff confidence on
};

/// Wires --snapshot-interval / --series-out / --confidence-weighting /
/// --accuracy-window into `cfg`. Mutates nothing when none of those
/// flags are present, which is what keeps flag-off runs byte-identical
/// to the pre-snapshot CLI.
void instrument_run(const ArgParser& args, const core::Tracon& sys,
                    sim::DynamicConfig& cfg, obs::Telemetry& tel,
                    std::size_t default_queue, RunInstruments& inst) {
  const auto window =
      static_cast<std::size_t>(args.get_int("accuracy-window", 64));
  if (args.has("confidence-weighting")) {
    TRACON_REQUIRE(args.get("scheduler", "mibs") == "mix",
                   "--confidence-weighting requires --scheduler mix");
    const model::ModelKind kinds[] = {model::ModelKind::kWmm,
                                      model::ModelKind::kLinear,
                                      model::ModelKind::kNonlinear};
    inst.family_tables.reserve(std::size(kinds));
    inst.family_names.reserve(std::size(kinds));
    for (model::ModelKind kind : kinds) {
      inst.family_tables.push_back(sys.train_predictor(kind));
      inst.family_names.push_back(model::model_kind_metric_family(kind));
    }
    std::vector<sched::ConfidenceWeightedPredictor::Family> families;
    families.reserve(inst.family_tables.size());
    for (std::size_t f = 0; f < inst.family_tables.size(); ++f)
      families.push_back({inst.family_names[f], &inst.family_tables[f]});
    sched::ConfidenceConfig ccfg;
    ccfg.window = window;
    inst.confidence = std::make_unique<sched::ConfidenceWeightedPredictor>(
        std::move(families), ccfg);
    inst.confidence->set_metrics(&tel.metrics);
    cfg.outcome_observer = inst.confidence.get();
    // The cumulative accuracy tracker scores the blend itself.
    cfg.accuracy_probe = inst.confidence.get();
    cfg.accuracy_family = "confidence";
    auto objective = args.get("objective", "rt") == "io"
                         ? sched::Objective::kIops
                         : sched::Objective::kRuntime;
    auto queue = static_cast<std::size_t>(
        args.get_int("queue", static_cast<long>(default_queue)));
    inst.scheduler = std::make_unique<sched::MixScheduler>(
        *inst.confidence, objective, queue, 60.0, sched::PlacementPolicy{});
  }
  if (args.has("snapshot-interval") || args.has("series-out")) {
    inst.series.emplace(tel.metrics,
                        args.get_double("snapshot-interval", 600.0));
    cfg.snapshots = &*inst.series;
    if (inst.confidence != nullptr) {
      for (std::size_t f = 0; f < inst.confidence->num_families(); ++f) {
        const std::string& fam = inst.confidence->family_name(f);
        inst.series->track_accuracy("model." + fam + ".runtime",
                                    &inst.confidence->runtime_window(f));
        inst.series->track_accuracy("model." + fam + ".iops",
                                    &inst.confidence->iops_window(f));
      }
    } else {
      inst.win_runtime.emplace(window);
      inst.win_iops.emplace(window);
      cfg.windowed_runtime = &*inst.win_runtime;
      cfg.windowed_iops = &*inst.win_iops;
      const std::string fam = obs::metric_path_component(cfg.accuracy_family);
      inst.series->track_accuracy("model." + fam + ".runtime",
                                  &*inst.win_runtime);
      inst.series->track_accuracy("model." + fam + ".iops",
                                  &*inst.win_iops);
    }
  }
}

/// `tracon dynamic --threads N [--shards K]`: the sharded engine.
/// Split out of cmd_dynamic so the legacy single-threaded path stays
/// byte-for-byte what it was; presence of either flag routes here, and
/// DESIGN.md §7's contract makes every export byte-identical across
/// thread counts (only the `threads` fingerprint entry differs).
int cmd_dynamic_sharded(const ArgParser& args) {
  TRACON_REQUIRE(!args.has("confidence-weighting"),
                 "--confidence-weighting is not supported with --threads/"
                 "--shards: the ensemble predictor is stateful and cannot be "
                 "shared across shard workers");
  core::Tracon sys = make_system(args, true);
  sim::ShardedConfig cfg;
  cfg.machines = static_cast<std::size_t>(args.get_int("machines", 64));
  cfg.lambda_per_min = args.get_double("lambda", 100.0);
  cfg.duration_s = args.get_double("hours", 10.0) * 3600.0;
  cfg.mix = mix_from(args);
  cfg.queue_capacity = static_cast<std::size_t>(args.get_int("queue", 8));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  cfg.threads = static_cast<std::size_t>(args.get_int("threads", 1));
  cfg.shards = static_cast<std::size_t>(args.get_int("shards", 0));
  if (rebalance_from(args, &cfg.rebalance_cfg)) {
    cfg.rebalance = true;
    cfg.rebalance_predictor = &sys.predictor();
  }
  TRACON_REQUIRE(!args.has("prof") || cfg.threads == 1,
                 "--prof requires --threads 1: the profiling accumulators "
                 "are not synchronized across shard workers");

  // Sublinear placement: one shortlist index shared read-only by every
  // shard (the table predictor's model epoch never changes mid-run)
  // plus a per-shard prediction cache created serially by the factory.
  // Placements are bit-identical to the flat scan, so no fingerprint
  // entry is stamped and exports cmp-equal against exact-scan runs.
  std::optional<sched::CandidateIndex> cindex;
  std::vector<std::unique_ptr<sched::PredictionCache>> caches;
  if (args.has("candidate-index")) {
    cindex.emplace(sys.predictor());
    cfg.candidate_index = &*cindex;
  }

  const bool want_metrics = args.has("metrics-out") || args.has("metrics-csv");
  const bool want_trace = args.has("trace-out") || args.has("trace-jsonl");
  const bool want_series =
      args.has("snapshot-interval") || args.has("series-out");
  const bool want_decisions = args.has("decisions-out");
  const bool want_spans = args.has("spans-out");
  obs::Telemetry tel;
  sim::TraceRecorder trace;
  if (args.has("trace") || args.has("events-jsonl")) cfg.trace = &trace;
  if (want_metrics || want_trace || want_series || want_decisions ||
      want_spans) {
    tel.tracer.set_enabled(want_trace);
    tel.decisions.set_enabled(want_decisions);
    tel.spans.set_enabled(want_spans);
    cfg.telemetry = &tel;
    cfg.accuracy_probe = &sys.predictor();
    cfg.accuracy_family = model::model_kind_name(sys.model_kind());
    cfg.accuracy_window =
        static_cast<std::size_t>(args.get_int("accuracy-window", 64));
  }
  if (want_series)
    cfg.snapshot_interval_s = args.get_double("snapshot-interval", 600.0);

  // FIFO normalization baseline over the same decomposition, with its
  // own counter-derived per-shard seed stream (and no instrumentation).
  sim::ShardedConfig base_cfg = cfg;
  base_cfg.trace = nullptr;
  base_cfg.telemetry = nullptr;
  base_cfg.accuracy_probe = nullptr;
  base_cfg.snapshot_interval_s = 0.0;
  base_cfg.rebalance = false;
  base_cfg.rebalance_predictor = nullptr;
  base_cfg.candidate_index = nullptr;
  auto base = sim::run_dynamic_sharded(
      sys.perf_table(),
      [&](std::size_t shard) -> std::unique_ptr<sched::Scheduler> {
        return std::make_unique<sched::FifoScheduler>(
            derive_stream_seed(cfg.seed + 1, shard));
      },
      base_cfg);

  const std::string sched_kind = args.get("scheduler", "mibs");
  auto factory = [&](std::size_t shard) -> std::unique_ptr<sched::Scheduler> {
    if (sched_kind == "fifo") {
      // The core factory seeds FIFO at seed+1; shards split that
      // stream the same way the arrival streams split cfg.seed.
      return std::make_unique<sched::FifoScheduler>(
          derive_stream_seed(cfg.seed + 1, shard));
    }
    if (!cindex.has_value()) return scheduler_from(args, sys, false);
    caches.push_back(
        std::make_unique<sched::PredictionCache>(sys.predictor()));
    return scheduler_from(args, sys, false, 8, caches.back().get());
  };
  std::string sched_name = factory(0)->name();
  auto o = sim::run_dynamic_sharded(sys.perf_table(), factory, cfg);

  if (cfg.telemetry != nullptr) {
    sim::DynamicConfig fp;
    fp.seed = cfg.seed;
    fp.machines = cfg.machines;
    fp.mix = cfg.mix;
    stamp_fingerprint(tel.metrics, fp, args.get("host", "paper"),
                      args.get("model", "nlm"), sched_name, "live");
    tel.metrics.set_fingerprint("threads", std::to_string(o.threads_used));
    tel.metrics.set_fingerprint("shards", std::to_string(o.shards));
    if (cfg.rebalance)
      stamp_rebalance_fingerprint(tel.metrics, cfg.rebalance_cfg);
    if (want_decisions) stamp_decision_fingerprint(tel);
    if (want_spans) stamp_span_fingerprint(tel);
  }

  auto write_file = [&](const char* flag, const char* what,
                        auto&& writer) -> bool {
    std::string path = args.get(flag);
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "cannot open %s file '%s'\n", what, path.c_str());
      return false;
    }
    writer(f);
    std::printf("%s written to %s\n", what, path.c_str());
    return true;
  };
  bool io_ok = true;
  if (args.has("metrics-out"))
    io_ok &= write_file("metrics-out", "metrics JSON",
                        [&](std::ostream& f) { tel.metrics.write_json(f); });
  if (args.has("metrics-csv"))
    io_ok &= write_file("metrics-csv", "metrics CSV",
                        [&](std::ostream& f) { tel.metrics.write_csv(f); });
  if (args.has("trace-out"))
    io_ok &= write_file("trace-out", "Chrome trace", [&](std::ostream& f) {
      tel.tracer.write_chrome_json(f);
    });
  if (args.has("trace-jsonl"))
    io_ok &= write_file("trace-jsonl", "JSONL trace", [&](std::ostream& f) {
      tel.tracer.write_jsonl(f);
    });
  if (args.has("series-out"))
    io_ok &= write_file("series-out", "metrics series",
                        [&](std::ostream& f) { f << o.series; });
  if (args.has("decisions-out"))
    io_ok &= write_file("decisions-out", "decision log",
                        [&](std::ostream& f) { tel.decisions.write(f); });
  if (args.has("spans-out"))
    io_ok &= write_file("spans-out", "span log",
                        [&](std::ostream& f) { tel.spans.write(f); });
  if (args.has("trace"))
    io_ok &= write_file("trace", "task-event CSV",
                        [&](std::ostream& f) { trace.write_csv(f); });
  if (args.has("events-jsonl"))
    io_ok &= write_file("events-jsonl", "task-event JSONL",
                        [&](std::ostream& f) { trace.write_jsonl(f); });
  if (!io_ok) return 1;

  std::printf("%s: %zu machines, %zu shards, %zu threads, lambda=%.0f/min, "
              "%.1f h, %s mix\n",
              sched_name.c_str(), cfg.machines, o.shards, o.threads_used,
              cfg.lambda_per_min, cfg.duration_s / 3600.0,
              workload::mix_name(cfg.mix).c_str());
  std::printf("  completed %zu (FIFO %zu, normalized %.3f)\n",
              o.total.completed, base.total.completed,
              static_cast<double>(o.total.completed) /
                  static_cast<double>(std::max<std::size_t>(
                      1, base.total.completed)));
  std::printf("  dropped %zu   mean runtime %.1f s   mean wait %.1f s\n",
              o.total.dropped,
              o.total.total_runtime /
                  static_cast<double>(
                      std::max<std::size_t>(1, o.total.completed)),
              o.total.mean_wait_s);
  return 0;
}

int cmd_dynamic(const ArgParser& args) {
  if (args.has("threads") || args.has("shards"))
    return cmd_dynamic_sharded(args);
  core::Tracon sys = make_system(args, true);
  sim::DynamicConfig cfg;
  cfg.machines = static_cast<std::size_t>(args.get_int("machines", 64));
  cfg.lambda_per_min = args.get_double("lambda", 100.0);
  cfg.duration_s = args.get_double("hours", 10.0) * 3600.0;
  cfg.mix = mix_from(args);
  cfg.queue_capacity = static_cast<std::size_t>(args.get_int("queue", 8));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  auto fifo = sys.make_scheduler(core::SchedulerKind::kFifo,
                                 sched::Objective::kRuntime);
  auto base = sim::run_dynamic(sys.perf_table(), *fifo, cfg);

  // Sublinear placement (the FIFO normalization baseline above never
  // consults an index, so it runs un-indexed either way). Bit-identical
  // to the flat scan: no fingerprint entry, exports keep their bytes.
  std::optional<sched::CandidateIndex> cindex;
  std::optional<sched::PredictionCache> pcache;
  if (args.has("candidate-index")) {
    TRACON_REQUIRE(!args.has("confidence-weighting"),
                   "--candidate-index is built over the trained table "
                   "predictor and cannot wrap the confidence ensemble");
    cindex.emplace(sys.predictor());
    cfg.candidate_index = &*cindex;
    pcache.emplace(sys.predictor());
  }
  const sched::Predictor* pover = pcache.has_value() ? &*pcache : nullptr;
  sim::TraceRecorder trace;
  if (args.has("trace") || args.has("events-jsonl")) cfg.trace = &trace;

  // Rebalancing applies to the chosen-scheduler run only — the FIFO
  // pass above stays the un-rebalanced normalization baseline.
  migrate::RebalanceConfig reb_cfg;
  const bool want_rebalance = rebalance_from(args, &reb_cfg);
  std::optional<migrate::Rebalancer> rebalancer;
  if (want_rebalance) {
    rebalancer.emplace(sys.predictor(), reb_cfg);
    cfg.rebalancer = &*rebalancer;
  }

  // Telemetry wraps only the chosen-scheduler run (the FIFO pass above
  // is just the normalization baseline).
  const bool want_metrics = args.has("metrics-out") || args.has("metrics-csv");
  const bool want_trace = args.has("trace-out") || args.has("trace-jsonl");
  const bool want_series =
      args.has("snapshot-interval") || args.has("series-out");
  const bool want_confidence = args.has("confidence-weighting");
  const bool want_decisions = args.has("decisions-out");
  const bool want_spans = args.has("spans-out");
  obs::Telemetry tel;
  RunInstruments inst;
  std::unique_ptr<sched::Scheduler> sched;
  if (want_metrics || want_trace || want_series || want_confidence ||
      want_decisions || want_spans) {
    tel.tracer.set_enabled(want_trace);
    tel.decisions.set_enabled(want_decisions);
    tel.spans.set_enabled(want_spans);
    cfg.telemetry = &tel;
    cfg.accuracy_probe = &sys.predictor();
    cfg.accuracy_family = model::model_kind_name(sys.model_kind());
    instrument_run(args, sys, cfg, tel, 8, inst);
    sched = inst.scheduler != nullptr
                ? std::move(inst.scheduler)
                : scheduler_from(args, sys, false, 8, pover);
    sched->set_telemetry(&tel);
    stamp_fingerprint(tel.metrics, cfg, args.get("host", "paper"),
                      args.get("model", "nlm"), sched->name(), "live");
    if (want_confidence) tel.metrics.set_fingerprint("confidence", "on");
    if (want_rebalance) stamp_rebalance_fingerprint(tel.metrics, reb_cfg);
    if (want_decisions) stamp_decision_fingerprint(tel);
    if (want_spans) stamp_span_fingerprint(tel);
  } else {
    sched = scheduler_from(args, sys, false, 8, pover);
  }

  auto o = sim::run_dynamic(sys.perf_table(), *sched, cfg);

  auto write_file = [&](const char* flag, const char* what,
                        auto&& writer) -> bool {
    std::string path = args.get(flag);
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "cannot open %s file '%s'\n", what, path.c_str());
      return false;
    }
    writer(f);
    std::printf("%s written to %s\n", what, path.c_str());
    return true;
  };
  bool io_ok = true;
  if (args.has("metrics-out"))
    io_ok &= write_file("metrics-out", "metrics JSON",
                        [&](std::ostream& f) { tel.metrics.write_json(f); });
  if (args.has("metrics-csv"))
    io_ok &= write_file("metrics-csv", "metrics CSV",
                        [&](std::ostream& f) { tel.metrics.write_csv(f); });
  if (args.has("trace-out"))
    io_ok &= write_file("trace-out", "Chrome trace", [&](std::ostream& f) {
      tel.tracer.write_chrome_json(f);
    });
  if (args.has("trace-jsonl"))
    io_ok &= write_file("trace-jsonl", "JSONL trace", [&](std::ostream& f) {
      tel.tracer.write_jsonl(f);
    });
  if (args.has("series-out"))
    io_ok &= write_file("series-out", "metrics series", [&](std::ostream& f) {
      inst.series->write(f);
    });
  if (args.has("decisions-out"))
    io_ok &= write_file("decisions-out", "decision log",
                        [&](std::ostream& f) { tel.decisions.write(f); });
  if (args.has("spans-out"))
    io_ok &= write_file("spans-out", "span log",
                        [&](std::ostream& f) { tel.spans.write(f); });
  if (!io_ok) return 1;

  if (args.has("trace")) {
    std::ofstream f(args.get("trace"));
    if (!f) {
      std::fprintf(stderr, "cannot open trace file '%s'\n",
                   args.get("trace").c_str());
      return 1;
    }
    trace.write_csv(f);
    std::printf("trace (%zu events) written to %s\n", trace.events().size(),
                args.get("trace").c_str());
  }
  if (args.has("events-jsonl")) {
    std::ofstream f(args.get("events-jsonl"));
    if (!f) {
      std::fprintf(stderr, "cannot open task-event file '%s'\n",
                   args.get("events-jsonl").c_str());
      return 1;
    }
    trace.write_jsonl(f);
    std::printf("task events (%zu) written to %s\n", trace.events().size(),
                args.get("events-jsonl").c_str());
  }
  std::printf("%s: %zu machines, lambda=%.0f/min, %.1f h, %s mix\n",
              sched->name().c_str(), cfg.machines, cfg.lambda_per_min,
              cfg.duration_s / 3600.0, workload::mix_name(cfg.mix).c_str());
  std::printf("  completed %zu (FIFO %zu, normalized %.3f)\n", o.completed,
              base.completed,
              static_cast<double>(o.completed) / base.completed);
  std::printf("  dropped %zu   mean runtime %.1f s   mean wait %.1f s\n",
              o.dropped, o.total_runtime / std::max<std::size_t>(1, o.completed),
              o.mean_wait_s);
  return 0;
}

std::vector<double> solo_demands(const sim::PerfTable& table) {
  std::vector<double> demands;
  demands.reserve(table.num_apps());
  for (std::size_t a = 0; a < table.num_apps(); ++a)
    demands.push_back(table.solo_runtime(a));
  return demands;
}

/// Shared tail of `record` and `replay`: build the scheduler (the
/// stock one, or the confidence-weighted MIX when the flag is on), run
/// the simulation over an already-materialized arrival list with
/// telemetry on, stamp the fingerprint, store the run (plus its
/// snapshot series when sampled), and print a one-line summary plus
/// the run id (the id is the last token on stdout, for scripting).
int run_and_store(const ArgParser& args, core::Tracon& sys,
                  sim::DynamicConfig& cfg,
                  std::span<const sim::Arrival> arrivals,
                  const std::string& host, const std::string& model,
                  const std::string& source, std::size_t default_queue = 8) {
  const bool want_decisions =
      args.has("decisions") || args.has("decisions-out");
  const bool want_spans = args.has("spans") || args.has("spans-out");
  obs::Telemetry tel;
  tel.tracer.set_enabled(false);
  tel.decisions.set_enabled(want_decisions);
  tel.spans.set_enabled(want_spans);
  cfg.telemetry = &tel;
  cfg.accuracy_probe = &sys.predictor();
  cfg.accuracy_family = model::model_kind_name(sys.model_kind());
  migrate::RebalanceConfig reb_cfg;
  std::optional<migrate::Rebalancer> rebalancer;
  if (rebalance_from(args, &reb_cfg)) {
    rebalancer.emplace(sys.predictor(), reb_cfg);
    cfg.rebalancer = &*rebalancer;
  }
  RunInstruments inst;
  instrument_run(args, sys, cfg, tel, default_queue, inst);
  std::unique_ptr<sched::Scheduler> sched =
      inst.scheduler != nullptr
          ? std::move(inst.scheduler)
          : scheduler_from(args, sys, false, default_queue);
  sched->set_telemetry(&tel);
  auto o = sim::run_dynamic(sys.perf_table(), *sched, cfg, arrivals);
  stamp_fingerprint(tel.metrics, cfg, host, model, sched->name(), source);
  if (inst.confidence != nullptr)
    tel.metrics.set_fingerprint("confidence", "on");
  if (rebalancer.has_value())
    stamp_rebalance_fingerprint(tel.metrics, reb_cfg);
  if (want_decisions) stamp_decision_fingerprint(tel);
  if (want_spans) stamp_span_fingerprint(tel);

  if (args.has("metrics-out")) {
    std::string path = args.get("metrics-out");
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "cannot open metrics file '%s'\n", path.c_str());
      return 1;
    }
    tel.metrics.write_json(f);
  }
  if (args.has("series-out")) {
    std::string path = args.get("series-out");
    std::ofstream f(path, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot open series file '%s'\n", path.c_str());
      return 1;
    }
    inst.series->write(f);
    std::printf("metrics series written to %s\n", path.c_str());
  }
  if (args.has("decisions-out")) {
    std::string path = args.get("decisions-out");
    std::ofstream f(path, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot open decision-log file '%s'\n",
                   path.c_str());
      return 1;
    }
    tel.decisions.write(f);
    std::printf("decision log written to %s\n", path.c_str());
  }
  if (args.has("spans-out")) {
    std::string path = args.get("spans-out");
    std::ofstream f(path, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot open span-log file '%s'\n", path.c_str());
      return 1;
    }
    tel.spans.write(f);
    std::printf("span log written to %s\n", path.c_str());
  }

  runstore::RunStore store(args.get("store", "runs"));
  std::string id =
      store.add_run(tel.metrics, sched->name(), source,
                    inst.series.has_value() ? inst.series->str() : "",
                    want_decisions ? tel.decisions.str() : "",
                    want_spans ? tel.spans.str() : "");
  std::printf("%s (%s): %zu arrivals, completed %zu, dropped %zu\n",
              sched->name().c_str(), source.c_str(), arrivals.size(),
              o.completed, o.dropped);
  std::printf("stored run %s\n", id.c_str());
  return 0;
}

int cmd_record(const ArgParser& args) {
  core::Tracon sys = make_system(args, true);
  sim::DynamicConfig cfg;
  cfg.machines = static_cast<std::size_t>(args.get_int("machines", 64));
  cfg.lambda_per_min = args.get_double("lambda", 100.0);
  cfg.duration_s = args.get_double("hours", 10.0) * 3600.0;
  cfg.mix = mix_from(args);
  cfg.queue_capacity = static_cast<std::size_t>(args.get_int("queue", 8));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  replay::ArrivalTraceHeader header;
  header.version = obs::kJsonlSchemaVersion;
  header.seed = cfg.seed;
  header.host = args.get("host", "paper");
  // CLI token, not the display name: `replay` feeds this back through
  // --model parsing.
  header.model = args.get("model", "nlm");
  header.mix = workload::mix_name(cfg.mix);
  header.lambda_per_min = cfg.lambda_per_min;
  header.duration_s = cfg.duration_s;
  header.machines = cfg.machines;
  header.queue_capacity = cfg.queue_capacity;
  header.num_apps = sys.perf_table().num_apps();

  const std::string trace_path = args.get("out", "arrivals.jsonl");
  std::ofstream trace_file(trace_path, std::ios::binary);
  if (!trace_file) {
    std::fprintf(stderr, "cannot open trace file '%s'\n", trace_path.c_str());
    return 1;
  }
  replay::TraceWriter writer(trace_file, header);
  sim::PoissonArrivalSource poisson(cfg.lambda_per_min, cfg.duration_s,
                                    cfg.mix, cfg.mix_stddev, cfg.seed);
  replay::RecordingArrivalSource recording(poisson, writer,
                                           solo_demands(sys.perf_table()));
  // Materialize once through the tee; both the trace file and the run
  // below see the same stream.
  std::vector<sim::Arrival> arrivals = recording.arrivals(header.num_apps);
  trace_file.close();
  std::printf("trace (%zu arrivals) written to %s\n", writer.written(),
              trace_path.c_str());

  return run_and_store(args, sys, cfg, arrivals, header.host, header.model,
                       "live");
}

int cmd_replay(const ArgParser& args) {
  if (!args.has("trace")) {
    std::fprintf(stderr, "replay requires --trace FILE\n");
    return 2;
  }
  std::ifstream in(args.get("trace"), std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open trace file '%s'\n",
                 args.get("trace").c_str());
    return 1;
  }
  replay::ArrivalTrace trace = replay::load_arrival_trace(in);
  const replay::ArrivalTraceHeader header = trace.header;

  // Rebuild the recorded configuration; flags override the header.
  const std::string host = args.get("host", header.host);
  core::TraconConfig tcfg;
  tcfg.host = host_by_name(host);
  tcfg.seed = header.seed;
  const std::string model = args.get("model", header.model);
  core::Tracon sys(tcfg);
  sys.register_applications(workload::paper_benchmarks());
  sys.train(model_by_name(model));

  sim::DynamicConfig cfg;
  cfg.machines = static_cast<std::size_t>(
      args.get_int("machines", static_cast<long>(header.machines)));
  cfg.lambda_per_min = header.lambda_per_min;
  cfg.duration_s = header.duration_s;
  cfg.mix = mix_by_name(header.mix);
  cfg.queue_capacity = static_cast<std::size_t>(
      args.get_int("queue", static_cast<long>(header.queue_capacity)));
  cfg.seed = header.seed;

  replay::TraceArrivalSource source(std::move(trace));
  if (!source.validate_demands(solo_demands(sys.perf_table()))) {
    std::fprintf(stderr,
                 "warning: recorded service demands do not match this host's "
                 "perf table; replaying the recorded arrival stream anyway\n");
  }
  std::vector<sim::Arrival> arrivals =
      source.arrivals(sys.perf_table().num_apps());

  return run_and_store(args, sys, cfg, arrivals, host, model, "trace",
                       header.queue_capacity);
}

int cmd_runs(const ArgParser& args) {
  runstore::RunStore store(args.get("store", "runs"));
  runstore::RunStore::LoadResult loaded = store.load();
  for (const std::string& w : loaded.warnings)
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  TableWriter out({"id", "scheduler", "source", "seed", "machines", "mix"});
  for (const runstore::RunRecord& r : loaded.runs) {
    auto fp = [&](const char* key) {
      auto it = r.fingerprint.find(key);
      return it != r.fingerprint.end() ? it->second : std::string("-");
    };
    out.add_row({r.id, r.scheduler, r.source, fp("seed"), fp("machines"),
                 fp("mix")});
  }
  emit(out, args);
  return 0;
}

int cmd_report(const ArgParser& args) {
  if (args.positional().size() < 3) {
    std::fprintf(stderr, "usage: tracon report <run-id-a> <run-id-b> "
                         "[--store DIR] [--json]\n");
    return 2;
  }
  runstore::RunStore store(args.get("store", "runs"));
  auto resolve = [&](const std::string& prefix) {
    auto rec = store.find(prefix);
    if (!rec.has_value()) {
      throw std::invalid_argument("no run matches id prefix '" + prefix +
                                  "' in store '" + args.get("store", "runs") +
                                  "'");
    }
    return *rec;
  };
  runstore::RunRecord ra = resolve(args.positional()[1]);
  runstore::RunRecord rb = resolve(args.positional()[2]);
  obs::JsonValue da = obs::parse_json(store.read_metrics(ra));
  obs::JsonValue db = obs::parse_json(store.read_metrics(rb));
  runstore::RunReport report = runstore::diff_runs(
      runstore::summarize_metrics(da), runstore::summarize_metrics(db),
      ra.id + " (" + ra.scheduler + ", " + ra.source + ")",
      rb.id + " (" + rb.scheduler + ", " + rb.source + ")");
  if (ra.has_series() && rb.has_series()) {
    obs::MetricsSeries sa = obs::parse_metrics_series(store.read_series(ra));
    obs::MetricsSeries sb = obs::parse_metrics_series(store.read_series(rb));
    runstore::diff_series(sa, sb, &report);
  }
  if (ra.has_decisions() && rb.has_decisions()) {
    obs::AttributionReport aa =
        obs::attribute(obs::parse_decision_log(store.read_decisions(ra)));
    obs::AttributionReport ab =
        obs::attribute(obs::parse_decision_log(store.read_decisions(rb)));
    runstore::diff_decisions(aa, ab, &report);
  }
  if (ra.has_spans() && rb.has_spans()) {
    obs::BreakdownReport ba =
        obs::breakdown(obs::parse_span_log(store.read_spans(ra)));
    obs::BreakdownReport bb =
        obs::breakdown(obs::parse_span_log(store.read_spans(rb)));
    runstore::diff_breakdown(ba, bb, &report);
  }
  if (args.has("json")) {
    runstore::write_report_json(std::cout, report);
  } else {
    runstore::write_report_text(std::cout, report);
  }
  return 0;
}

/// Renders a tracon.metrics_series document. The series comes either
/// from a file (--series FILE) or from a stored run's series object
/// (positional run-id prefix, resolved against --store).
int cmd_timeline(const ArgParser& args) {
  std::string content;
  std::string label;
  if (args.has("series")) {
    const std::string path = args.get("series");
    std::ifstream f(path, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot open series file '%s'\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    content = buf.str();
    label = path;
  } else if (args.positional().size() >= 2) {
    runstore::RunStore store(args.get("store", "runs"));
    auto rec = store.find(args.positional()[1]);
    if (!rec.has_value()) {
      std::fprintf(stderr, "no run matches id prefix '%s' in store '%s'\n",
                   args.positional()[1].c_str(),
                   args.get("store", "runs").c_str());
      return 1;
    }
    if (!rec->has_series()) {
      std::fprintf(stderr,
                   "run %s has no stored metrics series (record it with "
                   "--snapshot-interval)\n",
                   rec->id.c_str());
      return 1;
    }
    content = store.read_series(*rec);
    label = rec->id;
  } else {
    std::fprintf(stderr,
                 "usage: tracon timeline (--series FILE | <run-id-prefix> "
                 "[--store DIR]) [--metric SUBSTR] [--json]\n");
    return 2;
  }

  obs::MetricsSeries series = obs::parse_metrics_series(content);
  const std::string filter = args.get("metric", "");
  auto keep = [&](const std::string& name) {
    return filter.empty() || name.find(filter) != std::string::npos;
  };
  std::set<std::string> counter_names, gauge_names, accuracy_names;
  for (const obs::SeriesWindow& w : series.windows) {
    for (const auto& [name, v] : w.counters)
      if (keep(name)) counter_names.insert(name);
    for (const auto& [name, v] : w.gauges)
      if (keep(name)) gauge_names.insert(name);
    for (const auto& [name, v] : w.accuracy)
      if (keep(name)) accuracy_names.insert(name);
  }

  if (args.has("json")) {
    std::ostream& os = std::cout;
    os << "{\n  \"schema\": \"" << obs::kMetricsSeriesSchema
       << "\", \"version\": " << series.version
       << ", \"interval_s\": " << obs::format_double(series.interval_s)
       << ",\n  \"windows\": [";
    bool first_window = true;
    for (const obs::SeriesWindow& w : series.windows) {
      os << (first_window ? "\n" : ",\n") << "    {\"window\": " << w.index
         << ", \"t_start\": " << obs::format_double(w.t_start)
         << ", \"t_end\": " << obs::format_double(w.t_end);
      first_window = false;
      auto scalar_map = [&](const char* key,
                            const std::map<std::string, double>& m) {
        os << ", \"" << key << "\": {";
        bool first = true;
        for (const auto& [name, value] : m) {
          if (!keep(name)) continue;
          os << (first ? "" : ", ") << "\"" << obs::json_escape(name)
             << "\": " << obs::format_double(value);
          first = false;
        }
        os << "}";
      };
      scalar_map("counters", w.counters);
      scalar_map("gauges", w.gauges);
      os << ", \"accuracy\": {";
      bool first_acc = true;
      for (const auto& [name, acc] : w.accuracy) {
        if (!keep(name)) continue;
        os << (first_acc ? "" : ", ") << "\"" << obs::json_escape(name)
           << "\": {\"count\": " << acc.count << ", \"total\": " << acc.total
           << ", \"mean_abs\": " << obs::format_double(acc.mean_abs)
           << ", \"p50\": " << obs::format_double(acc.p50)
           << ", \"p90\": " << obs::format_double(acc.p90) << "}";
        first_acc = false;
      }
      os << "}}";
    }
    os << (first_window ? "" : "\n  ") << "]\n}\n";
    return 0;
  }

  std::printf("metrics series %s: %zu windows, interval %s s\n", label.c_str(),
              series.windows.size(),
              obs::format_double(series.interval_s).c_str());
  // Counter columns carry a leading '+': they are per-window deltas,
  // not running totals.
  std::vector<std::string> header = {"window", "t_end"};
  for (const std::string& name : counter_names) header.push_back("+" + name);
  for (const std::string& name : gauge_names) header.push_back(name);
  for (const std::string& name : accuracy_names)
    header.push_back(name + "|err");
  TableWriter out(header);
  for (const obs::SeriesWindow& w : series.windows) {
    std::vector<std::string> row = {std::to_string(w.index), fmt(w.t_end, 1)};
    for (const std::string& name : counter_names) {
      auto it = w.counters.find(name);
      row.push_back(fmt(it != w.counters.end() ? it->second : 0.0, 0));
    }
    for (const std::string& name : gauge_names) {
      auto it = w.gauges.find(name);
      row.push_back(fmt(it != w.gauges.end() ? it->second : 0.0, 3));
    }
    for (const std::string& name : accuracy_names) {
      auto it = w.accuracy.find(name);
      row.push_back(fmt(it != w.accuracy.end() ? it->second.mean_abs : 0.0,
                        3));
    }
    out.add_row(std::move(row));
  }
  emit(out, args);
  return 0;
}

/// Shared source resolution for `explain` and `attribution`: the
/// decision log comes either from a file (--decisions FILE) or from a
/// stored run's decisions object (run-id prefix at positional `idx`,
/// resolved against --store). Returns 0 and fills doc/label, 1 after
/// printing an error, or 2 when neither source was given (the caller
/// prints its usage line).
int load_decision_doc(const ArgParser& args, std::size_t idx,
                      obs::DecisionDoc* doc, std::string* label) {
  std::string content;
  if (args.has("decisions")) {
    const std::string path = args.get("decisions");
    std::ifstream f(path, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot open decision log '%s'\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    content = buf.str();
    *label = path;
  } else if (args.positional().size() > idx) {
    runstore::RunStore store(args.get("store", "runs"));
    auto rec = store.find(args.positional()[idx]);
    if (!rec.has_value()) {
      std::fprintf(stderr, "no run matches id prefix '%s' in store '%s'\n",
                   args.positional()[idx].c_str(),
                   args.get("store", "runs").c_str());
      return 1;
    }
    if (!rec->has_decisions()) {
      std::fprintf(stderr,
                   "run %s has no stored decision log (record it with "
                   "--decisions)\n",
                   rec->id.c_str());
      return 1;
    }
    content = store.read_decisions(*rec);
    *label = rec->id;
  } else {
    return 2;
  }
  *doc = obs::parse_decision_log(content);
  return 0;
}

/// Same resolution for the span log (`breakdown`, `critical-path`):
/// --spans FILE, or a stored run's spans object (run-id prefix at
/// positional `idx`). Same return convention as load_decision_doc.
int load_span_doc(const ArgParser& args, std::size_t idx, obs::SpanDoc* doc,
                  std::string* label) {
  std::string content;
  if (args.has("spans")) {
    const std::string path = args.get("spans");
    std::ifstream f(path, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot open span log '%s'\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    content = buf.str();
    *label = path;
  } else if (args.positional().size() > idx) {
    runstore::RunStore store(args.get("store", "runs"));
    auto rec = store.find(args.positional()[idx]);
    if (!rec.has_value()) {
      std::fprintf(stderr, "no run matches id prefix '%s' in store '%s'\n",
                   args.positional()[idx].c_str(),
                   args.get("store", "runs").c_str());
      return 1;
    }
    if (!rec->has_spans()) {
      std::fprintf(stderr,
                   "run %s has no stored span log (record it with --spans)\n",
                   rec->id.c_str());
      return 1;
    }
    content = store.read_spans(*rec);
    *label = rec->id;
  } else {
    return 2;
  }
  *doc = obs::parse_span_log(content);
  return 0;
}

/// `tracon explain <task-id>`: renders one task's decision record —
/// every candidate slot the scheduler scanned, what each model family
/// predicted for it, the confidence weights in force, and the margin —
/// joined to the realized outcome when the task completed.
int cmd_explain(const ArgParser& args) {
  const char* kUsage =
      "usage: tracon explain <task-id> (--decisions FILE [--spans FILE] | "
      "<run-id-prefix> [--store DIR])\n";
  if (args.positional().size() < 2) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  std::uint64_t task = 0;
  try {
    std::size_t pos = 0;
    task = std::stoull(args.positional()[1], &pos);
    TRACON_REQUIRE(pos == args.positional()[1].size(),
                   "trailing junk in task id");
  } catch (const std::exception&) {
    std::fprintf(stderr, "task id '%s' is not a number\n",
                 args.positional()[1].c_str());
    return 2;
  }
  obs::DecisionDoc doc;
  std::string label;
  if (int rc = load_decision_doc(args, 2, &doc, &label); rc != 0) {
    if (rc == 2) std::fprintf(stderr, "%s", kUsage);
    return rc;
  }

  // Last record wins, matching the attribution engine's join: a task
  // id appears once per run, but a merged or hand-edited log should
  // explain the same record attribute() would use.
  const obs::DecisionEvent* decision = nullptr;
  const obs::DecisionEvent* outcome = nullptr;
  std::vector<const obs::DecisionEvent*> migrations;
  for (const obs::DecisionEvent& e : doc.events) {
    if (e.task != task) continue;
    if (e.kind == obs::DecisionEvent::Kind::kDecision) decision = &e;
    else if (e.kind == obs::DecisionEvent::Kind::kMigration)
      migrations.push_back(&e);
    else outcome = &e;
  }
  if (decision == nullptr) {
    std::fprintf(stderr, "no decision recorded for task %llu in %s\n",
                 static_cast<unsigned long long>(task), label.c_str());
    return 1;
  }

  std::printf("task %llu (%s) placed by %s at t=%s s  [%s]\n",
              static_cast<unsigned long long>(task),
              app_class_name(decision->app).c_str(),
              decision->scheduler.c_str(),
              fmt(decision->time_s, 1).c_str(), label.c_str());
  std::printf("  objective %s, %zu candidate slots, winning margin %s\n",
              decision->objective.c_str(), decision->candidates.size(),
              fmt(decision->margin, 2).c_str());
  if (decision->machine != obs::DecisionEvent::kNoMachine)
    std::printf("  bound to machine %zu\n", decision->machine);
  std::printf("  model families:");
  for (std::size_t f = 0; f < decision->families.size(); ++f) {
    double w = f < decision->weights.size() ? decision->weights[f] : 0.0;
    std::printf(" %s (weight %s)", decision->families[f].c_str(),
                fmt(w, 3).c_str());
  }
  std::printf("\n  candidate slots (* = chosen; score is the predicted %s "
              "if placed there):\n",
              decision->objective.c_str());
  std::vector<std::string> header = {"slot", "next-to", "score"};
  for (const std::string& fam : decision->families) header.push_back(fam);
  TableWriter table(header);
  for (std::size_t i = 0; i < decision->candidates.size(); ++i) {
    const obs::DecisionCandidate& c = decision->candidates[i];
    std::vector<std::string> row;
    row.push_back((i == decision->chosen ? "* " : "  ") + std::to_string(i));
    row.push_back(neighbour_name(c.neighbour));
    row.push_back(fmt(c.score, 2));
    for (std::size_t f = 0; f < decision->families.size(); ++f)
      row.push_back(f < c.by_family.size() ? fmt(c.by_family[f], 2) : "-");
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("  predicted: runtime %s s, IOPS %s\n",
              fmt(decision->predicted_runtime_s, 1).c_str(),
              fmt(decision->predicted_iops, 1).c_str());
  for (const obs::DecisionEvent* m : migrations) {
    std::printf("  migrated:  machine %zu (next to %s) -> machine %zu "
                "(next to %s) at t=%s s\n",
                m->from_machine, neighbour_name(m->from_neighbour).c_str(),
                m->machine, neighbour_name(m->neighbour).c_str(),
                fmt(m->time_s, 1).c_str());
    std::printf("             stay %s s vs move %s s; cost %s s "
                "(%s s downtime + %s s copy), margin %s s\n",
                fmt(m->predicted_stay_s, 1).c_str(),
                fmt(m->predicted_move_s, 1).c_str(),
                fmt(m->cost_s, 2).c_str(), fmt(m->downtime_s, 2).c_str(),
                fmt(m->copy_s, 2).c_str(), fmt(m->margin, 2).c_str());
  }
  if (outcome != nullptr) {
    double slowdown = outcome->solo_runtime_s > 0.0
                          ? outcome->runtime_s / outcome->solo_runtime_s
                          : 0.0;
    std::printf("  outcome:   runtime %s s (rel error %s), IOPS %s (rel "
                "error %s)\n",
                fmt(outcome->runtime_s, 1).c_str(),
                fmt(obs::relative_error(decision->predicted_runtime_s,
                                        outcome->runtime_s), 3).c_str(),
                fmt(outcome->iops, 1).c_str(),
                fmt(obs::relative_error(decision->predicted_iops,
                                        outcome->iops), 3).c_str());
    std::printf("  realized:  slowdown %sx next to %s, completed at t=%s s\n",
                fmt(slowdown, 2).c_str(),
                neighbour_name(outcome->neighbour).c_str(),
                fmt(outcome->time_s, 1).c_str());
  } else {
    std::printf("  outcome:   task did not complete within the run\n");
  }

  // Lifecycle timeline alongside the decision: where the seconds went
  // once the placement was made. Loaded when a span source is at hand —
  // --spans FILE, or the same stored run carrying a spans object;
  // silently absent otherwise (the decision record stands alone).
  obs::SpanDoc spans;
  bool have_spans = false;
  if (args.has("spans")) {
    std::string span_label;
    if (int rc = load_span_doc(args, args.positional().size(), &spans,
                               &span_label);
        rc != 0)
      return rc;
    have_spans = true;
  } else if (!args.has("decisions") && args.positional().size() > 2) {
    runstore::RunStore store(args.get("store", "runs"));
    auto rec = store.find(args.positional()[2]);
    if (rec.has_value() && rec->has_spans()) {
      spans = obs::parse_span_log(store.read_spans(*rec));
      have_spans = true;
    }
  }
  if (have_spans) {
    obs::SpanDoc mine;
    mine.version = spans.version;
    for (const obs::SpanEvent& e : spans.events)
      if (e.task == task) mine.events.push_back(e);
    if (!mine.events.empty()) {
      std::printf("\n  lifecycle (tracon.spans; speed = progress per wall "
                  "second):\n");
      TableWriter tl({"t0", "t1", "dur_s", "state", "machine", "next-to",
                     "speed"});
      for (const obs::SpanEvent& e : mine.events) {
        std::string state = span_state_name(e.kind);
        bool scored = e.kind == obs::SpanEvent::Kind::kRunning ||
                      e.kind == obs::SpanEvent::Kind::kMigrationCopy;
        tl.add_row({fmt(e.t0_s, 1), fmt(e.t1_s, 1), fmt(e.t1_s - e.t0_s, 1),
                    state,
                    e.machine != obs::SpanEvent::kNoMachine
                        ? std::to_string(e.machine)
                        : "-",
                    scored ? neighbour_name(e.neighbour) : "-",
                    scored ? fmt(e.factor * e.copy_factor, 3) : "-"});
      }
      tl.print(std::cout);
      obs::BreakdownReport mine_report = obs::breakdown(mine);
      if (!mine_report.rows.empty()) {
        const obs::TaskBreakdown& row = mine_report.rows.front();
        std::printf("  accounted: wait %s s + solo %s s + interference %s s "
                    "+ migration %s s = %s s end-to-end\n",
                    fmt(row.wait_s, 1).c_str(), fmt(row.solo_s, 1).c_str(),
                    fmt(row.interference_s, 1).c_str(),
                    fmt(row.migration_s, 1).c_str(),
                    fmt(row.end_to_end_s(), 1).c_str());
      }
    }
  }
  return 0;
}

/// `tracon attribution`: reduces a whole run's decision log to the
/// joined summary, the per-co-location-pair realized-slowdown heatmap,
/// and the worst-mispredicts table.
int cmd_attribution(const ArgParser& args) {
  const char* kUsage =
      "usage: tracon attribution (--decisions FILE | <run-id-prefix> "
      "[--store DIR]) [--top N] [--json]\n";
  obs::DecisionDoc doc;
  std::string label;
  if (int rc = load_decision_doc(args, 1, &doc, &label); rc != 0) {
    if (rc == 2) std::fprintf(stderr, "%s", kUsage);
    return rc;
  }
  obs::AttributionReport report = obs::attribute(doc);
  const auto top = static_cast<std::size_t>(args.get_int("top", 10));
  const std::size_t shown = std::min(top, report.mispredict_order.size());

  if (args.has("json")) {
    std::ostream& os = std::cout;
    os << "{\n  \"schema\": \"tracon.attribution\", \"version\": 1,\n"
       << "  \"decisions\": " << report.decisions
       << ", \"outcomes\": " << report.outcomes
       << ", \"joined\": " << report.joined
       << ",\n  \"mean_candidates\": "
       << obs::json_number(report.mean_candidates)
       << ", \"mean_abs_runtime_error\": "
       << obs::json_number(report.mean_abs_runtime_error)
       << ", \"mean_abs_iops_error\": "
       << obs::json_number(report.mean_abs_iops_error)
       << ",\n  \"pairs\": [";
    bool first = true;
    for (const auto& [key, cell] : report.pairs) {
      os << (first ? "\n" : ",\n") << "    {\"app\": \""
         << obs::json_escape(app_class_name(key.first))
         << "\", \"neighbour\": \""
         << obs::json_escape(neighbour_name(key.second))
         << "\", \"count\": " << cell.count
         << ", \"mean_slowdown\": " << obs::json_number(cell.mean_slowdown())
         << ", \"mean_abs_runtime_error\": "
         << obs::json_number(cell.mean_abs_runtime_error()) << "}";
      first = false;
    }
    os << (first ? "" : "\n  ") << "],\n  \"mispredicts\": [";
    first = true;
    for (std::size_t i = 0; i < shown; ++i) {
      const obs::AttributionRow& row =
          report.rows[report.mispredict_order[i]];
      os << (first ? "\n" : ",\n") << "    {\"task\": " << row.task
         << ", \"app\": \"" << obs::json_escape(app_class_name(row.app))
         << "\", \"neighbour\": \""
         << obs::json_escape(neighbour_name(row.neighbour))
         << "\", \"predicted_runtime_s\": "
         << obs::json_number(row.predicted_runtime_s)
         << ", \"runtime_s\": " << obs::json_number(row.runtime_s)
         << ", \"runtime_error\": " << obs::json_number(row.runtime_error)
         << ", \"margin\": " << obs::json_number(row.margin)
         << ", \"candidates\": " << row.candidates << "}";
      first = false;
    }
    os << (first ? "" : "\n  ") << "]\n}\n";
    return 0;
  }

  std::printf("decision log %s: %llu decisions, %llu outcomes, %llu joined\n",
              label.c_str(),
              static_cast<unsigned long long>(report.decisions),
              static_cast<unsigned long long>(report.outcomes),
              static_cast<unsigned long long>(report.joined));
  std::printf("  mean candidate-set size %s   mean |runtime rel error| %s   "
              "mean |iops rel error| %s\n",
              fmt(report.mean_candidates, 2).c_str(),
              fmt(report.mean_abs_runtime_error, 3).c_str(),
              fmt(report.mean_abs_iops_error, 3).c_str());

  if (!report.pairs.empty()) {
    // Heatmap rows are the placed task's app class, columns the
    // co-runner it landed next to ("empty" first, the map's order).
    std::set<std::size_t> apps;
    std::set<std::optional<std::size_t>> neighbours;
    for (const auto& [key, cell] : report.pairs) {
      apps.insert(key.first);
      neighbours.insert(key.second);
    }
    std::printf("\nmean realized slowdown by (app, co-runner):\n");
    std::vector<std::string> header = {"app\\next-to"};
    for (const auto& n : neighbours) header.push_back(neighbour_name(n));
    TableWriter heat(header);
    for (std::size_t app : apps) {
      std::vector<std::string> row = {app_class_name(app)};
      for (const auto& n : neighbours) {
        auto it = report.pairs.find({app, n});
        row.push_back(it != report.pairs.end()
                          ? fmt(it->second.mean_slowdown(), 2)
                          : "-");
      }
      heat.add_row(std::move(row));
    }
    heat.print(std::cout);
  }

  if (shown > 0) {
    std::printf("\nworst mispredicts (by |runtime rel error|):\n");
    TableWriter worst({"task", "app", "next-to", "pred_s", "actual_s",
                       "rel_err", "margin", "cands"});
    for (std::size_t i = 0; i < shown; ++i) {
      const obs::AttributionRow& row =
          report.rows[report.mispredict_order[i]];
      worst.add_row({std::to_string(row.task), app_class_name(row.app),
                     neighbour_name(row.neighbour),
                     fmt(row.predicted_runtime_s, 1), fmt(row.runtime_s, 1),
                     fmt(row.runtime_error, 3), fmt(row.margin, 2),
                     std::to_string(row.candidates)});
    }
    worst.print(std::cout);
  }
  return 0;
}

/// `tracon breakdown`: reduces a whole run's span log to the latency
/// decomposition — where every completed task's seconds went, overall
/// and per app class (and per completion window with --window S).
int cmd_breakdown(const ArgParser& args) {
  const char* kUsage =
      "usage: tracon breakdown (--spans FILE | <run-id-prefix> "
      "[--store DIR]) [--window S] [--json]\n";
  obs::SpanDoc doc;
  std::string label;
  if (int rc = load_span_doc(args, 1, &doc, &label); rc != 0) {
    if (rc == 2) std::fprintf(stderr, "%s", kUsage);
    return rc;
  }
  const double window_s = args.get_double("window", 0.0);
  obs::BreakdownReport report = obs::breakdown(doc, window_s);

  if (args.has("json")) {
    std::ostream& os = std::cout;
    auto cell = [&](const obs::BreakdownCell& c) {
      os << "{\"tasks\": " << c.tasks
         << ", \"wait_s\": " << obs::json_number(c.wait_s)
         << ", \"solo_s\": " << obs::json_number(c.solo_s)
         << ", \"interference_s\": " << obs::json_number(c.interference_s)
         << ", \"migration_s\": " << obs::json_number(c.migration_s)
         << ", \"end_to_end_s\": " << obs::json_number(c.end_to_end_s())
         << "}";
    };
    os << "{\n  \"schema\": \"tracon.breakdown\", \"version\": 1,\n"
       << "  \"tasks\": " << report.rows.size()
       << ", \"incomplete\": " << report.incomplete
       << ", \"window_s\": " << obs::json_number(report.window_s)
       << ",\n  \"total\": ";
    cell(report.total);
    os << ",\n  \"by_app\": [";
    bool first = true;
    for (const auto& [app, c] : report.by_app) {
      os << (first ? "\n" : ",\n") << "    {\"app\": \""
         << obs::json_escape(app_class_name(app)) << "\", \"cell\": ";
      cell(c);
      os << "}";
      first = false;
    }
    os << (first ? "" : "\n  ") << "],\n  \"by_window\": [";
    first = true;
    for (const auto& [w, c] : report.by_window) {
      os << (first ? "\n" : ",\n") << "    {\"window\": " << w
         << ", \"t_start\": "
         << obs::json_number(static_cast<double>(w) * report.window_s)
         << ", \"cell\": ";
      cell(c);
      os << "}";
      first = false;
    }
    os << (first ? "" : "\n  ") << "]\n}\n";
    return 0;
  }

  const double e2e = report.total.end_to_end_s();
  auto share = [&](double v) {
    return e2e > 0.0 ? fmt(100.0 * v / e2e, 1) + "%" : std::string("-");
  };
  std::printf("span log %s: %zu completed tasks, %llu incomplete at the "
              "horizon\n",
              label.c_str(), report.rows.size(),
              static_cast<unsigned long long>(report.incomplete));
  std::printf("  end-to-end %s s = wait %s s (%s) + solo %s s (%s) + "
              "interference %s s (%s) + migration %s s (%s)\n",
              fmt(e2e, 1).c_str(), fmt(report.total.wait_s, 1).c_str(),
              share(report.total.wait_s).c_str(),
              fmt(report.total.solo_s, 1).c_str(),
              share(report.total.solo_s).c_str(),
              fmt(report.total.interference_s, 1).c_str(),
              share(report.total.interference_s).c_str(),
              fmt(report.total.migration_s, 1).c_str(),
              share(report.total.migration_s).c_str());

  auto mean = [](const obs::BreakdownCell& c, double v) {
    return c.tasks > 0 ? v / static_cast<double>(c.tasks) : 0.0;
  };
  if (!report.by_app.empty()) {
    std::printf("\nmean seconds per task by app class:\n");
    TableWriter by_app({"app", "tasks", "wait", "solo", "interference",
                        "migration", "end-to-end"});
    for (const auto& [app, c] : report.by_app) {
      by_app.add_row({app_class_name(app), std::to_string(c.tasks),
                      fmt(mean(c, c.wait_s), 1), fmt(mean(c, c.solo_s), 1),
                      fmt(mean(c, c.interference_s), 1),
                      fmt(mean(c, c.migration_s), 1),
                      fmt(mean(c, c.end_to_end_s()), 1)});
    }
    emit(by_app, args);
  }
  if (!report.by_window.empty()) {
    std::printf("\nmean seconds per task by completion window (%s s):\n",
                fmt(report.window_s, 0).c_str());
    TableWriter by_win({"window", "t_start", "tasks", "wait", "solo",
                        "interference", "migration"});
    for (const auto& [w, c] : report.by_window) {
      by_win.add_row({std::to_string(w),
                      fmt(static_cast<double>(w) * report.window_s, 0),
                      std::to_string(c.tasks), fmt(mean(c, c.wait_s), 1),
                      fmt(mean(c, c.solo_s), 1),
                      fmt(mean(c, c.interference_s), 1),
                      fmt(mean(c, c.migration_s), 1)});
    }
    emit(by_win, args);
  }
  return 0;
}

/// `tracon critical-path`: the chain of tasks that bounds the run's
/// last completion — each link waited on the previous link's machine
/// time, so shortening any of them moves the makespan.
int cmd_critical_path(const ArgParser& args) {
  const char* kUsage =
      "usage: tracon critical-path (--spans FILE | <run-id-prefix> "
      "[--store DIR]) [--json]\n";
  obs::SpanDoc doc;
  std::string label;
  if (int rc = load_span_doc(args, 1, &doc, &label); rc != 0) {
    if (rc == 2) std::fprintf(stderr, "%s", kUsage);
    return rc;
  }
  std::vector<obs::CriticalPathEntry> chain = obs::critical_path(doc);

  if (args.has("json")) {
    std::ostream& os = std::cout;
    os << "{\n  \"schema\": \"tracon.critical_path\", \"version\": 1,\n"
       << "  \"links\": [";
    bool first = true;
    for (const obs::CriticalPathEntry& e : chain) {
      os << (first ? "\n" : ",\n") << "    {\"task\": " << e.task
         << ", \"app\": \"" << obs::json_escape(app_class_name(e.app))
         << "\", \"machine\": ";
      if (e.machine != obs::SpanEvent::kNoMachine) os << e.machine;
      else os << "\"-\"";
      os << ", \"enqueue_s\": " << obs::json_number(e.enqueue_s)
         << ", \"start_s\": " << obs::json_number(e.start_s)
         << ", \"complete_s\": " << obs::json_number(e.complete_s)
         << ", \"wait_s\": " << obs::json_number(e.wait_s) << "}";
      first = false;
    }
    os << (first ? "" : "\n  ") << "]\n}\n";
    return 0;
  }

  if (chain.empty()) {
    std::printf("span log %s: no completed task, no critical path\n",
                label.c_str());
    return 0;
  }
  std::printf("critical path %s: %zu links, makespan ends at t=%s s with "
              "task %llu\n",
              label.c_str(), chain.size(),
              fmt(chain.back().complete_s, 1).c_str(),
              static_cast<unsigned long long>(chain.back().task));
  TableWriter out({"task", "app", "machine", "enqueue", "start", "complete",
                   "wait_s"});
  for (const obs::CriticalPathEntry& e : chain) {
    out.add_row({std::to_string(e.task), app_class_name(e.app),
                 e.machine != obs::SpanEvent::kNoMachine
                     ? std::to_string(e.machine)
                     : "-",
                 fmt(e.enqueue_s, 1), fmt(e.start_s, 1),
                 fmt(e.complete_s, 1), fmt(e.wait_s, 1)});
  }
  emit(out, args);
  return 0;
}

int cmd_profile(const ArgParser& args) {
  core::Tracon sys = make_system(args, false);
  std::string path = args.get("out", "perf_table.csv");
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
    return 1;
  }
  sys.perf_table().save_csv(f);
  std::printf("pairwise perf table (%zu apps, host %s) written to %s\n",
              sys.perf_table().num_apps(), args.get("host", "paper").c_str(),
              path.c_str());
  return 0;
}

int cmd_hierarchy(const ArgParser& args) {
  core::Tracon sys = make_system(args, true);
  sim::HierarchyConfig cfg;
  cfg.managers = static_cast<std::size_t>(args.get_int("managers", 4));
  cfg.machines_per_manager =
      static_cast<std::size_t>(args.get_int("machines", 16));
  cfg.lambda_per_min = args.get_double("lambda", 100.0);
  cfg.duration_s = args.get_double("hours", 10.0) * 3600.0;
  cfg.mix = mix_from(args);
  cfg.queue_capacity = static_cast<std::size_t>(args.get_int("queue", 8));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  cfg.routing = args.get("routing", "rr") == "random"
                    ? sim::Routing::kRandom
                    : sim::Routing::kRoundRobin;
  cfg.threads = static_cast<std::size_t>(args.get_int("threads", 1));

  auto outcome = sim::run_hierarchical(
      sys.perf_table(),
      [&](std::size_t) {
        return scheduler_from(args, sys, false);
      },
      cfg);
  std::printf("%zu managers x %zu machines, lambda=%.0f/min total, %s mix\n",
              cfg.managers, cfg.machines_per_manager, cfg.lambda_per_min,
              workload::mix_name(cfg.mix).c_str());
  std::printf("  completed %zu   dropped %zu   imbalance %.3f\n",
              outcome.total.completed, outcome.total.dropped,
              outcome.completion_imbalance());
  for (std::size_t m = 0; m < outcome.per_manager.size(); ++m) {
    const auto& pm = outcome.per_manager[m];
    std::printf("  manager %zu: completed %zu dropped %zu\n", m,
                pm.completed, pm.dropped);
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: tracon "
               "<table1|matrix|predict|static|dynamic|hierarchy|profile|"
               "record|replay|runs|report|timeline|explain|attribution|"
               "breakdown|critical-path> "
               "[flags]\n(see the header of tools/tracon_cli.cpp)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    ArgParser args(argc, argv);
    if (args.positional().empty()) return usage();
    if (args.has("prof")) tracon::obs::ProfRegistry::global().set_enabled(true);
    const std::string& cmd = args.positional()[0];
    int rc;
    if (cmd == "table1") rc = cmd_table1(args);
    else if (cmd == "matrix") rc = cmd_matrix(args);
    else if (cmd == "predict") rc = cmd_predict(args);
    else if (cmd == "static") rc = cmd_static(args);
    else if (cmd == "dynamic") rc = cmd_dynamic(args);
    else if (cmd == "hierarchy") rc = cmd_hierarchy(args);
    else if (cmd == "profile") rc = cmd_profile(args);
    else if (cmd == "record") rc = cmd_record(args);
    else if (cmd == "replay") rc = cmd_replay(args);
    else if (cmd == "runs") rc = cmd_runs(args);
    else if (cmd == "report") rc = cmd_report(args);
    else if (cmd == "timeline") rc = cmd_timeline(args);
    else if (cmd == "explain") rc = cmd_explain(args);
    else if (cmd == "attribution") rc = cmd_attribution(args);
    else if (cmd == "breakdown") rc = cmd_breakdown(args);
    else if (cmd == "critical-path") rc = cmd_critical_path(args);
    else return usage();
    if (args.has("prof")) {
      std::cerr << "--- wall-clock kernel profile (--prof) ---\n";
      tracon::obs::ProfRegistry::global().write_text(std::cerr);
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
