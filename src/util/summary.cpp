#include "util/summary.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace tracon {

Summary Summary::of(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;

  OnlineStats acc;
  s.min = xs[0];
  s.max = xs[0];
  for (double x : xs) {
    acc.add(x);
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.median = percentile(xs, 0.5);
  return s;
}

double percentile(std::span<const double> xs, double p) {
  TRACON_REQUIRE(!xs.empty(), "percentile of empty sample");
  TRACON_REQUIRE(p >= 0.0 && p <= 1.0, "percentile p outside [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  double pos = p * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void OnlineStats::add(double x) {
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::reset() {
  n_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

}  // namespace tracon
