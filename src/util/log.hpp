// Minimal leveled logger. Off by default so benchmark output stays clean;
// enable with Log::set_level for debugging simulations.
#pragma once

#include <sstream>
#include <string>

namespace tracon {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();
  static bool enabled(LogLevel level);
  /// Writes a single line to stderr with a level prefix.
  static void write(LogLevel level, const std::string& message);
};

#define TRACON_LOG(level, expr)                       \
  do {                                                \
    if (::tracon::Log::enabled(level)) {              \
      std::ostringstream log_ss_;                     \
      log_ss_ << expr;                                \
      ::tracon::Log::write(level, log_ss_.str());     \
    }                                                 \
  } while (false)

#define TRACON_DEBUG(expr) TRACON_LOG(::tracon::LogLevel::kDebug, expr)
#define TRACON_INFO(expr) TRACON_LOG(::tracon::LogLevel::kInfo, expr)
#define TRACON_WARN(expr) TRACON_LOG(::tracon::LogLevel::kWarn, expr)

}  // namespace tracon
