#include "util/log.hpp"

#include <atomic>
#include <iostream>

namespace tracon {
namespace {
// TRACON_ANALYZE_ALLOW(mutable-global): the process log level is
// deliberately global (set once in main from --verbose) and atomic;
// it gates stderr chatter only and never touches results.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kInfo: return "[info ] ";
    case LogLevel::kWarn: return "[warn ] ";
    case LogLevel::kError: return "[error] ";
    case LogLevel::kOff: return "";
  }
  return "";
}
}  // namespace

void Log::set_level(LogLevel level) { g_level.store(level); }
LogLevel Log::level() { return g_level.load(); }
bool Log::enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level.load());
}
void Log::write(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  std::cerr << prefix(level) << message << '\n';
}

}  // namespace tracon
