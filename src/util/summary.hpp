// Summary statistics over samples: batch and online (Welford) forms.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tracon {

/// Batch summary of a sample: mean, standard deviation, extrema,
/// percentiles. Computed once over a span of doubles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample (n-1) standard deviation; 0 when n < 2
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;

  /// Computes the summary of `xs`; all fields zero when `xs` is empty.
  static Summary of(std::span<const double> xs);
};

/// Linear-interpolated percentile, p in [0,1]. Throws on empty input.
double percentile(std::span<const double> xs, double p);

/// Numerically stable streaming mean/variance accumulator (Welford).
/// Used by the resource monitor and the drift detector.
class OnlineStats {
 public:
  void add(double x);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than 2 samples.
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace tracon
