#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace tracon {

std::string fmt(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  TRACON_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TableWriter::add_row(std::vector<std::string> cells) {
  TRACON_REQUIRE(cells.size() == header_.size(),
                 "row width must match header");
  rows_.push_back(std::move(cells));
}

void TableWriter::add_row_numeric(const std::string& label,
                                  const std::vector<double>& values,
                                  int precision) {
  TRACON_REQUIRE(values.size() + 1 == header_.size(),
                 "numeric row width must match header");
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

void TableWriter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TableWriter::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace tracon
