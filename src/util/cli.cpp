#include "util/cli.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/error.hpp"

namespace tracon {

ArgParser::ArgParser(int argc, const char* const* argv) {
  TRACON_REQUIRE(argc == 0 || argv != nullptr,
                 "argv must be non-null when argc > 0");
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  parse(args);
}

// Validation happens in parse(); an empty args vector is legitimate.
// tracon-lint: allow(require-guard)
ArgParser::ArgParser(const std::vector<std::string>& args) { parse(args); }

void ArgParser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) != 0) {
      positional_.push_back(a);
      continue;
    }
    std::string body = a.substr(2);
    TRACON_REQUIRE(!body.empty(), "bare '--' is not a flag");
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      flags_[body] = args[i + 1];
      ++i;
    } else {
      flags_[body] = "";
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string ArgParser::get(const std::string& name,
                           const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    std::size_t pos = 0;
    double v = std::stod(it->second, &pos);
    TRACON_REQUIRE(pos == it->second.size(), "trailing junk in number");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

long ArgParser::get_int(const std::string& name, long fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    std::size_t pos = 0;
    long v = std::stol(it->second, &pos);
    TRACON_REQUIRE(pos == it->second.size(), "trailing junk in integer");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name +
                                " expects an integer, got '" + it->second +
                                "'");
  }
}

std::vector<std::string> ArgParser::unknown_flags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (std::find(known.begin(), known.end(), name) == known.end())
      out.push_back(name);
  }
  return out;
}

}  // namespace tracon
