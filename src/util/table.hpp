// Plain-text table and CSV rendering for benchmark harness output.
//
// Each bench binary reproduces one table or figure of the paper and
// prints its rows with TableWriter so the output can be compared to the
// paper by eye, and optionally dumped as CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tracon {

/// Accumulates rows of string cells and renders them column-aligned.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Adds one row; must have as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 3);

  /// Renders with padded columns and a separator under the header.
  void print(std::ostream& os) const;

  /// Renders as comma-separated values (header first).
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table cells).
std::string fmt(double value, int precision = 3);

}  // namespace tracon
