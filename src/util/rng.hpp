// Seeded random number generation for reproducible simulation.
//
// Every stochastic component in TRACON draws from an explicitly seeded
// Rng so that experiments are bit-reproducible across runs. Substreams
// are derived with `fork` so that adding draws in one component does not
// perturb another.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace tracon {

/// Derives the seed of an independent counter-based RNG stream from a
/// root seed and a stream index (SplitMix64 finalization over the
/// mixed pair). Unlike Rng::fork(), the result depends only on
/// (seed, stream) — never on how many draws any other stream made — so
/// a sharded simulation can hand stream `i` to shard `i` and stay
/// bit-identical no matter how many shards run or in what order.
std::uint64_t derive_stream_seed(std::uint64_t seed, std::uint64_t stream);

/// Deterministic random source. Thin facade over std::mt19937_64 with the
/// distributions the simulator needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Gaussian with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with the given rate (events per unit time).
  double exponential(double rate);

  /// Log-normally distributed multiplicative noise with median 1 and the
  /// given sigma of the underlying normal. Used for measurement jitter.
  double lognormal_noise(double sigma);

  /// Uniformly chosen index into a container of `size` elements.
  std::size_t index(std::size_t size);

  /// Derive an independent substream; deterministic given this Rng state.
  Rng fork();

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tracon
