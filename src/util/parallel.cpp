#include "util/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace tracon {

std::size_t hardware_threads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  TRACON_REQUIRE(fn != nullptr, "parallel_for needs a body");
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Keep draining indices: sibling shards still need to run so
        // join() below cannot deadlock on unclaimed work, and one bad
        // shard should not abandon the others mid-flight.
      }
    }
  };

  std::size_t spawned = std::min(threads, n) - 1;  // caller is a worker too
  std::vector<std::thread> pool;
  pool.reserve(spawned);
  for (std::size_t t = 0; t < spawned; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace tracon
