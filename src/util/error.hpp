// Error-handling helpers shared across TRACON modules.
//
// The library reports precondition violations and invariant breaks by
// throwing std::invalid_argument / std::logic_error with a message that
// names the failing expression and location. Simulation code is
// exception-free on the hot path; checks guard construction and public
// API boundaries.
#pragma once

#include <stdexcept>
#include <string>

namespace tracon {

/// Throws std::invalid_argument if `cond` is false. Use at public API
/// boundaries to validate caller-supplied arguments.
#define TRACON_REQUIRE(cond, msg)                                           \
  do {                                                                      \
    if (!(cond)) {                                                          \
      throw std::invalid_argument(std::string("TRACON precondition: ") +    \
                                  (msg) + " [" #cond "] at " __FILE__ ":" + \
                                  std::to_string(__LINE__));                \
    }                                                                       \
  } while (false)

/// Throws std::logic_error if `cond` is false. Use for internal
/// invariants that indicate a bug in TRACON itself.
#define TRACON_ASSERT(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      throw std::logic_error(std::string("TRACON invariant: ") + (msg) +  \
                             " [" #cond "] at " __FILE__ ":" +            \
                             std::to_string(__LINE__));                   \
    }                                                                     \
  } while (false)

}  // namespace tracon
