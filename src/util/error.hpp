// Error-handling helpers shared across TRACON modules.
//
// The library reports precondition violations and invariant breaks by
// throwing std::invalid_argument / std::logic_error with a message that
// names the failing expression and location. Simulation code is
// exception-free on the hot path; checks guard construction and public
// API boundaries.
//
// Two tiers exist:
//   - TRACON_REQUIRE / TRACON_ASSERT are always compiled in and guard
//     public API boundaries and cheap structural invariants.
//   - TRACON_DCHECK / TRACON_CHECK_FINITE are the paranoid tier: deep
//     per-step invariants (credit conservation, clock monotonicity,
//     NaN/Inf poisoning after factorizations) that are too hot to pay
//     for in release builds. They compile to nothing unless the build
//     defines TRACON_PARANOID (cmake -DTRACON_PARANOID=ON); the
//     condition is still type-checked in relaxed builds so paranoid
//     breakage cannot bitrot silently.
#pragma once

#include <cmath>
#include <stdexcept>
#include <string>

namespace tracon {

/// Throws std::invalid_argument if `cond` is false. Use at public API
/// boundaries to validate caller-supplied arguments.
#define TRACON_REQUIRE(cond, msg)                                           \
  do {                                                                      \
    if (!(cond)) {                                                          \
      throw std::invalid_argument(std::string("TRACON precondition: ") +    \
                                  (msg) + " [" #cond "] at " __FILE__ ":" + \
                                  std::to_string(__LINE__));                \
    }                                                                       \
  } while (false)

/// Throws std::logic_error if `cond` is false. Use for internal
/// invariants that indicate a bug in TRACON itself.
#define TRACON_ASSERT(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      throw std::logic_error(std::string("TRACON invariant: ") + (msg) +  \
                             " [" #cond "] at " __FILE__ ":" +            \
                             std::to_string(__LINE__));                   \
    }                                                                     \
  } while (false)

#if defined(TRACON_PARANOID)

/// Paranoid-tier invariant: behaves like TRACON_ASSERT when the build
/// defines TRACON_PARANOID, compiles to nothing (but stays
/// type-checked) otherwise. Use for per-step checks on hot paths.
#define TRACON_DCHECK(cond, msg) TRACON_ASSERT(cond, msg)

/// Paranoid-tier finiteness guard: throws std::logic_error if `value`
/// is NaN or infinite. Use after factorizations, solves, and rate
/// computations where a poisoned double would otherwise propagate into
/// every downstream scheduling decision.
#define TRACON_CHECK_FINITE(value, msg)                                      \
  do {                                                                       \
    const double tracon_cf_v_ = static_cast<double>(value);                  \
    if (!std::isfinite(tracon_cf_v_)) {                                      \
      throw std::logic_error(std::string("TRACON non-finite: ") + (msg) +    \
                             " [" #value " = " +                             \
                             std::to_string(tracon_cf_v_) + "] at "          \
                             __FILE__ ":" + std::to_string(__LINE__));       \
    }                                                                        \
  } while (false)

#else  // !TRACON_PARANOID

#define TRACON_DCHECK(cond, msg)                                \
  do {                                                          \
    if (false) {                                                \
      static_cast<void>(cond);                                  \
      static_cast<void>(msg);                                   \
    }                                                           \
  } while (false)

#define TRACON_CHECK_FINITE(value, msg)                         \
  do {                                                          \
    if (false) {                                                \
      static_cast<void>(static_cast<double>(value));            \
      static_cast<void>(msg);                                   \
    }                                                           \
  } while (false)

#endif  // TRACON_PARANOID

/// True when the paranoid tier is compiled in; lets tests and tools
/// branch on the active mode without touching the preprocessor.
#if defined(TRACON_PARANOID)
inline constexpr bool kParanoidChecksEnabled = true;
#else
inline constexpr bool kParanoidChecksEnabled = false;
#endif

}  // namespace tracon
