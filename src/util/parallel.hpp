// Bounded worker pool for the sharded simulator.
//
// This file (together with src/sim/shard_*) is the sanctioned home of
// raw threading primitives — tracon_lint's raw-thread rule errors on
// std::thread / std::async / mutexes anywhere else in src/, so
// nondeterministic concurrency cannot leak into simulation code. The
// contract every caller relies on: parallel_for runs side-effect-
// isolated closures (each index touches only its own state), so the
// RESULT of a parallel_for is independent of the worker count — only
// the wall-clock time changes.
#pragma once

#include <cstddef>
#include <functional>

namespace tracon {

/// Number of hardware threads, never 0 (falls back to 1 when the
/// platform reports nothing).
std::size_t hardware_threads();

/// Runs fn(0), fn(1), ..., fn(n-1) on up to `threads` workers (the
/// calling thread participates; `threads` <= 1 or n <= 1 degrade to a
/// plain serial loop with no thread spawned). Indices are claimed from
/// a shared atomic counter, so scheduling is dynamic, but fn must make
/// each index's work independent of every other's — the function
/// returns only after all indices completed. The first exception thrown
/// by any fn is rethrown on the caller after every worker has joined.
void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace tracon
