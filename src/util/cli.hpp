// Minimal command-line argument parsing for the tools and benches.
//
// Supports `--flag`, `--flag value`, and `--flag=value`; everything else
// is positional. Unknown-flag detection is the caller's job via
// `unknown_flags` (the parser cannot know which boolean flags exist).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tracon {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);
  explicit ArgParser(const std::vector<std::string>& args);

  /// True when --name was given (with or without a value).
  bool has(const std::string& name) const;

  /// The value of --name, or `fallback` when absent. A flag given
  /// without a value yields the empty string.
  std::string get(const std::string& name,
                  const std::string& fallback = "") const;

  double get_double(const std::string& name, double fallback) const;
  long get_int(const std::string& name, long fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags present on the command line but not in `known` — for usage
  /// errors.
  std::vector<std::string> unknown_flags(
      const std::vector<std::string>& known) const;

 private:
  void parse(const std::vector<std::string>& args);

  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace tracon
