#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace tracon {

std::uint64_t derive_stream_seed(std::uint64_t seed, std::uint64_t stream) {
  // SplitMix64 finalizer applied twice: once over the root seed, once
  // over the mix of that and the stream index. The double application
  // keeps adjacent (seed, stream) pairs far apart in output space.
  auto mix = [](std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  };
  return mix(mix(seed) ^ (stream + 0x632be59bd9b4e019ULL));
}

double Rng::uniform(double lo, double hi) {
  TRACON_REQUIRE(lo <= hi, "uniform bounds out of order");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  TRACON_REQUIRE(lo <= hi, "uniform_int bounds out of order");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::normal(double mean, double stddev) {
  TRACON_REQUIRE(stddev >= 0.0, "normal stddev must be non-negative");
  if (stddev <= 0.0) return mean;
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::exponential(double rate) {
  TRACON_REQUIRE(rate > 0.0, "exponential rate must be positive");
  return std::exponential_distribution<double>(rate)(engine_);
}

double Rng::lognormal_noise(double sigma) {
  TRACON_REQUIRE(sigma >= 0.0, "lognormal sigma must be non-negative");
  if (sigma <= 0.0) return 1.0;
  return std::exp(normal(0.0, sigma));
}

std::size_t Rng::index(std::size_t size) {
  TRACON_REQUIRE(size > 0, "index over empty range");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

Rng Rng::fork() {
  // Draw a fresh seed; golden-ratio increment decorrelates consecutive forks.
  std::uint64_t seed = engine_() ^ 0x9e3779b97f4a7c15ULL;
  return Rng(seed);
}

}  // namespace tracon
