#include "sim/perf_table.hpp"

#include <istream>
#include <ostream>
#include <string>

#include "util/error.hpp"

namespace tracon::sim {

PerfTable PerfTable::build(model::Profiler& profiler,
                           const std::vector<virt::AppBehavior>& apps) {
  TRACON_REQUIRE(!apps.empty(), "perf table needs at least one app");
  PerfTable t;
  const std::size_t n = apps.size();
  t.runtime_ = stats::Matrix(n, n + 1);
  t.iops_ = stats::Matrix(n, n + 1);
  t.names_.reserve(n);
  t.profiles_.reserve(n);
  for (std::size_t a = 0; a < n; ++a) {
    t.names_.push_back(apps[a].name);
    t.profiles_.push_back(profiler.solo_profile(apps[a]));
    const virt::VmRunStats& solo = profiler.solo_stats(apps[a]);
    t.runtime_(a, n) = solo.runtime_s;
    t.iops_(a, n) = solo.iops;
    for (std::size_t b = 0; b < n; ++b) {
      virt::PairMeasurement pm = profiler.measure(apps[a], apps[b]);
      t.runtime_(a, b) = pm.runtime_s;
      t.iops_(a, b) = pm.iops;
    }
  }
  return t;
}

const std::string& PerfTable::app_name(std::size_t a) const {
  TRACON_REQUIRE(a < names_.size(), "app index out of range");
  return names_[a];
}

const monitor::AppProfile& PerfTable::profile(std::size_t a) const {
  TRACON_REQUIRE(a < profiles_.size(), "app index out of range");
  return profiles_[a];
}

double PerfTable::solo_runtime(std::size_t a) const {
  return runtime(a, std::nullopt);
}

double PerfTable::solo_iops(std::size_t a) const {
  return iops(a, std::nullopt);
}

double PerfTable::runtime(std::size_t a,
                          const std::optional<std::size_t>& b) const {
  TRACON_REQUIRE(a < num_apps(), "app index out of range");
  std::size_t col = b.value_or(num_apps());
  TRACON_REQUIRE(col <= num_apps(), "neighbour index out of range");
  return runtime_(a, col);
}

double PerfTable::iops(std::size_t a,
                       const std::optional<std::size_t>& b) const {
  TRACON_REQUIRE(a < num_apps(), "app index out of range");
  std::size_t col = b.value_or(num_apps());
  TRACON_REQUIRE(col <= num_apps(), "neighbour index out of range");
  return iops_(a, col);
}

double PerfTable::speed(std::size_t a,
                        const std::optional<std::size_t>& b) const {
  double paired = runtime(a, b);
  TRACON_ASSERT(paired > 0.0, "non-positive measured runtime");
  return solo_runtime(a) / paired;
}

sched::TablePredictor PerfTable::oracle_predictor() const {
  return sched::TablePredictor(runtime_, iops_);
}


namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

double parse_number(const std::string& s) {
  std::size_t pos = 0;
  double v = std::stod(s, &pos);
  TRACON_REQUIRE(pos == s.size(), "malformed number in perf-table CSV");
  return v;
}

}  // namespace

void PerfTable::save_csv(std::ostream& os) const {
  const std::size_t n = num_apps();
  os << "tracon-perftable,v1," << n << "\n";
  os.precision(17);
  for (std::size_t a = 0; a < n; ++a) {
    const monitor::AppProfile& p = profiles_[a];
    os << "app," << names_[a] << ',' << p.domu_cpu << ',' << p.dom0_cpu
       << ',' << p.reads_per_s << ',' << p.writes_per_s << "\n";
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b <= n; ++b) {
      os << "cell," << a << ',';
      if (b < n) {
        os << b;
      } else {
        os << "solo";
      }
      os << ',' << runtime_(a, b) << ',' << iops_(a, b) << "\n";
    }
  }
}

PerfTable PerfTable::load_csv(std::istream& is) {
  std::string line;
  TRACON_REQUIRE(static_cast<bool>(std::getline(is, line)),
                 "empty perf-table CSV");
  auto header = split_csv_line(line);
  TRACON_REQUIRE(header.size() == 3 && header[0] == "tracon-perftable" &&
                     header[1] == "v1",
                 "not a tracon perf-table CSV");
  auto n = static_cast<std::size_t>(parse_number(header[2]));
  TRACON_REQUIRE(n >= 1, "perf-table CSV with no applications");

  PerfTable t;
  t.runtime_ = stats::Matrix(n, n + 1);
  t.iops_ = stats::Matrix(n, n + 1);
  std::vector<char> cell_seen(n * (n + 1), 0);
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    auto f = split_csv_line(line);
    if (f[0] == "app") {
      TRACON_REQUIRE(f.size() == 6, "malformed app row");
      TRACON_REQUIRE(t.names_.size() < n, "too many app rows");
      t.names_.push_back(f[1]);
      monitor::AppProfile p;
      p.domu_cpu = parse_number(f[2]);
      p.dom0_cpu = parse_number(f[3]);
      p.reads_per_s = parse_number(f[4]);
      p.writes_per_s = parse_number(f[5]);
      t.profiles_.push_back(p);
    } else if (f[0] == "cell") {
      TRACON_REQUIRE(f.size() == 5, "malformed cell row");
      auto a = static_cast<std::size_t>(parse_number(f[1]));
      std::size_t b = f[2] == "solo"
                          ? n
                          : static_cast<std::size_t>(parse_number(f[2]));
      TRACON_REQUIRE(a < n && b <= n, "cell index out of range");
      t.runtime_(a, b) = parse_number(f[3]);
      t.iops_(a, b) = parse_number(f[4]);
      cell_seen[a * (n + 1) + b] = 1;
    } else {
      throw std::invalid_argument("unknown perf-table CSV row type '" +
                                  f[0] + "'");
    }
  }
  TRACON_REQUIRE(t.names_.size() == n, "missing app rows");
  for (char seen : cell_seen)
    TRACON_REQUIRE(seen, "missing cell rows in perf-table CSV");
  return t;
}

}  // namespace tracon::sim
