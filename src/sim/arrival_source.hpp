// Arrival-stream abstraction for the dynamic scenario.
//
// run_dynamic consumes a materialized, time-sorted arrival list; an
// ArrivalSource is anything that can produce one. The Poisson/mix
// generator the paper's dynamic experiment uses is one implementation
// (below); src/replay adds TraceArrivalSource, which replays a recorded
// JSONL arrival trace byte-for-byte so the same historical workload can
// be driven through different schedulers (A/B on real traces).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "workload/mixes.hpp"

namespace tracon::sim {

/// One externally supplied task arrival.
struct Arrival {
  double time_s = 0.0;
  std::size_t app = 0;
};

class ArrivalSource {
 public:
  virtual ~ArrivalSource() = default;

  /// Materializes the full arrival stream, sorted by time. `num_apps`
  /// is the size of the application-class universe; every returned
  /// arrival's app index must be < num_apps.
  virtual std::vector<Arrival> arrivals(std::size_t num_apps) = 0;

  /// Short label for logs and run fingerprints ("poisson", "trace").
  virtual std::string name() const = 0;
};

/// The paper's arrival model: a Poisson process with rate lambda per
/// minute whose task classes are drawn from a Gaussian-rank workload
/// mix. Deterministic given the seed.
class PoissonArrivalSource final : public ArrivalSource {
 public:
  PoissonArrivalSource(double lambda_per_min, double duration_s,
                       workload::MixKind mix, double mix_stddev,
                       std::uint64_t seed);

  std::vector<Arrival> arrivals(std::size_t num_apps) override;
  std::string name() const override { return "poisson"; }

 private:
  double lambda_per_min_;
  double duration_s_;
  workload::MixKind mix_;
  double mix_stddev_;
  std::uint64_t seed_;
};

/// Drift scenario driver: Poisson arrivals whose workload mix switches
/// from `before` to `after` at `shift_time_s`. The two segments are
/// drawn from independent Poisson streams (seed and seed+1) and
/// concatenated at the shift, so the stream stays deterministic given
/// the seed and either segment matches a plain PoissonArrivalSource of
/// its mix. This is the workload that exposes time-varying prediction
/// error: a model family tuned on the pre-shift mix degrades after the
/// shift, which windowed accuracy sees and cumulative histograms blur.
class MixShiftArrivalSource final : public ArrivalSource {
 public:
  MixShiftArrivalSource(double lambda_per_min, double duration_s,
                        double shift_time_s, workload::MixKind before,
                        workload::MixKind after, double mix_stddev,
                        std::uint64_t seed);

  std::vector<Arrival> arrivals(std::size_t num_apps) override;
  std::string name() const override { return "mix_shift"; }

 private:
  double lambda_per_min_;
  double duration_s_;
  double shift_time_s_;
  workload::MixKind before_;
  workload::MixKind after_;
  double mix_stddev_;
  std::uint64_t seed_;
};

}  // namespace tracon::sim
