#include "sim/dynamic_scenario.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "obs/accuracy.hpp"
#include "obs/attribution.hpp"
#include "obs/jsonl.hpp"
#include "obs/kvlog.hpp"
#include "obs/span_log.hpp"
#include "sim/completion_heap.hpp"
#include "sim/slot_registry.hpp"
#include "util/error.hpp"

namespace tracon::sim {

namespace {

struct RunningTask {
  std::size_t app = 0;
  double remaining_solo_s = 0.0;  ///< work left, in solo-execution seconds
  double started_s = 0.0;         ///< when it was placed
  double iops_integral = 0.0;     ///< integral of achieved IOPS over time
  double last_update_s = 0.0;
  /// Accuracy-probe predictions captured at placement (negative when no
  /// probe was attached).
  double predicted_runtime_s = -1.0;
  double predicted_iops = -1.0;
  /// Neighbour class at placement time, for completion observers.
  std::optional<std::size_t> placed_neighbour;
  /// Arrival index, joining this task's decision-log records.
  std::uint64_t task_id = 0;
  /// Migration stop-and-copy pause: no progress before this time.
  double frozen_until_s = 0.0;
  /// Start of the task's open span-log epoch (co-runner and copy state
  /// constant since then). Only maintained when spans are recorded.
  double span_open_s = 0.0;
};

struct Machine {
  std::optional<RunningTask> slot[2];
  /// Migration copy window: every resident task runs at the cost
  /// model's copy_speed_factor until this time.
  double copy_until_s = 0.0;

  std::size_t occupancy() const {
    return (slot[0].has_value() ? 1u : 0u) + (slot[1].has_value() ? 1u : 0u);
  }
};

/// Control events. Completions are NOT queued here: they live in the
/// indexed CompletionHeap, keyed by VM slot, where ETA changes move the
/// slot's single entry in place instead of stranding dead events.
enum class EventType { kArrival, kWakeup, kRound, kSnapshot, kRebalance };

struct Event {
  double time = 0.0;
  EventType type = EventType::kArrival;
  std::size_t index = 0;  ///< arrival index (kArrival only)

  bool operator>(const Event& o) const { return time > o.time; }
};

int registry_key(const Machine& m) {
  std::size_t occ = m.occupancy();
  if (occ == 2) return SlotRegistry::kNone;
  if (occ == 0) return 0;
  const RunningTask& t = m.slot[0].has_value() ? *m.slot[0] : *m.slot[1];
  return 1 + static_cast<int>(t.app);
}

}  // namespace

double DynamicOutcome::throughput_per_hour() const {
  return duration_s > 0.0
             ? static_cast<double>(completed) / (duration_s / 3600.0)
             : 0.0;
}

std::vector<Arrival> generate_arrivals(const DynamicConfig& cfg,
                                       std::size_t num_apps) {
  PoissonArrivalSource source(cfg.lambda_per_min, cfg.duration_s, cfg.mix,
                              cfg.mix_stddev, cfg.seed);
  return source.arrivals(num_apps);
}

DynamicOutcome run_dynamic(const PerfTable& table,
                           sched::Scheduler& scheduler,
                           const DynamicConfig& cfg) {
  std::vector<Arrival> arrivals =
      cfg.arrival_source != nullptr
          ? cfg.arrival_source->arrivals(table.num_apps())
          : generate_arrivals(cfg, table.num_apps());
  return run_dynamic(table, scheduler, cfg, arrivals);
}

DynamicOutcome run_dynamic(const PerfTable& table,
                           sched::Scheduler& scheduler,
                           const DynamicConfig& cfg,
                           std::span<const Arrival> arrivals) {
  TRACON_REQUIRE(cfg.machines > 0, "need at least one machine");
  TRACON_REQUIRE(cfg.duration_s > 0.0, "duration must be positive");
  for (std::size_t i = 1; i < arrivals.size(); ++i)
    TRACON_REQUIRE(arrivals[i - 1].time_s <= arrivals[i].time_s,
                   "arrivals must be sorted by time");

  const std::size_t n = table.num_apps();

  std::vector<Machine> fleet(cfg.machines);
  sched::ClusterCounts counts(n, cfg.machines);
  if (cfg.candidate_index != nullptr) cfg.candidate_index->attach(&counts);
  scheduler.set_candidate_index(cfg.candidate_index);
  SlotRegistry registry(cfg.machines, n);
  for (std::size_t m = 0; m < cfg.machines; ++m)
    registry.set_key(m, 0);

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  // Completions live in an indexed heap keyed by VM slot; ETA changes
  // move the slot's single entry in place instead of stranding stale
  // events behind a stamp check.
  CompletionHeap completions(cfg.machines * 2);
  std::vector<sched::QueuedTask> queue;

  DynamicOutcome out;
  double wait_sum = 0.0;
  std::size_t started = 0;
  double queue_len_integral = 0.0;
  double last_event_time = 0.0;

  // Utilization accounting: time-integrals of busy machines (>=1 task)
  // and busy VM slots, advanced at every event alongside the queue
  // integral.
  std::size_t busy_machines = 0;
  std::size_t busy_slots = 0;
  double busy_machine_integral = 0.0;
  double busy_slot_integral = 0.0;

  obs::Telemetry* tel = cfg.telemetry;
  obs::Histogram* wait_hist = nullptr;
  obs::Histogram* runtime_hist = nullptr;
  // Task counters are incremented live (not tallied at the end) so the
  // snapshot series sees meaningful per-window deltas; the end-of-run
  // export carries the same totals either way.
  obs::Counter* c_arrived = nullptr;
  obs::Counter* c_dropped = nullptr;
  obs::Counter* c_placed = nullptr;
  obs::Counter* c_completed = nullptr;
  obs::Counter* c_migrated = nullptr;
  std::optional<obs::AccuracyTracker> acc_runtime;
  std::optional<obs::AccuracyTracker> acc_iops;
  if (tel != nullptr) {
    wait_hist = &tel->metrics.histogram(
        "sim.task.wait_s",
        {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0});
    runtime_hist = &tel->metrics.histogram(
        "sim.task.runtime_s",
        {10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0});
    c_arrived = &tel->metrics.counter("sim.tasks.arrived");
    c_dropped = &tel->metrics.counter("sim.tasks.dropped");
    c_placed = &tel->metrics.counter("sim.tasks.placed");
    c_completed = &tel->metrics.counter("sim.tasks.completed");
    // Registered only on rebalancing runs so non-rebalancing exports
    // keep their exact bytes.
    if (cfg.rebalancer != nullptr)
      c_migrated = &tel->metrics.counter("sim.tasks.migrated");
    if (cfg.accuracy_probe != nullptr) {
      std::string family =
          cfg.accuracy_family.empty() ? "probe" : cfg.accuracy_family;
      acc_runtime.emplace(tel->metrics, family, "runtime");
      acc_iops.emplace(tel->metrics, family, "iops");
    }
  }
  auto trace_event = [&](double now, obs::TraceEventKind kind,
                         std::size_t app, std::size_t machine,
                         std::size_t count, double value, double value2) {
    if (tel == nullptr) return;
    obs::TraceEvent ev;
    ev.time_s = now;
    ev.kind = kind;
    ev.app = app;
    ev.machine = machine;
    ev.count = count;
    ev.value = value;
    ev.value2 = value2;
    tel->tracer.record(ev);
  };

  auto neighbour_of = [&](const Machine& m,
                          int slot) -> std::optional<std::size_t> {
    const auto& other = m.slot[1 - slot];
    if (!other.has_value()) return std::nullopt;
    return other->app;
  };

  // Speed multiplier a migration's copy window applies to every task
  // on the source and destination hosts (1.0 when rebalancing is off,
  // and every copy/freeze branch below is dead code).
  const double copy_factor =
      cfg.rebalancer != nullptr
          ? cfg.rebalancer->cost_model().copy_speed_factor()
          : 1.0;

  // Task-lifecycle span recording (obs::SpanLog). An epoch is the
  // stretch since a task's co-runner or copy-window state last changed;
  // close_epoch splits the open epoch at the task's freeze and the
  // machine's copy-window boundaries into the span kinds in force —
  // the same piecewise factors advance_machine integrates — and
  // re-opens it at `now`. Every mutation that changes a slot's
  // neighbour or a machine's copy window closes the affected epochs
  // FIRST, so an open epoch only ever sees the freeze/copy boundaries
  // that were in force when it opened.
  const bool spans_on = tel != nullptr && tel->spans.enabled();
  auto close_epoch = [&](std::size_t mi, int slot, double now) {
    Machine& m = fleet[mi];
    if (!m.slot[slot].has_value()) return;
    RunningTask& t = *m.slot[slot];
    auto nb = neighbour_of(m, slot);
    const double speed = table.speed(t.app, nb);
    double t0 = t.span_open_s;
    while (t0 < now) {
      obs::SpanEvent se;
      se.task = t.task_id;
      se.app = t.app;
      se.machine = mi;
      se.t0_s = t0;
      double t1 = now;
      if (t0 < t.frozen_until_s) {
        se.kind = obs::SpanEvent::Kind::kMigrationFreeze;
        t1 = std::min(t1, t.frozen_until_s);
      } else if (t0 < m.copy_until_s) {
        se.kind = obs::SpanEvent::Kind::kMigrationCopy;
        se.neighbour = nb;
        se.factor = speed;
        se.copy_factor = copy_factor;
        t1 = std::min(t1, m.copy_until_s);
      } else {
        se.kind = obs::SpanEvent::Kind::kRunning;
        se.neighbour = nb;
        se.factor = speed;
      }
      se.t1_s = t1;
      tel->spans.record(std::move(se));
      t0 = t1;
    }
    t.span_open_s = now;
  };
  auto close_epochs = [&](std::size_t mi, double now) {
    close_epoch(mi, 0, now);
    close_epoch(mi, 1, now);
  };

  // Brings a machine's running tasks up to `now`, integrating progress
  // piecewise over a task's migration freeze (no progress) and the
  // machine's copy window (reduced speed).
  auto advance_machine = [&](std::size_t mi, double now) {
    Machine& m = fleet[mi];
    for (int s = 0; s < 2; ++s) {
      if (!m.slot[s].has_value()) continue;
      RunningTask& t = *m.slot[s];
      if (now <= t.last_update_s) continue;
      auto nb = neighbour_of(m, s);
      double speed = table.speed(t.app, nb);
      double iops = table.iops(t.app, nb);
      double t0 = t.last_update_s;
      while (t0 < now) {
        double t1 = now;
        double factor = 1.0;
        if (t0 < t.frozen_until_s) {
          factor = 0.0;
          t1 = std::min(t1, t.frozen_until_s);
        } else if (t0 < m.copy_until_s) {
          factor = copy_factor;
          t1 = std::min(t1, m.copy_until_s);
        }
        double dt = t1 - t0;
        t.remaining_solo_s =
            std::max(0.0, t.remaining_solo_s - dt * speed * factor);
        t.iops_integral += iops * factor * dt;
        t0 = t1;
      }
      t.last_update_s = now;
    }
  };

  // Re-times a machine's completion entries after any state change:
  // occupied slots get their piecewise ETA recomputed and moved in
  // place, freed slots leave the heap.
  auto update_etas = [&](std::size_t mi, double now) {
    Machine& m = fleet[mi];
    for (int s = 0; s < 2; ++s) {
      const std::size_t id = mi * 2 + static_cast<std::size_t>(s);
      if (!m.slot[s].has_value()) {
        completions.remove(id);
        continue;
      }
      const RunningTask& t = *m.slot[s];
      double speed = table.speed(t.app, neighbour_of(m, s));
      TRACON_ASSERT(speed > 0.0, "non-positive task speed");
      // Piecewise ETA mirroring advance_machine: sit out the freeze,
      // run the copy window at reduced speed, then full speed.
      double t0 = now;
      double rem = t.remaining_solo_s;
      if (t.frozen_until_s > t0) t0 = t.frozen_until_s;
      if (m.copy_until_s > t0) {
        // copy_interference < 1 keeps the copy-window rate positive.
        double rate = speed * copy_factor;
        double work = (m.copy_until_s - t0) * rate;
        if (work >= rem) {
          completions.update(id, t0 + rem / rate);
          continue;
        }
        rem -= work;
        t0 = m.copy_until_s;
      }
      completions.update(id, t0 + rem / speed);
    }
  };

  // Invokes the scheduler repeatedly until it stops placing (a batch
  // scheduler only handles one window per call).
  auto run_scheduler = [&](double now) {
    sched::ScheduleContext ctx{now};
    for (bool progressed = true; progressed;) {
      auto placements = scheduler.schedule(queue, counts, ctx);
      progressed = !placements.empty();
      std::vector<std::size_t> remove;
      remove.reserve(placements.size());
      for (const auto& p : placements) {
        TRACON_ASSERT(p.queue_pos < queue.size(), "bad placement position");
        std::size_t app = queue[p.queue_pos].app;
        counts.place(app, p.neighbour);
        int key = p.neighbour.has_value()
                      ? 1 + static_cast<int>(*p.neighbour)
                      : 0;
        std::size_t mi = registry.pop(key);
        advance_machine(mi, now);
        Machine& m = fleet[mi];
        int slot = m.slot[0].has_value() ? 1 : 0;
        TRACON_ASSERT(!m.slot[slot].has_value(), "slot already busy");
        RunningTask t;
        t.app = app;
        t.remaining_solo_s = table.solo_runtime(app);
        t.started_s = now;
        t.last_update_s = now;
        t.placed_neighbour = p.neighbour;
        t.task_id = queue[p.queue_pos].id;
        if (tel != nullptr) tel->decisions.bind_machine(t.task_id, mi);
        if (cfg.accuracy_probe != nullptr) {
          t.predicted_runtime_s =
              cfg.accuracy_probe->predict_runtime(app, p.neighbour);
          t.predicted_iops = cfg.accuracy_probe->predict_iops(app, p.neighbour);
        }
        t.span_open_s = now;
        if (spans_on) {
          close_epochs(mi, now);  // the resident's co-runner changes
          obs::SpanEvent qs;
          qs.kind = obs::SpanEvent::Kind::kQueued;
          qs.task = t.task_id;
          qs.app = app;
          qs.t0_s = queue[p.queue_pos].arrival_s;
          qs.t1_s = now;
          tel->spans.record(std::move(qs));
        }
        m.slot[slot] = t;
        registry.set_key(mi, registry_key(m));
        update_etas(mi, now);
        ++busy_slots;
        if (m.occupancy() == 1) {
          ++busy_machines;
          trace_event(now, obs::TraceEventKind::kVmStart, app, mi,
                      m.occupancy(), 0.0, 0.0);
        }
        if (cfg.trace != nullptr)
          cfg.trace->record(now, TaskEventKind::kPlaced, app, mi);
        double wait = now - queue[p.queue_pos].arrival_s;
        if (wait_hist != nullptr) wait_hist->observe(wait);
        trace_event(now, obs::TraceEventKind::kTaskPlaced, app, mi,
                    queue.size(), t.predicted_runtime_s, wait);
        wait_sum += wait;
        ++started;
        if (c_placed != nullptr) c_placed->inc();
        remove.push_back(p.queue_pos);
      }
      std::sort(remove.begin(), remove.end(), std::greater<>());
      for (std::size_t pos : remove)
        queue.erase(queue.begin() + static_cast<long>(pos));
    }
    if (auto wake = scheduler.next_wakeup(queue, ctx);
        wake.has_value() && *wake > now && *wake < cfg.duration_s) {
      events.push({*wake, EventType::kWakeup});
    }
  };

  // One rebalance round: snapshot the running tasks, let the
  // rebalancer plan against its live signals, then apply each move —
  // lift the task off its source host, claim a destination slot of the
  // planned class, freeze the task for the downtime, open the copy
  // window on both hosts, and record provenance.
  auto run_rebalancer = [&](double now) {
    std::vector<migrate::RunningTaskView> views;
    for (std::size_t mi = 0; mi < cfg.machines; ++mi) {
      advance_machine(mi, now);
      Machine& m = fleet[mi];
      // Hosts mid-copy and tasks mid-freeze sit a round out: stacking
      // migrations on an in-flight one compounds cost unpredictably.
      if (m.copy_until_s > now) continue;
      for (int s = 0; s < 2; ++s) {
        if (!m.slot[s].has_value()) continue;
        const RunningTask& t = *m.slot[s];
        if (t.frozen_until_s > now) continue;
        if (t.remaining_solo_s <= 1e-6) continue;  // completing now
        migrate::RunningTaskView v;
        v.task_id = t.task_id;
        v.app = t.app;
        v.machine = mi;
        v.neighbour = neighbour_of(m, s);
        v.remaining_solo_s = t.remaining_solo_s;
        v.solo_runtime_s = table.solo_runtime(t.app);
        v.started_s = t.started_s;
        views.push_back(v);
      }
    }
    // Worst-mispredict signal: attribute the run's own decision log so
    // far. Shard-local under the sharded engine, so the report (and
    // every plan derived from it) is thread-count independent.
    std::optional<obs::AttributionReport> report;
    if (tel != nullptr && tel->decisions.enabled() &&
        tel->decisions.size() > 0) {
      obs::DecisionDoc doc;
      doc.version = obs::kJsonlSchemaVersion;
      doc.events = tel->decisions.events();
      report.emplace(obs::attribute(doc));
    }
    const auto plans = cfg.rebalancer->plan(
        now, views, counts, report.has_value() ? &*report : nullptr);
    for (const migrate::MigrationPlan& p : plans) {
      // Resolve the destination before touching anything: earlier moves
      // in the same round can have consumed the planned class's last
      // slot (or left only the source machine itself holding it), in
      // which case the plan is quietly dropped — the cluster state
      // stays truthful and later plans resolve against it.
      int key = p.dest_neighbour.has_value()
                    ? 1 + static_cast<int>(*p.dest_neighbour)
                    : 0;
      std::optional<std::size_t> dest =
          registry.try_pop_excluding(key, p.from_machine);
      if (!dest.has_value()) continue;
      std::size_t dest_mi = *dest;

      Machine& src = fleet[p.from_machine];
      int slot = -1;
      for (int s = 0; s < 2; ++s) {
        if (src.slot[s].has_value() && src.slot[s]->task_id == p.task_id)
          slot = s;
      }
      TRACON_ASSERT(slot >= 0, "planned migration names a missing task");
      // Close both source epochs before lifting: the moved task's
      // epoch ends and the left-behind co-runner's neighbour changes.
      if (spans_on) close_epochs(p.from_machine, now);
      RunningTask moved = *src.slot[slot];
      src.slot[slot].reset();
      --busy_slots;
      if (src.occupancy() == 0) {
        --busy_machines;
        trace_event(now, obs::TraceEventKind::kVmStop, moved.app,
                    p.from_machine, 0, now - moved.started_s, 0.0);
      }
      counts.depart(moved.app, neighbour_of(src, slot));
      registry.set_key(p.from_machine, registry_key(src));

      counts.place(moved.app, p.dest_neighbour);
      advance_machine(dest_mi, now);
      // Close the destination resident's epoch too — its co-runner is
      // about to change, and the copy window below must only cover
      // epochs opened at `now`.
      if (spans_on) close_epochs(dest_mi, now);
      Machine& dst = fleet[dest_mi];
      int dslot = dst.slot[0].has_value() ? 1 : 0;
      TRACON_ASSERT(!dst.slot[dslot].has_value(), "slot already busy");
      moved.last_update_s = now;
      moved.span_open_s = now;
      moved.frozen_until_s = now + p.downtime_s;
      moved.placed_neighbour = p.dest_neighbour;
      dst.slot[dslot] = moved;
      registry.set_key(dest_mi, registry_key(dst));
      ++busy_slots;
      if (dst.occupancy() == 1) {
        ++busy_machines;
        trace_event(now, obs::TraceEventKind::kVmStart, moved.app, dest_mi,
                    dst.occupancy(), 0.0, 0.0);
      }

      double copy_end = now + p.copy_s;
      src.copy_until_s = std::max(src.copy_until_s, copy_end);
      dst.copy_until_s = std::max(dst.copy_until_s, copy_end);
      update_etas(p.from_machine, now);
      update_etas(dest_mi, now);

      if (c_migrated != nullptr) c_migrated->inc();
      if (tel != nullptr && tel->decisions.enabled()) {
        obs::DecisionEvent de;
        de.task = moved.task_id;
        de.time_s = now;
        de.app = moved.app;
        de.machine = dest_mi;
        de.from_machine = p.from_machine;
        de.from_neighbour = p.from_neighbour;
        de.neighbour = p.dest_neighbour;
        de.predicted_stay_s = p.predicted_stay_s;
        de.predicted_move_s = p.predicted_move_s;
        de.downtime_s = p.downtime_s;
        de.copy_s = p.copy_s;
        de.cost_s = p.cost_s;
        de.margin = p.margin;
        tel->decisions.record_migration(std::move(de));
      }
    }
  };

  // Prime the arrival stream and the manager's scheduling rounds.
  TRACON_REQUIRE(cfg.queue_capacity >= 1, "queue capacity must be >= 1");
  TRACON_REQUIRE(cfg.schedule_period_s > 0.0,
                 "schedule period must be positive");
  if (!arrivals.empty() && arrivals.front().time_s < cfg.duration_s)
    events.push({arrivals.front().time_s, EventType::kArrival, 0});
  // Online schedulers (FIFO, MIOS) dispatch on every event. Batch
  // schedulers are triggered by arrivals (the paper: "the scheduling
  // process takes place when the queue that holds the incoming tasks is
  // full") and by the manager's periodic safety round — NOT by
  // completions: freed VMs accumulate between batches, which is what
  // gives MIBS/MIX genuinely concurrent placement choices.
  const bool online = scheduler.online();
  events.push({cfg.schedule_period_s, EventType::kRound});
  if (cfg.snapshots != nullptr) {
    TRACON_REQUIRE(tel != nullptr, "snapshot series requires telemetry");
    events.push({std::min(cfg.snapshots->interval_s(), cfg.duration_s),
                 EventType::kSnapshot});
  }
  TRACON_REQUIRE(
      cfg.windowed_runtime == nullptr || cfg.accuracy_probe != nullptr,
      "windowed runtime accuracy requires an accuracy probe");
  TRACON_REQUIRE(
      cfg.windowed_iops == nullptr || cfg.accuracy_probe != nullptr,
      "windowed IOPS accuracy requires an accuracy probe");
  if (cfg.rebalancer != nullptr) {
    double first = cfg.rebalancer->config().interval_s;
    if (first < cfg.duration_s)
      events.push({first, EventType::kRebalance});
  }

  while (!events.empty() || !completions.empty()) {
    // Two-queue merge: control events win equal-time ties so that a
    // round/arrival at the exact instant of a completion sees the
    // pre-completion cluster — completions at a tied time strictly
    // follow, as a deterministic rule rather than heap happenstance.
    const bool take_comp =
        !completions.empty() &&
        (events.empty() || completions.top().time < events.top().time);
    const double now =
        take_comp ? completions.top().time : events.top().time;
    if (now > cfg.duration_s) break;

    double dt = now - last_event_time;
    queue_len_integral += static_cast<double>(queue.size()) * dt;
    busy_machine_integral += static_cast<double>(busy_machines) * dt;
    busy_slot_integral += static_cast<double>(busy_slots) * dt;
    last_event_time = now;

    if (take_comp) {
      const std::size_t id = completions.top().id;
      completions.pop();
      const std::size_t mi = id / 2;
      const int slot = static_cast<int>(id % 2);
      Machine& m = fleet[mi];
      TRACON_ASSERT(m.slot[slot].has_value(),
                    "completion entry for an empty slot");
      advance_machine(mi, now);
      RunningTask* t = &*m.slot[slot];
      if (t->remaining_solo_s > 1e-6) {
        // Floating-point residue left the finish past the computed
        // ETA; re-arm the slot's entry at the corrected time.
        update_etas(mi, now);
        continue;
      }
      double runtime = now - t->started_s;
      double mean_iops = runtime > 0.0 ? t->iops_integral / runtime : 0.0;
      ++out.completed;
      if (c_completed != nullptr) c_completed->inc();
      out.total_runtime += runtime;
      out.total_iops += mean_iops;
      std::size_t departed = t->app;
      if (cfg.trace != nullptr)
        cfg.trace->record(now, TaskEventKind::kCompleted, departed, mi);
      if (runtime_hist != nullptr) runtime_hist->observe(runtime);
      trace_event(now, obs::TraceEventKind::kTaskCompleted, departed, mi, 0,
                  runtime, mean_iops);
      if (acc_runtime.has_value() && t->predicted_runtime_s >= 0.0)
        acc_runtime->record(t->predicted_runtime_s, runtime);
      if (acc_iops.has_value() && t->predicted_iops >= 0.0)
        acc_iops->record(t->predicted_iops, mean_iops);
      if (cfg.windowed_runtime != nullptr && t->predicted_runtime_s >= 0.0)
        cfg.windowed_runtime->record(t->predicted_runtime_s, runtime);
      if (cfg.windowed_iops != nullptr && t->predicted_iops >= 0.0)
        cfg.windowed_iops->record(t->predicted_iops, mean_iops);
      if (cfg.outcome_observer != nullptr) {
        cfg.outcome_observer->on_completion(departed, t->placed_neighbour,
                                            runtime, mean_iops);
      }
      if (cfg.rebalancer != nullptr) {
        cfg.rebalancer->observe_completion(departed, t->placed_neighbour,
                                           runtime,
                                           table.solo_runtime(departed));
      }
      if (tel != nullptr && tel->decisions.enabled()) {
        obs::DecisionEvent de;
        de.task = t->task_id;
        de.time_s = now;
        de.app = departed;
        de.machine = mi;
        de.neighbour = t->placed_neighbour;
        de.runtime_s = runtime;
        de.iops = mean_iops;
        de.solo_runtime_s = table.solo_runtime(departed);
        tel->decisions.record_outcome(std::move(de));
      }
      if (spans_on) {
        // Close the departing task's final segment and the
        // survivor's epoch (its co-runner is about to leave), then
        // mark the completion.
        close_epochs(mi, now);
        obs::SpanEvent cm;
        cm.kind = obs::SpanEvent::Kind::kCompleted;
        cm.task = t->task_id;
        cm.app = departed;
        cm.machine = mi;
        cm.t0_s = now;
        cm.t1_s = now;
        cm.solo_runtime_s = table.solo_runtime(departed);
        tel->spans.record(std::move(cm));
      }
      m.slot[slot].reset();
      --busy_slots;
      if (m.occupancy() == 0) {
        --busy_machines;
        trace_event(now, obs::TraceEventKind::kVmStop, departed, mi, 0,
                    runtime, 0.0);
      }
      counts.depart(departed, neighbour_of(m, slot));
      registry.set_key(mi, registry_key(m));
      update_etas(mi, now);
      if (online) run_scheduler(now);
      continue;
    }

    Event ev = events.top();
    events.pop();

    switch (ev.type) {
      case EventType::kArrival: {
        ++out.arrived;
        if (c_arrived != nullptr) c_arrived->inc();
        std::size_t idx = ev.index;
        std::size_t app = arrivals[idx].app;
        TRACON_ASSERT(app < n, "arrival app out of range");
        if (cfg.trace != nullptr)
          cfg.trace->record(ev.time, TaskEventKind::kArrived, app);
        trace_event(ev.time, obs::TraceEventKind::kTaskArrival, app,
                    obs::TraceEvent::kNone, queue.size(), 0.0, 0.0);
        if (queue.size() < cfg.queue_capacity) {
          queue.push_back({app, ev.time, static_cast<std::uint64_t>(idx)});
          run_scheduler(ev.time);
        } else {
          ++out.dropped;  // manager queue full: task rejected
          if (c_dropped != nullptr) c_dropped->inc();
          if (cfg.trace != nullptr)
            cfg.trace->record(ev.time, TaskEventKind::kDropped, app);
          trace_event(ev.time, obs::TraceEventKind::kTaskDropped, app,
                      obs::TraceEvent::kNone, queue.size(), 0.0, 0.0);
        }
        if (idx + 1 < arrivals.size() &&
            arrivals[idx + 1].time_s < cfg.duration_s) {
          events.push(
              {arrivals[idx + 1].time_s, EventType::kArrival, idx + 1});
        }
        break;
      }
      case EventType::kWakeup:
        run_scheduler(ev.time);
        break;
      case EventType::kRound: {
        run_scheduler(ev.time);
        double next_round = ev.time + cfg.schedule_period_s;
        if (next_round < cfg.duration_s)
          events.push({next_round, EventType::kRound});
        break;
      }
      case EventType::kSnapshot: {
        // Instantaneous state gauges are refreshed right before the
        // sample so each window reports the state at its t_end. These
        // gauges only exist on snapshot-enabled runs.
        obs::MetricsRegistry& m = tel->metrics;
        m.gauge("sim.queue.length").set(static_cast<double>(queue.size()));
        m.gauge("sim.util.busy_machines")
            .set(static_cast<double>(busy_machines));
        m.gauge("sim.util.busy_slots").set(static_cast<double>(busy_slots));
        cfg.snapshots->sample(ev.time);
        double next = ev.time + cfg.snapshots->interval_s();
        if (next > cfg.duration_s) next = cfg.duration_s;
        if (next > ev.time)
          events.push({next, EventType::kSnapshot});
        break;
      }
      case EventType::kRebalance: {
        run_rebalancer(ev.time);
        double next = ev.time + cfg.rebalancer->config().interval_s;
        if (next < cfg.duration_s)
          events.push({next, EventType::kRebalance});
        break;
      }
    }
  }

  if (spans_on) {
    // Account the tail: tasks still running or queued when the horizon
    // closes get their open spans flushed at the horizon (mirroring how
    // the utilization integrals run out to it). No completed markers —
    // the breakdown reports them as incomplete.
    for (std::size_t mi = 0; mi < cfg.machines; ++mi)
      close_epochs(mi, cfg.duration_s);
    for (const sched::QueuedTask& q : queue) {
      obs::SpanEvent qs;
      qs.kind = obs::SpanEvent::Kind::kQueued;
      qs.task = q.id;
      qs.app = q.app;
      qs.t0_s = q.arrival_s;
      qs.t1_s = cfg.duration_s;
      tel->spans.record(std::move(qs));
    }
  }

  out.duration_s = cfg.duration_s;
  out.mean_wait_s = started > 0 ? wait_sum / static_cast<double>(started)
                                : 0.0;
  out.mean_queue_length =
      last_event_time > 0.0 ? queue_len_integral / last_event_time : 0.0;

  if (tel != nullptr) {
    // Run the utilization integrals out to the simulated horizon (the
    // cluster keeps its final occupancy until the clock stops).
    double tail = cfg.duration_s - last_event_time;
    if (tail > 0.0) {
      busy_machine_integral += static_cast<double>(busy_machines) * tail;
      busy_slot_integral += static_cast<double>(busy_slots) * tail;
      queue_len_integral += static_cast<double>(queue.size()) * tail;
    }
    double span_s = cfg.duration_s;
    obs::MetricsRegistry& m = tel->metrics;
    m.gauge("sim.util.host_busy_fraction")
        .set(busy_machine_integral /
             (static_cast<double>(cfg.machines) * span_s));
    m.gauge("sim.util.slot_busy_fraction")
        .set(busy_slot_integral /
             (2.0 * static_cast<double>(cfg.machines) * span_s));
    m.gauge("sim.queue.mean_length").set(queue_len_integral / span_s);
  }
  TRACON_KV_LOG(LogLevel::kInfo,
                obs::KvLine("sim.dynamic.done")
                    .kv("scheduler", scheduler.name())
                    .kv("arrived", out.arrived)
                    .kv("dropped", out.dropped)
                    .kv("completed", out.completed)
                    .kv("mean_wait_s", out.mean_wait_s));
  return out;
}

}  // namespace tracon::sim
