#include "sim/slot_registry.hpp"

#include <stdexcept>

#include "util/error.hpp"

namespace tracon::sim {

SlotRegistry::SlotRegistry(std::size_t machines, std::size_t num_apps)
    : key_(machines, kNone), stacks_(num_apps + 1), stale_(num_apps + 1, 0) {
  TRACON_REQUIRE(machines > 0, "registry needs at least one machine");
}

void SlotRegistry::set_key(std::size_t machine, int key) {
  const int old = key_[machine];
  if (old == key) return;  // entry (if any) is still live
  key_[machine] = key;
  if (old != kNone) note_stale(static_cast<std::size_t>(old));
  if (key != kNone) stacks_[static_cast<std::size_t>(key)].push_back(machine);
}

std::size_t SlotRegistry::pop(int key) {
  const auto k = static_cast<std::size_t>(key);
  auto& s = stacks_[k];
  while (!s.empty()) {
    std::size_t m = s.back();
    s.pop_back();
    if (key_[m] == key) {
      key_[m] = kNone;
      return m;
    }
    if (stale_[k] > 0) --stale_[k];
  }
  throw std::logic_error("SlotRegistry: no machine with requested key");
}

std::optional<std::size_t> SlotRegistry::try_pop_excluding(
    int key, std::size_t excluded) {
  const auto k = static_cast<std::size_t>(key);
  auto& s = stacks_[k];
  bool refile_excluded = false;
  std::optional<std::size_t> out;
  while (!s.empty()) {
    std::size_t m = s.back();
    s.pop_back();
    if (key_[m] != key) {  // stale entry
      if (stale_[k] > 0) --stale_[k];
      continue;
    }
    if (m == excluded) {
      refile_excluded = true;
      continue;
    }
    key_[m] = kNone;
    out = m;
    break;
  }
  if (refile_excluded) s.push_back(excluded);
  return out;
}

std::size_t SlotRegistry::stack_size(int key) const {
  return stacks_[static_cast<std::size_t>(key)].size();
}

std::size_t SlotRegistry::stale_entries(int key) const {
  return stale_[static_cast<std::size_t>(key)];
}

void SlotRegistry::note_stale(std::size_t key) {
  ++stale_[key];
  // Compact once stale entries exceed half the stack: O(live) per
  // compaction, charged against the >= size/2 discarded entries.
  if (stale_[key] * 2 > stacks_[key].size()) discard_stale(key);
}

void SlotRegistry::discard_stale(std::size_t key) {
  auto& s = stacks_[key];
  std::size_t w = 0;
  for (std::size_t r = 0; r < s.size(); ++r) {
    const std::size_t m = s[r];
    if (key_[m] == static_cast<int>(key)) s[w++] = m;
  }
  s.resize(w);
  // A machine re-entering a key can leave an older entry that still
  // looks live (it is popped-and-skipped later); the counter is
  // therefore a lower bound, and resets with the stale mass it tracked.
  stale_[key] = 0;
}

}  // namespace tracon::sim
