// Dynamic workload scenario (Section 4.2, second case): tasks arrive as
// a Poisson process with rate lambda per minute; the scheduler is
// invoked on arrivals, completions, and its own batch-timeout wake-ups.
// Running tasks' progress follows the measured pairwise speeds; when a
// VM's neighbour changes, the remaining work is re-timed at the new
// speed (the paper's remaining-20%-runs-with-task-C rule).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "migrate/rebalancer.hpp"
#include "obs/snapshot.hpp"
#include "obs/telemetry.hpp"
#include "sched/candidate_index.hpp"
#include "sched/predictor.hpp"
#include "sched/scheduler.hpp"
#include "sim/arrival_source.hpp"
#include "sim/perf_table.hpp"
#include "sim/trace.hpp"
#include "workload/mixes.hpp"

namespace tracon::sim {

struct DynamicConfig {
  std::size_t machines = 64;
  double lambda_per_min = 100.0;   ///< Poisson arrival rate
  double duration_s = 36'000.0;    ///< paper: ten hours
  workload::MixKind mix = workload::MixKind::kMedium;
  double mix_stddev = 1.5;
  std::uint64_t seed = 7;
  /// Bound of the manager's task queue — the paper's MIBS_8 subscript.
  /// Arrivals that find the queue full are rejected (counted in
  /// `dropped`); the same bound applies to every scheduler compared on
  /// a workload so losses are apples-to-apples.
  std::size_t queue_capacity = 8;
  /// Period of the manager's scheduling rounds. Application servers
  /// report status to the manager in a time interval (Section 3);
  /// between rounds completed VMs accumulate, which is what gives a
  /// batch scheduler genuinely concurrent placement choices. Online
  /// schedulers (FIFO, MIOS) additionally dispatch on every event.
  double schedule_period_s = 5.0;
  /// Optional per-task event trace (not owned; may be nullptr).
  TraceRecorder* trace = nullptr;
  /// Optional telemetry sinks (not owned; may be nullptr). When set, the
  /// run records task/VM/queue counters and histograms plus typed trace
  /// events at virtual-clock timestamps.
  obs::Telemetry* telemetry = nullptr;
  /// Optional prediction-accuracy probe (not owned). When both this and
  /// `telemetry` are set, each placement captures the probe's predicted
  /// runtime/IOPS for the chosen slot, and each completion feeds the
  /// realized values into per-family relative-error histograms
  /// (`model.<accuracy_family>.{runtime,iops}.rel_error_*`). Predictions
  /// are as-of placement: neighbour churn afterwards is part of the
  /// error being measured, exactly like the paper's online setting.
  const sched::Predictor* accuracy_probe = nullptr;
  /// Model-family label for the accuracy metrics (e.g. "NLM"); sanitized
  /// into a metric path component. Empty means "probe".
  std::string accuracy_family;
  /// Optional windowed snapshot sampler (not owned; requires
  /// `telemetry`). The event loop closes one window every
  /// snapshots->interval_s() sim-seconds (plus a final partial window
  /// at the horizon), sampling live task counters, queue/utilization
  /// gauges, and whatever accuracy windows the caller registered. All
  /// timestamps are virtual-clock.
  obs::SnapshotSeries* snapshots = nullptr;
  /// Optional completion observer (not owned). Fed every completed
  /// task's (app, placement-time neighbour, realized runtime, mean
  /// IOPS) — the seam through which the confidence-weighted predictor
  /// learns online. Independent of `telemetry`.
  sched::CompletionObserver* outcome_observer = nullptr;
  /// Optional rolling accuracy windows (not owned) fed the accuracy
  /// probe's placement-time predictions against realized outcomes, for
  /// snapshot-series quantiles on runs without a confidence ensemble.
  /// Require `accuracy_probe`.
  obs::WindowedAccuracy* windowed_runtime = nullptr;
  obs::WindowedAccuracy* windowed_iops = nullptr;
  /// Optional live rebalancer (not owned; may be nullptr). When set,
  /// the event loop runs a rebalance round every
  /// rebalancer->config().interval_s of virtual time: running tasks are
  /// snapshotted (machines ascending, slot 0 first), the rebalancer
  /// plans migrations from its live signals (plus an attribution report
  /// over the run's own decision log when recording is on), and each
  /// planned move is applied — the task is frozen for the downtime, a
  /// copy-I/O window slows both hosts, and a decision-log migration
  /// record preserves provenance. The rebalancer is also fed every
  /// completion. Stateful: use one instance per run (per shard under
  /// the sharded engine).
  migrate::Rebalancer* rebalancer = nullptr;
  /// Optional candidate shortlist index (not owned; may be nullptr).
  /// When set, the run attaches the index's interference-profile
  /// clustering to its live ClusterCounts (per-cluster availability
  /// maintained O(1) per place/depart) and hands the index to the
  /// scheduler, whose slot scans then walk per-cluster shortlists
  /// instead of every class. Placements are bit-identical to the flat
  /// scan (candidate_index.hpp), so all exports keep their exact
  /// bytes. The index must be built over a predictor whose model epoch
  /// does not change during the run when the run is sharded (a
  /// TablePredictor qualifies).
  const sched::CandidateIndex* candidate_index = nullptr;
  /// Optional arrival stream override (not owned; may be nullptr). When
  /// set, run_dynamic(table, scheduler, cfg) draws the arrival list from
  /// this source and lambda_per_min / mix / mix_stddev / seed are
  /// ignored; when null, the paper's Poisson generator
  /// (PoissonArrivalSource over those fields) is used. This is how a
  /// recorded trace is replayed under a different scheduler.
  ArrivalSource* arrival_source = nullptr;
};

struct DynamicOutcome {
  std::size_t arrived = 0;
  std::size_t dropped = 0;       ///< rejected: queue was at capacity
  std::size_t completed = 0;     ///< tasks finished within the duration
  double total_runtime = 0.0;    ///< sum of realized runtimes (completed)
  double total_iops = 0.0;       ///< sum of per-task average IOPS
  double mean_wait_s = 0.0;      ///< queue wait of started tasks
  double mean_queue_length = 0.0;///< time-averaged queue length
  double duration_s = 0.0;       ///< simulated horizon (copied from config)
  double throughput_per_hour() const;
};

DynamicOutcome run_dynamic(const PerfTable& table,
                           sched::Scheduler& scheduler,
                           const DynamicConfig& cfg);

/// Generates the Poisson/mix arrival stream `run_dynamic` would use
/// when cfg.arrival_source is null — exposed so callers (e.g. the
/// hierarchical manager) can split one stream exactly across
/// sub-simulations. Thin wrapper over PoissonArrivalSource.
std::vector<Arrival> generate_arrivals(const DynamicConfig& cfg,
                                       std::size_t num_apps);

/// Same simulation over an explicit arrival list (must be sorted by
/// time); cfg.lambda_per_min / mix / seed are ignored for arrivals.
DynamicOutcome run_dynamic(const PerfTable& table,
                           sched::Scheduler& scheduler,
                           const DynamicConfig& cfg,
                           std::span<const Arrival> arrivals);

}  // namespace tracon::sim
