// Indexed priority structure for the dynamic scenario's completion
// events.
//
// The event loop used to queue completions in the shared binary heap
// with lazy invalidation: every neighbour change, migration freeze, or
// copy-window extension bumped a per-machine stamp and re-pushed fresh
// events, leaving the dead ones to be popped and discarded later. At
// datacenter scale that churn dominates — every placement invalidates
// up to two events, so the heap holds a multiple of the live set.
//
// CompletionHeap replaces that with an indexed 4-ary min-heap keyed by
// VM slot (machine * 2 + slot): update() moves the slot's single entry
// in place (decrease/increase-key in O(log4 n)), remove() deletes it,
// and the heap never holds more entries than occupied slots. A 4-ary
// layout halves the tree depth of a binary heap and keeps child
// scans inside one cache line of Entry values — the classic d-ary
// trade that favours decrease-key-heavy workloads like this one.
//
// Ordering is deterministic: ties on time break toward the lower slot
// id, so the pop sequence is a pure function of the simulation state
// (the determinism contract's requirement), not of heap history.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace tracon::sim {

class CompletionHeap {
 public:
  struct Entry {
    double time = 0.0;
    std::size_t id = 0;  ///< slot id: machine * 2 + slot
  };

  /// `slots` is the id-space size (machines * 2).
  explicit CompletionHeap(std::size_t slots) : pos_(slots, kAbsent) {}

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  bool contains(std::size_t id) const { return pos_[id] != kAbsent; }

  const Entry& top() const {
    TRACON_ASSERT(!heap_.empty(), "top() on an empty completion heap");
    return heap_.front();
  }

  void pop() {
    TRACON_ASSERT(!heap_.empty(), "pop() on an empty completion heap");
    pos_[heap_.front().id] = kAbsent;
    if (heap_.size() > 1) {
      heap_.front() = heap_.back();
      heap_.pop_back();
      pos_[heap_.front().id] = 0;
      sift_down(0);
    } else {
      heap_.pop_back();
    }
  }

  /// Inserts `id` at `time`, or moves its existing entry (the
  /// decrease/increase-key the lazy-invalidation scheme lacked).
  void update(std::size_t id, double time) {
    TRACON_ASSERT(id < pos_.size(), "slot id out of range");
    std::size_t i = pos_[id];
    if (i == kAbsent) {
      heap_.push_back({time, id});
      pos_[id] = heap_.size() - 1;
      sift_up(heap_.size() - 1);
      return;
    }
    const double old = heap_[i].time;
    heap_[i].time = time;
    if (time < old) {
      sift_up(i);
    } else if (time > old) {
      sift_down(i);
    }
  }

  /// Deletes `id`'s entry; no-op when absent.
  void remove(std::size_t id) {
    TRACON_ASSERT(id < pos_.size(), "slot id out of range");
    const std::size_t i = pos_[id];
    if (i == kAbsent) return;
    pos_[id] = kAbsent;
    const std::size_t last = heap_.size() - 1;
    if (i != last) {
      const std::size_t moved = heap_[last].id;
      heap_[i] = heap_[last];
      heap_.pop_back();
      pos_[moved] = i;
      // The moved entry may need to travel either way.
      sift_up(i);
      sift_down(pos_[moved]);
    } else {
      heap_.pop_back();
    }
  }

 private:
  static constexpr std::size_t kAbsent =
      std::numeric_limits<std::size_t>::max();
  static constexpr std::size_t kArity = 4;

  static bool less(const Entry& a, const Entry& b) {
    return a.time < b.time || (a.time == b.time && a.id < b.id);
  }

  void sift_up(std::size_t i) {
    Entry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!less(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i].id] = i;
      i = parent;
    }
    heap_[i] = e;
    pos_[e.id] = i;
  }

  void sift_down(std::size_t i) {
    Entry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = i * kArity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + kArity, n);
      for (std::size_t c = first + 1; c < last; ++c)
        if (less(heap_[c], heap_[best])) best = c;
      if (!less(heap_[best], e)) break;
      heap_[i] = heap_[best];
      pos_[heap_[i].id] = i;
      i = best;
    }
    heap_[i] = e;
    pos_[e.id] = i;
  }

  std::vector<Entry> heap_;
  std::vector<std::size_t> pos_;  ///< id -> heap index, kAbsent when out
};

}  // namespace tracon::sim
