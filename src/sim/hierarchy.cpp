#include "sim/hierarchy.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/summary.hpp"

namespace tracon::sim {

double HierarchyOutcome::completion_imbalance() const {
  if (per_manager.size() < 2) return 0.0;
  std::vector<double> xs;
  xs.reserve(per_manager.size());
  for (const auto& m : per_manager)
    xs.push_back(static_cast<double>(m.completed));
  Summary s = Summary::of(xs);
  return s.mean > 0.0 ? s.stddev / s.mean : 0.0;
}

HierarchyOutcome run_hierarchical(
    const PerfTable& table,
    const std::function<std::unique_ptr<sched::Scheduler>(std::size_t)>&
        make_scheduler,
    const HierarchyConfig& cfg) {
  TRACON_REQUIRE(cfg.managers >= 1, "need at least one manager");
  TRACON_REQUIRE(cfg.machines_per_manager >= 1,
                 "need at least one machine per manager");
  TRACON_REQUIRE(make_scheduler != nullptr, "need a scheduler factory");

  // One root arrival stream, split by the routing policy. Splitting the
  // realized stream (rather than running independent Poisson processes
  // per leaf) keeps results comparable across routing policies and
  // manager counts.
  DynamicConfig root;
  root.lambda_per_min = cfg.lambda_per_min;
  root.duration_s = cfg.duration_s;
  root.mix = cfg.mix;
  root.mix_stddev = cfg.mix_stddev;
  root.seed = cfg.seed;
  std::vector<Arrival> all = generate_arrivals(root, table.num_apps());

  std::vector<std::vector<Arrival>> shard(cfg.managers);
  Rng route_rng(cfg.seed ^ 0xabcdef12345ULL);
  for (std::size_t i = 0; i < all.size(); ++i) {
    std::size_t m = cfg.routing == Routing::kRoundRobin
                        ? i % cfg.managers
                        : route_rng.index(cfg.managers);
    shard[m].push_back(all[i]);
  }

  // Scheduler construction stays serial — the factory is caller code
  // with no thread-safety contract. The leaf runs themselves are
  // independent (that is the point of the hierarchy), so they go
  // through the shared worker pool; each index writes only its own
  // slot, and the merge below reads them in manager order, so the
  // outcome is byte-identical for every cfg.threads.
  DynamicConfig leaf = root;
  leaf.machines = cfg.machines_per_manager;
  leaf.queue_capacity = cfg.queue_capacity;
  leaf.schedule_period_s = cfg.schedule_period_s;

  std::vector<std::unique_ptr<sched::Scheduler>> schedulers;
  schedulers.reserve(cfg.managers);
  for (std::size_t m = 0; m < cfg.managers; ++m) {
    schedulers.push_back(make_scheduler(m));
    TRACON_REQUIRE(schedulers.back() != nullptr,
                   "scheduler factory returned null");
  }

  HierarchyOutcome out;
  out.per_manager.resize(cfg.managers);
  parallel_for(cfg.threads, cfg.managers, [&](std::size_t m) {
    out.per_manager[m] = run_dynamic(table, *schedulers[m], leaf, shard[m]);
  });

  DynamicOutcome& total = out.total;
  total.duration_s = cfg.duration_s;
  double wait_weighted = 0.0;
  std::size_t wait_count = 0;
  for (const auto& m : out.per_manager) {
    total.arrived += m.arrived;
    total.dropped += m.dropped;
    total.completed += m.completed;
    total.total_runtime += m.total_runtime;
    total.total_iops += m.total_iops;
    total.mean_queue_length += m.mean_queue_length;
    // mean_wait is per-started-task; weight by completions as a proxy.
    wait_weighted += m.mean_wait_s * static_cast<double>(m.completed);
    wait_count += m.completed;
  }
  total.mean_wait_s =
      wait_count > 0 ? wait_weighted / static_cast<double>(wait_count) : 0.0;
  return out;
}

}  // namespace tracon::sim
