#include "sim/static_scenario.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "util/error.hpp"

namespace tracon::sim {

namespace {

/// Realized runtime and average IOPS of a task that ran paired with a
/// neighbour until `paired_for` seconds, then alone.
struct Realized {
  double runtime;
  double avg_iops;
};

/// Dynamics of one machine holding tasks `a` and `b` from t=0.
void realize_pair(const PerfTable& t, std::size_t a, std::size_t b,
                  Realized& ra, Realized& rb) {
  double ta = t.runtime(a, b);  // a's completion if b persisted
  double tb = t.runtime(b, a);
  // The faster task completes fully paired.
  if (ta > tb) {
    realize_pair(t, b, a, rb, ra);
    return;
  }
  ra.runtime = ta;
  ra.avg_iops = t.iops(a, b);
  // b ran paired for ta seconds, then solo for the remaining work.
  double paired_fraction = ta / tb;
  double solo_tail = (1.0 - paired_fraction) * t.solo_runtime(b);
  rb.runtime = ta + solo_tail;
  rb.avg_iops = (t.iops(b, a) * ta + t.solo_iops(b) * solo_tail) /
                rb.runtime;
}

}  // namespace

StaticOutcome run_static(const PerfTable& table, sched::Scheduler& scheduler,
                         std::span<const std::size_t> task_apps,
                         std::size_t machines) {
  TRACON_REQUIRE(machines > 0, "need at least one machine");
  TRACON_REQUIRE(task_apps.size() <= 2 * machines,
                 "more tasks than VM slots");
  const std::size_t n = table.num_apps();

  std::vector<sched::QueuedTask> queue;
  queue.reserve(task_apps.size());
  for (std::size_t app : task_apps) {
    TRACON_REQUIRE(app < n, "task app index out of range");
    queue.push_back({app, 0.0});
  }

  // Let the scheduler place the whole batch; loop until it makes no
  // further progress (a batch scheduler may need several rounds).
  sched::ClusterCounts counts(n, machines);
  // Concrete machine assignment mirrors the class-level decisions.
  struct Machine {
    std::optional<std::size_t> a, b;
  };
  std::vector<Machine> fleet(machines);
  std::vector<std::size_t> empty_stack;   // machine ids with both slots free
  std::vector<std::vector<std::size_t>> half_stack(n);
  for (std::size_t m = 0; m < machines; ++m)
    empty_stack.push_back(machines - 1 - m);

  sched::ScheduleContext ctx;
  ctx.now_s = 1e9;  // static batches are "overdue": timeouts always fire

  std::vector<char> placed(queue.size(), 0);
  bool progressed = true;
  while (progressed) {
    // Compact view of still-waiting tasks.
    std::vector<sched::QueuedTask> waiting;
    std::vector<std::size_t> waiting_pos;
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (!placed[i]) {
        waiting.push_back(queue[i]);
        waiting_pos.push_back(i);
      }
    }
    if (waiting.empty() || !counts.any_free()) break;

    auto placements = scheduler.schedule(waiting, counts, ctx);
    progressed = !placements.empty();
    for (const auto& p : placements) {
      TRACON_ASSERT(p.queue_pos < waiting.size(), "bad placement position");
      std::size_t orig = waiting_pos[p.queue_pos];
      TRACON_ASSERT(!placed[orig], "double placement");
      std::size_t app = queue[orig].app;
      counts.place(app, p.neighbour);
      placed[orig] = 1;
      if (!p.neighbour.has_value()) {
        TRACON_ASSERT(!empty_stack.empty(), "no empty machine available");
        std::size_t m = empty_stack.back();
        empty_stack.pop_back();
        fleet[m].a = app;
        half_stack[app].push_back(m);
      } else {
        auto& stack = half_stack[*p.neighbour];
        TRACON_ASSERT(!stack.empty(), "no half-busy machine of that class");
        std::size_t m = stack.back();
        stack.pop_back();
        fleet[m].b = app;
      }
    }
  }

  StaticOutcome out;
  out.tasks = task_apps.size();
  for (std::size_t i = 0; i < queue.size(); ++i)
    if (!placed[i]) ++out.unplaced;

  for (const Machine& m : fleet) {
    if (m.a.has_value() && m.b.has_value()) {
      Realized ra{}, rb{};
      realize_pair(table, *m.a, *m.b, ra, rb);
      out.total_runtime += ra.runtime + rb.runtime;
      out.total_iops += ra.avg_iops + rb.avg_iops;
    } else if (m.a.has_value()) {
      out.total_runtime += table.solo_runtime(*m.a);
      out.total_iops += table.solo_iops(*m.a);
    }
  }
  return out;
}

}  // namespace tracon::sim
