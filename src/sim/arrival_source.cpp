#include "sim/arrival_source.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace tracon::sim {

PoissonArrivalSource::PoissonArrivalSource(double lambda_per_min,
                                           double duration_s,
                                           workload::MixKind mix,
                                           double mix_stddev,
                                           std::uint64_t seed)
    : lambda_per_min_(lambda_per_min),
      duration_s_(duration_s),
      mix_(mix),
      mix_stddev_(mix_stddev),
      seed_(seed) {
  TRACON_REQUIRE(lambda_per_min > 0.0, "lambda must be positive");
  TRACON_REQUIRE(duration_s > 0.0, "duration must be positive");
}

std::vector<Arrival> PoissonArrivalSource::arrivals(std::size_t num_apps) {
  TRACON_REQUIRE(num_apps > 0, "need at least one application class");
  Rng rng(seed_);
  double rate_per_s = lambda_per_min_ / 60.0;
  std::vector<Arrival> out;
  double t = rng.exponential(rate_per_s);
  while (t < duration_s_) {
    std::size_t app = workload::sample_benchmark_index(mix_, rng, mix_stddev_);
    TRACON_ASSERT(app < num_apps, "sampled app out of range");
    out.push_back({t, app});
    t += rng.exponential(rate_per_s);
  }
  return out;
}

MixShiftArrivalSource::MixShiftArrivalSource(double lambda_per_min,
                                             double duration_s,
                                             double shift_time_s,
                                             workload::MixKind before,
                                             workload::MixKind after,
                                             double mix_stddev,
                                             std::uint64_t seed)
    : lambda_per_min_(lambda_per_min),
      duration_s_(duration_s),
      shift_time_s_(shift_time_s),
      before_(before),
      after_(after),
      mix_stddev_(mix_stddev),
      seed_(seed) {
  TRACON_REQUIRE(lambda_per_min > 0.0, "lambda must be positive");
  TRACON_REQUIRE(duration_s > 0.0, "duration must be positive");
  TRACON_REQUIRE(shift_time_s > 0.0 && shift_time_s < duration_s,
                 "mix shift must fall inside the run");
}

std::vector<Arrival> MixShiftArrivalSource::arrivals(std::size_t num_apps) {
  PoissonArrivalSource head(lambda_per_min_, duration_s_, before_,
                            mix_stddev_, seed_);
  PoissonArrivalSource tail(lambda_per_min_, duration_s_, after_, mix_stddev_,
                            seed_ + 1);
  std::vector<Arrival> out;
  for (const Arrival& a : head.arrivals(num_apps)) {
    if (a.time_s >= shift_time_s_) break;
    out.push_back(a);
  }
  for (const Arrival& a : tail.arrivals(num_apps)) {
    if (a.time_s < shift_time_s_) continue;
    out.push_back(a);
  }
  return out;
}

}  // namespace tracon::sim
