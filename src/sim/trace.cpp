#include "sim/trace.hpp"

#include <ostream>

#include "obs/jsonl.hpp"

namespace tracon::sim {

std::string task_event_kind_name(TaskEventKind kind) {
  switch (kind) {
    case TaskEventKind::kArrived: return "arrived";
    case TaskEventKind::kDropped: return "dropped";
    case TaskEventKind::kPlaced: return "placed";
    case TaskEventKind::kCompleted: return "completed";
  }
  return "unknown";
}

std::optional<TaskEventKind> parse_task_event_kind(std::string_view name) {
  if (name == "arrived") return TaskEventKind::kArrived;
  if (name == "dropped") return TaskEventKind::kDropped;
  if (name == "placed") return TaskEventKind::kPlaced;
  if (name == "completed") return TaskEventKind::kCompleted;
  return std::nullopt;
}

std::size_t TraceRecorder::count(TaskEventKind kind) const {
  std::size_t n = 0;
  for (const auto& e : events_)
    if (e.kind == kind) ++n;
  return n;
}

void TraceRecorder::write_csv(std::ostream& os) const {
  os << "time_s,event,app,machine\n";
  for (const auto& e : events_) {
    os << e.time_s << ',' << task_event_kind_name(e.kind) << ',' << e.app
       << ',';
    if (e.machine != TaskEvent::kNoMachine) os << e.machine;
    os << '\n';
  }
}

void TraceRecorder::write_jsonl(std::ostream& os) const {
  os << obs::JsonLineWriter()
            .field("schema", "tracon.task_events")
            .field("version", obs::kJsonlSchemaVersion)
            .field("events", events_.size())
            .str()
     << '\n';
  for (const auto& e : events_) {
    obs::JsonLineWriter line;
    line.field("time_s", e.time_s)
        .field("event", task_event_kind_name(e.kind))
        .field("app", e.app);
    if (e.machine != TaskEvent::kNoMachine) line.field("machine", e.machine);
    os << line.str() << '\n';
  }
}

}  // namespace tracon::sim
