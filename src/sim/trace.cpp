#include "sim/trace.hpp"

#include <ostream>

namespace tracon::sim {

std::string task_event_kind_name(TaskEventKind kind) {
  switch (kind) {
    case TaskEventKind::kArrived: return "arrived";
    case TaskEventKind::kDropped: return "dropped";
    case TaskEventKind::kPlaced: return "placed";
    case TaskEventKind::kCompleted: return "completed";
  }
  return "unknown";
}

std::size_t TraceRecorder::count(TaskEventKind kind) const {
  std::size_t n = 0;
  for (const auto& e : events_)
    if (e.kind == kind) ++n;
  return n;
}

void TraceRecorder::write_csv(std::ostream& os) const {
  os << "time_s,event,app,machine\n";
  for (const auto& e : events_) {
    os << e.time_s << ',' << task_event_kind_name(e.kind) << ',' << e.app
       << ',';
    if (e.machine != TaskEvent::kNoMachine) os << e.machine;
    os << '\n';
  }
}

}  // namespace tracon::sim
