// Measured pairwise performance table — the data-center simulator's
// ground truth.
//
// As in the paper ("We measure the real effects of interference and use
// the measured data for simulation"), every ordered application pair is
// measured once on the host simulator: the foreground runs to completion
// while the background runs continuously. The cluster simulator replays
// these measurements; the schedulers only ever see model predictions.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "model/profiler.hpp"
#include "monitor/profile.hpp"
#include "sched/predictor.hpp"
#include "virt/app_behavior.hpp"

namespace tracon::sim {

class PerfTable {
 public:
  /// Measures all pairs of `apps` (and each solo) via the profiler.
  static PerfTable build(model::Profiler& profiler,
                         const std::vector<virt::AppBehavior>& apps);

  std::size_t num_apps() const { return names_.size(); }
  const std::string& app_name(std::size_t a) const;
  const monitor::AppProfile& profile(std::size_t a) const;

  double solo_runtime(std::size_t a) const;
  double solo_iops(std::size_t a) const;

  /// Runtime / average IOPS of `a` while `b` runs continuously beside it
  /// (nullopt b = idle neighbour = solo).
  double runtime(std::size_t a, const std::optional<std::size_t>& b) const;
  double iops(std::size_t a, const std::optional<std::size_t>& b) const;

  /// Progress speed of `a` next to `b`, relative to solo (<= ~1).
  double speed(std::size_t a, const std::optional<std::size_t>& b) const;

  /// Ground-truth predictor (oracle scheduling ablation).
  sched::TablePredictor oracle_predictor() const;

  /// Persists the table (names, profiles, both matrices) as CSV so the
  /// profiling phase can be skipped on later runs.
  void save_csv(std::ostream& os) const;

  /// Parses a table written by save_csv. Throws std::invalid_argument
  /// on malformed input.
  static PerfTable load_csv(std::istream& is);

 private:
  std::vector<std::string> names_;
  std::vector<monitor::AppProfile> profiles_;
  stats::Matrix runtime_;  ///< num_apps x (num_apps+1); last col = solo
  stats::Matrix iops_;
};

}  // namespace tracon::sim
