// Sharded dynamic scenario: partitions the cluster into independent
// machine shards, runs one dynamic sub-simulation per shard on a worker
// pool, and merges the per-shard results deterministically.
//
// Determinism contract (DESIGN.md §7): every quantity that affects the
// simulation or its exports is a function of (seed, machines, shards)
// only — machine partitioning, per-shard arrival streams (counter-based
// seeds via derive_stream_seed), scheduler construction, and the
// serial shard-order merge. The thread count sizes the worker pool and
// NOTHING else, so `--threads N` produces byte-identical metrics JSON,
// snapshot series, and task/trace event files to `--threads 1` for the
// same seed.
//
// Model note: a sharded run is the paper's hierarchical deployment
// (Section 5's per-manager sub-clusters) rather than one global
// manager — each shard has its own queue (queue_capacity per shard) and
// its own scheduler instance, and arrivals split across shards in
// proportion to their machine share. Shard count therefore changes the
// simulated system; it deliberately does NOT default from the thread
// count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "migrate/rebalancer.hpp"
#include "obs/telemetry.hpp"
#include "sched/predictor.hpp"
#include "sched/scheduler.hpp"
#include "sim/dynamic_scenario.hpp"
#include "sim/perf_table.hpp"
#include "sim/trace.hpp"
#include "workload/mixes.hpp"

namespace tracon::sim {

/// Builds shard `shard`'s scheduler. Called serially on the caller's
/// thread before the workers start, once per shard in shard order —
/// factories may therefore use shared mutable state (e.g. draw
/// per-shard seeds). Each returned scheduler is driven by exactly one
/// worker thread.
using SchedulerFactory =
    std::function<std::unique_ptr<sched::Scheduler>(std::size_t shard)>;

struct ShardedConfig {
  std::size_t machines = 64;
  double lambda_per_min = 100.0;  ///< aggregate rate, split across shards
  double duration_s = 36'000.0;
  workload::MixKind mix = workload::MixKind::kMedium;
  double mix_stddev = 1.5;
  std::uint64_t seed = 7;
  /// Per-shard manager queue bound (the MIBS_8 subscript applies to
  /// each shard's manager, matching the hierarchical scenario).
  std::size_t queue_capacity = 8;
  double schedule_period_s = 5.0;

  /// Worker pool size; 0 = hardware_threads(). Affects wall-clock
  /// time only, never results.
  std::size_t threads = 1;
  /// Number of machine shards; 0 = auto_shard_count(machines). Part of
  /// the simulated system's shape — never derived from `threads`.
  std::size_t shards = 0;

  /// Merged-output sinks (not owned; may be nullptr). Task events and
  /// typed trace events are buffered per shard with shard-local machine
  /// indices, then re-indexed into the global machine space and emitted
  /// in canonical (time, shard, record) order. Metrics merge via
  /// MetricsRegistry::merge with machine-weighted utilization gauges.
  TraceRecorder* trace = nullptr;
  obs::Telemetry* telemetry = nullptr;

  /// Accuracy probe shared by every shard; must be immutable under
  /// concurrent reads (TablePredictor qualifies, the confidence
  /// ensemble does not). See DynamicConfig::accuracy_probe.
  const sched::Predictor* accuracy_probe = nullptr;
  std::string accuracy_family;
  /// Per-shard rolling accuracy window capacity (when probing).
  std::size_t accuracy_window = 64;

  /// Live rebalancing, restricted per shard (DESIGN.md §6h): when on,
  /// each shard owns one migrate::Rebalancer scoped to its own
  /// machines, fed by its own completions and decision log — no state
  /// crosses a shard boundary, so migrations are a function of the
  /// shard's seed alone and `--threads N` stays byte-identical to
  /// `--threads 1`. Cross-shard moves are deliberately not modeled: a
  /// shard is the paper's per-manager sub-cluster, and a manager only
  /// migrates within its own fleet.
  bool rebalance = false;
  migrate::RebalanceConfig rebalance_cfg;
  /// Predictor the per-shard rebalancers score destinations with; must
  /// be non-null when `rebalance` is set and immutable under
  /// concurrent reads (TablePredictor qualifies).
  const sched::Predictor* rebalance_predictor = nullptr;

  /// Candidate shortlist index shared by every shard (not owned; may be
  /// nullptr). Read-only during the run, so it must be built over a
  /// predictor whose model epoch never changes mid-run (TablePredictor
  /// qualifies; the sharded CLI already rejects the online ensemble).
  /// Each shard attaches the index's clustering to its own
  /// ClusterCounts; placements stay bit-identical to the flat scan.
  const sched::CandidateIndex* candidate_index = nullptr;

  /// > 0 enables the merged snapshot series (ShardedOutcome::series):
  /// every shard samples the same virtual-clock window grid, and
  /// windows merge index by index at those global barriers.
  double snapshot_interval_s = 0.0;
};

struct ShardedOutcome {
  DynamicOutcome total;
  std::vector<DynamicOutcome> per_shard;
  std::size_t shards = 0;        ///< effective shard count
  std::size_t threads_used = 0;  ///< effective worker-pool size
  /// Merged `tracon.metrics_series` document (empty when
  /// snapshot_interval_s == 0): per-window counter deltas and gauges
  /// sum across shards; accuracy stats merge count-weighted (the
  /// quantiles are a weighted average of per-shard quantiles, an
  /// approximation that is exact for the count/total fields).
  std::string series;
};

/// Default shard count for a cluster size: one shard per 128 machines,
/// clamped to [1, 64]. Pure function of `machines` so same-seed runs
/// agree on the decomposition regardless of the host.
std::size_t auto_shard_count(std::size_t machines);

/// Runs the sharded scenario. See the file comment for the determinism
/// contract; throws (first worker error) if any shard fails.
ShardedOutcome run_dynamic_sharded(const PerfTable& table,
                                   const SchedulerFactory& make_scheduler,
                                   const ShardedConfig& cfg);

}  // namespace tracon::sim
