// Hierarchical management (Section 3): "Most cloud service providers
// utilize a hierarchical management scheme ... A manager server is
// responsible for supervising a group of the application servers ...
// The manager servers can form a tree-like hierarchy for high
// scalability."
//
// We model one root dispatcher feeding N leaf managers, each of which
// owns a partition of the machines and runs its own TRACON scheduler
// over its own bounded queue. For feedback-free routing policies
// (round-robin, random) the leaf partitions evolve independently, so
// the simulation decomposes exactly into per-manager dynamic runs with
// the arrival stream split accordingly (a thinned Poisson process is
// Poisson again) — which is also what makes the scheme scale in
// practice: no leaf decision ever needs global state.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/dynamic_scenario.hpp"

namespace tracon::sim {

enum class Routing {
  kRoundRobin,  ///< deterministic 1-in-N split
  kRandom,      ///< i.i.d. uniform manager choice (Poisson thinning)
};

struct HierarchyConfig {
  std::size_t managers = 4;
  std::size_t machines_per_manager = 16;
  double lambda_per_min = 100.0;  ///< total arrival rate at the root
  double duration_s = 36'000.0;
  workload::MixKind mix = workload::MixKind::kMedium;
  double mix_stddev = 1.5;
  Routing routing = Routing::kRoundRobin;
  std::size_t queue_capacity = 8;   ///< per manager
  double schedule_period_s = 5.0;
  std::uint64_t seed = 7;
  /// Worker threads for the per-manager runs (the leaves are
  /// independent, so they run through util/parallel's pool). Results
  /// are byte-identical for any value; 1 = fully serial.
  std::size_t threads = 1;
};

struct HierarchyOutcome {
  DynamicOutcome total;                    ///< aggregated over managers
  std::vector<DynamicOutcome> per_manager;

  /// Coefficient of variation of per-manager completions — a routing
  /// fairness measure (0 = perfectly balanced).
  double completion_imbalance() const;
};

/// Runs the hierarchy. `make_scheduler` is invoked once per manager
/// (index passed) so each leaf owns an independent scheduler instance;
/// heterogeneous fleets are expressed by returning different schedulers.
HierarchyOutcome run_hierarchical(
    const PerfTable& table,
    const std::function<std::unique_ptr<sched::Scheduler>(std::size_t)>&
        make_scheduler,
    const HierarchyConfig& cfg);

}  // namespace tracon::sim
