// Static workload scenario (Section 4.2, first case): a batch of tasks
// equal to the number of available VMs arrives at once; the scheduler
// maps every task to a VM; the simulator then replays the measured
// pairwise dynamics. When one VM's task completes, its neighbour speeds
// up to solo rate for the remainder (the paper's remaining-work rule).
#pragma once

#include <span>

#include "sched/scheduler.hpp"
#include "sim/perf_table.hpp"

namespace tracon::sim {

struct StaticOutcome {
  double total_runtime = 0.0;  ///< sum of realized task runtimes (eq. 3)
  double total_iops = 0.0;     ///< sum of realized per-task IOPS (eq. 4)
  std::size_t tasks = 0;
  std::size_t unplaced = 0;    ///< tasks the scheduler failed to place
};

/// Runs the static scenario: `task_apps` (app indices, exactly
/// 2*machines of them is the paper's setting, fewer is allowed) are
/// offered to `scheduler` at t=0 against `machines` empty machines.
StaticOutcome run_static(const PerfTable& table, sched::Scheduler& scheduler,
                         std::span<const std::size_t> task_apps,
                         std::size_t machines);

}  // namespace tracon::sim
