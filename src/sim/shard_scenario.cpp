#include "sim/shard_scenario.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/snapshot.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace tracon::sim {

std::size_t auto_shard_count(std::size_t machines) {
  return std::clamp<std::size_t>(machines / 128, 1, 64);
}

namespace {

/// Everything one shard owns. Sink pointers in `cfg` point into this
/// struct, so states are wired only after the state vector has reached
/// its final size and is never reallocated or moved afterwards.
struct ShardState {
  std::size_t base = 0;  ///< first global machine index of the shard
  DynamicConfig cfg;
  std::unique_ptr<sched::Scheduler> scheduler;
  TraceRecorder trace;
  obs::Telemetry telemetry;
  std::optional<obs::SnapshotSeries> series;
  std::optional<obs::WindowedAccuracy> win_runtime;
  std::optional<obs::WindowedAccuracy> win_iops;
  std::optional<migrate::Rebalancer> rebalancer;
  DynamicOutcome outcome;
};

/// Machine-weighted average of a per-shard gauge, for utilization
/// fractions whose merge() default (last writer wins) is meaningless.
void weighted_gauge(obs::MetricsRegistry& merged,
                    const std::vector<ShardState>& states,
                    const std::string& name, std::size_t total_machines) {
  double acc = 0.0;
  bool present = false;
  for (const ShardState& s : states) {
    auto it = s.telemetry.metrics.gauges().find(name);
    if (it == s.telemetry.metrics.gauges().end()) continue;
    present = true;
    acc += it->second.value() * static_cast<double>(s.cfg.machines);
  }
  if (present)
    merged.gauge(name).set(acc / static_cast<double>(total_machines));
}

/// Sum of a per-shard gauge (queue lengths, busy counts).
void summed_gauge(obs::MetricsRegistry& merged,
                  const std::vector<ShardState>& states,
                  const std::string& name) {
  double acc = 0.0;
  bool present = false;
  for (const ShardState& s : states) {
    auto it = s.telemetry.metrics.gauges().find(name);
    if (it == s.telemetry.metrics.gauges().end()) continue;
    present = true;
    acc += it->second.value();
  }
  if (present) merged.gauge(name).set(acc);
}

/// Merges the per-shard snapshot series window by window. All shards
/// sample the same virtual-clock grid (same interval and horizon), so
/// records pair up by window index: counter deltas and gauges sum,
/// accuracy statistics merge weighted by each shard's windowed sample
/// count.
std::string merge_series(const std::vector<ShardState>& states) {
  obs::MetricsSeries merged;
  bool first = true;
  for (const ShardState& s : states) {
    obs::MetricsSeries part = obs::parse_metrics_series(s.series->str());
    if (first) {
      merged.version = part.version;
      merged.interval_s = part.interval_s;
      merged.windows = std::move(part.windows);
      // Pre-scale accuracy stats by their weights; divided back out
      // after every shard is folded in.
      for (obs::SeriesWindow& w : merged.windows)
        for (auto& [name, a] : w.accuracy) {
          a.mean_abs *= a.count;
          a.p50 *= a.count;
          a.p90 *= a.count;
        }
      first = false;
      continue;
    }
    TRACON_REQUIRE(part.windows.size() == merged.windows.size(),
                   "shards disagree on snapshot window count");
    for (std::size_t w = 0; w < part.windows.size(); ++w) {
      const obs::SeriesWindow& in = part.windows[w];
      obs::SeriesWindow& out = merged.windows[w];
      TRACON_REQUIRE(in.index == out.index && in.t_end == out.t_end,
                     "shards disagree on snapshot window boundaries");
      for (const auto& [name, v] : in.counters) out.counters[name] += v;
      for (const auto& [name, v] : in.gauges) out.gauges[name] += v;
      for (const auto& [name, a] : in.accuracy) {
        obs::SeriesWindow::Accuracy& acc = out.accuracy[name];
        acc.count += a.count;
        acc.total += a.total;
        acc.mean_abs += a.mean_abs * a.count;
        acc.p50 += a.p50 * a.count;
        acc.p90 += a.p90 * a.count;
      }
    }
  }
  for (obs::SeriesWindow& w : merged.windows)
    for (auto& [name, a] : w.accuracy) {
      double denom = a.count > 0.0 ? a.count : 1.0;
      a.mean_abs /= denom;
      a.p50 /= denom;
      a.p90 /= denom;
    }
  return obs::metrics_series_str(merged);
}

}  // namespace

ShardedOutcome run_dynamic_sharded(const PerfTable& table,
                                   const SchedulerFactory& make_scheduler,
                                   const ShardedConfig& cfg) {
  TRACON_REQUIRE(cfg.machines > 0, "need at least one machine");
  TRACON_REQUIRE(make_scheduler != nullptr, "scheduler factory must be set");
  const std::size_t shards = std::min(
      cfg.shards > 0 ? cfg.shards : auto_shard_count(cfg.machines),
      cfg.machines);
  const std::size_t threads =
      cfg.threads > 0 ? cfg.threads : hardware_threads();
  const bool series_on = cfg.snapshot_interval_s > 0.0;
  const bool telemetry_on = cfg.telemetry != nullptr || series_on;
  const bool tracer_on =
      cfg.telemetry != nullptr && cfg.telemetry->tracer.enabled();
  const bool decisions_on =
      cfg.telemetry != nullptr && cfg.telemetry->decisions.enabled();
  const bool spans_on =
      cfg.telemetry != nullptr && cfg.telemetry->spans.enabled();

  // --- Decompose: everything here is a function of (seed, machines,
  // shards); the thread count appears only in the parallel_for below.
  std::vector<ShardState> states(shards);
  const std::size_t per_shard = cfg.machines / shards;
  const std::size_t remainder = cfg.machines % shards;
  std::size_t base = 0;
  for (std::size_t i = 0; i < shards; ++i) {
    ShardState& s = states[i];
    s.base = base;
    DynamicConfig& d = s.cfg;
    d.machines = per_shard + (i < remainder ? 1 : 0);
    base += d.machines;
    // Each shard sees its machine share of the aggregate arrival rate,
    // drawn from its own counter-derived Poisson stream.
    d.lambda_per_min = cfg.lambda_per_min * static_cast<double>(d.machines) /
                       static_cast<double>(cfg.machines);
    d.duration_s = cfg.duration_s;
    d.mix = cfg.mix;
    d.mix_stddev = cfg.mix_stddev;
    d.seed = derive_stream_seed(cfg.seed, i);
    d.queue_capacity = cfg.queue_capacity;
    d.schedule_period_s = cfg.schedule_period_s;
    d.candidate_index = cfg.candidate_index;
    s.scheduler = make_scheduler(i);
    TRACON_REQUIRE(s.scheduler != nullptr, "scheduler factory returned null");
  }
  TRACON_ASSERT(base == cfg.machines, "shard partition must cover the fleet");

  // Wire the per-shard sinks only now that `states` has its final
  // addresses (DynamicConfig stores raw pointers into its ShardState).
  for (ShardState& s : states) {
    if (cfg.trace != nullptr) s.cfg.trace = &s.trace;
    if (telemetry_on) {
      s.cfg.telemetry = &s.telemetry;
      s.scheduler->set_telemetry(&s.telemetry);
    }
    if (tracer_on) s.telemetry.tracer.set_enabled(true);
    if (decisions_on) s.telemetry.decisions.set_enabled(true);
    if (spans_on) s.telemetry.spans.set_enabled(true);
    if (cfg.accuracy_probe != nullptr) {
      s.cfg.accuracy_probe = cfg.accuracy_probe;
      s.cfg.accuracy_family = cfg.accuracy_family;
    }
    if (cfg.rebalance) {
      TRACON_REQUIRE(cfg.rebalance_predictor != nullptr,
                     "sharded rebalancing needs a destination predictor");
      s.rebalancer.emplace(*cfg.rebalance_predictor, cfg.rebalance_cfg);
      s.cfg.rebalancer = &*s.rebalancer;
    }
    if (series_on) {
      s.series.emplace(s.telemetry.metrics, cfg.snapshot_interval_s);
      s.cfg.snapshots = &*s.series;
      if (cfg.accuracy_probe != nullptr) {
        s.win_runtime.emplace(cfg.accuracy_window);
        s.win_iops.emplace(cfg.accuracy_window);
        s.cfg.windowed_runtime = &*s.win_runtime;
        s.cfg.windowed_iops = &*s.win_iops;
        const std::string fam = obs::metric_path_component(
            cfg.accuracy_family.empty() ? "probe" : cfg.accuracy_family);
        // The composed path is validated by track_accuracy itself.
        // tracon-lint: allow(metric-name)
        s.series->track_accuracy("model." + fam + ".runtime",
                                 &*s.win_runtime);
        // tracon-lint: allow(metric-name)
        s.series->track_accuracy("model." + fam + ".iops", &*s.win_iops);
      }
    }
  }

  // --- Run every shard on the worker pool. Shards touch only their own
  // state (plus shared read-only inputs: the perf table and the probe),
  // and parallel_for joins all workers before returning, so the merge
  // below reads fully published results.
  parallel_for(threads, shards, [&](std::size_t i) {
    states[i].outcome = run_dynamic(table, *states[i].scheduler,
                                    states[i].cfg);
  });

  // --- Merge, serially and in shard order.
  ShardedOutcome out;
  out.shards = shards;
  out.threads_used = threads;
  out.total.duration_s = cfg.duration_s;
  double wait_weighted = 0.0;
  std::size_t wait_count = 0;
  out.per_shard.reserve(shards);
  for (const ShardState& s : states) {
    const DynamicOutcome& o = s.outcome;
    out.per_shard.push_back(o);
    out.total.arrived += o.arrived;
    out.total.dropped += o.dropped;
    out.total.completed += o.completed;
    out.total.total_runtime += o.total_runtime;
    out.total.total_iops += o.total_iops;
    out.total.mean_queue_length += o.mean_queue_length;
    // mean_wait is per-started-task; weight by completions as a proxy
    // (the hierarchical scenario's convention).
    wait_weighted += o.mean_wait_s * static_cast<double>(o.completed);
    wait_count += o.completed;
  }
  out.total.mean_wait_s =
      wait_count > 0 ? wait_weighted / static_cast<double>(wait_count) : 0.0;

  if (cfg.telemetry != nullptr) {
    for (const ShardState& s : states)
      cfg.telemetry->metrics.merge(s.telemetry.metrics);
    // merge() leaves gauges last-writer-wins; replace the ones with a
    // meaningful cluster-level aggregate.
    obs::MetricsRegistry& m = cfg.telemetry->metrics;
    weighted_gauge(m, states, "sim.util.host_busy_fraction", cfg.machines);
    weighted_gauge(m, states, "sim.util.slot_busy_fraction", cfg.machines);
    summed_gauge(m, states, "sim.queue.mean_length");
    summed_gauge(m, states, "sim.queue.length");
    summed_gauge(m, states, "sim.util.busy_machines");
    summed_gauge(m, states, "sim.util.busy_slots");
    summed_gauge(m, states, "sched.queue_length");
  }

  if (cfg.trace != nullptr) {
    // Canonical event order: concatenate in shard order (records are
    // already time-ordered within a shard), re-index machines into the
    // global space, then stable-sort by time — equal timestamps keep
    // (shard, record) order, independent of the thread count.
    std::vector<TaskEvent> all;
    for (const ShardState& s : states)
      for (TaskEvent ev : s.trace.events()) {
        if (ev.machine != TaskEvent::kNoMachine) ev.machine += s.base;
        all.push_back(ev);
      }
    std::stable_sort(all.begin(), all.end(),
                     [](const TaskEvent& a, const TaskEvent& b) {
                       return a.time_s < b.time_s;
                     });
    for (const TaskEvent& ev : all) cfg.trace->record(ev);
  }

  if (tracer_on) {
    std::vector<obs::TraceEvent> all;
    for (const ShardState& s : states)
      for (obs::TraceEvent ev : s.telemetry.tracer.events()) {
        if (ev.machine != obs::TraceEvent::kNone) ev.machine += s.base;
        all.push_back(ev);
      }
    std::stable_sort(all.begin(), all.end(),
                     [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                       return a.time_s < b.time_s;
                     });
    for (const obs::TraceEvent& ev : all) cfg.telemetry->tracer.record(ev);
  }

  if (decisions_on) {
    // Task ids are per-shard arrival indices. Shift each shard's ids
    // by the arrivals of the shards before it so ids stay unique in
    // the merged log; `arrived` is a function of the shard seed alone,
    // so the offsets (and the merged bytes) are thread-independent.
    // Machines re-index into the global space exactly like the traces.
    std::vector<obs::DecisionEvent> all;
    std::uint64_t task_base = 0;
    for (const ShardState& s : states) {
      for (obs::DecisionEvent ev : s.telemetry.decisions.events()) {
        if (ev.machine != obs::DecisionEvent::kNoMachine) ev.machine += s.base;
        if (ev.from_machine != obs::DecisionEvent::kNoMachine)
          ev.from_machine += s.base;
        ev.task += task_base;
        all.push_back(std::move(ev));
      }
      task_base += s.outcome.arrived;
    }
    std::stable_sort(
        all.begin(), all.end(),
        [](const obs::DecisionEvent& a, const obs::DecisionEvent& b) {
          return a.time_s < b.time_s;
        });
    for (obs::DecisionEvent& ev : all)
      cfg.telemetry->decisions.append(std::move(ev));
  }

  if (spans_on) {
    // Same recipe as the decision log: re-index machines, offset task
    // ids by the per-shard arrival prefix sums, stable-sort on span
    // start (a task's starts are non-decreasing, so per-task
    // chronological order survives), append verbatim.
    std::vector<obs::SpanEvent> all;
    std::uint64_t task_base = 0;
    for (const ShardState& s : states) {
      for (obs::SpanEvent ev : s.telemetry.spans.events()) {
        if (ev.machine != obs::SpanEvent::kNoMachine) ev.machine += s.base;
        ev.task += task_base;
        all.push_back(std::move(ev));
      }
      task_base += s.outcome.arrived;
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const obs::SpanEvent& a, const obs::SpanEvent& b) {
                       return a.t0_s < b.t0_s;
                     });
    for (obs::SpanEvent& ev : all) cfg.telemetry->spans.append(std::move(ev));
  }

  if (series_on) out.series = merge_series(states);
  return out;
}

}  // namespace tracon::sim
