// Machines indexed by occupancy class, with lazy deletion and bounded
// staleness.
//
// The dynamic scenario needs "some machine of occupancy class k" in
// O(1): key 0 holds machines with both VMs idle, key 1+a machines whose
// single resident runs application a. Entries are stacks with lazy
// deletion — each machine remembers its current key, and stack entries
// whose machine has since moved on are skipped (and discarded) at pop
// time.
//
// Under migration churn a machine can change class many times without
// being popped, so stale entries used to accumulate without bound. The
// registry now counts the stale entries per stack and compacts a stack
// in place (preserving relative order, so the pop sequence is
// unchanged) as soon as stale entries exceed half its size; amortized
// cost is O(1) per key change, and a stack's memory stays proportional
// to its live population.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace tracon::sim {

class SlotRegistry {
 public:
  static constexpr int kNone = -1;
  SlotRegistry(std::size_t machines, std::size_t num_apps);

  /// key 0 = empty machine; key 1+a = half-busy running app a; kNone =
  /// fully busy (indexed nowhere). Re-keying counts the machine's old
  /// entry as stale and may compact that stack.
  void set_key(std::size_t machine, int key);

  /// Pops a machine with the given key; throws std::logic_error when
  /// none exists.
  std::size_t pop(int key);

  /// pop() variant for migration destinations: skips `excluded` (the
  /// source machine is never a valid destination for its own task) and
  /// returns nullopt instead of throwing when no other machine holds
  /// the key — same-round churn can invalidate a planned class.
  std::optional<std::size_t> try_pop_excluding(int key, std::size_t excluded);

  int key_of(std::size_t machine) const { return key_[machine]; }

  /// Introspection for tests and benchmarks: physical stack length and
  /// the tracked stale-entry count for a key.
  std::size_t stack_size(int key) const;
  std::size_t stale_entries(int key) const;

 private:
  void note_stale(std::size_t key);
  void discard_stale(std::size_t key);
  std::vector<int> key_;
  std::vector<std::vector<std::size_t>> stacks_;
  std::vector<std::size_t> stale_;
};

}  // namespace tracon::sim
