// Per-task event tracing for the dynamic scenario: who arrived, where
// each task was placed, when it completed, what was rejected. Useful for
// debugging scheduler behaviour and for offline analysis/plotting
// (CSV or JSONL export; `tracon dynamic --trace out.csv`).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tracon::sim {

enum class TaskEventKind { kArrived, kDropped, kPlaced, kCompleted };

std::string task_event_kind_name(TaskEventKind kind);

/// Inverse of task_event_kind_name; nullopt for unknown names, so
/// task-event files round-trip through their textual form.
std::optional<TaskEventKind> parse_task_event_kind(std::string_view name);

struct TaskEvent {
  double time_s = 0.0;
  TaskEventKind kind = TaskEventKind::kArrived;
  std::size_t app = 0;
  /// Machine index for kPlaced/kCompleted; npos otherwise.
  std::size_t machine = kNoMachine;

  static constexpr std::size_t kNoMachine = static_cast<std::size_t>(-1);
};

class TraceRecorder {
 public:
  void record(const TaskEvent& event) { events_.push_back(event); }
  void record(double time_s, TaskEventKind kind, std::size_t app,
              std::size_t machine = TaskEvent::kNoMachine) {
    events_.push_back({time_s, kind, app, machine});
  }

  const std::vector<TaskEvent>& events() const { return events_; }
  std::size_t count(TaskEventKind kind) const;
  void clear() { events_.clear(); }

  /// CSV with header: time_s,event,app,machine (machine empty if none).
  void write_csv(std::ostream& os) const;

  /// JSONL: a schema-version header line ({"schema":
  /// "tracon.task_events", "version": N} — the same header shape as the
  /// replay arrival-trace format) followed by one event object per line
  /// ("machine" omitted when the event has none).
  void write_jsonl(std::ostream& os) const;

 private:
  std::vector<TaskEvent> events_;
};

}  // namespace tracon::sim
