// Run comparison: the `tracon report` engine.
//
// Takes two metrics JSON documents (as stored by RunStore), flattens
// them into comparable summaries, and produces a sectioned A/B diff:
// scheduler/task counters, utilization gauges, wait/makespan histogram
// statistics, and per-model-family mean |relative error| — rendered as
// an aligned text table or as JSON.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace tracon::obs {
class JsonValue;
}

namespace tracon::runstore {

/// Flat view of one metrics export.
struct MetricsSummary {
  struct HistStats {
    double count = 0.0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean() const { return count > 0.0 ? sum / count : 0.0; }
  };

  std::map<std::string, std::string> fingerprint;
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistStats> histograms;
};

/// Flattens a parsed metrics document (write_json output). Throws
/// std::invalid_argument when the document lacks the expected shape.
MetricsSummary summarize_metrics(const obs::JsonValue& doc);

struct ReportRow {
  std::string name;
  double a = 0.0;
  double b = 0.0;
  double delta() const { return b - a; }
};

struct ReportSection {
  std::string title;
  std::vector<ReportRow> rows;
};

struct RunReport {
  std::string label_a;
  std::string label_b;
  std::map<std::string, std::string> fingerprint_a;
  std::map<std::string, std::string> fingerprint_b;
  std::vector<ReportSection> sections;
};

/// Builds the A/B diff. Sections (rows over the union of names, absent
/// side reported as 0):
///   counters      every counter (sched.*, sim.tasks.*, model samples)
///   gauges        every gauge (utilization, queue length)
///   task latency  count/mean/max of each sim.task.* histogram
///                 (wait = queueing delay, runtime = makespan per task)
///   model accuracy  mean of each model.*.rel_error_abs histogram
RunReport diff_runs(const MetricsSummary& a, const MetricsSummary& b,
                    const std::string& label_a, const std::string& label_b);

/// Aligned text tables, one per non-empty section, preceded by the
/// fingerprint keys on which the two runs differ.
void write_report_text(std::ostream& os, const RunReport& report);

/// One JSON document mirroring the section/row structure.
void write_report_json(std::ostream& os, const RunReport& report);

}  // namespace tracon::runstore
