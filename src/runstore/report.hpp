// Run comparison: the `tracon report` engine.
//
// Takes two metrics JSON documents (as stored by RunStore), flattens
// them into comparable summaries, and produces a sectioned A/B diff:
// scheduler/task counters, utilization gauges, wait/makespan histogram
// statistics, and per-model-family mean |relative error| — rendered as
// an aligned text table or as JSON.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace tracon::obs {
class JsonValue;
struct MetricsSeries;
struct AttributionReport;
struct BreakdownReport;
}

namespace tracon::runstore {

/// Flat view of one metrics export.
struct MetricsSummary {
  struct HistStats {
    double count = 0.0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean() const { return count > 0.0 ? sum / count : 0.0; }
  };

  std::map<std::string, std::string> fingerprint;
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistStats> histograms;
};

/// Flattens a parsed metrics document (write_json output). Throws
/// std::invalid_argument when the document lacks the expected shape.
MetricsSummary summarize_metrics(const obs::JsonValue& doc);

struct ReportRow {
  std::string name;
  double a = 0.0;
  double b = 0.0;
  double delta() const { return b - a; }
};

struct ReportSection {
  std::string title;
  std::vector<ReportRow> rows;
};

/// Per-metric divergence of two runs' snapshot series over their
/// aligned windows (window i of A against window i of B).
struct SeriesRow {
  std::string name;        ///< metric (counter delta or gauge value)
  double mean_div = 0.0;   ///< mean over windows of |B - A|
  double max_div = 0.0;    ///< max over windows of |B - A|
  double max_div_t = 0.0;  ///< t_end of the window with the max
};

struct RunReport {
  std::string label_a;
  std::string label_b;
  std::map<std::string, std::string> fingerprint_a;
  std::map<std::string, std::string> fingerprint_b;
  std::vector<ReportSection> sections;
  /// Series diff; empty when either run stored no snapshot series.
  std::size_t series_windows = 0;  ///< aligned windows compared
  std::vector<SeriesRow> series;
};

/// Builds the A/B diff. Sections (rows over the union of names, absent
/// side reported as 0):
///   counters      every counter (sched.*, sim.tasks.*, model samples)
///   gauges        every gauge (utilization, queue length)
///   task latency  count/mean/max of each sim.task.* histogram
///                 (wait = queueing delay, runtime = makespan per task)
///   model accuracy  mean of each model.*.rel_error_abs histogram
RunReport diff_runs(const MetricsSummary& a, const MetricsSummary& b,
                    const std::string& label_a, const std::string& label_b);

/// Fills `report->series` with the per-window divergence of two
/// snapshot series: counter deltas and gauge values are compared over
/// the union of metric names across min(windows_a, windows_b) aligned
/// windows (an absent side reads as 0). Rows are name-sorted.
void diff_series(const obs::MetricsSeries& a, const obs::MetricsSeries& b,
                 RunReport* report);

/// Appends a "decisions" section comparing two runs' attribution
/// summaries: decision/joined counts, mean candidate-set size, and
/// mean absolute runtime/IOPS prediction error — decision quality, not
/// just outcomes. Renders through the same generic section machinery.
void diff_decisions(const obs::AttributionReport& a,
                    const obs::AttributionReport& b, RunReport* report);

/// Appends a "breakdown" section comparing two runs' latency
/// decompositions: completed-task count and the mean per-task seconds
/// spent in each component (wait / solo / interference / migration) —
/// *where* the latency delta between the runs comes from, not just its
/// size. Renders through the same generic section machinery.
void diff_breakdown(const obs::BreakdownReport& a,
                    const obs::BreakdownReport& b, RunReport* report);

/// Aligned text tables, one per non-empty section, preceded by the
/// fingerprint keys on which the two runs differ.
void write_report_text(std::ostream& os, const RunReport& report);

/// One JSON document mirroring the section/row structure.
void write_report_json(std::ostream& os, const RunReport& report);

}  // namespace tracon::runstore
