// Append-only run database: run id -> metrics JSON, under one
// directory.
//
// Layout (all files written by this class):
//
//   <dir>/index.jsonl           header line + one record per stored run
//   <dir>/objects/<id>.json     the run's full metrics export
//   <dir>/objects/<id>.series.jsonl  optional windowed snapshot series
//   <dir>/objects/<id>.decisions.jsonl  optional decision-provenance log
//   <dir>/objects/<id>.spans.jsonl  optional task-lifecycle span log
//
// Run ids are content hashes (FNV-1a 64 over the metrics JSON), so a
// byte-identical re-run stores under the same id and storing is
// idempotent — replay determinism is checkable by comparing ids alone.
// Writes are crash-safe in order: the object file is written to a temp
// name, flushed with fsync, renamed into place, and only then is the
// index line appended (again fsync'd). A crash mid-append leaves at
// worst a truncated final index line, which load() reports and skips —
// every earlier run stays readable.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tracon::obs {
class MetricsRegistry;
}

namespace tracon::runstore {

inline constexpr std::string_view kRunIndexSchema = "tracon.run_index";

/// One stored run, as described by its index record.
struct RunRecord {
  std::string id;         ///< content hash of the metrics JSON
  std::string scheduler;  ///< scheduler name at run time
  std::string source;     ///< arrival provenance ("poisson", "trace", ...)
  std::string metrics_rel;  ///< object path relative to the store dir
  std::string series_rel;   ///< snapshot-series path; empty when none
  std::string decisions_rel;  ///< decision-log path; empty when none
  std::string spans_rel;      ///< span-log path; empty when none
  std::map<std::string, std::string> fingerprint;  ///< config fingerprint

  bool has_series() const { return !series_rel.empty(); }
  bool has_decisions() const { return !decisions_rel.empty(); }
  bool has_spans() const { return !spans_rel.empty(); }
};

class RunStore {
 public:
  /// Opens (creating if needed) the store rooted at `dir`.
  explicit RunStore(std::filesystem::path dir);

  /// Stores one run: serializes the registry with write_json, hashes
  /// the bytes into the run id, persists the object and appends the
  /// index record (both fsync'd). Returns the id. Idempotent: content
  /// already stored returns the existing id without a second record
  /// (the first store's series, if any, wins). A non-empty
  /// `series_jsonl` (a SnapshotSeries document) is stored alongside
  /// the metrics under objects/<id>.series.jsonl; a non-empty
  /// `decisions_jsonl` (a DecisionLog document) under
  /// objects/<id>.decisions.jsonl; a non-empty `spans_jsonl` (a
  /// SpanLog document) under objects/<id>.spans.jsonl.
  std::string add_run(const obs::MetricsRegistry& metrics,
                      const std::string& scheduler,
                      const std::string& source,
                      const std::string& series_jsonl = "",
                      const std::string& decisions_jsonl = "",
                      const std::string& spans_jsonl = "");

  /// Same, from a pre-serialized metrics JSON document.
  std::string add_run_json(const std::string& metrics_json,
                           const std::string& scheduler,
                           const std::string& source,
                           const std::map<std::string, std::string>&
                               fingerprint,
                           const std::string& series_jsonl = "",
                           const std::string& decisions_jsonl = "",
                           const std::string& spans_jsonl = "");

  struct LoadResult {
    std::vector<RunRecord> runs;  ///< index order, deduplicated by id
    std::size_t skipped_lines = 0;  ///< corrupt / truncated records
    std::vector<std::string> warnings;  ///< one message per skip
  };

  /// Reads the index, skipping (and reporting) corrupt records such as
  /// a crash-truncated tail line. Missing index = empty store.
  LoadResult load() const;

  /// Resolves a run by full id or unique prefix; nullopt when absent.
  /// Throws std::invalid_argument when the prefix is ambiguous.
  std::optional<RunRecord> find(const std::string& id_prefix) const;

  /// The stored metrics JSON document for `record`.
  std::string read_metrics(const RunRecord& record) const;

  /// The stored snapshot-series document for `record`; throws
  /// std::invalid_argument when the run stored none.
  std::string read_series(const RunRecord& record) const;

  /// The stored decision-log document for `record`; throws
  /// std::invalid_argument when the run stored none.
  std::string read_decisions(const RunRecord& record) const;

  /// The stored span-log document for `record`; throws
  /// std::invalid_argument when the run stored none.
  std::string read_spans(const RunRecord& record) const;

  const std::filesystem::path& dir() const { return dir_; }

  /// FNV-1a 64-bit hex digest — the run-id function.
  static std::string content_id(std::string_view content);

 private:
  std::filesystem::path dir_;
};

}  // namespace tracon::runstore
