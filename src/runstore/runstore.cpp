#include "runstore/runstore.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unistd.h>

#include "obs/json.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace tracon::runstore {

namespace fs = std::filesystem;

namespace {

/// Writes `content` to `path` durably: temp file in the same directory,
/// fflush + fsync, then rename into place.
void write_file_atomic(const fs::path& path, const std::string& content) {
  fs::path tmp = path;
  tmp += ".tmp";
  std::FILE* f = std::fopen(tmp.string().c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("runstore: cannot open '" + tmp.string() + "'");
  }
  bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
                content.size() &&
            std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    throw std::runtime_error("runstore: short write to '" + tmp.string() +
                             "'");
  }
  fs::rename(tmp, path);
}

/// Appends `line` (plus newline) to `path` and fsyncs before returning,
/// so a completed add_run survives power loss. If a previous crash left
/// the file without a trailing newline (a half-written record), a
/// newline is inserted first so the torn record stays confined to its
/// own line instead of swallowing this append.
void append_line_fsync(const fs::path& path, const std::string& line) {
  bool repair_newline = false;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (in && in.tellg() > 0) {
      in.seekg(-1, std::ios::end);
      char last = '\n';
      in.get(last);
      repair_newline = last != '\n';
    }
  }
  std::FILE* f = std::fopen(path.string().c_str(), "ab");
  if (f == nullptr) {
    throw std::runtime_error("runstore: cannot append to '" + path.string() +
                             "'");
  }
  std::string with_nl = (repair_newline ? "\n" : "") + line + "\n";
  bool ok = std::fwrite(with_nl.data(), 1, with_nl.size(), f) ==
                with_nl.size() &&
            std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    throw std::runtime_error("runstore: short append to '" + path.string() +
                             "'");
  }
}

std::string fingerprint_json(
    const std::map<std::string, std::string>& fingerprint) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : fingerprint) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + obs::json_escape(key) + "\": \"" + obs::json_escape(value) +
           "\"";
  }
  return out + "}";
}

}  // namespace

RunStore::RunStore(fs::path dir) : dir_(std::move(dir)) {
  TRACON_REQUIRE(!dir_.empty(), "runstore directory must be non-empty");
  fs::create_directories(dir_ / "objects");
}

std::string RunStore::content_id(std::string_view content) {
  // FNV-1a 64-bit: deterministic, dependency-free, sufficient for
  // distinguishing run exports (not a cryptographic digest).
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : content) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string RunStore::add_run(const obs::MetricsRegistry& metrics,
                              const std::string& scheduler,
                              const std::string& source,
                              const std::string& series_jsonl,
                              const std::string& decisions_jsonl,
                              const std::string& spans_jsonl) {
  std::ostringstream os;
  metrics.write_json(os);
  return add_run_json(os.str(), scheduler, source, metrics.fingerprint(),
                      series_jsonl, decisions_jsonl, spans_jsonl);
}

std::string RunStore::add_run_json(
    const std::string& metrics_json, const std::string& scheduler,
    const std::string& source,
    const std::map<std::string, std::string>& fingerprint,
    const std::string& series_jsonl, const std::string& decisions_jsonl,
    const std::string& spans_jsonl) {
  const std::string id = content_id(metrics_json);
  LoadResult existing = load();
  for (const RunRecord& r : existing.runs) {
    if (r.id == id) return id;  // idempotent: content already stored
  }

  const std::string metrics_rel = "objects/" + id + ".json";
  write_file_atomic(dir_ / metrics_rel, metrics_json);
  std::string series_rel;
  if (!series_jsonl.empty()) {
    series_rel = "objects/" + id + ".series.jsonl";
    write_file_atomic(dir_ / series_rel, series_jsonl);
  }
  std::string decisions_rel;
  if (!decisions_jsonl.empty()) {
    decisions_rel = "objects/" + id + ".decisions.jsonl";
    write_file_atomic(dir_ / decisions_rel, decisions_jsonl);
  }
  std::string spans_rel;
  if (!spans_jsonl.empty()) {
    spans_rel = "objects/" + id + ".spans.jsonl";
    write_file_atomic(dir_ / spans_rel, spans_jsonl);
  }

  const fs::path index = dir_ / "index.jsonl";
  std::error_code ec;
  if (!fs::exists(index, ec) || fs::file_size(index, ec) == 0) {
    append_line_fsync(index, obs::JsonLineWriter()
                                 .field("schema", kRunIndexSchema)
                                 .field("version", obs::kJsonlSchemaVersion)
                                 .str());
  }
  obs::JsonLineWriter record;
  record.field("id", id)
      .field("scheduler", scheduler)
      .field("source", source)
      .field("metrics", metrics_rel);
  if (!series_rel.empty()) record.field("series", series_rel);
  if (!decisions_rel.empty()) record.field("decisions", decisions_rel);
  if (!spans_rel.empty()) record.field("spans", spans_rel);
  record.raw_field("fingerprint", fingerprint_json(fingerprint));
  append_line_fsync(index, record.str());
  return id;
}

RunStore::LoadResult RunStore::load() const {
  LoadResult result;
  std::ifstream in(dir_ / "index.jsonl", std::ios::binary);
  if (!in) return result;  // empty store

  std::string line;
  std::size_t line_no = 0;
  bool have_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    try {
      obs::JsonValue obj = obs::parse_json(line);
      if (!have_header) {
        obs::require_schema(obj, kRunIndexSchema);
        have_header = true;
        continue;
      }
      const obs::JsonValue* id = obj.find("id");
      const obs::JsonValue* scheduler = obj.find("scheduler");
      const obs::JsonValue* source = obj.find("source");
      const obs::JsonValue* metrics = obj.find("metrics");
      if (id == nullptr || !id->is_string() || scheduler == nullptr ||
          !scheduler->is_string() || source == nullptr ||
          !source->is_string() || metrics == nullptr ||
          !metrics->is_string()) {
        throw std::invalid_argument("missing id/scheduler/source/metrics");
      }
      RunRecord rec;
      rec.id = id->as_string();
      rec.scheduler = scheduler->as_string();
      rec.source = source->as_string();
      rec.metrics_rel = metrics->as_string();
      if (const obs::JsonValue* series = obj.find("series");
          series != nullptr && series->is_string()) {
        rec.series_rel = series->as_string();
      }
      if (const obs::JsonValue* decisions = obj.find("decisions");
          decisions != nullptr && decisions->is_string()) {
        rec.decisions_rel = decisions->as_string();
      }
      if (const obs::JsonValue* spans = obj.find("spans");
          spans != nullptr && spans->is_string()) {
        rec.spans_rel = spans->as_string();
      }
      if (const obs::JsonValue* fp = obj.find("fingerprint");
          fp != nullptr && fp->is_object()) {
        for (const auto& [key, value] : fp->as_object()) {
          if (value->is_string()) rec.fingerprint[key] = value->as_string();
        }
      }
      bool duplicate = false;
      for (const RunRecord& seen : result.runs) {
        if (seen.id == rec.id) duplicate = true;
      }
      if (!duplicate) result.runs.push_back(std::move(rec));
    } catch (const std::exception& e) {
      ++result.skipped_lines;
      result.warnings.push_back("index line " + std::to_string(line_no) +
                                " skipped (" + e.what() +
                                "); truncated tail record?");
    }
  }
  return result;
}

std::optional<RunRecord> RunStore::find(const std::string& id_prefix) const {
  TRACON_REQUIRE(!id_prefix.empty(), "run id prefix must be non-empty");
  LoadResult loaded = load();
  std::optional<RunRecord> match;
  for (const RunRecord& r : loaded.runs) {
    if (r.id.rfind(id_prefix, 0) != 0) continue;
    if (match.has_value()) {
      throw std::invalid_argument("run id prefix '" + id_prefix +
                                  "' is ambiguous (matches " + match->id +
                                  " and " + r.id + ")");
    }
    match = r;
  }
  return match;
}

std::string RunStore::read_metrics(const RunRecord& record) const {
  std::ifstream in(dir_ / record.metrics_rel, std::ios::binary);
  if (!in) {
    throw std::runtime_error("runstore: cannot open metrics object for run " +
                             record.id);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string RunStore::read_series(const RunRecord& record) const {
  TRACON_REQUIRE(record.has_series(),
                 "run stored no snapshot series (record with --snapshot-"
                 "interval)");
  std::ifstream in(dir_ / record.series_rel, std::ios::binary);
  if (!in) {
    throw std::runtime_error("runstore: cannot open series object for run " +
                             record.id);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string RunStore::read_decisions(const RunRecord& record) const {
  TRACON_REQUIRE(record.has_decisions(),
                 "run stored no decision log (record with --decisions)");
  std::ifstream in(dir_ / record.decisions_rel, std::ios::binary);
  if (!in) {
    throw std::runtime_error(
        "runstore: cannot open decisions object for run " + record.id);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string RunStore::read_spans(const RunRecord& record) const {
  TRACON_REQUIRE(record.has_spans(),
                 "run stored no span log (record with --spans)");
  std::ifstream in(dir_ / record.spans_rel, std::ios::binary);
  if (!in) {
    throw std::runtime_error("runstore: cannot open spans object for run " +
                             record.id);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace tracon::runstore
