#include "runstore/report.hpp"

#include <ostream>
#include <set>
#include <stdexcept>

#include "obs/attribution.hpp"
#include "obs/breakdown.hpp"
#include "obs/json.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace tracon::runstore {

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void read_scalar_section(const obs::JsonValue& doc, const std::string& key,
                         std::map<std::string, double>* out) {
  const obs::JsonValue* section = doc.find(key);
  if (section == nullptr || !section->is_object()) {
    throw std::invalid_argument("metrics document has no \"" + key +
                                "\" object");
  }
  for (const auto& [name, value] : section->as_object()) {
    if (!value->is_number()) {
      throw std::invalid_argument("metrics " + key + " entry \"" + name +
                                  "\" is not a number");
    }
    (*out)[name] = value->as_number();
  }
}

double hist_field(const obs::JsonValue& hist, const std::string& name,
                  const std::string& field) {
  const obs::JsonValue* v = hist.find(field);
  if (v == nullptr || !v->is_number()) {
    throw std::invalid_argument("metrics histogram \"" + name +
                                "\" lacks numeric \"" + field + "\"");
  }
  return v->as_number();
}

/// Union of the key sets of two maps, sorted.
template <typename Map>
std::set<std::string> key_union(const Map& a, const Map& b) {
  std::set<std::string> keys;
  for (const auto& [k, v] : a) keys.insert(k);
  for (const auto& [k, v] : b) keys.insert(k);
  return keys;
}

ReportSection scalar_section(const std::string& title,
                             const std::map<std::string, double>& a,
                             const std::map<std::string, double>& b) {
  ReportSection section{title, {}};
  for (const std::string& name : key_union(a, b)) {
    auto ia = a.find(name);
    auto ib = b.find(name);
    section.rows.push_back({name, ia != a.end() ? ia->second : 0.0,
                            ib != b.end() ? ib->second : 0.0});
  }
  return section;
}

}  // namespace

MetricsSummary summarize_metrics(const obs::JsonValue& doc) {
  MetricsSummary out;
  if (const obs::JsonValue* fp = doc.find("fingerprint");
      fp != nullptr && fp->is_object()) {
    for (const auto& [key, value] : fp->as_object()) {
      if (value->is_string()) out.fingerprint[key] = value->as_string();
    }
  }
  read_scalar_section(doc, "counters", &out.counters);
  read_scalar_section(doc, "gauges", &out.gauges);
  const obs::JsonValue* hists = doc.find("histograms");
  if (hists == nullptr || !hists->is_object()) {
    throw std::invalid_argument("metrics document has no histograms object");
  }
  for (const auto& [name, value] : hists->as_object()) {
    MetricsSummary::HistStats stats;
    stats.count = hist_field(*value, name, "count");
    stats.sum = hist_field(*value, name, "sum");
    stats.min = hist_field(*value, name, "min");
    stats.max = hist_field(*value, name, "max");
    out.histograms[name] = stats;
  }
  return out;
}

RunReport diff_runs(const MetricsSummary& a, const MetricsSummary& b,
                    const std::string& label_a, const std::string& label_b) {
  RunReport report;
  report.label_a = label_a;
  report.label_b = label_b;
  report.fingerprint_a = a.fingerprint;
  report.fingerprint_b = b.fingerprint;

  report.sections.push_back(
      scalar_section("counters", a.counters, b.counters));
  report.sections.push_back(scalar_section("gauges", a.gauges, b.gauges));

  ReportSection latency{"task latency", {}};
  ReportSection accuracy{"model accuracy (mean |rel error|)", {}};
  for (const std::string& name : key_union(a.histograms, b.histograms)) {
    auto ia = a.histograms.find(name);
    auto ib = b.histograms.find(name);
    MetricsSummary::HistStats ha =
        ia != a.histograms.end() ? ia->second : MetricsSummary::HistStats{};
    MetricsSummary::HistStats hb =
        ib != b.histograms.end() ? ib->second : MetricsSummary::HistStats{};
    if (starts_with(name, "sim.task.")) {
      latency.rows.push_back({name + " count", ha.count, hb.count});
      latency.rows.push_back({name + " mean", ha.mean(), hb.mean()});
      latency.rows.push_back({name + " max", ha.max, hb.max});
    } else if (ends_with(name, ".rel_error_abs")) {
      accuracy.rows.push_back({name, ha.mean(), hb.mean()});
    }
  }
  report.sections.push_back(std::move(latency));
  report.sections.push_back(std::move(accuracy));
  return report;
}

namespace {

double window_value(const obs::SeriesWindow& window, const std::string& name) {
  if (auto it = window.counters.find(name); it != window.counters.end())
    return it->second;
  if (auto it = window.gauges.find(name); it != window.gauges.end())
    return it->second;
  return 0.0;
}

}  // namespace

void diff_series(const obs::MetricsSeries& a, const obs::MetricsSeries& b,
                 RunReport* report) {
  TRACON_REQUIRE(report != nullptr, "diff_series needs a report");
  report->series.clear();
  report->series_windows = std::min(a.windows.size(), b.windows.size());
  if (report->series_windows == 0) return;

  std::set<std::string> names;
  for (std::size_t w = 0; w < report->series_windows; ++w) {
    for (const auto& [name, v] : a.windows[w].counters) names.insert(name);
    for (const auto& [name, v] : a.windows[w].gauges) names.insert(name);
    for (const auto& [name, v] : b.windows[w].counters) names.insert(name);
    for (const auto& [name, v] : b.windows[w].gauges) names.insert(name);
  }
  for (const std::string& name : names) {
    SeriesRow row;
    row.name = name;
    double div_sum = 0.0;
    for (std::size_t w = 0; w < report->series_windows; ++w) {
      double va = window_value(a.windows[w], name);
      double vb = window_value(b.windows[w], name);
      double div = vb >= va ? vb - va : va - vb;
      div_sum += div;
      if (div > row.max_div) {
        row.max_div = div;
        row.max_div_t = a.windows[w].t_end;
      }
    }
    row.mean_div = div_sum / static_cast<double>(report->series_windows);
    report->series.push_back(std::move(row));
  }
}

void diff_decisions(const obs::AttributionReport& a,
                    const obs::AttributionReport& b, RunReport* report) {
  TRACON_REQUIRE(report != nullptr, "diff_decisions needs a report");
  ReportSection section{"decisions", {}};
  section.rows.push_back({"decisions", static_cast<double>(a.decisions),
                          static_cast<double>(b.decisions)});
  section.rows.push_back({"joined to outcome", static_cast<double>(a.joined),
                          static_cast<double>(b.joined)});
  section.rows.push_back(
      {"mean candidate-set size", a.mean_candidates, b.mean_candidates});
  section.rows.push_back({"mean |runtime rel error|",
                          a.mean_abs_runtime_error,
                          b.mean_abs_runtime_error});
  section.rows.push_back(
      {"mean |iops rel error|", a.mean_abs_iops_error, b.mean_abs_iops_error});
  report->sections.push_back(std::move(section));
}

void diff_breakdown(const obs::BreakdownReport& a,
                    const obs::BreakdownReport& b, RunReport* report) {
  TRACON_REQUIRE(report != nullptr, "diff_breakdown needs a report");
  auto mean = [](const obs::BreakdownCell& cell, double component) {
    return cell.tasks > 0 ? component / static_cast<double>(cell.tasks) : 0.0;
  };
  ReportSection section{"breakdown", {}};
  section.rows.push_back({"completed tasks",
                          static_cast<double>(a.total.tasks),
                          static_cast<double>(b.total.tasks)});
  section.rows.push_back({"mean wait s", mean(a.total, a.total.wait_s),
                          mean(b.total, b.total.wait_s)});
  section.rows.push_back({"mean solo s", mean(a.total, a.total.solo_s),
                          mean(b.total, b.total.solo_s)});
  section.rows.push_back({"mean interference s",
                          mean(a.total, a.total.interference_s),
                          mean(b.total, b.total.interference_s)});
  section.rows.push_back({"mean migration s",
                          mean(a.total, a.total.migration_s),
                          mean(b.total, b.total.migration_s)});
  section.rows.push_back({"mean end-to-end s",
                          mean(a.total, a.total.end_to_end_s()),
                          mean(b.total, b.total.end_to_end_s())});
  report->sections.push_back(std::move(section));
}

void write_report_text(std::ostream& os, const RunReport& report) {
  os << "A = " << report.label_a << "\nB = " << report.label_b << "\n";
  bool fingerprint_diff = false;
  for (const std::string& key :
       key_union(report.fingerprint_a, report.fingerprint_b)) {
    auto ia = report.fingerprint_a.find(key);
    auto ib = report.fingerprint_b.find(key);
    const std::string va =
        ia != report.fingerprint_a.end() ? ia->second : "(unset)";
    const std::string vb =
        ib != report.fingerprint_b.end() ? ib->second : "(unset)";
    if (va == vb) continue;
    if (!fingerprint_diff) os << "fingerprint differences:\n";
    fingerprint_diff = true;
    os << "  " << key << ": " << va << " -> " << vb << "\n";
  }
  if (!fingerprint_diff) os << "fingerprints identical\n";

  for (const ReportSection& section : report.sections) {
    if (section.rows.empty()) continue;
    os << "\n" << section.title << ":\n";
    TableWriter table({"metric", "A", "B", "delta"});
    for (const ReportRow& row : section.rows) {
      table.add_row({row.name, obs::format_double(row.a),
                     obs::format_double(row.b),
                     obs::format_double(row.delta())});
    }
    table.print(os);
  }

  if (!report.series.empty()) {
    os << "\nseries (per-window divergence over "
       << report.series_windows << " aligned windows):\n";
    TableWriter table({"metric", "mean_div", "max_div", "at_t_end"});
    for (const SeriesRow& row : report.series) {
      table.add_row({row.name, obs::format_double(row.mean_div),
                     obs::format_double(row.max_div),
                     obs::format_double(row.max_div_t)});
    }
    table.print(os);
  }
}

namespace {

void write_fingerprint_json(std::ostream& os,
                            const std::map<std::string, std::string>& fp) {
  os << "{";
  bool first = true;
  for (const auto& [key, value] : fp) {
    os << (first ? "" : ", ") << "\"" << obs::json_escape(key) << "\": \""
       << obs::json_escape(value) << "\"";
    first = false;
  }
  os << "}";
}

}  // namespace

void write_report_json(std::ostream& os, const RunReport& report) {
  os << "{\n  \"a\": {\"label\": \"" << obs::json_escape(report.label_a)
     << "\", \"fingerprint\": ";
  write_fingerprint_json(os, report.fingerprint_a);
  os << "},\n  \"b\": {\"label\": \"" << obs::json_escape(report.label_b)
     << "\", \"fingerprint\": ";
  write_fingerprint_json(os, report.fingerprint_b);
  os << "},\n  \"sections\": [";
  bool first_section = true;
  for (const ReportSection& section : report.sections) {
    os << (first_section ? "\n" : ",\n") << "    {\"title\": \""
       << obs::json_escape(section.title) << "\", \"rows\": [";
    first_section = false;
    bool first_row = true;
    for (const ReportRow& row : section.rows) {
      os << (first_row ? "\n" : ",\n") << "      {\"name\": \""
         << obs::json_escape(row.name) << "\", \"a\": "
         << obs::format_double(row.a) << ", \"b\": "
         << obs::format_double(row.b) << ", \"delta\": "
         << obs::format_double(row.delta()) << "}";
      first_row = false;
    }
    os << (first_row ? "" : "\n    ") << "]}";
  }
  os << (first_section ? "" : "\n  ") << "],\n  \"series\": {\"windows\": "
     << report.series_windows << ", \"rows\": [";
  bool first_series = true;
  for (const SeriesRow& row : report.series) {
    os << (first_series ? "\n" : ",\n") << "    {\"name\": \""
       << obs::json_escape(row.name) << "\", \"mean_div\": "
       << obs::format_double(row.mean_div) << ", \"max_div\": "
       << obs::format_double(row.max_div) << ", \"at_t_end\": "
       << obs::format_double(row.max_div_t) << "}";
    first_series = false;
  }
  os << (first_series ? "" : "\n  ") << "]}\n}\n";
}

}  // namespace tracon::runstore
