#include "model/evaluate.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/summary.hpp"

namespace tracon::model {

double relative_error(double predicted, double actual) {
  double denom = std::max(std::abs(actual), 1e-9);
  return std::abs(predicted - actual) / denom;
}

namespace {

ErrorStats from_errors(const std::vector<double>& errors) {
  ErrorStats out;
  if (errors.empty()) return out;
  Summary s = Summary::of(errors);
  out.mean = s.mean;
  out.stddev = s.stddev;
  out.max = s.max;
  out.count = s.count;
  return out;
}

}  // namespace

ErrorStats evaluate_on(const InterferenceModel& model,
                       const TrainingSet& test) {
  std::vector<double> errors;
  errors.reserve(test.size());
  for (const auto& obs : test.observations()) {
    double actual =
        model.response() == Response::kRuntime ? obs.runtime : obs.iops;
    errors.push_back(relative_error(model.predict(obs.features), actual));
  }
  return from_errors(errors);
}

ErrorStats cross_validate(ModelKind kind, const TrainingSet& data,
                          Response response, std::size_t folds,
                          std::uint64_t seed) {
  TRACON_REQUIRE(folds >= 2, "cross-validation needs at least two folds");
  TRACON_REQUIRE(data.size() >= folds, "fewer observations than folds");

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng(seed);
  rng.shuffle(order);

  std::vector<double> errors;
  errors.reserve(data.size());
  for (std::size_t f = 0; f < folds; ++f) {
    std::vector<std::size_t> train_idx, test_idx;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (i % folds == f) {
        test_idx.push_back(order[i]);
      } else {
        train_idx.push_back(order[i]);
      }
    }
    TrainingSet train = data.subset(train_idx);
    TrainingSet test = data.subset(test_idx);
    auto model = train_model(kind, train, response);
    for (const auto& obs : test.observations()) {
      double actual =
          response == Response::kRuntime ? obs.runtime : obs.iops;
      errors.push_back(relative_error(model->predict(obs.features), actual));
    }
  }
  return from_errors(errors);
}

}  // namespace tracon::model
