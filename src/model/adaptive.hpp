// Online model adaptation (Section 3.1, Fig 7).
//
// TRACON keeps the prediction model under observation at runtime: every
// completed task yields an (observed features, actual response) pair.
// The adaptive wrapper tracks relative prediction errors with a drift
// detector, maintains a sliding training window in which new data
// gradually replaces old, and rebuilds the model every
// `rebuild_interval` new observations (the paper rebuilds per 160) or
// immediately on detected drift.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "model/factory.hpp"
#include "monitor/drift.hpp"
#include "obs/accuracy.hpp"
#include "obs/telemetry.hpp"

namespace tracon::model {

struct AdaptiveConfig {
  ModelKind kind = ModelKind::kNonlinear;
  std::size_t rebuild_interval = 160;  ///< new points per rebuild
  std::size_t window_size = 500;       ///< sliding training window
  bool drift_triggered_rebuild = true;
  monitor::DriftConfig drift;
};

class AdaptiveModel {
 public:
  /// Trains the initial model on `initial` (e.g., 500 profiling points).
  AdaptiveModel(TrainingSet initial, Response response,
                AdaptiveConfig cfg = {});

  double predict(std::span<const double> features) const;

  /// Feeds one runtime observation. Returns the relative error of the
  /// pre-update prediction. May trigger a rebuild.
  double observe(const Observation& obs);

  const InterferenceModel& current() const { return *model_; }
  std::size_t rebuild_count() const { return rebuilds_; }
  /// Model epoch for memoization layers (sched::PredictionCache): a
  /// retrain is exactly the event after which cached predictions made
  /// through this model must be invalidated, so the epoch IS the
  /// rebuild counter. Predictor adapters over an AdaptiveModel forward
  /// this from Predictor::model_epoch().
  std::uint64_t model_epoch() const {
    return static_cast<std::uint64_t>(rebuilds_);
  }
  std::size_t observations_since_rebuild() const { return fresh_; }
  Response response() const { return response_; }

  /// Relative errors in observation order (for Fig 7 style plots).
  const std::vector<double>& error_history() const { return errors_; }

  /// Attaches (or detaches, with nullptr) telemetry sinks. While
  /// attached, every observation feeds per-family accuracy histograms
  /// and rebuilds/drift detections emit counters plus kModelRetrain /
  /// kModelDrift trace events timestamped with the observation ordinal
  /// (the adaptive loop's own virtual clock).
  void set_telemetry(obs::Telemetry* telemetry);

 private:
  void rebuild();

  AdaptiveConfig cfg_;
  Response response_;
  TrainingSet window_;
  std::unique_ptr<InterferenceModel> model_;
  monitor::DriftDetector drift_;
  std::size_t fresh_ = 0;
  std::size_t rebuilds_ = 0;
  std::vector<double> errors_;
  obs::Telemetry* telemetry_ = nullptr;
  std::string metric_prefix_;  ///< "model.<family>" while attached
  std::optional<obs::AccuracyTracker> accuracy_;
};

}  // namespace tracon::model
