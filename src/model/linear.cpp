#include "model/linear.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tracon::model {

namespace {
std::size_t active_dim(const std::vector<std::size_t>& active) {
  return active.empty() ? TrainingSet::kNumFeatures : active.size();
}
}  // namespace

LinearModel::LinearModel(const TrainingSet& data, Response response,
                         LinearConfig cfg)
    : InterferenceModel(response),
      cfg_(std::move(cfg)),
      basis_(stats::PolyBasis::degree1(active_dim(cfg_.active_features))) {
  TRACON_REQUIRE(data.size() >= basis_.num_terms() + 2,
                 "not enough observations for the linear model");

  stats::Matrix full = data.feature_matrix();
  stats::Matrix x = cfg_.active_features.empty()
                        ? full
                        : full.select_columns(cfg_.active_features);
  standardizer_ = Standardizer::fit(x);
  stats::Matrix z = standardizer_.apply_rows(x);
  stats::Matrix candidates = basis_.expand_rows(z);
  selection_ =
      stats::stepwise_aic(candidates, data.response_vector(response));
}

double LinearModel::predict(std::span<const double> features) const {
  std::vector<double> x = select(features, cfg_.active_features);
  stats::Vector z = standardizer_.apply(x);
  stats::Vector row = basis_.expand(z);
  return std::max(0.0, selection_.predict(row));
}

std::string LinearModel::describe() const {
  return "LM(" + response_name(response()) + "), " +
         std::to_string(num_terms()) + " terms, AIC=" +
         std::to_string(selection_.fit.aic);
}

}  // namespace tracon::model
