#include "model/wmm.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tracon::model {

std::vector<double> InterferenceModel::select(
    std::span<const double> features,
    const std::vector<std::size_t>& active) {
  if (active.empty()) return {features.begin(), features.end()};
  std::vector<double> out;
  out.reserve(active.size());
  for (std::size_t i : active) {
    TRACON_REQUIRE(i < features.size(), "active feature index out of range");
    out.push_back(features[i]);
  }
  return out;
}

WmmModel::WmmModel(const TrainingSet& data, Response response, WmmConfig cfg)
    : InterferenceModel(response), cfg_(std::move(cfg)) {
  TRACON_REQUIRE(data.size() >= cfg_.neighbours + 1,
                 "WMM needs more observations than neighbours");

  stats::Matrix full = data.feature_matrix();
  stats::Matrix x = cfg_.active_features.empty()
                        ? full
                        : full.select_columns(cfg_.active_features);
  std::size_t k = std::min(cfg_.components, x.cols());
  pca_ = stats::Pca::fit(x, k, cfg_.standardize);
  stats::Matrix projected = pca_.project_rows(x);
  knn_.emplace(std::move(projected), data.response_vector(response),
               cfg_.neighbours);
}

double WmmModel::predict(std::span<const double> features) const {
  std::vector<double> x = select(features, cfg_.active_features);
  stats::Vector p = pca_.project(x);
  return std::max(0.0, knn_->predict(p));
}

std::string WmmModel::describe() const {
  return "WMM(" + response_name(response()) + "), " +
         std::to_string(pca_.num_components()) + " components, k=" +
         std::to_string(knn_->k());
}

}  // namespace tracon::model
