#include "model/factory.hpp"

#include "model/linear.hpp"
#include "model/nonlinear.hpp"
#include "model/wmm.hpp"
#include "obs/metrics.hpp"
#include "obs/scope_timer.hpp"
#include "util/error.hpp"

namespace tracon::model {

namespace {
/// All features except the two Dom0 (global CPU) utilizations —
/// profile order is {domu, dom0, reads, writes} per VM.
const std::vector<std::size_t> kNoDom0Features = {0, 2, 3, 4, 6, 7};
}  // namespace

std::string model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kWmm: return "WMM";
    case ModelKind::kLinear: return "LM";
    case ModelKind::kNonlinear: return "NLM";
    case ModelKind::kNonlinearNoDom0: return "NLM-noDom0";
    case ModelKind::kNonlinearLog: return "NLM-log";
  }
  return "unknown";
}

std::string model_kind_metric_family(ModelKind kind) {
  return obs::metric_path_component(model_kind_name(kind));
}

std::unique_ptr<InterferenceModel> train_model(ModelKind kind,
                                               const TrainingSet& data,
                                               Response response) {
  TRACON_PROF_SCOPE("model.train");
  switch (kind) {
    case ModelKind::kWmm:
      return std::make_unique<WmmModel>(data, response);
    case ModelKind::kLinear:
      return std::make_unique<LinearModel>(data, response);
    case ModelKind::kNonlinear:
      return std::make_unique<NonlinearModel>(data, response);
    case ModelKind::kNonlinearNoDom0: {
      NonlinearConfig cfg;
      cfg.active_features = kNoDom0Features;
      return std::make_unique<NonlinearModel>(data, response, cfg);
    }
    case ModelKind::kNonlinearLog: {
      NonlinearConfig cfg;
      cfg.log_response = true;
      return std::make_unique<NonlinearModel>(data, response, cfg);
    }
  }
  throw std::invalid_argument("unknown model kind");
}

ModelPair train_model_pair(ModelKind kind, const TrainingSet& data) {
  ModelPair pair;
  pair.runtime = train_model(kind, data, Response::kRuntime);
  pair.iops = train_model(kind, data, Response::kIops);
  return pair;
}

}  // namespace tracon::model
