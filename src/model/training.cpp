#include "model/training.hpp"

#include "util/error.hpp"

namespace tracon::model {

std::string response_name(Response r) {
  return r == Response::kRuntime ? "runtime" : "iops";
}

void TrainingSet::add(const monitor::AppProfile& fg,
                      const monitor::AppProfile& bg, double runtime,
                      double iops) {
  Observation obs;
  obs.features = monitor::concat_profiles(fg, bg);
  obs.runtime = runtime;
  obs.iops = iops;
  add(std::move(obs));
}

void TrainingSet::add(Observation obs) {
  TRACON_REQUIRE(obs.features.size() == kNumFeatures,
                 "observation must have 8 features");
  TRACON_REQUIRE(obs.runtime >= 0.0 && obs.iops >= 0.0,
                 "responses must be non-negative");
  observations_.push_back(std::move(obs));
}

stats::Matrix TrainingSet::feature_matrix() const {
  stats::Matrix x(observations_.size(), kNumFeatures);
  for (std::size_t r = 0; r < observations_.size(); ++r)
    for (std::size_t c = 0; c < kNumFeatures; ++c)
      x(r, c) = observations_[r].features[c];
  return x;
}

stats::Vector TrainingSet::response_vector(Response r) const {
  stats::Vector y;
  y.reserve(observations_.size());
  for (const auto& obs : observations_)
    y.push_back(r == Response::kRuntime ? obs.runtime : obs.iops);
  return y;
}

TrainingSet TrainingSet::subset(std::span<const std::size_t> idx) const {
  TrainingSet out;
  for (std::size_t i : idx) {
    TRACON_REQUIRE(i < observations_.size(), "subset index out of range");
    out.add(observations_[i]);
  }
  return out;
}

void TrainingSet::truncate_to_newest(std::size_t n) {
  if (observations_.size() <= n) return;
  observations_.erase(observations_.begin(),
                      observations_.end() - static_cast<long>(n));
}

}  // namespace tracon::model
