#include "model/profiler.hpp"

#include <functional>

#include "util/error.hpp"

namespace tracon::model {

std::uint64_t Profiler::run_seed(const std::string& a,
                                 const std::string& b) const {
  std::uint64_t h = seed_;
  // FNV-style mixing keeps runs deterministic per (seed, fg, bg) triple.
  for (char c : a) h = (h ^ static_cast<std::uint64_t>(c)) * 0x100000001b3ULL;
  h = (h ^ 0x7c) * 0x100000001b3ULL;
  for (char c : b) h = (h ^ static_cast<std::uint64_t>(c)) * 0x100000001b3ULL;
  return h == 0 ? 1 : h;
}

const virt::VmRunStats& Profiler::solo_stats(const virt::AppBehavior& app) {
  auto it = solo_cache_.find(app.name);
  if (it != solo_cache_.end()) return it->second;
  virt::VmRunStats stats;
  if (app.is_idle()) {
    // An idle "workload" contributes nothing; synthesize empty stats.
    stats.present = true;
    stats.completed = true;
  } else {
    stats = sim_.solo(app, run_seed(app.name, "<solo>"));
    TRACON_ASSERT(stats.completed, "solo run did not complete");
  }
  return solo_cache_.emplace(app.name, stats).first->second;
}

monitor::AppProfile Profiler::solo_profile(const virt::AppBehavior& app) {
  return monitor::AppProfile::from_run_stats(solo_stats(app));
}

virt::PairMeasurement Profiler::measure(const virt::AppBehavior& target,
                                        const virt::AppBehavior& background) {
  if (background.is_idle()) {
    const virt::VmRunStats& solo = solo_stats(target);
    return {solo.runtime_s, solo.iops, solo.reads_per_s, solo.writes_per_s};
  }
  return sim_.measure_pair(target, background,
                           run_seed(target.name, background.name));
}

TrainingSet Profiler::profile_against(
    const virt::AppBehavior& target,
    std::span<const virt::AppBehavior> backgrounds, bool include_idle) {
  TrainingSet ts;
  monitor::AppProfile fg = solo_profile(target);
  if (include_idle) {
    const virt::VmRunStats& solo = solo_stats(target);
    ts.add(fg, monitor::AppProfile::idle(), solo.runtime_s, solo.iops);
  }
  for (const auto& bg : backgrounds) {
    monitor::AppProfile bgp = solo_profile(bg);
    virt::PairMeasurement pm = measure(target, bg);
    ts.add(fg, bgp, pm.runtime_s, pm.iops);
  }
  return ts;
}

}  // namespace tracon::model
