#include "model/adaptive.hpp"

#include "model/evaluate.hpp"
#include "util/error.hpp"

namespace tracon::model {

AdaptiveModel::AdaptiveModel(TrainingSet initial, Response response,
                             AdaptiveConfig cfg)
    : cfg_(cfg),
      response_(response),
      window_(std::move(initial)),
      drift_(cfg.drift) {
  TRACON_REQUIRE(cfg_.rebuild_interval > 0, "rebuild interval must be > 0");
  TRACON_REQUIRE(cfg_.window_size >= cfg_.rebuild_interval,
                 "window must hold at least one rebuild interval");
  window_.truncate_to_newest(cfg_.window_size);
  model_ = train_model(cfg_.kind, window_, response_);
}

double AdaptiveModel::predict(std::span<const double> features) const {
  return model_->predict(features);
}

double AdaptiveModel::observe(const Observation& obs) {
  double actual = response_ == Response::kRuntime ? obs.runtime : obs.iops;
  double predicted = model_->predict(obs.features);
  double err = relative_error(predicted, actual);
  errors_.push_back(err);
  if (accuracy_.has_value()) accuracy_->record(predicted, actual);

  window_.add(obs);
  window_.truncate_to_newest(cfg_.window_size);
  ++fresh_;

  bool drifted = cfg_.drift_triggered_rebuild &&
                 drift_.observe(err) != monitor::DriftKind::kNone;
  if (drifted && telemetry_ != nullptr) {
    telemetry_->metrics.counter(metric_prefix_ + ".drift_events").inc();
    obs::TraceEvent ev;
    ev.time_s = static_cast<double>(errors_.size());
    ev.kind = obs::TraceEventKind::kModelDrift;
    ev.value = err;
    telemetry_->tracer.record(ev);
  }
  // A drift rebuild only helps once enough post-change data is in the
  // window; require a quarter interval of fresh points.
  bool drift_ready = drifted && fresh_ >= cfg_.rebuild_interval / 4;
  if (fresh_ >= cfg_.rebuild_interval || drift_ready) rebuild();
  return err;
}

void AdaptiveModel::rebuild() {
  model_ = train_model(cfg_.kind, window_, response_);
  drift_.reset();
  fresh_ = 0;
  ++rebuilds_;
  if (telemetry_ != nullptr) {
    telemetry_->metrics.counter(metric_prefix_ + ".rebuilds").inc();
    obs::TraceEvent ev;
    ev.time_s = static_cast<double>(errors_.size());
    ev.kind = obs::TraceEventKind::kModelRetrain;
    ev.count = window_.size();
    ev.value = static_cast<double>(rebuilds_);
    telemetry_->tracer.record(ev);
  }
}

void AdaptiveModel::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  accuracy_.reset();
  metric_prefix_.clear();
  if (telemetry_ == nullptr) return;
  std::string family = model_kind_name(cfg_.kind);
  metric_prefix_ = "model." + obs::metric_path_component(family);
  accuracy_.emplace(telemetry_->metrics, family,
                    response_ == Response::kRuntime ? "runtime" : "iops");
}

}  // namespace tracon::model
