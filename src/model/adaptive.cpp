#include "model/adaptive.hpp"

#include "model/evaluate.hpp"
#include "util/error.hpp"

namespace tracon::model {

AdaptiveModel::AdaptiveModel(TrainingSet initial, Response response,
                             AdaptiveConfig cfg)
    : cfg_(cfg),
      response_(response),
      window_(std::move(initial)),
      drift_(cfg.drift) {
  TRACON_REQUIRE(cfg_.rebuild_interval > 0, "rebuild interval must be > 0");
  TRACON_REQUIRE(cfg_.window_size >= cfg_.rebuild_interval,
                 "window must hold at least one rebuild interval");
  window_.truncate_to_newest(cfg_.window_size);
  model_ = train_model(cfg_.kind, window_, response_);
}

double AdaptiveModel::predict(std::span<const double> features) const {
  return model_->predict(features);
}

double AdaptiveModel::observe(const Observation& obs) {
  double actual = response_ == Response::kRuntime ? obs.runtime : obs.iops;
  double err = relative_error(model_->predict(obs.features), actual);
  errors_.push_back(err);

  window_.add(obs);
  window_.truncate_to_newest(cfg_.window_size);
  ++fresh_;

  bool drifted = cfg_.drift_triggered_rebuild &&
                 drift_.observe(err) != monitor::DriftKind::kNone;
  // A drift rebuild only helps once enough post-change data is in the
  // window; require a quarter interval of fresh points.
  bool drift_ready = drifted && fresh_ >= cfg_.rebuild_interval / 4;
  if (fresh_ >= cfg_.rebuild_interval || drift_ready) rebuild();
  return err;
}

void AdaptiveModel::rebuild() {
  model_ = train_model(cfg_.kind, window_, response_);
  drift_.reset();
  fresh_ = 0;
  ++rebuilds_;
}

}  // namespace tracon::model
