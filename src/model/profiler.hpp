// Application profiling: drives the host simulator to produce solo
// profiles and interference training sets, as the paper does on its Xen
// testbed ("we generate its interference profile by running it on VM1
// while varying the workloads on VM2").
#pragma once

#include <map>
#include <span>
#include <string>

#include "model/training.hpp"
#include "monitor/profile.hpp"
#include "virt/host_sim.hpp"

namespace tracon::model {

class Profiler {
 public:
  explicit Profiler(virt::HostSimulator sim, std::uint64_t seed = 42)
      : sim_(std::move(sim)), seed_(seed) {}

  const virt::HostSimulator& simulator() const { return sim_; }

  /// Solo run statistics for an app; cached by application name.
  const virt::VmRunStats& solo_stats(const virt::AppBehavior& app);

  /// Solo application profile (the model's controlled variables).
  monitor::AppProfile solo_profile(const virt::AppBehavior& app);

  /// Builds the training set for `target`: one co-located measurement
  /// per background (plus the idle baseline when `include_idle`). Rows
  /// carry (target solo profile, background solo profile) as features
  /// and the measured runtime / IOPS under co-location as responses.
  TrainingSet profile_against(
      const virt::AppBehavior& target,
      std::span<const virt::AppBehavior> backgrounds,
      bool include_idle = true);

  /// One co-located measurement (also used for ground-truth tables).
  virt::PairMeasurement measure(const virt::AppBehavior& target,
                                const virt::AppBehavior& background);

 private:
  std::uint64_t run_seed(const std::string& a, const std::string& b) const;

  virt::HostSimulator sim_;
  std::uint64_t seed_;
  std::map<std::string, virt::VmRunStats> solo_cache_;
};

}  // namespace tracon::model
