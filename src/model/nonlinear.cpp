#include "model/nonlinear.hpp"

#include <algorithm>
#include <cmath>

#include "stats/nls.hpp"
#include "util/error.hpp"

namespace tracon::model {

namespace {
std::size_t active_dim(const std::vector<std::size_t>& active) {
  return active.empty() ? TrainingSet::kNumFeatures : active.size();
}
}  // namespace

NonlinearModel::NonlinearModel(const TrainingSet& data, Response response,
                               NonlinearConfig cfg)
    : InterferenceModel(response),
      cfg_(std::move(cfg)),
      basis_(stats::PolyBasis::degree2(active_dim(cfg_.active_features))) {
  TRACON_REQUIRE(data.size() >= 2 * active_dim(cfg_.active_features) + 4,
                 "not enough observations for the nonlinear model");

  stats::Matrix full = data.feature_matrix();
  stats::Matrix x = cfg_.active_features.empty()
                        ? full
                        : full.select_columns(cfg_.active_features);
  standardizer_ = Standardizer::fit(x);
  stats::Matrix z = standardizer_.apply_rows(x);
  stats::Matrix candidates = basis_.expand_rows(z);
  stats::Vector y = data.response_vector(response);
  if (cfg_.log_response) {
    for (double& v : y) v = std::log(std::max(v, 1e-6));
  }
  selection_ = stats::stepwise_aic(candidates, y);

  if (cfg_.gauss_newton_refine && !selection_.selected.empty()) {
    // The paper fits the quadratic model with Gauss-Newton; on this
    // linear-in-parameters form the solver lands on the least-squares
    // optimum from any start and doubles as a consistency check.
    stats::Matrix design = candidates.select_columns(selection_.selected);
    stats::LinearResidual residual(design, y);
    stats::NlsResult res =
        stats::gauss_newton(residual, selection_.fit.coefficients);
    if (res.converged && res.sse <= selection_.fit.sse + 1e-9) {
      selection_.fit.coefficients = std::move(res.params);
      selection_.fit.sse = res.sse;
      refined_ = true;
    }
  }
}

double NonlinearModel::predict(std::span<const double> features) const {
  std::vector<double> x = select(features, cfg_.active_features);
  stats::Vector z = standardizer_.apply(x);
  stats::Vector row = basis_.expand(z);
  double raw = selection_.predict(row);
  if (cfg_.log_response) {
    // Clamp the exponent: far outside the training manifold the
    // quadratic can explode, and exp() would overflow.
    return std::exp(std::clamp(raw, -30.0, 30.0));
  }
  return std::max(0.0, raw);
}

std::string NonlinearModel::describe() const {
  return std::string(cfg_.log_response ? "NLM-log(" : "NLM(") +
         response_name(response()) + "), " +
         std::to_string(num_terms()) + "/" +
         std::to_string(basis_.num_terms()) + " terms, AIC=" +
         std::to_string(selection_.fit.aic);
}

}  // namespace tracon::model
