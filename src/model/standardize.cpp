#include "model/standardize.hpp"

#include <cmath>

#include "util/error.hpp"

namespace tracon::model {

Standardizer Standardizer::fit(const stats::Matrix& x) {
  TRACON_REQUIRE(x.rows() >= 2, "standardizer needs at least two rows");
  Standardizer s;
  const std::size_t d = x.cols();
  const std::size_t n = x.rows();
  s.mean_.assign(d, 0.0);
  s.scale_.assign(d, 1.0);
  for (std::size_t c = 0; c < d; ++c) {
    double m = 0.0;
    for (std::size_t r = 0; r < n; ++r) m += x(r, c);
    m /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      double dv = x(r, c) - m;
      var += dv * dv;
    }
    var /= static_cast<double>(n - 1);
    s.mean_[c] = m;
    s.scale_[c] = var > 1e-20 ? std::sqrt(var) : 1.0;
  }
  return s;
}

stats::Vector Standardizer::apply(std::span<const double> x) const {
  TRACON_REQUIRE(x.size() == mean_.size(), "standardize dimension mismatch");
  stats::Vector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    out[i] = (x[i] - mean_[i]) / scale_[i];
  return out;
}

stats::Matrix Standardizer::apply_rows(const stats::Matrix& x) const {
  stats::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    stats::Vector row = apply(x.row(r));
    for (std::size_t c = 0; c < row.size(); ++c) out(r, c) = row[c];
  }
  return out;
}

}  // namespace tracon::model
