// Feature standardization (z-scoring) for numerically stable regression:
// CPU utilizations live in [0,1] while request rates reach hundreds per
// second; fitting polynomial bases on raw scales conditions badly.
#pragma once

#include "stats/matrix.hpp"

namespace tracon::model {

class Standardizer {
 public:
  /// Learns per-column mean and scale from the rows of `x`. Constant
  /// columns get unit scale (they standardize to zero).
  static Standardizer fit(const stats::Matrix& x);

  std::size_t dim() const { return mean_.size(); }

  stats::Vector apply(std::span<const double> x) const;
  stats::Matrix apply_rows(const stats::Matrix& x) const;

 private:
  stats::Vector mean_;
  stats::Vector scale_;
};

}  // namespace tracon::model
