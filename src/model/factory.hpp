// Model construction by kind — the WMM / LM / NLM families the paper
// compares, plus the NLM ablation without the Dom0 (global CPU) feature.
#pragma once

#include <memory>
#include <string>

#include "model/interference_model.hpp"

namespace tracon::model {

enum class ModelKind {
  kWmm,
  kLinear,
  kNonlinear,
  kNonlinearNoDom0,  ///< Fig 3 ablation: drops both Dom0 utilizations
  kNonlinearLog,     ///< extension: degree-2 fit on log(response)
};

std::string model_kind_name(ModelKind kind);

/// The kind's label as a metric path component ("NLM-noDom0" ->
/// "nlm_nodom0") — the family string under which accuracy metrics,
/// snapshot-series entries, and confidence weight gauges file.
std::string model_kind_metric_family(ModelKind kind);

/// Trains a model of the given kind on `data` for `response`.
/// Throws std::invalid_argument when `data` is too small for the kind.
std::unique_ptr<InterferenceModel> train_model(ModelKind kind,
                                               const TrainingSet& data,
                                               Response response);

/// A trained runtime + IOPS model pair for one application.
struct ModelPair {
  std::unique_ptr<InterferenceModel> runtime;
  std::unique_ptr<InterferenceModel> iops;
};

/// Trains both responses at once.
ModelPair train_model_pair(ModelKind kind, const TrainingSet& data);

}  // namespace tracon::model
