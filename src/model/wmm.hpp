// Weighted mean method (WMM) — the paper's baseline model.
//
// Following Koh et al. [21] as described in Section 3.1: project the
// eight controlled variables onto the first four principal components,
// find the three nearest profiled points in that space, and predict the
// response as their inverse-distance weighted mean.
#pragma once

#include <optional>

#include "model/interference_model.hpp"
#include "stats/knn.hpp"
#include "stats/pca.hpp"

namespace tracon::model {

struct WmmConfig {
  std::size_t components = 4;  ///< principal components retained
  std::size_t neighbours = 3; ///< k in the weighted k-NN
  /// Raw-covariance PCA, as in the original weighted-mean method: the
  /// request-rate features dominate the distance metric, which is part
  /// of why the paper finds WMM inferior to the regression models.
  bool standardize = false;
  /// Feature subset used (indices into the 8 controlled variables);
  /// empty = all features.
  std::vector<std::size_t> active_features;
};

class WmmModel final : public InterferenceModel {
 public:
  /// Fits PCA and stores the projected training set.
  WmmModel(const TrainingSet& data, Response response, WmmConfig cfg = {});

  double predict(std::span<const double> features) const override;
  std::string describe() const override;

  const stats::Pca& pca() const { return pca_; }

 private:
  WmmConfig cfg_;
  stats::Pca pca_;
  std::optional<stats::KnnRegressor> knn_;
};

}  // namespace tracon::model
