// Training data for the interference prediction models.
//
// Each observation pairs the eight controlled variables (foreground and
// background application profiles, Table 2) with the two measured
// responses: the foreground's runtime and its achieved IOPS under that
// co-location.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "monitor/profile.hpp"
#include "stats/matrix.hpp"

namespace tracon::model {

/// Which response a model predicts.
enum class Response { kRuntime, kIops };

std::string response_name(Response r);

struct Observation {
  std::vector<double> features;  ///< 8 controlled variables
  double runtime = 0.0;
  double iops = 0.0;
};

class TrainingSet {
 public:
  static constexpr std::size_t kNumFeatures = 2 * monitor::kProfileDim;

  void add(const monitor::AppProfile& fg, const monitor::AppProfile& bg,
           double runtime, double iops);
  void add(Observation obs);

  std::size_t size() const { return observations_.size(); }
  bool empty() const { return observations_.empty(); }
  const std::vector<Observation>& observations() const {
    return observations_;
  }

  /// Feature matrix (size x 8).
  stats::Matrix feature_matrix() const;
  /// Response vector for the chosen response.
  stats::Vector response_vector(Response r) const;

  /// Subset by observation indices (for cross-validation folds).
  TrainingSet subset(std::span<const std::size_t> idx) const;

  /// Keeps only the newest `n` observations (sliding window).
  void truncate_to_newest(std::size_t n);

 private:
  std::vector<Observation> observations_;
};

}  // namespace tracon::model
