// Model evaluation: the paper's prediction-error metric
// |predicted - actual| / actual, aggregated by k-fold cross-validation
// over a profiling set (Fig 3) or against a held-out test set.
#pragma once

#include <cstdint>

#include "model/factory.hpp"
#include "model/training.hpp"

namespace tracon::model {

struct ErrorStats {
  double mean = 0.0;    ///< mean relative prediction error
  double stddev = 0.0;  ///< std deviation of the per-point errors
  double max = 0.0;
  std::size_t count = 0;
};

/// Relative prediction error; guarded for tiny actuals.
double relative_error(double predicted, double actual);

/// Errors of a trained model on a test set.
ErrorStats evaluate_on(const InterferenceModel& model, const TrainingSet& test);

/// k-fold cross-validation: trains `kind` on k-1 folds, evaluates on the
/// held-out fold, pools all per-point errors. Deterministic given seed.
ErrorStats cross_validate(ModelKind kind, const TrainingSet& data,
                          Response response, std::size_t folds = 5,
                          std::uint64_t seed = 17);

}  // namespace tracon::model
