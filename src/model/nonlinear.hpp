// Nonlinear interference model (NLM), equation (2) of the paper: every
// term of the degree-2 expansion of the eight controlled variables is a
// candidate regressor; a stepwise algorithm scored by AIC selects the
// term subset and the Gauss-Newton method fits the coefficients.
#pragma once

#include "model/interference_model.hpp"
#include "model/standardize.hpp"
#include "stats/polynomial.hpp"
#include "stats/stepwise.hpp"

namespace tracon::model {

struct NonlinearConfig {
  /// Feature subset used (indices into the 8 controlled variables);
  /// empty = all features. The paper's Fig 3 ablation drops the Dom0
  /// utilizations (indices 1 and 5).
  std::vector<std::size_t> active_features;
  /// Refine stepwise-selected coefficients with Gauss-Newton (the
  /// paper's fitting procedure). Disabling keeps the plain OLS solution;
  /// both should agree for this linear-in-parameters model.
  bool gauss_newton_refine = true;
  /// Extension (paper future work, "different modeling techniques"):
  /// fit the degree-2 model on log(response) and exponentiate
  /// predictions. Interference is multiplicative — a co-runner scales
  /// runtime by a factor — so the log link stabilizes the variance and
  /// tames the relative error on collapse-prone responses (IOPS of
  /// I/O-heavy applications).
  bool log_response = false;
};

class NonlinearModel final : public InterferenceModel {
 public:
  NonlinearModel(const TrainingSet& data, Response response,
                 NonlinearConfig cfg = {});

  double predict(std::span<const double> features) const override;
  std::string describe() const override;

  std::size_t num_terms() const { return selection_.selected.size(); }
  double training_aic() const { return selection_.fit.aic; }
  double training_sse() const { return selection_.fit.sse; }
  bool refined() const { return refined_; }
  bool log_response() const { return cfg_.log_response; }

 private:
  NonlinearConfig cfg_;
  Standardizer standardizer_;
  stats::PolyBasis basis_;
  stats::StepwiseResult selection_;
  bool refined_ = false;
};

}  // namespace tracon::model
