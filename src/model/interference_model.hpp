// Abstract interface of the interference prediction models.
//
// A model predicts one response (foreground runtime or IOPS) from the
// eight controlled variables of a VM pair. Implementations: WmmModel
// (PCA + weighted nearest neighbours), LinearModel (stepwise/AIC linear
// regression), NonlinearModel (degree-2 expansion fit with Gauss-Newton
// and selected by stepwise/AIC).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "model/training.hpp"
#include "monitor/profile.hpp"

namespace tracon::model {

class InterferenceModel {
 public:
  virtual ~InterferenceModel() = default;

  /// Predicts the response from the 8 controlled variables
  /// (vm1 profile then vm2 profile). Predictions are clamped to >= 0.
  virtual double predict(std::span<const double> features) const = 0;

  /// Short human-readable description ("NLM(runtime), 12 terms").
  virtual std::string describe() const = 0;

  Response response() const { return response_; }

  /// Convenience: predicts from a (foreground, background) profile pair.
  double predict_pair(const monitor::AppProfile& fg,
                      const monitor::AppProfile& bg) const {
    return predict(monitor::concat_profiles(fg, bg));
  }

 protected:
  explicit InterferenceModel(Response r) : response_(r) {}

  /// Selects the active feature subset from a full 8-feature vector.
  static std::vector<double> select(std::span<const double> features,
                                    const std::vector<std::size_t>& active);

 private:
  Response response_;
};

}  // namespace tracon::model
