// Linear interference model (LM), equation (1) of the paper: a linear
// function of the eight controlled variables, with the variable subset
// chosen by a bidirectional stepwise algorithm scored by AIC.
#pragma once

#include "model/interference_model.hpp"
#include "model/standardize.hpp"
#include "stats/polynomial.hpp"
#include "stats/stepwise.hpp"

namespace tracon::model {

struct LinearConfig {
  /// Feature subset used (indices into the 8 controlled variables);
  /// empty = all features.
  std::vector<std::size_t> active_features;
};

class LinearModel final : public InterferenceModel {
 public:
  LinearModel(const TrainingSet& data, Response response,
              LinearConfig cfg = {});

  double predict(std::span<const double> features) const override;
  std::string describe() const override;

  /// Number of selected regression terms (including the intercept).
  std::size_t num_terms() const { return selection_.selected.size(); }
  double training_aic() const { return selection_.fit.aic; }

 private:
  LinearConfig cfg_;
  Standardizer standardizer_;
  stats::PolyBasis basis_;
  stats::StepwiseResult selection_;
};

}  // namespace tracon::model
