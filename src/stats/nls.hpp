// Nonlinear least squares: Gauss-Newton with Levenberg-Marquardt
// damping. The paper fits its degree-2 interference model with the
// Gauss-Newton method; this solver handles that case and any other
// differentiable residual model via a numeric Jacobian.
#pragma once

#include <functional>

#include "stats/matrix.hpp"

namespace tracon::stats {

/// Residual model interface: given parameters, produce the residual
/// vector r(p) whose squared norm is minimized.
class ResidualFunction {
 public:
  virtual ~ResidualFunction() = default;
  virtual std::size_t num_residuals() const = 0;
  virtual std::size_t num_params() const = 0;
  /// Writes r(params) into `out` (sized num_residuals()).
  virtual void eval(std::span<const double> params,
                    std::span<double> out) const = 0;
};

/// Adapts a regression problem y ~ f(x; p) with f linear in basis
/// evaluations: residual_i = y_i - dot(design.row(i), p). Gauss-Newton on
/// this converges in one step (it *is* OLS), which doubles as a solver
/// self-check.
class LinearResidual final : public ResidualFunction {
 public:
  LinearResidual(Matrix design, Vector y);
  std::size_t num_residuals() const override { return y_.size(); }
  std::size_t num_params() const override { return design_.cols(); }
  void eval(std::span<const double> params,
            std::span<double> out) const override;

 private:
  Matrix design_;
  Vector y_;
};

/// Wraps an arbitrary callable r(p, out) as a ResidualFunction.
class CallableResidual final : public ResidualFunction {
 public:
  using Fn = std::function<void(std::span<const double>, std::span<double>)>;
  CallableResidual(std::size_t num_residuals, std::size_t num_params, Fn fn);
  std::size_t num_residuals() const override { return m_; }
  std::size_t num_params() const override { return n_; }
  void eval(std::span<const double> params,
            std::span<double> out) const override;

 private:
  std::size_t m_, n_;
  Fn fn_;
};

struct NlsOptions {
  int max_iterations = 100;
  double gradient_tol = 1e-10;  ///< stop when max |J^T r| below this
  double step_tol = 1e-12;      ///< stop when parameter step norm below this
  double initial_lambda = 1e-3; ///< LM damping start
  double jacobian_step = 1e-6;  ///< central-difference step
};

struct NlsResult {
  Vector params;
  double sse = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Minimizes ||r(p)||^2 starting from `initial` using damped
/// Gauss-Newton. Deterministic; never throws on non-convergence (check
/// `converged`), throws std::invalid_argument on shape errors.
NlsResult gauss_newton(const ResidualFunction& fn, Vector initial,
                       const NlsOptions& opts = {});

}  // namespace tracon::stats
