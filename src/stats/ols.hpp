// Ordinary least squares with Gaussian AIC scoring.
//
// The design matrix passed to `ols_fit` already contains whatever basis
// the caller wants (intercept column, polynomial terms, ...). AIC follows
// the Gaussian maximum-likelihood form used by R's step():
//   AIC = n * ln(SSE / n) + 2 * (k + 1)
// where k is the number of fitted coefficients (the +1 accounts for the
// estimated error variance). Additive constants are dropped since only
// AIC differences matter for selection.
#pragma once

#include "stats/matrix.hpp"

namespace tracon::stats {

struct OlsFit {
  Vector coefficients;  ///< one per design-matrix column
  Vector residuals;     ///< y - X beta
  double sse = 0.0;     ///< sum of squared errors
  double aic = 0.0;
  double r_squared = 0.0;
  std::size_t n = 0;  ///< observations
  std::size_t k = 0;  ///< coefficients

  /// Prediction for one expanded input row.
  double predict(std::span<const double> design_row) const;
};

/// Gaussian AIC (up to an additive constant). Guards sse <= 0 by flooring
/// at a tiny positive value so perfect fits rank best without -inf.
double gaussian_aic(double sse, std::size_t n, std::size_t k);

/// Fits min ||y - X beta||^2 via Householder QR.
/// Throws std::invalid_argument if X is rank deficient or shapes mismatch.
OlsFit ols_fit(const Matrix& x, std::span<const double> y);

}  // namespace tracon::stats
