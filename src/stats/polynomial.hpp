// Polynomial feature expansion for the interference models.
//
// The paper's NLM expands the eight controlled variables to every term of
// (1 + sum X_i)^2: intercept, linear terms, squares, and all pairwise
// products (equation 2). PolyBasis enumerates those terms so that the
// stepwise selector can name and prune them individually.
#pragma once

#include <string>
#include <vector>

#include "stats/matrix.hpp"

namespace tracon::stats {

/// One term of the expansion. Encoded by the indices of the base features
/// it multiplies: {} = intercept, {i} = linear, {i,i} = square,
/// {i,j} (i<j) = interaction.
struct PolyTerm {
  int i = -1;  ///< first factor, -1 if none
  int j = -1;  ///< second factor, -1 if none

  bool is_intercept() const { return i < 0; }
  bool is_linear() const { return i >= 0 && j < 0; }
  bool is_quadratic() const { return i >= 0 && j >= 0; }
};

/// An ordered set of polynomial terms over `dim` base features.
class PolyBasis {
 public:
  /// Intercept + linear terms (the paper's LM candidate set).
  static PolyBasis degree1(std::size_t dim);
  /// Full degree-2 expansion (the paper's NLM candidate set):
  /// intercept, d linear, d squares, d(d-1)/2 interactions.
  static PolyBasis degree2(std::size_t dim);

  std::size_t dim() const { return dim_; }
  std::size_t num_terms() const { return terms_.size(); }
  const std::vector<PolyTerm>& terms() const { return terms_; }

  /// Evaluates every term at x (x.size() must equal dim()).
  Vector expand(std::span<const double> x) const;

  /// Expands every row of X into the design matrix (rows x num_terms).
  Matrix expand_rows(const Matrix& x) const;

  /// Human-readable term name, e.g. "1", "x2", "x1*x5", "x3^2".
  std::string term_name(std::size_t t) const;
  /// Same but with caller-supplied base-feature names.
  std::string term_name(std::size_t t,
                        const std::vector<std::string>& feature_names) const;

 private:
  explicit PolyBasis(std::size_t dim) : dim_(dim) {}
  std::size_t dim_;
  std::vector<PolyTerm> terms_;
};

}  // namespace tracon::stats
