#include "stats/nls.hpp"

#include <algorithm>
#include <cmath>

#include "obs/scope_timer.hpp"
#include "stats/linalg.hpp"
#include "util/error.hpp"

namespace tracon::stats {

LinearResidual::LinearResidual(Matrix design, Vector y)
    : design_(std::move(design)), y_(std::move(y)) {
  TRACON_REQUIRE(design_.rows() == y_.size(), "LinearResidual shape mismatch");
}

void LinearResidual::eval(std::span<const double> params,
                          std::span<double> out) const {
  TRACON_REQUIRE(params.size() == design_.cols(), "param size mismatch");
  TRACON_REQUIRE(out.size() == y_.size(), "output size mismatch");
  for (std::size_t i = 0; i < y_.size(); ++i)
    out[i] = y_[i] - dot(design_.row(i), params);
}

CallableResidual::CallableResidual(std::size_t num_residuals,
                                   std::size_t num_params, Fn fn)
    : m_(num_residuals), n_(num_params), fn_(std::move(fn)) {
  TRACON_REQUIRE(fn_ != nullptr, "CallableResidual needs a callable");
}

void CallableResidual::eval(std::span<const double> params,
                            std::span<double> out) const {
  TRACON_REQUIRE(params.size() == n_ && out.size() == m_,
                 "CallableResidual shape mismatch");
  fn_(params, out);
}

namespace {

/// Central-difference Jacobian of r(p): J(i,j) = dr_i/dp_j.
Matrix numeric_jacobian(const ResidualFunction& fn,
                        std::span<const double> params, double h) {
  const std::size_t m = fn.num_residuals();
  const std::size_t n = fn.num_params();
  Matrix jac(m, n);
  Vector p(params.begin(), params.end());
  Vector plus(m), minus(m);
  for (std::size_t j = 0; j < n; ++j) {
    double step = h * std::max(1.0, std::abs(p[j]));
    double saved = p[j];
    p[j] = saved + step;
    fn.eval(p, plus);
    p[j] = saved - step;
    fn.eval(p, minus);
    p[j] = saved;
    for (std::size_t i = 0; i < m; ++i)
      jac(i, j) = (plus[i] - minus[i]) / (2.0 * step);
  }
  return jac;
}

}  // namespace

NlsResult gauss_newton(const ResidualFunction& fn, Vector initial,
                       const NlsOptions& opts) {
  const std::size_t m = fn.num_residuals();
  const std::size_t n = fn.num_params();
  TRACON_REQUIRE(initial.size() == n, "initial params size mismatch");
  TRACON_REQUIRE(m >= n, "need at least as many residuals as params");
  TRACON_PROF_SCOPE("stats.nls.gauss_newton");

  NlsResult res;
  res.params = std::move(initial);

  Vector r(m);
  fn.eval(res.params, r);
  res.sse = dot(r, r);
  TRACON_CHECK_FINITE(res.sse, "NLS initial residual sum of squares");

  double lambda = opts.initial_lambda;

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    res.iterations = iter + 1;
    Matrix jac = numeric_jacobian(fn, res.params, opts.jacobian_step);

    // The Gauss-Newton step solves (J^T J) delta = -J^T r, minimizing
    // the linearized ||r + J delta||^2. Stop when the gradient J^T r is
    // (numerically) zero.
    Vector neg_jtr(n, 0.0);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) neg_jtr[j] -= jac(i, j) * r[i];
    double gmax = 0.0;
    for (double g : neg_jtr) gmax = std::max(gmax, std::abs(g));
    if (gmax < opts.gradient_tol) {
      res.converged = true;
      break;
    }

    Matrix jtj = jac.gram();

    // Levenberg-Marquardt: retry with larger damping until SSE improves.
    bool stepped = false;
    for (int attempt = 0; attempt < 30; ++attempt) {
      Matrix damped = jtj;
      for (std::size_t d = 0; d < n; ++d)
        damped(d, d) += lambda * std::max(jtj(d, d), 1e-12);

      Vector delta;
      try {
        delta = cholesky_solve(damped, neg_jtr);
      } catch (const std::invalid_argument&) {
        lambda *= 10.0;
        continue;
      }

      Vector trial = axpy(res.params, 1.0, delta);
      Vector rt(m);
      fn.eval(trial, rt);
      double trial_sse = dot(rt, rt);
      // A wild trial step may overflow the residual to Inf/NaN; the
      // comparison below rejects it (NaN/Inf <= finite is false) and the
      // damping retry absorbs it, so only accepted SSE values are checked.
      if (trial_sse <= res.sse) {
        TRACON_CHECK_FINITE(trial_sse, "NLS accepted residual sum of squares");
        TRACON_DCHECK(trial_sse >= 0.0, "NLS SSE must be non-negative");
        double step_norm = norm2(delta);
        res.params = std::move(trial);
        r = std::move(rt);
        double improvement = res.sse - trial_sse;
        res.sse = trial_sse;
        lambda = std::max(lambda * 0.3, 1e-12);
        stepped = true;
        if (step_norm < opts.step_tol ||
            improvement < opts.gradient_tol * std::max(1.0, res.sse)) {
          res.converged = true;
        }
        break;
      }
      lambda *= 10.0;
    }

    if (!stepped || res.converged) {
      // Either damping maxed out (flat landscape — accept) or tolerance hit.
      res.converged = true;
      break;
    }
  }
  return res;
}

}  // namespace tracon::stats
