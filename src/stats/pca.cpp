#include "stats/pca.hpp"

#include <algorithm>
#include <cmath>

#include "stats/linalg.hpp"
#include "util/error.hpp"

namespace tracon::stats {

Pca Pca::fit(const Matrix& x, std::size_t k, bool standardize) {
  TRACON_REQUIRE(x.rows() >= 2, "PCA needs at least two observations");
  TRACON_REQUIRE(k >= 1 && k <= x.cols(), "component count out of range");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();

  Pca p;
  p.mean_.assign(d, 0.0);
  p.scale_.assign(d, 1.0);
  for (std::size_t c = 0; c < d; ++c) {
    double m = 0.0;
    for (std::size_t r = 0; r < n; ++r) m += x(r, c);
    m /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      double dv = x(r, c) - m;
      var += dv * dv;
    }
    var /= static_cast<double>(n - 1);
    p.mean_[c] = m;
    p.scale_[c] = standardize && var > 1e-24 ? std::sqrt(var) : 1.0;
  }

  // Covariance of the standardized data (= correlation matrix).
  Matrix z(n, d);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < d; ++c)
      z(r, c) = (x(r, c) - p.mean_[c]) / p.scale_[c];
  Matrix cov = z.gram();
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = 0; j < d; ++j)
      cov(i, j) /= static_cast<double>(n - 1);

  EigenResult eig = jacobi_eigen(cov);

  double total = 0.0;
  for (double v : eig.values) total += std::max(v, 0.0);
  if (total <= 0.0) total = 1.0;

  p.components_ = Matrix(d, k);
  p.explained_.assign(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t r = 0; r < d; ++r) {
      p.components_(r, c) = eig.vectors(r, c);
      TRACON_CHECK_FINITE(p.components_(r, c), "PCA component loading");
    }
    p.explained_[c] = std::max(eig.values[c], 0.0) / total;
    TRACON_DCHECK(p.explained_[c] >= 0.0 && p.explained_[c] <= 1.0 + 1e-12,
                  "explained variance ratio outside [0,1]");
  }
  return p;
}

Vector Pca::project(std::span<const double> x) const {
  TRACON_REQUIRE(x.size() == mean_.size(), "project dimension mismatch");
  const std::size_t d = mean_.size();
  const std::size_t k = components_.cols();
  Vector out(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    double s = 0.0;
    for (std::size_t r = 0; r < d; ++r)
      s += components_(r, c) * (x[r] - mean_[r]) / scale_[r];
    out[c] = s;
  }
  return out;
}

Matrix Pca::project_rows(const Matrix& x) const {
  Matrix out(x.rows(), components_.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    Vector p = project(x.row(r));
    for (std::size_t c = 0; c < p.size(); ++c) out(r, c) = p[c];
  }
  return out;
}

}  // namespace tracon::stats
