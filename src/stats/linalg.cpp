#include "stats/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace tracon::stats {

Matrix cholesky_factor(const Matrix& a) {
  TRACON_REQUIRE(a.rows() == a.cols(), "cholesky requires square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    TRACON_REQUIRE(diag > 0.0, "matrix not positive definite");
    l(j, j) = std::sqrt(diag);
    TRACON_CHECK_FINITE(l(j, j), "cholesky diagonal factor");
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
      TRACON_CHECK_FINITE(l(i, j), "cholesky subdiagonal factor");
    }
  }
  return l;
}

Vector cholesky_solve(const Matrix& a, std::span<const double> b) {
  TRACON_REQUIRE(a.rows() == b.size(), "cholesky rhs size mismatch");
  Matrix l = cholesky_factor(a);
  const std::size_t n = a.rows();
  // Forward substitution: L y = b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  // Back substitution: L^T x = y.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
    TRACON_CHECK_FINITE(x[ii], "cholesky solve component");
  }
  return x;
}

Vector qr_least_squares(const Matrix& a, std::span<const double> b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  TRACON_REQUIRE(m >= n, "least squares needs rows >= cols");
  TRACON_REQUIRE(b.size() == m, "rhs size mismatch");

  // Working copies; R overwrites `r`, b transforms in place.
  Matrix r = a;
  Vector rhs(b.begin(), b.end());
  Vector v(m);

  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k below the diagonal.
    double alpha = 0.0;
    for (std::size_t i = k; i < m; ++i) alpha += r(i, k) * r(i, k);
    alpha = std::sqrt(alpha);
    if (alpha == 0.0) {
      throw std::invalid_argument(
          "qr_least_squares: rank-deficient design matrix");
    }
    if (r(k, k) > 0) alpha = -alpha;
    double vnorm2 = 0.0;
    for (std::size_t i = k; i < m; ++i) {
      v[i] = r(i, k);
      if (i == k) v[i] -= alpha;
      vnorm2 += v[i] * v[i];
    }
    if (vnorm2 == 0.0) continue;  // column already triangular

    // Apply H = I - 2 v v^T / (v^T v) to remaining columns and rhs.
    for (std::size_t j = k; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) s += v[i] * r(i, j);
      s = 2.0 * s / vnorm2;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= s * v[i];
    }
    double s = 0.0;
    for (std::size_t i = k; i < m; ++i) s += v[i] * rhs[i];
    s = 2.0 * s / vnorm2;
    for (std::size_t i = k; i < m; ++i) rhs[i] -= s * v[i];
  }

  // Back substitution on the top n x n triangle.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = rhs[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= r(ii, j) * x[j];
    double d = r(ii, ii);
    TRACON_REQUIRE(std::abs(d) > 1e-13, "singular R in QR back substitution");
    x[ii] = s / d;
    TRACON_CHECK_FINITE(x[ii], "QR least-squares coefficient");
  }
  return x;
}

EigenResult jacobi_eigen(const Matrix& a, double tol, int max_sweeps) {
  TRACON_REQUIRE(a.rows() == a.cols(), "eigen requires square matrix");
  const std::size_t n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::identity(n);

  auto off_diag_norm = [&]() {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) s += d(i, j) * d(i, j);
    return std::sqrt(s);
  };

  for (int sweep = 0; sweep < max_sweeps && off_diag_norm() > tol; ++sweep) {
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(d(p, q)) <= tol * 1e-3) continue;
        double theta = (d(q, q) - d(p, p)) / (2.0 * d(p, q));
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          double dkp = d(k, p), dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          double dpk = d(p, k), dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return d(i, i) > d(j, j); });

  EigenResult res;
  res.values.resize(n);
  res.vectors = Matrix(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    res.values[c] = d(order[c], order[c]);
    TRACON_CHECK_FINITE(res.values[c], "jacobi eigenvalue");
    for (std::size_t r = 0; r < n; ++r) res.vectors(r, c) = v(r, order[c]);
  }
  return res;
}

}  // namespace tracon::stats
