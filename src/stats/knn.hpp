// Inverse-distance weighted k-nearest-neighbour regression — the second
// half of the paper's weighted-mean method: after projecting to PCA
// space, the three nearest profiled points predict the response with
// weights 1/distance.
#pragma once

#include "stats/matrix.hpp"

namespace tracon::stats {

class KnnRegressor {
 public:
  /// Stores the training set. `points` rows are feature vectors (already
  /// in whatever space the caller wants, e.g. PCA-projected), `y` the
  /// responses. k is clamped to the training-set size.
  KnnRegressor(Matrix points, Vector y, std::size_t k = 3);

  std::size_t size() const { return y_.size(); }
  std::size_t k() const { return k_; }

  /// Inverse-distance weighted mean of the k nearest responses. An exact
  /// match (distance 0) returns that training response directly.
  double predict(std::span<const double> x) const;

 private:
  Matrix points_;
  Vector y_;
  std::size_t k_;
};

}  // namespace tracon::stats
