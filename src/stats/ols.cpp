#include "stats/ols.hpp"

#include <algorithm>
#include <cmath>

#include "stats/linalg.hpp"
#include "util/error.hpp"
#include "util/summary.hpp"

namespace tracon::stats {

double OlsFit::predict(std::span<const double> design_row) const {
  return dot(design_row, coefficients);
}

double gaussian_aic(double sse, std::size_t n, std::size_t k) {
  TRACON_REQUIRE(n > 0, "AIC needs at least one observation");
  double floor_sse = 1e-12 * static_cast<double>(n);
  double safe_sse = std::max(sse, floor_sse);
  return static_cast<double>(n) * std::log(safe_sse / static_cast<double>(n)) +
         2.0 * static_cast<double>(k + 1);
}

OlsFit ols_fit(const Matrix& x, std::span<const double> y) {
  TRACON_REQUIRE(x.rows() == y.size(), "ols shape mismatch");
  TRACON_REQUIRE(x.rows() >= x.cols(), "ols needs rows >= cols");
  TRACON_REQUIRE(x.cols() > 0, "ols needs at least one column");

  OlsFit fit;
  fit.coefficients = qr_least_squares(x, y);
  fit.n = x.rows();
  fit.k = x.cols();

  Vector yhat = x.multiply(fit.coefficients);
  fit.residuals = subtract(y, yhat);
  fit.sse = dot(fit.residuals, fit.residuals);
  TRACON_CHECK_FINITE(fit.sse, "OLS residual sum of squares");
  TRACON_DCHECK(fit.sse >= 0.0, "OLS SSE must be non-negative");
  fit.aic = gaussian_aic(fit.sse, fit.n, fit.k);
  TRACON_CHECK_FINITE(fit.aic, "OLS AIC");

  // R^2 against the mean-only model.
  OnlineStats acc;
  for (double v : y) acc.add(v);
  double tss = 0.0;
  for (double v : y) {
    double d = v - acc.mean();
    tss += d * d;
  }
  fit.r_squared = tss > 0.0 ? 1.0 - fit.sse / tss : 1.0;
  return fit;
}

}  // namespace tracon::stats
