// Dense row-major matrix of doubles, sized for regression problems
// (hundreds of rows, tens of columns). Hand-rolled on purpose: TRACON's
// reproduction mandate is to build the statistical plumbing itself.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace tracon::stats {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);
  /// Build from nested initializer list; all rows must have equal width.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  /// Stacks row vectors (each of equal length) into a matrix.
  static Matrix from_rows(const std::vector<Vector>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  Matrix transposed() const;
  /// Returns this * other; dimensions must agree.
  Matrix multiply(const Matrix& other) const;
  /// Returns this * v; v.size() must equal cols().
  Vector multiply(std::span<const double> v) const;
  /// Returns transpose(this) * this — the (cols x cols) Gram matrix.
  Matrix gram() const;

  /// Selects a subset of columns (in the given order) into a new matrix.
  Matrix select_columns(std::span<const std::size_t> idx) const;

  /// Max absolute element difference to `other` (same shape required).
  double max_abs_diff(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- Vector helpers --------------------------------------------------

double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);
/// a - b elementwise.
Vector subtract(std::span<const double> a, std::span<const double> b);
/// a + s*b elementwise.
Vector axpy(std::span<const double> a, double s, std::span<const double> b);
/// Squared Euclidean distance.
double squared_distance(std::span<const double> a, std::span<const double> b);

}  // namespace tracon::stats
