#include "stats/knn.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace tracon::stats {

KnnRegressor::KnnRegressor(Matrix points, Vector y, std::size_t k)
    : points_(std::move(points)), y_(std::move(y)), k_(k) {
  TRACON_REQUIRE(points_.rows() == y_.size(), "knn shape mismatch");
  TRACON_REQUIRE(!y_.empty(), "knn needs training data");
  TRACON_REQUIRE(k_ >= 1, "knn needs k >= 1");
  k_ = std::min(k_, y_.size());
}

double KnnRegressor::predict(std::span<const double> x) const {
  TRACON_REQUIRE(x.size() == points_.cols(), "knn query dimension mismatch");

  // Partial selection of the k smallest distances.
  std::vector<std::pair<double, std::size_t>> dist;
  dist.reserve(y_.size());
  for (std::size_t i = 0; i < y_.size(); ++i)
    dist.emplace_back(squared_distance(points_.row(i), x), i);
  std::nth_element(dist.begin(), dist.begin() + static_cast<long>(k_ - 1),
                   dist.end());

  double wsum = 0.0, ysum = 0.0;
  for (std::size_t j = 0; j < k_; ++j) {
    double d = std::sqrt(dist[j].first);
    if (d < 1e-12) return y_[dist[j].second];  // exact profile hit
    double w = 1.0 / d;
    wsum += w;
    ysum += w * y_[dist[j].second];
  }
  return ysum / wsum;
}

}  // namespace tracon::stats
