// Principal component analysis on standardized features, used by the
// paper's weighted-mean method (WMM): observations are projected onto the
// first k principal components before nearest-neighbour matching.
#pragma once

#include "stats/matrix.hpp"

namespace tracon::stats {

class Pca {
 public:
  /// Fits a PCA with `k` components on the rows of `x` (observations x
  /// features). With `standardize` (default) features are z-scored
  /// first; constant features get unit scale so they project to zero.
  /// Without it the PCA runs on the raw covariance — large-scale
  /// features (request rates) then dominate the components, as in the
  /// classic weighted-mean method of Koh et al. that the paper uses as
  /// its baseline.
  static Pca fit(const Matrix& x, std::size_t k, bool standardize = true);

  std::size_t input_dim() const { return mean_.size(); }
  std::size_t num_components() const { return components_.cols(); }

  /// Fraction of total variance captured by each retained component.
  const Vector& explained_variance_ratio() const { return explained_; }

  /// Projects a raw feature vector to component space.
  Vector project(std::span<const double> x) const;

  /// Projects every row of `x`.
  Matrix project_rows(const Matrix& x) const;

 private:
  Vector mean_;
  Vector scale_;
  Matrix components_;  ///< features x k, orthonormal columns
  Vector explained_;
};

}  // namespace tracon::stats
