#include "stats/stepwise.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "obs/scope_timer.hpp"
#include "util/error.hpp"

namespace tracon::stats {

namespace {

/// Fits OLS on a column subset; nullopt when the subset is rank
/// deficient or over-parameterized for the sample size.
std::optional<OlsFit> try_fit(const Matrix& candidates,
                              std::span<const double> y,
                              const std::vector<std::size_t>& cols) {
  if (cols.empty() || cols.size() >= candidates.rows()) return std::nullopt;
  try {
    Matrix x = candidates.select_columns(cols);
    return ols_fit(x, y);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

}  // namespace

double StepwiseResult::predict(std::span<const double> candidate_row) const {
  TRACON_REQUIRE(!selected.empty(), "predict on empty stepwise model");
  double s = 0.0;
  for (std::size_t t = 0; t < selected.size(); ++t) {
    TRACON_REQUIRE(selected[t] < candidate_row.size(),
                   "candidate row narrower than selection");
    s += fit.coefficients[t] * candidate_row[selected[t]];
  }
  return s;
}

StepwiseResult stepwise_aic(const Matrix& candidates,
                            std::span<const double> y,
                            const StepwiseOptions& opts) {
  TRACON_REQUIRE(candidates.rows() == y.size(), "stepwise shape mismatch");
  TRACON_REQUIRE(!opts.forced.empty(), "stepwise needs forced columns");
  for (std::size_t f : opts.forced)
    TRACON_REQUIRE(f < candidates.cols(), "forced column out of range");
  TRACON_PROF_SCOPE("stats.stepwise.aic");

  std::vector<std::size_t> current(opts.forced);
  std::sort(current.begin(), current.end());
  current.erase(std::unique(current.begin(), current.end()), current.end());

  auto base = try_fit(candidates, y, current);
  TRACON_REQUIRE(base.has_value(), "forced columns are rank deficient");

  StepwiseResult res;
  res.selected = current;
  res.fit = *base;

  auto is_selected = [&](std::size_t c) {
    return std::binary_search(res.selected.begin(), res.selected.end(), c);
  };
  auto is_forced = [&](std::size_t c) {
    return std::find(opts.forced.begin(), opts.forced.end(), c) !=
           opts.forced.end();
  };

  for (int step = 0; step < opts.max_steps; ++step) {
    double best_aic = res.fit.aic - opts.min_improvement;
    std::optional<std::vector<std::size_t>> best_cols;
    std::optional<OlsFit> best_fit;

    // Try adding each unselected column.
    for (std::size_t c = 0; c < candidates.cols(); ++c) {
      if (is_selected(c)) continue;
      std::vector<std::size_t> trial = res.selected;
      trial.insert(std::upper_bound(trial.begin(), trial.end(), c), c);
      if (auto f = try_fit(candidates, y, trial); f && f->aic < best_aic) {
        best_aic = f->aic;
        best_cols = std::move(trial);
        best_fit = std::move(f);
      }
    }
    // Try removing each non-forced selected column.
    for (std::size_t c : res.selected) {
      if (is_forced(c)) continue;
      std::vector<std::size_t> trial;
      trial.reserve(res.selected.size() - 1);
      for (std::size_t s : res.selected)
        if (s != c) trial.push_back(s);
      if (auto f = try_fit(candidates, y, trial); f && f->aic < best_aic) {
        best_aic = f->aic;
        best_cols = std::move(trial);
        best_fit = std::move(f);
      }
    }

    if (!best_cols) break;  // no move improves AIC
    res.selected = std::move(*best_cols);
    res.fit = std::move(*best_fit);
    res.steps_taken = step + 1;
  }
  return res;
}

}  // namespace tracon::stats
