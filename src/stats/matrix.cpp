#include "stats/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace tracon::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
  TRACON_REQUIRE(cols == 0 ||
                     rows <= std::numeric_limits<std::size_t>::max() / cols,
                 "matrix dimensions overflow");
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ > 0 ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    TRACON_REQUIRE(r.size() == cols_, "ragged initializer for Matrix");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_rows(const std::vector<Vector>& rows) {
  if (rows.empty()) return {};
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    TRACON_REQUIRE(rows[r].size() == m.cols_, "ragged rows in from_rows");
    std::copy(rows[r].begin(), rows[r].end(), m.data_.begin() + r * m.cols_);
  }
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  TRACON_REQUIRE(cols_ == other.rows_, "matrix multiply shape mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

Vector Matrix::multiply(std::span<const double> v) const {
  TRACON_REQUIRE(v.size() == cols_, "matrix-vector shape mismatch");
  Vector out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = dot(row(i), v);
  return out;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = i; j < cols_; ++j) {
      double s = 0.0;
      for (std::size_t r = 0; r < rows_; ++r)
        s += (*this)(r, i) * (*this)(r, j);
      g(i, j) = s;
      g(j, i) = s;
    }
  }
  return g;
}

Matrix Matrix::select_columns(std::span<const std::size_t> idx) const {
  Matrix out(rows_, idx.size());
  for (std::size_t c = 0; c < idx.size(); ++c) {
    TRACON_REQUIRE(idx[c] < cols_, "column index out of range");
    for (std::size_t r = 0; r < rows_; ++r) out(r, c) = (*this)(r, idx[c]);
  }
  return out;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  TRACON_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                 "shape mismatch in max_abs_diff");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  return m;
}

double dot(std::span<const double> a, std::span<const double> b) {
  TRACON_REQUIRE(a.size() == b.size(), "dot length mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

Vector subtract(std::span<const double> a, std::span<const double> b) {
  TRACON_REQUIRE(a.size() == b.size(), "subtract length mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector axpy(std::span<const double> a, double s, std::span<const double> b) {
  TRACON_REQUIRE(a.size() == b.size(), "axpy length mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  TRACON_REQUIRE(a.size() == b.size(), "distance length mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace tracon::stats
