#include "stats/polynomial.hpp"

#include "util/error.hpp"

namespace tracon::stats {

PolyBasis PolyBasis::degree1(std::size_t dim) {
  TRACON_REQUIRE(dim > 0, "basis needs at least one feature");
  PolyBasis b(dim);
  b.terms_.push_back({});  // intercept
  for (std::size_t i = 0; i < dim; ++i)
    b.terms_.push_back({static_cast<int>(i), -1});
  return b;
}

PolyBasis PolyBasis::degree2(std::size_t dim) {
  PolyBasis b = degree1(dim);
  for (std::size_t i = 0; i < dim; ++i)
    b.terms_.push_back({static_cast<int>(i), static_cast<int>(i)});
  for (std::size_t i = 0; i < dim; ++i)
    for (std::size_t j = i + 1; j < dim; ++j)
      b.terms_.push_back({static_cast<int>(i), static_cast<int>(j)});
  return b;
}

Vector PolyBasis::expand(std::span<const double> x) const {
  TRACON_REQUIRE(x.size() == dim_, "expand input dimension mismatch");
  Vector out;
  out.reserve(terms_.size());
  for (const PolyTerm& t : terms_) {
    if (t.is_intercept()) {
      out.push_back(1.0);
    } else if (t.is_linear()) {
      out.push_back(x[static_cast<std::size_t>(t.i)]);
    } else {
      out.push_back(x[static_cast<std::size_t>(t.i)] *
                    x[static_cast<std::size_t>(t.j)]);
    }
  }
  return out;
}

Matrix PolyBasis::expand_rows(const Matrix& x) const {
  Matrix out(x.rows(), num_terms());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    Vector row = expand(x.row(r));
    for (std::size_t c = 0; c < row.size(); ++c) out(r, c) = row[c];
  }
  return out;
}

std::string PolyBasis::term_name(std::size_t t) const {
  std::vector<std::string> names;
  names.reserve(dim_);
  for (std::size_t i = 0; i < dim_; ++i)
    names.push_back("x" + std::to_string(i + 1));
  return term_name(t, names);
}

std::string PolyBasis::term_name(
    std::size_t t, const std::vector<std::string>& feature_names) const {
  TRACON_REQUIRE(t < terms_.size(), "term index out of range");
  TRACON_REQUIRE(feature_names.size() == dim_, "feature name count mismatch");
  const PolyTerm& term = terms_[t];
  if (term.is_intercept()) return "1";
  if (term.is_linear()) return feature_names[static_cast<std::size_t>(term.i)];
  if (term.i == term.j)
    return feature_names[static_cast<std::size_t>(term.i)] + "^2";
  return feature_names[static_cast<std::size_t>(term.i)] + "*" +
         feature_names[static_cast<std::size_t>(term.j)];
}

}  // namespace tracon::stats
