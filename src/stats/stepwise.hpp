// Bidirectional stepwise model selection scored by AIC, in the style of
// Draper & Smith and R's step(): starting from an intercept-only model,
// repeatedly apply the single column addition or removal that most
// improves (lowers) AIC, until no move helps.
#pragma once

#include <vector>

#include "stats/matrix.hpp"
#include "stats/ols.hpp"

namespace tracon::stats {

struct StepwiseOptions {
  /// Column indices that are always kept (typically {0}, the intercept).
  std::vector<std::size_t> forced = {0};
  /// Safety bound on add/remove steps.
  int max_steps = 200;
  /// Minimum AIC improvement to accept a move (guards float noise).
  double min_improvement = 1e-9;
};

struct StepwiseResult {
  /// Selected candidate-matrix column indices, ascending; includes forced.
  std::vector<std::size_t> selected;
  /// OLS fit over the selected columns (in `selected` order).
  OlsFit fit;
  int steps_taken = 0;

  /// Expands a full candidate row down to the selected columns and
  /// predicts. `candidate_row` must have the original candidate width.
  double predict(std::span<const double> candidate_row) const;
};

/// Runs bidirectional stepwise selection. `candidates` holds every
/// candidate regressor as a column (including an intercept column of
/// ones, conventionally column 0). Candidate columns whose inclusion
/// makes the design rank deficient are treated as unavailable moves.
StepwiseResult stepwise_aic(const Matrix& candidates,
                            std::span<const double> y,
                            const StepwiseOptions& opts = {});

}  // namespace tracon::stats
