// Direct solvers used by the regression stack:
//   - Cholesky factorization (SPD systems, normal equations)
//   - Householder QR least squares (numerically safer OLS path)
//   - Jacobi eigensolver for symmetric matrices (PCA)
#pragma once

#include "stats/matrix.hpp"

namespace tracon::stats {

/// Solves A x = b for symmetric positive-definite A via Cholesky.
/// Throws std::invalid_argument if A is not SPD (within tolerance).
Vector cholesky_solve(const Matrix& a, std::span<const double> b);

/// In-place Cholesky: returns lower-triangular L with A = L L^T.
Matrix cholesky_factor(const Matrix& a);

/// Least-squares solution of min ||A x - b||_2 via Householder QR with
/// column pivoting disabled (regression design matrices here are
/// well-conditioned after standardization). Requires rows >= cols.
Vector qr_least_squares(const Matrix& a, std::span<const double> b);

/// Result of a symmetric eigendecomposition.
struct EigenResult {
  Vector values;   ///< eigenvalues, descending
  Matrix vectors;  ///< column i is the eigenvector for values[i]
};

/// Cyclic Jacobi eigensolver for a symmetric matrix.
EigenResult jacobi_eigen(const Matrix& a, double tol = 1e-12,
                         int max_sweeps = 100);

}  // namespace tracon::stats
