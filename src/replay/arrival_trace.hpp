// Canonical JSONL arrival-trace format: the record half of the
// record/replay loop.
//
// A trace file is one schema-versioned header line followed by one
// record per arrival:
//
//   {"schema": "tracon.arrival_trace", "version": 1, "seed": 7, ...}
//   {"time_s": 0.31, "app": 4, "demand_s": 412.8}
//   ...
//
// The header carries everything needed to reconstruct the run that
// produced the stream (seed, host, model, machine count, queue bound,
// workload mix, horizon), so `tracon replay` can rebuild an identical
// simulation and vary only the scheduler. `demand_s` is the task's
// solo service demand — informational for offline analysis; replay
// derives demand from the app class via the perf table and
// validate_demands() cross-checks the two.
//
// Writing is deterministic (insertion-ordered fields, shortest
// round-trip doubles): loading a trace and re-writing it reproduces the
// file byte-for-byte, and a parsed time is bit-identical to the one the
// recorder observed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/arrival_source.hpp"

namespace tracon::replay {

inline constexpr std::string_view kArrivalTraceSchema =
    "tracon.arrival_trace";

/// Trace provenance: the configuration of the run that recorded it.
struct ArrivalTraceHeader {
  int version = 1;  ///< obs::kJsonlSchemaVersion at write time
  std::uint64_t seed = 0;
  std::string host;   ///< host testbed name ("paper", "ssd", ...)
  std::string model;  ///< model kind trained when recording ("nlm", ...)
  std::string mix;    ///< workload mix name ("medium", ...)
  double lambda_per_min = 0.0;
  double duration_s = 0.0;
  std::size_t machines = 0;
  std::size_t queue_capacity = 0;
  std::size_t num_apps = 0;
};

/// One recorded arrival; `demand_s` is the solo service demand of the
/// app class at record time.
struct TraceArrival {
  double time_s = 0.0;
  std::size_t app = 0;
  double demand_s = 0.0;
};

struct ArrivalTrace {
  ArrivalTraceHeader header;
  std::vector<TraceArrival> arrivals;
};

/// Streams a trace out incrementally: the header line is written on
/// construction, then one record per write(). Used by
/// RecordingArrivalSource to capture a live run's arrivals.
class TraceWriter {
 public:
  TraceWriter(std::ostream& os, const ArrivalTraceHeader& header);

  void write(const TraceArrival& arrival);
  std::size_t written() const { return written_; }

 private:
  std::ostream& os_;
  std::size_t written_ = 0;
};

/// Whole-trace convenience over TraceWriter.
void write_arrival_trace(std::ostream& os, const ArrivalTrace& trace);

/// Parses a trace written by TraceWriter/write_arrival_trace. Throws
/// std::invalid_argument on schema mismatch, malformed lines, missing
/// fields, unsorted times, or out-of-range app indices.
ArrivalTrace load_arrival_trace(std::istream& is);

/// Replays a loaded trace through run_dynamic: returns the recorded
/// arrival stream byte-for-byte, deterministically, under any
/// scheduler. The trace's app universe must fit the simulation's
/// (header.num_apps <= num_apps at generation time).
class TraceArrivalSource final : public sim::ArrivalSource {
 public:
  explicit TraceArrivalSource(ArrivalTrace trace);

  std::vector<sim::Arrival> arrivals(std::size_t num_apps) override;
  std::string name() const override { return "trace"; }

  const ArrivalTraceHeader& header() const { return trace_.header; }
  const ArrivalTrace& trace() const { return trace_; }

  /// True when every recorded demand_s matches `solo_demands[app]`
  /// within `rel_tol` — i.e. the replaying perf table is consistent
  /// with the one the trace was recorded against.
  bool validate_demands(const std::vector<double>& solo_demands,
                        double rel_tol = 1e-9) const;

 private:
  ArrivalTrace trace_;
};

/// Tees the arrivals produced by `inner` into `writer`, stamping each
/// record with its app's solo service demand. Single-shot: arrivals()
/// may be called once (a second call would duplicate the trace file).
class RecordingArrivalSource final : public sim::ArrivalSource {
 public:
  /// `solo_demands[app]` = solo runtime of app class `app` (seconds),
  /// e.g. PerfTable::solo_runtime for each app.
  RecordingArrivalSource(sim::ArrivalSource& inner, TraceWriter& writer,
                         std::vector<double> solo_demands);

  std::vector<sim::Arrival> arrivals(std::size_t num_apps) override;
  std::string name() const override { return inner_.name(); }

 private:
  sim::ArrivalSource& inner_;
  TraceWriter& writer_;
  std::vector<double> solo_demands_;
  bool consumed_ = false;
};

}  // namespace tracon::replay
