#include "replay/arrival_trace.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "obs/json.hpp"
#include "obs/jsonl.hpp"
#include "util/error.hpp"

namespace tracon::replay {

namespace {

double req_number(const obs::JsonValue& obj, const std::string& key,
                  std::size_t line_no) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    throw std::invalid_argument("arrival trace line " +
                                std::to_string(line_no) +
                                ": missing numeric field \"" + key + "\"");
  }
  return v->as_number();
}

std::string req_string(const obs::JsonValue& obj, const std::string& key,
                       std::size_t line_no) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_string()) {
    throw std::invalid_argument("arrival trace line " +
                                std::to_string(line_no) +
                                ": missing string field \"" + key + "\"");
  }
  return v->as_string();
}

void validate_header(const ArrivalTraceHeader& h) {
  TRACON_REQUIRE(h.num_apps > 0, "arrival trace needs at least one app class");
  TRACON_REQUIRE(h.machines > 0, "arrival trace machine count must be > 0");
  TRACON_REQUIRE(h.duration_s > 0.0, "arrival trace duration must be > 0");
}

}  // namespace

TraceWriter::TraceWriter(std::ostream& os, const ArrivalTraceHeader& header)
    : os_(os) {
  validate_header(header);
  TRACON_REQUIRE(os.good(), "arrival trace stream is not writable");
  os_ << obs::JsonLineWriter()
             .field("schema", kArrivalTraceSchema)
             .field("version", header.version)
             .field("seed", header.seed)
             .field("host", header.host)
             .field("model", header.model)
             .field("mix", header.mix)
             .field("lambda_per_min", header.lambda_per_min)
             .field("duration_s", header.duration_s)
             .field("machines", header.machines)
             .field("queue_capacity", header.queue_capacity)
             .field("num_apps", header.num_apps)
             .str()
      << '\n';
}

void TraceWriter::write(const TraceArrival& arrival) {
  os_ << obs::JsonLineWriter()
             .field("time_s", arrival.time_s)
             .field("app", arrival.app)
             .field("demand_s", arrival.demand_s)
             .str()
      << '\n';
  ++written_;
}

void write_arrival_trace(std::ostream& os, const ArrivalTrace& trace) {
  TraceWriter writer(os, trace.header);
  for (const TraceArrival& a : trace.arrivals) writer.write(a);
}

ArrivalTrace load_arrival_trace(std::istream& is) {
  ArrivalTrace trace;
  std::string line;
  std::size_t line_no = 0;
  bool have_header = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    obs::JsonValue obj = obs::parse_json(line);
    if (!have_header) {
      trace.header.version = obs::require_schema(obj, kArrivalTraceSchema);
      trace.header.seed =
          static_cast<std::uint64_t>(req_number(obj, "seed", line_no));
      trace.header.host = req_string(obj, "host", line_no);
      trace.header.model = req_string(obj, "model", line_no);
      trace.header.mix = req_string(obj, "mix", line_no);
      trace.header.lambda_per_min = req_number(obj, "lambda_per_min", line_no);
      trace.header.duration_s = req_number(obj, "duration_s", line_no);
      trace.header.machines =
          static_cast<std::size_t>(req_number(obj, "machines", line_no));
      trace.header.queue_capacity =
          static_cast<std::size_t>(req_number(obj, "queue_capacity", line_no));
      trace.header.num_apps =
          static_cast<std::size_t>(req_number(obj, "num_apps", line_no));
      validate_header(trace.header);
      have_header = true;
      continue;
    }
    TraceArrival a;
    a.time_s = req_number(obj, "time_s", line_no);
    a.app = static_cast<std::size_t>(req_number(obj, "app", line_no));
    a.demand_s = req_number(obj, "demand_s", line_no);
    if (a.app >= trace.header.num_apps) {
      throw std::invalid_argument(
          "arrival trace line " + std::to_string(line_no) +
          ": app index out of range for the header's num_apps");
    }
    if (!trace.arrivals.empty() && a.time_s < trace.arrivals.back().time_s) {
      throw std::invalid_argument("arrival trace line " +
                                  std::to_string(line_no) +
                                  ": arrivals not sorted by time");
    }
    trace.arrivals.push_back(a);
  }
  if (!have_header) {
    throw std::invalid_argument("arrival trace has no header line");
  }
  return trace;
}

TraceArrivalSource::TraceArrivalSource(ArrivalTrace trace)
    : trace_(std::move(trace)) {
  validate_header(trace_.header);
  for (std::size_t i = 1; i < trace_.arrivals.size(); ++i) {
    TRACON_REQUIRE(trace_.arrivals[i - 1].time_s <= trace_.arrivals[i].time_s,
                   "trace arrivals must be sorted by time");
  }
}

std::vector<sim::Arrival> TraceArrivalSource::arrivals(std::size_t num_apps) {
  TRACON_REQUIRE(trace_.header.num_apps <= num_apps,
                 "trace records more app classes than the simulation has");
  std::vector<sim::Arrival> out;
  out.reserve(trace_.arrivals.size());
  for (const TraceArrival& a : trace_.arrivals) out.push_back({a.time_s, a.app});
  return out;
}

bool TraceArrivalSource::validate_demands(
    const std::vector<double>& solo_demands, double rel_tol) const {
  for (const TraceArrival& a : trace_.arrivals) {
    if (a.app >= solo_demands.size()) return false;
    double expected = solo_demands[a.app];
    double scale = std::max(std::abs(expected), 1e-12);
    if (std::abs(a.demand_s - expected) > rel_tol * scale) return false;
  }
  return true;
}

RecordingArrivalSource::RecordingArrivalSource(sim::ArrivalSource& inner,
                                               TraceWriter& writer,
                                               std::vector<double> solo_demands)
    : inner_(inner), writer_(writer), solo_demands_(std::move(solo_demands)) {
  TRACON_REQUIRE(!solo_demands_.empty(),
                 "recording needs per-app solo service demands");
}

std::vector<sim::Arrival> RecordingArrivalSource::arrivals(
    std::size_t num_apps) {
  TRACON_REQUIRE(!consumed_,
                 "RecordingArrivalSource is single-shot: a second arrivals() "
                 "call would duplicate the trace records");
  consumed_ = true;
  std::vector<sim::Arrival> out = inner_.arrivals(num_apps);
  for (const sim::Arrival& a : out) {
    TRACON_REQUIRE(a.app < solo_demands_.size(),
                   "arrival app has no recorded solo demand");
    writer_.write({a.time_s, a.app, solo_demands_[a.app]});
  }
  return out;
}

}  // namespace tracon::replay
