#include "virt/host_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/scope_timer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tracon::virt {

namespace {

constexpr double kEps = 1e-9;
constexpr double kMinDt = 1e-6;

/// Mutable per-VM simulation state.
struct VmState {
  const AppBehavior* app = nullptr;
  bool recurring = false;
  bool completed = false;     // measured app finished
  double progress = 0.0;      // fraction of solo work done (current run)
  double start_time = 0.0;    // start of the current run (burst phase ref)
  // Integrals over the measured window [start, completion or now].
  double int_cpu = 0.0;
  double int_dom0 = 0.0;
  double int_reads = 0.0;
  double int_writes = 0.0;
  double measured_until = 0.0;
  // Integrals over the current monitor period.
  double tick_cpu = 0.0;
  double tick_dom0 = 0.0;
  double tick_reads = 0.0;
  double tick_writes = 0.0;

  bool active() const { return app != nullptr && !completed; }

  /// I/O demand multiplier for the burst phase at absolute time t.
  double burst_multiplier(double t) const {
    if (app->burstiness <= 0.0) return 1.0;
    double half = app->burst_period_s / 2.0;
    auto phase = static_cast<long long>(std::floor((t - start_time) / half));
    bool on = (phase % 2) == 0;
    return on ? 1.0 + app->burstiness : 1.0 - app->burstiness;
  }

  /// Time until the next burst-phase boundary after absolute time t.
  double time_to_phase_boundary(double t) const {
    if (app->burstiness <= 0.0) return std::numeric_limits<double>::infinity();
    double half = app->burst_period_s / 2.0;
    double local = t - start_time;
    double next = (std::floor(local / half) + 1.0) * half;
    return std::max(next - local, kMinDt);
  }
};

}  // namespace

RunResult HostSimulator::run(const std::vector<std::optional<VmWorkload>>& vms,
                             const RunOptions& opts) const {
  TRACON_REQUIRE(!vms.empty(), "run needs at least one VM slot");
  TRACON_REQUIRE(opts.max_time_s > 0.0, "max_time_s must be positive");
  TRACON_PROF_SCOPE("virt.host_sim.run");

  const std::size_t n = vms.size();
  std::vector<VmState> state(n);
  std::size_t measured_pending = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (!vms[v].has_value()) continue;
    TRACON_REQUIRE(vms[v]->app.solo_runtime_s > 0.0,
                   "app solo runtime must be positive");
    TRACON_REQUIRE(vms[v]->app.cpu_util >= 0.0 &&
                       (vms[v]->app.cpu_util > 0.0 || vms[v]->app.does_io()),
                   "app must demand some resource");
    state[v].app = &vms[v]->app;
    state[v].recurring = vms[v]->recurring;
    if (!vms[v]->recurring) ++measured_pending;
  }

  Rng noise(opts.noise_seed);
  RunResult result;
  result.vms.resize(n);

  double now = 0.0;
  double next_tick = cfg_.monitor_period_s;

  while (now < opts.max_time_s - kEps) {
    // Assemble instantaneous demands for active VMs.
    std::vector<VmDemand> demands;
    std::vector<std::size_t> demand_vm;  // demand index -> VM index
    demands.reserve(n);
    for (std::size_t v = 0; v < n; ++v) {
      if (!state[v].active()) continue;
      const AppBehavior& app = *state[v].app;
      double burst = state[v].burst_multiplier(now);
      VmDemand d;
      d.cpu = app.cpu_util;
      d.read_iops = app.read_iops * burst;
      d.write_iops = app.write_iops * burst;
      d.request_kb = app.request_kb;
      d.sequentiality = app.sequentiality;
      demands.push_back(d);
      demand_vm.push_back(v);
    }
    if (demands.empty()) break;  // nothing left to simulate

    HostAllocation alloc = solve_speeds(cfg_, demands);
    if constexpr (kParanoidChecksEnabled) {
      // Credit conservation at every scheduler decision: guest CPU plus
      // Dom0 I/O handling fits in the host's cores, and the disk is
      // never more than 100% busy.
      double cpu_sum = 0.0;
      for (const VmAllocation& a : alloc.vms) cpu_sum += a.cpu_used;
      TRACON_DCHECK(cpu_sum + alloc.dom0_cpu_total <=
                        static_cast<double>(cfg_.num_cores) + 1e-6,
                    "CPU credits exceed host cores at a scheduling step");
      TRACON_DCHECK(alloc.disk_utilization >= 0.0 &&
                        alloc.disk_utilization <= 1.0,
                    "disk utilization outside [0,1]");
    }

    // Horizon: completion, burst boundary, monitor tick, or max time.
    double dt = opts.max_time_s - now;
    dt = std::min(dt, std::max(next_tick - now, kMinDt));
    for (std::size_t i = 0; i < demands.size(); ++i) {
      const VmState& s = state[demand_vm[i]];
      const AppBehavior& app = *s.app;
      double speed = alloc.vms[i].speed;
      if (speed > kEps) {
        double remain = (1.0 - s.progress) * app.solo_runtime_s / speed;
        dt = std::min(dt, std::max(remain, kMinDt));
      }
      dt = std::min(dt, s.time_to_phase_boundary(now));
    }
    dt = std::max(dt, kMinDt);

    TRACON_DCHECK(dt >= kMinDt, "simulation step collapsed below kMinDt");

    // Advance all active VMs by dt at the solved speeds.
    for (std::size_t i = 0; i < demands.size(); ++i) {
      VmState& s = state[demand_vm[i]];
      const AppBehavior& app = *s.app;
      const VmAllocation& a = alloc.vms[i];
      double read_rate = a.io_speed * demands[i].read_iops;
      double write_rate = a.io_speed * demands[i].write_iops;

      s.progress += a.speed * dt / app.solo_runtime_s;
      s.int_cpu += a.cpu_used * dt;
      s.int_dom0 += a.dom0_cpu * dt;
      s.int_reads += read_rate * dt;
      s.int_writes += write_rate * dt;
      s.tick_cpu += a.cpu_used * dt;
      s.tick_dom0 += a.dom0_cpu * dt;
      s.tick_reads += read_rate * dt;
      s.tick_writes += write_rate * dt;
      TRACON_CHECK_FINITE(s.progress, "VM progress fraction");
      TRACON_DCHECK(s.progress >= 0.0, "VM progress went negative");
      TRACON_DCHECK(s.int_cpu >= 0.0 && s.int_dom0 >= 0.0 &&
                        s.int_reads >= 0.0 && s.int_writes >= 0.0,
                    "negative resource integral");
    }
    const double before = now;
    now += dt;
    TRACON_DCHECK(now > before, "simulated clock failed to advance");
    static_cast<void>(before);

    // Monitor tick: emit one sample per present VM.
    if (now >= next_tick - kEps) {
      if (opts.collect_samples) {
        for (std::size_t v = 0; v < n; ++v) {
          if (state[v].app == nullptr) continue;
          VmState& s = state[v];
          MonitorSample ms;
          ms.time_s = now;
          ms.vm = v;
          double period = cfg_.monitor_period_s;
          ms.reads_per_s =
              s.tick_reads / period * noise.lognormal_noise(cfg_.noise_sigma);
          ms.writes_per_s =
              s.tick_writes / period * noise.lognormal_noise(cfg_.noise_sigma);
          ms.domu_cpu =
              s.tick_cpu / period * noise.lognormal_noise(cfg_.noise_sigma);
          ms.dom0_cpu =
              s.tick_dom0 / period * noise.lognormal_noise(cfg_.noise_sigma);
          TRACON_DCHECK(ms.reads_per_s >= 0.0 && ms.writes_per_s >= 0.0 &&
                            ms.domu_cpu >= 0.0 && ms.dom0_cpu >= 0.0,
                        "negative monitor sample");
          result.samples.push_back(ms);
        }
      }
      for (VmState& s : state) {
        s.tick_cpu = s.tick_dom0 = s.tick_reads = s.tick_writes = 0.0;
      }
      next_tick += cfg_.monitor_period_s;
    }

    // Completions.
    for (std::size_t v = 0; v < n; ++v) {
      VmState& s = state[v];
      if (!s.active() || s.progress < 1.0 - kEps) continue;
      if (s.recurring) {
        s.progress = 0.0;
        s.start_time = now;  // restart background job, new burst phase
      } else {
        s.completed = true;
        s.measured_until = now;
        --measured_pending;
      }
    }
    if (measured_pending == 0) break;
  }

  result.end_time_s = now;

  for (std::size_t v = 0; v < n; ++v) {
    VmState& s = state[v];
    VmRunStats& out = result.vms[v];
    if (s.app == nullptr) continue;
    out.present = true;
    out.completed = s.completed;
    double window = s.completed ? s.measured_until : now;
    if (window <= 0.0) continue;
    out.runtime_s = s.completed
                        ? window * noise.lognormal_noise(cfg_.noise_sigma)
                        : window;
    out.reads_per_s = s.int_reads / window;
    out.writes_per_s = s.int_writes / window;
    out.iops = out.reads_per_s + out.writes_per_s;
    out.avg_domu_cpu = s.int_cpu / window;
    out.avg_dom0_cpu = s.int_dom0 / window;
    TRACON_CHECK_FINITE(out.runtime_s, "measured runtime");
    TRACON_DCHECK(out.runtime_s >= 0.0 && out.iops >= 0.0,
                  "negative measured runtime or IOPS");
  }
  return result;
}

VmRunStats HostSimulator::solo(const AppBehavior& app,
                               std::uint64_t noise_seed) const {
  RunOptions opts;
  opts.noise_seed = noise_seed;
  opts.collect_samples = false;
  RunResult r = run({VmWorkload{app, false}, std::nullopt}, opts);
  return r.vms[0];
}

PairMeasurement HostSimulator::measure_pair(const AppBehavior& foreground,
                                            const AppBehavior& background,
                                            std::uint64_t noise_seed) const {
  RunOptions opts;
  opts.noise_seed = noise_seed;
  opts.collect_samples = false;
  RunResult r = run(
      {VmWorkload{foreground, false}, VmWorkload{background, true}}, opts);
  PairMeasurement pm;
  pm.runtime_s = r.vms[0].runtime_s;
  pm.iops = r.vms[0].iops;
  pm.reads_per_s = r.vms[0].reads_per_s;
  pm.writes_per_s = r.vms[0].writes_per_s;
  return pm;
}

}  // namespace tracon::virt
