// Behavioural description of an application running inside a guest VM.
//
// An application is modelled as a fluid job: at full (solo) speed it
// sustains a DomU CPU utilization and read/write request rates for
// `solo_runtime_s` seconds. Under contention the host simulator computes
// an achievable speed s in (0,1]; the job then takes proportionally
// longer and its observable rates scale by s. Bursty applications
// alternate between high- and low-I/O phases, which is what makes
// interference nonlinear in the time-averaged features (and what the
// paper's degree-2 models exist to capture).
#pragma once

#include <string>

namespace tracon::virt {

struct AppBehavior {
  std::string name;

  /// Runtime when running alone on the reference host (seconds).
  double solo_runtime_s = 60.0;

  /// DomU (guest) CPU utilization at full speed, fraction of one core.
  double cpu_util = 0.5;

  /// Read / write requests per second at full speed.
  double read_iops = 0.0;
  double write_iops = 0.0;

  /// Average request size (KiB); drives disk transfer time.
  double request_kb = 64.0;

  /// Access sequentiality in [0,1]; 1 = perfectly sequential stream.
  double sequentiality = 0.5;

  /// I/O burstiness in [0,1]: the I/O demand swings between
  /// (1+b) and (1-b) times the mean across alternating phases.
  double burstiness = 0.0;

  /// Length of a full ON/OFF burst cycle (seconds).
  double burst_period_s = 4.0;

  double total_iops() const { return read_iops + write_iops; }
  bool does_io() const { return total_iops() > 0.0; }
  /// True when the app demands no resource at all (e.g., the all-zero
  /// synthetic profiling workload, which stands for an idle neighbour).
  bool is_idle() const { return cpu_util <= 0.0 && !does_io(); }
};

}  // namespace tracon::virt
