// Physical-host model parameters: CPU, shared disk, and the Dom0
// (driver-domain) I/O handling cost that couples them.
#pragma once

namespace tracon::virt {

/// Shared storage device. Per-request service time for a stream is
///   cost = per_request_latency + transfer + seek_cost * seek_fraction
/// with
///   seek_fraction = (1 - sigma) + sigma * collapse_cap * P / (P + theta * own)
/// where P is the interleave pressure from other streams (write-weighted
/// request rate, discounted by the square of how saturated each
/// competitor keeps the disk) and `own` is this stream's full-speed
/// rate. Foreign requests interleaved into a sequential stream force
/// head repositioning: a backlogged competitor (P ~ own) collapses the
/// stream to positioning-dominated service — the order-of-magnitude
/// SeqRead-vs-SeqRead slowdown of the paper's Table 1 — while a
/// low-rate competitor barely registers, reproducing the mild 1.8x of
/// the CPU&IO-medium column (the testbed's anticipatory I/O scheduler
/// protected sequential locality against sparse interference).
struct DiskConfig {
  double sequential_mbps = 110.0;    ///< streaming transfer bandwidth
  double positioning_ms = 7.0;       ///< seek + rotational latency
  double per_request_latency_ms = 0; ///< fixed per-request (network) latency
  double collapse_cap = 0.9;         ///< max interleave-induced seek share
  double write_weight = 1.5;         ///< writes disturb a stream more
  double interleave_theta = 0.25;    ///< locality protection (anticipation)

  /// Transfer component of one request of `kb` KiB, in milliseconds.
  double transfer_ms(double kb) const {
    return kb / 1024.0 / sequential_mbps * 1000.0;
  }
};

struct HostConfig {
  /// Physical cores shared by all guest vCPUs and Dom0. The paper's
  /// testbed multiplexes both guest vCPUs onto shared compute, yielding
  /// ~2x slowdown for two CPU-bound VMs (Table 1 row 1).
  int num_cores = 1;

  /// Dom0 CPU milliseconds consumed per guest I/O request (paravirtual
  /// I/O path: frontend/backend ring, copy, native driver). Writes are
  /// costlier: the backend must copy the payload and manage dirty pages.
  /// The cost scales with payload size around `dom0_kb_ref` and shrinks
  /// for sequential streams whose ring requests merge. This makes the
  /// observed Dom0 utilization carry information beyond the raw request
  /// rates — which is why the paper's models need it as a fourth feature.
  double dom0_cpu_ms_per_read = 0.10;
  double dom0_cpu_ms_per_write = 0.30;
  double dom0_kb_ref = 64.0;        ///< request size the base costs refer to
  double dom0_merge_discount = 0.4; ///< cost reduction at sequentiality 1

  /// Dom0 CPU (cores) consumed per unit of request rate for a stream
  /// with the given mix, request size, and sequentiality.
  double dom0_cost_per_iops(double read_share, double request_kb,
                            double sequentiality) const {
    double per_req_ms = read_share * dom0_cpu_ms_per_read +
                        (1.0 - read_share) * dom0_cpu_ms_per_write;
    double size_factor = 0.25 + 0.75 * request_kb / dom0_kb_ref;
    double merge_factor = 1.0 - dom0_merge_discount * sequentiality;
    return per_req_ms * size_factor * merge_factor / 1000.0;
  }

  /// Extra per-seek latency (ms) added per unit of CPU demand from
  /// *other* domains: a CPU-hungry co-runner delays Dom0 wakeups, so
  /// every repositioned request also waits on the scheduler. This is
  /// what makes a CPU+I/O-intensive neighbour worse than a pure I/O one
  /// (Table 1: 16.1x vs 10.2x for SeqRead).
  double dom0_sched_latency_ms = 6.0;

  DiskConfig disk;

  /// Resource-monitor sampling period (xentop/iostat cadence), seconds.
  double monitor_period_s = 1.0;

  /// Lognormal sigma of measurement noise applied to reported samples
  /// and runtimes; 0 disables noise.
  double noise_sigma = 0.08;

  /// The paper's measurement host: Core2 Duo-era machine with a 1 TB
  /// SATA drive, Xen 3.1 paravirtual I/O, two guest VMs.
  static HostConfig paper_testbed();

  /// Same host with remote iSCSI storage (Fig 7): lower streaming
  /// bandwidth, extra per-request network latency, costlier Dom0 path.
  static HostConfig iscsi_testbed();

  /// Paper future work: the same host with a solid-state drive. No
  /// mechanical positioning, so sequentiality collapse (the dominant
  /// interference channel on the hard drive) nearly disappears; what
  /// remains is bandwidth sharing and Dom0 CPU cost.
  static HostConfig ssd_testbed();

  /// Paper future work: a 4-spindle RAID-0 style array. Four times the
  /// streaming bandwidth and striped positioning work; interleaving
  /// still hurts sequential streams but the collapse is shallower
  /// because concurrent streams land on different spindles.
  static HostConfig raid_testbed();
};

}  // namespace tracon::virt
