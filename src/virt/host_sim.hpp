// Fluid-flow simulator of one virtualized physical host.
//
// Plays the role of the paper's Xen testbed: it runs one application per
// guest VM, resolves CPU/disk/Dom0 contention with `solve_speeds`, and
// reports what the paper measures — per-application runtime, achieved
// IOPS, and xentop/iostat-style monitor samples. Interference profiles,
// model training data, and the cluster simulator's ground-truth pairwise
// table are all produced by this class.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "virt/app_behavior.hpp"
#include "virt/fairshare.hpp"
#include "virt/host_config.hpp"

namespace tracon::virt {

/// One xentop/iostat observation of one VM over a sampling period.
struct MonitorSample {
  double time_s = 0.0;
  std::size_t vm = 0;
  double reads_per_s = 0.0;
  double writes_per_s = 0.0;
  double domu_cpu = 0.0;  ///< guest CPU, fraction of one core
  double dom0_cpu = 0.0;  ///< driver-domain CPU attributable to this VM
};

/// What one VM's application experienced over the run.
struct VmRunStats {
  bool present = false;
  bool completed = false;
  double runtime_s = 0.0;       ///< first-completion time (measured apps)
  double reads_per_s = 0.0;     ///< time-averaged over the app's runtime
  double writes_per_s = 0.0;
  double iops = 0.0;            ///< reads + writes per second
  double avg_domu_cpu = 0.0;
  double avg_dom0_cpu = 0.0;
};

struct RunResult {
  std::vector<VmRunStats> vms;
  std::vector<MonitorSample> samples;
  double end_time_s = 0.0;
};

/// A VM's assignment for one run. Recurring applications restart
/// immediately on completion — they model the paper's continuously
/// running background workload; measured applications run once and their
/// completion ends the experiment.
struct VmWorkload {
  AppBehavior app;
  bool recurring = false;
};

struct RunOptions {
  double max_time_s = 50'000.0;
  bool collect_samples = true;
  std::uint64_t noise_seed = 1;  ///< seeds measurement noise only
};

/// Measurement of a foreground app co-located with a background app.
struct PairMeasurement {
  double runtime_s = 0.0;
  double iops = 0.0;
  double reads_per_s = 0.0;
  double writes_per_s = 0.0;
};

class HostSimulator {
 public:
  explicit HostSimulator(HostConfig cfg) : cfg_(cfg) {}

  const HostConfig& config() const { return cfg_; }

  /// Simulates the given VM assignment (one optional workload per VM
  /// slot) until every measured app completes or max_time_s elapses.
  RunResult run(const std::vector<std::optional<VmWorkload>>& vms,
                const RunOptions& opts = {}) const;

  /// Runs `app` alone and returns its stats (the application profile the
  /// prediction models consume).
  VmRunStats solo(const AppBehavior& app, std::uint64_t noise_seed = 1) const;

  /// Runs `foreground` to completion against a continuously restarting
  /// `background` on the second VM.
  PairMeasurement measure_pair(const AppBehavior& foreground,
                               const AppBehavior& background,
                               std::uint64_t noise_seed = 1) const;

 private:
  HostConfig cfg_;
};

}  // namespace tracon::virt
