#include "virt/fairshare.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace tracon::virt {

std::vector<double> waterfill(const std::vector<double>& demands,
                              double capacity) {
  TRACON_REQUIRE(capacity >= 0.0, "waterfill capacity must be non-negative");
  for (double d : demands)
    TRACON_REQUIRE(d >= 0.0, "waterfill demands must be non-negative");

  const std::size_t n = demands.size();
  std::vector<double> alloc(n, 0.0);
  if (n == 0) return alloc;

  // Serve consumers in ascending demand; each round grants the smaller
  // of the consumer's demand and an equal split of what remains.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return demands[a] < demands[b];
  });

  double remaining = capacity;
  std::size_t left = n;
  for (std::size_t idx : order) {
    double share = remaining / static_cast<double>(left);
    double granted = std::min(demands[idx], share);
    alloc[idx] = granted;
    remaining -= granted;
    --left;
  }

  if constexpr (kParanoidChecksEnabled) {
    // Conservation: grants never exceed capacity, and no consumer is
    // granted more than it asked for.
    double granted_total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      TRACON_DCHECK(alloc[i] >= 0.0 && alloc[i] <= demands[i] + 1e-9,
                    "waterfill grant exceeds demand");
      granted_total += alloc[i];
    }
    TRACON_DCHECK(granted_total <= capacity + 1e-9 * std::max(1.0, capacity),
                  "waterfill grants exceed capacity");
  }
  return alloc;
}

HostAllocation solve_speeds(const HostConfig& cfg,
                            const std::vector<VmDemand>& demands) {
  HostAllocation result;
  const std::size_t n = demands.size();
  result.vms.resize(n);
  if (n == 0) return result;

  for (const VmDemand& d : demands) {
    TRACON_REQUIRE(
        d.cpu >= 0.0 && d.read_iops >= 0.0 && d.write_iops >= 0.0 &&
            d.request_kb > 0.0,
        "invalid VM demand");
    TRACON_REQUIRE(d.sequentiality >= 0.0 && d.sequentiality <= 1.0,
                   "sequentiality outside [0,1]");
  }

  const double cores = static_cast<double>(cfg.num_cores);
  const double kDiskMsPerSec = 1000.0;
  // Dom0 CPU cores consumed per unit I/O rate, at full speed, per VM.
  std::vector<double> dom0_rate(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    double total = demands[v].total_iops();
    if (total <= 0.0) continue;
    double read_share = demands[v].read_iops / total;
    dom0_rate[v] = total * cfg.dom0_cost_per_iops(read_share,
                                                  demands[v].request_kb,
                                                  demands[v].sequentiality);
  }

  // CPU demand from other domains, per VM (constant across iterations):
  // drives the Dom0 scheduling-latency component of the disk cost.
  std::vector<double> cpu_other(n, 0.0);
  double cpu_total = 0.0;
  for (const VmDemand& d : demands) cpu_total += d.cpu;
  for (std::size_t v = 0; v < n; ++v) cpu_other[v] = cpu_total - demands[v].cpu;

  std::vector<double> io_speed(n, 1.0);
  std::vector<double> cpu_speed(n, 1.0);
  std::vector<double> cost_ms(n, 0.0);
  std::vector<double> saturation(n, 0.0);
  double dom0_speed = 1.0;

  // Initialize per-request costs and saturations from solo behaviour.
  for (std::size_t v = 0; v < n; ++v) {
    cost_ms[v] = cfg.disk.per_request_latency_ms +
                 cfg.disk.transfer_ms(demands[v].request_kb) +
                 cfg.disk.positioning_ms * (1.0 - demands[v].sequentiality);
    saturation[v] =
        std::min(1.0, demands[v].total_iops() * cost_ms[v] / kDiskMsPerSec);
  }

  constexpr int kMaxIters = 200;
  constexpr double kTol = 1e-10;
  int iter = 0;
  for (; iter < kMaxIters; ++iter) {
    // --- Disk: per-request cost from the current operating point. ---
    // Interleave pressure on stream v: write-weighted request rates of
    // the other streams, throttled by their CPU grant and discounted by
    // the square of their disk saturation (a competitor that leaves the
    // disk mostly idle rarely breaks this stream's locality — the
    // anticipatory-scheduler effect).
    for (std::size_t v = 0; v < n; ++v) {
      double pressure = 0.0;
      for (std::size_t u = 0; u < n; ++u) {
        if (u == v) continue;
        double weighted = demands[u].read_iops +
                          cfg.disk.write_weight * demands[u].write_iops;
        pressure += weighted * std::min(1.0, cpu_speed[u]) * saturation[u] *
                    saturation[u];
      }
      double own = demands[v].total_iops();
      double interleave =
          own > 1e-9
              ? cfg.disk.collapse_cap * pressure /
                    (pressure + cfg.disk.interleave_theta * own)
              : 0.0;
      double seek_fraction = (1.0 - demands[v].sequentiality) +
                             demands[v].sequentiality * interleave;
      cost_ms[v] = cfg.disk.per_request_latency_ms +
                   cfg.disk.transfer_ms(demands[v].request_kb) +
                   (cfg.disk.positioning_ms +
                    cfg.dom0_sched_latency_ms * cpu_other[v]) *
                       seek_fraction;
      saturation[v] =
          std::min(1.0, own * cost_ms[v] / kDiskMsPerSec);
    }

    // Disk time demanded, throttled by what CPU and Dom0 currently let
    // the stream issue.
    std::vector<double> disk_demand(n, 0.0);
    for (std::size_t v = 0; v < n; ++v) {
      double issue = std::min({1.0, cpu_speed[v], dom0_speed});
      disk_demand[v] = demands[v].total_iops() * cost_ms[v] * issue;
    }
    std::vector<double> disk_alloc = waterfill(disk_demand, kDiskMsPerSec);
    double disk_leftover = kDiskMsPerSec;
    for (double a : disk_alloc) disk_leftover -= a;

    std::vector<double> cap_disk(n, 1.0);
    for (std::size_t v = 0; v < n; ++v) {
      double full = demands[v].total_iops() * cost_ms[v];
      if (full > 1e-12)
        cap_disk[v] = std::min(1.0, (disk_alloc[v] + disk_leftover) / full);
    }

    // --- CPU: guest vCPUs plus one Dom0 consumer for I/O handling.
    // Guests present their full CPU demand (compute loops do not block
    // on I/O); Dom0 demand follows the achieved I/O rates.
    double dom0_demand = 0.0;
    for (std::size_t v = 0; v < n; ++v)
      dom0_demand += dom0_rate[v] * io_speed[v];
    std::vector<double> cpu_demand(n + 1, 0.0);
    for (std::size_t v = 0; v < n; ++v) cpu_demand[v] = demands[v].cpu;
    cpu_demand[n] = dom0_demand;
    std::vector<double> cpu_alloc = waterfill(cpu_demand, cores);
    double cpu_leftover = cores;
    for (double a : cpu_alloc) cpu_leftover -= a;

    std::vector<double> new_cpu_speed(n, 1.0);
    for (std::size_t v = 0; v < n; ++v) {
      if (demands[v].cpu > 1e-12)
        new_cpu_speed[v] =
            std::min(1.0, (cpu_alloc[v] + cpu_leftover) / demands[v].cpu);
    }
    double new_dom0_speed = 1.0;
    if (dom0_demand > 1e-12)
      new_dom0_speed =
          std::min(1.0, (cpu_alloc[n] + cpu_leftover) / dom0_demand);

    // --- Combine and damp. ---
    double max_delta = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      double target_io = 1.0;
      if (demands[v].total_iops() > 1e-12)
        target_io =
            std::min({cap_disk[v], new_dom0_speed, new_cpu_speed[v]});
      double updated = 0.5 * io_speed[v] + 0.5 * target_io;
      max_delta = std::max(max_delta, std::abs(updated - io_speed[v]));
      io_speed[v] = updated;
      cpu_speed[v] = new_cpu_speed[v];
    }
    dom0_speed = new_dom0_speed;
    if (max_delta < kTol) break;
  }
  result.iterations = iter + 1;

  // Final bookkeeping at the converged operating point. The application
  // progresses at the slower of its compute and I/O streams.
  double disk_busy = 0.0;
  double dom0_total = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    VmAllocation& a = result.vms[v];
    a.io_speed = std::clamp(io_speed[v], 0.0, 1.0);
    a.cpu_speed = std::clamp(cpu_speed[v], 0.0, 1.0);
    double s = 1.0;
    if (demands[v].cpu > 1e-12) s = std::min(s, a.cpu_speed);
    if (demands[v].total_iops() > 1e-12) s = std::min(s, a.io_speed);
    a.speed = s;
    a.iops = a.io_speed * demands[v].total_iops();
    // The guest burns its CPU grant whether or not I/O progresses (the
    // compute loop spins); cap at demand.
    a.cpu_used = a.cpu_speed * demands[v].cpu;
    a.dom0_cpu = dom0_rate[v] * a.io_speed;
    a.disk_ms = a.iops * cost_ms[v];
    disk_busy += a.disk_ms;
    dom0_total += a.dom0_cpu;
  }
  result.dom0_cpu_total = dom0_total;
  result.disk_utilization = std::min(1.0, disk_busy / kDiskMsPerSec);

  if constexpr (kParanoidChecksEnabled) {
    // CPU-credit conservation: guest grants plus the Dom0 I/O handler
    // can never exceed the host's physical cores. The speeds that fed
    // cpu_used/dom0_cpu all came from waterfill shares of `cores`.
    double cpu_granted = 0.0;
    for (const VmAllocation& a : result.vms) {
      TRACON_CHECK_FINITE(a.speed, "VM progress speed");
      TRACON_DCHECK(a.speed >= 0.0 && a.speed <= 1.0,
                    "VM speed outside [0,1]");
      TRACON_DCHECK(a.iops >= 0.0, "negative achieved IOPS");
      TRACON_DCHECK(a.disk_ms >= 0.0, "negative disk time");
      TRACON_DCHECK(a.cpu_used >= 0.0 && a.dom0_cpu >= 0.0,
                    "negative CPU grant");
      cpu_granted += a.cpu_used;
    }
    TRACON_DCHECK(cpu_granted + result.dom0_cpu_total <= cores + 1e-6,
                  "CPU credits exceed physical cores");
  }
  return result;
}

}  // namespace tracon::virt
