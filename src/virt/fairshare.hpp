// Fair-share allocation primitives for the host simulator.
//
// Both the Xen credit CPU scheduler and a fair-queuing disk scheduler
// approximate max-min fair, work-conserving division of a capacity among
// competing demands: every active consumer is entitled to an equal
// share, and capacity a consumer does not need is redistributed.
// `waterfill` implements that division; `solve_speeds` couples the CPU
// and disk allocations (through Dom0 I/O handling cost and the
// interleaving-dependent per-request disk cost) via damped fixed-point
// iteration and returns the achievable speed of each VM's application.
#pragma once

#include <vector>

#include "virt/host_config.hpp"

namespace tracon::virt {

/// Max-min fair, work-conserving allocation of `capacity` among
/// `demands` (non-negative). Returns per-consumer allocations with
/// alloc[i] <= demands[i], sum(alloc) <= capacity, and equal shares
/// among unsatisfied consumers.
std::vector<double> waterfill(const std::vector<double>& demands,
                              double capacity);

/// Instantaneous resource demand of one VM's application at full speed.
/// CPU demand is presented unconditionally (the paper's load generator
/// runs its arithmetic loop independently of I/O completion), while I/O
/// issue is throttled by both CPU and disk grants.
struct VmDemand {
  double cpu = 0.0;            ///< DomU CPU demand (cores)
  double read_iops = 0.0;      ///< read requests per second at full speed
  double write_iops = 0.0;     ///< write requests per second at full speed
  double request_kb = 64.0;
  double sequentiality = 0.5;  ///< in [0,1]

  double total_iops() const { return read_iops + write_iops; }
};

/// Per-VM outcome of the coupled allocation.
struct VmAllocation {
  double speed = 1.0;        ///< achieved fraction of solo progress rate
  double io_speed = 1.0;     ///< achieved fraction of full I/O rate
  double cpu_speed = 1.0;    ///< achieved fraction of full CPU demand
  double cpu_used = 0.0;     ///< DomU CPU actually consumed (cores)
  double dom0_cpu = 0.0;     ///< Dom0 CPU attributable to this VM (cores)
  double iops = 0.0;         ///< achieved requests per second (read+write)
  double disk_ms = 0.0;      ///< disk time consumed (ms per second)
};

struct HostAllocation {
  std::vector<VmAllocation> vms;
  double dom0_cpu_total = 0.0;   ///< cores consumed by Dom0
  double disk_utilization = 0.0; ///< fraction of disk time busy
  int iterations = 0;            ///< fixed-point iterations used
};

/// Computes achievable speeds for the given concurrent demands on a
/// host. Deterministic. Demands may be empty (returns empty allocation).
HostAllocation solve_speeds(const HostConfig& cfg,
                            const std::vector<VmDemand>& demands);

}  // namespace tracon::virt
