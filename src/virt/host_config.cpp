#include "virt/host_config.hpp"

namespace tracon::virt {

HostConfig HostConfig::paper_testbed() {
  HostConfig cfg;
  cfg.num_cores = 1;
  cfg.dom0_cpu_ms_per_read = 0.10;
  cfg.dom0_cpu_ms_per_write = 0.30;
  cfg.dom0_sched_latency_ms = 6.0;
  cfg.disk.sequential_mbps = 110.0;
  cfg.disk.positioning_ms = 7.0;
  cfg.disk.per_request_latency_ms = 0.0;
  cfg.disk.collapse_cap = 0.9;
  cfg.disk.write_weight = 1.5;
  cfg.monitor_period_s = 1.0;
  cfg.noise_sigma = 0.08;
  return cfg;
}

HostConfig HostConfig::ssd_testbed() {
  HostConfig cfg = paper_testbed();
  cfg.disk.sequential_mbps = 250.0;   // SATA-2-era SSD
  cfg.disk.positioning_ms = 0.08;     // flash lookup, no seeks
  cfg.disk.collapse_cap = 0.3;        // little locality to destroy
  cfg.dom0_sched_latency_ms = 1.0;    // requests too cheap to queue long
  return cfg;
}

HostConfig HostConfig::raid_testbed() {
  HostConfig cfg = paper_testbed();
  cfg.disk.sequential_mbps = 440.0;   // 4 striped spindles
  cfg.disk.positioning_ms = 7.0;      // each spindle still seeks
  cfg.disk.collapse_cap = 0.55;       // streams spread across spindles
  cfg.disk.interleave_theta = 0.5;    // more concurrency tolerated
  return cfg;
}

HostConfig HostConfig::iscsi_testbed() {
  HostConfig cfg = paper_testbed();
  cfg.disk.sequential_mbps = 60.0;
  cfg.disk.per_request_latency_ms = 0.5;
  cfg.dom0_cpu_ms_per_read = 0.25;  // iSCSI initiator adds protocol work
  cfg.dom0_cpu_ms_per_write = 0.50;
  return cfg;
}

}  // namespace tracon::virt
