// Migration cost model (ROADMAP "Live rebalancing via task/VM
// migration"): what it costs to move a running task's VM to another
// host. The model follows the two-phase picture of pre-copy live
// migration —
//   1. a copy phase of `working_set_mb / copy_bandwidth_mbps` seconds,
//      during which the copy traffic itself is interference: every
//      task on the source AND destination host (the migrating task
//      included) runs at a reduced speed factor, because migration
//      I/O competes with application I/O on both ends (Jin et al.,
//      "A Joint Optimization of Operational Cost and Performance
//      Interference", PAPERS.md);
//   2. a stop-and-copy pause of `downtime_s` during which the
//      migrating task makes no progress at all.
// The rebalancer charges the migrating task
//   task_cost_s = downtime + copy_duration * copy_interference
// (its own slowdown while the copy competes with it) and the dynamic
// event loop injects the copy window on both hosts so co-runners pay
// their share too. Everything is a pure function of the config —
// no clocks, no randomness — so migration decisions stay inside the
// determinism contract.
#pragma once

namespace tracon::virt {

struct MigrationCostConfig {
  /// Stop-and-copy pause: the migrating task is frozen this long.
  double downtime_s = 0.5;
  /// Host copy bandwidth in MB/s, shared with application I/O.
  double copy_bandwidth_mbps = 400.0;
  /// Default per-task working-set size in MB (the amount that must be
  /// copied); callers may override per task.
  double working_set_mb = 512.0;
  /// Fraction of execution speed lost by every task on the source and
  /// destination hosts while the copy is in flight, in [0, 1).
  double copy_interference = 0.25;
};

/// Validated, immutable view over a MigrationCostConfig. Throws
/// std::invalid_argument (via TRACON_REQUIRE) on non-positive
/// bandwidth/working set, negative downtime, or interference outside
/// [0, 1).
class MigrationCostModel {
 public:
  explicit MigrationCostModel(const MigrationCostConfig& cfg);

  const MigrationCostConfig& config() const { return cfg_; }

  /// Seconds the copy phase lasts for a given working set.
  double copy_duration_s(double working_set_mb) const;
  double copy_duration_s() const { return copy_duration_s(cfg_.working_set_mb); }

  /// Speed multiplier applied to every task on the source and
  /// destination hosts during the copy window: 1 - copy_interference.
  double copy_speed_factor() const { return 1.0 - cfg_.copy_interference; }

  /// Total cost charged to the migrating task itself: the downtime
  /// pause plus its own slowdown share of the copy window.
  double task_cost_s(double working_set_mb) const;
  double task_cost_s() const { return task_cost_s(cfg_.working_set_mb); }

 private:
  MigrationCostConfig cfg_;
};

}  // namespace tracon::virt
