#include "virt/migration.hpp"

#include "util/error.hpp"

namespace tracon::virt {

MigrationCostModel::MigrationCostModel(const MigrationCostConfig& cfg)
    : cfg_(cfg) {
  TRACON_REQUIRE(cfg_.downtime_s >= 0.0,
                 "migration downtime must be non-negative");
  TRACON_REQUIRE(cfg_.copy_bandwidth_mbps > 0.0,
                 "migration copy bandwidth must be positive");
  TRACON_REQUIRE(cfg_.working_set_mb > 0.0,
                 "migration working set must be positive");
  TRACON_REQUIRE(cfg_.copy_interference >= 0.0 && cfg_.copy_interference < 1.0,
                 "migration copy interference must be in [0, 1)");
}

double MigrationCostModel::copy_duration_s(double working_set_mb) const {
  TRACON_REQUIRE(working_set_mb > 0.0, "working set must be positive");
  return working_set_mb / cfg_.copy_bandwidth_mbps;
}

double MigrationCostModel::task_cost_s(double working_set_mb) const {
  return cfg_.downtime_s +
         copy_duration_s(working_set_mb) * cfg_.copy_interference;
}

}  // namespace tracon::virt
