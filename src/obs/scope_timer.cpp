#include "obs/scope_timer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <vector>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace tracon::obs {

ProfRegistry& ProfRegistry::global() {
  // TRACON_ANALYZE_ALLOW(mutable-global): the process-wide profiling
  // registry is the one sanctioned singleton; it never feeds results,
  // only the --prof report, and registration is mutex-guarded.
  static ProfRegistry registry;
  return registry;
}

ScopeStats& ProfRegistry::scope(const std::string& name) {
  TRACON_REQUIRE(valid_metric_name(name),
                 "profiling scope name must be a dotted snake_case path");
  // std::map never invalidates element references, so the returned slot
  // stays valid after later registrations; only the insertion itself
  // needs the lock (call sites register concurrently from shard
  // workers via TRACON_PROF_SCOPE's function-local static).
  std::lock_guard<std::mutex> lock(register_mutex_);
  return scopes_[name];
}

void ProfRegistry::reset() {
  for (auto& [name, stats] : scopes_) stats = ScopeStats{};
}

void ProfRegistry::write_text(std::ostream& os) const {
  std::vector<const std::pair<const std::string, ScopeStats>*> rows;
  rows.reserve(scopes_.size());
  for (const auto& entry : scopes_) rows.push_back(&entry);
  std::stable_sort(rows.begin(), rows.end(), [](const auto* a, const auto* b) {
    return a->second.total_ns > b->second.total_ns;
  });
  char line[160];
  std::snprintf(line, sizeof line, "%-36s %9s %12s %12s %12s\n", "scope",
                "calls", "total_ms", "avg_us", "max_us");
  os << line;
  for (const auto* row : rows) {
    const ScopeStats& s = row->second;
    double total_ms = static_cast<double>(s.total_ns) / 1e6;
    double avg_us = s.calls > 0 ? static_cast<double>(s.total_ns) /
                                      static_cast<double>(s.calls) / 1e3
                                : 0.0;
    double max_us = static_cast<double>(s.max_ns) / 1e3;
    std::snprintf(line, sizeof line, "%-36s %9llu %12.3f %12.3f %12.3f\n",
                  row->first.c_str(),
                  static_cast<unsigned long long>(s.calls), total_ms, avg_us,
                  max_us);
    os << line;
  }
}

std::uint64_t ScopeTimer::now_ns() {
  // The obs-layer wall-clock exemption: see scope_timer.hpp. Timings
  // go to the --prof report only, never into simulation results.
  // TRACON_ANALYZE_ALLOW(determinism-taint): profiling measures real
  // elapsed time by definition; its output is not replay-checked.
  const auto now = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          now.time_since_epoch())
          .count());
}

void ScopeTimer::stop() {
  std::uint64_t elapsed = now_ns() - start_ns_;
  ++stats_->calls;
  stats_->total_ns += elapsed;
  if (elapsed > stats_->max_ns) stats_->max_ns = elapsed;
}

}  // namespace tracon::obs
