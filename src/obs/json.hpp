// Minimal JSON reader used by tests and tools/telemetry_check to parse
// back what the obs exporters write. Supports the full JSON grammar we
// emit (objects, arrays, strings with standard escapes, numbers, bools,
// null); it is NOT a general-purpose parser — no streaming, no \u
// surrogate pairs beyond the BMP, whole document held in memory.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tracon::obs {

class JsonValue;
using JsonValuePtr = std::shared_ptr<JsonValue>;

/// Parsed JSON node. Objects preserve key lookup via a map (duplicate
/// keys keep the last occurrence, matching common parser behaviour).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::logic_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValuePtr>& as_array() const;
  const std::map<std::string, JsonValuePtr>& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValuePtr> array_;
  std::map<std::string, JsonValuePtr> object_;
};

/// Parses a complete JSON document; throws std::invalid_argument on
/// malformed input or trailing garbage.
JsonValue parse_json(std::string_view text);

}  // namespace tracon::obs
