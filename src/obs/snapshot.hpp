// Windowed time-series telemetry: SnapshotSeries samples a
// MetricsRegistry on the simulator's virtual clock and emits one
// schema-versioned `tracon.metrics_series` JSONL record per window.
//
// Each record carries, for the window (t_start, t_end]:
//   - per-window counter *deltas* (current value minus the value at the
//     previous snapshot; monotone counters make every delta >= 0),
//   - gauge values as of t_end,
//   - rolling accuracy statistics (count/total/mean_abs/p50/p90) from
//     every registered WindowedAccuracy.
//
// Determinism contract (DESIGN.md §6e): sample() is only ever called
// with virtual-clock timestamps, metric maps iterate in name order, and
// doubles are formatted by JsonLineWriter's shortest round-trip writer,
// so two same-seed runs write byte-identical series files.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/accuracy.hpp"
#include "obs/metrics.hpp"

namespace tracon::obs {

class JsonValue;

inline constexpr std::string_view kMetricsSeriesSchema =
    "tracon.metrics_series";

class SnapshotSeries {
 public:
  /// Samples `registry` (not owned; must outlive the series) every
  /// `interval_s` sim-seconds — the driver (the dynamic scenario's
  /// event loop) owns the cadence and calls sample().
  SnapshotSeries(const MetricsRegistry& registry, double interval_s);

  double interval_s() const { return interval_s_; }

  /// Registers a rolling accuracy window (not owned) whose statistics
  /// are embedded in every subsequent record under `name` — a dotted
  /// metric path such as "model.nlm.runtime".
  void track_accuracy(const std::string& name, const WindowedAccuracy* window);

  /// Closes the window ending at `now_s` (strictly after the previous
  /// sample) and appends its record. Timestamps must come from the
  /// virtual clock, never the wall clock.
  void sample(double now_s);

  std::size_t windows() const { return records_.size(); }

  /// Header line plus one record per window.
  void write(std::ostream& os) const;
  std::string str() const;

 private:
  const MetricsRegistry* registry_;
  double interval_s_;
  std::map<std::string, const WindowedAccuracy*> accuracy_;
  std::map<std::string, std::uint64_t> last_counters_;
  double last_sample_s_ = 0.0;
  std::uint64_t next_window_ = 0;
  std::vector<std::string> records_;
};

/// Parsed view of one series record, used by `tracon timeline`, the
/// report diff, and telemetry_check.
struct SeriesWindow {
  std::uint64_t index = 0;
  double t_start = 0.0;
  double t_end = 0.0;
  std::map<std::string, double> counters;  ///< per-window deltas
  std::map<std::string, double> gauges;    ///< values as of t_end
  struct Accuracy {
    double count = 0.0;     ///< samples in the window at t_end
    double total = 0.0;     ///< lifetime samples at t_end
    double mean_abs = 0.0;  ///< windowed mean |relative error|
    double p50 = 0.0;
    double p90 = 0.0;
  };
  std::map<std::string, Accuracy> accuracy;
};

struct MetricsSeries {
  int version = 0;
  double interval_s = 0.0;
  std::vector<SeriesWindow> windows;
};

/// Parses a series document as written by SnapshotSeries::write.
/// Throws std::invalid_argument on a foreign schema or malformed
/// records.
MetricsSeries parse_metrics_series(std::istream& in);
MetricsSeries parse_metrics_series(const std::string& text);

/// Re-emits a parsed (or programmatically merged) series in the exact
/// byte format SnapshotSeries::write produces: same header, same field
/// order, maps in name order, counters/accuracy counts as integers and
/// everything else through the shortest round-trip double writer. The
/// sharded runner uses this to publish a merged per-window series that
/// is byte-comparable across thread counts.
void write_metrics_series(std::ostream& os, const MetricsSeries& series);
std::string metrics_series_str(const MetricsSeries& series);

}  // namespace tracon::obs
