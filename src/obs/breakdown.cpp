#include "obs/breakdown.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace tracon::obs {

namespace {

// Folds one span into the per-kind component split documented in
// span_log.hpp. Each span's contributions sum to its duration exactly
// (up to floating-point rounding), which is what makes the per-task
// components tile the end-to-end latency.
void fold_span(const SpanEvent& e, TaskBreakdown* row) {
  const double d = e.t1_s - e.t0_s;
  switch (e.kind) {
    case SpanEvent::Kind::kQueued:
      row->wait_s += d;
      break;
    case SpanEvent::Kind::kRunning:
      row->solo_s += d * e.factor;
      row->interference_s += d * (1.0 - e.factor);
      break;
    case SpanEvent::Kind::kMigrationCopy:
      row->solo_s += d * e.factor * e.copy_factor;
      row->interference_s += d * (1.0 - e.factor);
      row->migration_s += d * e.factor * (1.0 - e.copy_factor);
      break;
    case SpanEvent::Kind::kMigrationFreeze:
      row->migration_s += d;
      break;
    case SpanEvent::Kind::kCompleted:
      row->completed = true;
      row->solo_runtime_s = e.solo_runtime_s;
      break;
  }
}

void fold_cell(const TaskBreakdown& row, BreakdownCell* cell) {
  cell->tasks += 1;
  cell->wait_s += row.wait_s;
  cell->solo_s += row.solo_s;
  cell->interference_s += row.interference_s;
  cell->migration_s += row.migration_s;
}

}  // namespace

BreakdownReport breakdown(const SpanDoc& doc, double window_s) {
  // Group spans per task. The log is stable-sorted on span start and a
  // task's starts are non-decreasing, so per-task chronological order
  // survives the grouping.
  std::map<std::uint64_t, std::vector<const SpanEvent*>> by_task;
  for (const SpanEvent& e : doc.events) by_task[e.task].push_back(&e);

  BreakdownReport report;
  report.window_s = window_s;
  for (const auto& [task, spans] : by_task) {
    TaskBreakdown row;
    row.task = task;
    row.app = spans.front()->app;
    row.enqueue_s = spans.front()->t0_s;
    row.complete_s = spans.back()->t1_s;
    row.start_s = row.complete_s;
    double cursor = row.enqueue_s;
    for (const SpanEvent* e : spans) {
      if (row.completed) {
        throw std::invalid_argument("span log task " + std::to_string(task) +
                                    " has a span after its completed marker");
      }
      if (e->t0_s != cursor) {
        throw std::invalid_argument("span log task " + std::to_string(task) +
                                    " spans do not tile (gap or overlap)");
      }
      cursor = e->t1_s;
      if (e->kind != SpanEvent::Kind::kQueued &&
          e->kind != SpanEvent::Kind::kCompleted &&
          row.machine == SpanEvent::kNoMachine) {
        row.machine = e->machine;
        row.start_s = e->t0_s;
      }
      fold_span(*e, &row);
    }
    if (!row.completed) {
      report.incomplete += 1;
      continue;
    }
    fold_cell(row, &report.total);
    fold_cell(row, &report.by_app[row.app]);
    if (window_s > 0.0) {
      const auto window = static_cast<std::uint64_t>(row.complete_s / window_s);
      fold_cell(row, &report.by_window[window]);
    }
    report.rows.push_back(row);
  }
  return report;
}

std::vector<CriticalPathEntry> critical_path(const SpanDoc& doc) {
  const BreakdownReport report = breakdown(doc);
  if (report.rows.empty()) return {};

  // The makespan-defining task: latest completion, lowest id on ties.
  const TaskBreakdown* cur = &report.rows.front();
  for (const TaskBreakdown& row : report.rows) {
    if (row.complete_s > cur->complete_s) cur = &row;
  }

  std::vector<CriticalPathEntry> path;
  for (std::size_t guard = 0; guard <= report.rows.size(); ++guard) {
    path.push_back({cur->task, cur->app, cur->machine, cur->enqueue_s,
                    cur->start_s, cur->complete_s, cur->wait_s});
    if (cur->wait_s <= 0.0 || cur->machine == SpanEvent::kNoMachine) break;
    // The task waited: the slot it got was held until shortly before
    // its placement. Chain through the latest completion on the same
    // machine that precedes the placement.
    const TaskBreakdown* pred = nullptr;
    for (const TaskBreakdown& row : report.rows) {
      if (row.machine != cur->machine || row.task == cur->task) continue;
      if (row.complete_s > cur->start_s) continue;
      if (pred == nullptr || row.complete_s > pred->complete_s) pred = &row;
    }
    if (pred == nullptr) break;
    cur = pred;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace tracon::obs
