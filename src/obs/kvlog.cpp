#include "obs/kvlog.hpp"

#include <cstdio>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace tracon::obs {

KvLine::KvLine(std::string_view event) : line_(event) {
  TRACON_REQUIRE(valid_metric_name(event),
                 "log event name must be a dotted snake_case path");
}

KvLine& KvLine::kv(std::string_view key, std::string_view value) {
  line_ += ' ';
  line_ += key;
  line_ += '=';
  line_ += value;
  return *this;
}

KvLine& KvLine::kv(std::string_view key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return kv(key, std::string_view(buf));
}

KvLine& KvLine::kv_int(std::string_view key, std::int64_t value,
                       bool is_unsigned) {
  char buf[32];
  if (is_unsigned) {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  }
  return kv(key, std::string_view(buf));
}

}  // namespace tracon::obs
