// Metrics registry: named counters, gauges, and fixed-bucket histograms
// with deterministic CSV/JSON export.
//
// Design constraints (see DESIGN.md "Observability"):
//   - zero overhead when disabled: components hold a nullable
//     obs::Telemetry* and skip every recording call on nullptr;
//   - deterministic output: metrics are stored in name order and doubles
//     are formatted with a fixed printf spec, so two runs with the same
//     seed export byte-identical files;
//   - single-threaded: the simulator is single-threaded, so handles are
//     plain unsynchronized slots. A future sharded simulator swaps the
//     registry behind obs::Telemetry for a sharded implementation with
//     the same name-based lookup API; call sites do not change.
//
// Metric names are dotted snake_case paths ("sched.mios.decisions"),
// validated at registration and enforced on literals by tracon_lint's
// metric-name rule.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace tracon::obs {

/// True when `name` is a dotted snake_case path: segments of
/// [a-z][a-z0-9_]* joined by single dots.
bool valid_metric_name(std::string_view name);

/// Lowercases `raw` and replaces every character outside [a-z0-9_] with
/// '_', so foreign identifiers (model kind names like "NLM-noDom0") can
/// be embedded in metric paths.
std::string metric_path_component(std::string_view raw);

/// Formats a double exactly like the JSON/CSV exporters do ("%.10g"),
/// so callers composing files by hand stay byte-compatible.
std::string format_double(double value);

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value-wins instantaneous reading.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram. Buckets are upper-bound inclusive
/// (Prometheus "le" semantics): a value lands in the first bucket whose
/// bound is >= value; values above the last bound land in the implicit
/// +inf overflow bucket. Also tracks count/sum/min/max.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  /// Bucket count including the +inf overflow bucket.
  std::size_t num_buckets() const { return counts_.size(); }
  /// Upper bound of bucket `i`; +infinity for the overflow bucket.
  double upper_bound(std::size_t i) const;
  std::uint64_t bucket_count(std::size_t i) const;

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Min/max are 0 until the first observation.
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Folds `other` into this histogram: bucket counts and count/sum
  /// add, min/max widen. Both histograms must share the exact bucket
  /// bounds.
  void merge_from(const Histogram& other);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  ///< bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name-indexed metric store. Lookups get-or-create; returned references
/// stay valid for the registry's lifetime (node-based storage).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Get-or-create; an existing histogram is returned as-is (its bucket
  /// layout must match `upper_bounds` in size).
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& upper_bounds);

  /// Stamps one config-fingerprint entry (seed, scheduler, machines,
  /// mix, build, ...). The fingerprint is exported as its own block so
  /// every metrics file is self-describing — runstore entries can be
  /// diffed without the command line that produced them. Keys are
  /// snake_case identifiers; values are free-form strings.
  void set_fingerprint(const std::string& key, const std::string& value);
  const std::map<std::string, std::string>& fingerprint() const {
    return fingerprint_;
  }

  bool empty() const;
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Folds `other` into this registry — the reduction step a sharded
  /// scenario uses to combine per-shard registries. Counters and
  /// histograms sum (histograms must agree on bucket bounds when
  /// present on both sides); gauges and fingerprint entries are
  /// last-writer-wins: `other`'s value replaces an existing one.
  void merge(const MetricsRegistry& other);

  /// One JSON object: {"fingerprint": {...}, "counters": {...},
  /// "gauges": {...}, "histograms": {...}}, keys in name order.
  void write_json(std::ostream& os) const;
  /// Rows of `kind,name,field,value` with a header line (fingerprint
  /// entries first, as `fingerprint,<key>,value,<value>`).
  void write_csv(std::ostream& os) const;

 private:
  std::map<std::string, std::string> fingerprint_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace tracon::obs
