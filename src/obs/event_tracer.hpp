// Typed simulation event tracing with virtual-clock timestamps.
//
// The tracer records plain-old-data events (no allocation per event
// beyond vector growth) and exports two machine-readable views:
//   - Chrome trace_event JSON, loadable in chrome://tracing and
//     Perfetto (task lifetimes become duration slices per machine,
//     control-plane events become instants);
//   - one JSON object per line (JSONL) for ad-hoc scripting.
//
// Timestamps are SIMULATED seconds — never wall clock — so two runs
// with the same seed export byte-identical traces. The tracer is
// disabled by default; a disabled tracer's record() is a branch and a
// return, with zero allocations (tested in test_tracer.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tracon::obs {

enum class TraceEventKind : std::uint8_t {
  kTaskArrival,    ///< app; count = queue length after enqueue
  kTaskDropped,    ///< app; queue was at capacity
  kTaskPlaced,     ///< app, machine; value = predicted runtime (if probed)
  kTaskCompleted,  ///< app, machine; value = realized runtime, value2 = IOPS
  kVmStart,        ///< machine left the empty state
  kVmStop,         ///< machine returned to the empty state
  kSchedDecision,  ///< count = queue length, value = predicted cost of the
                   ///< chosen placements, value2 = number placed
  kModelRetrain,   ///< count = training-window size
  kModelDrift,     ///< count = drift kind (1 mean shift, 2 variance surge)
};

/// Dotted snake_case event name ("sim.task.arrival", "sched.decision").
std::string trace_event_kind_name(TraceEventKind kind);

struct TraceEvent {
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  double time_s = 0.0;  ///< virtual clock
  TraceEventKind kind = TraceEventKind::kTaskArrival;
  std::size_t app = kNone;      ///< application class, when applicable
  std::size_t machine = kNone;  ///< machine index, when applicable
  std::size_t count = 0;        ///< kind-specific cardinality
  double value = 0.0;           ///< kind-specific payload (see kind docs)
  double value2 = 0.0;
};

class EventTracer {
 public:
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Caps the number of recorded events; records past the cap are
  /// counted in dropped() instead of stored. Long instrumented runs
  /// (e.g. the bench sidecar) use this to bound trace-file size.
  /// Default: no cap.
  void set_max_events(std::size_t n) { max_events_ = n; }
  std::size_t dropped() const { return dropped_; }

  /// Appends `ev` when enabled; a no-op (no allocation) otherwise.
  void record(const TraceEvent& ev) {
    if (!enabled_) return;
    if (events_.size() >= max_events_) {
      ++dropped_;
      return;
    }
    events_.push_back(ev);
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t capacity() const { return events_.capacity(); }
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// Chrome trace_event format: {"traceEvents": [...]}. Task lifetimes
  /// export as "X" duration slices (pid 0 = hosts, tid = machine);
  /// control-plane events as "i" instants (pid 1).
  void write_chrome_json(std::ostream& os) const;

  /// One JSON object per line, in record order.
  void write_jsonl(std::ostream& os) const;

 private:
  bool enabled_ = false;
  std::size_t max_events_ = static_cast<std::size_t>(-1);
  std::size_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace tracon::obs
