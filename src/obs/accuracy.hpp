// Prediction-accuracy instrumentation (ISSUE: Table-1 style error
// tracking at simulation time).
//
// An AccuracyTracker owns three metrics under a per-model-family
// prefix — `model.<family>.<response>.rel_error_signed`,
// `.rel_error_abs` (histograms) and `.samples` (counter) — and is fed
// one (predicted, actual) pair per completed task. Family strings come
// from model_kind_name() and are sanitized with
// metric_path_component(), so "NLM-noDom0" lands under
// `model.nlm_nodom0.*`.
#pragma once

#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace tracon::obs {

class AccuracyTracker {
 public:
  AccuracyTracker(MetricsRegistry& registry, std::string_view family,
                  std::string_view response);

  /// Records the signed and absolute relative error of one prediction.
  /// Relative error is (predicted - actual) / max(|actual|, epsilon).
  void record(double predicted, double actual);

  /// Bucket upper bounds shared by every tracker so histograms are
  /// comparable across model families.
  static std::vector<double> signed_error_bounds();
  static std::vector<double> abs_error_bounds();

 private:
  Histogram* signed_;
  Histogram* abs_;
  Counter* samples_;
};

}  // namespace tracon::obs
