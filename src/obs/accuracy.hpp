// Prediction-accuracy instrumentation (ISSUE: Table-1 style error
// tracking at simulation time).
//
// An AccuracyTracker owns three metrics under a per-model-family
// prefix — `model.<family>.<response>.rel_error_signed`,
// `.rel_error_abs` (histograms) and `.samples` (counter) — and is fed
// one (predicted, actual) pair per completed task. Family strings come
// from model_kind_name() and are sanitized with
// metric_path_component(), so "NLM-noDom0" lands under
// `model.nlm_nodom0.*`.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace tracon::obs {

/// The shared relative-error definition:
/// (predicted - actual) / max(|actual|, 1e-9). Both the cumulative
/// AccuracyTracker and the rolling WindowedAccuracy use it, so their
/// statistics are directly comparable.
double relative_error(double predicted, double actual);

class AccuracyTracker {
 public:
  AccuracyTracker(MetricsRegistry& registry, std::string_view family,
                  std::string_view response);

  /// Records the signed and absolute relative error of one prediction.
  /// Relative error is (predicted - actual) / max(|actual|, epsilon).
  void record(double predicted, double actual);

  /// Bucket upper bounds shared by every tracker so histograms are
  /// comparable across model families.
  static std::vector<double> signed_error_bounds();
  static std::vector<double> abs_error_bounds();

 private:
  Histogram* signed_;
  Histogram* abs_;
  Counter* samples_;
};

/// Rolling-window companion to AccuracyTracker: a ring buffer over the
/// absolute relative error of the last `capacity` predictions for one
/// (model family, response) pair. Where the tracker's histograms answer
/// "how accurate was this family over the whole run", the window
/// answers "how accurate is it *now*" — which is what confidence
/// weighting and the snapshot series consume. Carries no registry
/// handles so it can be fed on runs with telemetry disabled.
class WindowedAccuracy {
 public:
  explicit WindowedAccuracy(std::size_t capacity);

  /// Records |relative_error(predicted, actual)|, evicting the oldest
  /// sample once the window is full.
  void record(double predicted, double actual);

  std::size_t capacity() const { return ring_.size(); }
  /// Samples currently in the window (== min(total, capacity)).
  std::size_t size() const { return size_; }
  /// Lifetime samples recorded, including evicted ones.
  std::uint64_t total() const { return total_; }

  /// Mean absolute relative error over the window; 0 when empty.
  double mean_abs_error() const;

  /// Windowed error quantile (nearest-rank over the sorted window:
  /// index min(floor(q * size), size - 1)); 0 when empty. q in [0, 1].
  double quantile(double q) const;

 private:
  std::vector<double> ring_;
  std::size_t next_ = 0;   ///< ring slot the next sample overwrites
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace tracon::obs
