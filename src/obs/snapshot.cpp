#include "obs/snapshot.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/jsonl.hpp"
#include "util/error.hpp"

namespace tracon::obs {

SnapshotSeries::SnapshotSeries(const MetricsRegistry& registry,
                               double interval_s)
    : registry_(&registry), interval_s_(interval_s) {
  TRACON_REQUIRE(interval_s > 0.0, "snapshot interval must be positive");
}

void SnapshotSeries::track_accuracy(const std::string& name,
                                    const WindowedAccuracy* window) {
  TRACON_REQUIRE(valid_metric_name(name),
                 "accuracy series name must be a dotted snake_case path");
  TRACON_REQUIRE(window != nullptr, "accuracy window must be non-null");
  accuracy_[name] = window;
}

void SnapshotSeries::sample(double now_s) {
  TRACON_CHECK_FINITE(now_s, "snapshot timestamp");
  TRACON_REQUIRE(now_s > last_sample_s_ || next_window_ == 0,
                 "snapshot timestamps must be strictly increasing");

  JsonLineWriter counters;
  for (const auto& [name, counter] : registry_->counters()) {
    std::uint64_t last = 0;
    if (auto it = last_counters_.find(name); it != last_counters_.end())
      last = it->second;
    TRACON_ASSERT(counter.value() >= last, "counter moved backwards");
    counters.field(name, counter.value() - last);
    last_counters_[name] = counter.value();
  }

  JsonLineWriter gauges;
  for (const auto& [name, gauge] : registry_->gauges())
    gauges.field(name, gauge.value());

  JsonLineWriter accuracy;
  for (const auto& [name, window] : accuracy_) {
    JsonLineWriter stats;
    stats.field("count", static_cast<std::uint64_t>(window->size()));
    stats.field("total", window->total());
    stats.field("mean_abs", window->mean_abs_error());
    stats.field("p50", window->quantile(0.5));
    stats.field("p90", window->quantile(0.9));
    accuracy.raw_field(name, stats.str());
  }

  records_.push_back(JsonLineWriter()
                         .field("window", next_window_)
                         .field("t_start", last_sample_s_)
                         .field("t_end", now_s)
                         .raw_field("counters", counters.str())
                         .raw_field("gauges", gauges.str())
                         .raw_field("accuracy", accuracy.str())
                         .str());
  last_sample_s_ = now_s;
  ++next_window_;
}

void SnapshotSeries::write(std::ostream& os) const {
  os << JsonLineWriter()
            .field("schema", kMetricsSeriesSchema)
            .field("version", kJsonlSchemaVersion)
            .field("interval_s", interval_s_)
            .str()
     << "\n";
  for (const std::string& record : records_) os << record << "\n";
}

std::string SnapshotSeries::str() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

namespace {

double number_field(const JsonValue& obj, const std::string& key,
                    const char* what) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    throw std::invalid_argument(std::string("metrics series ") + what +
                                " lacks numeric \"" + key + "\"");
  }
  return v->as_number();
}

void read_number_map(const JsonValue& record, const std::string& key,
                     std::map<std::string, double>* out) {
  const JsonValue* section = record.find(key);
  if (section == nullptr || !section->is_object()) {
    throw std::invalid_argument("metrics series record lacks \"" + key +
                                "\" object");
  }
  for (const auto& [name, value] : section->as_object()) {
    if (!value->is_number()) {
      throw std::invalid_argument("metrics series " + key + " entry \"" +
                                  name + "\" is not a number");
    }
    (*out)[name] = value->as_number();
  }
}

}  // namespace

MetricsSeries parse_metrics_series(std::istream& in) {
  MetricsSeries series;
  std::string line;
  bool have_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue obj = parse_json(line);
    if (!have_header) {
      series.version = require_schema(obj, kMetricsSeriesSchema);
      series.interval_s = number_field(obj, "interval_s", "header");
      have_header = true;
      continue;
    }
    SeriesWindow window;
    window.index =
        static_cast<std::uint64_t>(number_field(obj, "window", "record"));
    window.t_start = number_field(obj, "t_start", "record");
    window.t_end = number_field(obj, "t_end", "record");
    read_number_map(obj, "counters", &window.counters);
    read_number_map(obj, "gauges", &window.gauges);
    const JsonValue* accuracy = obj.find("accuracy");
    if (accuracy == nullptr || !accuracy->is_object()) {
      throw std::invalid_argument(
          "metrics series record lacks \"accuracy\" object");
    }
    for (const auto& [name, value] : accuracy->as_object()) {
      SeriesWindow::Accuracy stats;
      stats.count = number_field(*value, "count", "accuracy entry");
      stats.total = number_field(*value, "total", "accuracy entry");
      stats.mean_abs = number_field(*value, "mean_abs", "accuracy entry");
      stats.p50 = number_field(*value, "p50", "accuracy entry");
      stats.p90 = number_field(*value, "p90", "accuracy entry");
      window.accuracy[name] = stats;
    }
    series.windows.push_back(std::move(window));
  }
  if (!have_header) {
    throw std::invalid_argument("metrics series document has no header line");
  }
  return series;
}

MetricsSeries parse_metrics_series(const std::string& text) {
  std::istringstream in(text);
  return parse_metrics_series(in);
}

void write_metrics_series(std::ostream& os, const MetricsSeries& series) {
  os << JsonLineWriter()
            .field("schema", kMetricsSeriesSchema)
            .field("version", series.version)
            .field("interval_s", series.interval_s)
            .str()
     << "\n";
  for (const SeriesWindow& w : series.windows) {
    JsonLineWriter counters;
    for (const auto& [name, value] : w.counters)
      counters.field(name, static_cast<std::uint64_t>(value));
    JsonLineWriter gauges;
    for (const auto& [name, value] : w.gauges) gauges.field(name, value);
    JsonLineWriter accuracy;
    for (const auto& [name, stats] : w.accuracy) {
      JsonLineWriter entry;
      entry.field("count", static_cast<std::uint64_t>(stats.count));
      entry.field("total", static_cast<std::uint64_t>(stats.total));
      entry.field("mean_abs", stats.mean_abs);
      entry.field("p50", stats.p50);
      entry.field("p90", stats.p90);
      accuracy.raw_field(name, entry.str());
    }
    os << JsonLineWriter()
              .field("window", w.index)
              .field("t_start", w.t_start)
              .field("t_end", w.t_end)
              .raw_field("counters", counters.str())
              .raw_field("gauges", gauges.str())
              .raw_field("accuracy", accuracy.str())
              .str()
       << "\n";
  }
}

std::string metrics_series_str(const MetricsSeries& series) {
  std::ostringstream os;
  write_metrics_series(os, series);
  return os.str();
}

}  // namespace tracon::obs
