// Wall-clock scope profiling for the expensive kernels (NLS fit,
// stepwise selection, MIX rotation, host-sim advance).
//
// This is the ONE place in the library allowed to read a wall clock
// (tracon_lint exempts src/obs/scope_timer explicitly — see
// lint_rules.cpp). Profiling is opt-in: until
// ProfRegistry::global().set_enabled(true) a TRACON_PROF_SCOPE costs a
// single branch, and nothing wall-clock-dependent ever reaches the
// deterministic metrics/trace exports — the report is a separate,
// explicitly wall-clock stream (tracon --prof).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>

namespace tracon::obs {

struct ScopeStats {
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Process-wide profiling scope table. Scopes register on first use
/// (cheap, once per call site via a function-local static) and
/// accumulate only while enabled. Registration is mutex-guarded so
/// first-use from sharded worker threads is safe; ScopeStats
/// accumulation itself is NOT synchronized, which is why the CLI
/// rejects --prof combined with --threads > 1.
class ProfRegistry {
 public:
  static ProfRegistry& global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Get-or-create; the returned reference stays valid for the
  /// registry's lifetime. `name` must be a dotted snake_case path.
  ScopeStats& scope(const std::string& name);

  const std::map<std::string, ScopeStats>& scopes() const { return scopes_; }
  void reset();

  /// Human-readable table, scopes with calls first, sorted by total
  /// time descending.
  void write_text(std::ostream& os) const;

 private:
  std::atomic<bool> enabled_{false};
  std::mutex register_mutex_;
  std::map<std::string, ScopeStats> scopes_;
};

/// RAII timer accumulating into a ScopeStats slot; a nullptr slot
/// disarms it (the disabled-profiling fast path).
class ScopeTimer {
 public:
  explicit ScopeTimer(ScopeStats* stats) : stats_(stats) {
    if (stats_ != nullptr) start_ns_ = now_ns();
  }
  ~ScopeTimer() {
    if (stats_ != nullptr) stop();
  }
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

  /// Monotonic wall clock in nanoseconds (the obs-layer exemption).
  static std::uint64_t now_ns();

 private:
  void stop();

  ScopeStats* stats_;
  std::uint64_t start_ns_ = 0;
};

#define TRACON_PROF_CONCAT_INNER_(a, b) a##b
#define TRACON_PROF_CONCAT_(a, b) TRACON_PROF_CONCAT_INNER_(a, b)

/// Times the enclosing scope under `name` when profiling is enabled.
#define TRACON_PROF_SCOPE(name)                                            \
  static ::tracon::obs::ScopeStats& TRACON_PROF_CONCAT_(                   \
      tracon_prof_stats_, __LINE__) =                                      \
      ::tracon::obs::ProfRegistry::global().scope(name);                   \
  ::tracon::obs::ScopeTimer TRACON_PROF_CONCAT_(tracon_prof_timer_,        \
                                                __LINE__)(                 \
      ::tracon::obs::ProfRegistry::global().enabled()                      \
          ? &TRACON_PROF_CONCAT_(tracon_prof_stats_, __LINE__)             \
          : nullptr)

}  // namespace tracon::obs
