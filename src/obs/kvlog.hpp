// Structured one-line key=value logging on top of util/log.
//
// Library code that wants human-greppable AND machine-parseable log
// lines builds them with KvLine instead of ad-hoc stream insertion:
//
//   TRACON_KV_LOG(LogLevel::kDebug,
//                 KvLine("sched.mibs.batch").kv("window", w).kv("placed", n));
//
// emits `sched.mibs.batch window=8 placed=5`. The macro only evaluates
// (and allocates) the line when the level is enabled. Event names are
// dotted snake_case paths, same rule as metric names.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

#include "util/log.hpp"

namespace tracon::obs {

class KvLine {
 public:
  explicit KvLine(std::string_view event);

  KvLine& kv(std::string_view key, std::string_view value);
  KvLine& kv(std::string_view key, const char* value) {
    return kv(key, std::string_view(value));
  }
  KvLine& kv(std::string_view key, double value);
  template <class T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  KvLine& kv(std::string_view key, T value) {
    return kv_int(key, static_cast<std::int64_t>(value),
                  std::is_unsigned_v<T>);
  }

  const std::string& text() const { return line_; }
  void emit(LogLevel level) const { Log::write(level, line_); }

 private:
  KvLine& kv_int(std::string_view key, std::int64_t value, bool is_unsigned);

  std::string line_;
};

/// Builds and emits `line_expr` only when `level` is enabled.
#define TRACON_KV_LOG(level, line_expr)                 \
  do {                                                  \
    if (::tracon::Log::enabled(level)) {                \
      (line_expr).emit(level);                          \
    }                                                   \
  } while (false)

}  // namespace tracon::obs
