#include "obs/jsonl.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>

#include "obs/json.hpp"

namespace tracon::obs {

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  char buf[32];
  auto result = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, result.ptr);
}

void JsonLineWriter::key(std::string_view k) {
  if (!first_) body_ += ", ";
  first_ = false;
  body_ += '"';
  body_ += json_escape(k);
  body_ += "\": ";
}

JsonLineWriter& JsonLineWriter::field(std::string_view k,
                                      std::string_view value) {
  key(k);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

JsonLineWriter& JsonLineWriter::field(std::string_view k, const char* value) {
  return field(k, std::string_view(value));
}

JsonLineWriter& JsonLineWriter::field(std::string_view k, double value) {
  key(k);
  // Shortest round-trip representation (std::to_chars default): the
  // parsed double is bit-identical to `value`, which is what lets a
  // replayed trace reproduce its recording exactly — %.10g would
  // quantize arrival times and quietly fork the two simulations.
  char buf[32];
  auto result = std::to_chars(buf, buf + sizeof(buf), value);
  body_.append(buf, result.ptr);
  return *this;
}

JsonLineWriter& JsonLineWriter::field(std::string_view k,
                                      std::uint64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonLineWriter& JsonLineWriter::field(std::string_view k, int value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonLineWriter& JsonLineWriter::raw_field(std::string_view k,
                                          std::string_view json) {
  key(k);
  body_ += json;
  return *this;
}

std::string JsonLineWriter::str() const { return body_ + "}"; }

int require_schema(const JsonValue& header, std::string_view schema) {
  if (!header.is_object()) {
    throw std::invalid_argument("jsonl header is not a JSON object");
  }
  const JsonValue* s = header.find("schema");
  if (s == nullptr || !s->is_string() || s->as_string() != schema) {
    throw std::invalid_argument("jsonl header schema mismatch: expected \"" +
                                std::string(schema) + "\"");
  }
  const JsonValue* v = header.find("version");
  if (v == nullptr || !v->is_number()) {
    throw std::invalid_argument("jsonl header missing integer version");
  }
  int version = static_cast<int>(v->as_number());
  if (version < 1 || version > kJsonlSchemaVersion) {
    throw std::invalid_argument("unsupported jsonl schema version " +
                                std::to_string(version));
  }
  return version;
}

}  // namespace tracon::obs
