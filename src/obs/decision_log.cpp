#include "obs/decision_log.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/json.hpp"
#include "obs/jsonl.hpp"
#include "util/error.hpp"

namespace tracon::obs {

namespace {

// An empty machine is spelled as the string "empty" so a candidate's
// co-runner column is never confused with app class 0.
std::string neighbour_json(const std::optional<std::size_t>& neighbour) {
  if (!neighbour.has_value()) return "\"empty\"";
  return std::to_string(*neighbour);
}

std::string number_array(const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += json_number(values[i]);
  }
  out += "]";
  return out;
}

std::string string_array(const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += '"';
    out += json_escape(values[i]);
    out += '"';
  }
  out += "]";
  return out;
}

std::string header_line(int version,
                        const std::map<std::string, std::string>& fingerprint) {
  JsonLineWriter stamp;
  for (const auto& [key, value] : fingerprint) stamp.field(key, value);
  return JsonLineWriter()
      .field("schema", kDecisionLogSchema)
      .field("version", version)
      .raw_field("fingerprint", stamp.str())
      .str();
}

// Shared by DecisionLog::write and write_decision_log so the recorded
// stream and a re-emitted merged stream are byte-compatible.
std::string event_line(const DecisionEvent& e) {
  JsonLineWriter w;
  if (e.kind == DecisionEvent::Kind::kDecision) {
    w.field("kind", "decision");
    w.field("task", e.task);
    w.field("t", e.time_s);
    w.field("app", static_cast<std::uint64_t>(e.app));
    w.field("scheduler", e.scheduler);
    w.field("objective", e.objective);
    w.raw_field("families", string_array(e.families));
    w.raw_field("weights", number_array(e.weights));
    std::string candidates = "[";
    for (std::size_t i = 0; i < e.candidates.size(); ++i) {
      const DecisionCandidate& c = e.candidates[i];
      if (i != 0) candidates += ", ";
      candidates += JsonLineWriter()
                        .raw_field("neighbour", neighbour_json(c.neighbour))
                        .field("score", c.score)
                        .raw_field("by_family", number_array(c.by_family))
                        .str();
    }
    candidates += "]";
    w.raw_field("candidates", candidates);
    w.field("chosen", static_cast<std::uint64_t>(e.chosen));
    w.field("margin", e.margin);
    w.field("predicted_runtime_s", e.predicted_runtime_s);
    w.field("predicted_iops", e.predicted_iops);
    if (e.machine != DecisionEvent::kNoMachine) {
      w.field("machine", static_cast<std::uint64_t>(e.machine));
    }
  } else if (e.kind == DecisionEvent::Kind::kMigration) {
    w.field("kind", "migration");
    w.field("task", e.task);
    w.field("t", e.time_s);
    w.field("app", static_cast<std::uint64_t>(e.app));
    w.field("from_machine", static_cast<std::uint64_t>(e.from_machine));
    w.raw_field("from_neighbour", neighbour_json(e.from_neighbour));
    w.field("machine", static_cast<std::uint64_t>(e.machine));
    w.raw_field("neighbour", neighbour_json(e.neighbour));
    w.field("predicted_stay_s", e.predicted_stay_s);
    w.field("predicted_move_s", e.predicted_move_s);
    w.field("downtime_s", e.downtime_s);
    w.field("copy_s", e.copy_s);
    w.field("cost_s", e.cost_s);
    w.field("margin", e.margin);
  } else {
    w.field("kind", "outcome");
    w.field("task", e.task);
    w.field("t", e.time_s);
    w.field("app", static_cast<std::uint64_t>(e.app));
    w.raw_field("neighbour", neighbour_json(e.neighbour));
    w.field("runtime_s", e.runtime_s);
    w.field("iops", e.iops);
    w.field("solo_runtime_s", e.solo_runtime_s);
    if (e.machine != DecisionEvent::kNoMachine) {
      w.field("machine", static_cast<std::uint64_t>(e.machine));
    }
  }
  return w.str();
}

double number_field(const JsonValue& obj, const std::string& key,
                    const char* what) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    throw std::invalid_argument(std::string("decision log ") + what +
                                " lacks numeric \"" + key + "\"");
  }
  return v->as_number();
}

std::string string_field(const JsonValue& obj, const std::string& key,
                         const char* what) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_string()) {
    throw std::invalid_argument(std::string("decision log ") + what +
                                " lacks string \"" + key + "\"");
  }
  return v->as_string();
}

std::optional<std::size_t> neighbour_field(const JsonValue& obj,
                                           const char* what) {
  const JsonValue* v = obj.find("neighbour");
  if (v != nullptr && v->is_string() && v->as_string() == "empty") {
    return std::nullopt;
  }
  if (v != nullptr && v->is_number()) {
    return static_cast<std::size_t>(v->as_number());
  }
  throw std::invalid_argument(std::string("decision log ") + what +
                              " \"neighbour\" must be \"empty\" or a number");
}

std::vector<double> number_array_field(const JsonValue& obj,
                                       const std::string& key,
                                       const char* what) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_array()) {
    throw std::invalid_argument(std::string("decision log ") + what +
                                " lacks array \"" + key + "\"");
  }
  std::vector<double> out;
  out.reserve(v->as_array().size());
  for (const auto& entry : v->as_array()) {
    if (!entry->is_number()) {
      throw std::invalid_argument("decision log " + key +
                                  " entry is not a number");
    }
    out.push_back(entry->as_number());
  }
  return out;
}

DecisionEvent parse_event(const JsonValue& obj) {
  DecisionEvent e;
  const std::string kind = string_field(obj, "kind", "record");
  e.task = static_cast<std::uint64_t>(number_field(obj, "task", "record"));
  e.time_s = number_field(obj, "t", "record");
  e.app = static_cast<std::size_t>(number_field(obj, "app", "record"));
  if (const JsonValue* m = obj.find("machine"); m != nullptr) {
    if (!m->is_number()) {
      throw std::invalid_argument("decision log \"machine\" is not a number");
    }
    e.machine = static_cast<std::size_t>(m->as_number());
  }
  if (kind == "decision") {
    e.kind = DecisionEvent::Kind::kDecision;
    e.scheduler = string_field(obj, "scheduler", "decision");
    e.objective = string_field(obj, "objective", "decision");
    const JsonValue* families = obj.find("families");
    if (families == nullptr || !families->is_array()) {
      throw std::invalid_argument("decision record lacks \"families\" array");
    }
    for (const auto& name : families->as_array()) {
      if (!name->is_string()) {
        throw std::invalid_argument("decision family name is not a string");
      }
      e.families.push_back(name->as_string());
    }
    e.weights = number_array_field(obj, "weights", "decision");
    const JsonValue* candidates = obj.find("candidates");
    if (candidates == nullptr || !candidates->is_array()) {
      throw std::invalid_argument(
          "decision record lacks \"candidates\" array");
    }
    for (const auto& entry : candidates->as_array()) {
      DecisionCandidate c;
      c.neighbour = neighbour_field(*entry, "candidate");
      c.score = number_field(*entry, "score", "candidate");
      c.by_family = number_array_field(*entry, "by_family", "candidate");
      e.candidates.push_back(std::move(c));
    }
    e.chosen =
        static_cast<std::size_t>(number_field(obj, "chosen", "decision"));
    if (e.chosen >= e.candidates.size()) {
      throw std::invalid_argument(
          "decision record \"chosen\" is out of candidate range");
    }
    e.margin = number_field(obj, "margin", "decision");
    e.predicted_runtime_s =
        number_field(obj, "predicted_runtime_s", "decision");
    e.predicted_iops = number_field(obj, "predicted_iops", "decision");
  } else if (kind == "migration") {
    e.kind = DecisionEvent::Kind::kMigration;
    e.from_machine =
        static_cast<std::size_t>(number_field(obj, "from_machine", "migration"));
    const JsonValue* from_nb = obj.find("from_neighbour");
    if (from_nb != nullptr && from_nb->is_string() &&
        from_nb->as_string() == "empty") {
      e.from_neighbour = std::nullopt;
    } else if (from_nb != nullptr && from_nb->is_number()) {
      e.from_neighbour = static_cast<std::size_t>(from_nb->as_number());
    } else {
      throw std::invalid_argument(
          "decision log migration \"from_neighbour\" must be \"empty\" or a "
          "number");
    }
    e.neighbour = neighbour_field(obj, "migration");
    e.predicted_stay_s = number_field(obj, "predicted_stay_s", "migration");
    e.predicted_move_s = number_field(obj, "predicted_move_s", "migration");
    e.downtime_s = number_field(obj, "downtime_s", "migration");
    e.copy_s = number_field(obj, "copy_s", "migration");
    e.cost_s = number_field(obj, "cost_s", "migration");
    e.margin = number_field(obj, "margin", "migration");
  } else if (kind == "outcome") {
    e.kind = DecisionEvent::Kind::kOutcome;
    e.neighbour = neighbour_field(obj, "outcome");
    e.runtime_s = number_field(obj, "runtime_s", "outcome");
    e.iops = number_field(obj, "iops", "outcome");
    e.solo_runtime_s = number_field(obj, "solo_runtime_s", "outcome");
  } else {
    throw std::invalid_argument("decision log record has unknown kind \"" +
                                kind + "\"");
  }
  return e;
}

}  // namespace

void DecisionLog::record_decision(DecisionEvent event) {
  if (!enabled_) return;
  TRACON_REQUIRE(event.chosen < event.candidates.size(),
                 "decision's chosen index must address a scanned candidate");
  event.kind = DecisionEvent::Kind::kDecision;
  decision_index_[event.task] = events_.size();
  events_.push_back(std::move(event));
}

void DecisionLog::bind_machine(std::uint64_t task, std::size_t machine) {
  if (!enabled_) return;
  auto it = decision_index_.find(task);
  if (it == decision_index_.end()) return;
  events_[it->second].machine = machine;
}

void DecisionLog::record_migration(DecisionEvent event) {
  if (!enabled_) return;
  TRACON_REQUIRE(event.machine != DecisionEvent::kNoMachine &&
                     event.from_machine != DecisionEvent::kNoMachine,
                 "migration record must carry both host ids");
  TRACON_REQUIRE(event.machine != event.from_machine,
                 "migration source and destination must differ");
  event.kind = DecisionEvent::Kind::kMigration;
  events_.push_back(std::move(event));
}

void DecisionLog::record_outcome(DecisionEvent event) {
  if (!enabled_) return;
  event.kind = DecisionEvent::Kind::kOutcome;
  events_.push_back(std::move(event));
}

void DecisionLog::append(DecisionEvent event) {
  events_.push_back(std::move(event));
}

void DecisionLog::set_fingerprint(const std::string& key,
                                  const std::string& value) {
  fingerprint_[key] = value;
}

void DecisionLog::write(std::ostream& os) const {
  os << header_line(kJsonlSchemaVersion, fingerprint_) << "\n";
  for (const DecisionEvent& e : events_) os << event_line(e) << "\n";
}

std::string DecisionLog::str() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

DecisionDoc parse_decision_log(std::istream& in) {
  DecisionDoc doc;
  std::string line;
  bool have_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue obj = parse_json(line);
    if (!have_header) {
      doc.version = require_schema(obj, kDecisionLogSchema);
      const JsonValue* fingerprint = obj.find("fingerprint");
      if (fingerprint == nullptr || !fingerprint->is_object()) {
        throw std::invalid_argument(
            "decision log header lacks \"fingerprint\" object");
      }
      for (const auto& [key, value] : fingerprint->as_object()) {
        if (!value->is_string()) {
          throw std::invalid_argument("decision log fingerprint entry \"" +
                                      key + "\" is not a string");
        }
        doc.fingerprint[key] = value->as_string();
      }
      have_header = true;
      continue;
    }
    doc.events.push_back(parse_event(obj));
  }
  if (!have_header) {
    throw std::invalid_argument("decision log document has no header line");
  }
  return doc;
}

DecisionDoc parse_decision_log(const std::string& text) {
  std::istringstream in(text);
  return parse_decision_log(in);
}

void write_decision_log(std::ostream& os, const DecisionDoc& doc) {
  os << header_line(doc.version, doc.fingerprint) << "\n";
  for (const DecisionEvent& e : doc.events) os << event_line(e) << "\n";
}

std::string decision_log_str(const DecisionDoc& doc) {
  std::ostringstream os;
  write_decision_log(os, doc);
  return os.str();
}

}  // namespace tracon::obs
