// Task-lifecycle spans: SpanLog records *where* every second of a
// task's end-to-end latency went — queue wait, running epochs (one per
// co-runner change, stamping the interference factor in force),
// migration freeze/copy windows — as contiguous spans that tile
// [enqueue, complete] exactly. Spans join the decision log by task id,
// so "why was this placed here" (DecisionLog) and "what did that
// placement cost" (SpanLog) are two views of the same task.
//
// The stream is schema-versioned `tracon.spans` JSONL: one header line
// carrying the fingerprint block, then one record per span in
// virtual-time order. Five record kinds share the stream:
//   {"kind": "queued", ...}           the task sat in the manager's
//       bounded queue from t0 (arrival) to t1 (placement);
//   {"kind": "running", ...}          one co-runner epoch: the task ran
//       on `machine` next to `neighbour` at interference speed `factor`
//       (progress per wall second, <= ~1) for [t0, t1);
//   {"kind": "migration_copy", ...}   a running epoch overlapped by a
//       live-migration copy window — progress drops to
//       factor * copy_factor while both hosts carry the copy I/O;
//   {"kind": "migration_freeze", ...} the stop-and-copy pause: the task
//       makes no progress at all;
//   {"kind": "completed", ...}        zero-length marker at completion,
//       carrying the solo runtime for slowdown reference.
//
// The latency decomposition (obs::breakdown) is fixed per kind so the
// components tile each span's duration d = t1 - t0 exactly:
//   queued:           wait         += d
//   running:          solo         += d * factor
//                     interference += d * (1 - factor)
//   migration_copy:   solo         += d * factor * copy_factor
//                     interference += d * (1 - factor)
//                     migration    += d * factor * (1 - copy_factor)
//   migration_freeze: migration    += d
// Summing over a task's spans, wait + solo + interference + migration
// equals complete - enqueue up to floating-point rounding (the
// validator enforces 1e-9).
//
// Determinism contract (DESIGN.md §6i): timestamps come from the
// virtual clock only, doubles go through the shortest round-trip
// writer, and the sharded runner merges per-shard logs by re-indexing
// machine/task ids and stable-sorting on span start — `--threads N`
// writes byte-identical logs to `--threads 1`. Recording is gated on
// enabled(): when off, every record call returns immediately and no
// simulation output changes by a byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tracon::obs {

inline constexpr std::string_view kSpanLogSchema = "tracon.spans";

/// One contiguous segment of a task's lifecycle. Zero-length segments
/// (t1 == t0) are suppressed at record time except the `completed`
/// marker, which is zero-length by definition (t0 == t1 == completion).
struct SpanEvent {
  enum class Kind {
    kQueued,
    kRunning,
    kMigrationFreeze,
    kMigrationCopy,
    kCompleted,
  };

  /// Sentinel for "no machine" (queued spans).
  static constexpr std::size_t kNoMachine = static_cast<std::size_t>(-1);

  Kind kind = Kind::kQueued;
  std::uint64_t task = 0;
  double t0_s = 0.0;
  double t1_s = 0.0;
  std::size_t app = 0;
  std::size_t machine = kNoMachine;  ///< all kinds except queued
  /// Co-runner app class during a running/copy epoch; nullopt when the
  /// task had the machine to itself.
  std::optional<std::size_t> neighbour;
  /// Interference speed in force (progress per wall second next to
  /// `neighbour`; usually <= 1, slightly above when a pairing outpaces
  /// solo and the interference penalty becomes a credit). Running and
  /// migration_copy spans only.
  double factor = 1.0;
  /// Extra slowdown from the live-migration copy window (1 -
  /// copy_interference). migration_copy spans only.
  double copy_factor = 1.0;
  /// Solo reference runtime, stamped on the completed marker.
  double solo_runtime_s = 0.0;
};

/// Append-only recorder owned by obs::Telemetry. All record calls are
/// no-ops until set_enabled(true); the simulator probes it through the
/// nullable Telemetry* it already carries, so the log is zero-cost
/// when off.
class SpanLog {
 public:
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Appends one span. Zero-length segments are dropped (they carry no
  /// time) unless they are the `completed` marker; t1 < t0 is a
  /// contract violation.
  void record(SpanEvent event);

  /// Appends a pre-built span verbatim — the sharded merge path, after
  /// re-indexing ids. Ignores the enabled gate and keeps zero-length
  /// spans as given.
  void append(SpanEvent event);

  std::size_t size() const { return events_.size(); }
  const std::vector<SpanEvent>& events() const { return events_; }

  /// Reproducibility stamp emitted in the header line. Deliberately
  /// excludes the thread count so logs stay byte-comparable across
  /// `--threads` values.
  void set_fingerprint(const std::string& key, const std::string& value);
  const std::map<std::string, std::string>& fingerprint() const {
    return fingerprint_;
  }

  /// Header line plus one record per span, in append order.
  void write(std::ostream& os) const;
  std::string str() const;

 private:
  bool enabled_ = false;
  std::vector<SpanEvent> events_;
  std::map<std::string, std::string> fingerprint_;
};

/// Parsed span-log document, as read back by obs::breakdown, `tracon
/// explain`, and telemetry_check.
struct SpanDoc {
  int version = 0;
  std::map<std::string, std::string> fingerprint;
  std::vector<SpanEvent> events;
};

/// Parses a document as written by SpanLog::write. Throws
/// std::invalid_argument on a foreign schema or malformed records.
SpanDoc parse_span_log(std::istream& in);
SpanDoc parse_span_log(const std::string& text);

/// Re-emits a parsed (or programmatically merged) document in the
/// exact byte format SpanLog::write produces — the sharded runner
/// publishes its merged log through this writer so the result is
/// byte-comparable across thread counts.
void write_span_log(std::ostream& os, const SpanDoc& doc);
std::string span_log_str(const SpanDoc& doc);

}  // namespace tracon::obs
