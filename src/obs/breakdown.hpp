// Latency accounting: decomposes every task's end-to-end latency into
// wait + solo runtime + interference penalty + migration overhead from
// the span log, using the per-kind arithmetic fixed in span_log.hpp —
// the four components tile [enqueue, complete] exactly (within
// floating-point rounding; the validator enforces 1e-9). On top of the
// per-task rows it aggregates overall, per app class, and per
// completion-time window, and extracts the makespan critical path: the
// chain of task spans and host busy intervals that bounds the last
// completion.
//
// Everything here is a pure function of the parsed SpanDoc: maps
// iterate in key order and ties break on task id, so the same log
// always yields the same report — `tracon breakdown --json` is
// byte-deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "obs/span_log.hpp"

namespace tracon::obs {

/// Where one task's seconds went. end_to_end() is the span chain's
/// extent; the four components sum to it by construction.
struct TaskBreakdown {
  std::uint64_t task = 0;
  std::size_t app = 0;
  double enqueue_s = 0.0;   ///< first span's start (arrival acceptance)
  double complete_s = 0.0;  ///< last span's end
  bool completed = false;   ///< has a `completed` marker
  double wait_s = 0.0;
  double solo_s = 0.0;
  double interference_s = 0.0;
  double migration_s = 0.0;
  double solo_runtime_s = 0.0;  ///< reference, from the completed marker
  /// Machine of the first running span (where the task was placed).
  std::size_t machine = SpanEvent::kNoMachine;
  /// Start of the first non-queued span; equals complete_s for tasks
  /// that never left the queue.
  double start_s = 0.0;

  double end_to_end_s() const { return complete_s - enqueue_s; }
};

/// Component sums over a set of tasks.
struct BreakdownCell {
  std::uint64_t tasks = 0;
  double wait_s = 0.0;
  double solo_s = 0.0;
  double interference_s = 0.0;
  double migration_s = 0.0;

  double end_to_end_s() const {
    return wait_s + solo_s + interference_s + migration_s;
  }
};

struct BreakdownReport {
  /// Per-task rows for *completed* tasks, task id ascending.
  std::vector<TaskBreakdown> rows;
  /// Tasks with spans but no completed marker (still queued/running at
  /// the horizon); excluded from all aggregates.
  std::uint64_t incomplete = 0;
  BreakdownCell total;
  std::map<std::size_t, BreakdownCell> by_app;
  /// Completion-time windows (index -> cell), window i covering
  /// [i * window_s, (i+1) * window_s). Empty when window_s == 0.
  std::map<std::uint64_t, BreakdownCell> by_window;
  double window_s = 0.0;
};

/// Builds the report. `window_s > 0` adds the per-window aggregation.
/// Throws std::invalid_argument when a task's spans do not form a
/// monotone contiguous chain (the validator's tiling contract).
BreakdownReport breakdown(const SpanDoc& doc, double window_s = 0.0);

/// One link of the makespan critical path.
struct CriticalPathEntry {
  std::uint64_t task = 0;
  std::size_t app = 0;
  std::size_t machine = SpanEvent::kNoMachine;
  double enqueue_s = 0.0;
  double start_s = 0.0;
  double complete_s = 0.0;
  double wait_s = 0.0;
};

/// Walks back from the last completion: while the current task waited
/// in queue, the chain continues from the task on its placement
/// machine whose completion most recently preceded the placement (the
/// busy interval that held the slot). Stops at an arrival-bound task
/// (zero wait) or when no predecessor exists. Entries are returned in
/// chronological order, the makespan-defining task last.
std::vector<CriticalPathEntry> critical_path(const SpanDoc& doc);

}  // namespace tracon::obs
