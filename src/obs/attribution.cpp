#include "obs/attribution.hpp"

#include <algorithm>
#include <cmath>

#include "obs/accuracy.hpp"

namespace tracon::obs {

AttributionReport attribute(const DecisionDoc& doc) {
  AttributionReport report;

  // Last decision wins per task id, matching DecisionLog's index.
  std::map<std::uint64_t, std::size_t> decision_by_task;
  std::uint64_t total_candidates = 0;
  for (std::size_t i = 0; i < doc.events.size(); ++i) {
    const DecisionEvent& e = doc.events[i];
    if (e.kind == DecisionEvent::Kind::kDecision) {
      ++report.decisions;
      total_candidates += e.candidates.size();
      decision_by_task[e.task] = i;
    }
  }
  if (report.decisions > 0) {
    report.mean_candidates = static_cast<double>(total_candidates) /
                             static_cast<double>(report.decisions);
  }

  double total_abs_runtime_error = 0.0;
  double total_abs_iops_error = 0.0;
  for (const DecisionEvent& e : doc.events) {
    if (e.kind != DecisionEvent::Kind::kOutcome) continue;
    ++report.outcomes;
    auto it = decision_by_task.find(e.task);
    if (it == decision_by_task.end()) continue;  // e.g. FIFO placements
    const DecisionEvent& d = doc.events[it->second];

    AttributionRow row;
    row.task = e.task;
    row.decided_at_s = d.time_s;
    row.completed_at_s = e.time_s;
    row.app = e.app;
    row.neighbour = e.neighbour;
    row.machine = e.machine;
    row.scheduler = d.scheduler;
    row.candidates = d.candidates.size();
    row.margin = d.margin;
    row.predicted_runtime_s = d.predicted_runtime_s;
    row.runtime_s = e.runtime_s;
    row.runtime_error = relative_error(d.predicted_runtime_s, e.runtime_s);
    row.predicted_iops = d.predicted_iops;
    row.iops = e.iops;
    row.iops_error = relative_error(d.predicted_iops, e.iops);
    row.realized_slowdown =
        e.solo_runtime_s > 0.0 ? e.runtime_s / e.solo_runtime_s : 0.0;

    total_abs_runtime_error += std::abs(row.runtime_error);
    total_abs_iops_error += std::abs(row.iops_error);

    PairCell& cell = report.pairs[{row.app, row.neighbour}];
    ++cell.count;
    cell.total_slowdown += row.realized_slowdown;
    cell.total_abs_runtime_error += std::abs(row.runtime_error);

    ++report.joined;
    report.rows.push_back(std::move(row));
  }
  if (report.joined > 0) {
    total_abs_runtime_error /= static_cast<double>(report.joined);
    total_abs_iops_error /= static_cast<double>(report.joined);
    report.mean_abs_runtime_error = total_abs_runtime_error;
    report.mean_abs_iops_error = total_abs_iops_error;
  }

  report.mispredict_order.resize(report.rows.size());
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    report.mispredict_order[i] = i;
  }
  std::sort(report.mispredict_order.begin(), report.mispredict_order.end(),
            [&report](std::size_t a, std::size_t b) {
              const double ea = std::abs(report.rows[a].runtime_error);
              const double eb = std::abs(report.rows[b].runtime_error);
              if (ea != eb) return ea > eb;
              return report.rows[a].task < report.rows[b].task;
            });

  return report;
}

}  // namespace tracon::obs
