// Interference attribution: joins the decision log's placement
// decisions to the completions they produced (by task id) and reduces
// the pairs to the three views the CLI surfaces:
//   - per-decision prediction error (predicted vs realized runtime and
//     IOPS, via the shared relative_error definition),
//   - a per-co-location-pair realized-slowdown heatmap keyed on
//     (task app class, realized co-runner),
//   - a mispredict ranking, worst absolute runtime error first.
//
// Everything here is a pure function of the parsed DecisionDoc: maps
// iterate in key order and ties break on task id, so the same log
// always yields the same report — `tracon attribution --json` is
// byte-deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/decision_log.hpp"

namespace tracon::obs {

/// One decision joined to its outcome.
struct AttributionRow {
  std::uint64_t task = 0;
  double decided_at_s = 0.0;
  double completed_at_s = 0.0;
  std::size_t app = 0;
  std::optional<std::size_t> neighbour;  ///< realized co-runner
  std::size_t machine = DecisionEvent::kNoMachine;
  std::string scheduler;
  std::size_t candidates = 0;  ///< candidate-set size at decision time
  double margin = 0.0;
  double predicted_runtime_s = 0.0;
  double runtime_s = 0.0;
  double runtime_error = 0.0;  ///< relative_error(predicted, realized)
  double predicted_iops = 0.0;
  double iops = 0.0;
  double iops_error = 0.0;
  double realized_slowdown = 0.0;  ///< runtime / solo runtime
};

/// Aggregate for one (app, co-runner) cell of the heatmap.
struct PairCell {
  std::uint64_t count = 0;
  double total_slowdown = 0.0;
  double total_abs_runtime_error = 0.0;

  double mean_slowdown() const {
    return count == 0 ? 0.0 : total_slowdown / static_cast<double>(count);
  }
  double mean_abs_runtime_error() const {
    return count == 0 ? 0.0
                      : total_abs_runtime_error / static_cast<double>(count);
  }
};

using PairKey = std::pair<std::size_t, std::optional<std::size_t>>;

struct AttributionReport {
  std::uint64_t decisions = 0;  ///< decision records in the log
  std::uint64_t outcomes = 0;   ///< outcome records in the log
  std::uint64_t joined = 0;     ///< decisions matched to an outcome
  double mean_candidates = 0.0;          ///< over all decisions
  double mean_abs_runtime_error = 0.0;   ///< over joined rows
  double mean_abs_iops_error = 0.0;      ///< over joined rows
  std::vector<AttributionRow> rows;      ///< completion order
  /// Row indices sorted by |runtime_error| descending, task ascending.
  std::vector<std::size_t> mispredict_order;
  std::map<PairKey, PairCell> pairs;  ///< (app, co-runner) heatmap
};

/// Builds the report. Pure and deterministic: same doc, same bytes out
/// of any serializer that walks it in order.
AttributionReport attribute(const DecisionDoc& doc);

}  // namespace tracon::obs
