#include "obs/json.hpp"

#include <cstdlib>
#include <stdexcept>

namespace tracon::obs {

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw std::logic_error("json: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) throw std::logic_error("json: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw std::logic_error("json: not a string");
  return string_;
}

const std::vector<JsonValuePtr>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) throw std::logic_error("json: not an array");
  return array_;
}

const std::map<std::string, JsonValuePtr>& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) throw std::logic_error("json: not an object");
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : it->second.get();
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const char* what) const {
    throw std::invalid_argument(std::string("json parse error at offset ") +
                                std::to_string(pos) + ": " + what);
  }

  bool at_end() const { return pos >= text.size(); }
  char peek() const { return at_end() ? '\0' : text[pos]; }

  void skip_ws() {
    while (!at_end() && (text[pos] == ' ' || text[pos] == '\t' ||
                         text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos;
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  std::string parse_string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      char c = text[pos++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) fail("unterminated escape");
      char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
    return out;
  }

  JsonValue parse_value() {
    skip_ws();
    if (at_end()) fail("unexpected end of input");
    JsonValue v;
    char c = peek();
    if (c == '{') {
      ++pos;
      v.kind_ = JsonValue::Kind::kObject;
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return v;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string_body();
        skip_ws();
        expect(':');
        v.object_[key] = std::make_shared<JsonValue>(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        break;
      }
      return v;
    }
    if (c == '[') {
      ++pos;
      v.kind_ = JsonValue::Kind::kArray;
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return v;
      }
      while (true) {
        v.array_.push_back(std::make_shared<JsonValue>(parse_value()));
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        break;
      }
      return v;
    }
    if (c == '"') {
      v.kind_ = JsonValue::Kind::kString;
      v.string_ = parse_string_body();
      return v;
    }
    if (consume_literal("true")) {
      v.kind_ = JsonValue::Kind::kBool;
      v.bool_ = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind_ = JsonValue::Kind::kBool;
      v.bool_ = false;
      return v;
    }
    if (consume_literal("null")) {
      v.kind_ = JsonValue::Kind::kNull;
      return v;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      // strtod needs a NUL-terminated buffer; copy the number's span.
      std::size_t end = pos;
      while (end < text.size() &&
             (text[end] == '-' || text[end] == '+' || text[end] == '.' ||
              text[end] == 'e' || text[end] == 'E' ||
              (text[end] >= '0' && text[end] <= '9'))) {
        ++end;
      }
      std::string num(text.substr(pos, end - pos));
      char* parse_end = nullptr;
      double parsed = std::strtod(num.c_str(), &parse_end);
      if (parse_end == num.c_str()) fail("malformed number");
      pos += static_cast<std::size_t>(parse_end - num.c_str());
      v.kind_ = JsonValue::Kind::kNumber;
      v.number_ = parsed;
      return v;
    }
    fail("unexpected token");
  }
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  Parser parser{text};
  JsonValue v = parser.parse_value();
  parser.skip_ws();
  if (!parser.at_end()) parser.fail("trailing garbage after document");
  return v;
}

}  // namespace tracon::obs
