#include "obs/event_tracer.hpp"

#include <ostream>

#include "obs/metrics.hpp"

namespace tracon::obs {

std::string trace_event_kind_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kTaskArrival: return "sim.task.arrival";
    case TraceEventKind::kTaskDropped: return "sim.task.dropped";
    case TraceEventKind::kTaskPlaced: return "sim.task.placed";
    case TraceEventKind::kTaskCompleted: return "sim.task.completed";
    case TraceEventKind::kVmStart: return "sim.vm.start";
    case TraceEventKind::kVmStop: return "sim.vm.stop";
    case TraceEventKind::kSchedDecision: return "sched.decision";
    case TraceEventKind::kModelRetrain: return "model.retrain";
    case TraceEventKind::kModelDrift: return "model.drift";
  }
  return "unknown";
}

namespace {

/// pid 0 hosts the per-machine timelines; pid 1 the control plane
/// (queue, scheduler, model) so Perfetto groups them separately.
constexpr int kHostsPid = 0;
constexpr int kControlPid = 1;

bool machine_scoped(const TraceEvent& ev) {
  return ev.machine != TraceEvent::kNone;
}

void write_args_json(std::ostream& os, const TraceEvent& ev) {
  os << "{";
  bool first = true;
  auto field = [&](const char* key, const std::string& value) {
    os << (first ? "" : ", ") << "\"" << key << "\": " << value;
    first = false;
  };
  if (ev.app != TraceEvent::kNone) field("app", std::to_string(ev.app));
  if (ev.machine != TraceEvent::kNone) {
    field("machine", std::to_string(ev.machine));
  }
  field("count", std::to_string(ev.count));
  field("value", format_double(ev.value));
  field("value2", format_double(ev.value2));
  os << "}";
}

}  // namespace

void EventTracer::write_chrome_json(std::ostream& os) const {
  os << "{\"traceEvents\": [\n";
  os << "  {\"ph\": \"M\", \"pid\": " << kHostsPid
     << ", \"tid\": 0, \"name\": \"process_name\", "
        "\"args\": {\"name\": \"hosts\"}},\n";
  os << "  {\"ph\": \"M\", \"pid\": " << kControlPid
     << ", \"tid\": 0, \"name\": \"process_name\", "
        "\"args\": {\"name\": \"control\"}}";
  for (const TraceEvent& ev : events_) {
    os << ",\n  {";
    if (ev.kind == TraceEventKind::kTaskCompleted &&
        ev.machine != TraceEvent::kNone) {
      // The completed task becomes a duration slice covering its whole
      // residence on the machine (value = realized runtime in seconds).
      double start_us = (ev.time_s - ev.value) * 1e6;
      os << "\"ph\": \"X\", \"name\": \"app_" << ev.app << "\", "
         << "\"cat\": \"task\", \"ts\": " << format_double(start_us)
         << ", \"dur\": " << format_double(ev.value * 1e6)
         << ", \"pid\": " << kHostsPid << ", \"tid\": " << ev.machine;
    } else {
      int pid = machine_scoped(ev) ? kHostsPid : kControlPid;
      std::size_t tid = machine_scoped(ev) ? ev.machine : 0;
      os << "\"ph\": \"i\", \"s\": \"t\", \"name\": \""
         << trace_event_kind_name(ev.kind) << "\", \"cat\": \"sim\", "
         << "\"ts\": " << format_double(ev.time_s * 1e6)
         << ", \"pid\": " << pid << ", \"tid\": " << tid;
    }
    os << ", \"args\": ";
    write_args_json(os, ev);
    os << "}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

void EventTracer::write_jsonl(std::ostream& os) const {
  for (const TraceEvent& ev : events_) {
    os << "{\"time_s\": " << format_double(ev.time_s) << ", \"kind\": \""
       << trace_event_kind_name(ev.kind) << "\"";
    if (ev.app != TraceEvent::kNone) os << ", \"app\": " << ev.app;
    if (ev.machine != TraceEvent::kNone) {
      os << ", \"machine\": " << ev.machine;
    }
    os << ", \"count\": " << ev.count
       << ", \"value\": " << format_double(ev.value)
       << ", \"value2\": " << format_double(ev.value2) << "}\n";
  }
}

}  // namespace tracon::obs
