// Telemetry bundle handed through the simulator and schedulers.
//
// Components take a nullable `obs::Telemetry*`; nullptr means telemetry
// is disabled and every recording site reduces to a pointer test. The
// bundle owns both sinks so one flag at the CLI wires everything:
//   - metrics: aggregated counters/gauges/histograms (JSON/CSV export);
//   - tracer: the per-event timeline (Chrome trace / JSONL export).
#pragma once

#include "obs/event_tracer.hpp"
#include "obs/metrics.hpp"

namespace tracon::obs {

struct Telemetry {
  MetricsRegistry metrics;
  EventTracer tracer;
};

}  // namespace tracon::obs
