// Telemetry bundle handed through the simulator and schedulers.
//
// Components take a nullable `obs::Telemetry*`; nullptr means telemetry
// is disabled and every recording site reduces to a pointer test. The
// bundle owns the sinks so one flag at the CLI wires everything:
//   - metrics: aggregated counters/gauges/histograms (JSON/CSV export);
//   - tracer: the per-event timeline (Chrome trace / JSONL export);
//   - decisions: the placement-provenance log (opt-in via
//     set_enabled; inert otherwise so pre-existing exports keep
//     their exact bytes);
//   - spans: the task-lifecycle span log (opt-in via set_enabled;
//     same inert-when-off contract as decisions).
#pragma once

#include "obs/decision_log.hpp"
#include "obs/event_tracer.hpp"
#include "obs/metrics.hpp"
#include "obs/span_log.hpp"

namespace tracon::obs {

struct Telemetry {
  MetricsRegistry metrics;
  EventTracer tracer;
  DecisionLog decisions;
  SpanLog spans;
};

}  // namespace tracon::obs
