#include "obs/metrics.hpp"

#include <cctype>
#include <cstdio>
#include <limits>
#include <ostream>

#include "obs/jsonl.hpp"
#include "util/error.hpp"

namespace tracon::obs {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  bool segment_start = true;
  for (char c : name) {
    if (c == '.') {
      if (segment_start) return false;  // empty segment
      segment_start = true;
      continue;
    }
    if (segment_start) {
      if (c < 'a' || c > 'z') return false;  // segments start with a letter
      segment_start = false;
      continue;
    }
    bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return !segment_start;  // no trailing dot
}

std::string metric_path_component(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    unsigned char u = static_cast<unsigned char>(c);
    char lower = static_cast<char>(std::tolower(u));
    bool ok = (lower >= 'a' && lower <= 'z') ||
              (lower >= '0' && lower <= '9') || lower == '_';
    out += ok ? lower : '_';
  }
  if (out.empty() || !(out.front() >= 'a' && out.front() <= 'z')) {
    out.insert(out.begin(), 'm');
  }
  return out;
}

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  TRACON_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    TRACON_REQUIRE(bounds_[i - 1] < bounds_[i],
                   "histogram bounds must be strictly ascending");
  }
}

void Histogram::observe(double value) {
  std::size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  ++counts_[i];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  sum_ += value;
}

double Histogram::upper_bound(std::size_t i) const {
  TRACON_REQUIRE(i < counts_.size(), "histogram bucket index out of range");
  return i < bounds_.size() ? bounds_[i]
                            : std::numeric_limits<double>::infinity();
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  TRACON_REQUIRE(i < counts_.size(), "histogram bucket index out of range");
  return counts_[i];
}

void Histogram::merge_from(const Histogram& other) {
  TRACON_REQUIRE(bounds_ == other.bounds_,
                 "histogram merge requires identical bucket bounds");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  TRACON_REQUIRE(valid_metric_name(name), "counter name must be a dotted "
                                          "snake_case path");
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  TRACON_REQUIRE(valid_metric_name(name), "gauge name must be a dotted "
                                          "snake_case path");
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& upper_bounds) {
  TRACON_REQUIRE(valid_metric_name(name), "histogram name must be a dotted "
                                          "snake_case path");
  auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    TRACON_REQUIRE(it->second.num_buckets() == upper_bounds.size() + 1,
                   "histogram re-registered with a different bucket layout");
    return it->second;
  }
  return histograms_.emplace(name, Histogram(upper_bounds)).first->second;
}

void MetricsRegistry::set_fingerprint(const std::string& key,
                                      const std::string& value) {
  TRACON_REQUIRE(valid_metric_name(key),
                 "fingerprint key must be a snake_case identifier");
  fingerprint_[key] = value;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [key, value] : other.fingerprint_)
    fingerprint_[key] = value;
  for (const auto& [name, c] : other.counters_)
    counters_[name].inc(c.value());
  for (const auto& [name, g] : other.gauges_)
    gauges_[name].set(g.value());
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second.merge_from(h);
    }
  }
}

bool MetricsRegistry::empty() const {
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

namespace {

void write_histogram_json(std::ostream& os, const Histogram& h) {
  os << "{\"count\": " << h.count() << ", \"sum\": " << format_double(h.sum())
     << ", \"min\": " << format_double(h.min())
     << ", \"max\": " << format_double(h.max()) << ", \"buckets\": [";
  for (std::size_t i = 0; i < h.num_buckets(); ++i) {
    if (i > 0) os << ", ";
    os << "{\"le\": ";
    if (i + 1 == h.num_buckets()) {
      os << "\"inf\"";
    } else {
      os << format_double(h.upper_bound(i));
    }
    os << ", \"count\": " << h.bucket_count(i) << "}";
  }
  os << "]}";
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\n  \"fingerprint\": {";
  bool first = true;
  for (const auto& [key, value] : fingerprint_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(key) << "\": \""
       << json_escape(value) << "\"";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"counters\": {";
  first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << c.value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << name
       << "\": " << format_double(g.value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": ";
    write_histogram_json(os, h);
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  os << "kind,name,field,value\n";
  for (const auto& [key, value] : fingerprint_) {
    os << "fingerprint," << key << ",value," << value << "\n";
  }
  for (const auto& [name, c] : counters_) {
    os << "counter," << name << ",value," << c.value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "gauge," << name << ",value," << format_double(g.value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << "histogram," << name << ",count," << h.count() << "\n";
    os << "histogram," << name << ",sum," << format_double(h.sum()) << "\n";
    os << "histogram," << name << ",min," << format_double(h.min()) << "\n";
    os << "histogram," << name << ",max," << format_double(h.max()) << "\n";
    for (std::size_t i = 0; i < h.num_buckets(); ++i) {
      os << "histogram," << name << ",le_";
      if (i + 1 == h.num_buckets()) {
        os << "inf";
      } else {
        os << format_double(h.upper_bound(i));
      }
      os << "," << h.bucket_count(i) << "\n";
    }
  }
}

}  // namespace tracon::obs
