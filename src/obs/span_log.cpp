#include "obs/span_log.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/json.hpp"
#include "obs/jsonl.hpp"
#include "util/error.hpp"

namespace tracon::obs {

namespace {

// An empty machine is spelled as the string "empty" so a span's
// co-runner column is never confused with app class 0 (mirrors the
// decision log's convention).
std::string neighbour_json(const std::optional<std::size_t>& neighbour) {
  if (!neighbour.has_value()) return "\"empty\"";
  return std::to_string(*neighbour);
}

std::string header_line(int version,
                        const std::map<std::string, std::string>& fingerprint) {
  JsonLineWriter stamp;
  for (const auto& [key, value] : fingerprint) stamp.field(key, value);
  return JsonLineWriter()
      .field("schema", kSpanLogSchema)
      .field("version", version)
      .raw_field("fingerprint", stamp.str())
      .str();
}

const char* kind_name(SpanEvent::Kind kind) {
  switch (kind) {
    case SpanEvent::Kind::kQueued:
      return "queued";
    case SpanEvent::Kind::kRunning:
      return "running";
    case SpanEvent::Kind::kMigrationFreeze:
      return "migration_freeze";
    case SpanEvent::Kind::kMigrationCopy:
      return "migration_copy";
    case SpanEvent::Kind::kCompleted:
      return "completed";
  }
  return "unknown";
}

// Shared by SpanLog::write and write_span_log so the recorded stream
// and a re-emitted merged stream are byte-compatible.
std::string event_line(const SpanEvent& e) {
  JsonLineWriter w;
  w.field("kind", kind_name(e.kind));
  w.field("task", e.task);
  if (e.kind == SpanEvent::Kind::kCompleted) {
    w.field("t", e.t0_s);
  } else {
    w.field("t0", e.t0_s);
    w.field("t1", e.t1_s);
  }
  w.field("app", static_cast<std::uint64_t>(e.app));
  if (e.kind != SpanEvent::Kind::kQueued) {
    w.field("machine", static_cast<std::uint64_t>(e.machine));
  }
  if (e.kind == SpanEvent::Kind::kRunning ||
      e.kind == SpanEvent::Kind::kMigrationCopy) {
    w.raw_field("neighbour", neighbour_json(e.neighbour));
    w.field("factor", e.factor);
  }
  if (e.kind == SpanEvent::Kind::kMigrationCopy) {
    w.field("copy_factor", e.copy_factor);
  }
  if (e.kind == SpanEvent::Kind::kCompleted) {
    w.field("solo_runtime_s", e.solo_runtime_s);
  }
  return w.str();
}

double number_field(const JsonValue& obj, const std::string& key,
                    const char* what) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    throw std::invalid_argument(std::string("span log ") + what +
                                " lacks numeric \"" + key + "\"");
  }
  return v->as_number();
}

std::string string_field(const JsonValue& obj, const std::string& key,
                         const char* what) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_string()) {
    throw std::invalid_argument(std::string("span log ") + what +
                                " lacks string \"" + key + "\"");
  }
  return v->as_string();
}

std::optional<std::size_t> neighbour_field(const JsonValue& obj,
                                           const char* what) {
  const JsonValue* v = obj.find("neighbour");
  if (v != nullptr && v->is_string() && v->as_string() == "empty") {
    return std::nullopt;
  }
  if (v != nullptr && v->is_number()) {
    return static_cast<std::size_t>(v->as_number());
  }
  throw std::invalid_argument(std::string("span log ") + what +
                              " \"neighbour\" must be \"empty\" or a number");
}

SpanEvent parse_event(const JsonValue& obj) {
  SpanEvent e;
  const std::string kind = string_field(obj, "kind", "record");
  e.task = static_cast<std::uint64_t>(number_field(obj, "task", "record"));
  e.app = static_cast<std::size_t>(number_field(obj, "app", "record"));
  if (kind == "completed") {
    e.kind = SpanEvent::Kind::kCompleted;
    e.t0_s = number_field(obj, "t", "completed");
    e.t1_s = e.t0_s;
  } else {
    e.t0_s = number_field(obj, "t0", "record");
    e.t1_s = number_field(obj, "t1", "record");
    if (e.t1_s < e.t0_s) {
      throw std::invalid_argument("span log record runs backwards (t1 < t0)");
    }
  }
  if (kind == "queued") {
    e.kind = SpanEvent::Kind::kQueued;
    return e;
  }
  e.machine = static_cast<std::size_t>(number_field(obj, "machine", kind.c_str()));
  if (kind == "running" || kind == "migration_copy") {
    e.kind = kind == "running" ? SpanEvent::Kind::kRunning
                               : SpanEvent::Kind::kMigrationCopy;
    e.neighbour = neighbour_field(obj, kind.c_str());
    e.factor = number_field(obj, "factor", kind.c_str());
    if (kind == "migration_copy") {
      e.copy_factor = number_field(obj, "copy_factor", "migration_copy");
    }
  } else if (kind == "migration_freeze") {
    e.kind = SpanEvent::Kind::kMigrationFreeze;
  } else if (kind == "completed") {
    e.solo_runtime_s = number_field(obj, "solo_runtime_s", "completed");
  } else {
    throw std::invalid_argument("span log record has unknown kind \"" + kind +
                                "\"");
  }
  return e;
}

}  // namespace

void SpanLog::record(SpanEvent event) {
  if (!enabled_) return;
  TRACON_REQUIRE(event.t1_s >= event.t0_s, "span must not run backwards");
  if (event.kind != SpanEvent::Kind::kCompleted && event.t1_s <= event.t0_s) {
    return;  // zero-length segment carries no time
  }
  events_.push_back(std::move(event));
}

void SpanLog::append(SpanEvent event) { events_.push_back(std::move(event)); }

void SpanLog::set_fingerprint(const std::string& key,
                              const std::string& value) {
  fingerprint_[key] = value;
}

void SpanLog::write(std::ostream& os) const {
  os << header_line(kJsonlSchemaVersion, fingerprint_) << "\n";
  for (const SpanEvent& e : events_) os << event_line(e) << "\n";
}

std::string SpanLog::str() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

SpanDoc parse_span_log(std::istream& in) {
  SpanDoc doc;
  std::string line;
  bool have_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue obj = parse_json(line);
    if (!have_header) {
      doc.version = require_schema(obj, kSpanLogSchema);
      const JsonValue* fingerprint = obj.find("fingerprint");
      if (fingerprint == nullptr || !fingerprint->is_object()) {
        throw std::invalid_argument(
            "span log header lacks \"fingerprint\" object");
      }
      for (const auto& [key, value] : fingerprint->as_object()) {
        if (!value->is_string()) {
          throw std::invalid_argument("span log fingerprint entry \"" + key +
                                      "\" is not a string");
        }
        doc.fingerprint[key] = value->as_string();
      }
      have_header = true;
      continue;
    }
    doc.events.push_back(parse_event(obj));
  }
  if (!have_header) {
    throw std::invalid_argument("span log document has no header line");
  }
  return doc;
}

SpanDoc parse_span_log(const std::string& text) {
  std::istringstream in(text);
  return parse_span_log(in);
}

void write_span_log(std::ostream& os, const SpanDoc& doc) {
  os << header_line(doc.version, doc.fingerprint) << "\n";
  for (const SpanEvent& e : doc.events) os << event_line(e) << "\n";
}

std::string span_log_str(const SpanDoc& doc) {
  std::ostringstream os;
  write_span_log(os, doc);
  return os.str();
}

}  // namespace tracon::obs
