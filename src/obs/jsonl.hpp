// Deterministic single-line JSON writing plus the shared schema-version
// header used by every JSONL file format in the tree (arrival traces,
// task-event logs, the runstore index).
//
// A JSONL file opens with one header object
//   {"schema": "<format name>", "version": N, ...format fields}
// followed by one record object per line. Readers call require_schema()
// on the parsed header line to reject foreign or future files early.
//
// JsonLineWriter emits fields in insertion order and formats doubles as
// their shortest round-trip representation (std::to_chars), so
// same-input runs write byte-identical lines and parsing a written
// value recovers it bit-exactly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tracon::obs {

class JsonValue;

/// Version shared by the tracon JSONL formats; bumped in lockstep when
/// any record schema changes shape. History: 1 = initial formats;
/// 2 = decision log grew the "migration" record kind.
inline constexpr int kJsonlSchemaVersion = 2;

/// Escapes `raw` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(std::string_view raw);

/// Formats `value` exactly as JsonLineWriter::field(key, double) does:
/// shortest round-trip std::to_chars. For building nested JSON arrays
/// that must stay byte-compatible with the scalar field writer.
std::string json_number(double value);

/// Builds one JSON object on a single line, fields in call order.
class JsonLineWriter {
 public:
  JsonLineWriter& field(std::string_view key, std::string_view value);
  JsonLineWriter& field(std::string_view key, const char* value);
  JsonLineWriter& field(std::string_view key, double value);
  JsonLineWriter& field(std::string_view key, std::uint64_t value);
  JsonLineWriter& field(std::string_view key, int value);
  /// Pre-serialized JSON (nested object/array) inserted verbatim.
  JsonLineWriter& raw_field(std::string_view key, std::string_view json);

  /// The closed object, without a trailing newline.
  std::string str() const;

 private:
  void key(std::string_view k);
  std::string body_ = "{";
  bool first_ = true;
};

/// Validates a parsed JSONL header line: it must be an object whose
/// "schema" equals `schema` and whose integer "version" is at most
/// kJsonlSchemaVersion. Returns the version; throws
/// std::invalid_argument otherwise.
int require_schema(const JsonValue& header, std::string_view schema);

}  // namespace tracon::obs
