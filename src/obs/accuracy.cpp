#include "obs/accuracy.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/error.hpp"

namespace tracon::obs {

namespace {

std::string metric_prefix(std::string_view family, std::string_view response) {
  std::string prefix = "model.";
  prefix += metric_path_component(family);
  prefix += '.';
  prefix += metric_path_component(response);
  return prefix;
}

}  // namespace

double relative_error(double predicted, double actual) {
  double denom = std::abs(actual);
  if (denom < 1e-9) denom = 1e-9;
  return (predicted - actual) / denom;
}

AccuracyTracker::AccuracyTracker(MetricsRegistry& registry,
                                 std::string_view family,
                                 std::string_view response)
    : signed_(&registry.histogram(
          metric_prefix(family, response) + ".rel_error_signed",
          signed_error_bounds())),
      abs_(&registry.histogram(
          metric_prefix(family, response) + ".rel_error_abs",
          abs_error_bounds())),
      samples_(&registry.counter(metric_prefix(family, response) +
                                 ".samples")) {
  TRACON_REQUIRE(!family.empty(), "AccuracyTracker: family must be non-empty");
  TRACON_REQUIRE(!response.empty(),
                 "AccuracyTracker: response must be non-empty");
}

void AccuracyTracker::record(double predicted, double actual) {
  TRACON_CHECK_FINITE(predicted, "accuracy sample prediction");
  TRACON_CHECK_FINITE(actual, "accuracy sample actual");
  double err = relative_error(predicted, actual);
  signed_->observe(err);
  abs_->observe(std::abs(err));
  samples_->inc();
}

std::vector<double> AccuracyTracker::signed_error_bounds() {
  return {-1.0, -0.5, -0.2, -0.1, -0.05, 0.0, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0};
}

std::vector<double> AccuracyTracker::abs_error_bounds() {
  return {0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 1.0, 2.0};
}

WindowedAccuracy::WindowedAccuracy(std::size_t capacity) : ring_(capacity) {
  TRACON_REQUIRE(capacity > 0, "accuracy window capacity must be >= 1");
}

void WindowedAccuracy::record(double predicted, double actual) {
  TRACON_CHECK_FINITE(predicted, "windowed accuracy prediction");
  TRACON_CHECK_FINITE(actual, "windowed accuracy actual");
  ring_[next_] = std::abs(relative_error(predicted, actual));
  next_ = (next_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
  ++total_;
}

double WindowedAccuracy::mean_abs_error() const {
  if (size_ == 0) return 0.0;
  // Summed in fixed ring order so the result is deterministic for a
  // given sample history.
  double sum = 0.0;
  for (std::size_t i = 0; i < size_; ++i) sum += ring_[i];
  return sum / static_cast<double>(size_);
}

double WindowedAccuracy::quantile(double q) const {
  TRACON_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (size_ == 0) return 0.0;
  std::vector<double> sorted(ring_.begin(),
                             ring_.begin() + static_cast<long>(size_));
  std::sort(sorted.begin(), sorted.end());
  auto rank = static_cast<std::size_t>(q * static_cast<double>(size_));
  if (rank >= size_) rank = size_ - 1;
  return sorted[rank];
}

}  // namespace tracon::obs
