#include "obs/accuracy.hpp"

#include <cmath>
#include <string>

#include "util/error.hpp"

namespace tracon::obs {

namespace {

std::string metric_prefix(std::string_view family, std::string_view response) {
  std::string prefix = "model.";
  prefix += metric_path_component(family);
  prefix += '.';
  prefix += metric_path_component(response);
  return prefix;
}

}  // namespace

AccuracyTracker::AccuracyTracker(MetricsRegistry& registry,
                                 std::string_view family,
                                 std::string_view response)
    : signed_(&registry.histogram(
          metric_prefix(family, response) + ".rel_error_signed",
          signed_error_bounds())),
      abs_(&registry.histogram(
          metric_prefix(family, response) + ".rel_error_abs",
          abs_error_bounds())),
      samples_(&registry.counter(metric_prefix(family, response) +
                                 ".samples")) {
  TRACON_REQUIRE(!family.empty(), "AccuracyTracker: family must be non-empty");
  TRACON_REQUIRE(!response.empty(),
                 "AccuracyTracker: response must be non-empty");
}

void AccuracyTracker::record(double predicted, double actual) {
  TRACON_CHECK_FINITE(predicted, "accuracy sample prediction");
  TRACON_CHECK_FINITE(actual, "accuracy sample actual");
  double denom = std::abs(actual);
  if (denom < 1e-9) denom = 1e-9;
  double err = (predicted - actual) / denom;
  signed_->observe(err);
  abs_->observe(std::abs(err));
  samples_->inc();
}

std::vector<double> AccuracyTracker::signed_error_bounds() {
  return {-1.0, -0.5, -0.2, -0.1, -0.05, 0.0, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0};
}

std::vector<double> AccuracyTracker::abs_error_bounds() {
  return {0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 1.0, 2.0};
}

}  // namespace tracon::obs
