// Decision provenance: DecisionLog records *why* every placement
// happened — the candidate slots the scheduler scanned, what each model
// family predicted for them, the confidence weights in force, and the
// margin by which the chosen slot won — then joins each decision to the
// task's eventual completion (realized runtime/IOPS) so prediction
// error is attributable per decision.
//
// The stream is schema-versioned `tracon.decision_log` JSONL: one
// header line carrying the fingerprint block, then one record per
// event in virtual-time order. Three record kinds share the stream:
//   {"kind": "decision", ...}  emitted when a scheduler commits a
//       placement (task, candidates, per-family predictions, weights,
//       chosen index, margin, both-objective predicted values), plus
//       the machine id once the simulator binds the slot;
//   {"kind": "migration", ...} emitted when the rebalancer re-places a
//       running task (source/destination hosts and co-runners, the
//       predicted stay/move remaining times, the migration cost
//       breakdown, and the margin by which moving won) — added in
//       schema version 2 so `tracon explain` covers moves;
//   {"kind": "outcome", ...}   emitted when the task completes
//       (realized runtime, mean IOPS, co-runner at placement, solo
//       runtime for slowdown attribution).
//
// Determinism contract (DESIGN.md §6g): timestamps come from the
// virtual clock only, doubles go through the shortest round-trip
// writer, and the sharded runner merges per-shard logs by re-indexing
// machine/task ids and stable-sorting on time — `--threads N` writes
// byte-identical logs to `--threads 1`. Recording is gated on
// enabled(): when off, every record call returns immediately and no
// simulation output changes by a byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tracon::obs {

class JsonValue;

inline constexpr std::string_view kDecisionLogSchema = "tracon.decision_log";

/// One candidate slot the scheduler scanned for a task. `neighbour`
/// is the app class already resident on the candidate machine, or
/// nullopt for an empty machine.
struct DecisionCandidate {
  std::optional<std::size_t> neighbour;
  /// Ensemble prediction under the scheduler's objective (runtime
  /// seconds or combined IOPS) if the task were placed here.
  double score = 0.0;
  /// The same prediction from each model family individually, in
  /// DecisionEvent::families order. Single-model schedulers carry one
  /// entry equal to `score`.
  std::vector<double> by_family;
};

/// One record in the decision log: a placement decision, a rebalancer
/// re-placement, or the completion outcome they are later joined to
/// (by task id).
struct DecisionEvent {
  enum class Kind { kDecision, kMigration, kOutcome };

  /// Sentinel for "machine not bound" on a decision record.
  static constexpr std::size_t kNoMachine = static_cast<std::size_t>(-1);

  Kind kind = Kind::kDecision;
  std::uint64_t task = 0;
  double time_s = 0.0;
  std::size_t app = 0;
  std::size_t machine = kNoMachine;

  // -- decision fields --
  std::string scheduler;
  std::string objective;             ///< "runtime" or "iops"
  std::vector<std::string> families; ///< model family names
  std::vector<double> weights;       ///< confidence weight per family
  std::vector<DecisionCandidate> candidates;
  std::size_t chosen = 0;  ///< index into `candidates`
  /// How decisively the chosen slot won: distance from the runner-up's
  /// score, signed so that a negative margin records a policy override
  /// (e.g. the beneficial-join filter rejecting the raw argmin). Zero
  /// when only one candidate existed.
  double margin = 0.0;
  double predicted_runtime_s = 0.0;
  double predicted_iops = 0.0;

  // -- outcome fields --
  std::optional<std::size_t> neighbour;  ///< co-runner at placement; on a
                                         ///< migration record, the
                                         ///< destination co-runner
  double runtime_s = 0.0;
  double iops = 0.0;
  double solo_runtime_s = 0.0;  ///< reference runtime for slowdown

  // -- migration fields (kind == kMigration; `machine` carries the
  // destination host, `neighbour` the destination co-runner, `margin`
  // the predicted benefit predicted_stay_s - predicted_move_s) --
  std::size_t from_machine = kNoMachine;      ///< source host
  std::optional<std::size_t> from_neighbour;  ///< co-runner left behind
  double predicted_stay_s = 0.0;  ///< predicted remaining time in place
  double predicted_move_s = 0.0;  ///< predicted remaining time after the
                                  ///< move, migration cost included
  double downtime_s = 0.0;        ///< stop-and-copy pause
  double copy_s = 0.0;            ///< copy-window length on both hosts
  double cost_s = 0.0;            ///< total cost charged to the task
};

/// Append-only recorder owned by obs::Telemetry. All record calls are
/// no-ops until set_enabled(true); schedulers and the simulator probe
/// it through the nullable Telemetry* they already carry, so the log
/// is zero-cost when off.
class DecisionLog {
 public:
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Appends a decision record (kind forced to kDecision) and indexes
  /// it by task id for later bind_machine()/record_outcome() joins.
  void record_decision(DecisionEvent event);

  /// Stamps the machine id onto `task`'s decision record once the
  /// simulator binds the placement to a concrete machine. No-op when
  /// the task has no recorded decision (e.g. FIFO placements).
  void bind_machine(std::uint64_t task, std::size_t machine);

  /// Appends a re-placement record (kind forced to kMigration). The
  /// rebalancer stamps source/destination hosts and the cost breakdown
  /// before handing the event over; a task may carry any number of
  /// migration records between its decision and its outcome.
  void record_migration(DecisionEvent event);

  /// Appends a completion record (kind forced to kOutcome). Recorded
  /// even for tasks without a decision; attribution joins by task id.
  void record_outcome(DecisionEvent event);

  /// Appends a pre-built event verbatim — the sharded merge path,
  /// after re-indexing ids. Ignores the enabled gate.
  void append(DecisionEvent event);

  std::size_t size() const { return events_.size(); }
  const std::vector<DecisionEvent>& events() const { return events_; }

  /// Reproducibility stamp emitted in the header line. Deliberately
  /// excludes the thread count so logs stay byte-comparable across
  /// `--threads` values.
  void set_fingerprint(const std::string& key, const std::string& value);
  const std::map<std::string, std::string>& fingerprint() const {
    return fingerprint_;
  }

  /// Header line plus one record per event, in append order.
  void write(std::ostream& os) const;
  std::string str() const;

 private:
  bool enabled_ = false;
  std::vector<DecisionEvent> events_;
  std::map<std::uint64_t, std::size_t> decision_index_;
  std::map<std::string, std::string> fingerprint_;
};

/// Parsed decision-log document, as read back by the attribution
/// engine, `tracon explain`, and telemetry_check.
struct DecisionDoc {
  int version = 0;
  std::map<std::string, std::string> fingerprint;
  std::vector<DecisionEvent> events;
};

/// Parses a document as written by DecisionLog::write. Throws
/// std::invalid_argument on a foreign schema or malformed records.
DecisionDoc parse_decision_log(std::istream& in);
DecisionDoc parse_decision_log(const std::string& text);

/// Re-emits a parsed (or programmatically merged) document in the
/// exact byte format DecisionLog::write produces — the sharded runner
/// publishes its merged log through this writer so the result is
/// byte-comparable across thread counts.
void write_decision_log(std::ostream& os, const DecisionDoc& doc);
std::string decision_log_str(const DecisionDoc& doc);

}  // namespace tracon::obs
