// Minimum Interference Batch Scheduler (MIBS), Algorithm 2.
//
// Based on the Min-Min heuristic: take the first queued task, place it
// with MIOS, then pick the queued task with the least predicted
// interference against it (the two "Min"s) and place that one too;
// repeat until the queue or the cluster is exhausted. The batch is
// processed when the queue reaches its configured length; a timeout
// guards against starvation at low arrival rates (the paper notes that
// at low lambda every scheduler finds idle machines; see DESIGN.md).
#pragma once

#include "sched/mios.hpp"
#include "sched/predictor.hpp"
#include "sched/scheduler.hpp"

namespace tracon::sched {

/// Outcome of one batch round, including the predicted objective totals
/// MIX uses to compare candidate assignments.
struct BatchOutcome {
  std::vector<Placement> placements;
  double predicted_runtime = 0.0;  ///< sum of predicted runtimes
  double predicted_iops = 0.0;     ///< sum of predicted IOPS
};

/// Runs Algorithm 2 over the queue snapshot in the given order.
/// `order` holds queue positions; placements refer to those positions.
/// A non-null `index` routes the per-task slot scans through the
/// candidate shortlist (bit-identical; see candidate_index.hpp).
BatchOutcome mibs_batch(std::span<const QueuedTask> queue,
                        std::span<const std::size_t> order,
                        const ClusterCounts& cluster,
                        const Predictor& predictor, Objective objective,
                        const PlacementPolicy& policy = {},
                        const CandidateIndex* index = nullptr);

/// Batch trigger shared by MIBS and MIX: process when the queue reached
/// the configured length, when the head task has waited out the timeout,
/// or when every queued task could take its own empty machine (waiting
/// for a fuller batch cannot improve pairing then — this is what keeps
/// the batch schedulers on par with MIOS at low arrival rates, as the
/// paper observes in Fig 9).
bool batch_due(std::span<const QueuedTask> queue, const ClusterCounts& cluster,
               const ScheduleContext& ctx, std::size_t queue_limit,
               double batch_timeout_s);

class MibsScheduler final : public Scheduler {
 public:
  MibsScheduler(const Predictor& predictor, Objective objective,
                std::size_t queue_limit = 8, double batch_timeout_s = 60.0,
                PlacementPolicy policy = {});

  std::string name() const override;

  std::vector<Placement> schedule(std::span<const QueuedTask> queue,
                                  const ClusterCounts& cluster,
                                  const ScheduleContext& ctx) override;

  std::optional<double> next_wakeup(std::span<const QueuedTask> queue,
                                    const ScheduleContext& ctx) const override;

  std::size_t queue_limit() const { return queue_limit_; }

 private:
  const Predictor& predictor_;
  Objective objective_;
  std::size_t queue_limit_;
  double batch_timeout_s_;
  PlacementPolicy policy_;
};

}  // namespace tracon::sched
