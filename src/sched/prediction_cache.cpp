#include "sched/prediction_cache.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tracon::sched {

PredictionCache::PredictionCache(const Predictor& base)
    : base_(base), stride_(base.num_apps() + 1) {
  TRACON_REQUIRE(base.num_apps() > 0, "cache needs at least one app class");
  const std::size_t cells = base.num_apps() * stride_;
  for (auto& v : values_) v.assign(cells, 0.0);
  for (auto& v : valid_) v.assign(cells, 0);
  epoch_ = base.model_epoch();
}

std::size_t PredictionCache::slot(
    std::size_t task, const std::optional<std::size_t>& neighbour) const {
  TRACON_REQUIRE(task < base_.num_apps(), "task class out of range");
  const std::size_t col =
      neighbour.has_value() ? *neighbour : base_.num_apps();
  TRACON_REQUIRE(col < stride_, "neighbour class out of range");
  return task * stride_ + col;
}

void PredictionCache::sync_epoch() const {
  const std::uint64_t e = base_.model_epoch();
  if (e == epoch_) return;
  epoch_ = e;
  ++invalidations_;
  for (auto& v : valid_) std::fill(v.begin(), v.end(), 0);
}

double PredictionCache::lookup(
    Channel chan, std::size_t task,
    const std::optional<std::size_t>& neighbour) const {
  const std::size_t i = slot(task, neighbour);
  if (valid_[chan][i] != 0) {
    ++hits_;
    return values_[chan][i];
  }
  ++misses_;
  const double v = chan == kRuntimeChan
                       ? base_.predict_runtime(task, neighbour)
                       : base_.predict_iops(task, neighbour);
  values_[chan][i] = v;
  valid_[chan][i] = 1;
  return v;
}

double PredictionCache::predict_runtime(
    std::size_t task, const std::optional<std::size_t>& neighbour) const {
  sync_epoch();
  return lookup(kRuntimeChan, task, neighbour);
}

double PredictionCache::predict_iops(
    std::size_t task, const std::optional<std::size_t>& neighbour) const {
  sync_epoch();
  return lookup(kIopsChan, task, neighbour);
}

// Batch = the scalar cache path per query. The Predictor contract
// guarantees the base's batch output is bit-identical to its scalar
// calls in query order, so filling each element from the (scalar-
// populated) cache preserves the bytes the uncached batch would have
// produced.
void PredictionCache::predict_runtime_batch(
    std::span<const PredictQuery> queries, std::span<double> out) const {
  TRACON_REQUIRE(queries.size() == out.size(),
                 "batch output size must match query count");
  sync_epoch();
  for (std::size_t i = 0; i < queries.size(); ++i)
    out[i] = lookup(kRuntimeChan, queries[i].task, queries[i].neighbour);
}

void PredictionCache::predict_iops_batch(std::span<const PredictQuery> queries,
                                         std::span<double> out) const {
  TRACON_REQUIRE(queries.size() == out.size(),
                 "batch output size must match query count");
  sync_epoch();
  for (std::size_t i = 0; i < queries.size(); ++i)
    out[i] = lookup(kIopsChan, queries[i].task, queries[i].neighbour);
}

}  // namespace tracon::sched
