// Minimum Interference miXed scheduler (MIX), Algorithm 3.
//
// MIX gives every queued task a chance to be the batch head: it runs
// MIBS hypothetically for each rotation of the queue, keeps the
// assignment with the best predicted objective total, and executes that
// one. Highest potential quality, highest scheduling overhead —
// O(queue^2) MIBS evaluations per batch.
#pragma once

#include "sched/mibs.hpp"

namespace tracon::sched {

class MixScheduler final : public Scheduler {
 public:
  MixScheduler(const Predictor& predictor, Objective objective,
               std::size_t queue_limit = 8, double batch_timeout_s = 60.0,
               PlacementPolicy policy = {});

  std::string name() const override;

  std::vector<Placement> schedule(std::span<const QueuedTask> queue,
                                  const ClusterCounts& cluster,
                                  const ScheduleContext& ctx) override;

  std::optional<double> next_wakeup(std::span<const QueuedTask> queue,
                                    const ScheduleContext& ctx) const override;

  std::size_t queue_limit() const { return queue_limit_; }

 private:
  const Predictor& predictor_;
  Objective objective_;
  std::size_t queue_limit_;
  double batch_timeout_s_;
  PlacementPolicy policy_;
};

}  // namespace tracon::sched
