// FIFO baseline scheduler (Section 3.2): tasks are allocated to virtual
// machines in first-in first-out order, oblivious to interference. The
// target VM among the free ones is drawn uniformly (seeded), modelling a
// next-available allocation on a homogeneous cluster.
#pragma once

#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace tracon::sched {

class FifoScheduler final : public Scheduler {
 public:
  explicit FifoScheduler(std::uint64_t seed = 1) : rng_(seed) {}

  std::string name() const override { return "FIFO"; }
  bool online() const override { return true; }

  std::vector<Placement> schedule(std::span<const QueuedTask> queue,
                                  const ClusterCounts& cluster,
                                  const ScheduleContext& ctx) override;

 private:
  Rng rng_;
};

}  // namespace tracon::sched
