// Candidate shortlist index: sublinear replacement for the schedulers'
// flat candidate scan.
//
// ClusterCounts::append_candidates enumerates every occupied class per
// decision, and mios_best_slot re-scores all of them. This module
// promotes that flat scan to an index in two steps:
//
//  1. ClassClustering groups the application classes by interference
//     profile — each class's predicted runtime/IOPS rows and columns
//     are projected with the same src/stats PCA that powers the WMM
//     model, then clustered with deterministic farthest-point k-means
//     (nearest-centroid assignment, the k-NN matching step of WMM).
//  2. CandidateIndex precomputes, once per (objective, task, model
//     epoch), each cluster's candidate classes sorted by (score,
//     canonical rank), together with the beneficial-join quantities.
//     A lookup walks the clusters the live ClusterCounts reports
//     non-empty (cluster representatives first), refines inside each
//     by taking its first available entry, and picks the lexicographic
//     minimum — which is EXACTLY the argmin-with-first-wins-ties of
//     the flat scan, so placements are byte-identical to the exact
//     path (property-tested across schedulers and seeds).
//
// Cost: a decision touches O(active clusters + probed entries) instead
// of O(num_apps); with per-cluster availability maintained by
// ClusterCounts in O(1) per place/depart, exhausted clusters cost
// nothing. The index rebuilds itself when the predictor's model epoch
// advances. Instances are read-only at decision time, so one index may
// serve every shard of a sharded run over an immutable TablePredictor.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/cluster_counts.hpp"
#include "sched/mios.hpp"
#include "sched/predictor.hpp"

namespace tracon::sched {

/// Interference-profile clustering of the application classes.
class ClassClustering {
 public:
  /// Builds the clustering from the predictor's pairwise tables.
  /// `num_clusters` 0 = auto (~sqrt of the class count).
  static ClassClustering build(const Predictor& predictor,
                               std::size_t num_clusters = 0);

  std::size_t num_apps() const { return cluster_of_.size(); }
  std::size_t num_clusters() const { return num_clusters_; }
  const std::vector<std::size_t>& cluster_of() const { return cluster_of_; }

 private:
  std::vector<std::size_t> cluster_of_;
  std::size_t num_clusters_ = 0;
};

class CandidateIndex {
 public:
  /// `predictor` is not owned and must outlive the index.
  explicit CandidateIndex(const Predictor& predictor,
                          std::size_t num_clusters = 0);

  const ClassClustering& clustering() const { return clustering_; }
  const Predictor& predictor() const { return predictor_; }

  /// Attaches this index's clustering to a ClusterCounts instance
  /// (required before best_slot can consult it).
  void attach(ClusterCounts* counts) const;

  /// Indexed equivalent of the mios_best_slot scan: best available slot
  /// class for `task`, or nullopt when no placement is allowed.
  /// Requires `cluster` to be clustered with a mapping of this index's
  /// shape. Bit-identical to the exact scan, including tie-breaking and
  /// the empty-machine last resort under `exclude_empty`.
  std::optional<std::optional<std::size_t>> best_slot(
      std::size_t task, const ClusterCounts& cluster, Objective objective,
      const PlacementPolicy& policy, bool exclude_empty) const;

  /// Number of epoch-driven rebuilds since construction (0 for an
  /// immutable TablePredictor).
  std::uint64_t rebuilds() const { return rebuilds_; }

 private:
  /// One precomputed candidate: `rank` is the canonical scan position
  /// (0 = empty machine, a+1 = class a); the beneficial-join test at
  /// margin m is `join_lhs > m * join_scale` (scale 1 for the runtime
  /// objective), matching the exact path's arithmetic bit for bit.
  struct Entry {
    double score = 0.0;
    double join_lhs = 0.0;
    double join_scale = 1.0;
    std::uint32_t rank = 0;
  };

  void sync_epoch() const;
  void rebuild() const;
  const std::vector<Entry>& entries(Objective objective, std::size_t task,
                                    std::size_t cluster) const;

  const Predictor& predictor_;
  ClassClustering clustering_;
  /// lists_[objective][task * (num_clusters + 1) + cluster]: entries
  /// sorted ascending by (score, rank). The trailing pseudo-cluster
  /// holds the single empty-machine entry.
  mutable std::vector<std::vector<Entry>> lists_[2];
  mutable std::uint64_t epoch_ = 0;
  mutable std::uint64_t rebuilds_ = 0;
};

}  // namespace tracon::sched
