// Memoization layer under the schedulers' prediction traffic.
//
// Every scheduling decision scores (task, neighbour-class) pairs, and
// the same pairs recur across decisions: with two VMs per machine the
// pair space is only num_apps x (num_apps + 1), while a dynamic run
// issues millions of queries. PredictionCache is a transparent
// Predictor decorator that answers each (pair, objective) from a dense
// table after the first evaluation, so an expensive backing predictor
// (the wmm/lm/nlm confidence ensemble, a freshly retrained model) is
// consulted once per pair per model epoch instead of once per decision.
//
// Correctness: cached values are the exact doubles the backing
// predictor returned — a hit is bit-identical to a recomputation, so
// placements, golden outputs, and the `--threads N` byte-identity
// contract are unaffected (tested in test_candidate_index.cpp). The
// cache watches Predictor::model_epoch() and drops every entry when
// the backing model advances (ensemble weight refresh, AdaptiveModel
// retrain).
//
// Threading: a PredictionCache instance mutates on reads and is NOT
// safe for concurrent use. The sharded engine gives each shard its own
// instance (built serially by the scheduler factory) over the shared
// immutable TablePredictor.
#pragma once

#include <cstdint>

#include "sched/predictor.hpp"

namespace tracon::sched {

class PredictionCache final : public Predictor {
 public:
  /// `base` is not owned and must outlive the cache.
  explicit PredictionCache(const Predictor& base);

  std::size_t num_apps() const override { return base_.num_apps(); }
  double predict_runtime(
      std::size_t task,
      const std::optional<std::size_t>& neighbour) const override;
  double predict_iops(
      std::size_t task,
      const std::optional<std::size_t>& neighbour) const override;
  void predict_runtime_batch(std::span<const PredictQuery> queries,
                             std::span<double> out) const override;
  void predict_iops_batch(std::span<const PredictQuery> queries,
                          std::span<double> out) const override;
  void begin_round(double now_s) const override { base_.begin_round(now_s); }
  std::uint64_t model_epoch() const override { return base_.model_epoch(); }

  const Predictor& base() const { return base_; }

  /// Cache-effectiveness counters (since construction, across epochs).
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  /// Number of epoch-change flushes observed.
  std::uint64_t invalidations() const { return invalidations_; }

 private:
  enum Channel : std::size_t { kRuntimeChan = 0, kIopsChan = 1 };

  std::size_t slot(std::size_t task,
                   const std::optional<std::size_t>& neighbour) const;
  void sync_epoch() const;
  double lookup(Channel chan, std::size_t task,
                const std::optional<std::size_t>& neighbour) const;

  const Predictor& base_;
  std::size_t stride_;  ///< num_apps + 1 (last column = idle neighbour)
  /// Dense per-channel value tables and valid bits, indexed by
  /// task * stride_ + neighbour-column.
  mutable std::vector<double> values_[2];
  mutable std::vector<unsigned char> valid_[2];
  mutable std::uint64_t epoch_ = 0;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  mutable std::uint64_t invalidations_ = 0;
};

}  // namespace tracon::sched
