#include "sched/mibs.hpp"

#include <algorithm>
#include <limits>

#include "obs/kvlog.hpp"
#include "obs/scope_timer.hpp"
#include "sched/decision_probe.hpp"
#include "sched/mios.hpp"
#include "util/error.hpp"

namespace tracon::sched {

BatchOutcome mibs_batch(std::span<const QueuedTask> queue,
                        std::span<const std::size_t> order,
                        const ClusterCounts& cluster,
                        const Predictor& predictor, Objective objective,
                        const PlacementPolicy& policy,
                        const CandidateIndex* index) {
  BatchOutcome out;
  ClusterCounts state = cluster;
  std::vector<std::size_t> pending(order.begin(), order.end());

  auto place = [&](std::size_t pos,
                   const std::optional<std::size_t>& neighbour) {
    TRACON_DCHECK(pos < queue.size(), "placement references a task outside "
                                      "the batch window");
    TRACON_DCHECK(state.has_slot(neighbour),
                  "MIBS selected an infeasible placement slot");
    state.place(queue[pos].app, neighbour);
    out.placements.push_back({pos, neighbour});
    out.predicted_runtime +=
        predictor.predict_runtime(queue[pos].app, neighbour);
    out.predicted_iops += predictor.predict_iops(queue[pos].app, neighbour);
  };

  // Tasks whose every available join fails the beneficial-join policy
  // are skipped (they stay queued for a later batch); `head` walks past
  // them.
  std::size_t head = 0;
  while (head < pending.size() && state.any_free()) {
    // Candidate 1: first (remaining) task of the queue, placed by MIOS.
    std::size_t c1 = pending[head];
    auto slot1 = mios_best_slot(queue[c1].app, state, predictor, objective,
                                policy, /*exclude_empty=*/false, index);
    if (!slot1.has_value()) {
      ++head;
      continue;
    }
    place(c1, *slot1);
    pending.erase(pending.begin() + static_cast<long>(head));
    if (head >= pending.size() || !state.any_free()) continue;

    // Candidate 2: the queued task with the least predicted interference
    // against candidate 1 (the first "Min" of Min-Min), scored exactly
    // as Algorithm 2 writes it: Predict(t_i, t_1, Model). One batched
    // call covers the whole remaining window; first-wins strict < keeps
    // the tie-breaking identical to the scalar loop.
    std::vector<PredictQuery> c2_queries(pending.size() - head);
    for (std::size_t i = head; i < pending.size(); ++i)
      c2_queries[i - head] = {queue[pending[i]].app, queue[c1].app};
    std::vector<double> c2_pred(c2_queries.size());
    if (objective == Objective::kRuntime) {
      predictor.predict_runtime_batch(c2_queries, c2_pred);
    } else {
      predictor.predict_iops_batch(c2_queries, c2_pred);
    }
    std::size_t best_i = head;
    double best_score = std::numeric_limits<double>::infinity();
    for (std::size_t i = head; i < pending.size(); ++i) {
      double s = objective == Objective::kRuntime ? c2_pred[i - head]
                                                  : -c2_pred[i - head];
      if (s < best_score) {
        best_score = s;
        best_i = i;
      }
    }
    // Runtime objective: when the rest of the batch cannot fit on empty
    // machines anyway, some tasks must share -- candidate 2 co-locates
    // now (with candidate 1 or a predicted-better partner) rather than
    // claim an empty machine a later task would double up on. The IOPS
    // objective instead lets I/O-heavy candidates host machines alone as
    // long as spare machines exist; later tasks join their best hosts,
    // which maximizes aggregate throughput (see DESIGN.md).
    std::size_t c2 = pending[best_i];
    bool must_pair = objective == Objective::kRuntime &&
                     state.empty_machines() < pending.size() - head;
    auto slot2 = mios_best_slot(queue[c2].app, state, predictor, objective,
                                policy, must_pair, index);
    if (slot2.has_value()) {
      place(c2, *slot2);
      pending.erase(pending.begin() + static_cast<long>(best_i));
    }
  }
  return out;
}

MibsScheduler::MibsScheduler(const Predictor& predictor, Objective objective,
                             std::size_t queue_limit, double batch_timeout_s,
                             PlacementPolicy policy)
    : predictor_(predictor),
      objective_(objective),
      queue_limit_(queue_limit),
      batch_timeout_s_(batch_timeout_s),
      policy_(policy) {
  TRACON_REQUIRE(queue_limit_ >= 1, "queue limit must be >= 1");
  TRACON_REQUIRE(batch_timeout_s_ >= 0.0, "batch timeout must be >= 0");
}

std::string MibsScheduler::name() const {
  return "MIBS" + std::to_string(queue_limit_) + "-" +
         objective_name(objective_);
}

bool batch_due(std::span<const QueuedTask> queue, const ClusterCounts& cluster,
               const ScheduleContext& ctx, std::size_t queue_limit,
               double batch_timeout_s) {
  if (queue.empty()) return false;
  if (queue.size() >= queue_limit) return true;
  if (ctx.now_s - queue.front().arrival_s >= batch_timeout_s) return true;
  return cluster.empty_machines() >= queue.size();
}

std::vector<Placement> MibsScheduler::schedule(
    std::span<const QueuedTask> queue, const ClusterCounts& cluster,
    const ScheduleContext& ctx) {
  if (!batch_due(queue, cluster, ctx, queue_limit_, batch_timeout_s_))
    return {};
  TRACON_PROF_SCOPE("sched.mibs.schedule");

  // The batch window is the queue the paper parameterizes (MIBS_8 holds
  // eight tasks); later arrivals wait for the next round.
  std::size_t window = std::min(queue.size(), queue_limit_);
  std::vector<std::size_t> order(window);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  BatchOutcome outcome = mibs_batch(queue.first(window), order, cluster,
                                    predictor_, objective_, policy_,
                                    candidate_index());
  record_decisions(telemetry(), name(), ctx.now_s, queue, cluster,
                   outcome.placements, predictor_, objective_);
  note_round(queue.size(), outcome.placements.size(),
             objective_ == Objective::kRuntime ? outcome.predicted_runtime
                                               : outcome.predicted_iops,
             ctx.now_s);
  TRACON_KV_LOG(LogLevel::kDebug,
                obs::KvLine("sched.mibs.batch")
                    .kv("now_s", ctx.now_s)
                    .kv("window", window)
                    .kv("placed", outcome.placements.size()));
  return std::move(outcome.placements);
}

std::optional<double> MibsScheduler::next_wakeup(
    std::span<const QueuedTask> queue, const ScheduleContext& ctx) const {
  (void)ctx;
  if (queue.empty() || queue.size() >= queue_limit_) return std::nullopt;
  return queue.front().arrival_s + batch_timeout_s_;
}

}  // namespace tracon::sched
