#include "sched/decision_probe.hpp"

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace tracon::sched {

void score_candidates(const Predictor& predictor, std::size_t app,
                      const ClusterCounts& cluster, Objective objective,
                      bool include_empty,
                      std::vector<std::optional<std::size_t>>* slots,
                      std::vector<double>* scores) {
  TRACON_REQUIRE(slots != nullptr && scores != nullptr,
                 "score_candidates needs output vectors");
  slots->clear();
  cluster.append_candidates(include_empty, slots);
  std::vector<PredictQuery> queries;
  queries.reserve(slots->size());
  for (const std::optional<std::size_t>& slot : *slots) {
    queries.push_back({app, slot});
  }
  scores->assign(slots->size(), 0.0);
  if (objective == Objective::kRuntime) {
    predictor.predict_runtime_batch(queries, *scores);
  } else {
    predictor.predict_iops_batch(queries, *scores);
  }
}

double winning_margin(std::span<const double> scores, std::size_t chosen,
                      Objective objective) {
  bool have_other = false;
  double best_other = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (i == chosen) continue;
    const bool better =
        !have_other || (objective == Objective::kRuntime
                            ? scores[i] < best_other
                            : scores[i] > best_other);
    if (better) best_other = scores[i];
    have_other = true;
  }
  if (!have_other) return 0.0;
  return objective == Objective::kRuntime ? best_other - scores[chosen]
                                          : scores[chosen] - best_other;
}

void record_decisions(obs::Telemetry* telemetry,
                      std::string_view scheduler_name, double now_s,
                      std::span<const QueuedTask> queue,
                      const ClusterCounts& cluster,
                      std::span<const Placement> placements,
                      const Predictor& predictor, Objective objective) {
  if (telemetry == nullptr || !telemetry->decisions.enabled()) return;
  if (placements.empty()) return;

  const auto* ensemble =
      dynamic_cast<const ConfidenceWeightedPredictor*>(&predictor);

  std::vector<std::string> families;
  std::vector<double> weights;
  if (ensemble != nullptr) {
    for (std::size_t f = 0; f < ensemble->num_families(); ++f) {
      families.push_back(ensemble->family_name(f));
      weights.push_back(objective == Objective::kRuntime
                            ? ensemble->runtime_weight(f)
                            : ensemble->iops_weight(f));
    }
  } else {
    families.emplace_back("model");
    weights.push_back(1.0);
  }

  // Replay the round: each placement's candidate set is enumerated
  // against the cluster state *after* the placements before it, which
  // is exactly what the scheduler scanned when committing it.
  ClusterCounts state = cluster;
  std::vector<std::optional<std::size_t>> slots;
  std::vector<double> scores;
  for (const Placement& p : placements) {
    TRACON_REQUIRE(p.queue_pos < queue.size(),
                   "placement addresses a task outside the queue snapshot");
    const QueuedTask& task = queue[p.queue_pos];

    score_candidates(predictor, task.app, state, objective, true, &slots,
                     &scores);

    obs::DecisionEvent event;
    event.task = task.id;
    event.time_s = now_s;
    event.app = task.app;
    event.scheduler = std::string(scheduler_name);
    event.objective = objective == Objective::kRuntime ? "runtime" : "iops";
    event.families = families;
    event.weights = weights;

    std::size_t chosen = slots.size();
    for (std::size_t i = 0; i < slots.size(); ++i) {
      obs::DecisionCandidate candidate;
      candidate.neighbour = slots[i];
      candidate.score = scores[i];
      if (ensemble != nullptr) {
        for (std::size_t f = 0; f < ensemble->num_families(); ++f) {
          const Predictor& member = ensemble->family_predictor(f);
          candidate.by_family.push_back(
              objective == Objective::kRuntime
                  ? member.predict_runtime(task.app, slots[i])
                  : member.predict_iops(task.app, slots[i]));
        }
      } else {
        candidate.by_family.push_back(scores[i]);
      }
      if (slots[i] == p.neighbour) chosen = i;
      event.candidates.push_back(std::move(candidate));
    }
    TRACON_REQUIRE(chosen < slots.size(),
                   "committed placement's slot missing from candidate scan");
    event.chosen = chosen;
    event.margin = winning_margin(scores, chosen, objective);
    event.predicted_runtime_s =
        predictor.predict_runtime(task.app, p.neighbour);
    event.predicted_iops = predictor.predict_iops(task.app, p.neighbour);

    telemetry->decisions.record_decision(std::move(event));
    state.place(task.app, p.neighbour);
  }
}

}  // namespace tracon::sched
