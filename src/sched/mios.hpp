// Minimum Interference Online Scheduler (MIOS), Algorithm 1.
//
// When a task arrives, MIOS predicts its performance on every available
// VM class and dispatches it immediately to the best one (minimum
// completion time heuristic). Lowest scheduling overhead of the three
// TRACON schedulers.
#pragma once

#include "sched/predictor.hpp"
#include "sched/scheduler.hpp"

namespace tracon::sched {

class CandidateIndex;

/// Placement policy shared by the TRACON schedulers.
struct PlacementPolicy {
  /// Only consolidate when the predicted combined progress of the pair
  /// beats leaving the resident application alone. Two data-intensive
  /// tasks can destroy so much of each other's throughput that a
  /// machine does *less* total work with both than with either by
  /// itself; an interference-aware scheduler then prefers to keep the
  /// slot idle and wait for a compatible task. This is what preserves
  /// cluster capacity (and the paper's normalized-throughput gains)
  /// under heavy load. Disable for fixed-batch allocation where every
  /// task must be placed (the static scenario).
  bool beneficial_joins_only = true;
  /// Required predicted net progress gain of a join, in units of solo
  /// task progress (0 = any non-negative join allowed). The default is
  /// calibrated for the paper's hard-disk testbed, whose 3-7x collapses
  /// make holding a slot open worth the wait for a compatible task; on
  /// low-interference devices (RAID/SSD) a slightly NEGATIVE margin —
  /// refuse only clearly capacity-destroying joins — is the better
  /// setting, because reserved slots idle longer than mild joins would
  /// have cost (bench_storage demonstrates both).
  double join_margin = 0.15;
};

/// True when placing `task` next to a running app of class `neighbour`
/// is predicted to add net progress: the task's own predicted speed
/// minus the slowdown inflicted on the neighbour must exceed the margin.
bool join_beneficial(std::size_t task, std::size_t neighbour,
                     const Predictor& predictor, Objective objective,
                     double margin);

/// Core of Algorithm 1, shared with MIBS/MIX: the best available slot
/// class for `task` under `objective`, or nullopt when no placement is
/// allowed (cluster full, or every join fails the beneficial-join
/// policy). Ties break toward the idle neighbour, then the lowest
/// class. With `exclude_empty`, empty machines are only used as a last
/// resort — MIBS uses this for candidate 2 when the batch cannot fit on
/// empty machines anyway, so that the chosen partner actually
/// co-locates. When `index` is non-null and `cluster` carries its
/// clustering, the flat candidate scan is replaced by the indexed
/// lookup (bit-identical placements; see candidate_index.hpp).
std::optional<std::optional<std::size_t>> mios_best_slot(
    std::size_t task, const ClusterCounts& cluster,
    const Predictor& predictor, Objective objective,
    const PlacementPolicy& policy = {}, bool exclude_empty = false,
    const CandidateIndex* index = nullptr);

class MiosScheduler final : public Scheduler {
 public:
  MiosScheduler(const Predictor& predictor, Objective objective,
                PlacementPolicy policy = {})
      : predictor_(predictor), objective_(objective), policy_(policy) {}

  std::string name() const override {
    return "MIOS-" + objective_name(objective_);
  }
  bool online() const override { return true; }

  /// Dispatches every queued task it can place, in arrival order.
  std::vector<Placement> schedule(std::span<const QueuedTask> queue,
                                  const ClusterCounts& cluster,
                                  const ScheduleContext& ctx) override;

 private:
  const Predictor& predictor_;
  Objective objective_;
  PlacementPolicy policy_;
};

}  // namespace tracon::sched
