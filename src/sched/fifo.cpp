#include "sched/fifo.hpp"

namespace tracon::sched {

std::vector<Placement> FifoScheduler::schedule(
    std::span<const QueuedTask> queue, const ClusterCounts& cluster,
    const ScheduleContext& ctx) {
  ClusterCounts state = cluster;
  std::vector<Placement> out;
  for (std::size_t pos = 0; pos < queue.size() && state.any_free(); ++pos) {
    // Draw a free VM slot uniformly: an empty machine offers two slots,
    // a half-busy machine one.
    std::size_t total = state.free_slots();
    std::size_t pick = rng_.index(total);
    std::optional<std::size_t> neighbour;
    if (pick < 2 * state.empty_machines()) {
      neighbour = std::nullopt;
    } else {
      pick -= 2 * state.empty_machines();
      for (std::size_t a = 0; a < state.num_apps(); ++a) {
        if (pick < state.half_busy(a)) {
          neighbour = a;
          break;
        }
        pick -= state.half_busy(a);
      }
    }
    state.place(queue[pos].app, neighbour);
    out.push_back({pos, neighbour});
  }
  // FIFO is interference-oblivious, so its predicted cost is always 0.
  note_round(queue.size(), out.size(), 0.0, ctx.now_s);
  return out;
}

}  // namespace tracon::sched
