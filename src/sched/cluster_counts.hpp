// Class-level view of the cluster that the schedulers operate on.
//
// With two VMs per physical machine (the paper's configuration) and a
// pairwise interference model, a task's predicted performance on a VM
// depends only on WHICH APPLICATION occupies the machine's other VM —
// not on which concrete machine it is. Schedulers therefore reason over
// occupancy classes: machines with both VMs idle, and machines whose
// other VM runs application `a`. This keeps every scheduling decision
// O(#applications) instead of O(#machines), which is what lets the
// simulation scale to the paper's 10,000-machine experiment, and makes
// hypothetical copies (needed by MIX) a cheap value copy.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace tracon::sched {

/// A placement decision: put the task next to a neighbour of class
/// `neighbour` (nullopt = onto an empty machine).
struct Placement {
  std::size_t queue_pos = 0;                ///< index into the queue snapshot
  std::optional<std::size_t> neighbour;     ///< app class or empty machine
};

class ClusterCounts {
 public:
  ClusterCounts() = default;
  /// `num_apps` distinct application classes, `empty_machines` machines
  /// with both VMs idle.
  ClusterCounts(std::size_t num_apps, std::size_t empty_machines);

  std::size_t num_apps() const { return half_busy_.size(); }
  std::size_t empty_machines() const { return empty_; }
  std::size_t half_busy(std::size_t app) const;

  /// Total free VM slots (2 per empty machine, 1 per half-busy machine).
  std::size_t free_slots() const;
  bool any_free() const { return free_slots() > 0; }

  /// True when a slot of the given class is available.
  bool has_slot(const std::optional<std::size_t>& neighbour) const;

  /// Appends every available slot class in the schedulers' canonical
  /// scan order — the empty-machine slot first (when `include_empty`
  /// and one exists), then each app class with a half-busy machine in
  /// ascending class order. This is the enumeration the batched
  /// prediction path feeds to Predictor::predict_*_batch; keeping it
  /// here keeps the candidate order (and thus tie-breaking) in one
  /// place.
  void append_candidates(bool include_empty,
                         std::vector<std::optional<std::size_t>>* out) const;

  /// Applies a placement: occupying an empty machine turns it half-busy
  /// (running `task`); occupying a half-busy machine consumes it.
  /// Throws std::invalid_argument when no such slot exists.
  void place(std::size_t task, const std::optional<std::size_t>& neighbour);

  /// Reverse bookkeeping, used by the cluster simulator on completions:
  /// a task of class `app` departed; its machine either becomes empty
  /// (neighbour slot idle) or half-busy running `neighbour`.
  void depart(std::size_t app, const std::optional<std::size_t>& neighbour);

  /// Promotes the flat class view to a live cluster index: attaches a
  /// class -> interference-profile-cluster mapping (from
  /// sched::ClassClustering) and maintains, through every place/depart,
  /// the number of available slots per cluster — plus one pseudo-cluster
  /// (index `num_clusters`) for the empty-machine candidate. The
  /// CandidateIndex skips whole clusters whose availability is zero in
  /// O(1) instead of scanning their classes. Vectors are stored by
  /// value, so the schedulers' hypothetical copies (MIBS/MIX state)
  /// carry the index along and stay consistent under their own
  /// hypothetical placements.
  void attach_clusters(std::vector<std::size_t> class_cluster,
                       std::size_t num_clusters);
  bool clustered() const { return !cluster_of_.empty(); }
  std::size_t num_clusters() const { return num_clusters_; }
  /// Available slots in `cluster` (the empty pseudo-cluster is
  /// `num_clusters()`). Requires clustered().
  std::size_t cluster_avail(std::size_t cluster) const;

 private:
  std::size_t empty_ = 0;
  std::vector<std::size_t> half_busy_;
  /// Cluster attachment (empty vectors when not clustered).
  std::vector<std::size_t> cluster_of_;
  std::vector<std::size_t> cluster_avail_;
  std::size_t num_clusters_ = 0;
};

}  // namespace tracon::sched
