#include "sched/cluster_counts.hpp"

#include "util/error.hpp"

namespace tracon::sched {

ClusterCounts::ClusterCounts(std::size_t num_apps, std::size_t empty_machines)
    : empty_(empty_machines), half_busy_(num_apps, 0) {
  TRACON_REQUIRE(num_apps > 0, "cluster needs at least one app class");
}

std::size_t ClusterCounts::half_busy(std::size_t app) const {
  TRACON_REQUIRE(app < half_busy_.size(), "app class out of range");
  return half_busy_[app];
}

std::size_t ClusterCounts::free_slots() const {
  std::size_t s = 2 * empty_;
  for (std::size_t c : half_busy_) s += c;
  return s;
}

bool ClusterCounts::has_slot(
    const std::optional<std::size_t>& neighbour) const {
  if (!neighbour.has_value()) return empty_ > 0;
  return half_busy(*neighbour) > 0;
}

void ClusterCounts::append_candidates(
    bool include_empty, std::vector<std::optional<std::size_t>>* out) const {
  TRACON_REQUIRE(out != nullptr, "candidate output vector must be non-null");
  if (include_empty && empty_ > 0) out->push_back(std::nullopt);
  for (std::size_t a = 0; a < half_busy_.size(); ++a)
    if (half_busy_[a] > 0) out->push_back(a);
}

void ClusterCounts::place(std::size_t task,
                          const std::optional<std::size_t>& neighbour) {
  TRACON_REQUIRE(task < half_busy_.size(), "task class out of range");
  TRACON_REQUIRE(has_slot(neighbour), "no slot of the requested class");
  if (!neighbour.has_value()) {
    --empty_;
    ++half_busy_[task];  // machine now half-busy running `task`
    if (clustered()) {
      --cluster_avail_[num_clusters_];
      ++cluster_avail_[cluster_of_[task]];
    }
  } else {
    --half_busy_[*neighbour];  // machine now full
    if (clustered()) --cluster_avail_[cluster_of_[*neighbour]];
  }
}

void ClusterCounts::depart(std::size_t app,
                           const std::optional<std::size_t>& neighbour) {
  TRACON_REQUIRE(app < half_busy_.size(), "app class out of range");
  if (!neighbour.has_value()) {
    // The departing task was alone on its machine.
    TRACON_REQUIRE(half_busy_[app] > 0, "no half-busy machine to vacate");
    --half_busy_[app];
    ++empty_;
    if (clustered()) {
      --cluster_avail_[cluster_of_[app]];
      ++cluster_avail_[num_clusters_];
    }
  } else {
    // Its machine keeps running the neighbour and becomes half-busy.
    TRACON_REQUIRE(*neighbour < half_busy_.size(),
                   "neighbour class out of range");
    ++half_busy_[*neighbour];
    if (clustered()) ++cluster_avail_[cluster_of_[*neighbour]];
  }
}

void ClusterCounts::attach_clusters(std::vector<std::size_t> class_cluster,
                                    std::size_t num_clusters) {
  TRACON_REQUIRE(class_cluster.size() == half_busy_.size(),
                 "cluster mapping must cover every app class");
  TRACON_REQUIRE(num_clusters > 0, "need at least one cluster");
  for (std::size_t c : class_cluster)
    TRACON_REQUIRE(c < num_clusters, "class mapped to out-of-range cluster");
  cluster_of_ = std::move(class_cluster);
  num_clusters_ = num_clusters;
  // Seed availability from the current occupancy (attachment is legal
  // mid-run, not just on a fresh cluster).
  cluster_avail_.assign(num_clusters_ + 1, 0);
  for (std::size_t a = 0; a < half_busy_.size(); ++a)
    cluster_avail_[cluster_of_[a]] += half_busy_[a];
  cluster_avail_[num_clusters_] = empty_;
}

std::size_t ClusterCounts::cluster_avail(std::size_t cluster) const {
  TRACON_REQUIRE(clustered(), "cluster_avail requires attach_clusters");
  TRACON_REQUIRE(cluster <= num_clusters_, "cluster index out of range");
  return cluster_avail_[cluster];
}

}  // namespace tracon::sched
