#include "sched/mios.hpp"

#include <limits>

#include "util/error.hpp"

namespace tracon::sched {

std::string objective_name(Objective o) {
  return o == Objective::kRuntime ? "RT" : "IO";
}

bool join_beneficial(std::size_t task, std::size_t neighbour,
                     const Predictor& predictor, Objective objective,
                     double margin) {
  if (objective == Objective::kRuntime) {
    // Progress rates relative to solo execution, per the model.
    double t_solo = predictor.predict_runtime(task, std::nullopt);
    double t_pair = predictor.predict_runtime(task, neighbour);
    double n_solo = predictor.predict_runtime(neighbour, std::nullopt);
    double n_pair = predictor.predict_runtime(neighbour, task);
    if (t_pair <= 0.0 || n_pair <= 0.0) return false;
    double gained = t_solo / t_pair;          // the joiner's progress rate
    double lost = 1.0 - n_solo / n_pair;      // the resident's lost rate
    return gained - lost > margin;
  }
  // IOPS objective: the pair must deliver more aggregate throughput
  // than the resident alone.
  double added = predictor.predict_iops(task, neighbour);
  double resident_before = predictor.predict_iops(neighbour, std::nullopt);
  double resident_after = predictor.predict_iops(neighbour, task);
  return added - (resident_before - resident_after) >
         margin * std::max(resident_before, 1e-9);
}

std::optional<std::optional<std::size_t>> mios_best_slot(
    std::size_t task, const ClusterCounts& cluster,
    const Predictor& predictor, Objective objective,
    const PlacementPolicy& policy, bool exclude_empty) {
  // Score = predicted runtime (minimize) or negated IOPS (minimize).
  auto score = [&](const std::optional<std::size_t>& neighbour) {
    return objective == Objective::kRuntime
               ? predictor.predict_runtime(task, neighbour)
               : -predictor.predict_iops(task, neighbour);
  };

  std::optional<std::optional<std::size_t>> best;
  double best_score = std::numeric_limits<double>::infinity();
  if (!exclude_empty && cluster.has_slot(std::nullopt)) {
    best = std::optional<std::size_t>{};
    best_score = score(std::nullopt);
  }
  for (std::size_t a = 0; a < cluster.num_apps(); ++a) {
    if (cluster.half_busy(a) == 0) continue;
    if (policy.beneficial_joins_only &&
        !join_beneficial(task, a, predictor, objective, policy.join_margin)) {
      continue;
    }
    double s = score(a);
    if (s < best_score) {
      best = std::optional<std::size_t>{a};
      best_score = s;
    }
  }
  if (!best.has_value() && exclude_empty && cluster.has_slot(std::nullopt)) {
    // Last resort: no occupied machine offers a beneficial join.
    best = std::optional<std::size_t>{};
  }
  return best;
}

std::vector<Placement> MiosScheduler::schedule(
    std::span<const QueuedTask> queue, const ClusterCounts& cluster,
    const ScheduleContext& ctx) {
  ClusterCounts state = cluster;
  std::vector<Placement> out;
  double predicted_cost = 0.0;
  for (std::size_t pos = 0; pos < queue.size(); ++pos) {
    if (!state.any_free()) break;
    auto slot = mios_best_slot(queue[pos].app, state, predictor_, objective_,
                               policy_);
    if (!slot.has_value()) continue;  // no acceptable slot; task waits
    TRACON_DCHECK(state.has_slot(*slot),
                  "MIOS selected an infeasible placement slot");
    predicted_cost +=
        objective_ == Objective::kRuntime
            ? predictor_.predict_runtime(queue[pos].app, *slot)
            : predictor_.predict_iops(queue[pos].app, *slot);
    state.place(queue[pos].app, *slot);
    out.push_back({pos, *slot});
  }
  note_round(queue.size(), out.size(), predicted_cost, ctx.now_s);
  return out;
}

}  // namespace tracon::sched
