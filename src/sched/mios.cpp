#include "sched/mios.hpp"

#include <limits>
#include <vector>

#include "sched/candidate_index.hpp"
#include "sched/decision_probe.hpp"
#include "util/error.hpp"

namespace tracon::sched {

std::string objective_name(Objective o) {
  return o == Objective::kRuntime ? "RT" : "IO";
}

bool join_beneficial(std::size_t task, std::size_t neighbour,
                     const Predictor& predictor, Objective objective,
                     double margin) {
  if (objective == Objective::kRuntime) {
    // Progress rates relative to solo execution, per the model.
    double t_solo = predictor.predict_runtime(task, std::nullopt);
    double t_pair = predictor.predict_runtime(task, neighbour);
    double n_solo = predictor.predict_runtime(neighbour, std::nullopt);
    double n_pair = predictor.predict_runtime(neighbour, task);
    if (t_pair <= 0.0 || n_pair <= 0.0) return false;
    double gained = t_solo / t_pair;          // the joiner's progress rate
    double lost = 1.0 - n_solo / n_pair;      // the resident's lost rate
    return gained - lost > margin;
  }
  // IOPS objective: the pair must deliver more aggregate throughput
  // than the resident alone.
  double added = predictor.predict_iops(task, neighbour);
  double resident_before = predictor.predict_iops(neighbour, std::nullopt);
  double resident_after = predictor.predict_iops(neighbour, task);
  return added - (resident_before - resident_after) >
         margin * std::max(resident_before, 1e-9);
}

std::optional<std::optional<std::size_t>> mios_best_slot(
    std::size_t task, const ClusterCounts& cluster,
    const Predictor& predictor, Objective objective,
    const PlacementPolicy& policy, bool exclude_empty,
    const CandidateIndex* index) {
  // Indexed fast path: per-cluster shortlist lookup, bit-identical to
  // the flat scan below (see candidate_index.hpp).
  if (index != nullptr && cluster.clustered())
    return index->best_slot(task, cluster, objective, policy, exclude_empty);
  // Candidate slot classes in canonical scan order (empty machine
  // first, then occupied classes ascending), scored through the batched
  // prediction API: one virtual call covers every candidate, and one
  // more covers the beneficial-join inputs — instead of up to five
  // scalar predictor calls per candidate. The arithmetic below uses the
  // exact formulas and comparison order of the scalar join_beneficial /
  // argmin path, so placements are bit-identical to the scalar
  // implementation (tested in test_schedulers/test_predictor).
  std::vector<std::optional<std::size_t>> candidates;
  candidates.reserve(cluster.num_apps() + 1);
  cluster.append_candidates(/*include_empty=*/!exclude_empty, &candidates);

  std::optional<std::optional<std::size_t>> best;
  if (!candidates.empty()) {
    std::vector<PredictQuery> queries(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i)
      queries[i] = {task, candidates[i]};
    std::vector<double> pred(candidates.size());
    if (objective == Objective::kRuntime) {
      predictor.predict_runtime_batch(queries, pred);
    } else {
      predictor.predict_iops_batch(queries, pred);
    }

    // Join-policy inputs for the occupied-class candidates, batched.
    // Runtime layout: [task solo, a0 solo, a0 next-to-task, a1 solo,
    // a1 next-to-task, ...]; IOPS layout drops the leading task-solo
    // entry (the IOPS rule never consults it).
    const std::size_t first_app =
        !candidates.front().has_value() ? 1 : 0;
    const std::size_t num_app_cands = candidates.size() - first_app;
    std::vector<double> join;
    if (policy.beneficial_joins_only && num_app_cands > 0) {
      std::vector<PredictQuery> jq;
      const bool runtime_obj = objective == Objective::kRuntime;
      jq.reserve(2 * num_app_cands + (runtime_obj ? 1 : 0));
      if (runtime_obj) jq.push_back({task, std::nullopt});
      for (std::size_t i = first_app; i < candidates.size(); ++i) {
        std::size_t a = *candidates[i];
        jq.push_back({a, std::nullopt});
        jq.push_back({a, task});
      }
      join.resize(jq.size());
      if (runtime_obj) {
        predictor.predict_runtime_batch(jq, join);
      } else {
        predictor.predict_iops_batch(jq, join);
      }
    }

    double best_score = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const std::optional<std::size_t>& cand = candidates[i];
      if (cand.has_value() && policy.beneficial_joins_only) {
        const std::size_t j = i - first_app;
        bool beneficial = false;
        if (objective == Objective::kRuntime) {
          double t_solo = join[0];
          double t_pair = pred[i];
          double n_solo = join[1 + 2 * j];
          double n_pair = join[2 + 2 * j];
          if (t_pair > 0.0 && n_pair > 0.0) {
            double gained = t_solo / t_pair;      // the joiner's progress rate
            double lost = 1.0 - n_solo / n_pair;  // the resident's lost rate
            beneficial = gained - lost > policy.join_margin;
          }
        } else {
          double added = pred[i];
          double resident_before = join[2 * j];
          double resident_after = join[2 * j + 1];
          beneficial = added - (resident_before - resident_after) >
                       policy.join_margin * std::max(resident_before, 1e-9);
        }
        if (!beneficial) continue;
      }
      double s = objective == Objective::kRuntime ? pred[i] : -pred[i];
      if (s < best_score) {
        best = cand;
        best_score = s;
      }
    }
  }
  if (!best.has_value() && exclude_empty && cluster.has_slot(std::nullopt)) {
    // Last resort: no occupied machine offers a beneficial join.
    best = std::optional<std::size_t>{};
  }
  return best;
}

std::vector<Placement> MiosScheduler::schedule(
    std::span<const QueuedTask> queue, const ClusterCounts& cluster,
    const ScheduleContext& ctx) {
  ClusterCounts state = cluster;
  std::vector<Placement> out;
  double predicted_cost = 0.0;
  for (std::size_t pos = 0; pos < queue.size(); ++pos) {
    if (!state.any_free()) break;
    auto slot = mios_best_slot(queue[pos].app, state, predictor_, objective_,
                               policy_, /*exclude_empty=*/false,
                               candidate_index());
    if (!slot.has_value()) continue;  // no acceptable slot; task waits
    TRACON_DCHECK(state.has_slot(*slot),
                  "MIOS selected an infeasible placement slot");
    predicted_cost +=
        objective_ == Objective::kRuntime
            ? predictor_.predict_runtime(queue[pos].app, *slot)
            : predictor_.predict_iops(queue[pos].app, *slot);
    state.place(queue[pos].app, *slot);
    out.push_back({pos, *slot});
  }
  record_decisions(telemetry(), name(), ctx.now_s, queue, cluster, out,
                   predictor_, objective_);
  note_round(queue.size(), out.size(), predicted_cost, ctx.now_s);
  return out;
}

}  // namespace tracon::sched
