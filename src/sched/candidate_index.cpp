#include "sched/candidate_index.hpp"

#include <algorithm>
#include <limits>

#include "stats/pca.hpp"
#include "util/error.hpp"

namespace tracon::sched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double sq_dist(const stats::Matrix& m, std::size_t row,
               std::span<const double> c) {
  double d = 0.0;
  for (std::size_t j = 0; j < m.cols(); ++j) {
    double diff = m(row, j) - c[j];
    d += diff * diff;
  }
  return d;
}

}  // namespace

ClassClustering ClassClustering::build(const Predictor& predictor,
                                       std::size_t num_clusters) {
  const std::size_t n = predictor.num_apps();
  TRACON_REQUIRE(n > 0, "clustering needs at least one app class");

  // Auto cluster count: smallest C with C*C >= n (≈ sqrt) — enough
  // clusters that both the per-cluster lists and the cluster loop stay
  // ~sqrt(n) long.
  std::size_t C = num_clusters;
  if (C == 0) {
    C = 1;
    while (C * C < n) ++C;
  }
  C = std::min(C, n);

  ClassClustering out;
  out.num_clusters_ = C;
  out.cluster_of_.assign(n, 0);
  if (C == 1) return out;
  if (C == n) {
    for (std::size_t a = 0; a < n; ++a) out.cluster_of_[a] = a;
    return out;
  }

  // Interference profile of class a: how it performs next to everyone
  // (rows of the prediction tables) and how everyone performs next to
  // it (columns) — both responses. PCA-projected before matching,
  // exactly like the WMM pipeline.
  const std::size_t dims = 4 * n + 2;
  stats::Matrix x(n, dims);
  for (std::size_t a = 0; a < n; ++a) {
    std::size_t col = 0;
    for (std::size_t j = 0; j < n; ++j)
      x(a, col++) = predictor.predict_runtime(a, j);
    x(a, col++) = predictor.predict_runtime(a, std::nullopt);
    for (std::size_t j = 0; j < n; ++j)
      x(a, col++) = predictor.predict_iops(a, j);
    x(a, col++) = predictor.predict_iops(a, std::nullopt);
    for (std::size_t j = 0; j < n; ++j)
      x(a, col++) = predictor.predict_runtime(j, a);
    for (std::size_t j = 0; j < n; ++j)
      x(a, col++) = predictor.predict_iops(j, a);
  }
  const std::size_t k = std::min<std::size_t>(3, std::min(dims, n));
  stats::Pca pca = stats::Pca::fit(x, k, /*standardize=*/true);
  stats::Matrix proj = pca.project_rows(x);

  // Deterministic farthest-point seeding: class 0 first, then the
  // class farthest from every chosen seed (ties -> lowest index).
  std::vector<std::size_t> seeds{0};
  std::vector<double> mind(n, kInf);
  while (seeds.size() < C) {
    const std::size_t last = seeds.back();
    std::vector<double> lastc(k);
    for (std::size_t j = 0; j < k; ++j) lastc[j] = proj(last, j);
    for (std::size_t a = 0; a < n; ++a)
      mind[a] = std::min(mind[a], sq_dist(proj, a, lastc));
    std::size_t far = 0;
    double far_d = -1.0;
    for (std::size_t a = 0; a < n; ++a) {
      if (mind[a] > far_d) {
        far_d = mind[a];
        far = a;
      }
    }
    seeds.push_back(far);
    mind[far] = -1.0;  // never re-chosen
  }

  // Fixed-iteration Lloyd refinement, all ties toward the lower index:
  // every step is a pure function of the prediction tables.
  std::vector<std::vector<double>> centroids(C, std::vector<double>(k));
  for (std::size_t c = 0; c < C; ++c)
    for (std::size_t j = 0; j < k; ++j) centroids[c][j] = proj(seeds[c], j);
  std::vector<std::size_t>& assign = out.cluster_of_;
  for (int iter = 0; iter < 10; ++iter) {
    for (std::size_t a = 0; a < n; ++a) {
      std::size_t best = 0;
      double best_d = kInf;
      for (std::size_t c = 0; c < C; ++c) {
        double d = sq_dist(proj, a, centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      assign[a] = best;
    }
    for (std::size_t c = 0; c < C; ++c) {
      std::vector<double> sum(k, 0.0);
      std::size_t count = 0;
      for (std::size_t a = 0; a < n; ++a) {
        if (assign[a] != c) continue;
        ++count;
        for (std::size_t j = 0; j < k; ++j) sum[j] += proj(a, j);
      }
      if (count == 0) continue;  // empty cluster keeps its centroid
      for (std::size_t j = 0; j < k; ++j)
        centroids[c][j] = sum[j] / static_cast<double>(count);
    }
  }
  return out;
}

CandidateIndex::CandidateIndex(const Predictor& predictor,
                               std::size_t num_clusters)
    : predictor_(predictor),
      clustering_(ClassClustering::build(predictor, num_clusters)) {
  TRACON_REQUIRE(predictor.num_apps() > 0,
                 "candidate index needs at least one application class");
  epoch_ = predictor_.model_epoch();
  rebuild();
}

void CandidateIndex::attach(ClusterCounts* counts) const {
  TRACON_REQUIRE(counts != nullptr, "attach requires a ClusterCounts");
  counts->attach_clusters(clustering_.cluster_of(),
                          clustering_.num_clusters());
}

void CandidateIndex::sync_epoch() const {
  const std::uint64_t e = predictor_.model_epoch();
  if (e == epoch_) return;
  epoch_ = e;
  ++rebuilds_;
  rebuild();
}

void CandidateIndex::rebuild() const {
  const std::size_t n = predictor_.num_apps();
  const std::size_t C = clustering_.num_clusters();
  const std::size_t stride = C + 1;
  for (auto& per_obj : lists_) {
    per_obj.clear();
    per_obj.resize(n * stride);
  }
  for (std::size_t t = 0; t < n; ++t) {
    const double t_solo = predictor_.predict_runtime(t, std::nullopt);
    // Empty-machine pseudo-cluster entry per objective: rank 0, always
    // admissible (the join policy never applies to an idle neighbour).
    {
      Entry e;
      e.rank = 0;
      e.join_lhs = kInf;
      e.score = t_solo;
      lists_[0][t * stride + C].push_back(e);
      e.score = -predictor_.predict_iops(t, std::nullopt);
      lists_[1][t * stride + C].push_back(e);
    }
    for (std::size_t a = 0; a < n; ++a) {
      const std::size_t c = clustering_.cluster_of()[a];
      // Runtime objective. join_lhs/join_scale reproduce the exact
      // scan's beneficial-join arithmetic: beneficial at margin m iff
      // join_lhs > m * join_scale (scale 1, and m * 1.0 == m exactly).
      {
        Entry e;
        e.rank = static_cast<std::uint32_t>(a + 1);
        const double t_pair = predictor_.predict_runtime(t, a);
        e.score = t_pair;
        const double n_solo = predictor_.predict_runtime(a, std::nullopt);
        const double n_pair = predictor_.predict_runtime(a, t);
        if (t_pair > 0.0 && n_pair > 0.0) {
          const double gained = t_solo / t_pair;
          const double lost = 1.0 - n_solo / n_pair;
          e.join_lhs = gained - lost;
        } else {
          e.join_lhs = -kInf;  // the exact path rejects this join
        }
        e.join_scale = 1.0;
        lists_[0][t * stride + c].push_back(e);
      }
      // IOPS objective (maximize -> score is the negated prediction).
      {
        Entry e;
        e.rank = static_cast<std::uint32_t>(a + 1);
        const double added = predictor_.predict_iops(t, a);
        e.score = -added;
        const double before = predictor_.predict_iops(a, std::nullopt);
        const double after = predictor_.predict_iops(a, t);
        e.join_lhs = added - (before - after);
        e.join_scale = std::max(before, 1e-9);
        lists_[1][t * stride + c].push_back(e);
      }
    }
  }
  for (auto& per_obj : lists_) {
    for (auto& v : per_obj) {
      std::sort(v.begin(), v.end(), [](const Entry& x, const Entry& y) {
        return x.score < y.score || (x.score == y.score && x.rank < y.rank);
      });
    }
  }
}

const std::vector<CandidateIndex::Entry>& CandidateIndex::entries(
    Objective objective, std::size_t task, std::size_t cluster) const {
  const std::size_t obj = objective == Objective::kRuntime ? 0 : 1;
  const std::size_t stride = clustering_.num_clusters() + 1;
  return lists_[obj][task * stride + cluster];
}

std::optional<std::optional<std::size_t>> CandidateIndex::best_slot(
    std::size_t task, const ClusterCounts& cluster, Objective objective,
    const PlacementPolicy& policy, bool exclude_empty) const {
  sync_epoch();
  TRACON_REQUIRE(task < clustering_.num_apps(), "task class out of range");
  TRACON_REQUIRE(cluster.clustered() &&
                     cluster.num_clusters() == clustering_.num_clusters(),
                 "ClusterCounts is not attached to this index's clustering");
  const std::size_t C = clustering_.num_clusters();

  // Each cluster's champion is its first available (and beneficial)
  // entry in (score, rank) order; the winner is the lexicographic
  // minimum over champions — exactly the flat scan's argmin with
  // first-wins ties in canonical order.
  const Entry* best = nullptr;
  for (std::size_t c = 0; c <= C; ++c) {
    if (cluster.cluster_avail(c) == 0) continue;
    if (c == C && exclude_empty) continue;
    for (const Entry& e : entries(objective, task, c)) {
      if (e.rank != 0) {
        if (cluster.half_busy(e.rank - 1) == 0) continue;
        if (policy.beneficial_joins_only &&
            !(e.join_lhs > policy.join_margin * e.join_scale))
          continue;
      }
      if (best == nullptr || e.score < best->score ||
          (e.score == best->score && e.rank < best->rank))
        best = &e;
      break;
    }
  }

  std::optional<std::optional<std::size_t>> out;
  if (best != nullptr) {
    out.emplace(best->rank == 0
                    ? std::optional<std::size_t>{}
                    : std::optional<std::size_t>{best->rank - 1});
  } else if (exclude_empty && cluster.has_slot(std::nullopt)) {
    // Last resort: no occupied machine offers a beneficial join.
    out.emplace(std::optional<std::size_t>{});
  }
  return out;
}

}  // namespace tracon::sched
