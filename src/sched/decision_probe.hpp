// Decision-log probe shared by MIOS/MIBS/MIX: replays a round's
// committed placements against the pre-round cluster view and records,
// for every placement, the full candidate set the scheduler scanned —
// ensemble score and per-family prediction per candidate, the active
// confidence weights, the chosen slot, and its winning margin.
//
// The probe only issues const Predictor calls (the same table lookups
// the scheduler itself made, under stable in-round weights), so
// recording perturbs nothing: with the log disabled it returns before
// touching the predictor, and with it enabled the replayed predictions
// are bit-identical to the values the scheduler acted on.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "sched/predictor.hpp"
#include "sched/scheduler.hpp"

namespace tracon::sched {

/// Enumerates `cluster`'s free-slot classes in the schedulers'
/// canonical append_candidates order and batch-predicts `app`'s value
/// on each under `objective`. This is the one scoring path shared by
/// the decision-log probe and the migrate::Rebalancer's re-placement
/// scan, so recorded candidate sets and migration destinations are
/// scored bit-identically to the schedulers' own decisions.
void score_candidates(const Predictor& predictor, std::size_t app,
                      const ClusterCounts& cluster, Objective objective,
                      bool include_empty,
                      std::vector<std::optional<std::size_t>>* slots,
                      std::vector<double>* scores);

/// Distance of the chosen score from the best alternative, signed so
/// that a policy override (e.g. the beneficial-join filter rejecting
/// the raw argmin) shows up as a negative margin. Zero with a single
/// candidate.
double winning_margin(std::span<const double> scores, std::size_t chosen,
                      Objective objective);

/// Records one decision event per placement into
/// `telemetry->decisions`. `cluster` must be the pre-round view the
/// scheduler was invoked with; placements are re-applied in order so
/// each event's candidate set matches what the scheduler saw when it
/// committed that placement. No-op when telemetry is detached, the
/// decision log is disabled, or no placement was made.
void record_decisions(obs::Telemetry* telemetry,
                      std::string_view scheduler_name, double now_s,
                      std::span<const QueuedTask> queue,
                      const ClusterCounts& cluster,
                      std::span<const Placement> placements,
                      const Predictor& predictor, Objective objective);

}  // namespace tracon::sched
