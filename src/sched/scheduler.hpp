// Scheduler interface shared by FIFO, MIOS, MIBS, and MIX.
//
// A scheduler examines the waiting queue and the cluster occupancy view
// and returns placements. The cluster simulator applies them, keeps
// unplaced tasks queued, and re-invokes the scheduler on arrivals,
// completions, and requested wake-ups (batch timeouts).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sched/cluster_counts.hpp"

namespace tracon::sched {

/// The scheduling objective: minimize total runtime (MIBS_RT) or
/// maximize total I/O throughput (MIBS_IO) — Section 3.2.
enum class Objective { kRuntime, kIops };

std::string objective_name(Objective o);

struct QueuedTask {
  std::size_t app = 0;      ///< application class
  double arrival_s = 0.0;   ///< arrival time (for batch timeouts)
};

struct ScheduleContext {
  double now_s = 0.0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Online schedulers (FIFO, MIOS) dispatch on every arrival and
  /// completion; batch schedulers (MIBS, MIX) are only invoked at the
  /// manager's periodic scheduling rounds and their own wake-ups.
  virtual bool online() const { return false; }

  /// Returns placements for a subset of queued tasks (each queue
  /// position at most once); implementations must only emit placements
  /// that are feasible when applied in the returned order.
  virtual std::vector<Placement> schedule(std::span<const QueuedTask> queue,
                                          const ClusterCounts& cluster,
                                          const ScheduleContext& ctx) = 0;

  /// Time at which the scheduler wants to be re-invoked even without an
  /// arrival or completion (batch timeout); nullopt = no wake-up needed.
  virtual std::optional<double> next_wakeup(
      std::span<const QueuedTask> queue, const ScheduleContext& ctx) const {
    (void)queue;
    (void)ctx;
    return std::nullopt;
  }
};

}  // namespace tracon::sched
