// Scheduler interface shared by FIFO, MIOS, MIBS, and MIX.
//
// A scheduler examines the waiting queue and the cluster occupancy view
// and returns placements. The cluster simulator applies them, keeps
// unplaced tasks queued, and re-invokes the scheduler on arrivals,
// completions, and requested wake-ups (batch timeouts).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "sched/cluster_counts.hpp"

namespace tracon::sched {

class CandidateIndex;

/// The scheduling objective: minimize total runtime (MIBS_RT) or
/// maximize total I/O throughput (MIBS_IO) — Section 3.2.
enum class Objective { kRuntime, kIops };

std::string objective_name(Objective o);

struct QueuedTask {
  std::size_t app = 0;      ///< application class
  double arrival_s = 0.0;   ///< arrival time (for batch timeouts)
  /// Stable task identity (the dynamic scenario uses the arrival
  /// index): joins the decision log's placement records to the task's
  /// eventual completion. Purely observational — no scheduler keys a
  /// decision off it.
  std::uint64_t id = 0;
};

struct ScheduleContext {
  double now_s = 0.0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Online schedulers (FIFO, MIOS) dispatch on every arrival and
  /// completion; batch schedulers (MIBS, MIX) are only invoked at the
  /// manager's periodic scheduling rounds and their own wake-ups.
  virtual bool online() const { return false; }

  /// Returns placements for a subset of queued tasks (each queue
  /// position at most once); implementations must only emit placements
  /// that are feasible when applied in the returned order.
  virtual std::vector<Placement> schedule(std::span<const QueuedTask> queue,
                                          const ClusterCounts& cluster,
                                          const ScheduleContext& ctx) = 0;

  /// Time at which the scheduler wants to be re-invoked even without an
  /// arrival or completion (batch timeout); nullopt = no wake-up needed.
  virtual std::optional<double> next_wakeup(
      std::span<const QueuedTask> queue, const ScheduleContext& ctx) const {
    (void)queue;
    (void)ctx;
    return std::nullopt;
  }

  /// Attaches (or detaches, with nullptr) the telemetry sinks. The
  /// scheduler does not own the bundle; the caller keeps it alive for
  /// the scheduler's lifetime.
  void set_telemetry(obs::Telemetry* telemetry) { telemetry_ = telemetry; }
  obs::Telemetry* telemetry() const { return telemetry_; }

  /// Attaches (or detaches, with nullptr) a candidate shortlist index
  /// (sched::CandidateIndex, not owned). The TRACON schedulers route
  /// their slot scans through it when the cluster view carries its
  /// clustering; schedulers without a candidate scan (FIFO) ignore it.
  /// The simulator wires this from DynamicConfig::candidate_index.
  void set_candidate_index(const CandidateIndex* index) {
    candidate_index_ = index;
  }
  const CandidateIndex* candidate_index() const { return candidate_index_; }

 protected:
  /// Records one scheduling round: counters for rounds/decisions/
  /// placements, the queue-length gauge, a placed-per-round histogram,
  /// and a kSchedDecision trace event carrying the predicted cost of
  /// the chosen placements. No-op when telemetry is detached.
  void note_round(std::size_t queue_len, std::size_t placed,
                  double predicted_cost, double now_s) {
    if (telemetry_ == nullptr) return;
    obs::MetricsRegistry& m = telemetry_->metrics;
    m.counter("sched.rounds").inc();
    m.gauge("sched.queue_length").set(static_cast<double>(queue_len));
    if (placed > 0) {
      m.counter("sched.decisions").inc();
      m.counter("sched.placements").inc(placed);
      m.histogram("sched.batch.placed", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0})
          .observe(static_cast<double>(placed));
    }
    obs::TraceEvent ev;
    ev.time_s = now_s;
    ev.kind = obs::TraceEventKind::kSchedDecision;
    ev.count = queue_len;
    ev.value = predicted_cost;
    ev.value2 = static_cast<double>(placed);
    telemetry_->tracer.record(ev);
  }

 private:
  obs::Telemetry* telemetry_ = nullptr;
  const CandidateIndex* candidate_index_ = nullptr;
};

}  // namespace tracon::sched
