#include "sched/mix.hpp"

#include <limits>

#include "obs/scope_timer.hpp"
#include "sched/decision_probe.hpp"
#include "util/error.hpp"

namespace tracon::sched {

MixScheduler::MixScheduler(const Predictor& predictor, Objective objective,
                           std::size_t queue_limit, double batch_timeout_s,
                           PlacementPolicy policy)
    : predictor_(predictor),
      objective_(objective),
      queue_limit_(queue_limit),
      batch_timeout_s_(batch_timeout_s),
      policy_(policy) {
  TRACON_REQUIRE(queue_limit_ >= 1, "queue limit must be >= 1");
  TRACON_REQUIRE(batch_timeout_s_ >= 0.0, "batch timeout must be >= 0");
}

std::string MixScheduler::name() const {
  return "MIX" + std::to_string(queue_limit_) + "-" +
         objective_name(objective_);
}

std::vector<Placement> MixScheduler::schedule(
    std::span<const QueuedTask> queue, const ClusterCounts& cluster,
    const ScheduleContext& ctx) {
  if (!batch_due(queue, cluster, ctx, queue_limit_, batch_timeout_s_))
    return {};
  TRACON_PROF_SCOPE("sched.mix.schedule");
  // Adaptive predictors (the confidence-weighted ensemble) re-derive
  // their blend weights once here, so every rotation in this round is
  // scored under the same weights.
  predictor_.begin_round(ctx.now_s);

  // Every task in the batch window gets a turn as the head
  // (Algorithm 3); the assignment with the best predicted total wins.
  std::size_t window = std::min(queue.size(), queue_limit_);
  std::span<const QueuedTask> batch = queue.first(window);
  std::vector<Placement> best_placements;
  double best_cost = 0.0;
  double best_score = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> order(window);
  for (std::size_t head = 0; head < window; ++head) {
    order[0] = head;
    std::size_t w = 1;
    for (std::size_t i = 0; i < window; ++i)
      if (i != head) order[w++] = i;

    BatchOutcome outcome = mibs_batch(batch, order, cluster, predictor_,
                                      objective_, policy_, candidate_index());
    TRACON_DCHECK(outcome.placements.size() <= window,
                  "MIX batch placed more tasks than the window holds");
    if constexpr (kParanoidChecksEnabled) {
      for (const Placement& p : outcome.placements) {
        TRACON_DCHECK(p.queue_pos < window,
                      "MIX placement references a task outside the window");
      }
    }
    if (outcome.placements.empty()) continue;
    // Normalize by placements so rotations that place fewer tasks do not
    // look cheaper on the runtime objective.
    double per_task = objective_ == Objective::kRuntime
                          ? outcome.predicted_runtime
                          : -outcome.predicted_iops;
    double score =
        per_task / static_cast<double>(outcome.placements.size()) -
        // Prefer assignments that place more tasks at equal quality.
        1e-9 * static_cast<double>(outcome.placements.size());
    if (score < best_score) {
      best_score = score;
      best_cost = objective_ == Objective::kRuntime ? outcome.predicted_runtime
                                                    : outcome.predicted_iops;
      best_placements = std::move(outcome.placements);
    }
  }
  record_decisions(telemetry(), name(), ctx.now_s, queue, cluster,
                   best_placements, predictor_, objective_);
  note_round(queue.size(), best_placements.size(), best_cost, ctx.now_s);
  return best_placements;
}

std::optional<double> MixScheduler::next_wakeup(
    std::span<const QueuedTask> queue, const ScheduleContext& ctx) const {
  (void)ctx;
  if (queue.empty() || queue.size() >= queue_limit_) return std::nullopt;
  return queue.front().arrival_s + batch_timeout_s_;
}

}  // namespace tracon::sched
