#include "sched/predictor.hpp"

#include "util/error.hpp"

namespace tracon::sched {

TablePredictor::TablePredictor(stats::Matrix runtime, stats::Matrix iops)
    : runtime_(std::move(runtime)), iops_(std::move(iops)) {
  TRACON_REQUIRE(runtime_.rows() > 0, "empty prediction table");
  TRACON_REQUIRE(runtime_.cols() == runtime_.rows() + 1,
                 "table needs one column per neighbour class plus idle");
  TRACON_REQUIRE(iops_.rows() == runtime_.rows() &&
                     iops_.cols() == runtime_.cols(),
                 "runtime/iops table shape mismatch");
}

double TablePredictor::predict_runtime(
    std::size_t task, const std::optional<std::size_t>& neighbour) const {
  TRACON_REQUIRE(task < runtime_.rows(), "task class out of range");
  std::size_t col = neighbour.value_or(runtime_.rows());
  TRACON_REQUIRE(col < runtime_.cols(), "neighbour class out of range");
  TRACON_CHECK_FINITE(runtime_(task, col), "predicted runtime");
  TRACON_DCHECK(runtime_(task, col) >= 0.0, "negative predicted runtime");
  return runtime_(task, col);
}

double TablePredictor::predict_iops(
    std::size_t task, const std::optional<std::size_t>& neighbour) const {
  TRACON_REQUIRE(task < iops_.rows(), "task class out of range");
  std::size_t col = neighbour.value_or(iops_.rows());
  TRACON_REQUIRE(col < iops_.cols(), "neighbour class out of range");
  TRACON_CHECK_FINITE(iops_(task, col), "predicted IOPS");
  TRACON_DCHECK(iops_(task, col) >= 0.0, "negative predicted IOPS");
  return iops_(task, col);
}

TablePredictor TablePredictor::from_models(
    const std::vector<model::ModelPair>& models,
    const std::vector<monitor::AppProfile>& profiles) {
  TRACON_REQUIRE(!models.empty() && models.size() == profiles.size(),
                 "need one model pair and profile per application");
  const std::size_t n = models.size();
  stats::Matrix rt(n, n + 1), io(n, n + 1);
  for (std::size_t t = 0; t < n; ++t) {
    TRACON_REQUIRE(models[t].runtime != nullptr && models[t].iops != nullptr,
                   "model pair has null model");
    for (std::size_t b = 0; b <= n; ++b) {
      monitor::AppProfile bg =
          b < n ? profiles[b] : monitor::AppProfile::idle();
      rt(t, b) = models[t].runtime->predict_pair(profiles[t], bg);
      io(t, b) = models[t].iops->predict_pair(profiles[t], bg);
      TRACON_CHECK_FINITE(rt(t, b), "model-predicted runtime");
      TRACON_CHECK_FINITE(io(t, b), "model-predicted IOPS");
      TRACON_DCHECK(rt(t, b) >= 0.0 && io(t, b) >= 0.0,
                    "models must clamp predictions at zero");
    }
  }
  return TablePredictor(std::move(rt), std::move(io));
}

}  // namespace tracon::sched
